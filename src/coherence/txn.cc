#include "coherence/txn.hh"

#include <algorithm>
#include <utility>

#include "sim/log.hh"

namespace tsoper
{

TxnTable::TxnTable(StatsRegistry &stats)
    : allocs_(stats.counter("dir.txn_allocs")),
      legs_(stats.counter("dir.txn_legs")),
      occupancy_(stats.histogram("dir.txn_occupancy"))
{
}

TxnTable::Id
TxnTable::begin(LineAddr line, CoreId requester, unsigned waits,
                Completion completion)
{
    tsoper_assert(waits >= 1, "transaction with no legs to wait on");
    const Id id = next_++;
    entries_.emplace(
        id, Entry{line, requester, waits, 0, std::move(completion)});
    allocs_.inc();
    occupancy_.add(entries_.size());
    return id;
}

void
TxnTable::legDone(Id id, Cycle at)
{
    auto it = entries_.find(id);
    tsoper_assert(it != entries_.end(), "leg of unknown transaction ", id);
    Entry &e = it->second;
    legs_.inc();
    e.readyAt = std::max(e.readyAt, at);
    tsoper_assert(e.waits > 0, "transaction over-acknowledged");
    if (--e.waits > 0)
        return;
    // Move out before erasing: the completion may open new entries.
    Completion fire = std::move(e.completion);
    const Cycle readyAt = e.readyAt;
    entries_.erase(it);
    fire(readyAt);
}

Mshr::Mshr(EventQueue &eq, unsigned cores, unsigned entriesPerCore,
           StatsRegistry &stats)
    : eq_(eq), entriesPerCore_(entriesPerCore), cores_(cores),
      fullStalls_(stats.counter("mshr.full_stalls")),
      occupancy_(stats.histogram("mshr.occupancy"))
{
    tsoper_assert(entriesPerCore >= 1, "a core needs at least one MSHR");
}

bool
Mshr::has(CoreId core, LineAddr line) const
{
    return cores_[static_cast<unsigned>(core)].lines.count(line) != 0;
}

bool
Mshr::full(CoreId core) const
{
    return cores_[static_cast<unsigned>(core)].lines.size() >=
           entriesPerCore_;
}

void
Mshr::enter(CoreId core, LineAddr line)
{
    PerCore &pc = cores_[static_cast<unsigned>(core)];
    tsoper_assert(pc.lines.size() < entriesPerCore_, "MSHR overflow");
    const bool inserted = pc.lines.insert(line).second;
    tsoper_assert(inserted, "duplicate MSHR entry for line ", line);
    occupancy_.add(pc.lines.size());
}

void
Mshr::leave(CoreId core, LineAddr line)
{
    PerCore &pc = cores_[static_cast<unsigned>(core)];
    const auto erased = pc.lines.erase(line);
    tsoper_assert(erased == 1, "MSHR leave without enter: line ", line);
    if (pc.retries.empty())
        return;
    auto retry = std::move(pc.retries.front());
    pc.retries.pop_front();
    eq_.scheduleIn(0, std::move(retry));
}

void
Mshr::defer(CoreId core, std::function<void()> retry)
{
    fullStalls_.inc();
    cores_[static_cast<unsigned>(core)].retries.push_back(
        std::move(retry));
}

std::size_t
Mshr::inFlight(CoreId core) const
{
    return cores_[static_cast<unsigned>(core)].lines.size();
}

} // namespace tsoper
