/**
 * @file
 * Sharing-List Coherence (SLC), the SCI-inspired protocol of §IV.
 *
 * Every cacheline with any private-cache presence has a doubly-linked
 * sharing list of per-cache nodes, ordered by directory serialization:
 * the *head* is the most recent requester (the only place the current
 * version can be written), the *tail* is the oldest unpersisted
 * version and owns the persist token.  The three principles of §IV-A
 * are implemented directly:
 *
 *  1. Non-destructive invalidations — invalidated dirty versions stay
 *     on the list (invalid) until they persist.
 *  2. Multiversioning — a list may hold several same-address versions
 *     across different caches; only the head-most version is valid.
 *  3. Tail-to-head persist — versions persist only at the tail;
 *     persisted (or clean) tails unlink, passing the token headwards.
 *
 * Write permission is granted at link-up (OBS 3: reduced L1 exclusion
 * time); invalidations propagate in the background.
 *
 * Timing model: state commits at directory dispatch (see coherence/
 * protocol.hh), while the timing legs are real timestamped messages:
 * forward requests, data replies and permission grants travel as
 * MessageBus sends whose arrival events fire the requester's
 * completion; memory fills defer the line's serializer slot until the
 * LLC pipe answers (coherence/directory.hh).  Background traffic
 * (teardown notifications, persist writebacks) keeps folded arrival()
 * legs.
 */

#ifndef TSOPER_COHERENCE_SLC_HH
#define TSOPER_COHERENCE_SLC_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "coherence/directory.hh"
#include "coherence/protocol.hh"
#include "coherence/txn.hh"
#include "mem/cache_array.hh"
#include "mem/llc.hh"
#include "mem/nvm.hh"
#include "noc/mesh.hh"
#include "noc/message_bus.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace tsoper
{

class SlcProtocol : public CoherenceProtocol
{
  public:
    SlcProtocol(const SystemConfig &cfg, EventQueue &eq, Mesh &mesh,
                Llc &llc, Nvm &nvm, StatsRegistry &stats);

    void load(CoreId core, Addr addr, LoadDone done) override;
    void store(CoreId core, Addr addr, StoreId store,
               StoreDone done) override;
    ProtocolComplexity complexity() const override;

    // --- Engine-facing API ------------------------------------------

    bool hasNode(CoreId core, LineAddr line) const;
    bool nodeValid(CoreId core, LineAddr line) const;
    bool nodeDirty(CoreId core, LineAddr line) const;

    /** Sharing-list neighbours (testing/introspection): towards the
     *  tail / towards the head; invalidCore at the ends. */
    CoreId nodeFwd(CoreId core, LineAddr line) const;
    CoreId nodeBwd(CoreId core, LineAddr line) const;

    /** Is (core, line)'s node its sharing list's tail? */
    bool nodeIsTail(CoreId core, LineAddr line) const;

    /**
     * Persist-token view of tailness: true iff no *dirty* (unpersisted)
     * version exists below (core, line)'s node.  Valid clean sharers
     * below a node hold no persist obligation — the token passes
     * through them ("invalidated unmodified tails immediately pass the
     * token"; still-valid persisted versions stay as plain sharers).
     */
    bool nodeIsPersistTail(CoreId core, LineAddr line) const;

    /** This version's contents (node must exist). */
    const LineWords &nodeWords(CoreId core, LineAddr line) const;

    /**
     * The persist of (core, line)'s version completed (it is buffered
     * in the AGB / written through the LLC).  Writes the version to the
     * LLC, then unlinks the node if it is invalid or evicted, passing
     * the persist token; a still-valid node simply becomes clean.
     * The node must be its list's tail (§IV-A principle 3).
     */
    void persistComplete(CoreId core, LineAddr line, Cycle now);

    /**
     * An atomic group that held (core, line) as a *clean* member
     * persisted; the node may unlink if it is invalid or evicted.
     */
    void releaseCleanMember(CoreId core, LineAddr line, Cycle now);

    /** Current occupancy of @p core's eviction buffer (§III-B). */
    unsigned evictionBufferOccupancy(CoreId core) const
    {
        return evictBufOcc_[core];
    }

    /** Number of nodes currently on @p line's sharing list. */
    unsigned listLength(LineAddr line) const;

    /** Number of *valid* nodes on @p line's list (coherence view). */
    unsigned validListLength(LineAddr line) const;

    /** Walk every existing node (testing / final drain). */
    void forEachNode(
        const std::function<void(CoreId, LineAddr, bool dirty,
                                 bool valid)> &fn) const;

  private:
    struct Node
    {
        CoreId fwd = invalidCore;  ///< Toward the tail (older).
        CoreId bwd = invalidCore;  ///< Toward the head (newer).
        bool valid = true;
        bool dirty = false;
        bool evicted = false;      ///< Lives in the eviction buffer.
        Cycle dataReadyAt = 0;     ///< When this copy's data arrives.
        LineWords words{};
    };

    struct Entry
    {
        CoreId head = invalidCore;
        bool zombie = false; ///< Mid-teardown after a directory eviction.
    };

    Node *findNode(CoreId core, LineAddr line);
    const Node *findNode(CoreId core, LineAddr line) const;
    Node &node(CoreId core, LineAddr line);

    unsigned bankOf(LineAddr line) const
    {
        return static_cast<unsigned>(line) & (banks_ - 1);
    }

    /** Dispatch a miss/upgrade transaction to the directory. */
    void submitTxn(CoreId core, LineAddr line, LineSerializer::Body body,
                   Cycle departAt);

    /** Transaction bodies (run at directory dispatch).  nullopt means
     *  the body deferred: a memory fill holds the line until the LLC
     *  pipe reply frees it via LineSerializer::releaseAt. */
    std::optional<Cycle> loadTxn(CoreId core, Addr addr, LoadDone done,
                                 Cycle t);
    std::optional<Cycle> storeTxn(CoreId core, Addr addr, StoreId store,
                                  StoreDone done, Cycle t);

    /**
     * MSHR gate for the miss paths: returns true when the access may
     * proceed (allocating a register and wrapping *done's* completion
     * to free it), false when all of @p core's registers are busy and
     * @p retry was parked.  A line already tracked passes through
     * unwrapped — it is a retry or secondary miss of the in-flight
     * primary, whose completion frees the register.
     */
    template <typename Done>
    bool mshrAdmit(CoreId core, LineAddr line, Done *done,
                   std::function<void()> retry);

    /**
     * Timing tail of a decomposed memory fill, starting from the LLC
     * pipe: async bank access, an NVM read behind it on an LLC miss,
     * then the data leg to the requester.  Runs at the directory; the
     * functional contents were resolved at dispatch.  @p finish runs
     * when the fill data is at the bank (the data leg's departure
     * instant) with the departure cycle.
     */
    void fillTiming(LineAddr line, Cycle t, bool fromNvm,
                    std::function<void(Cycle)> finish);

    /**
     * Handle a blocked transaction: the core's own node is invalid and
     * must clear (pending persist / frozen AG) before the access may
     * proceed.  Otherwise a stale clean copy is spliced; *relinked is
     * set if it was an AG member (the caller must fire onNodeRelinked
     * after re-creating the node at the head).
     * @return true if the caller must wait (waiter registered).
     */
    bool mustWaitForOwnNode(CoreId core, LineAddr line,
                            std::function<void()> retry, Cycle t,
                            bool *relinked = nullptr);

    /** Prepend @p core as the new head of @p line's list. */
    Node &prependNode(CoreId core, LineAddr line);

    /**
     * Mark all valid nodes below @p newHead invalid (background inv).
     * @p alreadyExposed names a node whose dirty-expose hook the data
     * path already fired (the old head that supplied the data).
     */
    void invalidateBelow(CoreId newHead, LineAddr line, Cycle t,
                         CoreId alreadyExposed = invalidCore);

    /** Splice (core, line)'s node out of its list and erase it. */
    void unlinkNode(CoreId core, LineAddr line, Cycle t);

    /**
     * A version at/below @p fromCore 's node persisted: fire
     * onBecameTail for each node walking headwards from @p fromCore,
     * stopping after the first dirty node (which now holds the token;
     * everything above it is still blocked).
     */
    void notifyPersistTailUpward(CoreId fromCore, LineAddr line, Cycle t);

    /** Capacity insert into @p core's array; handles the victim. */
    void insertResident(CoreId core, LineAddr line, Cycle t);

    void handleVictim(CoreId core, LineAddr victim, Cycle t);

    /** Directory-entry teardown after a directory eviction (§III-B). */
    void teardownEntry(LineAddr victim, Cycle t);

    void maybeReleaseEntry(LineAddr line, Cycle t);

    void notifyNodeWaiters(CoreId core, LineAddr line);

    void sampleListStats(LineAddr line);

    void enterEvictBuffer(CoreId core);
    void leaveEvictBuffer(CoreId core);

    // --- wiring -------------------------------------------------------
    const SystemConfig &cfg_;
    EventQueue &eq_;
    /** All cross-tile traffic (requests, forwards, data replies,
     *  writebacks) goes through the bus — the explicit message path
     *  the sharded kernel relies on (docs/pdes.md). */
    MessageBus bus_;
    Llc &llc_;
    Nvm &nvm_;
    StatsRegistry &stats_;
    LineSerializer serializer_;
    DirectoryCapacity capacity_;
    Mshr mshr_;
    unsigned banks_;
    Cycle dirLatency_ = 6;

    std::vector<std::unordered_map<LineAddr, Node>> nodes_; ///< Per core.
    std::vector<CacheArray> arrays_;                        ///< Per core.
    std::unordered_map<LineAddr, Entry> entries_;
    std::vector<unsigned> evictBufOcc_;

    /** Accesses blocked on the owning core's pending node. */
    std::unordered_map<std::uint64_t,
                       std::vector<std::function<void()>>> nodeWaiters_;
    /** Transactions blocked on a zombie entry teardown. */
    std::unordered_map<LineAddr,
                       std::vector<std::function<void()>>> zombieWaiters_;

    // --- stats ---------------------------------------------------------
    Counter &hits_;
    Counter &misses_;
    Counter &upgrades_;
    Counter &coherenceWb_;
    Histogram &persistListLen_;
    Histogram &coherenceListLen_;
    Histogram &evictBufHist_;

    static std::uint64_t
    waiterKey(CoreId core, LineAddr line)
    {
        return (static_cast<std::uint64_t>(core) << 52) ^ line;
    }
};

} // namespace tsoper

#endif // TSOPER_COHERENCE_SLC_HH
