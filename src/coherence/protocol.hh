/**
 * @file
 * Common interface between cores, coherence protocols, and persistency
 * engines.
 *
 * The simulator uses a transaction-atomic timing model (DESIGN.md §1):
 * each coherence transaction *commits* its state changes at the
 * directory-serialization instant, while its *cost* is computed from
 * explicit message legs over the NoC and queued resources.  Functional
 * values therefore always reflect the serialization order; completion
 * callbacks carry the timing.
 */

#ifndef TSOPER_COHERENCE_PROTOCOL_HH
#define TSOPER_COHERENCE_PROTOCOL_HH

#include <functional>

#include "mem/nvm.hh"
#include "sim/store_log.hh"
#include "sim/types.hh"

namespace tsoper
{

/** Why a dirty version left (or was exposed from) a private cache. */
enum class ExposeReason
{
    RemoteRead,  ///< Another core read the line.
    RemoteWrite, ///< Another core claimed the line for writing.
    Eviction,    ///< Capacity eviction from the private cache.
    DirEviction, ///< Directory entry eviction forced the exposure.
};

/**
 * Callbacks through which a coherence protocol informs the persistency
 * engine of the events that drive atomic-group formation, freezing, and
 * BSP's exclusion windows.  All calls happen at directory-serialization
 * instants, so the engine observes a single consistent logical order.
 */
class ProtocolHooks
{
  public:
    virtual ~ProtocolHooks() = default;

    /**
     * A remote @p requester takes over (reads or writes) a dirty
     * version held by @p owner.  The engine may delay the handover —
     * BSP's L1 exclusion — by returning a cycle later than @p now at
     * which the owner may supply the data.
     */
    virtual Cycle
    onDirtyExpose(CoreId owner, LineAddr line, CoreId requester,
                  bool forWrite, Cycle now)
    {
        (void)owner; (void)line; (void)requester; (void)forWrite;
        return now;
    }

    /**
     * @p reader linked a line whose current version is dirty in a
     * remote atomic group; the reader must record the incoming
     * persist-before dependence by including the line in its own AG
     * (§III-A, "The Role of the Reads").
     */
    virtual void
    onReadDependence(CoreId reader, LineAddr line, Cycle now)
    {
        (void)reader; (void)line; (void)now;
    }

    /**
     * A dirty version left @p owner's private cache for a reason that
     * is not a remote request (capacity or directory eviction).  With a
     * persistency engine this freezes the AG and starts its persist;
     * without one the protocol has already written the data back.
     */
    virtual void
    onDirtyEvict(CoreId owner, LineAddr line, ExposeReason why, Cycle now)
    {
        (void)owner; (void)line; (void)why; (void)now;
    }

    /**
     * Asked at the serialization instant of a store transaction,
     * *before* it commits: if the store must not commit yet (its line
     * sits in a frozen atomic group / closed epoch — the gate may have
     * opened and closed again while the request was in flight), the
     * hook takes ownership of @p retry, runs it when the block clears,
     * and returns true.
     */
    virtual bool
    tryDeferStoreCommit(CoreId core, LineAddr line,
                        std::function<void()> retry)
    {
        (void)core; (void)line; (void)retry;
        return false;
    }

    /**
     * A store by @p core committed into its private cache at the
     * serialization instant @p now (the line's new version is dirty).
     */
    virtual void
    onStoreCommitted(CoreId core, LineAddr line, Cycle now)
    {
        (void)core; (void)line; (void)now;
    }

    /** SLC only: (core, line)'s node became its sharing list's tail. */
    virtual void
    onBecameTail(CoreId core, LineAddr line, Cycle now)
    {
        (void)core; (void)line; (void)now;
    }

    /**
     * SLC only: may an invalidated dirty version be dropped without
     * persisting?  Baselines say yes; persistency engines say no —
     * the node stays on the sharing list until it persists
     * (non-destructive invalidation, §IV-A principle 1).
     */
    virtual bool dropsInvalidDirty() const { return true; }

    /**
     * SLC only: does a remote *read* of a dirty line write the data
     * back to the LLC and clean the owner (a MESI-style M->S
     * downgrade)?  Default false: SCI-like sharing lists — like the
     * paper's baseline and like MOESI's O state — keep the dirty data
     * with the owner; persistency engines must also keep the version
     * dirty so it reaches the LLC through their persist path.
     */
    virtual bool writebackOnDowngrade() const { return false; }

    /**
     * SLC only: is (core, line) a member of an unpersisted atomic
     * group?  Clean members must stay linked so the incoming pb
     * dependence they encode survives until satisfied.
     */
    virtual bool
    lineInUnpersistedAg(CoreId core, LineAddr line) const
    {
        (void)core; (void)line;
        return false;
    }

    /**
     * SLC only: is (core, line) a member of a *frozen* AG?  A frozen
     * group's members must not be re-linked (that could add an incoming
     * dependence after the freeze and break the §III-C cycle-freedom
     * argument); re-accesses stall until the group persists.
     */
    virtual bool
    lineInFrozenAg(CoreId core, LineAddr line) const
    {
        (void)core; (void)line;
        return false;
    }

    /**
     * SLC only: (core, line)'s node was spliced and re-linked at the
     * head of its sharing list (a re-access of a stale clean copy).
     * The engine must recompute the line's persist-tail dependence —
     * re-linking may move it above unpersisted versions (a legal *new*
     * incoming dependence of its still-open AG).
     */
    virtual void
    onNodeRelinked(CoreId core, LineAddr line, Cycle now)
    {
        (void)core; (void)line; (void)now;
    }
};

/** Complexity summary used by bench/table_protocol_complexity. */
struct ProtocolComplexity
{
    const char *name;
    int stableStates;
    int requestTypes;
    int protocolActions;
};

/** Abstract coherence protocol driven by the cores. */
class CoherenceProtocol
{
  public:
    /** Load completion: delivery cycle and the observed word value. */
    using LoadDone = std::function<void(Cycle, StoreId)>;
    /** Store completion: the cycle write permission/retire happened. */
    using StoreDone = std::function<void(Cycle)>;

    virtual ~CoherenceProtocol() = default;

    /**
     * Perform a load by @p core of the word at @p addr.  The value is
     * bound at the serialization instant; @p done carries the timing.
     */
    virtual void load(CoreId core, Addr addr, LoadDone done) = 0;

    /**
     * Perform a store (the head of @p core's store buffer).  The new
     * value is committed at the serialization instant.
     */
    virtual void store(CoreId core, Addr addr, StoreId store,
                       StoreDone done) = 0;

    /** Install the engine callbacks (must precede any traffic). */
    void setHooks(ProtocolHooks *hooks) { hooks_ = hooks; }

    /** Optional execution recording for the crash checker. */
    void setStoreLog(StoreLog *log) { log_ = log; }

    virtual ProtocolComplexity complexity() const = 0;

  protected:
    void
    logLoad(CoreId core, Addr addr, StoreId value)
    {
        if (log_)
            log_->loadObserved(core, addr, value);
    }

    void
    logStore(CoreId core, Addr addr, StoreId id)
    {
        if (log_)
            log_->storeCommitted(core, addr, id);
    }

    static ProtocolHooks defaultHooks_;
    ProtocolHooks *hooks_ = &defaultHooks_;
    StoreLog *log_ = nullptr;
};

} // namespace tsoper

#endif // TSOPER_COHERENCE_PROTOCOL_HH
