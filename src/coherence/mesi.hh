/**
 * @file
 * Conventional directory-based MESI protocol.
 *
 * Serves three roles in the reproduction:
 *  1. the conventional baseline the paper quotes SLC's ~3% overhead
 *     against (§V "Systems", bench/stat_slc_vs_mesi);
 *  2. the substrate BSP persists through (Joshi et al. persist via the
 *     LLC, which imposes single-version semantics);
 *  3. the contrast for the protocol-complexity table.
 *
 * Unlike SLC, the directory here is *blocking*: a transaction occupies
 * its line until the requester has data and acknowledgements, which —
 * combined with BSP's flush-before-handover (ProtocolHooks::
 * onDirtyExpose) — produces the L1 exclusion time of Fig. 1a.
 *
 * Blocking is implemented event-driven: state commits at dispatch, the
 * timing legs (forwards, invalidations + acks, data replies) travel as
 * real messages, and a TxnTable entry holds the line's serializer slot
 * until the last leg lands (LineSerializer::releaseAt).
 */

#ifndef TSOPER_COHERENCE_MESI_HH
#define TSOPER_COHERENCE_MESI_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "coherence/directory.hh"
#include "coherence/protocol.hh"
#include "coherence/txn.hh"
#include "mem/cache_array.hh"
#include "mem/llc.hh"
#include "mem/nvm.hh"
#include "noc/mesh.hh"
#include "noc/message_bus.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace tsoper
{

class MesiProtocol : public CoherenceProtocol
{
  public:
    MesiProtocol(const SystemConfig &cfg, EventQueue &eq, Mesh &mesh,
                 Llc &llc, Nvm &nvm, StatsRegistry &stats);

    void load(CoreId core, Addr addr, LoadDone done) override;
    void store(CoreId core, Addr addr, StoreId store,
               StoreDone done) override;
    ProtocolComplexity complexity() const override;

    // --- BSP engine API -----------------------------------------------

    /** Is (core, line) in state M? */
    bool isModified(CoreId core, LineAddr line) const;

    /** Version contents of (core, line); the node must exist. */
    const LineWords &lineWords(CoreId core, LineAddr line) const;

    /**
     * Epoch flush: write (core, line)'s version through to the LLC,
     * starting no earlier than @p earliest and honouring LLC exclusion
     * (Definition 2: the LLC accepts a newer version only after the
     * older version's NVM persist completed).  The line downgrades to
     * E.  @p done receives the completion cycle and whether a write
     * actually happened (false if the line was no longer modified —
     * e.g. a remote request already forced it to the LLC).
     */
    void flushLine(CoreId core, LineAddr line, Cycle earliest,
                   std::function<void(Cycle, bool)> done);

  private:
    enum class St { I, S, E, M };

    struct Node
    {
        St st = St::I;
        Cycle dataReadyAt = 0;
        LineWords words{};
    };

    struct Entry
    {
        CoreId owner = invalidCore;
        std::uint64_t sharers = 0;
    };

    static std::uint64_t bit(CoreId c) { return 1ull << c; }

    unsigned bankOf(LineAddr line) const
    {
        return static_cast<unsigned>(line) & (banks_ - 1);
    }

    Node *findNode(CoreId core, LineAddr line);
    const Node *findNode(CoreId core, LineAddr line) const;
    Node &node(CoreId core, LineAddr line);

    void submitTxn(CoreId core, LineAddr line, LineSerializer::Body body,
                   Cycle departAt);

    /** Transaction bodies (run at directory dispatch).  nullopt means
     *  the body deferred: the line is held until the last timing leg
     *  lands and finishTxn frees it. */
    std::optional<Cycle> loadTxn(CoreId core, Addr addr, LoadDone done,
                                 Cycle t);
    std::optional<Cycle> storeTxn(CoreId core, Addr addr, StoreId store,
                                  StoreDone done, Cycle t);

    /** MSHR gate for the miss paths (same contract as SlcProtocol's). */
    template <typename Done>
    bool mshrAdmit(CoreId core, LineAddr line, Done *done,
                   std::function<void()> retry);

    /**
     * Timing tail of a memory fill: async LLC bank access, an NVM read
     * behind it on an LLC miss.  @p finish runs at the directory with
     * the cycle the data is at the bank.
     */
    void fillTiming(LineAddr line, Cycle t, bool fromNvm,
                    std::function<void(Cycle)> finish);

    /** Retire a deferred transaction: unpin the directory entry and
     *  free the line's serializer slot at @p at. */
    void finishTxn(LineAddr line, Cycle at);

    /**
     * Invalidate all sharers except @p except (state commits now); each
     * sharer's inv travels as a message and its ack (sharer ->
     * requester) reports a leg of @p txn.  @return the number of
     * invalidation legs sent.
     */
    unsigned sendInvalidations(LineAddr line, CoreId except,
                               CoreId requester, Cycle t, TxnTable::Id txn);

    void insertResident(CoreId core, LineAddr line, Cycle t);
    void handleVictim(CoreId core, LineAddr victim, Cycle t);
    void teardownEntry(LineAddr victim, Cycle t);
    void maybeReleaseEntry(LineAddr line);

    const SystemConfig &cfg_;
    EventQueue &eq_;
    /** Explicit cross-tile message path (see docs/pdes.md). */
    MessageBus bus_;
    Llc &llc_;
    Nvm &nvm_;
    LineSerializer serializer_;
    DirectoryCapacity capacity_;
    TxnTable txns_;
    Mshr mshr_;
    unsigned banks_;
    Cycle dirLatency_ = 6;

    std::vector<std::unordered_map<LineAddr, Node>> nodes_;
    std::vector<CacheArray> arrays_;
    std::unordered_map<LineAddr, Entry> entries_;

    Counter &hits_;
    Counter &misses_;
    Counter &upgrades_;
    Counter &coherenceWb_;
};

} // namespace tsoper

#endif // TSOPER_COHERENCE_MESI_HH
