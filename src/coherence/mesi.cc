#include "coherence/mesi.hh"

#include <algorithm>
#include <utility>

#include "sim/log.hh"
#include "sim/shard_fence.hh"

namespace tsoper
{

MesiProtocol::MesiProtocol(const SystemConfig &cfg, EventQueue &eq,
                           Mesh &mesh, Llc &llc, Nvm &nvm,
                           StatsRegistry &stats)
    : cfg_(cfg), eq_(eq), bus_(cfg, eq, mesh), llc_(llc), nvm_(nvm),
      serializer_(eq), capacity_(cfg.dirEntriesPerBank, cfg.llcBanks,
                                 cfg.dirEvictBufferEntries, stats),
      banks_(cfg.llcBanks),
      hits_(stats.counter("mesi.hits")),
      misses_(stats.counter("mesi.misses")),
      upgrades_(stats.counter("mesi.upgrades")),
      coherenceWb_(stats.counter("traffic.coherence_wb"))
{
    nodes_.resize(cfg.numCores);
    arrays_.reserve(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c)
        arrays_.emplace_back(cfg.privSets, cfg.privWays);
}

MesiProtocol::Node *
MesiProtocol::findNode(CoreId core, LineAddr line)
{
    auto &map = nodes_[static_cast<unsigned>(core)];
    auto it = map.find(line);
    return it == map.end() ? nullptr : &it->second;
}

const MesiProtocol::Node *
MesiProtocol::findNode(CoreId core, LineAddr line) const
{
    return const_cast<MesiProtocol *>(this)->findNode(core, line);
}

MesiProtocol::Node &
MesiProtocol::node(CoreId core, LineAddr line)
{
    Node *n = findNode(core, line);
    tsoper_assert(n, "missing MESI node: core=", core, " line=", line);
    return *n;
}

void
MesiProtocol::load(CoreId core, Addr addr, LoadDone done)
{
    const LineAddr line = lineOf(addr);
    if (Node *n = findNode(core, line); n && n->st != St::I) {
        hits_.inc();
        arrays_[static_cast<unsigned>(core)].touch(line);
        const StoreId value = n->words[wordOf(addr)];
        eq_.scheduleIn(cfg_.privLatency, [done, value, this] {
            done(eq_.now(), value);
        });
        return;
    }
    misses_.inc();
    auto body = [this, core, addr, done](Cycle t) {
        return loadTxn(core, addr, done, t);
    };
    submitTxn(core, line, std::move(body), eq_.now() + cfg_.privLatency);
}

void
MesiProtocol::store(CoreId core, Addr addr, StoreId store, StoreDone done)
{
    const LineAddr line = lineOf(addr);
    if (Node *n = findNode(core, line);
        n && (n->st == St::M || n->st == St::E)) {
        hits_.inc();
        arrays_[static_cast<unsigned>(core)].touch(line);
        n->st = St::M;
        n->words[wordOf(addr)] = store;
        hooks_->onStoreCommitted(core, line, eq_.now());
        logStore(core, addr, store);
        eq_.scheduleIn(cfg_.privLatency, [done, this] { done(eq_.now()); });
        return;
    }
    auto body = [this, core, addr, store, done](Cycle t) {
        return storeTxn(core, addr, store, done, t);
    };
    submitTxn(core, line, std::move(body), eq_.now() + cfg_.privLatency);
}

void
MesiProtocol::submitTxn(CoreId core, LineAddr line,
                        LineSerializer::Body body, Cycle departAt)
{
    bus_.send(bus_.coreNode(core), bus_.bankNode(bankOf(line)),
              cfg_.ctrlMsgBytes, departAt,
              [this, line, body = std::move(body)]() mutable {
                  serializer_.submit(line, std::move(body));
              });
}

Cycle
MesiProtocol::loadTxn(CoreId core, Addr addr, LoadDone done, Cycle t)
{
    const LineAddr line = lineOf(addr);
    // Transaction bodies execute at the directory bank's tile.
    shardFenceCheck(bus_.bankNode(bankOf(line)));
    if (Node *n = findNode(core, line); n && n->st != St::I) {
        // Raced: an earlier queued transaction already fetched it.
        done(t + dirLatency_, n->words[wordOf(addr)]);
        return t + dirLatency_;
    }
    if (auto victim = capacity_.allocate(line))
        teardownEntry(*victim, t);
    Entry &e = entries_[line];
    Cycle dataAt;
    LineWords words;
    if (e.owner != invalidCore) {
        const CoreId o = e.owner;
        Node &on = node(o, line);
        const Cycle fwdAt = bus_.arrival(bus_.bankNode(bankOf(line)),
                                        bus_.coreNode(o),
                                        cfg_.ctrlMsgBytes, t);
        Cycle ready = std::max(fwdAt, on.dataReadyAt);
        if (on.st == St::M)
            ready = std::max(ready,
                             hooks_->onDirtyExpose(o, line, core, false, t));
        // The data reply leaves first (critical path)...
        dataAt = bus_.arrival(bus_.coreNode(o), bus_.coreNode(core),
                             lineBytes + cfg_.ctrlMsgBytes, ready);
        if (on.st == St::M) {
            // ...then the MESI downgrade writeback.
            llc_.install(line, on.words, true, t);
            coherenceWb_.inc();
            bus_.arrival(bus_.coreNode(o), bus_.bankNode(bankOf(line)),
                        lineBytes + cfg_.ctrlMsgBytes, ready);
        }
        words = on.words;
        on.st = St::S;
        e.sharers = bit(o) | bit(core);
        e.owner = invalidCore;
    } else if (e.sharers != 0 || llc_.contains(line)) {
        if (llc_.contains(line)) {
            words = llc_.lookup(line);
            dataAt = bus_.arrival(bus_.bankNode(bankOf(line)),
                                 bus_.coreNode(core),
                                 lineBytes + cfg_.ctrlMsgBytes,
                                 llc_.access(line, t));
        } else {
            // LLC lost the shared copy; fetch from any sharer.
            CoreId s = invalidCore;
            for (CoreId c = 0; c < static_cast<CoreId>(cfg_.numCores); ++c)
                if (e.sharers & bit(c)) { s = c; break; }
            tsoper_assert(s != invalidCore);
            Node &sn = node(s, line);
            const Cycle fwdAt = bus_.arrival(bus_.bankNode(bankOf(line)),
                                            bus_.coreNode(s),
                                            cfg_.ctrlMsgBytes, t);
            dataAt = bus_.arrival(bus_.coreNode(s), bus_.coreNode(core),
                                 lineBytes + cfg_.ctrlMsgBytes,
                                 std::max(fwdAt, sn.dataReadyAt));
            words = sn.words;
            llc_.install(line, words, false, t);
        }
        e.sharers |= bit(core);
    } else {
        std::tie(dataAt, words) = fetchFromMemory(core, line, t);
        e.owner = core; // E state: exclusive clean.
    }
    Node &nn = nodes_[static_cast<unsigned>(core)][line];
    nn.st = (e.owner == core) ? St::E : St::S;
    nn.words = words;
    nn.dataReadyAt = dataAt;
    insertResident(core, line, t);
    done(dataAt, words[wordOf(addr)]);
    return dataAt; // Blocking directory: hold the line to completion.
}

Cycle
MesiProtocol::storeTxn(CoreId core, Addr addr, StoreId store,
                       StoreDone done, Cycle t)
{
    const LineAddr line = lineOf(addr);
    shardFenceCheck(bus_.bankNode(bankOf(line)));
    if (hooks_->tryDeferStoreCommit(core, line,
                                    [this, core, addr, store, done] {
            this->store(core, addr, store, done);
        })) {
        return t + dirLatency_;
    }
    if (Node *n = findNode(core, line);
        n && (n->st == St::M || n->st == St::E)) {
        // Raced: already exclusive.
        n->st = St::M;
        n->words[wordOf(addr)] = store;
        hooks_->onStoreCommitted(core, line, t);
        logStore(core, addr, store);
        done(t + dirLatency_);
        return t + dirLatency_;
    }
    if (auto victim = capacity_.allocate(line))
        teardownEntry(*victim, t);
    Entry &e = entries_[line];
    Node *mine = findNode(core, line);
    Cycle dataAt;
    LineWords words;
    if (e.owner != invalidCore && e.owner != core) {
        const CoreId o = e.owner;
        Node &on = node(o, line);
        const Cycle fwdAt = bus_.arrival(bus_.bankNode(bankOf(line)),
                                        bus_.coreNode(o),
                                        cfg_.ctrlMsgBytes, t);
        Cycle ready = std::max(fwdAt, on.dataReadyAt);
        if (on.st == St::M)
            ready = std::max(ready,
                             hooks_->onDirtyExpose(o, line, core, true, t));
        dataAt = bus_.arrival(bus_.coreNode(o), bus_.coreNode(core),
                             lineBytes + cfg_.ctrlMsgBytes, ready);
        words = on.words;
        on.st = St::I;
        arrays_[static_cast<unsigned>(o)].erase(line);
        nodes_[static_cast<unsigned>(o)].erase(line);
    } else if (mine && mine->st == St::S) {
        upgrades_.inc();
        words = mine->words;
        const Cycle ackAt = invalidateSharers(line, core, core, t);
        dataAt = std::max(ackAt, bus_.arrival(bus_.bankNode(bankOf(line)),
                                             bus_.coreNode(core),
                                             cfg_.ctrlMsgBytes, t));
    } else if (e.sharers != 0 || llc_.contains(line)) {
        misses_.inc();
        if (llc_.contains(line)) {
            words = llc_.lookup(line);
        } else {
            CoreId s = invalidCore;
            for (CoreId c = 0; c < static_cast<CoreId>(cfg_.numCores); ++c)
                if (e.sharers & bit(c)) { s = c; break; }
            tsoper_assert(s != invalidCore);
            words = node(s, line).words;
        }
        const Cycle llcAt = bus_.arrival(bus_.bankNode(bankOf(line)),
                                        bus_.coreNode(core),
                                        lineBytes + cfg_.ctrlMsgBytes,
                                        llc_.access(line, t));
        const Cycle ackAt = invalidateSharers(line, core, core, t);
        dataAt = std::max(llcAt, ackAt);
    } else {
        misses_.inc();
        std::tie(dataAt, words) = fetchFromMemory(core, line, t);
    }
    e.sharers = 0;
    e.owner = core;
    Node &nn = nodes_[static_cast<unsigned>(core)][line];
    nn.st = St::M;
    nn.words = words;
    nn.words[wordOf(addr)] = store;
    nn.dataReadyAt = dataAt;
    insertResident(core, line, t);
    hooks_->onStoreCommitted(core, line, t);
    logStore(core, addr, store);
    done(dataAt);
    return dataAt;
}

std::pair<Cycle, LineWords>
MesiProtocol::fetchFromMemory(CoreId core, LineAddr line, Cycle t)
{
    LineWords words;
    Cycle at;
    if (llc_.contains(line)) {
        words = llc_.lookup(line);
        at = llc_.access(line, t);
    } else {
        words = nvm_.durable(line);
        at = nvm_.read(line, llc_.access(line, t));
        llc_.install(line, words, false, t);
    }
    const Cycle dataAt = bus_.arrival(bus_.bankNode(bankOf(line)),
                                     bus_.coreNode(core),
                                     lineBytes + cfg_.ctrlMsgBytes, at);
    return {dataAt, words};
}

Cycle
MesiProtocol::invalidateSharers(LineAddr line, CoreId except,
                                CoreId requester, Cycle t)
{
    Entry &e = entries_[line];
    Cycle lastAck = t;
    for (CoreId c = 0; c < static_cast<CoreId>(cfg_.numCores); ++c) {
        if (!(e.sharers & bit(c)) || c == except)
            continue;
        const Cycle invAt = bus_.arrival(bus_.bankNode(bankOf(line)),
                                        bus_.coreNode(c),
                                        cfg_.ctrlMsgBytes, t);
        const Cycle ackAt = bus_.arrival(bus_.coreNode(c),
                                        bus_.coreNode(requester),
                                        cfg_.ctrlMsgBytes, invAt);
        lastAck = std::max(lastAck, ackAt);
        arrays_[static_cast<unsigned>(c)].erase(line);
        nodes_[static_cast<unsigned>(c)].erase(line);
    }
    e.sharers &= bit(except);
    return lastAck;
}

void
MesiProtocol::insertResident(CoreId core, LineAddr line, Cycle t)
{
    auto result = arrays_[static_cast<unsigned>(core)].insert(line);
    tsoper_assert(!result.noSpace, "private cache set fully pinned");
    if (result.evicted)
        handleVictim(core, result.victim, t);
}

void
MesiProtocol::handleVictim(CoreId core, LineAddr victim, Cycle t)
{
    Node &v = node(core, victim);
    Entry &e = entries_[victim];
    if (v.st == St::M) {
        llc_.install(victim, v.words, true, t);
        coherenceWb_.inc();
        bus_.arrival(bus_.coreNode(core), bus_.bankNode(bankOf(victim)),
                    lineBytes + cfg_.ctrlMsgBytes, t);
        hooks_->onDirtyEvict(core, victim, ExposeReason::Eviction, t);
    } else {
        // Silent clean eviction; notify the directory (traffic only).
        bus_.arrival(bus_.coreNode(core), bus_.bankNode(bankOf(victim)),
                    cfg_.ctrlMsgBytes, t);
    }
    if (e.owner == core)
        e.owner = invalidCore;
    e.sharers &= ~bit(core);
    nodes_[static_cast<unsigned>(core)].erase(victim);
    maybeReleaseEntry(victim);
}

void
MesiProtocol::teardownEntry(LineAddr victim, Cycle t)
{
    shardFenceCheck(bus_.bankNode(bankOf(victim)));
    Entry &e = entries_[victim];
    if (e.owner != invalidCore) {
        const CoreId o = e.owner;
        Node &on = node(o, victim);
        if (on.st == St::M) {
            llc_.install(victim, on.words, true, t);
            coherenceWb_.inc();
            bus_.arrival(bus_.coreNode(o), bus_.bankNode(bankOf(victim)),
                        lineBytes + cfg_.ctrlMsgBytes, t);
            hooks_->onDirtyEvict(o, victim, ExposeReason::DirEviction, t);
        }
        arrays_[static_cast<unsigned>(o)].erase(victim);
        nodes_[static_cast<unsigned>(o)].erase(victim);
        e.owner = invalidCore;
    }
    for (CoreId c = 0; c < static_cast<CoreId>(cfg_.numCores); ++c) {
        if (!(e.sharers & bit(c)))
            continue;
        bus_.arrival(bus_.bankNode(bankOf(victim)), bus_.coreNode(c),
                    cfg_.ctrlMsgBytes, t);
        arrays_[static_cast<unsigned>(c)].erase(victim);
        nodes_[static_cast<unsigned>(c)].erase(victim);
    }
    e.sharers = 0;
    entries_.erase(victim);
    capacity_.release(victim);
}

void
MesiProtocol::maybeReleaseEntry(LineAddr line)
{
    auto it = entries_.find(line);
    if (it == entries_.end())
        return;
    if (it->second.owner == invalidCore && it->second.sharers == 0) {
        entries_.erase(it);
        capacity_.release(line);
    }
}

bool
MesiProtocol::isModified(CoreId core, LineAddr line) const
{
    const Node *n = findNode(core, line);
    return n && n->st == St::M;
}

const LineWords &
MesiProtocol::lineWords(CoreId core, LineAddr line) const
{
    const Node *n = findNode(core, line);
    tsoper_assert(n, "lineWords on absent node");
    return n->words;
}

void
MesiProtocol::flushLine(CoreId core, LineAddr line, Cycle earliest,
                        std::function<void(Cycle, bool)> done)
{
    // LLC exclusion: the write into the LLC must wait for the pending
    // NVM persist of the line's previous version (Definition 2).
    const Cycle start = std::max({earliest, eq_.now(),
                                  llc_.persistPendingUntil(line)});
    eq_.schedule(start, [this, core, line, done] {
        Node *n = findNode(core, line);
        if (!n || n->st != St::M) {
            done(eq_.now(), false);
            return;
        }
        const Cycle at =
            bus_.arrival(bus_.coreNode(core), bus_.bankNode(bankOf(line)),
                        lineBytes + cfg_.ctrlMsgBytes, eq_.now());
        llc_.install(line, n->words, true, eq_.now());
        coherenceWb_.inc();
        n->st = St::E;
        done(at, true);
    });
}

ProtocolComplexity
MesiProtocol::complexity() const
{
    return ProtocolComplexity{"MESI", 4, 4, 12};
}

} // namespace tsoper
