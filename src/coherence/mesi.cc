#include "coherence/mesi.hh"

#include <algorithm>
#include <utility>

#include "sim/log.hh"
#include "sim/shard_fence.hh"

namespace tsoper
{

MesiProtocol::MesiProtocol(const SystemConfig &cfg, EventQueue &eq,
                           Mesh &mesh, Llc &llc, Nvm &nvm,
                           StatsRegistry &stats)
    : cfg_(cfg), eq_(eq), bus_(cfg, eq, mesh), llc_(llc), nvm_(nvm),
      serializer_(eq), capacity_(cfg.dirEntriesPerBank, cfg.llcBanks,
                                 cfg.dirEvictBufferEntries, stats),
      txns_(stats), mshr_(eq, cfg.numCores, cfg.mshrEntries, stats),
      banks_(cfg.llcBanks),
      hits_(stats.counter("mesi.hits")),
      misses_(stats.counter("mesi.misses")),
      upgrades_(stats.counter("mesi.upgrades")),
      coherenceWb_(stats.counter("traffic.coherence_wb"))
{
    nodes_.resize(cfg.numCores);
    arrays_.reserve(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c)
        arrays_.emplace_back(cfg.privSets, cfg.privWays);
}

MesiProtocol::Node *
MesiProtocol::findNode(CoreId core, LineAddr line)
{
    auto &map = nodes_[static_cast<unsigned>(core)];
    auto it = map.find(line);
    return it == map.end() ? nullptr : &it->second;
}

const MesiProtocol::Node *
MesiProtocol::findNode(CoreId core, LineAddr line) const
{
    return const_cast<MesiProtocol *>(this)->findNode(core, line);
}

MesiProtocol::Node &
MesiProtocol::node(CoreId core, LineAddr line)
{
    Node *n = findNode(core, line);
    tsoper_assert(n, "missing MESI node: core=", core, " line=", line);
    return *n;
}

template <typename Done>
bool
MesiProtocol::mshrAdmit(CoreId core, LineAddr line, Done *done,
                        std::function<void()> retry)
{
    if (mshr_.has(core, line))
        return true; // Secondary miss / retry of the in-flight primary.
    if (mshr_.full(core)) {
        mshr_.defer(core, std::move(retry));
        return false;
    }
    mshr_.enter(core, line);
    *done = [this, core, line,
             inner = std::move(*done)](auto &&...args) {
        mshr_.leave(core, line);
        inner(std::forward<decltype(args)>(args)...);
    };
    return true;
}

void
MesiProtocol::load(CoreId core, Addr addr, LoadDone done)
{
    const LineAddr line = lineOf(addr);
    if (Node *n = findNode(core, line); n && n->st != St::I) {
        hits_.inc();
        arrays_[static_cast<unsigned>(core)].touch(line);
        const StoreId value = n->words[wordOf(addr)];
        eq_.scheduleIn(cfg_.privLatency, [done, value, this] {
            done(eq_.now(), value);
        });
        return;
    }
    if (!mshrAdmit(core, line, &done,
                   [this, core, addr, done] { load(core, addr, done); }))
        return;
    misses_.inc();
    auto body = [this, core, addr, done](Cycle t) {
        return loadTxn(core, addr, done, t);
    };
    submitTxn(core, line, std::move(body), eq_.now() + cfg_.privLatency);
}

void
MesiProtocol::store(CoreId core, Addr addr, StoreId store, StoreDone done)
{
    const LineAddr line = lineOf(addr);
    if (Node *n = findNode(core, line);
        n && (n->st == St::M || n->st == St::E)) {
        hits_.inc();
        arrays_[static_cast<unsigned>(core)].touch(line);
        n->st = St::M;
        n->words[wordOf(addr)] = store;
        hooks_->onStoreCommitted(core, line, eq_.now());
        logStore(core, addr, store);
        eq_.scheduleIn(cfg_.privLatency, [done, this] { done(eq_.now()); });
        return;
    }
    if (!mshrAdmit(core, line, &done, [this, core, addr, store, done] {
            this->store(core, addr, store, done);
        }))
        return;
    auto body = [this, core, addr, store, done](Cycle t) {
        return storeTxn(core, addr, store, done, t);
    };
    submitTxn(core, line, std::move(body), eq_.now() + cfg_.privLatency);
}

void
MesiProtocol::submitTxn(CoreId core, LineAddr line,
                        LineSerializer::Body body, Cycle departAt)
{
    bus_.send(bus_.coreNode(core), bus_.bankNode(bankOf(line)),
              cfg_.ctrlMsgBytes, departAt,
              [this, line, body = std::move(body)]() mutable {
                  serializer_.submit(line, std::move(body));
              });
}

std::optional<Cycle>
MesiProtocol::loadTxn(CoreId core, Addr addr, LoadDone done, Cycle t)
{
    const LineAddr line = lineOf(addr);
    // Transaction bodies execute at the directory bank's tile.
    shardFenceCheck(bus_.bankNode(bankOf(line)));
    if (Node *n = findNode(core, line); n && n->st != St::I) {
        // Raced: an earlier queued transaction already fetched it.
        done(t + dirLatency_, n->words[wordOf(addr)]);
        return t + dirLatency_;
    }
    if (auto victim = capacity_.allocate(line))
        teardownEntry(*victim, t);
    Entry &e = entries_[line];
    if (e.owner != invalidCore) {
        // Owner forward.  The downgrade commits now — the directory's
        // serialization instant — while the forward request and data
        // reply travel as messages; the line stays blocked until the
        // reply lands (conventional blocking directory).
        const CoreId o = e.owner;
        Node &on = node(o, line);
        const bool wasM = (on.st == St::M);
        Cycle exposeReady = t;
        if (wasM) {
            exposeReady = hooks_->onDirtyExpose(o, line, core, false, t);
            llc_.install(line, on.words, true, t);
            coherenceWb_.inc();
        }
        const Cycle floor = std::max(on.dataReadyAt, exposeReady);
        const LineWords words = on.words;
        on.st = St::S;
        e.sharers = bit(o) | bit(core);
        e.owner = invalidCore;
        Node &nn = nodes_[static_cast<unsigned>(core)][line];
        nn.st = St::S;
        nn.words = words;
        nn.dataReadyAt = t; // Finalized before release by the reply leg.
        insertResident(core, line, t);
        capacity_.setPinned(line, true);
        const StoreId value = words[wordOf(addr)];
        bus_.send(bus_.bankNode(bankOf(line)), bus_.coreNode(o),
                  cfg_.ctrlMsgBytes, t,
                  [this, o, core, line, value, done, floor, wasM] {
                      const Cycle ready = std::max(eq_.now(), floor);
                      // The data reply leaves first (critical path)...
                      const Cycle dataAt = bus_.send(
                          bus_.coreNode(o), bus_.coreNode(core),
                          lineBytes + cfg_.ctrlMsgBytes, ready,
                          [this, done, value] { done(eq_.now(), value); });
                      if (Node *n = findNode(core, line))
                          n->dataReadyAt = std::max(n->dataReadyAt, dataAt);
                      if (wasM) {
                          // ...then the MESI downgrade writeback
                          // (traffic; the LLC contents moved at
                          // dispatch).
                          bus_.arrival(bus_.coreNode(o),
                                       bus_.bankNode(bankOf(line)),
                                       lineBytes + cfg_.ctrlMsgBytes,
                                       ready);
                      }
                      finishTxn(line, dataAt);
                  });
        return std::nullopt;
    }
    if (e.sharers != 0 || llc_.contains(line)) {
        if (llc_.contains(line)) {
            const LineWords words = llc_.lookup(line);
            e.sharers |= bit(core);
            Node &nn = nodes_[static_cast<unsigned>(core)][line];
            nn.st = St::S;
            nn.words = words;
            nn.dataReadyAt = t;
            insertResident(core, line, t);
            capacity_.setPinned(line, true);
            const StoreId value = words[wordOf(addr)];
            fillTiming(line, t, false,
                       [this, core, line, value, done](Cycle at) {
                           const Cycle dataAt = bus_.send(
                               bus_.bankNode(bankOf(line)),
                               bus_.coreNode(core),
                               lineBytes + cfg_.ctrlMsgBytes, at,
                               [this, done, value] {
                                   done(eq_.now(), value);
                               });
                           if (Node *n = findNode(core, line))
                               n->dataReadyAt =
                                   std::max(n->dataReadyAt, dataAt);
                           finishTxn(line, dataAt);
                       });
            return std::nullopt;
        }
        // LLC lost the shared copy; fetch from any sharer.
        CoreId s = invalidCore;
        for (CoreId c = 0; c < static_cast<CoreId>(cfg_.numCores); ++c)
            if (e.sharers & bit(c)) { s = c; break; }
        tsoper_assert(s != invalidCore);
        Node &sn = node(s, line);
        const Cycle floor = sn.dataReadyAt;
        const LineWords words = sn.words;
        llc_.install(line, words, false, t);
        e.sharers |= bit(core);
        Node &nn = nodes_[static_cast<unsigned>(core)][line];
        nn.st = St::S;
        nn.words = words;
        nn.dataReadyAt = t;
        insertResident(core, line, t);
        capacity_.setPinned(line, true);
        const StoreId value = words[wordOf(addr)];
        bus_.send(bus_.bankNode(bankOf(line)), bus_.coreNode(s),
                  cfg_.ctrlMsgBytes, t,
                  [this, s, core, line, value, done, floor] {
                      const Cycle ready = std::max(eq_.now(), floor);
                      const Cycle dataAt = bus_.send(
                          bus_.coreNode(s), bus_.coreNode(core),
                          lineBytes + cfg_.ctrlMsgBytes, ready,
                          [this, done, value] { done(eq_.now(), value); });
                      if (Node *n = findNode(core, line))
                          n->dataReadyAt = std::max(n->dataReadyAt, dataAt);
                      finishTxn(line, dataAt);
                  });
        return std::nullopt;
    }
    // Memory fill: E state (exclusive clean).  Contents resolve now;
    // the LLC bank pipe and an NVM read behind it supply the timing.
    const LineWords words = nvm_.durable(line);
    llc_.install(line, words, false, t);
    e.owner = core;
    Node &nn = nodes_[static_cast<unsigned>(core)][line];
    nn.st = St::E;
    nn.words = words;
    nn.dataReadyAt = t;
    insertResident(core, line, t);
    capacity_.setPinned(line, true);
    const StoreId value = words[wordOf(addr)];
    fillTiming(line, t, true, [this, core, line, value, done](Cycle at) {
        const Cycle dataAt = bus_.send(
            bus_.bankNode(bankOf(line)), bus_.coreNode(core),
            lineBytes + cfg_.ctrlMsgBytes, at,
            [this, done, value] { done(eq_.now(), value); });
        if (Node *n = findNode(core, line))
            n->dataReadyAt = std::max(n->dataReadyAt, dataAt);
        finishTxn(line, dataAt);
    });
    return std::nullopt;
}

std::optional<Cycle>
MesiProtocol::storeTxn(CoreId core, Addr addr, StoreId store,
                       StoreDone done, Cycle t)
{
    const LineAddr line = lineOf(addr);
    shardFenceCheck(bus_.bankNode(bankOf(line)));
    if (hooks_->tryDeferStoreCommit(core, line,
                                    [this, core, addr, store, done] {
            this->store(core, addr, store, done);
        })) {
        return t + dirLatency_;
    }
    if (Node *n = findNode(core, line);
        n && (n->st == St::M || n->st == St::E)) {
        // Raced: already exclusive.
        n->st = St::M;
        n->words[wordOf(addr)] = store;
        hooks_->onStoreCommitted(core, line, t);
        logStore(core, addr, store);
        done(t + dirLatency_);
        return t + dirLatency_;
    }
    if (auto victim = capacity_.allocate(line))
        teardownEntry(*victim, t);
    Entry &e = entries_[line];
    Node *mine = findNode(core, line);
    if (e.owner != invalidCore && e.owner != core) {
        // Owner invalidation + data forward, as one message chain.
        const CoreId o = e.owner;
        Node &on = node(o, line);
        const bool wasM = (on.st == St::M);
        Cycle exposeReady = t;
        if (wasM)
            exposeReady = hooks_->onDirtyExpose(o, line, core, true, t);
        const Cycle floor = std::max(on.dataReadyAt, exposeReady);
        const LineWords words = on.words;
        arrays_[static_cast<unsigned>(o)].erase(line);
        nodes_[static_cast<unsigned>(o)].erase(line);
        e.sharers = 0;
        e.owner = core;
        Node &nn = nodes_[static_cast<unsigned>(core)][line];
        nn.st = St::M;
        nn.words = words;
        nn.words[wordOf(addr)] = store;
        nn.dataReadyAt = t;
        insertResident(core, line, t);
        hooks_->onStoreCommitted(core, line, t);
        logStore(core, addr, store);
        capacity_.setPinned(line, true);
        bus_.send(bus_.bankNode(bankOf(line)), bus_.coreNode(o),
                  cfg_.ctrlMsgBytes, t,
                  [this, o, core, line, done, floor] {
                      const Cycle ready = std::max(eq_.now(), floor);
                      const Cycle dataAt = bus_.send(
                          bus_.coreNode(o), bus_.coreNode(core),
                          lineBytes + cfg_.ctrlMsgBytes, ready,
                          [this, done] { done(eq_.now()); });
                      if (Node *n = findNode(core, line))
                          n->dataReadyAt = std::max(n->dataReadyAt, dataAt);
                      finishTxn(line, dataAt);
                  });
        return std::nullopt;
    }
    if (mine && mine->st == St::S) {
        // S -> M upgrade: a TxnTable entry collects one ack per
        // invalidated sharer plus the home's permission grant; the SB
        // drains when the last leg lands.
        upgrades_.inc();
        unsigned numInv = 0;
        for (CoreId c = 0; c < static_cast<CoreId>(cfg_.numCores); ++c)
            if ((e.sharers & bit(c)) && c != core)
                ++numInv;
        const TxnTable::Id id = txns_.begin(
            line, core, numInv + 1,
            [this, core, line, done](Cycle readyAt) {
                if (Node *n = findNode(core, line))
                    n->dataReadyAt = std::max(n->dataReadyAt, readyAt);
                done(readyAt);
                finishTxn(line, readyAt);
            });
        sendInvalidations(line, core, core, t, id);
        bus_.send(bus_.bankNode(bankOf(line)), bus_.coreNode(core),
                  cfg_.ctrlMsgBytes, t,
                  [this, id] { txns_.legDone(id, eq_.now()); });
        e.sharers = 0;
        e.owner = core;
        mine->st = St::M;
        mine->words[wordOf(addr)] = store;
        insertResident(core, line, t);
        hooks_->onStoreCommitted(core, line, t);
        logStore(core, addr, store);
        capacity_.setPinned(line, true);
        return std::nullopt;
    }
    misses_.inc();
    if (e.sharers != 0 || llc_.contains(line)) {
        // Data from the LLC (or a sharer when the LLC lost the copy)
        // plus one invalidation ack per sharer: the data leg and the
        // acks race, and the TxnTable folds their arrivals.
        LineWords words;
        if (llc_.contains(line)) {
            words = llc_.lookup(line);
        } else {
            CoreId s = invalidCore;
            for (CoreId c = 0; c < static_cast<CoreId>(cfg_.numCores); ++c)
                if (e.sharers & bit(c)) { s = c; break; }
            tsoper_assert(s != invalidCore);
            words = node(s, line).words;
        }
        unsigned numInv = 0;
        for (CoreId c = 0; c < static_cast<CoreId>(cfg_.numCores); ++c)
            if ((e.sharers & bit(c)) && c != core)
                ++numInv;
        const TxnTable::Id id = txns_.begin(
            line, core, numInv + 1,
            [this, core, line, done](Cycle readyAt) {
                if (Node *n = findNode(core, line))
                    n->dataReadyAt = std::max(n->dataReadyAt, readyAt);
                done(readyAt);
                finishTxn(line, readyAt);
            });
        sendInvalidations(line, core, core, t, id);
        e.sharers = 0;
        e.owner = core;
        Node &nn = nodes_[static_cast<unsigned>(core)][line];
        nn.st = St::M;
        nn.words = words;
        nn.words[wordOf(addr)] = store;
        nn.dataReadyAt = t;
        insertResident(core, line, t);
        hooks_->onStoreCommitted(core, line, t);
        logStore(core, addr, store);
        capacity_.setPinned(line, true);
        fillTiming(line, t, false, [this, core, line, id](Cycle at) {
            bus_.send(bus_.bankNode(bankOf(line)), bus_.coreNode(core),
                      lineBytes + cfg_.ctrlMsgBytes, at,
                      [this, id] { txns_.legDone(id, eq_.now()); });
        });
        return std::nullopt;
    }
    // Memory fill straight to M.
    const LineWords memWords = nvm_.durable(line);
    llc_.install(line, memWords, false, t);
    e.sharers = 0;
    e.owner = core;
    Node &nn = nodes_[static_cast<unsigned>(core)][line];
    nn.st = St::M;
    nn.words = memWords;
    nn.words[wordOf(addr)] = store;
    nn.dataReadyAt = t;
    insertResident(core, line, t);
    hooks_->onStoreCommitted(core, line, t);
    logStore(core, addr, store);
    capacity_.setPinned(line, true);
    fillTiming(line, t, true, [this, core, line, done](Cycle at) {
        const Cycle dataAt = bus_.send(
            bus_.bankNode(bankOf(line)), bus_.coreNode(core),
            lineBytes + cfg_.ctrlMsgBytes, at,
            [this, done] { done(eq_.now()); });
        if (Node *n = findNode(core, line))
            n->dataReadyAt = std::max(n->dataReadyAt, dataAt);
        finishTxn(line, dataAt);
    });
    return std::nullopt;
}

void
MesiProtocol::fillTiming(LineAddr line, Cycle t, bool fromNvm,
                         std::function<void(Cycle)> finish)
{
    llc_.accessAsync(line, t,
                     [this, line, fromNvm,
                      finish = std::move(finish)](Cycle at) {
                         if (fromNvm)
                             at = nvm_.read(line, at);
                         finish(at);
                     });
}

void
MesiProtocol::finishTxn(LineAddr line, Cycle at)
{
    capacity_.setPinned(line, false);
    serializer_.releaseAt(line, at);
}

unsigned
MesiProtocol::sendInvalidations(LineAddr line, CoreId except,
                                CoreId requester, Cycle t, TxnTable::Id txn)
{
    Entry &e = entries_[line];
    unsigned sent = 0;
    for (CoreId c = 0; c < static_cast<CoreId>(cfg_.numCores); ++c) {
        if (!(e.sharers & bit(c)) || c == except)
            continue;
        ++sent;
        // State commits now; the inv and its ack are timing legs.
        arrays_[static_cast<unsigned>(c)].erase(line);
        nodes_[static_cast<unsigned>(c)].erase(line);
        bus_.send(bus_.bankNode(bankOf(line)), bus_.coreNode(c),
                  cfg_.ctrlMsgBytes, t, [this, c, requester, txn] {
                      bus_.send(bus_.coreNode(c), bus_.coreNode(requester),
                                cfg_.ctrlMsgBytes, eq_.now(), [this, txn] {
                                    txns_.legDone(txn, eq_.now());
                                });
                  });
    }
    e.sharers &= bit(except);
    return sent;
}

void
MesiProtocol::insertResident(CoreId core, LineAddr line, Cycle t)
{
    auto result = arrays_[static_cast<unsigned>(core)].insert(line);
    tsoper_assert(!result.noSpace, "private cache set fully pinned");
    if (result.evicted)
        handleVictim(core, result.victim, t);
}

void
MesiProtocol::handleVictim(CoreId core, LineAddr victim, Cycle t)
{
    Node &v = node(core, victim);
    Entry &e = entries_[victim];
    if (v.st == St::M) {
        llc_.install(victim, v.words, true, t);
        coherenceWb_.inc();
        bus_.arrival(bus_.coreNode(core), bus_.bankNode(bankOf(victim)),
                    lineBytes + cfg_.ctrlMsgBytes, t);
        hooks_->onDirtyEvict(core, victim, ExposeReason::Eviction, t);
    } else {
        // Silent clean eviction; notify the directory (traffic only).
        bus_.arrival(bus_.coreNode(core), bus_.bankNode(bankOf(victim)),
                    cfg_.ctrlMsgBytes, t);
    }
    if (e.owner == core)
        e.owner = invalidCore;
    e.sharers &= ~bit(core);
    nodes_[static_cast<unsigned>(core)].erase(victim);
    maybeReleaseEntry(victim);
}

void
MesiProtocol::teardownEntry(LineAddr victim, Cycle t)
{
    shardFenceCheck(bus_.bankNode(bankOf(victim)));
    Entry &e = entries_[victim];
    if (e.owner != invalidCore) {
        const CoreId o = e.owner;
        Node &on = node(o, victim);
        if (on.st == St::M) {
            llc_.install(victim, on.words, true, t);
            coherenceWb_.inc();
            bus_.arrival(bus_.coreNode(o), bus_.bankNode(bankOf(victim)),
                        lineBytes + cfg_.ctrlMsgBytes, t);
            hooks_->onDirtyEvict(o, victim, ExposeReason::DirEviction, t);
        }
        arrays_[static_cast<unsigned>(o)].erase(victim);
        nodes_[static_cast<unsigned>(o)].erase(victim);
        e.owner = invalidCore;
    }
    for (CoreId c = 0; c < static_cast<CoreId>(cfg_.numCores); ++c) {
        if (!(e.sharers & bit(c)))
            continue;
        bus_.arrival(bus_.bankNode(bankOf(victim)), bus_.coreNode(c),
                    cfg_.ctrlMsgBytes, t);
        arrays_[static_cast<unsigned>(c)].erase(victim);
        nodes_[static_cast<unsigned>(c)].erase(victim);
    }
    e.sharers = 0;
    entries_.erase(victim);
    capacity_.release(victim);
}

void
MesiProtocol::maybeReleaseEntry(LineAddr line)
{
    auto it = entries_.find(line);
    if (it == entries_.end())
        return;
    if (it->second.owner == invalidCore && it->second.sharers == 0) {
        entries_.erase(it);
        capacity_.release(line);
    }
}

bool
MesiProtocol::isModified(CoreId core, LineAddr line) const
{
    const Node *n = findNode(core, line);
    return n && n->st == St::M;
}

const LineWords &
MesiProtocol::lineWords(CoreId core, LineAddr line) const
{
    const Node *n = findNode(core, line);
    tsoper_assert(n, "lineWords on absent node");
    return n->words;
}

void
MesiProtocol::flushLine(CoreId core, LineAddr line, Cycle earliest,
                        std::function<void(Cycle, bool)> done)
{
    // LLC exclusion: the write into the LLC must wait for the pending
    // NVM persist of the line's previous version (Definition 2).
    const Cycle start = std::max({earliest, eq_.now(),
                                  llc_.persistPendingUntil(line)});
    eq_.schedule(start, [this, core, line, done] {
        Node *n = findNode(core, line);
        if (!n || n->st != St::M) {
            done(eq_.now(), false);
            return;
        }
        const Cycle at =
            bus_.arrival(bus_.coreNode(core), bus_.bankNode(bankOf(line)),
                        lineBytes + cfg_.ctrlMsgBytes, eq_.now());
        llc_.install(line, n->words, true, eq_.now());
        coherenceWb_.inc();
        n->st = St::E;
        done(at, true);
    });
}

ProtocolComplexity
MesiProtocol::complexity() const
{
    return ProtocolComplexity{"MESI", 4, 4, 12};
}

} // namespace tsoper
