/**
 * @file
 * Multi-message transaction bookkeeping for the decomposed directory
 * protocols (docs/pdes.md "Multi-shard operation"):
 *
 *  - TxnTable: home-side transaction entries.  A directory bank that
 *    decomposes a request into several message legs (invalidations
 *    expecting acks, a data fetch, a permission grant) opens an entry
 *    with the number of outstanding legs; each reply folds its arrival
 *    cycle into the entry, and the completion fires — with the
 *    maximum over all legs — when the last one lands.
 *
 *  - Mshr: core-side miss-status holding registers.  A core tracks at
 *    most a fixed number of distinct missing lines in flight; a miss
 *    to a *new* line with all registers busy waits in a FIFO and
 *    retries as registers free.  A repeat access to an already-tracked
 *    line proceeds immediately (a secondary miss merges into the
 *    primary's register).
 */

#ifndef TSOPER_COHERENCE_TXN_HH
#define TSOPER_COHERENCE_TXN_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tsoper
{

class TxnTable
{
  public:
    using Id = std::uint64_t;
    /** Runs when the last leg lands, with the fold (max) of all leg
     *  cycles — which equals the current cycle, since legs arrive in
     *  event order. */
    using Completion = std::function<void(Cycle)>;

    explicit TxnTable(StatsRegistry &stats);

    /** Open an entry waiting on @p waits legs (>= 1). */
    Id begin(LineAddr line, CoreId requester, unsigned waits,
             Completion completion);

    /** One leg of @p id finished at @p at; fires the completion (and
     *  retires the entry) when the wait count reaches zero. */
    void legDone(Id id, Cycle at);

    /** Entries currently in flight (bounded by line serialization, not
     *  by the address footprint; asserted in test_directory). */
    std::size_t open() const { return entries_.size(); }

  private:
    struct Entry
    {
        LineAddr line;
        CoreId requester;
        unsigned waits;
        Cycle readyAt;
        Completion completion;
    };

    std::unordered_map<Id, Entry> entries_;
    Id next_ = 0;
    Counter &allocs_;
    Counter &legs_;
    Histogram &occupancy_;
};

class Mshr
{
  public:
    Mshr(EventQueue &eq, unsigned cores, unsigned entriesPerCore,
         StatsRegistry &stats);

    /** Is a miss for (core, line) already in flight? */
    bool has(CoreId core, LineAddr line) const;

    bool full(CoreId core) const;

    /** Track a new primary miss; (core, line) must not be tracked and
     *  the core must have a free register. */
    void enter(CoreId core, LineAddr line);

    /** Retire (core, line)'s register; if retries are parked, the
     *  oldest is rescheduled (zero-delay) to claim the freed slot. */
    void leave(CoreId core, LineAddr line);

    /** Park @p retry until one of @p core's registers frees (FIFO). */
    void defer(CoreId core, std::function<void()> retry);

    std::size_t inFlight(CoreId core) const;

  private:
    struct PerCore
    {
        std::unordered_set<LineAddr> lines;
        std::deque<std::function<void()>> retries;
    };

    EventQueue &eq_;
    unsigned entriesPerCore_;
    std::vector<PerCore> cores_;
    Counter &fullStalls_;
    Histogram &occupancy_;
};

} // namespace tsoper

#endif // TSOPER_COHERENCE_TXN_HH
