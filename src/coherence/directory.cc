#include "coherence/directory.hh"

#include <utility>

#include "sim/log.hh"

namespace tsoper
{

void
LineSerializer::submit(LineAddr line, Body body)
{
    LineState &state = lines_[line];
    if (state.busy) {
        state.queue.push_back(std::move(body));
        return;
    }
    dispatch(line, state, std::move(body));
}

bool
LineSerializer::busy(LineAddr line) const
{
    auto it = lines_.find(line);
    return it != lines_.end() && it->second.busy;
}

void
LineSerializer::dispatch(LineAddr line, LineState &state, Body body)
{
    // state may dangle once the body runs (a body that submits can
    // rehash lines_), so finish with it before calling the body.
    state.busy = true;
    const std::optional<Cycle> freeAt = body(eq_.now());
    if (!freeAt)
        return; // Deferred: a reply handler calls releaseAt().
    tsoper_assert(*freeAt >= eq_.now(), "transaction released in the past");
    eq_.schedule(*freeAt, [this, line] { release(line); });
}

void
LineSerializer::releaseAt(LineAddr line, Cycle at)
{
    auto it = lines_.find(line);
    tsoper_assert(it != lines_.end() && it->second.busy,
                  "deferred release of idle line");
    tsoper_assert(at >= eq_.now(), "deferred release in the past");
    eq_.schedule(at, [this, line] { release(line); });
}

void
LineSerializer::release(LineAddr line)
{
    auto it = lines_.find(line);
    tsoper_assert(it != lines_.end() && it->second.busy,
                  "release of idle line");
    if (it->second.queue.empty()) {
        // Erase idle lines: lines_ stays bounded by in-flight
        // transactions instead of growing with the address footprint.
        lines_.erase(it);
        return;
    }
    Body next = std::move(it->second.queue.front());
    it->second.queue.pop_front();
    dispatch(line, it->second, std::move(next));
}

DirectoryCapacity::DirectoryCapacity(unsigned entriesPerBank, unsigned banks,
                                     unsigned evictBufferEntries,
                                     StatsRegistry &stats)
    : array_(std::max(1u, entriesPerBank / 8) * banks, 8,
             /*setShift=*/0),
      evictions_(stats.counter("dir.evictions")),
      evictBufferHist_(stats.histogram("dir.evict_buffer_occupancy")),
      evictBufferCap_(evictBufferEntries)
{
}

std::optional<LineAddr>
DirectoryCapacity::allocate(LineAddr line)
{
    const auto result = array_.insert(line);
    if (result.noSpace)
        tsoper_panic("directory set fully pinned");
    if (result.evicted) {
        evictions_.inc();
        return result.victim;
    }
    return std::nullopt;
}

void
DirectoryCapacity::release(LineAddr line)
{
    array_.erase(line);
}

void
DirectoryCapacity::evictBufferEnter(LineAddr line)
{
    evictBuffer_[line] = true;
    evictBufferHist_.add(evictBuffer_.size());
    // The paper sizes this buffer so it never backpressures (footnote:
    // directory evictions are rare).  The model has no backpressure
    // path, so exceeding the cap would silently simulate impossible
    // hardware — make it a hard invariant instead.
    tsoper_assert(evictBuffer_.size() <= evictBufferCap_,
                  "directory eviction buffer over capacity: ",
                  evictBuffer_.size(), " entries, cap ",
                  evictBufferCap_);
}

void
DirectoryCapacity::evictBufferLeave(LineAddr line)
{
    evictBuffer_.erase(line);
}

bool
DirectoryCapacity::inEvictBuffer(LineAddr line) const
{
    return evictBuffer_.count(line) != 0;
}

} // namespace tsoper
