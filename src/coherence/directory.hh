/**
 * @file
 * Directory-side utilities shared by the MESI and SLC protocols:
 *
 *  - LineSerializer: per-cacheline FIFO transaction dispatch.  Each
 *    line admits one transaction at a time; a transaction body runs at
 *    its dispatch cycle, commits protocol state, and returns the cycle
 *    at which the line's directory slot frees up — or defers, keeping
 *    the line held while the transaction's message legs (data fetch,
 *    invalidation acks) are in flight, and frees it via releaseAt()
 *    when the completing leg lands.  This realizes the serialization
 *    the paper's directory performs; a deferred body plus its reply
 *    handlers are the transaction's transient states.
 *
 *  - DirectoryCapacity: finite directory storage with set-associative
 *    victim selection and an eviction buffer for entries whose lines
 *    are still persisting (§III-B).
 */

#ifndef TSOPER_COHERENCE_DIRECTORY_HH
#define TSOPER_COHERENCE_DIRECTORY_HH

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "mem/cache_array.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tsoper
{

class LineSerializer
{
  public:
    /** Transaction body: runs at its dispatch cycle and returns the
     *  cycle at which the next transaction for the line may dispatch,
     *  or nullopt for a *deferred* transaction whose completing
     *  message leg calls releaseAt() once it lands. */
    using Body = std::function<std::optional<Cycle>(Cycle)>;

    explicit LineSerializer(EventQueue &eq) : eq_(eq) {}

    /** Queue @p body for @p line; dispatches now if the line is idle. */
    void submit(LineAddr line, Body body);

    /** Free @p line — held open by a deferred body — at cycle @p at
     *  (>= now), dispatching the next queued transaction there. */
    void releaseAt(LineAddr line, Cycle at);

    bool busy(LineAddr line) const;

    /**
     * Lines currently tracked (busy or queued).  Idle lines are erased
     * on release, so this is bounded by the in-flight transaction
     * count, not by the address footprint of the run — long campaigns
     * must not grow it monotonically (asserted in test_directory).
     */
    std::size_t trackedLines() const { return lines_.size(); }

  private:
    struct LineState
    {
        bool busy = false;
        std::deque<Body> queue;
    };

    void dispatch(LineAddr line, LineState &state, Body body);
    void release(LineAddr line);

    EventQueue &eq_;
    std::unordered_map<LineAddr, LineState> lines_;
};

/**
 * Finite directory entry storage.  An entry exists while its line has
 * any presence in private caches.  Allocating into a full set evicts a
 * victim entry, whose teardown the protocol performs via the callback
 * given to allocate(); entries mid-teardown occupy the eviction buffer.
 */
class DirectoryCapacity
{
  public:
    DirectoryCapacity(unsigned entriesPerBank, unsigned banks,
                      unsigned evictBufferEntries, StatsRegistry &stats);

    /**
     * Ensure an entry for @p line exists.
     * @return the victim line whose entry must be torn down, if any.
     */
    std::optional<LineAddr> allocate(LineAddr line);

    /** Drop @p line's entry (its sharing list / sharer set emptied). */
    void release(LineAddr line);

    /** Pin @p line's entry while a deferred transaction holds it open:
     *  pinned entries are skipped by victim selection, so a teardown
     *  triggered from another line's allocate() cannot race the
     *  in-flight message legs.  A no-op if the entry was voluntarily
     *  released meanwhile (all presence vanished mid-flight) — only
     *  *forced* eviction must be excluded. */
    void
    setPinned(LineAddr line, bool pinned)
    {
        if (array_.contains(line))
            array_.setPinned(line, pinned);
    }

    bool contains(LineAddr line) const { return array_.contains(line); }

    /** Teardown bookkeeping for evicted entries. */
    void evictBufferEnter(LineAddr line);
    void evictBufferLeave(LineAddr line);
    bool inEvictBuffer(LineAddr line) const;
    std::size_t evictBufferOccupancy() const { return evictBuffer_.size(); }

    std::size_t entries() const { return array_.size(); }

  private:
    CacheArray array_;
    std::unordered_map<LineAddr, bool> evictBuffer_;
    Counter &evictions_;
    Histogram &evictBufferHist_;
    unsigned evictBufferCap_;
};

} // namespace tsoper

#endif // TSOPER_COHERENCE_DIRECTORY_HH
