#include "coherence/slc.hh"

#include <algorithm>
#include <utility>

#include "sim/debug.hh"
#include "sim/log.hh"
#include "sim/shard_fence.hh"
#include "sim/trace.hh"

namespace tsoper
{

SlcProtocol::SlcProtocol(const SystemConfig &cfg, EventQueue &eq, Mesh &mesh,
                         Llc &llc, Nvm &nvm, StatsRegistry &stats)
    : cfg_(cfg), eq_(eq), bus_(cfg, eq, mesh), llc_(llc), nvm_(nvm),
      stats_(stats),
      serializer_(eq), capacity_(cfg.dirEntriesPerBank, cfg.llcBanks,
                                 cfg.dirEvictBufferEntries, stats),
      mshr_(eq, cfg.numCores, cfg.mshrEntries, stats),
      banks_(cfg.llcBanks), evictBufOcc_(cfg.numCores, 0),
      hits_(stats.counter("slc.hits")),
      misses_(stats.counter("slc.misses")),
      upgrades_(stats.counter("slc.upgrades")),
      coherenceWb_(stats.counter("traffic.coherence_wb")),
      persistListLen_(stats.histogram("slc.persist_list_len")),
      coherenceListLen_(stats.histogram("slc.coherence_list_len")),
      evictBufHist_(stats.histogram("slc.evict_buffer_occupancy"))
{
    nodes_.resize(cfg.numCores);
    arrays_.reserve(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c)
        arrays_.emplace_back(cfg.privSets, cfg.privWays);
}

SlcProtocol::Node *
SlcProtocol::findNode(CoreId core, LineAddr line)
{
    auto &map = nodes_[static_cast<unsigned>(core)];
    auto it = map.find(line);
    return it == map.end() ? nullptr : &it->second;
}

const SlcProtocol::Node *
SlcProtocol::findNode(CoreId core, LineAddr line) const
{
    return const_cast<SlcProtocol *>(this)->findNode(core, line);
}

SlcProtocol::Node &
SlcProtocol::node(CoreId core, LineAddr line)
{
    Node *n = findNode(core, line);
    tsoper_assert(n, "missing SLC node: core=", core, " line=", line);
    return *n;
}

// --------------------------------------------------------------------
// Public access paths
// --------------------------------------------------------------------

template <typename Done>
bool
SlcProtocol::mshrAdmit(CoreId core, LineAddr line, Done *done,
                       std::function<void()> retry)
{
    if (mshr_.has(core, line))
        return true; // Secondary miss / retry of the in-flight primary.
    if (mshr_.full(core)) {
        mshr_.defer(core, std::move(retry));
        return false;
    }
    mshr_.enter(core, line);
    *done = [this, core, line,
             inner = std::move(*done)](auto &&...args) {
        mshr_.leave(core, line);
        inner(std::forward<decltype(args)>(args)...);
    };
    return true;
}

void
SlcProtocol::load(CoreId core, Addr addr, LoadDone done)
{
    const LineAddr line = lineOf(addr);
    if (Node *n = findNode(core, line); n && n->valid) {
        hits_.inc();
        if (!n->evicted)
            arrays_[static_cast<unsigned>(core)].touch(line);
        const StoreId value = n->words[wordOf(addr)];
        eq_.scheduleIn(cfg_.privLatency, [done, value, this] {
            done(eq_.now(), value);
        });
        return;
    }
    if (!mshrAdmit(core, line, &done,
                   [this, core, addr, done] { load(core, addr, done); }))
        return;
    misses_.inc();
    auto body = [this, core, addr, done](Cycle t) {
        return loadTxn(core, addr, done, t);
    };
    submitTxn(core, line, std::move(body), eq_.now() + cfg_.privLatency);
}

void
SlcProtocol::store(CoreId core, Addr addr, StoreId store, StoreDone done)
{
    const LineAddr line = lineOf(addr);
    if (Node *n = findNode(core, line);
        n && n->valid && !n->evicted && n->bwd == invalidCore &&
        (n->dirty || n->fwd == invalidCore)) {
        // Silent write: we are the head and either already the
        // exclusive writer or the sole copy (E-like upgrade).
        hits_.inc();
        arrays_[static_cast<unsigned>(core)].touch(line);
        n->words[wordOf(addr)] = store;
        n->dirty = true;
        hooks_->onStoreCommitted(core, line, eq_.now());
        logStore(core, addr, store);
        eq_.scheduleIn(cfg_.privLatency, [done, this] { done(eq_.now()); });
        return;
    }
    if (!mshrAdmit(core, line, &done, [this, core, addr, store, done] {
            this->store(core, addr, store, done);
        }))
        return;
    auto body = [this, core, addr, store, done](Cycle t) {
        return storeTxn(core, addr, store, done, t);
    };
    submitTxn(core, line, std::move(body), eq_.now() + cfg_.privLatency);
}

void
SlcProtocol::submitTxn(CoreId core, LineAddr line, LineSerializer::Body body,
                       Cycle departAt)
{
    bus_.send(bus_.coreNode(core), bus_.bankNode(bankOf(line)),
              cfg_.ctrlMsgBytes, departAt,
              [this, line, body = std::move(body)]() mutable {
                  serializer_.submit(line, std::move(body));
              });
}

bool
SlcProtocol::mustWaitForOwnNode(CoreId core, LineAddr line,
                                std::function<void()> retry, Cycle t,
                                bool *relinked)
{
    Node *n = findNode(core, line);
    if (!n || n->valid)
        return false;
    if (n->dirty || hooks_->lineInFrozenAg(core, line)) {
        // The local invalid version is pending persist (dirty), or the
        // line belongs to a frozen AG whose dependence set must not
        // grow: the access stalls until the version/group clears
        // (§II-A multiversioning).
        nodeWaiters_[waiterKey(core, line)].push_back(std::move(retry));
        return true;
    }
    // Stale clean copy: splice it and proceed as a plain miss.  If it
    // was a clean member of the still-open AG, the re-linked node will
    // carry the (conservatively larger) dependence; the caller fires
    // onNodeRelinked so the engine recomputes it.
    if (relinked)
        *relinked = hooks_->lineInUnpersistedAg(core, line);
    unlinkNode(core, line, t);
    return false;
}

// --------------------------------------------------------------------
// Transaction bodies
// --------------------------------------------------------------------

std::optional<Cycle>
SlcProtocol::loadTxn(CoreId core, Addr addr, LoadDone done, Cycle t)
{
    const LineAddr line = lineOf(addr);
    // Transaction bodies execute at the directory bank's tile.
    shardFenceCheck(bus_.bankNode(bankOf(line)));
    if (entries_[line].zombie) {
        zombieWaiters_[line].push_back([this, core, addr, done] {
            load(core, addr, done);
        });
        return t + dirLatency_;
    }
    if (Node *n = findNode(core, line); n && n->valid) {
        // Raced with our own eviction-buffer revival or a queued
        // upgrade: serve as a hit.
        const StoreId value = n->words[wordOf(addr)];
        done(t + dirLatency_, value);
        return t + dirLatency_;
    }
    auto retry = [this, core, addr, done] { load(core, addr, done); };
    bool relinked = false;
    if (mustWaitForOwnNode(core, line, retry, t, &relinked))
        return t + dirLatency_;

    if (auto victim = capacity_.allocate(line))
        teardownEntry(*victim, t);

    // Re-fetch: the waiter/teardown paths above may have erased and
    // re-created the entry.
    const CoreId h = entries_[line].head;
    if (h == invalidCore || !node(h, line).valid) {
        // No valid cached copy: the LLC (or NVM) holds the current
        // version (invalid heads imply their successors' versions
        // already reached the LLC).  Contents resolve now — they are
        // directory-side state — while the timing goes through the
        // bank pipe and a data-reply message; the line stays held (and
        // its entry pinned against teardown) until the pipe answers,
        // so dataReadyAt is final before the next same-line dispatch.
        const bool fromNvm = !llc_.contains(line);
        LineWords words;
        if (fromNvm) {
            words = nvm_.durable(line);
            llc_.install(line, words, false, t);
        } else {
            words = llc_.lookup(line);
        }
        Node &nn = prependNode(core, line);
        nn.words = words;
        insertResident(core, line, t);
        if (relinked)
            hooks_->onNodeRelinked(core, line, t);
        sampleListStats(line);
        capacity_.setPinned(line, true);
        const StoreId value = words[wordOf(addr)];
        const Cycle freeNoEarlier = t + dirLatency_;
        fillTiming(line, t, fromNvm,
                   [this, core, line, value, done,
                    freeNoEarlier](Cycle at) {
                       const Cycle dataAt = bus_.send(
                           bus_.bankNode(bankOf(line)),
                           bus_.coreNode(core),
                           lineBytes + cfg_.ctrlMsgBytes, at,
                           [this, done, value] {
                               done(eq_.now(), value);
                           });
                       if (Node *n = findNode(core, line))
                           n->dataReadyAt =
                               std::max(n->dataReadyAt, dataAt);
                       capacity_.setPinned(line, false);
                       serializer_.releaseAt(
                           line, std::max(eq_.now(), freeNoEarlier));
                   });
        return std::nullopt;
    }

    // Cache-to-cache: nonblocking (OBS 3).  The list re-links and the
    // hooks fire now — the directory's serialization instant — while
    // the forward request and data reply travel as messages.
    Node &hn = node(h, line);
    bool sourceDirty = hn.dirty;
    Cycle exposeReady = t;
    if (hn.dirty)
        exposeReady = hooks_->onDirtyExpose(h, line, core, false, t);
    bool wb = false;
    if (hn.dirty && hooks_->writebackOnDowngrade()) {
        // The owner will write the dirty data back alongside the data
        // reply and become a clean sharer; contents move now.
        llc_.install(line, hn.words, true, t);
        coherenceWb_.inc();
        hn.dirty = false;
        sourceDirty = false;
        wb = true;
    }
    const Cycle floor = std::max(hn.dataReadyAt, exposeReady);
    const LineWords words = hn.words;
    Node &nn = prependNode(core, line);
    nn.words = words;
    // Estimate until the reply lands (uncontended legs); subsequent
    // same-line forwards read this as their data-readiness floor.
    nn.dataReadyAt =
        std::max(t + bus_.idealLatency(bus_.bankNode(bankOf(line)),
                                       bus_.coreNode(h),
                                       cfg_.ctrlMsgBytes),
                 floor) +
        bus_.idealLatency(bus_.coreNode(h), bus_.coreNode(core),
                          lineBytes + cfg_.ctrlMsgBytes);
    insertResident(core, line, t);
    if (sourceDirty)
        hooks_->onReadDependence(core, line, t);
    if (relinked)
        hooks_->onNodeRelinked(core, line, t);
    const StoreId value = words[wordOf(addr)];
    bus_.send(bus_.bankNode(bankOf(line)), bus_.coreNode(h),
              cfg_.ctrlMsgBytes, t,
              [this, h, core, line, value, done, floor, wb] {
                  const Cycle ready = std::max(eq_.now(), floor);
                  // The data reply leaves first (critical path)...
                  const Cycle dataAt = bus_.send(
                      bus_.coreNode(h), bus_.coreNode(core),
                      lineBytes + cfg_.ctrlMsgBytes, ready,
                      [this, done, value] { done(eq_.now(), value); });
                  if (Node *n = findNode(core, line))
                      n->dataReadyAt = std::max(n->dataReadyAt, dataAt);
                  if (wb) {
                      // ...then the conventional downgrade writeback
                      // travels home (traffic accounting; the LLC
                      // contents moved at dispatch).
                      bus_.arrival(bus_.coreNode(h),
                                   bus_.bankNode(bankOf(line)),
                                   lineBytes + cfg_.ctrlMsgBytes, ready);
                  }
              });
    sampleListStats(line);
    return t + dirLatency_;
}

std::optional<Cycle>
SlcProtocol::storeTxn(CoreId core, Addr addr, StoreId store, StoreDone done,
                      Cycle t)
{
    const LineAddr line = lineOf(addr);
    shardFenceCheck(bus_.bankNode(bankOf(line)));
    if (entries_[line].zombie) {
        zombieWaiters_[line].push_back([this, core, addr, store, done] {
            this->store(core, addr, store, done);
        });
        return t + dirLatency_;
    }
    auto retry = [this, core, addr, store, done] {
        this->store(core, addr, store, done);
    };
    if (hooks_->tryDeferStoreCommit(core, line, retry))
        return t + dirLatency_;
    if (mustWaitForOwnNode(core, line, retry, t))
        return t + dirLatency_;
    // (A spliced stale clean member needs no onNodeRelinked here: the
    // store-commit hook below recomputes the dependence state.)

    if (auto victim = capacity_.allocate(line))
        teardownEntry(*victim, t);

    Node *n = findNode(core, line);
    bool deferred = false;
    CoreId exposedInDataPath = invalidCore;
    if (n && n->valid) {
        upgrades_.inc();
        if (n->evicted) {
            // Revive from the eviction buffer.
            n->evicted = false;
            leaveEvictBuffer(core);
            insertResident(core, line, t);
        }
        if (n->bwd != invalidCore) {
            // Re-link as the new head above the current readers.  Our
            // copy is current (a newer writer would have invalidated
            // us), so only pointers move.
            Node moved = *n;
            const bool wasTail = (n->fwd == invalidCore);
            // Splice out of the old position.
            if (moved.bwd != invalidCore)
                node(moved.bwd, line).fwd = moved.fwd;
            if (moved.fwd != invalidCore)
                node(moved.fwd, line).bwd = moved.bwd;
            if (wasTail && moved.bwd != invalidCore)
                hooks_->onBecameTail(moved.bwd, line, t);
            // Prepend at the head.
            Entry &e = entries_[line];
            const CoreId h = e.head;
            n->fwd = h;
            n->bwd = invalidCore;
            if (h != invalidCore)
                node(h, line).bwd = core;
            e.head = core;
        }
        // Permission grant travels as a message; the SB drains when it
        // lands (write permission already held functionally — OBS 3).
        const Cycle permissionAt =
            bus_.send(bus_.bankNode(bankOf(line)), bus_.coreNode(core),
                      cfg_.ctrlMsgBytes, t,
                      [this, done] { done(eq_.now()); });
        n->dataReadyAt = std::max(n->dataReadyAt, permissionAt);
    } else {
        misses_.inc();
        const CoreId h = entries_[line].head;
        if (h == invalidCore || !node(h, line).valid) {
            // Fill from the LLC/NVM: blocking (the pipe reply frees the
            // line), same shape as the load-miss path.
            const bool fromNvm = !llc_.contains(line);
            LineWords words;
            if (fromNvm) {
                words = nvm_.durable(line);
                llc_.install(line, words, false, t);
            } else {
                words = llc_.lookup(line);
            }
            Node &nn = prependNode(core, line);
            nn.words = words;
            insertResident(core, line, t);
            capacity_.setPinned(line, true);
            const Cycle freeNoEarlier = t + dirLatency_;
            fillTiming(line, t, fromNvm,
                       [this, core, line, done,
                        freeNoEarlier](Cycle at) {
                           const Cycle dataAt = bus_.send(
                               bus_.bankNode(bankOf(line)),
                               bus_.coreNode(core),
                               lineBytes + cfg_.ctrlMsgBytes, at,
                               [this, done] { done(eq_.now()); });
                           if (Node *p = findNode(core, line))
                               p->dataReadyAt =
                                   std::max(p->dataReadyAt, dataAt);
                           capacity_.setPinned(line, false);
                           serializer_.releaseAt(
                               line, std::max(eq_.now(), freeNoEarlier));
                       });
            deferred = true;
        } else {
            // Forward from the current head; its invalidation folds
            // into the data reply (the exposedInDataPath marker).
            Node &hn = node(h, line);
            Cycle exposeReady = t;
            if (hn.dirty) {
                exposeReady = hooks_->onDirtyExpose(h, line, core, true, t);
                exposedInDataPath = h;
            }
            const Cycle floor = std::max(hn.dataReadyAt, exposeReady);
            const LineWords words = hn.words;
            Node &nn = prependNode(core, line);
            nn.words = words;
            nn.dataReadyAt =
                std::max(t + bus_.idealLatency(
                                 bus_.bankNode(bankOf(line)),
                                 bus_.coreNode(h), cfg_.ctrlMsgBytes),
                         floor) +
                bus_.idealLatency(bus_.coreNode(h), bus_.coreNode(core),
                                  lineBytes + cfg_.ctrlMsgBytes);
            insertResident(core, line, t);
            bus_.send(bus_.bankNode(bankOf(line)), bus_.coreNode(h),
                      cfg_.ctrlMsgBytes, t,
                      [this, h, core, line, done, floor] {
                          const Cycle ready = std::max(eq_.now(), floor);
                          const Cycle dataAt = bus_.send(
                              bus_.coreNode(h), bus_.coreNode(core),
                              lineBytes + cfg_.ctrlMsgBytes, ready,
                              [this, done] { done(eq_.now()); });
                          if (Node *p = findNode(core, line))
                              p->dataReadyAt =
                                  std::max(p->dataReadyAt, dataAt);
                      });
        }
        n = &node(core, line);
    }
    invalidateBelow(core, line, t, exposedInDataPath);
    n = &node(core, line);
    TSOPER_TRACE(Slc, t, "core " << core << " is the new head writer of "
                 "line 0x" << std::hex << line << std::dec);
    trace::instant(trace::Event::SlcNewHead, core, t, line);
    n->words[wordOf(addr)] = store;
    n->dirty = true;
    hooks_->onStoreCommitted(core, line, t);
    logStore(core, addr, store);
    sampleListStats(line);
    if (deferred)
        return std::nullopt;
    return t + dirLatency_;
}

void
SlcProtocol::fillTiming(LineAddr line, Cycle t, bool fromNvm,
                        std::function<void(Cycle)> finish)
{
    llc_.accessAsync(line, t,
                     [this, line, fromNvm,
                      finish = std::move(finish)](Cycle at) {
                         if (fromNvm)
                             at = nvm_.read(line, at);
                         finish(at);
                     });
}

// --------------------------------------------------------------------
// List manipulation
// --------------------------------------------------------------------

SlcProtocol::Node &
SlcProtocol::prependNode(CoreId core, LineAddr line)
{
    Entry &e = entries_[line];
    tsoper_assert(!findNode(core, line),
                  "prepend with existing node: core=", core);
    Node nn;
    nn.fwd = e.head;
    nn.bwd = invalidCore;
    if (e.head != invalidCore)
        node(e.head, line).bwd = core;
    e.head = core;
    auto [it, ok] =
        nodes_[static_cast<unsigned>(core)].emplace(line, nn);
    tsoper_assert(ok);
    return it->second;
}

void
SlcProtocol::invalidateBelow(CoreId newHead, LineAddr line, Cycle t,
                             CoreId alreadyExposed)
{
    CoreId cur = node(newHead, line).fwd;
    while (cur != invalidCore) {
        Node *vp = findNode(cur, line);
        if (!vp)
            break;
        Node &v = *vp;
        const CoreId next = v.fwd;
        if (v.valid) {
            v.valid = false;
            TSOPER_TRACE(Slc, t, "core " << cur << "'s copy of line 0x"
                         << std::hex << line << std::dec
                         << " invalidated non-destructively (dirty="
                         << v.dirty << ")");
            trace::instant(trace::Event::SlcInvalidate, cur, t, line,
                           v.dirty);
            // Background invalidation: a real fire-and-forget message
            // (write permission was already granted at link-up, OBS 3,
            // so nothing waits on its arrival).
            bus_.send(bus_.bankNode(bankOf(line)), bus_.coreNode(cur),
                      cfg_.ctrlMsgBytes, t, [] {});
            if (v.dirty) {
                if (cur != alreadyExposed)
                    hooks_->onDirtyExpose(cur, line, newHead, true, t);
                if (hooks_->dropsInvalidDirty())
                    unlinkNode(cur, line, t);
            } else if (!hooks_->lineInUnpersistedAg(cur, line)) {
                unlinkNode(cur, line, t);
            }
        }
        cur = next;
    }
}

void
SlcProtocol::unlinkNode(CoreId core, LineAddr line, Cycle t)
{
    Node &n = node(core, line);
    Entry &e = entries_[line];
    const CoreId fwd = n.fwd;
    const CoreId bwd = n.bwd;
    if (bwd != invalidCore)
        node(bwd, line).fwd = fwd;
    if (fwd != invalidCore)
        node(fwd, line).bwd = bwd;
    if (e.head == core)
        e.head = fwd;
    const bool wasTail = (fwd == invalidCore);
    if (!n.evicted)
        arrays_[static_cast<unsigned>(core)].erase(line);
    else
        leaveEvictBuffer(core);
    nodes_[static_cast<unsigned>(core)].erase(line);
    if (wasTail && bwd != invalidCore) {
        hooks_->onBecameTail(bwd, line, t);
        // Cascade: a droppable invalid clean node that just became the
        // tail unlinks immediately (it has nothing to persist and
        // encodes no pb dependence).
        Node *b = findNode(bwd, line);
        if (b && !b->valid && !b->dirty &&
            !hooks_->lineInUnpersistedAg(bwd, line)) {
            unlinkNode(bwd, line, t);
        }
    }
    notifyNodeWaiters(core, line);
    maybeReleaseEntry(line, t);
    sampleListStats(line);
}

void
SlcProtocol::insertResident(CoreId core, LineAddr line, Cycle t)
{
    auto result = arrays_[static_cast<unsigned>(core)].insert(line);
    tsoper_assert(!result.noSpace, "private cache set fully pinned");
    if (result.evicted)
        handleVictim(core, result.victim, t);
}

void
SlcProtocol::handleVictim(CoreId core, LineAddr victim, Cycle t)
{
    Node &v = node(core, victim);
    tsoper_assert(!v.evicted, "victim already in eviction buffer");
    if (v.dirty) {
        if (hooks_->dropsInvalidDirty()) {
            // Baseline: write the version back if it is current.
            if (v.valid) {
                llc_.install(victim, v.words, true, t);
                coherenceWb_.inc();
                bus_.arrival(bus_.coreNode(core),
                            bus_.bankNode(bankOf(victim)),
                            lineBytes + cfg_.ctrlMsgBytes, t);
                hooks_->onDirtyEvict(core, victim,
                                     ExposeReason::Eviction, t);
            }
            unlinkNode(core, victim, t);
        } else {
            // §III-B: freeze and persist immediately; the line moves to
            // the eviction buffer and still behaves as an AG member.
            v.evicted = true;
            enterEvictBuffer(core);
            hooks_->onDirtyEvict(core, victim, ExposeReason::Eviction, t);
        }
    } else if (hooks_->lineInUnpersistedAg(core, victim)) {
        // Clean AG member: keep linked for the pb dependence it encodes.
        v.evicted = true;
        enterEvictBuffer(core);
    } else {
        unlinkNode(core, victim, t);
    }
}

void
SlcProtocol::teardownEntry(LineAddr victim, Cycle t)
{
    shardFenceCheck(bus_.bankNode(bankOf(victim)));
    auto eit = entries_.find(victim);
    tsoper_assert(eit != entries_.end(), "teardown of absent entry");
    Entry &e = eit->second;
    tsoper_assert(!e.zombie, "double teardown");
    e.zombie = true;
    TSOPER_TRACE(Slc, t, "directory eviction of line 0x" << std::hex
                 << victim << std::dec << ": teardown begins");
    trace::instant(trace::Event::SlcDirEvict, invalidCore, t, victim);
    capacity_.evictBufferEnter(victim);
    // Invalidate every valid node; dirty versions freeze their AGs and
    // persist from the side buffer (§III-B).
    CoreId cur = e.head;
    std::vector<CoreId> order;
    while (cur != invalidCore) {
        order.push_back(cur);
        cur = node(cur, victim).fwd;
    }
    for (CoreId c : order) {
        Node *vp = findNode(c, victim);
        if (!vp || !vp->valid)
            continue;
        Node &v = *vp;
        v.valid = false;
        bus_.arrival(bus_.bankNode(bankOf(victim)), bus_.coreNode(c),
                    cfg_.ctrlMsgBytes, t);
        if (v.dirty) {
            if (hooks_->dropsInvalidDirty()) {
                llc_.install(victim, v.words, true, t);
                coherenceWb_.inc();
                hooks_->onDirtyEvict(c, victim,
                                     ExposeReason::DirEviction, t);
                unlinkNode(c, victim, t);
            } else {
                hooks_->onDirtyEvict(c, victim, ExposeReason::DirEviction,
                                     t);
            }
        } else if (!hooks_->lineInUnpersistedAg(c, victim)) {
            unlinkNode(c, victim, t);
        }
    }
    maybeReleaseEntry(victim, t);
}

void
SlcProtocol::maybeReleaseEntry(LineAddr line, Cycle t)
{
    (void)t;
    auto eit = entries_.find(line);
    if (eit == entries_.end() || eit->second.head != invalidCore)
        return;
    const bool wasZombie = eit->second.zombie;
    capacity_.release(line);
    if (wasZombie)
        capacity_.evictBufferLeave(line);
    entries_.erase(eit);
    auto wit = zombieWaiters_.find(line);
    if (wit != zombieWaiters_.end()) {
        auto waiters = std::move(wit->second);
        zombieWaiters_.erase(wit);
        for (auto &w : waiters)
            eq_.scheduleIn(0, std::move(w));
    }
}

void
SlcProtocol::notifyNodeWaiters(CoreId core, LineAddr line)
{
    auto it = nodeWaiters_.find(waiterKey(core, line));
    if (it == nodeWaiters_.end())
        return;
    auto waiters = std::move(it->second);
    nodeWaiters_.erase(it);
    for (auto &w : waiters)
        eq_.scheduleIn(0, std::move(w));
}

// --------------------------------------------------------------------
// Engine-facing API
// --------------------------------------------------------------------

bool
SlcProtocol::hasNode(CoreId core, LineAddr line) const
{
    return findNode(core, line) != nullptr;
}

bool
SlcProtocol::nodeValid(CoreId core, LineAddr line) const
{
    const Node *n = findNode(core, line);
    return n && n->valid;
}

bool
SlcProtocol::nodeDirty(CoreId core, LineAddr line) const
{
    const Node *n = findNode(core, line);
    return n && n->dirty;
}

CoreId
SlcProtocol::nodeFwd(CoreId core, LineAddr line) const
{
    const Node *n = findNode(core, line);
    tsoper_assert(n, "nodeFwd on absent node");
    return n->fwd;
}

CoreId
SlcProtocol::nodeBwd(CoreId core, LineAddr line) const
{
    const Node *n = findNode(core, line);
    tsoper_assert(n, "nodeBwd on absent node");
    return n->bwd;
}

bool
SlcProtocol::nodeIsTail(CoreId core, LineAddr line) const
{
    const Node *n = findNode(core, line);
    tsoper_assert(n, "nodeIsTail on absent node");
    return n->fwd == invalidCore;
}

bool
SlcProtocol::nodeIsPersistTail(CoreId core, LineAddr line) const
{
    const Node *n = findNode(core, line);
    tsoper_assert(n, "nodeIsPersistTail on absent node");
    CoreId cur = n->fwd;
    while (cur != invalidCore) {
        const Node *below = findNode(cur, line);
        tsoper_assert(below, "broken sharing list at core ", cur);
        if (below->dirty)
            return false;
        cur = below->fwd;
    }
    return true;
}

void
SlcProtocol::notifyPersistTailUpward(CoreId fromCore, LineAddr line,
                                     Cycle t)
{
    CoreId cur = fromCore;
    while (cur != invalidCore) {
        Node *n = findNode(cur, line);
        if (!n)
            break;
        const CoreId next = n->bwd;
        const bool dirty = n->dirty;
        hooks_->onBecameTail(cur, line, t);
        if (dirty)
            break; // The token stops at the next unpersisted version.
        cur = next;
    }
}

const LineWords &
SlcProtocol::nodeWords(CoreId core, LineAddr line) const
{
    const Node *n = findNode(core, line);
    tsoper_assert(n, "nodeWords on absent node");
    return n->words;
}

void
SlcProtocol::persistComplete(CoreId core, LineAddr line, Cycle now)
{
    Node &n = node(core, line);
    tsoper_assert(nodeIsPersistTail(core, line),
                  "persist of a version with unpersisted predecessors "
                  "(core=", core, ")");
    tsoper_assert(n.dirty, "persistComplete of a clean version");
    // Parallel writeback: the LLC is updated with the persisted version
    // (§II-B — the LLC is constantly updated while the AGB enqueues).
    llc_.install(line, n.words, true, now);
    coherenceWb_.inc();
    bus_.arrival(bus_.coreNode(core), bus_.bankNode(bankOf(line)),
                lineBytes + cfg_.ctrlMsgBytes, now);
    TSOPER_TRACE(Slc, now, "core " << core << "'s version of line 0x"
                 << std::hex << line << std::dec
                 << " persisted (valid=" << n.valid << ")");
    trace::instant(trace::Event::SlcPersist, core, now, line);
    const CoreId above = n.bwd;
    if (!n.valid || n.evicted) {
        unlinkNode(core, line, now);
    } else {
        n.dirty = false;
        sampleListStats(line);
    }
    // Pass the persist token headwards past clean sharers.
    notifyPersistTailUpward(above, line, now);
}

void
SlcProtocol::releaseCleanMember(CoreId core, LineAddr line, Cycle now)
{
    Node *n = findNode(core, line);
    if (!n)
        return;
    tsoper_assert(!n->dirty, "clean member is dirty");
    if (!n->valid || n->evicted) {
        if (n->fwd == invalidCore) {
            unlinkNode(core, line, now);
        } else {
            // A non-tail invalid clean node unlinks when it becomes
            // tail (the unlink cascade); with its membership gone, any
            // access that stalled on the frozen group may now proceed
            // by splicing it.
            notifyNodeWaiters(core, line);
        }
    }
}

unsigned
SlcProtocol::listLength(LineAddr line) const
{
    auto it = entries_.find(line);
    if (it == entries_.end())
        return 0;
    unsigned len = 0;
    CoreId cur = it->second.head;
    while (cur != invalidCore) {
        ++len;
        cur = findNode(cur, line)->fwd;
    }
    return len;
}

unsigned
SlcProtocol::validListLength(LineAddr line) const
{
    auto it = entries_.find(line);
    if (it == entries_.end())
        return 0;
    unsigned len = 0;
    CoreId cur = it->second.head;
    while (cur != invalidCore) {
        const Node *n = findNode(cur, line);
        if (n->valid)
            ++len;
        cur = n->fwd;
    }
    return len;
}

void
SlcProtocol::forEachNode(
    const std::function<void(CoreId, LineAddr, bool, bool)> &fn) const
{
    for (unsigned c = 0; c < nodes_.size(); ++c) {
        for (const auto &[line, n] : nodes_[c])
            fn(static_cast<CoreId>(c), line, n.dirty, n.valid);
    }
}

void
SlcProtocol::sampleListStats(LineAddr line)
{
    persistListLen_.add(listLength(line));
    coherenceListLen_.add(validListLength(line));
}

void
SlcProtocol::enterEvictBuffer(CoreId core)
{
    ++evictBufOcc_[static_cast<unsigned>(core)];
    evictBufHist_.add(evictBufOcc_[static_cast<unsigned>(core)]);
}

void
SlcProtocol::leaveEvictBuffer(CoreId core)
{
    tsoper_assert(evictBufOcc_[static_cast<unsigned>(core)] > 0);
    --evictBufOcc_[static_cast<unsigned>(core)];
}

ProtocolComplexity
SlcProtocol::complexity() const
{
    // Stable node states: {valid, dirty, evicted} combinations that can
    // occur (V, VD, VDe, VCe, I-pending-D, I-pending-De, I-clean-member,
    // plus absent) — the paper reports 15 base states for its SLICC SLC
    // vs 25 for MOESI; our transaction-atomic model needs no transient
    // states at all.
    return ProtocolComplexity{"SLC", 8, 4, 14};
}

} // namespace tsoper
