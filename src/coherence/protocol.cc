#include "coherence/protocol.hh"

namespace tsoper
{

ProtocolHooks CoherenceProtocol::defaultHooks_;

} // namespace tsoper
