/**
 * @file
 * Buffered Strict Persistency (Joshi et al. [22]) and the paper's two
 * stepping-stone variants (§V-B):
 *
 *  - Mode::Bsp        — on MESI, persists *through the LLC*: epochs of
 *    up to bspEpochStores stores, broken early on conflicts
 *    (deadlock-avoidance).  Exhibits both exclusion windows of Fig. 1a:
 *    L1 exclusion (a remote request for a dirty epoch line waits until
 *    the line is written to the LLC) and LLC exclusion (a newer version
 *    enters the LLC only after the older version's NVM persist).
 *  - Mode::BspSlc     — on SLC: multiversioning (version snapshots)
 *    removes the L1 exclusion; persists still go through the LLC.
 *  - Mode::BspSlcAgb  — idealized: epochs persist via an *unbounded*
 *    AGB, removing the LLC exclusion as well.  Differs from TSOPER
 *    only in the huge, statically-sized epochs.
 *
 * Same-address NVM ordering is kept by chaining per-line persists
 * (lineNvmReady_); cross-line completion ordering across ranks is not
 * enforced, a documented approximation (DESIGN.md §1).
 */

#ifndef TSOPER_CORE_BSP_ENGINE_HH
#define TSOPER_CORE_BSP_ENGINE_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coherence/mesi.hh"
#include "coherence/slc.hh"
#include "core/agb.hh"
#include "core/engine.hh"
#include "mem/llc.hh"
#include "mem/nvm.hh"
#include "noc/mesh.hh"
#include "noc/message_bus.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace tsoper
{

class BspEngine : public PersistEngine
{
  public:
    enum class Mode { Bsp, BspSlc, BspSlcAgb };

    /** @p mesi / @p slc: exactly one non-null, matching @p mode.
     *  @p agb: non-null iff mode is BspSlcAgb. */
    BspEngine(const SystemConfig &cfg, EventQueue &eq, Mesh &mesh,
              Llc &llc, Nvm &nvm, MesiProtocol *mesi, SlcProtocol *slc,
              Agb *agb, StatsRegistry &stats, Mode mode);

    // --- ProtocolHooks -------------------------------------------------
    Cycle onDirtyExpose(CoreId owner, LineAddr line, CoreId requester,
                        bool forWrite, Cycle now) override;
    void onDirtyEvict(CoreId owner, LineAddr line, ExposeReason why,
                      Cycle now) override;
    void onStoreCommitted(CoreId core, LineAddr line, Cycle now) override;
    bool dropsInvalidDirty() const override { return true; }
    bool tryDeferStoreCommit(CoreId core, LineAddr line,
                             std::function<void()> retry) override;

    // --- PersistEngine ---------------------------------------------------
    bool storeMayCommit(CoreId core, LineAddr line) override;
    void addStoreWaiter(CoreId core, LineAddr line,
                        std::function<void()> retry) override;
    void onMarker(CoreId core, Cycle now) override;
    void drain(std::function<void()> done) override;
    bool quiescent() const override;
    std::unordered_map<LineAddr, LineWords> crashOverlay() const override;

  private:
    struct Epoch
    {
        std::uint64_t uid = 0;
        CoreId core = invalidCore;
        std::vector<LineAddr> order;
        std::unordered_map<LineAddr, LineWords> words; ///< Snapshots.
        std::unordered_set<LineAddr> snapshotted;
        std::unordered_map<LineAddr, Cycle> flushAt; ///< L1->LLC time.
        unsigned storeCount = 0;
        Cycle openedAt = 0; ///< First store's cycle (trace spans).
        bool closed = false;
        bool persisted = false;
        bool persistIssued = false; ///< NVM/AGB phase started.
        unsigned pending = 0; ///< Outstanding NVM writes / AGB lines.
        Agb::AgHandle handle = 0;
        /** Epochs that must persist first (formed at conflicts; always
         *  open -> just-closed, hence acyclic). */
        std::vector<std::shared_ptr<Epoch>> deps;
        std::vector<std::shared_ptr<Epoch>> dependents;
        bool waitingOnDeps = false;
    };
    using EpochPtr = std::shared_ptr<Epoch>;

    Epoch &openEpoch(CoreId core);
    void snapshot(Epoch &e, LineAddr line);
    void closeEpoch(CoreId core, Cycle now);

    /** Schedule the line's L1->LLC write; record flushAt. */
    void flushLineToLlc(Epoch &e, LineAddr line, Cycle earliest);

    /** Start the NVM/AGB phase once all dep epochs have persisted. */
    void tryIssuePersist(const EpochPtr &e, Cycle now);

    void issueNvmWrites(const EpochPtr &e, Cycle now);
    void persistViaAgb(const EpochPtr &e, Cycle now);
    void epochLineDone(const EpochPtr &e, Cycle now);
    void markPersisted(const EpochPtr &e);
    void wakeStoreWaiters(CoreId core);
    void checkDrainDone();

    const SystemConfig &cfg_;
    EventQueue &eq_;
    /** Explicit cross-tile message path (see docs/pdes.md). */
    MessageBus bus_;
    Llc &llc_;
    Nvm &nvm_;
    MesiProtocol *mesi_;
    SlcProtocol *slc_;
    Agb *agb_;
    Mode mode_;
    unsigned banks_;

    std::vector<std::deque<EpochPtr>> epochs_; ///< Per core, oldest first.
    std::vector<std::unordered_map<LineAddr, EpochPtr>> latest_;
    /** Persist-before deps inherited from an epoch that closed with
     *  nothing to persist: an empty epoch has no durable point of its
     *  own, so its obligations transfer to the core's next epoch. */
    std::vector<std::vector<EpochPtr>> carriedDeps_;
    /** Completion of the last issued NVM persist per line (chains
     *  same-address persists; realizes LLC exclusion). */
    std::unordered_map<LineAddr, Cycle> lineNvmReady_;
    std::uint64_t nextUid_ = 1;
    unsigned outstanding_ = 0;

    struct StoreWaiter
    {
        LineAddr line;
        std::function<void()> retry;
    };
    std::vector<std::vector<StoreWaiter>> storeWaiters_;
    bool draining_ = false;
    std::function<void()> drainDone_;

    Counter &epochsClosed_;
    Counter &epochBreaks_;
    Counter &persistWb_;
    Counter &l1ExclusionCycles_;
    Counter &llcExclusionCycles_;
    Histogram &epochLines_;
};

} // namespace tsoper

#endif // TSOPER_CORE_BSP_ENGINE_HH
