/**
 * @file
 * The TSOPER persistency engine (§II-§IV): atomic groups formed in the
 * private caches, ordered by the SLC sharing lists, persisted through
 * the Atomic Group Buffer.
 *
 * Event flow:
 *  - stores commit  -> the open AG gains a dirty member;
 *  - reads of remote dirty lines -> the open AG gains a clean member
 *    encoding the incoming pb dependence (§III-A);
 *  - exposures (remote request / eviction / dir eviction / size cap /
 *    marker) -> the open AG freezes;
 *  - a frozen AG whose members are all sharing-list tails is ready:
 *    it requests AGB space (allocation order = pb order), streams its
 *    dirty lines, and passes each line's persist token as it buffers;
 *  - a fully buffered AG retires: clean members release, blocked
 *    stores wake.
 *
 * Deadlock freedom is inherited from the design (§III-C): pb edges
 * follow logical time, and all incoming edges of an AG precede its
 * outgoing ones because the AG freezes before servicing the first
 * request for a modified line.
 */

#ifndef TSOPER_CORE_TSOPER_ENGINE_HH
#define TSOPER_CORE_TSOPER_ENGINE_HH

#include <functional>
#include <vector>

#include "coherence/slc.hh"
#include "core/agb.hh"
#include "core/atomic_group.hh"
#include "core/engine.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace tsoper
{

class TsoperEngine : public PersistEngine
{
  public:
    TsoperEngine(const SystemConfig &cfg, EventQueue &eq,
                 SlcProtocol &slc, Agb &agb, StatsRegistry &stats);

    // --- ProtocolHooks -------------------------------------------------
    Cycle onDirtyExpose(CoreId owner, LineAddr line, CoreId requester,
                        bool forWrite, Cycle now) override;
    void onReadDependence(CoreId reader, LineAddr line,
                          Cycle now) override;
    void onDirtyEvict(CoreId owner, LineAddr line, ExposeReason why,
                      Cycle now) override;
    void onStoreCommitted(CoreId core, LineAddr line, Cycle now) override;
    void onBecameTail(CoreId core, LineAddr line, Cycle now) override;
    bool dropsInvalidDirty() const override { return false; }
    bool lineInUnpersistedAg(CoreId core, LineAddr line) const override;
    bool lineInFrozenAg(CoreId core, LineAddr line) const override;
    void onNodeRelinked(CoreId core, LineAddr line, Cycle now) override;
    bool tryDeferStoreCommit(CoreId core, LineAddr line,
                             std::function<void()> retry) override;

    // --- PersistEngine ---------------------------------------------------
    bool storeMayCommit(CoreId core, LineAddr line) override;
    void addStoreWaiter(CoreId core, LineAddr line,
                        std::function<void()> retry) override;
    void onMarker(CoreId core, Cycle now) override;
    void drain(std::function<void()> done) override;
    bool quiescent() const override;
    std::unordered_map<LineAddr, LineWords> crashOverlay() const override;

    // --- Introspection ---------------------------------------------------
    const AgManager &manager(CoreId core) const
    {
        return *mgrs_[static_cast<unsigned>(core)];
    }

  protected:
    /** Freeze the AG holding @p line (if open) and start its persist. */
    void freezeGroupOf(CoreId core, LineAddr line, FreezeReason why,
                       Cycle now);

    /** Publish the freeze to the structured trace bus. */
    void noteFrozen(CoreId core, const AtomicGroup &ag, FreezeReason why,
                    Cycle now);

    /** Subclass hook (STW stalls the world here). */
    virtual void
    onFroze(CoreId core, const AtomicGroup &ag, FreezeReason why,
            Cycle now)
    {
        (void)core; (void)ag; (void)why; (void)now;
    }

    /** Subclass hook after an AG fully retires. */
    virtual void
    onRetired(CoreId core, Cycle now)
    {
        (void)core; (void)now;
    }

    /** Move the persist pipeline of @p core forward. */
    void advance(CoreId core);

    void onGranted(CoreId core, AgId id, Cycle now);
    void onLineBuffered(CoreId core, AgId id, LineAddr line, Cycle now);
    void maybeRetire(CoreId core);
    void wakeStoreWaiters(CoreId core);
    void checkDrainDone();

    AtomicGroup *findAg(CoreId core, AgId id);

    /** Any frozen AG not yet fully buffered, on any core? */
    bool anyFrozenUnbuffered() const;

    const SystemConfig &cfg_;
    EventQueue &eq_;
    SlcProtocol &slc_;
    Agb &agb_;
    std::vector<std::unique_ptr<AgManager>> mgrs_;

    struct StoreWaiter
    {
        LineAddr line;
        std::function<void()> retry;
    };
    std::vector<std::vector<StoreWaiter>> storeWaiters_;

    bool draining_ = false;
    std::function<void()> drainDone_;

    Counter &agsPersisted_;
    Counter &freezeRemote_;
    Counter &freezeEvict_;
    Counter &freezeCap_;
    Counter &storeBlocks_;
    Histogram &agStores_;     ///< Stores per AG (Fig. 15 histogram).
    TimeSeries &agStoresT_;   ///< (cycle, stores) per freeze (Fig. 15).
};

} // namespace tsoper

#endif // TSOPER_CORE_TSOPER_ENGINE_HH
