#include "core/hwrp_engine.hh"

#include <algorithm>

#include "sim/debug.hh"
#include "sim/log.hh"
#include "sim/trace.hh"

namespace tsoper
{

namespace
{
/** Local-id bit distinguishing spontaneous (eviction) persists from SFR
 *  batch tags in trace::groupTag space. */
constexpr std::uint64_t spontBit = 1ull << 40;
} // namespace

HwRpEngine::HwRpEngine(const SystemConfig &cfg, EventQueue &eq,
                       SlcProtocol &slc, Nvm &nvm, StatsRegistry &stats)
    : cfg_(cfg), eq_(eq), slc_(slc), nvm_(nvm),
      sfrDirty_(cfg.numCores), sfrStoreCount_(cfg.numCores, 0),
      batchDoneAt_(cfg.numCores, 0),
      batchSeq_(cfg.numCores, 1), spontSeq_(cfg.numCores, 0),
      lastBatchTag_(cfg.numCores, 0), batchAudit_(cfg.numCores),
      wpqPortBusy_(cfg.nvmRanks, 0), wpqCompletions_(cfg.nvmRanks),
      outstanding_(cfg.numCores, 0), syncWaiters_(cfg.numCores),
      persistWb_(stats.counter("traffic.persist_wb")),
      spontaneous_(stats.counter("hwrp.spontaneous_persists")),
      sfrCount_(stats.counter("hwrp.sfrs")),
      sfrSizeHist_(stats.histogram("hwrp.sfr_lines")),
      sfrStoresHist_(stats.histogram("hwrp.sfr_stores")),
      sfrStoresT_(stats.timeSeries("hwrp.sfr_stores_t"))
{
}

void
HwRpEngine::onStoreCommitted(CoreId core, LineAddr line, Cycle now)
{
    (void)now;
    sfrDirty_[static_cast<unsigned>(core)].insert(line);
    ++sfrStoreCount_[static_cast<unsigned>(core)];
}

Cycle
HwRpEngine::onDirtyExpose(CoreId owner, LineAddr line, CoreId requester,
                          bool forWrite, Cycle now)
{
    (void)requester;
    if (forWrite) {
        // The version is superseded by the new writer; under relaxed
        // persistency the old version need not persist (the new
        // writer's full-line version carries its words).
        sfrDirty_[static_cast<unsigned>(owner)].erase(line);
    }
    return now;
}

Cycle
HwRpEngine::persistLine(CoreId core, LineAddr line, const LineWords &words,
                        Cycle earliest, std::uint64_t auditTag,
                        bool batched)
{
    const unsigned r = nvm_.rankOf(line);
    Cycle entry = std::max(earliest, wpqPortBusy_[r]);
    auto &hist = wpqCompletions_[r];
    // The WPQ holds at most wpqEntriesPerMc in-flight lines: the k-th
    // entry waits for the (k - depth)-th NVM completion.
    if (hist.size() >= cfg_.wpqEntriesPerMc)
        entry = std::max(entry, hist.front());
    wpqPortBusy_[r] = entry + 2;
    persistWb_.inc();
    const auto c = static_cast<unsigned>(core);
    ++outstanding_[c];
    ++outstandingTotal_;
    if (trace::on(trace::Category::Persist)) {
        trace::instant(trace::Event::PersistIssue, core, eq_.now(), line,
                       auditTag);
        if (batched) {
            BatchAudit &ba = batchAudit_[c][auditTag];
            ++ba.pending;
            ++ba.lines;
            ba.maxEntry = std::max(ba.maxEntry, entry);
        }
    }
    // Durable at WPQ entry: record the contents for the crash overlay.
    eq_.schedule(entry, [this, core, line, words, auditTag, batched] {
        wpqContents_[line] = words;
        ++wpqPendingCount_[line];
        trace::instant(trace::Event::PersistCommit, core, eq_.now(),
                       line, auditTag);
        if (batched)
            onBatchEntry(core, auditTag);
    });
    const Cycle completion =
        nvm_.write(line, words, entry,
                   [this, core, line](Cycle) { lineDone(core, line); });
    hist.push_back(completion);
    if (hist.size() > cfg_.wpqEntriesPerMc)
        hist.pop_front();
    return entry;
}

void
HwRpEngine::onDirtyEvict(CoreId owner, LineAddr line, ExposeReason why,
                         Cycle now)
{
    (void)why;
    auto &set = sfrDirty_[static_cast<unsigned>(owner)];
    if (!set.erase(line))
        return;
    // Spontaneous persist: the evicted version goes straight to the
    // persist queue (the node is still alive during this hook).  It
    // belongs to the current SFR, so it orders behind previous batches.
    spontaneous_.inc();
    // Spontaneous persists carry no cross-SFR ordering promise, so they
    // audit as unordered singleton groups, not batch members.
    const auto c = static_cast<unsigned>(owner);
    persistLine(owner, line, slc_.nodeWords(owner, line),
                std::max(now, batchDoneAt_[c]),
                trace::groupTag(owner, spontBit | ++spontSeq_[c]),
                false);
}

void
HwRpEngine::onSync(CoreId core, Cycle now)
{
    flushSfr(core, now);
}

void
HwRpEngine::onSyncEvent(CoreId core, Cycle now, SyncEvent event,
                        unsigned id)
{
    const auto c = static_cast<unsigned>(core);
    // Adopting a sync clock creates a cross-core persist-before edge
    // from the batch behind the clock to this core's open batch.
    const auto adoptEdge = [&](std::uint64_t fromTag) {
        if (fromTag != 0)
            trace::instant(trace::Event::PbEdge, core, now, fromTag,
                           trace::groupTag(core, batchSeq_[c]));
    };
    switch (event) {
      case SyncEvent::LockAcquire:
        adoptEdge(lockClockTag_[id]);
        batchDoneAt_[c] = std::max(batchDoneAt_[c], lockClock_[id]);
        break;
      case SyncEvent::LockRelease:
        if (batchDoneAt_[c] > lockClock_[id])
            lockClockTag_[id] = lastBatchTag_[c];
        lockClock_[id] = std::max(lockClock_[id], batchDoneAt_[c]);
        break;
      case SyncEvent::BarrierArrive:
        if (batchDoneAt_[c] > barrierClock_[id])
            barrierClockTag_[id] = lastBatchTag_[c];
        barrierClock_[id] = std::max(barrierClock_[id], batchDoneAt_[c]);
        break;
      case SyncEvent::BarrierResume:
        adoptEdge(barrierClockTag_[id]);
        batchDoneAt_[c] = std::max(batchDoneAt_[c], barrierClock_[id]);
        break;
    }
}

void
HwRpEngine::flushSfr(CoreId core, Cycle now)
{
    const auto c = static_cast<unsigned>(core);
    sfrCount_.inc();
    sfrSizeHist_.add(sfrDirty_[c].size());
    sfrStoresHist_.add(sfrStoreCount_[c]);
    sfrStoresT_.sample(now, static_cast<double>(sfrStoreCount_[c]));
    sfrStoreCount_[c] = 0;
    auto lines = std::move(sfrDirty_[c]);
    sfrDirty_[c].clear();
    if (lines.empty())
        return;
    // Persist order across synchronization: this batch's WPQ entries
    // start after the previous batch's entries; within the batch, no
    // order.
    const Cycle start = std::max(now, batchDoneAt_[c]);
    TSOPER_TRACE(HwRp, now, "core " << core << " SFR flush ("
                 << lines.size() << " lines), batch starts at "
                 << start);
    const std::uint64_t tag = trace::groupTag(core, batchSeq_[c]);
    Cycle done = start;
    unsigned persisted = 0;
    for (LineAddr line : lines) {
        if (!slc_.hasNode(core, line) || !slc_.nodeDirty(core, line))
            continue; // Superseded or already spontaneously persisted.
        const Cycle entry = persistLine(
            core, line, slc_.nodeWords(core, line), start, tag, true);
        done = std::max(done, entry);
        ++persisted;
    }
    batchDoneAt_[c] = done;
    trace::instant(trace::Event::SfrFlushed, core, now, tag, persisted);
    if (trace::on(trace::Category::Persist) && persisted > 0) {
        auto it = batchAudit_[c].find(tag);
        tsoper_assert(it != batchAudit_[c].end());
        it->second.closed = true;
        if (it->second.pending == 0)
            finishBatch(core, tag);
        // The next batch's WPQ entries start after this batch's.
        trace::instant(trace::Event::PbEdge, core, now, tag,
                       trace::groupTag(core, batchSeq_[c] + 1));
        lastBatchTag_[c] = tag;
    }
    ++batchSeq_[c];
}

void
HwRpEngine::onBatchEntry(CoreId core, std::uint64_t tag)
{
    auto &audits = batchAudit_[static_cast<unsigned>(core)];
    auto it = audits.find(tag);
    if (it == audits.end())
        return;
    tsoper_assert(it->second.pending > 0);
    if (--it->second.pending == 0 && it->second.closed)
        finishBatch(core, tag);
}

void
HwRpEngine::finishBatch(CoreId core, std::uint64_t tag)
{
    auto &audits = batchAudit_[static_cast<unsigned>(core)];
    auto it = audits.find(tag);
    tsoper_assert(it != audits.end());
    // All lines are in power-backed WPQ slots: the batch is durable as
    // of its last entry cycle.
    trace::instant(trace::Event::GroupDurable, core,
                   std::max(it->second.maxEntry, eq_.now()), tag,
                   it->second.lines);
    audits.erase(it);
}

void
HwRpEngine::lineDone(CoreId core, LineAddr line)
{
    const auto c = static_cast<unsigned>(core);
    tsoper_assert(outstanding_[c] > 0);
    --outstanding_[c];
    --outstandingTotal_;
    auto it = wpqPendingCount_.find(line);
    if (it != wpqPendingCount_.end() && --it->second == 0) {
        wpqPendingCount_.erase(it);
        wpqContents_.erase(line);
    }
    if (outstanding_[c] <= cfg_.hwrpQueueEntries) {
        auto waiters = std::move(syncWaiters_[c]);
        syncWaiters_[c].clear();
        for (auto &w : waiters)
            eq_.scheduleIn(0, std::move(w));
    }
    if (draining_ && drainDone_ && outstandingTotal_ == 0) {
        auto done = std::move(drainDone_);
        drainDone_ = nullptr;
        eq_.scheduleIn(0, std::move(done));
    }
}

bool
HwRpEngine::syncMayProceed(CoreId core)
{
    return outstanding_[static_cast<unsigned>(core)] <=
           cfg_.hwrpQueueEntries;
}

void
HwRpEngine::addSyncWaiter(CoreId core, std::function<void()> retry)
{
    syncWaiters_[static_cast<unsigned>(core)].push_back(std::move(retry));
}

void
HwRpEngine::drain(std::function<void()> done)
{
    draining_ = true;
    drainDone_ = std::move(done);
    for (unsigned c = 0; c < cfg_.numCores; ++c)
        flushSfr(static_cast<CoreId>(c), eq_.now());
    if (outstandingTotal_ == 0 && drainDone_) {
        auto cb = std::move(drainDone_);
        drainDone_ = nullptr;
        eq_.scheduleIn(0, std::move(cb));
    }
}

bool
HwRpEngine::quiescent() const
{
    return outstandingTotal_ == 0;
}

std::unordered_map<LineAddr, LineWords>
HwRpEngine::crashOverlay() const
{
    return wpqContents_;
}

} // namespace tsoper
