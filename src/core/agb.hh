/**
 * @file
 * The Atomic Group Buffer (§II-B/C): a power-backed SRAM persist
 * buffer in parallel to the LLC that makes atomic groups durable.
 *
 * Organization (SystemConfig::agbDistributed):
 *  - distributed: one slice per memory channel; an AG's lines map to
 *    slices by address.  A centralized arbiter reserves space in every
 *    needed slice in one step (two-phase allocate/complete ingress,
 *    Fig. 5) and grants requests in FIFO order.
 *  - centralized: a single circular buffer (Fig. 4).
 *
 * Ingress: space for the whole AG is reserved at allocation; the
 * owning L1 then streams lines in any order.  Egress: consecutive
 * fully-buffered AGs from the FIFO head form an atomic *super group*
 * whose lines drain to the memory controllers in any order, except
 * that same-address lines keep FIFO order (they share a slice/rank and
 * are issued in allocation order).
 *
 * Crash semantics: the committed prefix — every AG ahead of the first
 * incomplete one — is durable; everything else is discarded.  This is
 * the conservative reading of the paper's super-group rule (see
 * DESIGN.md §4); it is what guarantees that an AG never becomes
 * durable before the AGs it depends on.
 */

#ifndef TSOPER_CORE_AGB_HH
#define TSOPER_CORE_AGB_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/llc.hh"
#include "mem/nvm.hh"
#include "noc/mesh.hh"
#include "noc/message_bus.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tsoper
{

class Agb
{
  public:
    using AgHandle = std::uint64_t;

    Agb(const SystemConfig &cfg, EventQueue &eq, Mesh &mesh, Nvm &nvm,
        Llc &llc, StatsRegistry &stats);

    /**
     * Request space for an atomic group of @p lines (its dirty
     * cachelines; duplicates are not allowed).  Requests are granted in
     * FIFO order once every needed slice has room; @p granted fires at
     * the grant instant.  An AG larger than the AGB capacity is fatal
     * (the hard AG size cap prevents it).
     *
     * @p auditTag names the group in the structured trace / persist
     * audit (trace::groupTag); 0 falls back to the returned handle.
     */
    AgHandle requestAllocation(CoreId from, std::vector<LineAddr> lines,
                               std::function<void(Cycle)> granted,
                               std::uint64_t auditTag = 0);

    /**
     * Stream one line of a granted AG into its slice. @p done fires
     * when the line is in the persistent domain (the persist token may
     * then pass, §IV-B).  When the last line of an AG is buffered the
     * AG completes and the committed prefix advances.
     */
    void bufferLine(AgHandle h, LineAddr line, const LineWords &words,
                    std::function<void(Cycle)> done);

    /** Durable-but-undrained contents at this instant (crash overlay),
     *  in allocation order. */
    std::vector<std::pair<LineAddr, LineWords>> crashOverlay() const;

    /** No buffered AGs and no waiting allocations. */
    bool quiescent() const;

    /** Run @p fn once quiescent (immediately if already). */
    void notifyQuiescent(std::function<void()> fn);

    unsigned sliceCount() const { return slices_; }

    /** Currently reserved lines in slice @p s. */
    unsigned sliceUsed(unsigned s) const { return sliceUsed_[s]; }

  private:
    struct AgRec
    {
        AgHandle handle = 0;
        std::uint64_t auditTag = 0;
        CoreId from = invalidCore;
        std::vector<LineAddr> lines;
        std::vector<unsigned> sliceNeeds;
        std::unordered_set<LineAddr> issued; ///< Streams in flight.
        std::unordered_map<LineAddr, LineWords> buffered;
        unsigned remaining = 0;    ///< Lines not yet buffered.
        unsigned undrained = 0;    ///< Lines not yet written to NVM.
        bool granted = false;
        bool complete = false;
        bool drainIssued = false;
        std::function<void(Cycle)> grantedCb;
    };

    unsigned
    sliceOf(LineAddr line) const
    {
        return distributed_ ? nvm_.rankOf(line) : 0;
    }

    bool fits(const AgRec &ag) const;
    void tryGrant();
    void grant(AgRec &ag);
    void advanceCommitted();
    void drainAg(AgRec &ag);
    void maybeRetire(AgHandle h);
    void checkQuiescent();

    const SystemConfig &cfg_;
    EventQueue &eq_;
    /** Explicit cross-tile message path (see docs/pdes.md). */
    MessageBus bus_;
    Nvm &nvm_;
    Llc &llc_;
    bool distributed_;
    bool unbounded_;
    unsigned slices_;
    unsigned sliceCapacity_;
    int arbiterNode_;

    std::unordered_map<AgHandle, AgRec> ags_;
    std::deque<AgHandle> allocQueue_;   ///< FIFO of ungranted requests.
    std::deque<AgHandle> fifo_;         ///< Granted AGs, allocation order.
    std::size_t committedPrefix_ = 0;   ///< fifo_ index of first
                                        ///< non-drain-issued AG.
    std::vector<unsigned> sliceUsed_;
    std::vector<Cycle> slicePortBusy_;
    AgHandle nextHandle_ = 1;
    std::vector<std::function<void()>> quiescentWaiters_;

    Counter &agsAllocated_;
    Counter &linesBuffered_;
    Counter &persistWb_;
    Counter &allocStallCycles_;
    Histogram &occupancyHist_;
};

} // namespace tsoper

#endif // TSOPER_CORE_AGB_HH
