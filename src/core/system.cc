#include "core/system.hh"

#include <algorithm>
#include <sstream>

#include "core/bsp_engine.hh"
#include "core/hwrp_engine.hh"
#include "core/stw_engine.hh"
#include "core/tsoper_engine.hh"
#include "sim/log.hh"
#include "sim/trace.hh"
#include "sim/watchdog.hh"

namespace tsoper
{

System::System(const SystemConfig &cfg, const Workload &workload)
    : cfg_(cfg),
      kernel_(/*shards=*/1 + cfg_.llcBanks, std::max(1u, cfg_.threads),
              std::max<Cycle>(1, cfg_.hopLatency)),
      eq_(kernel_.shard(0)),
      fence_(cfg_.meshCols * cfg_.meshRows, /*shard=*/0),
      logCycle_(
          [](const void *eq) {
              return static_cast<const EventQueue *>(eq)->now();
          },
          &eq_),
      mesh_(cfg_, stats_), nvm_(cfg_, eq_, stats_),
      llc_(cfg_, nvm_, stats_), sync_(cfg_.numCores, eq_)
{
    cfg_.validate();
    // Data-plane shards: every LLC bank's access pipe lives on its own
    // shard, reached through virtual fence nodes appended after the
    // physical mesh (node meshNodes+b -> shard 1+b).  All functional
    // and control state stays on shard 0.
    const unsigned meshNodes = cfg_.meshCols * cfg_.meshRows;
    for (unsigned b = 0; b < cfg_.llcBanks; ++b)
        fence_.setOwner(meshNodes + b, 1 + b);
    kernel_.setFenceMap(&fence_);
    llc_.attachDataPlane(&kernel_, /*firstShard=*/1,
                         /*firstFenceNode=*/meshNodes);
    if (!cfg_.traceCategories.empty())
        trace::setCategories(cfg_.traceCategories);
    if (cfg_.flightRecorderDepth > 0)
        trace::enableFlightRecorder(cfg_.flightRecorderDepth);
    tsoper_assert(workload.perCore.size() == cfg_.numCores,
                  "workload core count (", workload.perCore.size(),
                  ") != configured cores (", cfg_.numCores, ")");

    if (cfg_.protocol == ProtocolKind::Slc) {
        slc_ = std::make_unique<SlcProtocol>(cfg_, eq_, mesh_, llc_, nvm_,
                                             stats_);
        proto_ = slc_.get();
    } else {
        mesi_ = std::make_unique<MesiProtocol>(cfg_, eq_, mesh_, llc_,
                                               nvm_, stats_);
        proto_ = mesi_.get();
    }

    const bool needsAgb = cfg_.engine == EngineKind::Tsoper ||
                          cfg_.engine == EngineKind::Stw ||
                          cfg_.engine == EngineKind::BspSlcAgb;
    if (needsAgb)
        agb_ = std::make_unique<Agb>(cfg_, eq_, mesh_, nvm_, llc_,
                                     stats_);

    switch (cfg_.engine) {
      case EngineKind::None:
        engine_ = std::make_unique<NoPersistEngine>();
        break;
      case EngineKind::Tsoper:
        engine_ = std::make_unique<TsoperEngine>(cfg_, eq_, *slc_, *agb_,
                                                 stats_);
        break;
      case EngineKind::Stw:
        engine_ = std::make_unique<StwEngine>(cfg_, eq_, *slc_, *agb_,
                                              stats_);
        break;
      case EngineKind::Bsp:
        engine_ = std::make_unique<BspEngine>(cfg_, eq_, mesh_, llc_,
                                              nvm_, mesi_.get(), nullptr,
                                              nullptr, stats_,
                                              BspEngine::Mode::Bsp);
        break;
      case EngineKind::BspSlc:
        engine_ = std::make_unique<BspEngine>(cfg_, eq_, mesh_, llc_,
                                              nvm_, nullptr, slc_.get(),
                                              nullptr, stats_,
                                              BspEngine::Mode::BspSlc);
        break;
      case EngineKind::BspSlcAgb:
        engine_ = std::make_unique<BspEngine>(
            cfg_, eq_, mesh_, llc_, nvm_, nullptr, slc_.get(), agb_.get(),
            stats_, BspEngine::Mode::BspSlcAgb);
        break;
      case EngineKind::HwRp:
        tsoper_assert(slc_, "HW-RP runs on the SLC baseline");
        engine_ = std::make_unique<HwRpEngine>(cfg_, eq_, *slc_, nvm_,
                                               stats_);
        break;
    }
    proto_->setHooks(engine_.get());

    log_ = std::make_unique<StoreLog>(cfg_.numCores);
    log_->setEnabled(cfg_.recordStores);
    if (cfg_.recordStores)
        proto_->setStoreLog(log_.get());

    cpus_.reserve(cfg_.numCores);
    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        cpus_.push_back(std::make_unique<Cpu>(
            static_cast<CoreId>(c), cfg_, eq_, *proto_, *engine_, sync_,
            cfg_.recordStores ? log_.get() : nullptr, stats_));
        cpus_.back()->setTrace(&workload.perCore[c]);
        cpus_.back()->onFinished([this] { ++finishedCount_; });
    }
}

System::~System() = default;

Cycle
System::run(Cycle maxCycles)
{
    const WatchdogConfig watchdog{cfg_.watchdogCheckEvents,
                                  cfg_.watchdogStallChecks,
                                  /*frozenChecks=*/2};
    const auto progress = [this] { return progressSignature(); };
    const auto dump = [this] { return dumpState(); };

    for (auto &cpu : cpus_)
        cpu->start();
    runGuarded(kernel_, [this] { return allFinished(); }, maxCycles,
               watchdog, progress, dump, "execution");
    const Cycle finish = finishCycle();
    stats_.counter("sys.exec_cycles").inc(finish);
    bool drained = false;
    engine_->drain([&drained] { drained = true; });
    runGuarded(kernel_, [&drained] { return drained; }, maxCycles,
               watchdog, progress, dump, "persistency drain");
    stats_.counter("sys.drain_cycles").inc(eq_.now() - finish);
    // Kernel observables: both are pure functions of queue state, so
    // they are part of the byte-identical-across-threads contract.
    stats_.counter("sys.kernel_windows").inc(kernel_.windows());
    stats_.counter("sys.kernel_cross_posts").inc(kernel_.crossPosts());
    return finish;
}

std::unordered_map<LineAddr, LineWords>
System::runUntilCrash(Cycle crashAt)
{
    for (auto &cpu : cpus_)
        cpu->start();
    if (!cfg_.watchdogCheckEvents) {
        kernel_.run(crashAt);
        return durableImage();
    }
    // Reaching crashAt (or draining early) is normal completion here,
    // so only the livelock checks apply — a zero-delay event cycle
    // before the crash point would otherwise spin forever inside
    // EventQueue::run.
    const WatchdogConfig watchdog{cfg_.watchdogCheckEvents,
                                  cfg_.watchdogStallChecks,
                                  /*frozenChecks=*/2};
    ProgressWatchdog dog(watchdog);
    const std::function<bool()> never = [] { return false; };
    for (;;) {
        const std::uint64_t before = kernel_.executed();
        kernel_.runFor(never, crashAt, watchdog.checkEveryEvents);
        if (kernel_.executed() == before || kernel_.empty())
            break; // passed crashAt, or the machine went idle
        const std::string reason =
            dog.check(progressSignature(), eq_.now());
        if (!reason.empty())
            throw HungError("hung during pre-crash execution: " +
                            reason + "\n" + dumpState());
    }
    return durableImage();
}

std::unordered_map<LineAddr, LineWords>
System::durableImage() const
{
    std::unordered_map<LineAddr, LineWords> image = nvm_.image();
    for (const auto &[line, words] : engine_->crashOverlay()) {
        auto [it, fresh] = image.try_emplace(line, zeroLine());
        (void)fresh;
        mergeWords(it->second, words);
    }
    return image;
}

Cycle
System::finishCycle() const
{
    Cycle finish = 0;
    for (const auto &cpu : cpus_)
        finish = std::max(finish, cpu->finishedAt());
    return finish;
}

bool
System::allFinished() const
{
    return finishedCount_ == cfg_.numCores;
}

std::uint64_t
System::progressSignature() const
{
    // Retired ops cover the execution phase; NVM traffic covers the
    // drain tail (cores are done, lines are still persisting).  Both
    // are monotonic, so a flat sum across a watchdog window means
    // nothing anywhere in the machine moved.
    std::uint64_t sig = finishedCount_;
    for (const auto &cpu : cpus_)
        sig += cpu->opsRetired() + cpu->storesIssued();
    sig += stats_.get("nvm.writes_done") + stats_.get("nvm.reads");
    return sig;
}

std::string
System::dumpState() const
{
    std::ostringstream os;
    os << "machine state: engine=" << toString(cfg_.engine)
       << " protocol=" << toString(cfg_.protocol) << " cycle="
       << kernel_.now() << " events=" << kernel_.executed()
       << " pending=" << kernel_.pending() << "\n";
    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        const Cpu &cpu = *cpus_[c];
        os << "  core " << c << ": " << cpu.opsRetired() << "/"
           << cpu.traceOps() << " ops, " << cpu.storesIssued()
           << " stores issued, "
           << (cpu.finished()
                   ? "finished@" + std::to_string(cpu.finishedAt())
                   : std::string("running"))
           << "\n";
    }
    os << "  nvm: " << stats_.get("nvm.writes_issued") << " issued, "
       << stats_.get("nvm.writes_done") << " done, "
       << stats_.get("nvm.reads") << " reads";
    if (const std::string tail = trace::flightRecorderDump();
        !tail.empty())
        os << "\n" << tail;
    return os.str();
}

} // namespace tsoper
