#include "core/system.hh"

#include <algorithm>

#include "core/bsp_engine.hh"
#include "core/hwrp_engine.hh"
#include "core/stw_engine.hh"
#include "core/tsoper_engine.hh"
#include "sim/log.hh"

namespace tsoper
{

System::System(const SystemConfig &cfg, const Workload &workload)
    : cfg_(cfg), mesh_(cfg_, stats_), nvm_(cfg_, eq_, stats_),
      llc_(cfg_, nvm_, stats_), sync_(cfg_.numCores, eq_)
{
    cfg_.validate();
    tsoper_assert(workload.perCore.size() == cfg_.numCores,
                  "workload core count (", workload.perCore.size(),
                  ") != configured cores (", cfg_.numCores, ")");

    if (cfg_.protocol == ProtocolKind::Slc) {
        slc_ = std::make_unique<SlcProtocol>(cfg_, eq_, mesh_, llc_, nvm_,
                                             stats_);
        proto_ = slc_.get();
    } else {
        mesi_ = std::make_unique<MesiProtocol>(cfg_, eq_, mesh_, llc_,
                                               nvm_, stats_);
        proto_ = mesi_.get();
    }

    const bool needsAgb = cfg_.engine == EngineKind::Tsoper ||
                          cfg_.engine == EngineKind::Stw ||
                          cfg_.engine == EngineKind::BspSlcAgb;
    if (needsAgb)
        agb_ = std::make_unique<Agb>(cfg_, eq_, mesh_, nvm_, llc_,
                                     stats_);

    switch (cfg_.engine) {
      case EngineKind::None:
        engine_ = std::make_unique<NoPersistEngine>();
        break;
      case EngineKind::Tsoper:
        engine_ = std::make_unique<TsoperEngine>(cfg_, eq_, *slc_, *agb_,
                                                 stats_);
        break;
      case EngineKind::Stw:
        engine_ = std::make_unique<StwEngine>(cfg_, eq_, *slc_, *agb_,
                                              stats_);
        break;
      case EngineKind::Bsp:
        engine_ = std::make_unique<BspEngine>(cfg_, eq_, mesh_, llc_,
                                              nvm_, mesi_.get(), nullptr,
                                              nullptr, stats_,
                                              BspEngine::Mode::Bsp);
        break;
      case EngineKind::BspSlc:
        engine_ = std::make_unique<BspEngine>(cfg_, eq_, mesh_, llc_,
                                              nvm_, nullptr, slc_.get(),
                                              nullptr, stats_,
                                              BspEngine::Mode::BspSlc);
        break;
      case EngineKind::BspSlcAgb:
        engine_ = std::make_unique<BspEngine>(
            cfg_, eq_, mesh_, llc_, nvm_, nullptr, slc_.get(), agb_.get(),
            stats_, BspEngine::Mode::BspSlcAgb);
        break;
      case EngineKind::HwRp:
        tsoper_assert(slc_, "HW-RP runs on the SLC baseline");
        engine_ = std::make_unique<HwRpEngine>(cfg_, eq_, *slc_, nvm_,
                                               stats_);
        break;
    }
    proto_->setHooks(engine_.get());

    log_ = std::make_unique<StoreLog>(cfg_.numCores);
    log_->setEnabled(cfg_.recordStores);
    if (cfg_.recordStores)
        proto_->setStoreLog(log_.get());

    cpus_.reserve(cfg_.numCores);
    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        cpus_.push_back(std::make_unique<Cpu>(
            static_cast<CoreId>(c), cfg_, eq_, *proto_, *engine_, sync_,
            cfg_.recordStores ? log_.get() : nullptr, stats_));
        cpus_.back()->setTrace(&workload.perCore[c]);
        cpus_.back()->onFinished([this] { ++finishedCount_; });
    }
}

System::~System() = default;

Cycle
System::run(Cycle maxCycles)
{
    for (auto &cpu : cpus_)
        cpu->start();
    eq_.runUntil([this] { return allFinished(); }, maxCycles);
    if (!allFinished())
        tsoper_fatal("simulation did not finish within ", maxCycles,
                     " cycles (", finishedCount_, "/", cfg_.numCores,
                     " cores done at cycle ", eq_.now(), ")");
    const Cycle finish = finishCycle();
    stats_.counter("sys.exec_cycles").inc(finish);
    bool drained = false;
    engine_->drain([&drained] { drained = true; });
    eq_.runUntil([&drained] { return drained; }, maxCycles);
    tsoper_assert(drained, "persistency drain did not complete");
    stats_.counter("sys.drain_cycles").inc(eq_.now() - finish);
    return finish;
}

std::unordered_map<LineAddr, LineWords>
System::runUntilCrash(Cycle crashAt)
{
    for (auto &cpu : cpus_)
        cpu->start();
    eq_.run(crashAt);
    return durableImage();
}

std::unordered_map<LineAddr, LineWords>
System::durableImage() const
{
    std::unordered_map<LineAddr, LineWords> image = nvm_.image();
    for (const auto &[line, words] : engine_->crashOverlay()) {
        auto [it, fresh] = image.try_emplace(line, zeroLine());
        (void)fresh;
        mergeWords(it->second, words);
    }
    return image;
}

Cycle
System::finishCycle() const
{
    Cycle finish = 0;
    for (const auto &cpu : cpus_)
        finish = std::max(finish, cpu->finishedAt());
    return finish;
}

bool
System::allFinished() const
{
    return finishedCount_ == cfg_.numCores;
}

} // namespace tsoper
