/**
 * @file
 * Per-core atomic-group bookkeeping (§II-A, §III).
 *
 * An atomic group (AG) accumulates the cachelines a core modifies —
 * plus the clean lines it reads out of remote AGs (§III-A) — between
 * two exposures of its modifications.  The AG freezes on the first
 * exposure (remote read/write of a dirty member, eviction, directory
 * eviction, the 80-line cap, or a §II-D marker) and must then persist
 * atomically.
 *
 * Incoming persist-before dependencies are tracked per line through
 * the "waiting to become tail" set: a member line whose sharing-list
 * node has an older predecessor cannot persist until that predecessor's
 * version is buffered (the persist token reaches it).  An AG is ready
 * to persist when it is frozen and no member is still waiting — the
 * cache-level realization of invariant 1 of §IV-B.
 */

#ifndef TSOPER_CORE_ATOMIC_GROUP_HH
#define TSOPER_CORE_ATOMIC_GROUP_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/agb.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tsoper
{

/** Why an atomic group was frozen (stats / tracing). */
enum class FreezeReason
{
    RemoteRead,
    RemoteWrite,
    Eviction,
    DirEviction,
    SizeCap,
    Marker,
    Drain, ///< End-of-run flush.
};

struct AtomicGroup
{
    AgId id = 0;
    CoreId core = invalidCore;
    /** line -> dirty? (false = clean dependence-carrying member). */
    std::unordered_map<LineAddr, bool> members;
    /** Members whose sharing-list node is not yet the tail. */
    std::unordered_set<LineAddr> waitingTail;
    std::uint64_t storeCount = 0; ///< Dynamic stores absorbed (Fig. 15).
    Cycle openedAt = 0; ///< First member's commit cycle (trace spans).
    bool frozen = false;
    FreezeReason freezeReason = FreezeReason::SizeCap;
    bool allocRequested = false;
    bool granted = false;
    unsigned unbuffered = 0; ///< Dirty members not yet in the AGB.
    Agb::AgHandle handle = 0;

    unsigned size() const { return (unsigned)members.size(); }

    unsigned
    dirtyCount() const
    {
        unsigned n = 0;
        for (const auto &[l, d] : members)
            n += d ? 1 : 0;
        return n;
    }

    bool
    readyToPersist() const
    {
        return frozen && waitingTail.empty();
    }
};

/**
 * Manages one core's open AG plus its FIFO of frozen, unpersisted AGs
 * (persisted strictly in program order, §II-A).
 */
class AgManager
{
  public:
    AgManager(CoreId core, unsigned maxLines, Histogram &sizeHist,
              Histogram &dirtyHist);

    /** Record a store commit. @return true if the cap was reached and
     *  the (now full) open AG was auto-frozen. */
    bool addDirty(LineAddr line, bool isTail);

    /** Record a read dependence on a remote AG (§III-A). */
    void addClean(LineAddr line, bool isTail);

    /** Unpersisted AG (open or frozen) holding @p line, if any. */
    AtomicGroup *groupOf(LineAddr line);
    const AtomicGroup *groupOf(LineAddr line) const;

    bool isMember(LineAddr line) const { return membership_.count(line); }

    /** Is @p line in a *frozen* unpersisted AG (store-blocking rule)? */
    bool inFrozenGroup(LineAddr line) const;

    /** Freeze the open AG (no-op if none or empty). @return it. */
    AtomicGroup *freezeOpen(FreezeReason why);

    /** A member line's sharing-list node became the tail. */
    void becameTail(LineAddr line);

    /**
     * @p line 's version (owned by @p ag) was buffered in the AGB: the
     * frozen version is safely in the persistent domain, so the line's
     * membership — and with it the frozen-group store block — ends now,
     * before the whole AG retires.
     */
    void releaseBufferedLine(AtomicGroup &ag, LineAddr line);

    /** Oldest unpersisted AG (persist order), nullptr if none. */
    AtomicGroup *oldest();

    /** All unpersisted AGs, oldest first (includes the open one). */
    const std::deque<std::unique_ptr<AtomicGroup>> &queue() const
    {
        return queue_;
    }

    /** Retire a fully persisted AG (must be the oldest). Clears
     *  membership; returns its clean members for release. */
    std::vector<LineAddr> retireOldest();

    bool empty() const { return queue_.empty(); }

    AgId nextId() const { return nextId_; }

    /** Id of the open AG, or of the AG that would open next — the group
     *  an incoming pb dependence lands in (trace pb-edges). */
    AgId
    openOrNextId() const
    {
        if (!queue_.empty() && !queue_.back()->frozen)
            return queue_.back()->id;
        return nextId_;
    }

  private:
    AtomicGroup &openGroup();

    CoreId core_;
    unsigned maxLines_;
    Histogram &sizeHist_;
    Histogram &dirtyHist_;
    /** Oldest first; the back element is the open AG iff !frozen. */
    std::deque<std::unique_ptr<AtomicGroup>> queue_;
    std::unordered_map<LineAddr, AtomicGroup *> membership_;
    AgId nextId_ = 1;
};

} // namespace tsoper

#endif // TSOPER_CORE_ATOMIC_GROUP_HH
