#include "core/atomic_group.hh"

#include "sim/log.hh"

namespace tsoper
{

AgManager::AgManager(CoreId core, unsigned maxLines, Histogram &sizeHist,
                     Histogram &dirtyHist)
    : core_(core), maxLines_(maxLines), sizeHist_(sizeHist),
      dirtyHist_(dirtyHist)
{
}

AtomicGroup &
AgManager::openGroup()
{
    if (queue_.empty() || queue_.back()->frozen) {
        auto ag = std::make_unique<AtomicGroup>();
        ag->id = nextId_++;
        ag->core = core_;
        queue_.push_back(std::move(ag));
    }
    return *queue_.back();
}

bool
AgManager::addDirty(LineAddr line, bool isTail)
{
    AtomicGroup &ag = openGroup();
    ++ag.storeCount;
    auto it = membership_.find(line);
    if (it != membership_.end()) {
        tsoper_assert(it->second == &ag,
                      "store into a line of a non-open AG (core=", core_,
                      ") — the frozen-group store block must prevent this");
        auto mit = ag.members.find(line);
        if (!mit->second) {
            mit->second = true; // Clean member upgraded to dirty.
            ++ag.unbuffered;
        }
        // Reconcile the dependence state: an upgrade may have re-linked
        // the node above unpersisted versions.
        if (isTail)
            ag.waitingTail.erase(line);
        else
            ag.waitingTail.insert(line);
        return false;
    }
    membership_.emplace(line, &ag);
    ag.members.emplace(line, true);
    ++ag.unbuffered;
    if (!isTail)
        ag.waitingTail.insert(line);
    if (ag.size() >= maxLines_) {
        freezeOpen(FreezeReason::SizeCap);
        return true;
    }
    return false;
}

void
AgManager::addClean(LineAddr line, bool isTail)
{
    AtomicGroup &ag = openGroup();
    auto it = membership_.find(line);
    if (it != membership_.end()) {
        // Already a member (clean or dirty) of the open AG.  Membership
        // in a frozen AG is impossible here: a frozen clean member's
        // node would be invalid and the re-access path blocks until the
        // group clears.
        tsoper_assert(it->second == &ag, "read dependence on a line of a "
                      "frozen AG (core=", core_, ")");
        // Reconcile the dependence (the node may have been re-linked).
        if (isTail)
            ag.waitingTail.erase(line);
        else
            ag.waitingTail.insert(line);
        return;
    }
    membership_.emplace(line, &ag);
    ag.members.emplace(line, false);
    if (!isTail)
        ag.waitingTail.insert(line);
    if (ag.size() >= maxLines_)
        freezeOpen(FreezeReason::SizeCap);
}

AtomicGroup *
AgManager::groupOf(LineAddr line)
{
    auto it = membership_.find(line);
    return it == membership_.end() ? nullptr : it->second;
}

const AtomicGroup *
AgManager::groupOf(LineAddr line) const
{
    auto it = membership_.find(line);
    return it == membership_.end() ? nullptr : it->second;
}

bool
AgManager::inFrozenGroup(LineAddr line) const
{
    const AtomicGroup *ag = groupOf(line);
    return ag && ag->frozen;
}

AtomicGroup *
AgManager::freezeOpen(FreezeReason why)
{
    if (queue_.empty() || queue_.back()->frozen)
        return nullptr;
    AtomicGroup &ag = *queue_.back();
    ag.frozen = true;
    ag.freezeReason = why;
    sizeHist_.add(ag.size());
    dirtyHist_.add(ag.dirtyCount());
    return &ag;
}

void
AgManager::becameTail(LineAddr line)
{
    AtomicGroup *ag = groupOf(line);
    if (!ag)
        return;
    ag->waitingTail.erase(line);
}

void
AgManager::releaseBufferedLine(AtomicGroup &ag, LineAddr line)
{
    auto it = membership_.find(line);
    if (it != membership_.end() && it->second == &ag)
        membership_.erase(it);
}

AtomicGroup *
AgManager::oldest()
{
    return queue_.empty() ? nullptr : queue_.front().get();
}

std::vector<LineAddr>
AgManager::retireOldest()
{
    tsoper_assert(!queue_.empty(), "retire with no AGs");
    AtomicGroup &ag = *queue_.front();
    tsoper_assert(ag.frozen && ag.unbuffered == 0,
                  "retiring an unpersisted AG");
    std::vector<LineAddr> clean;
    for (const auto &[line, dirty] : ag.members) {
        // Dirty lines may already have released their membership at
        // buffering time, and the line may meanwhile belong to a newer
        // AG — only erase our own entry.
        auto it = membership_.find(line);
        if (it != membership_.end() && it->second == &ag)
            membership_.erase(it);
        if (!dirty)
            clean.push_back(line);
    }
    queue_.pop_front();
    return clean;
}

} // namespace tsoper
