/**
 * @file
 * Crash-consistency checker.
 *
 * Given the durable state reconstructed after an injected crash and the
 * recorded execution (StoreLog), the checker decides whether the
 * durable state is a legal cut of the execution under the persistency
 * model:
 *
 *  StrictTso — the paper's guarantee: there must exist a downward-
 *  closed set S of stores (under per-core TSO program order, per-word
 *  coherence order, and reads-from dependencies) such that the durable
 *  state equals the final value of S per word.  Concretely: the
 *  closure of the durable word values must itself be durably
 *  reflected — for every store s in the closure, the durable value of
 *  s's word is s or a same-word successor of s.
 *
 *  RelaxedSfr — HW-RP's weaker contract: program order is only
 *  enforced across SFR boundaries (stores within an SFR are unordered);
 *  same-word order and reads-from (through synchronization, assuming
 *  DRF) still apply.
 *
 * Atomic-group atomicity violations are caught by the same check: a
 * torn AG leaves some program-order (or rf) predecessor of a durable
 * store undurable, which the closure flags.
 */

#ifndef TSOPER_CORE_CRASH_CHECKER_HH
#define TSOPER_CORE_CRASH_CHECKER_HH

#include <string>
#include <unordered_map>

#include "mem/nvm.hh"
#include "sim/store_log.hh"
#include "sim/types.hh"

namespace tsoper
{

enum class PersistModel
{
    StrictTso,
    RelaxedSfr,
};

struct CheckResult
{
    bool ok = true;
    std::string detail;          ///< First violation, human-readable.
    std::size_t requiredStores = 0; ///< Size of the computed closure.
    std::size_t durableWords = 0;   ///< Non-empty words checked.
};

/**
 * Validate @p durable (line -> per-word StoreIds) against the recorded
 * execution under @p model.
 */
CheckResult checkDurableState(
    const std::unordered_map<LineAddr, LineWords> &durable,
    const StoreLog &log, PersistModel model, unsigned numCores);

} // namespace tsoper

#endif // TSOPER_CORE_CRASH_CHECKER_HH
