/**
 * @file
 * "Stop the world" strict TSO persistency (§III, §V "Systems"):
 * identical AG formation to TSOPER, but on any exposure-driven freeze
 * the whole machine stalls until every frozen atomic group has been
 * buffered *and drained to NVM* — the naive design trusts nothing
 * in flight.  This is the baseline TSOPER's non-blocking ordering
 * machinery is measured against (Fig. 11).
 */

#ifndef TSOPER_CORE_STW_ENGINE_HH
#define TSOPER_CORE_STW_ENGINE_HH

#include "core/tsoper_engine.hh"

namespace tsoper
{

class StwEngine : public TsoperEngine
{
  public:
    StwEngine(const SystemConfig &cfg, EventQueue &eq, SlcProtocol &slc,
              Agb &agb, StatsRegistry &stats);

    bool coreStalled(CoreId core) const override;
    void addStallWaiter(std::function<void()> resume) override;

    bool stalled() const { return stalled_; }

  protected:
    void onFroze(CoreId core, const AtomicGroup &ag, FreezeReason why,
                 Cycle now) override;
    void onRetired(CoreId core, Cycle now) override;

  private:
    void maybeResume();

    bool stalled_ = false;
    Cycle stallStart_ = 0;
    std::vector<std::function<void()>> stallWaiters_;
    Counter &stalls_;
    Counter &stallCycles_;
};

} // namespace tsoper

#endif // TSOPER_CORE_STW_ENGINE_HH
