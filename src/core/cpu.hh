/**
 * @file
 * In-order TSO core model plus the synchronization coordinator.
 *
 * Each core executes its trace one op at a time: compute ops burn
 * cycles, loads block until data returns (with store-buffer forwarding
 * and TSO load->load ordering by construction), stores retire into a
 * FIFO store buffer that drains to the private cache one store at a
 * time.  Lock acquires are modelled as atomic RMWs on the lock's
 * cacheline (draining the store buffer first, like x86 locked ops);
 * barriers drain the buffer, store to the barrier line, and rendezvous.
 * Sync traffic flows through the coherence protocol, so persist
 * dependencies thread through locks and barriers exactly as TSOPER
 * requires.
 *
 * The persistency engine gates progress at three points: global stalls
 * (STW), store-buffer drain (frozen-AG / closed-epoch lines), and sync
 * completion (HW-RP persist-queue backpressure).
 */

#ifndef TSOPER_CORE_CPU_HH
#define TSOPER_CORE_CPU_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "coherence/protocol.hh"
#include "core/engine.hh"
#include "mem/store_buffer.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/store_log.hh"
#include "workload/trace.hh"

namespace tsoper
{

/** Simulator-level lock queues and barrier rendezvous. */
class SyncCoordinator
{
  public:
    SyncCoordinator(unsigned numCores, EventQueue &eq);

    /**
     * Try to take @p lock for @p core.  @return true if granted now;
     * otherwise @p grant is queued and runs when the lock frees.
     */
    bool acquire(unsigned lock, CoreId core, std::function<void()> grant);

    void release(unsigned lock, CoreId core);

    /** Arrive at @p barrier; all cores' @p resume run on the last
     *  arrival. */
    void arrive(unsigned barrier, CoreId core,
                std::function<void()> resume);

  private:
    struct Lock
    {
        bool held = false;
        CoreId owner = invalidCore;
        std::deque<std::pair<CoreId, std::function<void()>>> waiters;
    };

    struct Barrier
    {
        unsigned arrived = 0;
        std::vector<std::function<void()>> resumes;
    };

    unsigned numCores_;
    EventQueue &eq_;
    std::unordered_map<unsigned, Lock> locks_;
    std::unordered_map<unsigned, Barrier> barriers_;
};

class Cpu
{
  public:
    Cpu(CoreId id, const SystemConfig &cfg, EventQueue &eq,
        CoherenceProtocol &proto, PersistEngine &engine,
        SyncCoordinator &sync, StoreLog *log, StatsRegistry &stats);

    void setTrace(const Trace *trace) { trace_ = trace; }

    /** Schedule the first step at the current cycle. */
    void start();

    bool finished() const { return finished_; }
    Cycle finishedAt() const { return finishedAt_; }
    std::uint64_t storesIssued() const { return nextStoreSeq_; }

    /** Trace ops retired so far (the watchdog's progress signal). */
    std::uint64_t opsRetired() const { return pc_; }
    /** Total ops in this core's trace (0 before setTrace). */
    std::uint64_t
    traceOps() const
    {
        return trace_ ? trace_->size() : 0;
    }

    /** Invoked once when the core finishes its trace and drains. */
    void onFinished(std::function<void()> fn) { finishedCb_ = std::move(fn); }

  private:
    void scheduleStep(Cycle delta);
    void step();
    void advance(Cycle delta = 1);
    /** Continue at absolute cycle @p at (>= now). */
    void advanceAt(Cycle at);

    void execLoad(const TraceOp &op);
    void execStore(const TraceOp &op);
    void execLockAcq(const TraceOp &op);
    void execLockAcqGranted(const TraceOp &op);
    void execLockRel(const TraceOp &op);
    void execBarrier(const TraceOp &op);

    /** Drain-at-sync helper: run @p then once the SB is empty. */
    void whenSbEmpty(std::function<void()> then);

    /**
     * Issue a store that bypasses the SB (lock/barrier lines), honouring
     * engine gating; @p then runs at the commit-completion cycle.
     */
    void issueDirectStore(Addr addr, std::function<void()> then);

    void tryDrainSb();
    void drainProgress();
    void checkFinished();

    StoreId newStoreId();
    void syncBoundary();

    CoreId id_;
    const SystemConfig &cfg_;
    EventQueue &eq_;
    CoherenceProtocol &proto_;
    PersistEngine &engine_;
    SyncCoordinator &sync_;
    StoreLog *log_;
    const Trace *trace_ = nullptr;

    StoreBuffer sb_;
    std::size_t pc_ = 0;
    std::uint64_t nextStoreSeq_ = 0;
    bool sbDraining_ = false;
    bool waitingOnSb_ = false; ///< step() blocked on SB progress.
    std::function<void()> sbEmptyCb_;
    bool finished_ = false;
    Cycle finishedAt_ = 0;
    std::function<void()> finishedCb_;

    Counter &loads_;
    Counter &stores_;
    Counter &computeCycles_;
    Counter &sbFullStalls_;
    Counter &sbLineStalls_;
    Counter &lockAcquires_;
    Counter &barriers_;
};

} // namespace tsoper

#endif // TSOPER_CORE_CPU_HH
