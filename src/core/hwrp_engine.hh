/**
 * @file
 * HW-RP: the paper's hardware relaxed-persistency comparison point
 * (§V "Systems").  Persistency at synchronization-free-region (SFR)
 * granularity:
 *
 *  - within an SFR, persists of the region's dirty cachelines are
 *    completely unordered;
 *  - at a synchronization operation (SFR boundary) the region's dirty
 *    lines are queued for persist; the next region's persists are
 *    ordered after them (persist order across synchronization);
 *  - evictions of dirty lines are spontaneous persists;
 *  - the core stalls at a sync only if its persist queue is full.
 *
 * Durability model: like every system in the paper (§II, "buffered
 * persists are considered committed to NVM even in the event of a
 * crash"), a line is durable once it enters the memory controller's
 * power-backed write-pending queue (WPQ); the 360-cycle NVM write
 * drains behind it.  Cross-SFR ordering is therefore enforced on WPQ
 * *entry* times, which is what lets HW-RP run at baseline speed.
 *
 * Coalescing happens only within one SFR, so sync-heavy applications
 * persist the same lines over and over — the source of HW-RP's higher
 * persist traffic in Fig. 14 and of the SFR-size behaviour of Fig. 15.
 */

#ifndef TSOPER_CORE_HWRP_ENGINE_HH
#define TSOPER_CORE_HWRP_ENGINE_HH

#include <deque>
#include <unordered_set>
#include <vector>

#include "coherence/slc.hh"
#include "core/engine.hh"
#include "mem/nvm.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace tsoper
{

class HwRpEngine : public PersistEngine
{
  public:
    HwRpEngine(const SystemConfig &cfg, EventQueue &eq, SlcProtocol &slc,
               Nvm &nvm, StatsRegistry &stats);

    // --- ProtocolHooks -------------------------------------------------
    Cycle onDirtyExpose(CoreId owner, LineAddr line, CoreId requester,
                        bool forWrite, Cycle now) override;
    void onDirtyEvict(CoreId owner, LineAddr line, ExposeReason why,
                      Cycle now) override;
    void onStoreCommitted(CoreId core, LineAddr line, Cycle now) override;
    bool dropsInvalidDirty() const override { return true; }

    // --- PersistEngine ---------------------------------------------------
    void onSync(CoreId core, Cycle now) override;
    void onSyncEvent(CoreId core, Cycle now, SyncEvent event,
                     unsigned id) override;
    bool syncMayProceed(CoreId core) override;
    void addSyncWaiter(CoreId core, std::function<void()> retry) override;
    void drain(std::function<void()> done) override;
    bool quiescent() const override;
    std::unordered_map<LineAddr, LineWords> crashOverlay() const override;

    /** Current SFR's accumulated store count for @p core (Fig. 15). */
    std::uint64_t
    sfrStores(CoreId core) const
    {
        return sfrStoreCount_[static_cast<unsigned>(core)];
    }

  private:
    void flushSfr(CoreId core, Cycle now);
    void lineDone(CoreId core, LineAddr line);

    /**
     * Enqueue one line into its rank's WPQ, no earlier than
     * @p earliest.  @return the WPQ-entry cycle (= durability point);
     * the NVM write is issued behind it.
     *
     * @p auditTag names the line's persist group in the structured
     * trace; @p batched marks lines of an SFR flush batch (spontaneous
     * eviction persists are unordered singletons).
     */
    Cycle persistLine(CoreId core, LineAddr line, const LineWords &words,
                      Cycle earliest, std::uint64_t auditTag,
                      bool batched);

    /** A batched line entered the WPQ: advance the batch audit. */
    void onBatchEntry(CoreId core, std::uint64_t tag);
    void finishBatch(CoreId core, std::uint64_t tag);

    const SystemConfig &cfg_;
    EventQueue &eq_;
    SlcProtocol &slc_;
    Nvm &nvm_;

    std::vector<std::unordered_set<LineAddr>> sfrDirty_; ///< Per core.
    std::vector<std::uint64_t> sfrStoreCount_;
    std::vector<Cycle> batchDoneAt_;     ///< Previous batch completion.
    /** Persist clocks carried across threads by synchronization: a
     *  release/arrival publishes its batch completion; an acquire or
     *  barrier resume adopts it. */
    std::unordered_map<unsigned, Cycle> lockClock_;
    std::unordered_map<unsigned, Cycle> barrierClock_;
    /** Trace-audit shadow state: SFR batch numbering, the batch behind
     *  each sync clock, and per-batch WPQ-entry accounting (populated
     *  only while the persist trace category is enabled). */
    std::vector<std::uint64_t> batchSeq_;
    std::vector<std::uint64_t> spontSeq_;
    std::vector<std::uint64_t> lastBatchTag_;
    std::unordered_map<unsigned, std::uint64_t> lockClockTag_;
    std::unordered_map<unsigned, std::uint64_t> barrierClockTag_;
    struct BatchAudit
    {
        unsigned pending = 0; ///< Lines not yet in the WPQ.
        unsigned lines = 0;
        Cycle maxEntry = 0;
        bool closed = false;
    };
    std::vector<std::unordered_map<std::uint64_t, BatchAudit>>
        batchAudit_;
    /** Per-rank WPQ modelling: entry port occupancy and the completion
     *  history used to bound in-flight entries to the queue depth. */
    std::vector<Cycle> wpqPortBusy_;
    std::vector<std::deque<Cycle>> wpqCompletions_;
    /** Durable-at-entry lines whose NVM write has not completed. */
    std::unordered_map<LineAddr, LineWords> wpqContents_;
    std::unordered_map<LineAddr, unsigned> wpqPendingCount_;
    std::vector<unsigned> outstanding_;  ///< Queued persist lines.
    std::vector<std::vector<std::function<void()>>> syncWaiters_;
    unsigned outstandingTotal_ = 0;
    bool draining_ = false;
    std::function<void()> drainDone_;

    Counter &persistWb_;
    Counter &spontaneous_;
    Counter &sfrCount_;
    Histogram &sfrSizeHist_;
    Histogram &sfrStoresHist_;
    TimeSeries &sfrStoresT_; ///< (cycle, stores) per SFR (Fig. 15).
};

} // namespace tsoper

#endif // TSOPER_CORE_HWRP_ENGINE_HH
