#include "core/agb.hh"

#include <algorithm>

#include "sim/debug.hh"
#include "sim/log.hh"
#include "sim/shard_fence.hh"
#include "sim/trace.hh"

namespace tsoper
{

Agb::Agb(const SystemConfig &cfg, EventQueue &eq, Mesh &mesh, Nvm &nvm,
         Llc &llc, StatsRegistry &stats)
    : cfg_(cfg), eq_(eq), bus_(cfg, eq, mesh), nvm_(nvm), llc_(llc),
      distributed_(cfg.agbDistributed), unbounded_(cfg.agbUnbounded),
      slices_(cfg.agbDistributed ? cfg.nvmRanks : 1),
      sliceCapacity_(cfg.agbDistributed
                         ? cfg.agbSliceLines
                         : cfg.agbSliceLines * cfg.nvmRanks),
      arbiterNode_(mesh.bankNode(0)),
      sliceUsed_(slices_, 0), slicePortBusy_(slices_, 0),
      agsAllocated_(stats.counter("agb.ags_allocated")),
      linesBuffered_(stats.counter("agb.lines_buffered")),
      persistWb_(stats.counter("traffic.persist_wb")),
      allocStallCycles_(stats.counter("agb.alloc_stall_cycles")),
      occupancyHist_(stats.histogram("agb.occupancy"))
{
}

bool
Agb::fits(const AgRec &ag) const
{
    if (unbounded_)
        return true;
    for (unsigned s = 0; s < slices_; ++s) {
        if (sliceUsed_[s] + ag.sliceNeeds[s] > sliceCapacity_)
            return false;
    }
    return true;
}

Agb::AgHandle
Agb::requestAllocation(CoreId from, std::vector<LineAddr> lines,
                       std::function<void(Cycle)> granted,
                       std::uint64_t auditTag)
{
    const AgHandle h = nextHandle_++;
    AgRec &ag = ags_[h];
    ag.handle = h;
    ag.auditTag = auditTag ? auditTag : h;
    ag.from = from;
    ag.lines = std::move(lines);
    ag.sliceNeeds.assign(slices_, 0);
    for (LineAddr line : ag.lines)
        ++ag.sliceNeeds[sliceOf(line)];
    ag.remaining = static_cast<unsigned>(ag.lines.size());
    ag.undrained = ag.remaining;
    ag.grantedCb = std::move(granted);
    if (!unbounded_) {
        for (unsigned s = 0; s < slices_; ++s) {
            tsoper_assert(ag.sliceNeeds[s] <= sliceCapacity_,
                          "atomic group exceeds AGB slice capacity");
        }
    }
    // Two-phase ingress: the request travels to the arbiter; grants are
    // issued in FIFO order as space allows.
    bus_.send(bus_.coreNode(from), arbiterNode_, cfg_.ctrlMsgBytes,
              [this, h] {
                  allocQueue_.push_back(h);
                  tryGrant();
              });
    return h;
}

void
Agb::tryGrant()
{
    // Grant arbitration runs at the arbiter's tile.
    shardFenceCheck(arbiterNode_);
    while (!allocQueue_.empty()) {
        auto it = ags_.find(allocQueue_.front());
        tsoper_assert(it != ags_.end());
        AgRec &ag = it->second;
        if (!fits(ag))
            return; // Strict FIFO: younger AGs wait behind.
        allocQueue_.pop_front();
        grant(ag);
    }
}

void
Agb::grant(AgRec &ag)
{
    agsAllocated_.inc();
    ag.granted = true;
    TSOPER_TRACE(Agb, eq_.now(), "AG handle " << ag.handle << " ("
                 << ag.lines.size() << " lines from core " << ag.from
                 << ") allocated");
    for (unsigned s = 0; s < slices_; ++s)
        sliceUsed_[s] += ag.sliceNeeds[s];
    unsigned total = 0;
    for (unsigned s = 0; s < slices_; ++s)
        total += sliceUsed_[s];
    occupancyHist_.add(total);
    trace::instant(trace::Event::AgbGrant, ag.from, eq_.now(),
                   ag.auditTag, ag.lines.size(), total);
    trace::counter(trace::Event::AgbOccupancy, invalidCore, eq_.now(),
                   total);
    fifo_.push_back(ag.handle);
    // Broadcast the grant back to the requesting L1.
    auto cb = ag.grantedCb;
    const AgHandle h = ag.handle;
    bus_.send(arbiterNode_, bus_.coreNode(ag.from), cfg_.ctrlMsgBytes,
              [this, h, cb] {
        if (cb)
            cb(eq_.now());
        // Empty AGs (all-clean groups) complete immediately.
        auto it = ags_.find(h);
        if (it != ags_.end() && it->second.remaining == 0 &&
            !it->second.complete) {
            it->second.complete = true;
            advanceCommitted();
        }
    });
}

void
Agb::bufferLine(AgHandle h, LineAddr line, const LineWords &words,
                std::function<void(Cycle)> done)
{
    auto it = ags_.find(h);
    tsoper_assert(it != ags_.end(), "bufferLine on unknown AG");
    AgRec &ag = it->second;
    tsoper_assert(ag.granted, "bufferLine before allocation grant");
    tsoper_assert(ag.remaining > 0, "bufferLine past AG size");
    tsoper_assert(ag.issued.insert(line).second, "line buffered twice");
    const unsigned s = sliceOf(line);
    // NoC leg to the slice, then the SRAM port serializes writes.
    const int sliceNode =
        distributed_ ? bus_.mcNode(nvm_.rankOf(line)) : arbiterNode_;
    const Cycle arrive = bus_.arrival(bus_.coreNode(ag.from), sliceNode,
                                     lineBytes + cfg_.ctrlMsgBytes,
                                     eq_.now());
    const Cycle start = std::max(arrive, slicePortBusy_[s]);
    const Cycle complete = start + cfg_.agbWriteLatency;
    slicePortBusy_[s] = complete;
    linesBuffered_.inc();
    persistWb_.inc();
    trace::instant(trace::Event::PersistIssue, ag.from, eq_.now(), line,
                   ag.auditTag);
    eq_.schedule(complete, [this, h, line, words, done] {
        auto iter = ags_.find(h);
        tsoper_assert(iter != ags_.end());
        AgRec &rec = iter->second;
        rec.buffered.emplace(line, words);
        --rec.remaining;
        // The AGB SRAM is power-backed: a buffered line is already in
        // the persistent domain, so this is its durable point.
        trace::instant(trace::Event::PersistCommit, rec.from, eq_.now(),
                       line, rec.auditTag);
        // LLC inclusion of AGB contents (the paper's §II-B future
        // optimization): the line is pinned in the LLC until its NVM
        // write completes, so loads never search the AGB and no LLC
        // eviction can overtake the in-flight drain.
        llc_.pinForAgb(line);
        if (done)
            done(eq_.now());
        if (rec.remaining == 0) {
            rec.complete = true;
            TSOPER_TRACE(Agb, eq_.now(), "AG handle " << h
                         << " fully buffered — joins the super group");
            advanceCommitted();
        }
    });
}

void
Agb::advanceCommitted()
{
    // Super-group rule: drain-eligible AGs are the consecutive complete
    // prefix of the allocation FIFO.
    while (committedPrefix_ < fifo_.size()) {
        auto it = ags_.find(fifo_[committedPrefix_]);
        tsoper_assert(it != ags_.end());
        AgRec &ag = it->second;
        if (!ag.complete)
            break;
        // Advance the prefix before draining: an empty AG retires
        // synchronously inside drainAg and pops itself off the FIFO.
        ++committedPrefix_;
        // Joining the committed prefix is the AG's atomic durable
        // point under the crash rule above.
        trace::instant(trace::Event::GroupDurable, ag.from, eq_.now(),
                       ag.auditTag, ag.lines.size());
        if (!ag.drainIssued) {
            ag.drainIssued = true;
            drainAg(ag);
        }
    }
}

void
Agb::drainAg(AgRec &ag)
{
    if (ag.lines.empty()) {
        maybeRetire(ag.handle);
        return;
    }
    const AgHandle h = ag.handle;
    for (LineAddr line : ag.lines) {
        const auto wit = ag.buffered.find(line);
        tsoper_assert(wit != ag.buffered.end());
        const unsigned s = sliceOf(line);
        nvm_.write(line, wit->second, eq_.now(),
                   [this, h, s, line](Cycle) {
            // NVM write durable: free the AGB slot and release the
            // LLC pin.
            llc_.unpinForAgb(line);
            tsoper_assert(sliceUsed_[s] > 0);
            --sliceUsed_[s];
            if (trace::on(trace::Category::Agb)) {
                unsigned total = 0;
                for (unsigned sl = 0; sl < slices_; ++sl)
                    total += sliceUsed_[sl];
                trace::counter(trace::Event::AgbOccupancy, invalidCore,
                               eq_.now(), total);
            }
            auto it = ags_.find(h);
            tsoper_assert(it != ags_.end());
            --it->second.undrained;
            maybeRetire(h);
            tryGrant();
        });
    }
}

void
Agb::maybeRetire(AgHandle h)
{
    auto it = ags_.find(h);
    tsoper_assert(it != ags_.end());
    if (it->second.undrained != 0 || !it->second.drainIssued)
        return;
    // Fully durable in NVM: drop the record and compact the FIFO head.
    trace::instant(trace::Event::AgbDrained, it->second.from, eq_.now(),
                   it->second.auditTag);
    ags_.erase(it);
    while (!fifo_.empty() && !ags_.count(fifo_.front())) {
        fifo_.pop_front();
        tsoper_assert(committedPrefix_ > 0);
        --committedPrefix_;
    }
    checkQuiescent();
}

std::vector<std::pair<LineAddr, LineWords>>
Agb::crashOverlay() const
{
    // Durable contents: the committed prefix in allocation order.  Lines
    // already drained to NVM are included harmlessly (idempotent).
    std::vector<std::pair<LineAddr, LineWords>> overlay;
    for (std::size_t i = 0; i < committedPrefix_; ++i) {
        auto it = ags_.find(fifo_[i]);
        if (it == ags_.end())
            continue;
        const AgRec &ag = it->second;
        for (LineAddr line : ag.lines) {
            auto wit = ag.buffered.find(line);
            tsoper_assert(wit != ag.buffered.end());
            overlay.emplace_back(line, wit->second);
        }
    }
    return overlay;
}

bool
Agb::quiescent() const
{
    return ags_.empty() && allocQueue_.empty();
}

void
Agb::notifyQuiescent(std::function<void()> fn)
{
    if (quiescent()) {
        eq_.scheduleIn(0, std::move(fn));
        return;
    }
    quiescentWaiters_.push_back(std::move(fn));
}

void
Agb::checkQuiescent()
{
    if (!quiescent())
        return;
    auto waiters = std::move(quiescentWaiters_);
    quiescentWaiters_.clear();
    for (auto &w : waiters)
        eq_.scheduleIn(0, std::move(w));
}

} // namespace tsoper
