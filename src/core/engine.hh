/**
 * @file
 * Persistency-engine interface.
 *
 * A PersistEngine realizes one of the paper's evaluated persistency
 * mechanisms on top of a coherence protocol.  It receives protocol
 * events through the ProtocolHooks base (called at serialization
 * instants), gates the cores' store buffers and sync operations, and
 * owns the machinery that moves versions into the persistent domain
 * (AGB and/or NVM).
 *
 * Implementations: NoPersistEngine (baseline), TsoperEngine, StwEngine,
 * BspEngine (covering BSP, BSP+SLC, BSP+SLC+AGB), HwRpEngine.
 */

#ifndef TSOPER_CORE_ENGINE_HH
#define TSOPER_CORE_ENGINE_HH

#include <functional>
#include <unordered_map>

#include "coherence/protocol.hh"
#include "mem/nvm.hh"
#include "sim/types.hh"

namespace tsoper
{

class PersistEngine : public ProtocolHooks
{
  public:
    ~PersistEngine() override = default;

    // --- Core-side gating -------------------------------------------

    /**
     * May the store at the head of @p core's store buffer commit to the
     * private cache?  False when the line belongs to a frozen atomic
     * group (§II-A) or a closed, unpersisted BSP epoch.
     */
    virtual bool
    storeMayCommit(CoreId core, LineAddr line)
    {
        (void)core; (void)line;
        return true;
    }

    /**
     * Register @p retry to run once a blocked store may make progress.
     * Only called after storeMayCommit returned false.
     */
    virtual void addStoreWaiter(CoreId core, LineAddr line,
                                std::function<void()> retry);

    /** STW: is @p core stalled by a world-stop? */
    virtual bool
    coreStalled(CoreId core) const
    {
        (void)core;
        return false;
    }

    /** Register @p resume to run when the world-stop ends. */
    virtual void addStallWaiter(std::function<void()> resume);

    /** May @p core complete a sync operation (HW-RP queue backpressure)? */
    virtual bool
    syncMayProceed(CoreId core)
    {
        (void)core;
        return true;
    }

    virtual void addSyncWaiter(CoreId core, std::function<void()> retry);

    /** @p core executed a synchronization operation (SFR boundary). */
    virtual void
    onSync(CoreId core, Cycle now)
    {
        (void)core; (void)now;
    }

    /**
     * Identity of a synchronization operation, delivered after the SFR
     * boundary it caused.  HW-RP uses it to carry persist ordering
     * across threads: a release publishes its pre-boundary batch's
     * completion on the lock; an acquire (or barrier resume) adopts it,
     * so batches ordered by synchronization persist in that order.
     */
    enum class SyncEvent
    {
        LockAcquire,
        LockRelease,
        BarrierArrive,
        BarrierResume,
    };

    virtual void
    onSyncEvent(CoreId core, Cycle now, SyncEvent event, unsigned id)
    {
        (void)core; (void)now; (void)event; (void)id;
    }

    /** @p core executed a software epoch marker store (§II-D). */
    virtual void
    onMarker(CoreId core, Cycle now)
    {
        (void)core; (void)now;
    }

    // --- Run control ----------------------------------------------------

    /**
     * All cores finished; push every outstanding version into the
     * persistent domain.  @p done runs when the engine is quiescent.
     */
    virtual void
    drain(std::function<void()> done)
    {
        done();
    }

    /** Is all persistency work retired (post-drain)? */
    virtual bool quiescent() const { return true; }

    // --- Crash semantics ----------------------------------------------

    /**
     * Contents of the persistent domain that have not yet reached NVM
     * at the current instant: for AGB engines, the committed prefix of
     * buffered atomic groups in allocation order (§II-B).  Applied over
     * the NVM image to reconstruct the durable state after a crash.
     */
    virtual std::unordered_map<LineAddr, LineWords>
    crashOverlay() const
    {
        return {};
    }
};

/** The baseline: coherence only, nothing persists. */
class NoPersistEngine : public PersistEngine
{
};

} // namespace tsoper

#endif // TSOPER_CORE_ENGINE_HH
