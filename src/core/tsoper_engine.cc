#include "core/tsoper_engine.hh"

#include <algorithm>

#include "sim/debug.hh"
#include "sim/log.hh"
#include "sim/trace.hh"

namespace tsoper
{

TsoperEngine::TsoperEngine(const SystemConfig &cfg, EventQueue &eq,
                           SlcProtocol &slc, Agb &agb,
                           StatsRegistry &stats)
    : cfg_(cfg), eq_(eq), slc_(slc), agb_(agb),
      storeWaiters_(cfg.numCores),
      agsPersisted_(stats.counter("ag.persisted")),
      freezeRemote_(stats.counter("ag.freeze_remote")),
      freezeEvict_(stats.counter("ag.freeze_evict")),
      freezeCap_(stats.counter("ag.freeze_size_cap")),
      storeBlocks_(stats.counter("ag.store_blocks")),
      agStores_(stats.histogram("ag.stores")),
      agStoresT_(stats.timeSeries("ag.stores_t"))
{
    mgrs_.reserve(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c)
        mgrs_.push_back(std::make_unique<AgManager>(
            static_cast<CoreId>(c), cfg.agMaxLines,
            stats.histogram("ag.size"),
            stats.histogram("ag.dirty_size")));
}

// ---------------------------------------------------------------------
// Hook side: AG formation and freezing
// ---------------------------------------------------------------------

void
TsoperEngine::onStoreCommitted(CoreId core, LineAddr line, Cycle now)
{
    auto &mgr = *mgrs_[static_cast<unsigned>(core)];
    const bool capFroze =
        mgr.addDirty(line, slc_.nodeIsPersistTail(core, line));
    if (AtomicGroup *g = mgr.groupOf(line); g && g->openedAt == 0)
        g->openedAt = now;
    if (capFroze) {
        freezeCap_.inc();
        const AtomicGroup &frozen = *mgr.groupOf(line);
        agStores_.add(frozen.storeCount);
        agStoresT_.sample(now, static_cast<double>(frozen.storeCount));
        noteFrozen(core, frozen, FreezeReason::SizeCap, now);
        onFroze(core, frozen, FreezeReason::SizeCap, now);
        advance(core);
    }
}

void
TsoperEngine::onReadDependence(CoreId reader, LineAddr line, Cycle now)
{
    auto &mgr = *mgrs_[static_cast<unsigned>(reader)];
    mgr.addClean(line, slc_.nodeIsPersistTail(reader, line));
    if (AtomicGroup *g = mgr.groupOf(line); g && g->openedAt == 0)
        g->openedAt = now;
}

Cycle
TsoperEngine::onDirtyExpose(CoreId owner, LineAddr line, CoreId requester,
                            bool forWrite, Cycle now)
{
    freezeRemote_.inc();
    // The exposure creates a persist-before edge: the owner's AG (which
    // holds the dirty version) must persist before the requester's AG
    // that absorbs the dependence (§III-A).
    if (trace::on(trace::Category::Persist) && requester != invalidCore &&
        requester != owner) {
        if (const AtomicGroup *ag =
                mgrs_[static_cast<unsigned>(owner)]->groupOf(line)) {
            const AgId toId =
                mgrs_[static_cast<unsigned>(requester)]->openOrNextId();
            trace::instant(trace::Event::PbEdge, owner, now,
                           trace::groupTag(owner, ag->id),
                           trace::groupTag(requester, toId));
        }
    }
    freezeGroupOf(owner, line,
                  forWrite ? FreezeReason::RemoteWrite
                           : FreezeReason::RemoteRead,
                  now);
    // No handover delay: SLC grants access at link-up (OBS 3);
    // persistency trails coherence.
    return now;
}

void
TsoperEngine::onDirtyEvict(CoreId owner, LineAddr line, ExposeReason why,
                           Cycle now)
{
    freezeEvict_.inc();
    freezeGroupOf(owner, line,
                  why == ExposeReason::DirEviction
                      ? FreezeReason::DirEviction
                      : FreezeReason::Eviction,
                  now);
}

void
TsoperEngine::freezeGroupOf(CoreId core, LineAddr line, FreezeReason why,
                            Cycle now)
{
    auto &mgr = *mgrs_[static_cast<unsigned>(core)];
    AtomicGroup *ag = mgr.groupOf(line);
    tsoper_assert(ag, "exposed dirty line is not an AG member (core=",
                  core, " line=", line, ")");
    if (!ag->frozen) {
        mgr.freezeOpen(why);
        TSOPER_TRACE(Ag, now, "core " << core << " AG#" << ag->id
                     << " frozen (" << ag->members.size()
                     << " lines, reason=" << static_cast<int>(why)
                     << ")");
        agStores_.add(ag->storeCount);
        agStoresT_.sample(now, static_cast<double>(ag->storeCount));
        noteFrozen(core, *ag, why, now);
        onFroze(core, *ag, why, now);
    }
    advance(core);
}

void
TsoperEngine::onBecameTail(CoreId core, LineAddr line, Cycle now)
{
    (void)now;
    // The hook means "possibly a persist-tail now"; confirm before
    // clearing the dependence (clean cascades fire it liberally).
    if (slc_.hasNode(core, line) && slc_.nodeIsPersistTail(core, line))
        mgrs_[static_cast<unsigned>(core)]->becameTail(line);
    advance(core);
}

bool
TsoperEngine::lineInUnpersistedAg(CoreId core, LineAddr line) const
{
    return mgrs_[static_cast<unsigned>(core)]->isMember(line);
}

bool
TsoperEngine::lineInFrozenAg(CoreId core, LineAddr line) const
{
    return mgrs_[static_cast<unsigned>(core)]->inFrozenGroup(line);
}

void
TsoperEngine::onNodeRelinked(CoreId core, LineAddr line, Cycle now)
{
    (void)now;
    auto &mgr = *mgrs_[static_cast<unsigned>(core)];
    AtomicGroup *ag = mgr.groupOf(line);
    if (!ag)
        return;
    tsoper_assert(!ag->frozen, "relink of a frozen AG member");
    if (slc_.nodeIsPersistTail(core, line))
        ag->waitingTail.erase(line);
    else
        ag->waitingTail.insert(line);
}

void
TsoperEngine::onMarker(CoreId core, Cycle now)
{
    auto &mgr = *mgrs_[static_cast<unsigned>(core)];
    if (AtomicGroup *ag = mgr.freezeOpen(FreezeReason::Marker)) {
        agStores_.add(ag->storeCount);
        agStoresT_.sample(now, static_cast<double>(ag->storeCount));
        noteFrozen(core, *ag, FreezeReason::Marker, now);
        onFroze(core, *ag, FreezeReason::Marker, now);
        advance(core);
    }
}

void
TsoperEngine::noteFrozen(CoreId core, const AtomicGroup &ag,
                         FreezeReason why, Cycle now)
{
    trace::instant(trace::Event::AgFrozen, core, now,
                   trace::groupTag(core, ag.id), ag.members.size(),
                   static_cast<std::uint64_t>(why));
}

// ---------------------------------------------------------------------
// Core side: store gating
// ---------------------------------------------------------------------

bool
TsoperEngine::storeMayCommit(CoreId core, LineAddr line)
{
    // §II-A: a store to a cacheline in a frozen atomic group blocks
    // until the group persists.
    const bool blocked =
        mgrs_[static_cast<unsigned>(core)]->inFrozenGroup(line);
    if (blocked)
        storeBlocks_.inc();
    return !blocked;
}

bool
TsoperEngine::tryDeferStoreCommit(CoreId core, LineAddr line,
                                  std::function<void()> retry)
{
    // The freeze may have happened while this store's transaction was
    // in flight to the directory; re-check at the serialization point.
    if (!mgrs_[static_cast<unsigned>(core)]->inFrozenGroup(line))
        return false;
    storeBlocks_.inc();
    addStoreWaiter(core, line, std::move(retry));
    return true;
}

void
TsoperEngine::addStoreWaiter(CoreId core, LineAddr line,
                             std::function<void()> retry)
{
    storeWaiters_[static_cast<unsigned>(core)].push_back(
        StoreWaiter{line, std::move(retry)});
}

void
TsoperEngine::wakeStoreWaiters(CoreId core)
{
    auto &waiters = storeWaiters_[static_cast<unsigned>(core)];
    if (waiters.empty())
        return;
    auto &mgr = *mgrs_[static_cast<unsigned>(core)];
    std::vector<StoreWaiter> still;
    for (auto &w : waiters) {
        if (mgr.inFrozenGroup(w.line)) {
            still.push_back(std::move(w));
        } else {
            eq_.scheduleIn(0, std::move(w.retry));
        }
    }
    waiters = std::move(still);
}

// ---------------------------------------------------------------------
// Persist pipeline
// ---------------------------------------------------------------------

void
TsoperEngine::advance(CoreId core)
{
    auto &mgr = *mgrs_[static_cast<unsigned>(core)];
    for (const auto &agp : mgr.queue()) {
        AtomicGroup &ag = *agp;
        if (!ag.frozen)
            break; // The open AG and everything after persist later.
        if (ag.allocRequested)
            continue; // Already in the AGB pipeline.
        if (!ag.readyToPersist())
            break; // FIFO: younger AGs must not overtake.
        ag.allocRequested = true;
        std::vector<LineAddr> dirty;
        dirty.reserve(ag.members.size());
        for (const auto &[line, isDirty] : ag.members) {
            if (isDirty)
                dirty.push_back(line);
        }
        const AgId id = ag.id;
        ag.handle = agb_.requestAllocation(
            core, std::move(dirty),
            [this, core, id](Cycle t) { onGranted(core, id, t); },
            trace::groupTag(core, id));
    }
}

AtomicGroup *
TsoperEngine::findAg(CoreId core, AgId id)
{
    for (const auto &agp : mgrs_[static_cast<unsigned>(core)]->queue()) {
        if (agp->id == id)
            return agp.get();
    }
    return nullptr;
}

void
TsoperEngine::onGranted(CoreId core, AgId id, Cycle now)
{
    (void)now;
    AtomicGroup *ag = findAg(core, id);
    tsoper_assert(ag, "grant for a retired AG");
    ag->granted = true;
    TSOPER_TRACE(Ag, eq_.now(), "core " << core << " AG#" << id
                 << " allocation granted; streaming " << ag->unbuffered
                 << " dirty lines");
    if (ag->unbuffered == 0) {
        maybeRetire(core);
        return;
    }
    // Stream the dirty lines to the AGB (any order, §II-B); each line's
    // persist token passes as soon as it is buffered.
    for (const auto &[line, isDirty] : ag->members) {
        if (!isDirty)
            continue;
        agb_.bufferLine(ag->handle, line, slc_.nodeWords(core, line),
                        [this, core, id, line](Cycle t) {
            onLineBuffered(core, id, line, t);
        });
    }
}

void
TsoperEngine::onLineBuffered(CoreId core, AgId id, LineAddr line,
                             Cycle now)
{
    AtomicGroup *ag = findAg(core, id);
    tsoper_assert(ag && ag->unbuffered > 0);
    --ag->unbuffered;
    // The version is in the persistent domain: its membership (and the
    // frozen-group store block on the line) ends here.
    mgrs_[static_cast<unsigned>(core)]->releaseBufferedLine(*ag, line);
    // Token passes: the version leaves the sharing list (or becomes a
    // clean, still-valid head).  This may cascade new tails elsewhere.
    slc_.persistComplete(core, line, now);
    wakeStoreWaiters(core);
    if (ag->unbuffered == 0)
        maybeRetire(core);
}

void
TsoperEngine::maybeRetire(CoreId core)
{
    auto &mgr = *mgrs_[static_cast<unsigned>(core)];
    while (AtomicGroup *front = mgr.oldest()) {
        if (!(front->frozen && front->granted && front->unbuffered == 0))
            break;
        TSOPER_TRACE(Ag, eq_.now(), "core " << core << " AG#"
                     << front->id << " fully persisted, retiring");
        trace::span(trace::Event::AgRetired, core, front->openedAt,
                    eq_.now(), trace::groupTag(core, front->id),
                    front->dirtyCount(), front->storeCount);
        const std::vector<LineAddr> clean = mgr.retireOldest();
        for (LineAddr line : clean)
            slc_.releaseCleanMember(core, line, eq_.now());
        agsPersisted_.inc();
        wakeStoreWaiters(core);
        onRetired(core, eq_.now());
    }
    advance(core);
    checkDrainDone();
}

// ---------------------------------------------------------------------
// Drain and crash
// ---------------------------------------------------------------------

void
TsoperEngine::drain(std::function<void()> done)
{
    draining_ = true;
    drainDone_ = std::move(done);
    for (unsigned c = 0; c < cfg_.numCores; ++c) {
        if (const AtomicGroup *ag =
                mgrs_[c]->freezeOpen(FreezeReason::Drain)) {
            agStores_.add(ag->storeCount);
            agStoresT_.sample(eq_.now(),
                              static_cast<double>(ag->storeCount));
            noteFrozen(static_cast<CoreId>(c), *ag, FreezeReason::Drain,
                       eq_.now());
        }
        advance(static_cast<CoreId>(c));
    }
    checkDrainDone();
}

void
TsoperEngine::checkDrainDone()
{
    if (!draining_ || !drainDone_)
        return;
    for (const auto &mgr : mgrs_) {
        if (!mgr->empty())
            return;
    }
    // All AGs retired; wait for the AGB to finish writing NVM.
    auto done = std::move(drainDone_);
    drainDone_ = nullptr;
    agb_.notifyQuiescent(std::move(done));
}

bool
TsoperEngine::quiescent() const
{
    for (const auto &mgr : mgrs_) {
        if (!mgr->empty())
            return false;
    }
    return agb_.quiescent();
}

bool
TsoperEngine::anyFrozenUnbuffered() const
{
    for (const auto &mgr : mgrs_) {
        for (const auto &agp : mgr->queue()) {
            if (agp->frozen && agp->unbuffered > 0)
                return true;
        }
    }
    return false;
}

std::unordered_map<LineAddr, LineWords>
TsoperEngine::crashOverlay() const
{
    std::unordered_map<LineAddr, LineWords> overlay;
    for (const auto &[line, words] : agb_.crashOverlay()) {
        auto [it, fresh] = overlay.try_emplace(line, zeroLine());
        (void)fresh;
        mergeWords(it->second, words);
    }
    return overlay;
}

} // namespace tsoper
