#include "core/stw_engine.hh"

#include "sim/trace.hh"

namespace tsoper
{

StwEngine::StwEngine(const SystemConfig &cfg, EventQueue &eq,
                     SlcProtocol &slc, Agb &agb, StatsRegistry &stats)
    : TsoperEngine(cfg, eq, slc, agb, stats),
      stalls_(stats.counter("stw.stalls")),
      stallCycles_(stats.counter("stw.stall_cycles"))
{
}

bool
StwEngine::coreStalled(CoreId core) const
{
    (void)core;
    return stalled_;
}

void
StwEngine::addStallWaiter(std::function<void()> resume)
{
    stallWaiters_.push_back(std::move(resume));
}

void
StwEngine::onFroze(CoreId core, const AtomicGroup &ag, FreezeReason why,
                   Cycle now)
{
    (void)core; (void)ag;
    if (why == FreezeReason::Drain)
        return; // End-of-run flush: the cores are already done.
    if (!stalled_) {
        stalled_ = true;
        stallStart_ = now;
        stalls_.inc();
    }
}

void
StwEngine::onRetired(CoreId core, Cycle now)
{
    (void)core; (void)now;
    maybeResume();
}

void
StwEngine::maybeResume()
{
    if (!stalled_ || anyFrozenUnbuffered())
        return;
    // Naive stop-the-world: resume only once the persist is fully
    // durable — the AGB has drained to NVM.  (TSOPER's contribution is
    // precisely that its cores need not wait for any of this.)
    if (!agb_.quiescent()) {
        agb_.notifyQuiescent([this] { maybeResume(); });
        return;
    }
    stalled_ = false;
    stallCycles_.inc(eq_.now() - stallStart_);
    trace::span(trace::Event::StwStall, invalidCore, stallStart_,
                eq_.now(), 0);
    auto waiters = std::move(stallWaiters_);
    stallWaiters_.clear();
    for (auto &w : waiters)
        eq_.scheduleIn(0, std::move(w));
}

} // namespace tsoper
