#include "core/bsp_engine.hh"

#include <algorithm>

#include "sim/debug.hh"
#include "sim/log.hh"
#include "sim/trace.hh"

namespace tsoper
{

BspEngine::BspEngine(const SystemConfig &cfg, EventQueue &eq, Mesh &mesh,
                     Llc &llc, Nvm &nvm, MesiProtocol *mesi,
                     SlcProtocol *slc, Agb *agb, StatsRegistry &stats,
                     Mode mode)
    : cfg_(cfg), eq_(eq), bus_(cfg, eq, mesh), llc_(llc), nvm_(nvm), mesi_(mesi),
      slc_(slc), agb_(agb), mode_(mode), banks_(cfg.llcBanks),
      epochs_(cfg.numCores), latest_(cfg.numCores),
      carriedDeps_(cfg.numCores), storeWaiters_(cfg.numCores),
      epochsClosed_(stats.counter("bsp.epochs_closed")),
      epochBreaks_(stats.counter("bsp.epoch_breaks")),
      persistWb_(stats.counter("traffic.persist_wb")),
      l1ExclusionCycles_(stats.counter("bsp.l1_exclusion_cycles")),
      llcExclusionCycles_(stats.counter("bsp.llc_exclusion_cycles")),
      epochLines_(stats.histogram("bsp.epoch_lines"))
{
    tsoper_assert((mode == Mode::Bsp) == (mesi != nullptr),
                  "BSP proper runs on MESI");
    tsoper_assert((mode != Mode::Bsp) == (slc != nullptr),
                  "BSP+SLC variants run on SLC");
    tsoper_assert((mode == Mode::BspSlcAgb) == (agb != nullptr),
                  "only BSP+SLC+AGB uses the AGB");
}

BspEngine::Epoch &
BspEngine::openEpoch(CoreId core)
{
    auto &q = epochs_[static_cast<unsigned>(core)];
    if (q.empty() || q.back()->closed) {
        auto e = std::make_shared<Epoch>();
        e->uid = nextUid_++;
        e->core = core;
        e->openedAt = eq_.now();
        auto &carried = carriedDeps_[static_cast<unsigned>(core)];
        for (EpochPtr &dep : carried) {
            if (dep->persisted)
                continue;
            trace::instant(trace::Event::PbEdge, core, eq_.now(),
                           dep->uid, e->uid);
            e->deps.push_back(std::move(dep));
        }
        carried.clear();
        q.push_back(std::move(e));
        ++outstanding_;
    }
    return *q.back();
}

void
BspEngine::snapshot(Epoch &e, LineAddr line)
{
    if (e.snapshotted.count(line))
        return;
    if (mode_ == Mode::Bsp) {
        if (mesi_->isModified(e.core, line)) {
            e.words[line] = mesi_->lineWords(e.core, line);
            e.snapshotted.insert(line);
        }
    } else {
        if (slc_->hasNode(e.core, line) && slc_->nodeValid(e.core, line) &&
            slc_->nodeDirty(e.core, line)) {
            e.words[line] = slc_->nodeWords(e.core, line);
            e.snapshotted.insert(line);
        }
    }
}

void
BspEngine::onStoreCommitted(CoreId core, LineAddr line, Cycle now)
{
    Epoch &e = openEpoch(core);
    if (!e.words.count(line)) {
        e.order.push_back(line);
        e.words[line] = zeroLine();
    } else if (e.snapshotted.count(line)) {
        // The line was evicted (snapshot taken early) and re-fetched;
        // this store creates a newer in-epoch version, so re-snapshot
        // at close.
        e.snapshotted.erase(line);
        e.flushAt.erase(line);
    }
    latest_[static_cast<unsigned>(core)][line] =
        epochs_[static_cast<unsigned>(core)].back();
    ++e.storeCount;
    if (e.storeCount >= cfg_.bspEpochStores)
        closeEpoch(core, now);
}

void
BspEngine::onDirtyEvict(CoreId owner, LineAddr line, ExposeReason why,
                        Cycle now)
{
    (void)why;
    auto &map = latest_[static_cast<unsigned>(owner)];
    auto it = map.find(line);
    if (it == map.end() || it->second->persisted)
        return;
    Epoch &e = *it->second;
    if (e.flushAt.count(line))
        return; // Already flushed (or persisting via the close path).
    // The protocol already wrote the version to the LLC; snapshot it
    // (the node is still alive during this hook) and mark it flushed.
    // Closed epochs always snapshot their dirty lines at close, so this
    // only happens for the still-open epoch; the NVM persist is issued
    // when the epoch closes (persistLine sees the line as flushed).
    snapshot(e, line);
    e.flushAt[line] = now;
}

Cycle
BspEngine::onDirtyExpose(CoreId owner, LineAddr line, CoreId requester,
                         bool forWrite, Cycle now)
{
    (void)forWrite;
    auto &map = latest_[static_cast<unsigned>(owner)];
    auto it = map.find(line);
    if (it == map.end() || it->second->persisted)
        return now;
    EpochPtr e = it->second;
    if (!e->closed) {
        // Deadlock-avoidance break: conflicts close the epoch early.
        epochBreaks_.inc();
        closeEpoch(owner, now);
    }
    // The requester's (open) epoch inherits a persist-before dependence
    // on the exposed epoch — the coarse, epoch-granular analogue of
    // TSOPER's per-line sharing-list order.
    if (requester != owner && !e->persisted) {
        Epoch &mine = openEpoch(requester);
        mine.deps.push_back(e);
        trace::instant(trace::Event::PbEdge, owner, now, e->uid,
                       mine.uid);
    }
    if (mode_ != Mode::Bsp)
        return now; // SLC multiversioning: no L1 exclusion.
    // L1 exclusion: the handover waits until this line reaches the LLC.
    auto fit = e->flushAt.find(line);
    const Cycle handover = fit == e->flushAt.end() ? now : fit->second;
    if (handover > now)
        l1ExclusionCycles_.inc(handover - now);
    return std::max(handover, now);
}

void
BspEngine::closeEpoch(CoreId core, Cycle now)
{
    auto &q = epochs_[static_cast<unsigned>(core)];
    if (q.empty() || q.back()->closed)
        return;
    EpochPtr e = q.back();
    e->closed = true;
    epochsClosed_.inc();
    TSOPER_TRACE(Bsp, now, "core " << core << " epoch#" << e->uid
                 << " closed (" << e->order.size() << " lines, "
                 << e->storeCount << " stores)");
    epochLines_.add(e->order.size());
    trace::instant(trace::Event::EpochClosed, core, now, e->uid,
                   e->order.size(), e->storeCount);
    for (LineAddr line : e->order)
        snapshot(*e, line);
    e->pending = 0;
    for (LineAddr line : e->order) {
        if (e->snapshotted.count(line))
            ++e->pending;
    }
    if (mode_ != Mode::BspSlcAgb) {
        // Phase 1 (through-LLC modes): write the versions into the LLC
        // immediately — this is what releases BSP's L1 exclusion and
        // the per-cache store block.  The NVM phase is dep-ordered.
        for (LineAddr line : e->order) {
            if (e->snapshotted.count(line))
                flushLineToLlc(*e, line, now);
        }
    }
    if (e->pending == 0) {
        // Nothing to persist: the epoch completes immediately (no
        // durable point, no throttling), but its persist-before deps
        // must not evaporate — the core's next epoch inherits them.
        auto &carried = carriedDeps_[static_cast<unsigned>(core)];
        for (const EpochPtr &dep : e->deps) {
            if (!dep->persisted)
                carried.push_back(dep);
        }
        e->deps.clear();
        markPersisted(e);
        return;
    }
    tryIssuePersist(e, now);
}

void
BspEngine::flushLineToLlc(Epoch &e, LineAddr line, Cycle earliest)
{
    // LLC exclusion: wait for the previous version's NVM persist.
    Cycle ready = earliest;
    if (auto it = lineNvmReady_.find(line); it != lineNvmReady_.end())
        ready = std::max(ready, it->second);
    if (ready > earliest)
        llcExclusionCycles_.inc(ready - earliest);
    if (e.flushAt.count(line))
        return; // Already written back (eviction path).
    const Cycle flushDone =
        ready + bus_.idealLatency(
                    bus_.coreNode(e.core),
                    bus_.bankNode(static_cast<unsigned>(line) &
                                   (banks_ - 1)),
                    lineBytes + cfg_.ctrlMsgBytes);
    e.flushAt[line] = flushDone;
    // Functional LLC update at the flush instant, only if this
    // snapshot is still the line's current version.
    const LineWords snap = e.words.at(line);
    const CoreId core = e.core;
    eq_.schedule(flushDone, [this, line, snap, core] {
        const bool current =
            mode_ == Mode::Bsp
                ? (mesi_->isModified(core, line) &&
                   mesi_->lineWords(core, line) == snap)
                : (slc_->hasNode(core, line) &&
                   slc_->nodeValid(core, line) &&
                   slc_->nodeWords(core, line) == snap);
        if (current)
            llc_.install(line, snap, true, eq_.now());
        wakeStoreWaiters(core);
    });
}

void
BspEngine::tryIssuePersist(const EpochPtr &e, Cycle now)
{
    if (e->persistIssued || e->persisted)
        return;
    for (const EpochPtr &dep : e->deps) {
        if (!dep->persisted) {
            if (!e->waitingOnDeps) {
                e->waitingOnDeps = true;
            }
            dep->dependents.push_back(e);
            return; // Re-tried when this dep persists.
        }
    }
    e->persistIssued = true;
    e->deps.clear();
    if (mode_ == Mode::BspSlcAgb)
        persistViaAgb(e, now);
    else
        issueNvmWrites(e, now);
}

void
BspEngine::issueNvmWrites(const EpochPtr &e, Cycle now)
{
    for (LineAddr line : e->order) {
        if (!e->snapshotted.count(line))
            continue;
        const Cycle earliest =
            std::max(now, e->flushAt.count(line) ? e->flushAt.at(line)
                                                 : now);
        Cycle ready = earliest;
        if (auto it = lineNvmReady_.find(line);
            it != lineNvmReady_.end())
            ready = std::max(ready, it->second);
        const Cycle completion =
            nvm_.write(line, e->words.at(line), ready);
        persistWb_.inc();
        trace::instant(trace::Event::PersistIssue, e->core, ready, line,
                       e->uid);
        lineNvmReady_[line] = completion;
        llc_.setPersistPending(line, completion);
        eq_.schedule(completion, [this, e, line] {
            trace::instant(trace::Event::PersistCommit, e->core,
                           eq_.now(), line, e->uid);
            epochLineDone(e, 0);
        });
    }
}

void
BspEngine::persistViaAgb(const EpochPtr &e, Cycle now)
{
    (void)now;
    std::vector<LineAddr> lines;
    for (LineAddr line : e->order) {
        if (e->snapshotted.count(line))
            lines.push_back(line);
    }
    e->pending = static_cast<unsigned>(lines.size());
    if (lines.empty()) {
        markPersisted(e);
        return;
    }
    e->handle = agb_->requestAllocation(
        e->core, lines,
        [this, e, lines](Cycle) {
            for (LineAddr line : lines) {
                agb_->bufferLine(e->handle, line, e->words.at(line),
                                 [this, e, line](Cycle t) {
                    // The version is in the persistent domain: stores
                    // to the line may proceed.
                    e->flushAt[line] = t;
                    wakeStoreWaiters(e->core);
                    epochLineDone(e, t);
                });
            }
        },
        e->uid);
}

void
BspEngine::epochLineDone(const EpochPtr &e, Cycle now)
{
    (void)now;
    tsoper_assert(e->pending > 0);
    if (--e->pending == 0)
        markPersisted(e);
}

void
BspEngine::markPersisted(const EpochPtr &e)
{
    e->persisted = true;
    TSOPER_TRACE(Bsp, eq_.now(), "core " << e->core << " epoch#"
                 << e->uid << " persisted");
    trace::span(trace::Event::EpochPersisted, e->core, e->openedAt,
                eq_.now(), e->uid, e->order.size());
    // In AGB mode the buffer emits the group-durable record at the
    // committed-prefix instant; emitting here too would double-count.
    // An epoch that persisted nothing has no recovery-visible durable
    // point, so it gets no record either.
    if (mode_ != Mode::BspSlcAgb && !e->snapshotted.empty())
        trace::instant(trace::Event::GroupDurable, e->core, eq_.now(),
                       e->uid, e->order.size());
    auto &q = epochs_[static_cast<unsigned>(e->core)];
    while (!q.empty() && q.front()->persisted) {
        q.pop_front();
        tsoper_assert(outstanding_ > 0);
        --outstanding_;
    }
    wakeStoreWaiters(e->core);
    // Dep-ordered persists: epochs waiting on this one may go now.
    auto dependents = std::move(e->dependents);
    e->dependents.clear();
    for (const EpochPtr &d : dependents)
        tryIssuePersist(d, eq_.now());
    checkDrainDone();
}

bool
BspEngine::tryDeferStoreCommit(CoreId core, LineAddr line,
                               std::function<void()> retry)
{
    if (storeMayCommit(core, line))
        return false;
    addStoreWaiter(core, line, std::move(retry));
    return true;
}

bool
BspEngine::storeMayCommit(CoreId core, LineAddr line)
{
    // In every mode a store to a closed, unpersisted epoch's line must
    // wait until that line's version is safely out of the L1 (written
    // to the LLC, or buffered in the AGB).  This is the per-cache
    // multiversion rule TSOPER also obeys — and with BSP's huge static
    // epochs it is the §V-B "serialization overhead of large epochs":
    // the more lines an epoch holds, the longer its lines stay locked.
    auto &map = latest_[static_cast<unsigned>(core)];
    auto it = map.find(line);
    if (it == map.end() || it->second->persisted || !it->second->closed)
        return true;
    const Epoch &e = *it->second;
    auto fit = e.flushAt.find(line);
    return fit != e.flushAt.end() && fit->second <= eq_.now();
}

void
BspEngine::addStoreWaiter(CoreId core, LineAddr line,
                          std::function<void()> retry)
{
    storeWaiters_[static_cast<unsigned>(core)].push_back(
        StoreWaiter{line, std::move(retry)});
}

void
BspEngine::wakeStoreWaiters(CoreId core)
{
    auto &waiters = storeWaiters_[static_cast<unsigned>(core)];
    if (waiters.empty())
        return;
    std::vector<StoreWaiter> still;
    for (auto &w : waiters) {
        if (storeMayCommit(core, w.line))
            eq_.scheduleIn(0, std::move(w.retry));
        else
            still.push_back(std::move(w));
    }
    waiters = std::move(still);
}

void
BspEngine::onMarker(CoreId core, Cycle now)
{
    closeEpoch(core, now);
}

void
BspEngine::drain(std::function<void()> done)
{
    draining_ = true;
    drainDone_ = std::move(done);
    for (unsigned c = 0; c < cfg_.numCores; ++c)
        closeEpoch(static_cast<CoreId>(c), eq_.now());
    checkDrainDone();
}

void
BspEngine::checkDrainDone()
{
    if (!draining_ || !drainDone_ || outstanding_ != 0)
        return;
    auto done = std::move(drainDone_);
    drainDone_ = nullptr;
    if (agb_)
        agb_->notifyQuiescent(std::move(done));
    else
        eq_.scheduleIn(0, std::move(done));
}

bool
BspEngine::quiescent() const
{
    return outstanding_ == 0 && (!agb_ || agb_->quiescent());
}

std::unordered_map<LineAddr, LineWords>
BspEngine::crashOverlay() const
{
    std::unordered_map<LineAddr, LineWords> overlay;
    if (agb_) {
        for (const auto &[line, words] : agb_->crashOverlay()) {
            auto [it, fresh] = overlay.try_emplace(line, zeroLine());
            (void)fresh;
            mergeWords(it->second, words);
        }
    }
    return overlay;
}

} // namespace tsoper
