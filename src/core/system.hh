/**
 * @file
 * The System facade: the library's main public entry point.
 *
 * Builds a complete simulated machine from a SystemConfig (cores,
 * store buffers, private caches, NoC, LLC, directory, NVM, AGB,
 * coherence protocol, persistency engine), executes a Workload, and
 * exposes the statistics, the durable state and crash injection.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   SystemConfig cfg = makeConfig(EngineKind::Tsoper);
 *   cfg.recordStores = true;
 *   Workload w = generateByName("ocean_cp", cfg.numCores, 42);
 *   System sys(cfg, w);
 *   sys.run();
 *   sys.stats().dump(std::cout);
 */

#ifndef TSOPER_CORE_SYSTEM_HH
#define TSOPER_CORE_SYSTEM_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "coherence/mesi.hh"
#include "coherence/slc.hh"
#include "core/agb.hh"
#include "core/cpu.hh"
#include "core/engine.hh"
#include "mem/llc.hh"
#include "mem/nvm.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/shard_queue.hh"
#include "sim/log.hh"
#include "sim/stats.hh"
#include "sim/store_log.hh"
#include "workload/trace.hh"

namespace tsoper
{

class System
{
  public:
    System(const SystemConfig &cfg, const Workload &workload);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Run the workload to completion, then drain the persistency
     * engine.  @return the cycle all cores finished (the paper's
     * execution-time metric; the drain tail is excluded).
     *
     * The run is supervised by the progress watchdog (sim/watchdog.hh,
     * knobs on SystemConfig): a protocol livelock, a drained event
     * queue with unfinished cores, or blowing the @p maxCycles budget
     * all throw HungError carrying dumpState() — which the campaign
     * layer classifies as RunStatus::Hung instead of an opaque
     * wall-clock timeout.
     */
    Cycle run(Cycle maxCycles = 4'000'000'000ull);

    /**
     * Run until @p crashAt, then stop the machine cold.
     * @return the durable state: the NVM image plus the engine's
     * persistent-domain overlay (committed AGB prefix).
     */
    std::unordered_map<LineAddr, LineWords> runUntilCrash(Cycle crashAt);

    /** Durable state at the current instant (NVM + overlay). */
    std::unordered_map<LineAddr, LineWords> durableImage() const;

    /** Cycle at which the last core finished (0 if not done). */
    Cycle finishCycle() const;

    bool allFinished() const;

    /**
     * Monotonic forward-progress signature: retired ops plus NVM
     * traffic.  Flat across billions of events == livelock.
     */
    std::uint64_t progressSignature() const;

    /** One-screen machine state (per-core progress, queue depth) for
     *  hung-run diagnostics. */
    std::string dumpState() const;

    StatsRegistry &stats() { return stats_; }
    const StatsRegistry &stats() const { return stats_; }
    const StoreLog &storeLog() const { return *log_; }
    const SystemConfig &config() const { return cfg_; }
    EventQueue &eventQueue() { return eq_; }
    ShardedEventQueue &kernel() { return kernel_; }

    PersistEngine &engine() { return *engine_; }
    CoherenceProtocol &protocol() { return *proto_; }
    SlcProtocol *slc() { return slc_.get(); }
    MesiProtocol *mesi() { return mesi_.get(); }
    Agb *agb() { return agb_.get(); }
    Nvm &nvm() { return nvm_; }
    Llc &llc() { return llc_; }
    const Cpu &cpu(CoreId c) const { return *cpus_[(unsigned)c]; }

  private:
    SystemConfig cfg_;
    StatsRegistry stats_;
    /**
     * The event kernel: 1 + llcBanks shards (docs/pdes.md "Multi-shard
     * operation").  Shard 0 owns every functional and control
     * component — cores, store buffers, protocols, directory, NVM,
     * stats, tracing — while each LLC bank's access pipe (its
     * busy-until chain) runs on shard 1+b, reached only through
     * timestamped messages with >= one hop of delay each way
     * (Llc::accessAsync).  Directory transactions decompose into
     * message legs (coherence/txn.hh), so the pipes overlap with
     * shard 0 under the conservative window scheme, and fixed-seed
     * stats stay byte-identical at any cfg.threads because each
     * shard's event order is deterministic and the barrier drain
     * orders cross-shard messages by (source shard, post order).
     */
    ShardedEventQueue kernel_;
    /** Shard 0's queue: the functional components' scheduling
     *  interface. */
    EventQueue &eq_;
    /** Tile-ownership map for the shard fence: physical mesh nodes ->
     *  shard 0, virtual data-plane nodes meshNodes+b -> shard 1+b. */
    ShardFenceMap fence_;
    /** Timestamps warn/panic lines with eq_'s cycle while we're live. */
    ScopedLogCycleSource logCycle_;
    Mesh mesh_;
    Nvm nvm_;
    Llc llc_;
    std::unique_ptr<SlcProtocol> slc_;
    std::unique_ptr<MesiProtocol> mesi_;
    CoherenceProtocol *proto_ = nullptr;
    std::unique_ptr<Agb> agb_;
    std::unique_ptr<PersistEngine> engine_;
    std::unique_ptr<StoreLog> log_;
    SyncCoordinator sync_;
    std::vector<std::unique_ptr<Cpu>> cpus_;
    unsigned finishedCount_ = 0;
};

} // namespace tsoper

#endif // TSOPER_CORE_SYSTEM_HH
