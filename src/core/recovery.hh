/**
 * @file
 * Post-crash recovery: reconstruct the durable memory image of a
 * crashed system (NVM contents plus the committed prefix of the
 * power-backed persist buffers), audit it against the recorded
 * execution, and optionally carry it into a fresh system — the
 * software-visible face of the paper's durability guarantee.
 */

#ifndef TSOPER_CORE_RECOVERY_HH
#define TSOPER_CORE_RECOVERY_HH

#include <string>
#include <unordered_map>

#include "core/crash_checker.hh"
#include "mem/nvm.hh"
#include "sim/types.hh"

namespace tsoper
{

class System;

struct RecoveryReport
{
    /** Lines with at least one durable word. */
    std::size_t durableLines = 0;
    /** Durable (written) words in total. */
    std::size_t durableWords = 0;
    /** Lines whose newest durable version came from the persist
     *  buffer's committed prefix rather than NVM proper. */
    std::size_t bufferRecoveredLines = 0;
    /** Consistency audit (only meaningful if a store log was kept). */
    CheckResult consistency;
    bool audited = false;

    /** Human-readable one-paragraph summary. */
    std::string summary() const;
};

/**
 * Reconstruct and audit the durable state of @p sys at its current
 * instant (typically right after System::runUntilCrash).  When the
 * system recorded its execution (SystemConfig::recordStores), the
 * image is additionally checked to be a legal cut under @p model.
 */
RecoveryReport recover(System &sys, PersistModel model);

/**
 * Audit an externally captured durable image against a store log.
 * @p log may be null (no consistency check, counts only).
 */
RecoveryReport auditImage(
    const std::unordered_map<LineAddr, LineWords> &durable,
    const StoreLog *log, PersistModel model, unsigned numCores);

} // namespace tsoper

#endif // TSOPER_CORE_RECOVERY_HH
