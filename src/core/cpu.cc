#include "core/cpu.hh"

#include <algorithm>

#include "sim/debug.hh"
#include "sim/log.hh"
#include "sim/shard_fence.hh"

namespace tsoper
{

// ---------------------------------------------------------------------
// SyncCoordinator
// ---------------------------------------------------------------------

SyncCoordinator::SyncCoordinator(unsigned numCores, EventQueue &eq)
    : numCores_(numCores), eq_(eq)
{
}

bool
SyncCoordinator::acquire(unsigned lock, CoreId core,
                         std::function<void()> grant)
{
    Lock &l = locks_[lock];
    if (!l.held) {
        l.held = true;
        l.owner = core;
        return true;
    }
    l.waiters.emplace_back(core, std::move(grant));
    return false;
}

void
SyncCoordinator::release(unsigned lock, CoreId core)
{
    Lock &l = locks_[lock];
    tsoper_assert(l.held && l.owner == core,
                  "release of lock ", lock, " not held by core ", core);
    if (l.waiters.empty()) {
        l.held = false;
        l.owner = invalidCore;
        return;
    }
    auto [next, grant] = std::move(l.waiters.front());
    l.waiters.pop_front();
    l.owner = next;
    eq_.scheduleIn(0, std::move(grant));
}

void
SyncCoordinator::arrive(unsigned barrier, CoreId core,
                        std::function<void()> resume)
{
    (void)core;
    Barrier &b = barriers_[barrier];
    b.resumes.push_back(std::move(resume));
    if (++b.arrived < numCores_)
        return;
    auto resumes = std::move(b.resumes);
    b.arrived = 0;
    b.resumes.clear();
    for (auto &fn : resumes)
        eq_.scheduleIn(0, std::move(fn));
}

// ---------------------------------------------------------------------
// Cpu
// ---------------------------------------------------------------------

Cpu::Cpu(CoreId id, const SystemConfig &cfg, EventQueue &eq,
         CoherenceProtocol &proto, PersistEngine &engine,
         SyncCoordinator &sync, StoreLog *log, StatsRegistry &stats)
    : id_(id), cfg_(cfg), eq_(eq), proto_(proto), engine_(engine),
      sync_(sync), log_(log), sb_(cfg.storeBufferEntries, id),
      loads_(stats.counter("cpu.loads")),
      stores_(stats.counter("cpu.stores")),
      computeCycles_(stats.counter("cpu.compute_cycles")),
      sbFullStalls_(stats.counter("cpu.sb_full_stalls")),
      sbLineStalls_(stats.counter("cpu.sb_line_stalls")),
      lockAcquires_(stats.counter("cpu.lock_acquires")),
      barriers_(stats.counter("cpu.barriers"))
{
}

void
Cpu::start()
{
    tsoper_assert(trace_, "start() without a trace");
    scheduleStep(0);
}

void
Cpu::scheduleStep(Cycle delta)
{
    eq_.scheduleIn(delta, [this] { step(); });
}

void
Cpu::advance(Cycle delta)
{
    ++pc_;
    scheduleStep(delta);
}

void
Cpu::advanceAt(Cycle at)
{
    ++pc_;
    eq_.schedule(std::max(at, eq_.now()), [this] { step(); });
}

void
Cpu::step()
{
    // Retirement executes on this core's tile (node id == core id).
    shardFenceCheck(static_cast<unsigned>(id_));
    if (finished_)
        return;
    if (engine_.coreStalled(id_)) {
        engine_.addStallWaiter([this] { step(); });
        return;
    }
    if (pc_ >= trace_->size()) {
        checkFinished();
        return;
    }
    const TraceOp &op = (*trace_)[pc_];
    switch (op.type) {
      case OpType::Compute:
        computeCycles_.inc(op.arg);
        advance(std::max<Cycle>(1, op.arg));
        break;
      case OpType::Load:
        execLoad(op);
        break;
      case OpType::Store:
        execStore(op);
        break;
      case OpType::LockAcq:
        execLockAcq(op);
        break;
      case OpType::LockRel:
        execLockRel(op);
        break;
      case OpType::Barrier:
        execBarrier(op);
        break;
      case OpType::Marker:
        // §II-D marker stores travel the store stream: the marker takes
        // effect once every prior store has drained to the cache.
        whenSbEmpty([this] {
            engine_.onMarker(id_, eq_.now());
            advance(1);
        });
        break;
    }
}

void
Cpu::execLoad(const TraceOp &op)
{
    loads_.inc();
    if (sb_.forward(op.addr)) {
        // Store-to-load forwarding; observing our own store adds no
        // cross-thread dependence.
        advance(1);
        return;
    }
    if (sb_.containsLine(lineOf(op.addr))) {
        // A buffered store targets this line: wait for it to drain
        // (models MSHR merging; keeps one version per line in flight).
        sbLineStalls_.inc();
        waitingOnSb_ = true;
        tryDrainSb();
        return;
    }
    proto_.load(id_, op.addr, [this, op](Cycle at, StoreId value) {
        if (log_)
            log_->loadObserved(id_, op.addr, value);
        advanceAt(at);
    });
}

void
Cpu::execStore(const TraceOp &op)
{
    if (sb_.full()) {
        sbFullStalls_.inc();
        waitingOnSb_ = true;
        tryDrainSb();
        return;
    }
    stores_.inc();
    const StoreId sid = newStoreId();
    if (log_)
        log_->storeIssued(id_, sid);
    sb_.push(op.addr, sid, eq_.now());
    tryDrainSb();
    advance(1);
}

StoreId
Cpu::newStoreId()
{
    return makeStoreId(id_, nextStoreSeq_++);
}

void
Cpu::syncBoundary()
{
    engine_.onSync(id_, eq_.now());
    if (log_)
        log_->sfrBoundary(id_);
}

void
Cpu::whenSbEmpty(std::function<void()> then)
{
    if (sb_.empty() && !sbDraining_) {
        then();
        return;
    }
    tsoper_assert(!sbEmptyCb_, "nested whenSbEmpty");
    sbEmptyCb_ = std::move(then);
    tryDrainSb();
}

void
Cpu::issueDirectStore(Addr addr, std::function<void()> then)
{
    if (engine_.coreStalled(id_)) {
        engine_.addStallWaiter(
            [this, addr, then] { issueDirectStore(addr, then); });
        return;
    }
    if (!engine_.storeMayCommit(id_, lineOf(addr))) {
        engine_.addStoreWaiter(id_, lineOf(addr),
            [this, addr, then] { issueDirectStore(addr, then); });
        return;
    }
    stores_.inc();
    const StoreId sid = newStoreId();
    if (log_)
        log_->storeIssued(id_, sid);
    proto_.store(id_, addr, sid, [this, then](Cycle at) {
        eq_.schedule(std::max(at, eq_.now()), then);
    });
}

void
Cpu::execLockAcq(const TraceOp &op)
{
    // Locked RMW: drain the store buffer first (x86 semantics), then
    // check HW-RP backpressure, then queue on the lock.  The SFR
    // boundary closes the pre-acquire region; the RMW store belongs to
    // the critical section's region (flushed at the release boundary).
    whenSbEmpty([this, op] {
        syncBoundary();
        if (!engine_.syncMayProceed(id_)) {
            // SB stays empty while blocked (nothing issues meanwhile).
            engine_.addSyncWaiter(id_,
                                  [this, op] { execLockAcqGranted(op); });
            return;
        }
        execLockAcqGranted(op);
    });
}

void
Cpu::execLockAcqGranted(const TraceOp &op)
{
    auto rmw = [this, op] {
        lockAcquires_.inc();
        TSOPER_TRACE(Cpu, eq_.now(), "core " << id_ << " acquires lock "
                     << op.arg);
        engine_.onSyncEvent(id_, eq_.now(),
                            PersistEngine::SyncEvent::LockAcquire,
                            op.arg);
        proto_.load(id_, op.addr, [this, op](Cycle at, StoreId value) {
            if (log_)
                log_->loadObserved(id_, op.addr, value);
            (void)at;
            issueDirectStore(op.addr, [this] { advanceAt(eq_.now()); });
        });
    };
    if (sync_.acquire(op.arg, id_, rmw))
        rmw();
}

void
Cpu::execLockRel(const TraceOp &op)
{
    // The release store is part of the critical section's region: it
    // commits *before* the SFR boundary fires, so it persists with the
    // batch the next acquirer orders behind.
    whenSbEmpty([this, op] {
        if (!engine_.syncMayProceed(id_)) {
            engine_.addSyncWaiter(id_, [this, op] { execLockRel(op); });
            return;
        }
        issueDirectStore(op.addr, [this, op] {
            syncBoundary();
            engine_.onSyncEvent(id_, eq_.now(),
                                PersistEngine::SyncEvent::LockRelease,
                                op.arg);
            sync_.release(op.arg, id_);
            advanceAt(eq_.now());
        });
    });
}

void
Cpu::execBarrier(const TraceOp &op)
{
    // Like the release: the arrival-flag store precedes the boundary,
    // so the flag (and everything before it) persists with the
    // pre-barrier batch that post-barrier regions order behind.
    whenSbEmpty([this, op] {
        if (!engine_.syncMayProceed(id_)) {
            engine_.addSyncWaiter(id_, [this, op] { execBarrier(op); });
            return;
        }
        issueDirectStore(op.addr, [this, op] {
            barriers_.inc();
            TSOPER_TRACE(Cpu, eq_.now(), "core " << id_
                         << " arrives at barrier " << op.arg);
            syncBoundary();
            engine_.onSyncEvent(id_, eq_.now(),
                                PersistEngine::SyncEvent::BarrierArrive,
                                op.arg);
            sync_.arrive(op.arg, id_, [this, op] {
                engine_.onSyncEvent(
                    id_, eq_.now(),
                    PersistEngine::SyncEvent::BarrierResume, op.arg);
                proto_.load(id_, op.addr,
                            [this, op](Cycle at, StoreId value) {
                    if (log_)
                        log_->loadObserved(id_, op.addr, value);
                    advanceAt(at);
                });
            });
        });
    });
}

void
Cpu::tryDrainSb()
{
    if (sbDraining_)
        return;
    if (sb_.empty()) {
        drainProgress();
        return;
    }
    if (engine_.coreStalled(id_)) {
        engine_.addStallWaiter([this] { tryDrainSb(); });
        return;
    }
    const StoreBuffer::Entry &head = sb_.front();
    const LineAddr line = lineOf(head.addr);
    if (!engine_.storeMayCommit(id_, line)) {
        engine_.addStoreWaiter(id_, line, [this] { tryDrainSb(); });
        return;
    }
    sbDraining_ = true;
    proto_.store(id_, head.addr, head.store, [this](Cycle at) {
        eq_.schedule(std::max(at, eq_.now()), [this] {
            sb_.pop(eq_.now());
            sbDraining_ = false;
            drainProgress();
            tryDrainSb();
        });
    });
}

void
Cpu::drainProgress()
{
    if (waitingOnSb_) {
        waitingOnSb_ = false;
        scheduleStep(0);
    }
    if (sbEmptyCb_ && sb_.empty() && !sbDraining_) {
        auto cb = std::move(sbEmptyCb_);
        sbEmptyCb_ = nullptr;
        cb();
    }
    checkFinished();
}

void
Cpu::checkFinished()
{
    if (finished_ || pc_ < trace_->size() || !sb_.empty() || sbDraining_)
        return;
    finished_ = true;
    finishedAt_ = eq_.now();
    if (finishedCb_)
        finishedCb_();
}

} // namespace tsoper
