#include "core/recovery.hh"

#include <sstream>

#include "core/system.hh"

namespace tsoper
{

std::string
RecoveryReport::summary() const
{
    std::ostringstream os;
    os << "recovered " << durableWords << " durable words across "
       << durableLines << " cachelines";
    if (bufferRecoveredLines > 0) {
        os << " (" << bufferRecoveredLines
           << " lines replayed from the persist buffer)";
    }
    if (audited) {
        os << "; consistency audit: "
           << (consistency.ok ? "PASS" : "FAIL — " + consistency.detail)
           << " (" << consistency.requiredStores
           << " stores in the required cut)";
    } else {
        os << "; no execution log — consistency not audited";
    }
    return os.str();
}

RecoveryReport
auditImage(const std::unordered_map<LineAddr, LineWords> &durable,
           const StoreLog *log, PersistModel model, unsigned numCores)
{
    RecoveryReport report;
    report.durableLines = durable.size();
    for (const auto &[line, words] : durable) {
        (void)line;
        for (StoreId id : words)
            report.durableWords += (id != invalidStore) ? 1 : 0;
    }
    if (log && log->enabled()) {
        report.audited = true;
        report.consistency =
            checkDurableState(durable, *log, model, numCores);
    }
    return report;
}

RecoveryReport
recover(System &sys, PersistModel model)
{
    const auto durable = sys.durableImage();
    RecoveryReport report =
        auditImage(durable, &sys.storeLog(), model,
                   sys.config().numCores);
    // Lines whose durable value is not yet in NVM proper came from the
    // persist-buffer overlay — the battery-backed replay a real
    // recovery would perform.
    const auto &nvmImage = sys.nvm().image();
    for (const auto &[line, words] : sys.engine().crashOverlay()) {
        (void)words;
        if (!nvmImage.count(line))
            ++report.bufferRecoveredLines;
    }
    return report;
}

} // namespace tsoper
