#include "core/crash_checker.hh"

#include <deque>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "sim/log.hh"

namespace tsoper
{

namespace
{

std::string
describeStore(const StoreLog::Record &rec)
{
    std::ostringstream os;
    os << "store core" << storeCore(rec.id) << "#" << storeSeq(rec.id)
       << " addr=0x" << std::hex << rec.addr << std::dec << " (word chain "
       << rec.wordChainIndex << ", sfr " << rec.sfrIndex << ")";
    return os.str();
}

} // namespace

CheckResult
checkDurableState(const std::unordered_map<LineAddr, LineWords> &durable,
                  const StoreLog &log, PersistModel model,
                  unsigned numCores)
{
    CheckResult result;
    auto fail = [&result](const std::string &msg) {
        result.ok = false;
        if (result.detail.empty())
            result.detail = msg;
    };

    // Precompute, per core, the first sequence number of each SFR (for
    // the relaxed program-order rule).
    std::vector<std::vector<std::uint64_t>> sfrFirstSeq(numCores);
    if (model == PersistModel::RelaxedSfr) {
        for (unsigned c = 0; c < numCores; ++c) {
            std::uint32_t lastSfr = 0;
            sfrFirstSeq[c].push_back(0);
            const std::uint64_t n = log.storesOf(static_cast<CoreId>(c));
            for (std::uint64_t q = 0; q < n; ++q) {
                const StoreLog::Record *rec =
                    log.find(makeStoreId(static_cast<CoreId>(c), q));
                tsoper_assert(rec);
                while (lastSfr < rec->sfrIndex) {
                    sfrFirstSeq[c].push_back(q);
                    ++lastSfr;
                }
            }
        }
    }

    std::unordered_set<StoreId> required;
    std::deque<StoreId> work;
    std::vector<std::uint64_t> corePrefix(numCores, 0);
    std::unordered_map<Addr, std::uint32_t> chainPrefix;

    auto addStore = [&](StoreId id) {
        if (required.insert(id).second)
            work.push_back(id);
    };

    auto expandCorePrefix = [&](CoreId core, std::uint64_t count) {
        auto &prefix = corePrefix[static_cast<unsigned>(core)];
        while (prefix < count)
            addStore(makeStoreId(core, prefix++));
    };

    auto expandChain = [&](Addr addr, std::uint32_t upToIndex) {
        const auto &chain = log.wordChain(addr);
        auto &prefix = chainPrefix[addr >> wordShift];
        while (prefix < upToIndex && prefix < chain.size())
            addStore(chain[prefix++]);
    };

    // Seed: every durable word value.  Also validate that each durable
    // value is a logged store to that very word (functional sanity).
    for (const auto &[line, words] : durable) {
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            const StoreId id = words[w];
            if (id == invalidStore)
                continue;
            ++result.durableWords;
            const StoreLog::Record *rec = log.find(id);
            if (!rec) {
                std::ostringstream os;
                os << "durable word 0x" << std::hex
                   << (addrOfLine(line) + w * wordBytes)
                   << " holds unknown store id 0x" << id << std::dec;
                fail(os.str());
                continue;
            }
            if (lineOf(rec->addr) != line || wordOf(rec->addr) != w) {
                std::ostringstream os;
                os << describeStore(*rec) << " appears durable at wrong "
                   << "word 0x" << std::hex
                   << (addrOfLine(line) + w * wordBytes) << std::dec;
                fail(os.str());
                continue;
            }
            addStore(id);
        }
    }

    // Closure under the persistency model's must-persist-before edges.
    while (!work.empty()) {
        const StoreId id = work.front();
        work.pop_front();
        const StoreLog::Record *rec = log.find(id);
        if (!rec) {
            std::ostringstream os;
            os << "closure reached unlogged store id 0x" << std::hex << id
               << std::dec;
            fail(os.str());
            continue;
        }
        const CoreId core = storeCore(id);
        if (model == PersistModel::StrictTso) {
            expandCorePrefix(core, storeSeq(id));
        } else {
            const auto &firsts = sfrFirstSeq[static_cast<unsigned>(core)];
            const std::uint64_t first =
                rec->sfrIndex < firsts.size() ? firsts[rec->sfrIndex]
                                              : firsts.back();
            expandCorePrefix(core, first);
        }
        expandChain(rec->addr, rec->wordChainIndex);
        for (StoreId rf : rec->rfPreds)
            addStore(rf);
    }
    result.requiredStores = required.size();

    // Every required store must be durably reflected: the durable value
    // of its word must be it or a same-word successor.
    for (StoreId id : required) {
        const StoreLog::Record *rec = log.find(id);
        if (!rec)
            continue; // Already reported above.
        const LineAddr line = lineOf(rec->addr);
        const unsigned w = wordOf(rec->addr);
        auto dit = durable.find(line);
        const StoreId dval =
            dit == durable.end() ? invalidStore : dit->second[w];
        if (dval == invalidStore) {
            fail("required " + describeStore(*rec) +
                 " has no durable value at its word");
            continue;
        }
        const StoreLog::Record *drec = log.find(dval);
        if (!drec || drec->wordChainIndex < rec->wordChainIndex) {
            fail("required " + describeStore(*rec) +
                 " is newer than the durable value of its word" +
                 (drec ? " (" + describeStore(*drec) + ")" : ""));
        }
    }
    return result;
}

} // namespace tsoper
