#include "core/engine.hh"

#include "sim/log.hh"

namespace tsoper
{

void
PersistEngine::addStoreWaiter(CoreId core, LineAddr line,
                              std::function<void()> retry)
{
    (void)core; (void)line; (void)retry;
    tsoper_panic("addStoreWaiter on an engine that never blocks stores");
}

void
PersistEngine::addStallWaiter(std::function<void()> resume)
{
    (void)resume;
    tsoper_panic("addStallWaiter on an engine that never stalls cores");
}

void
PersistEngine::addSyncWaiter(CoreId core, std::function<void()> retry)
{
    (void)core; (void)retry;
    tsoper_panic("addSyncWaiter on an engine that never blocks syncs");
}

} // namespace tsoper
