#include "net/socket.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace tsoper::net
{

namespace
{

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void
setNoDelay(int fd)
{
    // Lease/heartbeat frames are small and latency-sensitive; a
    // failed setsockopt only costs latency, so best-effort.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

void
Fd::reset()
{
    if (fd_ >= 0) {
        int rc;
        do {
            rc = ::close(fd_);
        } while (rc < 0 && errno == EINTR);
        fd_ = -1;
    }
}

Fd
listenTcp(std::uint16_t port, std::uint16_t *boundPort, std::string *err)
{
    const auto fail = [&](const std::string &what) {
        if (err)
            *err = what + ": " + std::strerror(errno);
        return Fd();
    };

    // CLOEXEC everywhere: the campaign fabric fork+execs workers and
    // simulator subprocesses, and a listening socket leaking into a
    // child keeps the port alive after the coordinator closes it — a
    // reconnecting worker would then connect to a backlog nobody
    // accepts and hang forever.
    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        return fail("socket");
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind port " + std::to_string(port));
    if (::listen(fd.get(), 64) != 0)
        return fail("listen");
    if (!setNonBlocking(fd.get()))
        return fail("fcntl(O_NONBLOCK)");

    socklen_t len = sizeof(addr);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("getsockname");
    if (boundPort)
        *boundPort = ntohs(addr.sin_port);
    return fd;
}

Fd
acceptTcp(int listenFd)
{
    for (;;) {
        const int fd = ::accept4(listenFd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd >= 0) {
            Fd out(fd);
            setNoDelay(fd);
            return out;
        }
        if (errno == EINTR)
            continue;
        return Fd(); // EAGAIN or a transient accept error: try later
    }
}

Fd
connectTcp(const std::string &host, std::uint16_t port, int timeoutMs,
           std::string *err)
{
    const auto fail = [&](const std::string &what) {
        if (err)
            *err = "connect " + host + ":" + std::to_string(port) +
                   ": " + what;
        return Fd();
    };

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        addrinfo hints{};
        hints.ai_family = AF_INET;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo *res = nullptr;
        if (::getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 ||
            !res)
            return fail("cannot resolve host");
        addr.sin_addr =
            reinterpret_cast<sockaddr_in *>(res->ai_addr)->sin_addr;
        ::freeaddrinfo(res);
    }

    Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        return fail(std::strerror(errno));
    if (!setNonBlocking(fd.get()))
        return fail("fcntl(O_NONBLOCK)");

    int rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS && errno != EINTR)
        return fail(std::strerror(errno));
    if (rc != 0) {
        struct pollfd pfd{fd.get(), POLLOUT, 0};
        do {
            rc = ::poll(&pfd, 1, timeoutMs);
        } while (rc < 0 && errno == EINTR);
        if (rc == 0)
            return fail("timed out after " + std::to_string(timeoutMs) +
                        " ms");
        if (rc < 0)
            return fail(std::strerror(errno));
        int soErr = 0;
        socklen_t len = sizeof(soErr);
        if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soErr,
                         &len) != 0 ||
            soErr != 0)
            return fail(std::strerror(soErr ? soErr : errno));
    }
    setNoDelay(fd.get());
    return fd;
}

bool
makeWakePipe(Fd *readFd, Fd *writeFd, std::string *err)
{
    int fds[2];
    if (::pipe2(fds, O_CLOEXEC) != 0) {
        if (err)
            *err = std::string("pipe: ") + std::strerror(errno);
        return false;
    }
    *readFd = Fd(fds[0]);
    *writeFd = Fd(fds[1]);
    if (!setNonBlocking(fds[0]) || !setNonBlocking(fds[1])) {
        if (err)
            *err = std::string("fcntl: ") + std::strerror(errno);
        return false;
    }
    return true;
}

void
wake(int writeFd)
{
    const char byte = 0;
    ssize_t rc;
    do {
        rc = ::write(writeFd, &byte, 1);
    } while (rc < 0 && errno == EINTR);
}

std::int64_t
monotonicMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
drainWake(int readFd)
{
    char buf[64];
    for (;;) {
        const ssize_t rc = ::read(readFd, buf, sizeof(buf));
        if (rc > 0)
            continue;
        if (rc < 0 && errno == EINTR)
            continue;
        break;
    }
}

} // namespace tsoper::net
