#include "net/peer.hh"

#include <cerrno>

#include <sys/socket.h>
#include <unistd.h>

namespace tsoper::net
{

void
Peer::sendFrame(const std::string &payload, std::int64_t nowMs)
{
    if (poisoned_)
        return; // the connection is already condemned
    const std::string frame = encodeFrame(payload);
    switch (injector_.decide()) {
      case FaultInjector::Action::Pass:
        sendBuf_ += frame;
        break;
      case FaultInjector::Action::Drop:
        break;
      case FaultInjector::Action::Dup:
        sendBuf_ += frame;
        sendBuf_ += frame;
        break;
      case FaultInjector::Action::Truncate:
        sendBuf_.append(frame, 0, injector_.truncatedSize(frame.size()));
        poisoned_ = true;
        break;
      case FaultInjector::Action::Delay:
        sendBuf_ += frame;
        stallUntilMs_ = nowMs + injector_.delayMs();
        break;
    }
}

bool
Peer::wantWrite(std::int64_t nowMs) const
{
    return sendPos_ < sendBuf_.size() && nowMs >= stallUntilMs_;
}

bool
Peer::pumpSend(std::int64_t nowMs)
{
    if (nowMs < stallUntilMs_)
        return true;
    while (sendPos_ < sendBuf_.size()) {
        const ssize_t wrote =
            ::send(fd_.get(), sendBuf_.data() + sendPos_,
                   sendBuf_.size() - sendPos_, MSG_NOSIGNAL);
        if (wrote > 0) {
            sendPos_ += static_cast<std::size_t>(wrote);
            continue;
        }
        if (wrote < 0 && errno == EINTR)
            continue;
        if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true; // socket full; poll for POLLOUT
        return false;    // EPIPE/ECONNRESET/...: peer is gone
    }
    sendBuf_.clear();
    sendPos_ = 0;
    // A truncate fault's partial frame has now hit the wire; kill the
    // connection so the receiver sees a torn stream, not a desync.
    return !poisoned_;
}

bool
Peer::pumpRecv()
{
    char buf[16384];
    for (;;) {
        const ssize_t got = ::recv(fd_.get(), buf, sizeof(buf), 0);
        if (got > 0) {
            decoder_.feed(buf, static_cast<std::size_t>(got));
            continue;
        }
        if (got == 0)
            return false; // orderly EOF
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;
        return false;
    }
}

FrameDecoder::Status
Peer::nextFrame(std::string *payload)
{
    return decoder_.next(payload);
}

} // namespace tsoper::net
