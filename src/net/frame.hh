/**
 * @file
 * Length-prefixed message framing for the campaign wire protocol.
 *
 * A frame is a 4-byte big-endian payload length followed by that many
 * payload bytes (JSON text at the protocol layer, but the framing is
 * byte-agnostic).  The encoder is a pure function; the decoder is a
 * streaming state machine fed arbitrary byte chunks — a TCP read can
 * deliver half a length prefix, three frames and a tail all at once —
 * that yields complete payloads in order.
 *
 * The decoder is the trust boundary of the distributed campaign
 * fabric: a confused or malicious peer can send anything.  It
 * therefore fails *closed*: a length above the configured cap or a
 * zero-length frame flips the decoder into a sticky Error state with
 * a diagnostic, and the owner is expected to drop the connection.  It
 * never throws and never reads past the bytes it was fed (fuzzed in
 * test_net_frame.cc).
 */

#ifndef TSOPER_NET_FRAME_HH
#define TSOPER_NET_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace tsoper::net
{

/** Default payload cap: generous for campaign results (full stats
 *  registries serialize well under a MiB), small enough that a
 *  garbage length prefix cannot balloon the receive buffer. */
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

/** Serialize @p payload as one frame (prefix + bytes). */
std::string encodeFrame(const std::string &payload);

class FrameDecoder
{
  public:
    enum class Status
    {
        Frame,    ///< A complete payload was produced.
        NeedMore, ///< No complete frame buffered yet.
        Error,    ///< Protocol violation; sticky, drop the peer.
    };

    explicit FrameDecoder(std::size_t maxPayload = kMaxFramePayload)
        : maxPayload_(maxPayload)
    {}

    /** Append @p len raw bytes from the wire. */
    void feed(const char *data, std::size_t len);

    /**
     * Extract the next complete payload into @p payload.  Call in a
     * loop after feed() until it stops returning Frame.  Once Error
     * is returned every further call returns Error.
     */
    Status next(std::string *payload);

    /** Diagnostic for the Error state. */
    const std::string &error() const { return error_; }

    /** True once a protocol violation was seen. */
    bool failed() const { return !error_.empty(); }

    /** Bytes buffered but not yet consumed (a non-zero value at
     *  connection EOF means the final frame arrived torn). */
    std::size_t pendingBytes() const { return buf_.size() - pos_; }

  private:
    std::size_t maxPayload_;
    std::string buf_;
    std::size_t pos_ = 0; ///< Consumed prefix of buf_.
    std::string error_;
};

} // namespace tsoper::net

#endif // TSOPER_NET_FRAME_HH
