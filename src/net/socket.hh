/**
 * @file
 * Thin POSIX TCP helpers for the campaign fabric: an owning fd
 * wrapper plus nonblocking listen/accept/connect.  Everything here is
 * EINTR-safe and never throws; failures come back as -1/false with a
 * strerror-derived message so callers can classify and retry.
 *
 * The fabric deliberately stays on plain poll(2) rather than epoll: a
 * coordinator talks to tens of workers, not tens of thousands of
 * clients, and poll keeps the code portable and obviously correct.
 */

#ifndef TSOPER_NET_SOCKET_HH
#define TSOPER_NET_SOCKET_HH

#include <cstdint>
#include <string>
#include <utility>

namespace tsoper::net
{

/** Owning file descriptor (move-only). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;
    Fd(Fd &&o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
    Fd &
    operator=(Fd &&o) noexcept
    {
        if (this != &o) {
            reset();
            fd_ = std::exchange(o.fd_, -1);
        }
        return *this;
    }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    int release() { return std::exchange(fd_, -1); }
    void reset();

  private:
    int fd_ = -1;
};

/**
 * Bind and listen on TCP @p port (0 = kernel-assigned ephemeral
 * port), SO_REUSEADDR, nonblocking.  On success stores the actual
 * port in @p boundPort.  Returns an invalid Fd with a message in
 * @p err on failure.
 */
Fd listenTcp(std::uint16_t port, std::uint16_t *boundPort,
             std::string *err);

/** Accept one pending connection from nonblocking @p listenFd; the
 *  accepted socket is nonblocking with TCP_NODELAY.  Returns an
 *  invalid Fd when nothing is pending (not an error). */
Fd acceptTcp(int listenFd);

/**
 * Connect to @p host : @p port with a @p timeoutMs budget (numeric
 * IPv4 or a resolvable name).  The returned socket is nonblocking
 * with TCP_NODELAY.  Returns an invalid Fd with a message in @p err
 * on failure or timeout.
 */
Fd connectTcp(const std::string &host, std::uint16_t port,
              int timeoutMs, std::string *err);

/** Create a nonblocking self-wake pipe (read end in @p readFd, write
 *  end in @p writeFd); false with a message in @p err on failure. */
bool makeWakePipe(Fd *readFd, Fd *writeFd, std::string *err);

/** Write one byte to a wake pipe (best-effort, never blocks). */
void wake(int writeFd);

/** Monotonic milliseconds (steady_clock) — the fabric's one clock
 *  for heartbeats, lease ages and fault-delay deadlines. */
std::int64_t monotonicMs();

/** Drain a wake pipe's read end (best-effort, never blocks). */
void drainWake(int readFd);

} // namespace tsoper::net

#endif // TSOPER_NET_SOCKET_HH
