#include "net/frame.hh"

namespace tsoper::net
{

std::string
encodeFrame(const std::string &payload)
{
    const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
    std::string out;
    out.reserve(4 + payload.size());
    out.push_back(static_cast<char>((n >> 24) & 0xff));
    out.push_back(static_cast<char>((n >> 16) & 0xff));
    out.push_back(static_cast<char>((n >> 8) & 0xff));
    out.push_back(static_cast<char>(n & 0xff));
    out += payload;
    return out;
}

void
FrameDecoder::feed(const char *data, std::size_t len)
{
    if (failed())
        return;
    // Compact lazily: only when the consumed prefix dominates, so a
    // byte-at-a-time feed pattern stays O(n) amortized.
    if (pos_ > 4096 && pos_ > buf_.size() / 2) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    buf_.append(data, len);
}

FrameDecoder::Status
FrameDecoder::next(std::string *payload)
{
    if (failed())
        return Status::Error;
    const std::size_t avail = buf_.size() - pos_;
    if (avail < 4)
        return Status::NeedMore;
    const unsigned char *p =
        reinterpret_cast<const unsigned char *>(buf_.data() + pos_);
    const std::uint32_t n = (static_cast<std::uint32_t>(p[0]) << 24) |
                            (static_cast<std::uint32_t>(p[1]) << 16) |
                            (static_cast<std::uint32_t>(p[2]) << 8) |
                            static_cast<std::uint32_t>(p[3]);
    if (n == 0) {
        error_ = "zero-length frame";
        return Status::Error;
    }
    if (n > maxPayload_) {
        error_ = "frame length " + std::to_string(n) +
                 " exceeds cap " + std::to_string(maxPayload_);
        return Status::Error;
    }
    if (avail < 4 + static_cast<std::size_t>(n))
        return Status::NeedMore;
    payload->assign(buf_, pos_ + 4, n);
    pos_ += 4 + n;
    if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    }
    return Status::Frame;
}

} // namespace tsoper::net
