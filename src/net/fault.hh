/**
 * @file
 * Deterministic wire-fault injection for the campaign fabric.
 *
 * Every failover path in the coordinator/worker protocol — lease
 * expiry after a lost result, reconnect after a torn frame, duplicate
 * suppression — must be *exercised* in tests, not hoped-for.  A
 * FaultInjector sits on a peer's send path and corrupts outgoing
 * frames according to a seeded policy, so the same seed always faults
 * the same frames:
 *
 *   drop      the frame is silently discarded
 *   dup       the frame is sent twice back-to-back
 *   truncate  a prefix of the frame is sent, then the connection is
 *             closed (a torn frame must poison the stream, or the
 *             receiver would misparse everything after it)
 *   delay     the connection's send queue stalls for a few hundred ms
 *             (late heartbeats, lease-expiry races)
 *
 * The spec string is `<kind>:<seed>[:<rate>]` (rate defaults to
 * 0.25).  With guaranteeFirst set (the default, but only on a run's
 * *first* connection — see Coordinator), the first eligible frame is
 * always faulted, so a test that enables injection is guaranteed at
 * least one application — the negative control cannot silently pass
 * because the dice never came up.  Reconnections must NOT inherit the
 * guarantee: a fault that kills the connection (truncate) would then
 * replay on every reconnect and livelock the fabric instead of
 * exercising its recovery.
 */

#ifndef TSOPER_NET_FAULT_HH
#define TSOPER_NET_FAULT_HH

#include <cstdint>
#include <string>

#include "sim/rng.hh"

namespace tsoper::net
{

struct WireFault
{
    enum class Kind
    {
        None,
        Drop,
        Dup,
        Truncate,
        Delay,
    };

    Kind kind = Kind::None;
    std::uint64_t seed = 0;
    double rate = 0.25; ///< Per-frame fault probability after the 1st.

    /** Always fault the first eligible frame (see file comment).
     *  Cleared for reconnections by the fabric. */
    bool guaranteeFirst = true;

    bool enabled() const { return kind != Kind::None; }
};

/** Parse `drop|dup|truncate|delay:<seed>[:<rate>]` into @p out.
 *  Returns false with a message in @p err on a malformed spec. */
bool parseWireFault(const std::string &spec, WireFault *out,
                    std::string *err);

/** Human-readable kind name ("drop", ...; "none" when disabled). */
const char *toString(WireFault::Kind kind);

/** Per-connection injection state (see file comment). */
class FaultInjector
{
  public:
    explicit FaultInjector(const WireFault &fault = {})
        : fault_(fault), rng_(fault.seed)
    {}

    enum class Action
    {
        Pass,     ///< Send the frame unmodified.
        Drop,
        Dup,
        Truncate,
        Delay,
    };

    /** Decide the fate of the next outgoing frame. */
    Action decide();

    /** Stall duration for a Delay decision, milliseconds. */
    std::int64_t delayMs();

    /** How many bytes of an @p size -byte frame survive truncation
     *  (at least 1, strictly less than @p size when size > 1). */
    std::size_t truncatedSize(std::size_t size);

    /** Frames faulted so far on this connection. */
    std::uint64_t applied() const { return applied_; }

    bool enabled() const { return fault_.enabled(); }

  private:
    WireFault fault_;
    Rng rng_;
    std::uint64_t frames_ = 0;
    std::uint64_t applied_ = 0;
};

} // namespace tsoper::net

#endif // TSOPER_NET_FAULT_HH
