/**
 * @file
 * One framed-message TCP peer: nonblocking socket + send/receive
 * buffers + the streaming frame decoder + optional wire-fault
 * injection on the send path.
 *
 * Usage pattern (both coordinator and worker follow it):
 *
 *   peer.sendFrame(json.dump(), now);       // queue, never blocks
 *   poll(fd, POLLIN | (peer.wantWrite(now) ? POLLOUT : 0));
 *   if (!peer.pumpRecv()) dropPeer();       // EOF / error
 *   while (peer.nextFrame(&payload) == Frame) handle(payload);
 *   if (peer.failed()) dropPeer();          // framing violation
 *   if (!peer.pumpSend(now)) dropPeer();
 *
 * A Peer owns its fd and is move-only.  It never throws; every
 * failure mode collapses to "drop the connection", which the
 * protocol layer above treats as worker/coordinator death and
 * recovers from (lease reassignment, reconnect with backoff).
 */

#ifndef TSOPER_NET_PEER_HH
#define TSOPER_NET_PEER_HH

#include <cstdint>
#include <string>

#include "net/fault.hh"
#include "net/frame.hh"
#include "net/socket.hh"

namespace tsoper::net
{

class Peer
{
  public:
    Peer() = default;
    explicit Peer(Fd fd, const WireFault &fault = {},
                  std::size_t maxPayload = kMaxFramePayload)
        : fd_(std::move(fd)), decoder_(maxPayload), injector_(fault)
    {}

    bool valid() const { return fd_.valid(); }
    int fd() const { return fd_.get(); }

    /**
     * Queue @p payload as one frame.  With fault injection enabled
     * the frame may be dropped, duplicated or truncated here, or the
     * whole send queue stalled until a deadline — see net/fault.hh.
     * A truncating fault poisons the connection: once the mangled
     * bytes flush, pumpSend reports failure so the owner drops it.
     */
    void sendFrame(const std::string &payload, std::int64_t nowMs);

    /** True when buffered bytes are ready to write at @p nowMs (a
     *  delay fault can hold them back). */
    bool wantWrite(std::int64_t nowMs) const;

    /** Flush as much of the send buffer as the socket accepts.
     *  Returns false on a fatal socket error or once a poisoning
     *  truncate fault has fully flushed. */
    bool pumpSend(std::int64_t nowMs);

    /** Read whatever the socket has into the decoder.  Returns false
     *  on EOF or a fatal socket error. */
    bool pumpRecv();

    /** Next complete frame payload (see FrameDecoder::next). */
    FrameDecoder::Status nextFrame(std::string *payload);

    /** The peer violated framing (oversized/zero-length frame). */
    bool failed() const { return decoder_.failed(); }
    const std::string &error() const { return decoder_.error(); }

    /** Frames faulted on this connection's send path. */
    std::uint64_t faultsApplied() const { return injector_.applied(); }

    /** Bytes queued but not yet written. */
    std::size_t sendBacklog() const { return sendBuf_.size() - sendPos_; }

    void close() { fd_.reset(); }

  private:
    Fd fd_;
    FrameDecoder decoder_;
    FaultInjector injector_;
    std::string sendBuf_;
    std::size_t sendPos_ = 0;
    std::int64_t stallUntilMs_ = 0; ///< Delay-fault send stall.
    bool poisoned_ = false;         ///< Truncate fault pending close.
};

} // namespace tsoper::net

#endif // TSOPER_NET_PEER_HH
