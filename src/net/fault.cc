#include "net/fault.hh"

#include <cstdlib>

namespace tsoper::net
{

const char *
toString(WireFault::Kind kind)
{
    switch (kind) {
      case WireFault::Kind::None:     return "none";
      case WireFault::Kind::Drop:     return "drop";
      case WireFault::Kind::Dup:      return "dup";
      case WireFault::Kind::Truncate: return "truncate";
      case WireFault::Kind::Delay:    return "delay";
    }
    return "none";
}

bool
parseWireFault(const std::string &spec, WireFault *out, std::string *err)
{
    const auto fail = [&](const std::string &why) {
        if (err)
            *err = "bad wire-fault spec '" + spec + "': " + why +
                   " (expected drop|dup|truncate|delay:<seed>[:<rate>])";
        return false;
    };

    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos)
        return fail("missing ':<seed>'");
    const std::string kind = spec.substr(0, colon);
    WireFault fault;
    if (kind == "drop")
        fault.kind = WireFault::Kind::Drop;
    else if (kind == "dup")
        fault.kind = WireFault::Kind::Dup;
    else if (kind == "truncate")
        fault.kind = WireFault::Kind::Truncate;
    else if (kind == "delay")
        fault.kind = WireFault::Kind::Delay;
    else
        return fail("unknown kind '" + kind + "'");

    const std::size_t colon2 = spec.find(':', colon + 1);
    const std::string seedStr =
        spec.substr(colon + 1, colon2 == std::string::npos
                                   ? std::string::npos
                                   : colon2 - colon - 1);
    if (seedStr.empty())
        return fail("empty seed");
    for (char c : seedStr)
        if (c < '0' || c > '9')
            return fail("seed must be a non-negative integer");
    fault.seed = std::strtoull(seedStr.c_str(), nullptr, 10);

    if (colon2 != std::string::npos) {
        const std::string rateStr = spec.substr(colon2 + 1);
        char *end = nullptr;
        const double rate = std::strtod(rateStr.c_str(), &end);
        if (rateStr.empty() || *end != '\0' || rate < 0.0 || rate > 1.0)
            return fail("rate must be a number in [0, 1]");
        fault.rate = rate;
    }
    *out = fault;
    return true;
}

FaultInjector::Action
FaultInjector::decide()
{
    if (!fault_.enabled())
        return Action::Pass;
    const bool first = frames_ == 0 && fault_.guaranteeFirst;
    ++frames_;
    // With guaranteeFirst the first frame always faults (guaranteed
    // trigger, see file comment); otherwise it is a seeded Bernoulli
    // draw.
    if (!first && !rng_.chance(fault_.rate))
        return Action::Pass;
    ++applied_;
    switch (fault_.kind) {
      case WireFault::Kind::Drop:     return Action::Drop;
      case WireFault::Kind::Dup:      return Action::Dup;
      case WireFault::Kind::Truncate: return Action::Truncate;
      case WireFault::Kind::Delay:    return Action::Delay;
      case WireFault::Kind::None:     break;
    }
    return Action::Pass;
}

std::int64_t
FaultInjector::delayMs()
{
    return 200 + static_cast<std::int64_t>(rng_.below(600));
}

std::size_t
FaultInjector::truncatedSize(std::size_t size)
{
    if (size <= 1)
        return 1;
    return 1 + static_cast<std::size_t>(
                   rng_.below(static_cast<std::uint64_t>(size - 1)));
}

} // namespace tsoper::net
