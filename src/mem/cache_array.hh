/**
 * @file
 * Generic set-associative tag array with LRU replacement and pinning.
 *
 * The array tracks only presence/recency of cachelines; protocol and
 * persistency metadata (state, sharing-list pointers, AG membership,
 * version contents) are kept by the owning controller, keyed by line
 * address.  Pinned lines are never chosen as victims — used for lines
 * whose atomic group is mid-persist.
 */

#ifndef TSOPER_MEM_CACHE_ARRAY_HH
#define TSOPER_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace tsoper
{

class CacheArray
{
  public:
    /** Outcome of an insert() call. */
    struct Insert
    {
        bool hit = false;        ///< Line was already present.
        bool evicted = false;    ///< A victim was displaced.
        bool noSpace = false;    ///< Set full of pinned lines; caller
                                 ///< must stall and retry.
        LineAddr victim = 0;     ///< Valid iff evicted.
    };

    /**
     * @param sets      number of sets (power of two)
     * @param ways      associativity
     * @param setShift  line-address bits to skip when indexing sets —
     *                  used by banked structures whose low line bits
     *                  select the bank.
     */
    CacheArray(unsigned sets, unsigned ways, unsigned setShift = 0);

    bool contains(LineAddr line) const;

    /** Refresh recency of @p line (must be present). */
    void touch(LineAddr line);

    /**
     * Ensure @p line is resident, evicting the LRU unpinned line of its
     * set if needed.  Recency of @p line is refreshed.
     */
    Insert insert(LineAddr line);

    /** Remove @p line if present. @return true if it was present. */
    bool erase(LineAddr line);

    /** Pin/unpin @p line (must be present). */
    void setPinned(LineAddr line, bool pinned);

    bool isPinned(LineAddr line) const;

    /** Number of resident lines. */
    std::size_t size() const { return population_; }

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

    /** Invoke @p fn for every resident line. */
    void forEach(const std::function<void(LineAddr)> &fn) const;

  private:
    struct Entry
    {
        LineAddr line = 0;
        bool valid = false;
        bool pinned = false;
        std::uint64_t lastUse = 0;
    };

    unsigned setOf(LineAddr line) const
    {
        return static_cast<unsigned>(line >> setShift_) & (sets_ - 1);
    }

    Entry *find(LineAddr line);
    const Entry *find(LineAddr line) const;

    unsigned sets_;
    unsigned ways_;
    unsigned setShift_;
    std::vector<Entry> entries_; ///< sets_ x ways_, row-major.
    std::uint64_t useClock_ = 0;
    std::size_t population_ = 0;
};

} // namespace tsoper

#endif // TSOPER_MEM_CACHE_ARRAY_HH
