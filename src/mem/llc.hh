/**
 * @file
 * Shared, banked last-level cache.
 *
 * The LLC is a functional backing store between the private caches and
 * NVM: writebacks install versions here; private-cache misses with no
 * remote valid copy are served from here; capacity evictions of dirty
 * lines write to NVM.  For BSP it additionally models *LLC exclusion*
 * (Definition 2 of the paper): a line with a persist pending to NVM
 * cannot accept a newer version until that persist completes.
 */

#ifndef TSOPER_MEM_LLC_HH
#define TSOPER_MEM_LLC_HH

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/cache_array.hh"
#include "mem/nvm.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace tsoper
{

class ShardedEventQueue;

class Llc
{
  public:
    Llc(const SystemConfig &cfg, Nvm &nvm, StatsRegistry &stats);

    unsigned
    bankOf(LineAddr line) const
    {
        return static_cast<unsigned>(line) & (banks_ - 1);
    }

    /**
     * Timing of one bank access (tag + data) starting no earlier than
     * @p when; models per-bank occupancy. @return completion cycle.
     * With a data plane attached, bank pipe state belongs to the pipe
     * shards and calling this from another shard's events panics.
     */
    Cycle access(LineAddr line, Cycle when);

    /**
     * Asynchronous bank access: @p done receives the completion cycle.
     * Detached (the default), this is access() computed inline —
     * @p done runs synchronously with the identical cycle.  With a
     * data plane attached, the request travels to the bank's pipe
     * shard (one NoC hop), the pipe charges occupancy *from the issue
     * cycle* — so completion cycles match the synchronous model
     * exactly — and the completion message travels back, with @p done
     * firing on the caller's shard at the completion cycle.  Requires
     * llcLatency >= 2 * hopLatency so both hops fit inside the access
     * latency (validated in SystemConfig).
     */
    void accessAsync(LineAddr line, Cycle when,
                     std::function<void(Cycle)> done);

    /**
     * Move per-bank access timing (bankBusyUntil_) onto dedicated
     * kernel shards: bank b's pipe state is owned by shard
     * @p firstShard + b and fenced as virtual mesh node
     * @p firstFenceNode + b (data-plane nodes sit beyond the physical
     * mesh in the fence map).  Functional contents (tags, data,
     * persist-pending state) stay with the callers' shard.
     */
    void attachDataPlane(ShardedEventQueue *kernel, unsigned firstShard,
                         unsigned firstFenceNode);

    bool contains(LineAddr line) const;

    /** Current contents; @p line must be resident. */
    const LineWords &lookup(LineAddr line) const;

    /**
     * Install a version coming down from a private cache (dirty) or up
     * from NVM (clean fill).  May displace a victim; a dirty victim is
     * durably written to NVM (timing charged from @p now).
     */
    void install(LineAddr line, const LineWords &words, bool dirty,
                 Cycle now);

    /** Merge words into a resident line (partial writeback). */
    void merge(LineAddr line, const LineWords &words, bool dirty,
               Cycle now);

    // --- BSP LLC exclusion ------------------------------------------
    /** Cycle until which @p line 's current LLC version must persist
     *  before a newer version may be installed (0 if none pending). */
    Cycle persistPendingUntil(LineAddr line) const;

    void setPersistPending(LineAddr line, Cycle until);

    // --- AGB inclusion (§II-B future optimization, implemented) ------
    /**
     * Pin @p line while a version of it sits in the AGB awaiting its
     * NVM write.  Pinned lines are never LLC victims, which (a) makes
     * the LLC inclusive of the AGB so loads never need to search it,
     * and (b) prevents an LLC eviction from racing an in-flight AGB
     * drain to NVM with a newer same-address version.  Pins nest.
     */
    void pinForAgb(LineAddr line);
    void unpinForAgb(LineAddr line);

    bool isPinned(LineAddr line) const;

    std::size_t population() const;

  private:
    struct Meta
    {
        LineWords words;
        bool dirty = false;
        Cycle persistPendingUntil = 0;
    };

    unsigned banks_;
    Cycle latency_;
    Cycle occupancy_ = 2;
    ShardedEventQueue *dataPlane_ = nullptr;
    unsigned firstShard_ = 0;
    unsigned firstFenceNode_ = 0;
    Nvm &nvm_;
    std::vector<CacheArray> arrays_;
    std::vector<Cycle> bankBusyUntil_;
    std::unordered_map<LineAddr, Meta> meta_;
    std::unordered_map<LineAddr, unsigned> agbPins_;
    Counter &hits_;
    Counter &installs_;
    Counter &dirtyEvicts_;
};

} // namespace tsoper

#endif // TSOPER_MEM_LLC_HH
