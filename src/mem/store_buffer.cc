#include "mem/store_buffer.hh"

#include "sim/log.hh"
#include "sim/trace.hh"

namespace tsoper
{

void
StoreBuffer::push(Addr addr, StoreId store, Cycle now)
{
    tsoper_assert(!full(), "store buffer overflow");
    entries_.push_back(Entry{addr, store});
    trace::counter(trace::Event::SbDepth, core_, now, entries_.size());
}

const StoreBuffer::Entry &
StoreBuffer::front() const
{
    tsoper_assert(!entries_.empty(), "front() on empty store buffer");
    return entries_.front();
}

void
StoreBuffer::pop(Cycle now)
{
    tsoper_assert(!entries_.empty(), "pop() on empty store buffer");
    entries_.pop_front();
    trace::counter(trace::Event::SbDepth, core_, now, entries_.size());
}

std::optional<StoreId>
StoreBuffer::forward(Addr addr) const
{
    const Addr word = addr >> wordShift;
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        if ((it->addr >> wordShift) == word)
            return it->store;
    }
    return std::nullopt;
}

bool
StoreBuffer::containsLine(LineAddr line) const
{
    for (const Entry &e : entries_) {
        if (lineOf(e.addr) == line)
            return true;
    }
    return false;
}

} // namespace tsoper
