/**
 * @file
 * Non-volatile memory model: 8 DDR-style ranks, one memory controller
 * each, with the paper's 360/240-cycle write/read service latencies
 * (Table I).  Each rank services requests serially.
 *
 * The durable image maps cachelines to per-word StoreIds; a word's
 * StoreId identifies the dynamic store whose value the word holds,
 * which is what the crash checker validates against the recorded
 * execution.  Writes become durable at their *completion* event, so
 * simply stopping the event queue at a crash point yields the correct
 * durable state.
 */

#ifndef TSOPER_MEM_NVM_HH
#define TSOPER_MEM_NVM_HH

#include <array>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tsoper
{

/** Functional contents of one cacheline version, one StoreId per word. */
using LineWords = std::array<StoreId, wordsPerLine>;

/** All-zero line contents (no store has written any word). */
inline LineWords
zeroLine()
{
    LineWords w{};
    w.fill(invalidStore);
    return w;
}

/** Overlay @p src onto @p dst: non-invalid words of src win. */
inline void
mergeWords(LineWords &dst, const LineWords &src)
{
    for (unsigned i = 0; i < wordsPerLine; ++i) {
        if (src[i] != invalidStore)
            dst[i] = src[i];
    }
}

class Nvm
{
  public:
    Nvm(const SystemConfig &cfg, EventQueue &eq, StatsRegistry &stats);

    /** Memory controller / rank that owns @p line. */
    unsigned
    rankOf(LineAddr line) const
    {
        return static_cast<unsigned>(line) & (ranks_ - 1);
    }

    /**
     * Enqueue a durable write of @p words to @p line, not starting
     * before @p earliest.  The write is applied to the durable image at
     * its completion event; @p done (optional) is invoked then.
     * @return the completion cycle.
     */
    Cycle write(LineAddr line, const LineWords &words, Cycle earliest,
                std::function<void(Cycle)> done = {});

    /** Timing-only read service. @return the completion cycle. */
    Cycle read(LineAddr line, Cycle earliest);

    /** Durable contents of @p line (zero line if never written). */
    LineWords durable(LineAddr line) const;

    /** Lines that have ever been durably written. */
    const std::unordered_map<LineAddr, LineWords> &image() const
    {
        return image_;
    }

    std::uint64_t writesCompleted() const { return writesDone_.value(); }

  private:
    unsigned ranks_;
    Cycle writeLatency_;
    Cycle readLatency_;
    Cycle writeOccupancy_;
    Cycle readOccupancy_;
    EventQueue &eq_;
    std::vector<Cycle> rankBusyUntil_;
    std::unordered_map<LineAddr, LineWords> image_;
    Counter &writesIssued_;
    Counter &writesDone_;
    Counter &reads_;
    Counter &rankWaitCycles_;
};

} // namespace tsoper

#endif // TSOPER_MEM_NVM_HH
