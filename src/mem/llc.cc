#include "mem/llc.hh"

#include <algorithm>
#include <utility>

#include "sim/log.hh"
#include "sim/shard_fence.hh"
#include "sim/shard_queue.hh"
#include "sim/trace.hh"

namespace tsoper
{

Llc::Llc(const SystemConfig &cfg, Nvm &nvm, StatsRegistry &stats)
    : banks_(cfg.llcBanks), latency_(cfg.llcLatency), nvm_(nvm),
      bankBusyUntil_(cfg.llcBanks, 0),
      hits_(stats.counter("llc.accesses")),
      installs_(stats.counter("llc.installs")),
      dirtyEvicts_(stats.counter("llc.dirty_evictions"))
{
    const unsigned setShift = [&] {
        unsigned shift = 0;
        while ((1u << shift) < banks_)
            ++shift;
        return shift;
    }();
    arrays_.reserve(banks_);
    for (unsigned b = 0; b < banks_; ++b)
        arrays_.emplace_back(cfg.llcSets, cfg.llcWays, setShift);
}

Cycle
Llc::access(LineAddr line, Cycle when)
{
    hits_.inc();
    const unsigned bank = bankOf(line);
    // With the data plane attached, bankBusyUntil_ belongs to the
    // bank's pipe shard — a synchronous access from another shard's
    // events is exactly the cross-tile poke the fence exists to catch.
    if (dataPlane_)
        shardFenceCheck(firstFenceNode_ + bank);
    Cycle &busy = bankBusyUntil_[bank];
    const Cycle start = std::max(when, busy);
    busy = start + occupancy_;
    trace::span(trace::Event::LlcAccess, invalidCore, when,
                start + latency_, line, bank);
    return start + latency_;
}

void
Llc::accessAsync(LineAddr line, Cycle when, std::function<void(Cycle)> done)
{
    if (!dataPlane_) {
        done(access(line, when));
        return;
    }
    hits_.inc();
    const unsigned bank = bankOf(line);
    const unsigned pipe = firstShard_ + bank;
    const Cycle hop = dataPlane_->lookahead();
    // Request hop to the bank pipe.  The pipe charges occupancy from
    // the *issue* cycle, not the arrival cycle: requests reach a pipe
    // in issue order (same hop latency, FIFO outbox ties), so the
    // busy-chaining below computes the same completion cycles the
    // synchronous model would — the hops move timing work off the
    // caller's shard without changing it.
    dataPlane_->post(
        0, pipe, hop,
        [this, line, bank, pipe, when, done = std::move(done)]() mutable {
            shardFenceCheck(firstFenceNode_ + bank);
            Cycle &busy = bankBusyUntil_[bank];
            const Cycle start = std::max(when, busy);
            busy = start + occupancy_;
            const Cycle completion = start + latency_;
            const Cycle pipeNow = dataPlane_->shard(pipe).now();
            // Completion hop back; >= lookahead because
            // llcLatency >= 2 * hopLatency (SystemConfig::validate).
            dataPlane_->post(
                pipe, 0, completion - pipeNow,
                [this, line, bank, when, completion,
                 done = std::move(done)] {
                    trace::span(trace::Event::LlcAccess, invalidCore,
                                when, completion, line, bank);
                    done(completion);
                });
        });
}

void
Llc::attachDataPlane(ShardedEventQueue *kernel, unsigned firstShard,
                     unsigned firstFenceNode)
{
    tsoper_assert(!kernel || kernel->shards() >= firstShard + banks_,
                  "LLC data plane needs one shard per bank");
    dataPlane_ = kernel;
    firstShard_ = firstShard;
    firstFenceNode_ = firstFenceNode;
}

bool
Llc::contains(LineAddr line) const
{
    return arrays_[bankOf(line)].contains(line);
}

const LineWords &
Llc::lookup(LineAddr line) const
{
    auto it = meta_.find(line);
    tsoper_assert(it != meta_.end(), "LLC lookup of absent line ", line);
    return it->second.words;
}

void
Llc::install(LineAddr line, const LineWords &words, bool dirty, Cycle now)
{
    installs_.inc();
    CacheArray &array = arrays_[bankOf(line)];
    const auto result = array.insert(line);
    tsoper_assert(!result.noSpace, "LLC set fully pinned");
    if (!result.hit && agbPins_.count(line))
        array.setPinned(line, true);
    if (result.evicted) {
        auto vit = meta_.find(result.victim);
        tsoper_assert(vit != meta_.end());
        if (vit->second.dirty) {
            dirtyEvicts_.inc();
            nvm_.write(result.victim, vit->second.words, now);
        }
        meta_.erase(vit);
    }
    Meta &m = meta_[line];
    if (result.hit) {
        mergeWords(m.words, words);
        m.dirty = m.dirty || dirty;
    } else {
        m.words = zeroLine();
        mergeWords(m.words, words);
        m.dirty = dirty;
    }
}

void
Llc::merge(LineAddr line, const LineWords &words, bool dirty, Cycle now)
{
    install(line, words, dirty, now);
}

Cycle
Llc::persistPendingUntil(LineAddr line) const
{
    auto it = meta_.find(line);
    return it == meta_.end() ? 0 : it->second.persistPendingUntil;
}

void
Llc::setPersistPending(LineAddr line, Cycle until)
{
    auto it = meta_.find(line);
    if (it != meta_.end())
        it->second.persistPendingUntil =
            std::max(it->second.persistPendingUntil, until);
}

void
Llc::pinForAgb(LineAddr line)
{
    if (++agbPins_[line] == 1 && arrays_[bankOf(line)].contains(line))
        arrays_[bankOf(line)].setPinned(line, true);
}

void
Llc::unpinForAgb(LineAddr line)
{
    auto it = agbPins_.find(line);
    tsoper_assert(it != agbPins_.end() && it->second > 0,
                  "unbalanced AGB unpin");
    if (--it->second == 0) {
        agbPins_.erase(it);
        if (arrays_[bankOf(line)].contains(line))
            arrays_[bankOf(line)].setPinned(line, false);
    }
}

bool
Llc::isPinned(LineAddr line) const
{
    return agbPins_.count(line) != 0;
}

std::size_t
Llc::population() const
{
    return meta_.size();
}

} // namespace tsoper
