#include "mem/llc.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/trace.hh"

namespace tsoper
{

Llc::Llc(const SystemConfig &cfg, Nvm &nvm, StatsRegistry &stats)
    : banks_(cfg.llcBanks), latency_(cfg.llcLatency), nvm_(nvm),
      bankBusyUntil_(cfg.llcBanks, 0),
      hits_(stats.counter("llc.accesses")),
      installs_(stats.counter("llc.installs")),
      dirtyEvicts_(stats.counter("llc.dirty_evictions"))
{
    const unsigned setShift = [&] {
        unsigned shift = 0;
        while ((1u << shift) < banks_)
            ++shift;
        return shift;
    }();
    arrays_.reserve(banks_);
    for (unsigned b = 0; b < banks_; ++b)
        arrays_.emplace_back(cfg.llcSets, cfg.llcWays, setShift);
}

Cycle
Llc::access(LineAddr line, Cycle when)
{
    hits_.inc();
    Cycle &busy = bankBusyUntil_[bankOf(line)];
    const Cycle start = std::max(when, busy);
    busy = start + occupancy_;
    trace::span(trace::Event::LlcAccess, invalidCore, when,
                start + latency_, line, bankOf(line));
    return start + latency_;
}

bool
Llc::contains(LineAddr line) const
{
    return arrays_[bankOf(line)].contains(line);
}

const LineWords &
Llc::lookup(LineAddr line) const
{
    auto it = meta_.find(line);
    tsoper_assert(it != meta_.end(), "LLC lookup of absent line ", line);
    return it->second.words;
}

void
Llc::install(LineAddr line, const LineWords &words, bool dirty, Cycle now)
{
    installs_.inc();
    CacheArray &array = arrays_[bankOf(line)];
    const auto result = array.insert(line);
    tsoper_assert(!result.noSpace, "LLC set fully pinned");
    if (!result.hit && agbPins_.count(line))
        array.setPinned(line, true);
    if (result.evicted) {
        auto vit = meta_.find(result.victim);
        tsoper_assert(vit != meta_.end());
        if (vit->second.dirty) {
            dirtyEvicts_.inc();
            nvm_.write(result.victim, vit->second.words, now);
        }
        meta_.erase(vit);
    }
    Meta &m = meta_[line];
    if (result.hit) {
        mergeWords(m.words, words);
        m.dirty = m.dirty || dirty;
    } else {
        m.words = zeroLine();
        mergeWords(m.words, words);
        m.dirty = dirty;
    }
}

void
Llc::merge(LineAddr line, const LineWords &words, bool dirty, Cycle now)
{
    install(line, words, dirty, now);
}

Cycle
Llc::persistPendingUntil(LineAddr line) const
{
    auto it = meta_.find(line);
    return it == meta_.end() ? 0 : it->second.persistPendingUntil;
}

void
Llc::setPersistPending(LineAddr line, Cycle until)
{
    auto it = meta_.find(line);
    if (it != meta_.end())
        it->second.persistPendingUntil =
            std::max(it->second.persistPendingUntil, until);
}

void
Llc::pinForAgb(LineAddr line)
{
    if (++agbPins_[line] == 1 && arrays_[bankOf(line)].contains(line))
        arrays_[bankOf(line)].setPinned(line, true);
}

void
Llc::unpinForAgb(LineAddr line)
{
    auto it = agbPins_.find(line);
    tsoper_assert(it != agbPins_.end() && it->second > 0,
                  "unbalanced AGB unpin");
    if (--it->second == 0) {
        agbPins_.erase(it);
        if (arrays_[bankOf(line)].contains(line))
            arrays_[bankOf(line)].setPinned(line, false);
    }
}

bool
Llc::isPinned(LineAddr line) const
{
    return agbPins_.count(line) != 0;
}

std::size_t
Llc::population() const
{
    return meta_.size();
}

} // namespace tsoper
