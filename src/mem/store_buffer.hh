/**
 * @file
 * Per-core FIFO store buffer implementing TSO semantics.
 *
 * Stores retire from the core into the buffer and drain to the private
 * cache strictly in program order.  Loads search the buffer youngest-
 * to-oldest for a same-word entry (store-to-load forwarding); loads to
 * other addresses may bypass buffered stores, as TSO permits.
 */

#ifndef TSOPER_MEM_STORE_BUFFER_HH
#define TSOPER_MEM_STORE_BUFFER_HH

#include <deque>
#include <optional>

#include "sim/types.hh"

namespace tsoper
{

class StoreBuffer
{
  public:
    struct Entry
    {
        Addr addr;     ///< Byte address (word-aligned).
        StoreId store; ///< Unique id doubling as the stored value.
    };

    /** @p core only labels the depth samples in the structured trace. */
    explicit StoreBuffer(unsigned capacity, CoreId core = invalidCore)
        : capacity_(capacity), core_(core)
    {
    }

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Append a store; the caller must have checked !full(). */
    void push(Addr addr, StoreId store, Cycle now = 0);

    /** Oldest (next to drain) entry; buffer must be non-empty. */
    const Entry &front() const;

    /** Drain the oldest entry. */
    void pop(Cycle now = 0);

    /**
     * Youngest buffered store to the same word as @p addr, if any —
     * the value a TSO load of @p addr must observe.
     */
    std::optional<StoreId> forward(Addr addr) const;

    /** Does any buffered store target cacheline @p line? */
    bool containsLine(LineAddr line) const;

  private:
    unsigned capacity_;
    CoreId core_;
    std::deque<Entry> entries_;
};

} // namespace tsoper

#endif // TSOPER_MEM_STORE_BUFFER_HH
