#include "mem/cache_array.hh"

#include "sim/log.hh"

namespace tsoper
{

CacheArray::CacheArray(unsigned sets, unsigned ways, unsigned setShift)
    : sets_(sets), ways_(ways), setShift_(setShift), entries_(sets * ways)
{
    tsoper_assert(sets != 0 && (sets & (sets - 1)) == 0,
                  "set count must be a power of two");
    tsoper_assert(ways != 0);
}

CacheArray::Entry *
CacheArray::find(LineAddr line)
{
    Entry *base = &entries_[setOf(line) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].line == line)
            return &base[w];
    }
    return nullptr;
}

const CacheArray::Entry *
CacheArray::find(LineAddr line) const
{
    return const_cast<CacheArray *>(this)->find(line);
}

bool
CacheArray::contains(LineAddr line) const
{
    return find(line) != nullptr;
}

void
CacheArray::touch(LineAddr line)
{
    Entry *e = find(line);
    tsoper_assert(e, "touch of absent line ", line);
    e->lastUse = ++useClock_;
}

CacheArray::Insert
CacheArray::insert(LineAddr line)
{
    Insert result;
    if (Entry *e = find(line)) {
        e->lastUse = ++useClock_;
        result.hit = true;
        return result;
    }
    Entry *base = &entries_[setOf(line) * ways_];
    Entry *slot = nullptr;
    Entry *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Entry &e = base[w];
        if (!e.valid) {
            slot = &e;
            break;
        }
        if (!e.pinned && (!victim || e.lastUse < victim->lastUse))
            victim = &e;
    }
    if (!slot) {
        if (!victim) {
            result.noSpace = true;
            return result;
        }
        result.evicted = true;
        result.victim = victim->line;
        --population_;
        slot = victim;
    }
    slot->line = line;
    slot->valid = true;
    slot->pinned = false;
    slot->lastUse = ++useClock_;
    ++population_;
    return result;
}

bool
CacheArray::erase(LineAddr line)
{
    Entry *e = find(line);
    if (!e)
        return false;
    e->valid = false;
    e->pinned = false;
    --population_;
    return true;
}

void
CacheArray::setPinned(LineAddr line, bool pinned)
{
    Entry *e = find(line);
    tsoper_assert(e, "pin of absent line ", line);
    e->pinned = pinned;
}

bool
CacheArray::isPinned(LineAddr line) const
{
    const Entry *e = find(line);
    tsoper_assert(e, "isPinned of absent line ", line);
    return e->pinned;
}

void
CacheArray::forEach(const std::function<void(LineAddr)> &fn) const
{
    for (const Entry &e : entries_) {
        if (e.valid)
            fn(e.line);
    }
}

} // namespace tsoper
