#include "mem/nvm.hh"

#include <algorithm>

#include "sim/log.hh"

namespace tsoper
{

Nvm::Nvm(const SystemConfig &cfg, EventQueue &eq, StatsRegistry &stats)
    : ranks_(cfg.nvmRanks), writeLatency_(cfg.nvmWriteLatency),
      readLatency_(cfg.nvmReadLatency),
      writeOccupancy_(cfg.nvmWriteOccupancy),
      readOccupancy_(cfg.nvmReadOccupancy), eq_(eq),
      rankBusyUntil_(cfg.nvmRanks, 0),
      writesIssued_(stats.counter("nvm.writes_issued")),
      writesDone_(stats.counter("nvm.writes_done")),
      reads_(stats.counter("nvm.reads")),
      rankWaitCycles_(stats.counter("nvm.rank_wait_cycles"))
{
}

Cycle
Nvm::write(LineAddr line, const LineWords &words, Cycle earliest,
           std::function<void(Cycle)> done)
{
    writesIssued_.inc();
    Cycle &busy = rankBusyUntil_[rankOf(line)];
    const Cycle start = std::max(earliest, busy);
    rankWaitCycles_.inc(start - earliest);
    const Cycle completion = start + writeLatency_;
    busy = start + writeOccupancy_;
    eq_.schedule(completion, [this, line, words, done, completion] {
        auto [it, fresh] = image_.try_emplace(line, zeroLine());
        (void)fresh;
        mergeWords(it->second, words);
        writesDone_.inc();
        if (done)
            done(completion);
    });
    return completion;
}

Cycle
Nvm::read(LineAddr line, Cycle earliest)
{
    reads_.inc();
    Cycle &busy = rankBusyUntil_[rankOf(line)];
    const Cycle start = std::max(earliest, busy);
    rankWaitCycles_.inc(start - earliest);
    const Cycle completion = start + readLatency_;
    busy = start + readOccupancy_;
    return completion;
}

LineWords
Nvm::durable(LineAddr line) const
{
    auto it = image_.find(line);
    return it == image_.end() ? zeroLine() : it->second;
}

} // namespace tsoper
