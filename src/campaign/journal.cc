#include "campaign/journal.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "sim/json.hh"

namespace tsoper::campaign
{

CampaignJournal::~CampaignJournal() { close(); }

bool
CampaignJournal::open(const std::string &path,
                      const std::string &campaign, bool truncate,
                      std::string *err)
{
    close();
    const int flags =
        O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0) {
        if (err)
            *err = "cannot open journal " + path + ": " +
                   std::strerror(errno);
        return false;
    }
    // Continuing a journal that already has a header must not write a
    // second one.
    const off_t size = ::lseek(fd_, 0, SEEK_END);
    if (size == 0) {
        Json header = Json::object();
        header.set("format", Json(kJournalFormat))
            .set("campaign", Json(campaign));
        writeLine(header.dump());
    }
    return true;
}

void
CampaignJournal::append(const CellReport &cell)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0)
        return;
    writeLine(cell.toJson().dump());
}

void
CampaignJournal::appendAux(const Json &record)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0)
        return;
    if (!record.isObject() || !record.find("event"))
        return; // would be mistaken for a cell on load — refuse
    writeLine(record.dump());
}

void
CampaignJournal::writeLine(const std::string &line)
{
    std::string buf = line;
    buf += '\n';
    std::size_t off = 0;
    while (off < buf.size()) {
        const ssize_t wrote =
            ::write(fd_, buf.data() + off, buf.size() - off);
        if (wrote <= 0) {
            if (errno == EINTR)
                continue;
            return; // journal is best-effort once the disk fails
        }
        off += static_cast<std::size_t>(wrote);
    }
    ::fsync(fd_); // the write-AHEAD part: durable before we move on
}

void
CampaignJournal::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
loadJournal(const std::string &path, JournalIndex *out,
            std::string *err, std::string *warn)
{
    std::ifstream is(path);
    if (!is) {
        if (err)
            *err = "cannot open journal: " + path;
        return false;
    }

    std::string line;
    std::size_t lineNo = 0;
    bool sawHeader = false;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        Json doc;
        std::string parseErr;
        if (!Json::parse(line, &doc, &parseErr)) {
            // A torn final line means the process died mid-append;
            // anything before it is still good.  A torn line in the
            // *middle* means corruption.
            if (is.peek() == std::char_traits<char>::eof()) {
                if (warn)
                    *warn = path + " line " + std::to_string(lineNo) +
                            ": torn final record (" +
                            std::to_string(line.size()) +
                            " bytes) ignored — the writer died "
                            "mid-append";
                break;
            }
            if (err)
                *err = path + " line " + std::to_string(lineNo) + ": " +
                       parseErr;
            return false;
        }
        // Coordinator aux records (lease grants, worker events) share
        // the journal but are not cells.
        if (doc.find("event"))
            continue;
        if (!sawHeader) {
            const Json *format = doc.find("format");
            if (!format || !format->isString() ||
                format->asString() != kJournalFormat) {
                if (err)
                    *err = path + ": not a " +
                           std::string(kJournalFormat) + " journal";
                return false;
            }
            if (const Json *name = doc.find("campaign");
                name && name->isString())
                out->campaign = name->asString();
            sawHeader = true;
            continue;
        }
        CellReport cell;
        std::string cellErr;
        if (!cellReportFromJson(doc, &cell, &cellErr)) {
            if (err)
                *err = path + " line " + std::to_string(lineNo) + ": " +
                       cellErr;
            return false;
        }
        out->cells[cell.request.id] = std::move(cell); // last wins
    }
    if (!sawHeader) {
        if (err)
            *err = path + ": empty journal (no header line)";
        return false;
    }
    return true;
}

std::string
journalPathFor(const std::string &reportPath)
{
    const std::size_t slash = reportPath.rfind('/');
    if (slash == std::string::npos)
        return "journal.jsonl";
    return reportPath.substr(0, slash + 1) + "journal.jsonl";
}

} // namespace tsoper::campaign
