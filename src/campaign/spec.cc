#include "campaign/spec.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "workload/generators.hh"

namespace tsoper::campaign
{

namespace
{

/** Shortest %g form — used for stable cell ids ("x0.1", "c0.25"). */
std::string
formatDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> items;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::string item = trim(
            s.substr(pos, comma == std::string::npos ? std::string::npos
                                                     : comma - pos));
        if (!item.empty())
            items.push_back(item);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return items;
}

bool
parseDouble(const std::string &s, double *out)
{
    char *end = nullptr;
    *out = std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size() && !s.empty();
}

bool
parseUint(const std::string &s, std::uint64_t *out)
{
    char *end = nullptr;
    *out = std::strtoull(s.c_str(), &end, 10);
    return end == s.c_str() + s.size() && !s.empty();
}

bool
parseBool(const std::string &s, bool *out)
{
    if (s == "true" || s == "1" || s == "yes") {
        *out = true;
        return true;
    }
    if (s == "false" || s == "0" || s == "no") {
        *out = false;
        return true;
    }
    return false;
}

} // namespace

std::size_t
CampaignSpec::cellCount() const
{
    const std::size_t crashPoints =
        crashFractions.empty() ? 1 : crashFractions.size();
    return engines.size() * benches.size() * scales.size() *
           seeds.size() * crashPoints;
}

std::vector<RunRequest>
expand(const CampaignSpec &spec)
{
    std::vector<RunRequest> cells;
    cells.reserve(spec.cellCount());
    for (const std::string &engine : spec.engines) {
        for (const std::string &bench : spec.benches) {
            for (double scale : spec.scales) {
                for (std::uint64_t seed : spec.seeds) {
                    RunRequest base;
                    base.engine = engine;
                    base.bench = bench;
                    base.scale = scale;
                    base.seed = seed;
                    base.cores = spec.cores;
                    base.agMaxLines = spec.agMaxLines;
                    base.agbSliceLines = spec.agbSliceLines;
                    base.threads = spec.threads;
                    base.check = spec.check;
                    base.id = engine + "/" + bench + "/x" +
                              formatDouble(scale) + "/s" +
                              std::to_string(seed);
                    if (spec.crashFractions.empty()) {
                        cells.push_back(base);
                        continue;
                    }
                    for (double frac : spec.crashFractions) {
                        RunRequest cell = base;
                        cell.crashAt = frac;
                        cell.id += "/c" + formatDouble(frac);
                        cells.push_back(std::move(cell));
                    }
                }
            }
        }
    }
    return cells;
}

std::string
validateSpec(const CampaignSpec &spec)
{
    if (spec.engines.empty())
        return "no engines listed";
    if (spec.benches.empty())
        return "no benchmarks listed";
    if (spec.scales.empty())
        return "no scales listed";
    if (spec.seeds.empty())
        return "no seeds listed";
    for (const std::string &e : spec.engines) {
        EngineKind kind;
        ProtocolKind protocol;
        if (!engineFromName(e, &kind, &protocol))
            return "unknown engine: " + e;
    }
    for (const std::string &b : spec.benches)
        if (!findProfile(b))
            return "unknown benchmark: " + b;
    for (double s : spec.scales)
        if (!(s > 0.0))
            return "scale must be positive, got " + formatDouble(s);
    for (double f : spec.crashFractions)
        if (!(f > 0.0 && f <= 1.0))
            return "crash fraction must be in (0, 1], got " +
                   formatDouble(f);
    if (spec.cores == 0 || spec.cores > 64)
        return "cores must be in [1, 64]";
    if (spec.threads > 64)
        return "threads must be in [0, 64] (0 = sequential)";
    return "";
}

bool
parseSpecText(const std::string &text, CampaignSpec *out,
              std::string *err)
{
    CampaignSpec spec;
    std::istringstream is(text);
    std::string line;
    unsigned lineNo = 0;

    auto failAt = [&](const std::string &msg) {
        if (err)
            *err = "spec line " + std::to_string(lineNo) + ": " + msg;
        return false;
    };

    while (std::getline(is, line)) {
        ++lineNo;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return failAt("expected key = value");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (value.empty())
            return failAt("empty value for \"" + key + "\"");

        if (key == "name") {
            spec.name = value;
        } else if (key == "engines") {
            spec.engines = value == "all" ? engineNames()
                                          : splitList(value);
        } else if (key == "benches") {
            spec.benches = value == "all" ? benchmarkNames()
                                          : splitList(value);
        } else if (key == "scales") {
            spec.scales.clear();
            for (const std::string &item : splitList(value)) {
                double d;
                if (!parseDouble(item, &d))
                    return failAt("bad scale \"" + item + "\"");
                spec.scales.push_back(d);
            }
        } else if (key == "seeds") {
            spec.seeds.clear();
            for (const std::string &item : splitList(value)) {
                std::uint64_t u;
                if (!parseUint(item, &u))
                    return failAt("bad seed \"" + item + "\"");
                spec.seeds.push_back(u);
            }
        } else if (key == "crash-fractions") {
            spec.crashFractions.clear();
            if (value != "none") {
                for (const std::string &item : splitList(value)) {
                    double d;
                    if (!parseDouble(item, &d))
                        return failAt("bad crash fraction \"" + item +
                                      "\"");
                    spec.crashFractions.push_back(d);
                }
            }
        } else if (key == "cores" || key == "ag-max-lines" ||
                   key == "agb-slice-lines" || key == "threads" ||
                   key == "timeout-ms" || key == "retries") {
            std::uint64_t u;
            if (!parseUint(value, &u))
                return failAt("bad number \"" + value + "\" for \"" +
                              key + "\"");
            if (key == "cores")
                spec.cores = static_cast<unsigned>(u);
            else if (key == "ag-max-lines")
                spec.agMaxLines = static_cast<unsigned>(u);
            else if (key == "agb-slice-lines")
                spec.agbSliceLines = static_cast<unsigned>(u);
            else if (key == "threads")
                spec.threads = static_cast<unsigned>(u);
            else if (key == "timeout-ms")
                spec.timeoutMs = static_cast<unsigned>(u);
            else
                spec.retries = static_cast<unsigned>(u);
        } else if (key == "check") {
            if (!parseBool(value, &spec.check))
                return failAt("bad boolean \"" + value + "\"");
        } else {
            return failAt("unknown key \"" + key + "\"");
        }
    }
    *out = std::move(spec);
    return true;
}

bool
loadSpecFile(const std::string &path, CampaignSpec *out,
             std::string *err)
{
    std::ifstream is(path);
    if (!is) {
        if (err)
            *err = "cannot open spec file: " + path;
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return parseSpecText(buf.str(), out, err);
}

} // namespace tsoper::campaign
