/**
 * @file
 * Work-stealing thread pool for campaign execution.
 *
 * Each worker owns a deque; submit() deals tasks round-robin across
 * the deques, workers pop from their own back (LIFO, cache-warm) and
 * steal from other workers' fronts (FIFO, oldest first) when theirs
 * runs dry.  Tasks may submit further tasks.  wait() blocks until
 * every submitted task has finished.
 *
 * The pool runs arbitrary std::function<void()> thunks — cell
 * timeout/retry policy lives a layer above, in runner.cc — so tests
 * can drive it with synthetic workloads.
 */

#ifndef TSOPER_CAMPAIGN_THREAD_POOL_HH
#define TSOPER_CAMPAIGN_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tsoper::campaign
{

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** Spawn @p threads workers (at least one). */
    explicit ThreadPool(unsigned threads);

    /** Waits for all pending tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; callable from any thread, including workers. */
    void submit(Task task);

    /** Block until every task submitted so far has completed. */
    void wait();

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Tasks stolen from another worker's deque (observability). */
    std::uint64_t steals() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void workerLoop(unsigned self);
    bool popOwn(unsigned self, Task *task);
    bool stealOther(unsigned self, Task *task);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex mutex_; ///< Guards sleeping/waiting bookkeeping.
    std::condition_variable workCv_; ///< Signals arriving tasks.
    std::condition_variable idleCv_; ///< Signals pending_ hitting 0.
    std::atomic<std::uint64_t> pending_{0}; ///< Submitted, not finished.
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::size_t> nextWorker_{0}; ///< Round-robin dealing.
    bool stopping_ = false; // under mutex_
};

} // namespace tsoper::campaign

#endif // TSOPER_CAMPAIGN_THREAD_POOL_HH
