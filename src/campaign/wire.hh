/**
 * @file
 * The campaign fabric's wire vocabulary: versioned JSON messages
 * exchanged between coordinator and worker over net/ frames.
 *
 * Five message types, all flat JSON objects with a "type" member:
 *
 *   hello      worker -> coord   {proto, worker, slots}
 *   hello_ack  coord -> worker   {proto, campaign,
 *                                 heartbeat_timeout_ms}
 *   lease      coord -> worker   {lease, timeout_ms, retries,
 *                                 cell: RunRequest JSON}
 *   result     worker -> coord   {lease, cell: CellReport JSON}
 *   heartbeat  worker -> coord   {active: [lease ids]}
 *   goodbye    either direction  {reason}
 *
 * Versioning: `hello` carries kProtoVersion; a coordinator that sees
 * a different version answers with `goodbye` and drops the peer, so
 * mixed deployments fail loudly at connect time instead of subtly
 * mid-campaign.  Unknown members are ignored everywhere (additive
 * evolution); unknown *types* drop the peer (a confused peer cannot
 * be trusted with leases).
 *
 * Cell payloads reuse the campaign's existing JSON forms verbatim —
 * RunRequest::toJson / runRequestFromJson for leases and
 * CellReport::toJson / cellReportFromJson for results — so a cell
 * that crossed the wire is byte-for-byte the cell a local runner
 * would have produced, which is what makes distributed reports
 * comparable to local ones.
 */

#ifndef TSOPER_CAMPAIGN_WIRE_HH
#define TSOPER_CAMPAIGN_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/report.hh"
#include "campaign/run_request.hh"
#include "sim/json.hh"

namespace tsoper::campaign::wire
{

inline constexpr int kProtoVersion = 1;

Json hello(const std::string &worker, unsigned slots);

/** @p heartbeatTimeoutMs tells the worker how quiet it may go before
 *  being declared dead — it paces its heartbeats at a fraction of
 *  this, so one coordinator-side knob tunes both ends. */
Json helloAck(const std::string &campaign,
              unsigned heartbeatTimeoutMs);
Json lease(std::uint64_t leaseId, unsigned timeoutMs, unsigned retries,
           const RunRequest &cell);
Json result(std::uint64_t leaseId, const CellReport &cell);
Json heartbeat(const std::vector<std::uint64_t> &activeLeases);
Json goodbye(const std::string &reason);

/** Parse a frame payload: JSON object with a string "type".  Returns
 *  false (drop the peer) on malformed JSON or a missing type. */
bool parseMessage(const std::string &payload, Json *out,
                  std::string *type);

/** j[key] as uint64 when present and numeric, else @p fallback. */
std::uint64_t uintField(const Json &j, const char *key,
                        std::uint64_t fallback);

/** j[key] as string when present, else "". */
std::string stringField(const Json &j, const char *key);

} // namespace tsoper::campaign::wire

#endif // TSOPER_CAMPAIGN_WIRE_HH
