#include "campaign/report.hh"

#include <fstream>
#include <sstream>

namespace tsoper::campaign
{

Json
CellReport::toJson() const
{
    Json j = request.toJson();
    j.set("status", Json(toString(result.status)))
        .set("attempts", Json(attempts))
        .set("wall_ms", Json(wallMs));
    if (!result.detail.empty())
        j.set("detail", Json(result.detail));
    j.set("cycles", Json(result.cycles))
        .set("drain_cycles", Json(result.drainCycles));
    if (result.crashCycle)
        j.set("crash_cycle", Json(result.crashCycle));
    j.set("ops", Json(result.ops)).set("stores", Json(result.stores));
    if (!result.recoverySummary.empty())
        j.set("recovery_summary", Json(result.recoverySummary));
    if (result.audited) {
        Json audit = Json::object();
        audit.set("durable_lines", Json(result.durableLines))
            .set("durable_words", Json(result.durableWords))
            .set("buffer_recovered_lines",
                 Json(result.bufferRecoveredLines))
            .set("required_stores", Json(result.requiredStores))
            .set("ok", Json(result.status != RunStatus::CheckFailed));
        j.set("audit", std::move(audit));
    }
    if (result.exitCode >= 0)
        j.set("exit_code", Json(static_cast<std::int64_t>(
                               result.exitCode)));
    if (!result.signalName.empty())
        j.set("signal", Json(result.signalName));
    if (!result.stderrTail.empty())
        j.set("stderr_tail", Json(result.stderrTail));
    if (quarantined)
        j.set("quarantined", Json(true));
    if (attemptLog.size() >= 2) {
        // A single clean attempt would only duplicate the cell's own
        // status/wall_ms, so the log is emitted for retried cells only.
        Json logArr = Json::array();
        for (const AttemptRecord &a : attemptLog) {
            Json entry = Json::object();
            entry.set("status", Json(toString(a.status)))
                .set("wall_ms", Json(a.wallMs));
            if (!a.detail.empty())
                entry.set("detail", Json(a.detail));
            logArr.push(std::move(entry));
        }
        j.set("attempt_log", std::move(logArr));
    }
    j.set("stats", result.stats);
    return j;
}

bool
cellReportFromJson(const Json &j, CellReport *out, std::string *err)
{
    CellReport cell;
    cell.request = runRequestFromJson(j);
    if (cell.request.id.empty()) {
        if (err)
            *err = "cell record has no id";
        return false;
    }
    std::string resErr;
    if (!runResultFromJson(j, &cell.result, &resErr)) {
        if (err)
            *err = "cell " + cell.request.id + ": " + resErr;
        return false;
    }
    if (const Json *attempts = j.find("attempts");
        attempts && attempts->isNumber())
        cell.attempts = static_cast<unsigned>(attempts->asUint());
    if (const Json *wall = j.find("wall_ms"); wall && wall->isNumber())
        cell.wallMs = wall->asDouble();
    if (const Json *q = j.find("quarantined"); q && q->isBool())
        cell.quarantined = q->asBool();
    if (const Json *logArr = j.find("attempt_log");
        logArr && logArr->isArray()) {
        for (std::size_t i = 0; i < logArr->size(); ++i) {
            const Json &entry = logArr->at(i);
            AttemptRecord a;
            if (const Json *st = entry.find("status");
                st && st->isString())
                runStatusFromName(st->asString(), &a.status);
            if (const Json *wall = entry.find("wall_ms");
                wall && wall->isNumber())
                a.wallMs = wall->asDouble();
            if (const Json *detail = entry.find("detail");
                detail && detail->isString())
                a.detail = detail->asString();
            cell.attemptLog.push_back(std::move(a));
        }
    }
    *out = std::move(cell);
    return true;
}

std::size_t
CampaignReport::count(RunStatus status) const
{
    std::size_t n = 0;
    for (const CellReport &c : cells)
        if (!c.quarantined && c.result.status == status)
            ++n;
    return n;
}

std::size_t
CampaignReport::quarantinedCount() const
{
    std::size_t n = 0;
    for (const CellReport &c : cells)
        if (c.quarantined)
            ++n;
    return n;
}

std::size_t
CampaignReport::resumedCount() const
{
    std::size_t n = 0;
    for (const CellReport &c : cells)
        if (c.fromJournal)
            ++n;
    return n;
}

bool
CampaignReport::allOk() const
{
    for (const CellReport &c : cells)
        if (c.result.status != RunStatus::Ok)
            return false;
    return true;
}

std::string
CampaignReport::summary() const
{
    std::ostringstream os;
    os << cells.size() << " cells:";
    bool any = false;
    for (RunStatus s : allRunStatuses()) {
        const std::size_t n = count(s);
        if (!n)
            continue;
        os << (any ? ", " : " ") << n << " " << toString(s);
        any = true;
    }
    if (const std::size_t q = quarantinedCount()) {
        os << (any ? ", " : " ") << q << " quarantined";
        any = true;
    }
    if (!any)
        os << " none";
    if (const std::size_t r = resumedCount())
        os << "; " << r << " resumed from journal";
    if (orphanedThreads)
        os << "; " << orphanedThreads << " orphaned attempt thread"
           << (orphanedThreads == 1 ? "" : "s");
    return os.str();
}

Json
CampaignReport::toJson() const
{
    Json totals = Json::object();
    totals.set("cells", Json(static_cast<std::uint64_t>(cells.size())));
    for (RunStatus s : allRunStatuses())
        totals.set(toString(s),
                   Json(static_cast<std::uint64_t>(count(s))));
    totals.set("quarantined",
               Json(static_cast<std::uint64_t>(quarantinedCount())));

    Json cellArr = Json::array();
    for (const CellReport &c : cells)
        cellArr.push(c.toJson());

    Json j = Json::object();
    j.set("campaign", Json(name))
        .set("jobs", Json(jobs))
        .set("wall_ms", Json(wallMs))
        .set("orphaned_threads", Json(orphanedThreads))
        .set("totals", std::move(totals))
        .set("cells", std::move(cellArr));
    return j;
}

namespace
{

bool
isVolatileKey(const std::string &key, bool topLevel)
{
    if (key == "wall_ms")
        return true;
    if (topLevel)
        return key == "jobs" || key == "orphaned_threads";
    return key == "attempts" || key == "attempt_log" ||
           key == "stderr_tail";
}

// Json has no erase; canonicalization rebuilds filtered copies.
// Member insertion order is preserved, so the projection is stable.
Json
stripVolatile(const Json &j, bool topLevel)
{
    Json out = Json::object();
    for (const auto &[key, value] : j.members()) {
        if (isVolatileKey(key, topLevel))
            continue;
        if (key == "cells" && topLevel && value.isArray()) {
            Json cells = Json::array();
            for (std::size_t i = 0; i < value.size(); ++i)
                cells.push(stripVolatile(value.at(i), false));
            out.set(key, std::move(cells));
            continue;
        }
        out.set(key, value);
    }
    return out;
}

} // namespace

Json
canonicalReportJson(const CampaignReport &report)
{
    return stripVolatile(report.toJson(), /*topLevel=*/true);
}

bool
writeReportFile(const CampaignReport &report, const std::string &path,
                std::string *err)
{
    std::ofstream os(path);
    if (!os) {
        if (err)
            *err = "cannot open for writing: " + path;
        return false;
    }
    os << report.toJson().dump(2) << "\n";
    os.flush();
    if (!os) {
        if (err)
            *err = "I/O error writing: " + path;
        return false;
    }
    return true;
}

bool
verifyReportFile(const std::string &path, bool requireAllOk,
                 std::string *err)
{
    std::ifstream is(path);
    if (!is) {
        if (err)
            *err = "cannot open: " + path;
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();

    Json doc;
    std::string parseErr;
    if (!Json::parse(buf.str(), &doc, &parseErr)) {
        if (err)
            *err = path + ": " + parseErr;
        return false;
    }
    const Json *totals = doc.find("totals");
    const Json *cellArr = doc.find("cells");
    if (!totals || !totals->isObject() || !cellArr ||
        !cellArr->isArray()) {
        if (err)
            *err = path + ": missing totals/cells";
        return false;
    }
    const Json *cellTotal = totals->find("cells");
    if (!cellTotal || !cellTotal->isNumber() ||
        cellTotal->asUint() != cellArr->size()) {
        if (err)
            *err = path + ": totals.cells disagrees with cell list";
        return false;
    }
    std::size_t ok = 0;
    for (std::size_t i = 0; i < cellArr->size(); ++i) {
        const Json &cell = cellArr->at(i);
        const Json *status = cell.find("status");
        if (!status || !status->isString()) {
            if (err)
                *err = path + ": cell " + std::to_string(i) +
                       " has no status";
            return false;
        }
        if (status->asString() == toString(RunStatus::Ok))
            ++ok;
        else if (requireAllOk) {
            const Json *id = cell.find("id");
            if (err)
                *err = path + ": cell " +
                       (id && id->isString() ? id->asString()
                                             : std::to_string(i)) +
                       " is " + status->asString();
            return false;
        }
    }
    const Json *okTotal = totals->find(toString(RunStatus::Ok));
    if (!okTotal || !okTotal->isNumber() || okTotal->asUint() != ok) {
        if (err)
            *err = path + ": totals.ok disagrees with cell statuses";
        return false;
    }
    return true;
}

} // namespace tsoper::campaign
