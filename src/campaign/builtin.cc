#include "campaign/builtin.hh"

#include "workload/generators.hh"

namespace tsoper::campaign
{

const std::vector<BuiltinCampaign> &
builtinCampaigns()
{
    static const std::vector<BuiltinCampaign> campaigns = [] {
        std::vector<BuiltinCampaign> v;

        {
            // 2 engines x 2 light profiles at a tiny scale with the
            // audit on: the CI smoke grid (ctest `campaign_smoke`).
            BuiltinCampaign c;
            c.name = "mini";
            c.description =
                "2x2 smoke grid (tsoper/stw x dedup/blackscholes, "
                "scale 0.05, audited)";
            c.spec.name = "mini";
            c.spec.engines = {"tsoper", "stw"};
            c.spec.benches = {"dedup", "blackscholes"};
            c.spec.scales = {0.05};
            c.spec.seeds = {1};
            c.spec.check = true;
            c.spec.timeoutMs = 60000;
            v.push_back(std::move(c));
        }
        {
            // The Fig. 11 grid: every execution-time system (plus the
            // SLC baseline the figure normalizes to) over all 21
            // benchmarks.  Normalization happens in post-processing
            // from the JSON; the report stores raw cycles.
            BuiltinCampaign c;
            c.name = "fig11";
            c.description =
                "Fig. 11 sweep: baseline/hwrp/bsp/stw/tsoper x all "
                "21 benchmarks (raw cycles; normalize offline)";
            c.spec.name = "fig11";
            c.spec.engines = {"baseline", "hwrp", "bsp", "stw",
                              "tsoper"};
            c.spec.benches = benchmarkNames();
            c.spec.scales = {0.3};
            c.spec.seeds = {1};
            v.push_back(std::move(c));
        }
        {
            // Fig. 12 stepping stones, normalized to TSOPER offline.
            BuiltinCampaign c;
            c.name = "fig12";
            c.description =
                "Fig. 12 sweep: bsp/bsp-slc/bsp-slc-agb/tsoper x all "
                "21 benchmarks";
            c.spec.name = "fig12";
            c.spec.engines = {"bsp", "bsp-slc", "bsp-slc-agb",
                              "tsoper"};
            c.spec.benches = benchmarkNames();
            c.spec.scales = {0.3};
            c.spec.seeds = {1};
            v.push_back(std::move(c));
        }
        {
            // Fig. 13 measures the AG size distribution with the cap
            // lifted so the tail is visible (mirrors
            // bench/fig13_ag_size_hist.cc); the "ag.size" histogram
            // lands in each cell's stats.
            BuiltinCampaign c;
            c.name = "fig13";
            c.description =
                "Fig. 13 sweep: tsoper x all benchmarks with a "
                "512-line AG cap (ag.size histograms)";
            c.spec.name = "fig13";
            c.spec.engines = {"tsoper"};
            c.spec.benches = benchmarkNames();
            c.spec.scales = {0.3};
            c.spec.seeds = {1};
            c.spec.agMaxLines = 512;
            c.spec.agbSliceLines = 1024;
            v.push_back(std::move(c));
        }
        {
            // Systematic fault injection over the engines whose
            // durable state must audit clean at *any* instant.  bsp /
            // bsp-slc and hwrp are deliberately absent: our BSP model
            // only guarantees epoch-boundary durability (a mid-epoch
            // crash can expose a torn epoch) and HW-RP's SFR contract
            // has crash points the relaxed audit rejects — the
            // crash-matrix-full campaign exists to observe exactly
            // those windows.
            BuiltinCampaign c;
            c.name = "crash-matrix";
            c.description =
                "Fault injection: tsoper/stw/bsp-slc-agb x "
                "radix/dedup/ocean_cp x crash at 25/50/75%, audited "
                "(expect every cell ok)";
            c.spec.name = "crash-matrix";
            c.spec.engines = {"tsoper", "stw", "bsp-slc-agb"};
            c.spec.benches = {"radix", "dedup", "ocean_cp"};
            c.spec.scales = {0.1};
            c.spec.seeds = {1, 2};
            c.spec.crashFractions = {0.25, 0.5, 0.75};
            c.spec.check = true;
            c.spec.timeoutMs = 60000;
            v.push_back(std::move(c));
        }
        {
            BuiltinCampaign c;
            c.name = "crash-matrix-full";
            c.description =
                "Fault injection over every persistent engine incl. "
                "bsp/bsp-slc/hwrp (check-failed cells expected: they "
                "map the models' vulnerability windows)";
            c.spec.name = "crash-matrix-full";
            c.spec.engines = {"stw", "bsp", "bsp-slc", "bsp-slc-agb",
                              "hwrp", "tsoper"};
            c.spec.benches = {"radix", "dedup", "ocean_cp"};
            c.spec.scales = {0.1};
            c.spec.seeds = {1};
            c.spec.crashFractions = {0.1, 0.25, 0.5, 0.75, 0.9};
            c.spec.check = true;
            c.spec.timeoutMs = 60000;
            v.push_back(std::move(c));
        }
        return v;
    }();
    return campaigns;
}

const BuiltinCampaign *
findBuiltinCampaign(const std::string &name)
{
    for (const BuiltinCampaign &c : builtinCampaigns())
        if (c.name == name)
            return &c;
    return nullptr;
}

} // namespace tsoper::campaign
