/**
 * @file
 * Campaign report: the aggregated outcome of every cell, serialized
 * to a single JSON artifact (BENCH_campaign.json).
 *
 * Cells appear in spec-expansion order regardless of the order the
 * pool finished them, and everything derived from the simulation
 * (status, cycles, audit, stats) is deterministic given the spec —
 * only the "wall_ms"/"attempts" bookkeeping fields vary between runs.
 * See docs/campaigns.md for the schema.
 */

#ifndef TSOPER_CAMPAIGN_REPORT_HH
#define TSOPER_CAMPAIGN_REPORT_HH

#include <string>
#include <vector>

#include "campaign/run_request.hh"
#include "sim/json.hh"

namespace tsoper::campaign
{

/** One executed cell. */
struct CellReport
{
    RunRequest request;
    RunResult result;
    unsigned attempts = 1;  ///< 1 + retries actually taken.
    double wallMs = 0.0;    ///< Wall-clock of the final attempt.

    Json toJson() const;
};

struct CampaignReport
{
    std::string name;
    unsigned jobs = 1;
    double wallMs = 0.0; ///< End-to-end campaign wall-clock.
    std::vector<CellReport> cells; ///< Spec-expansion order.

    std::size_t count(RunStatus status) const;

    /** Every cell finished RunStatus::Ok. */
    bool allOk() const;

    /** One-line outcome: "54 cells: 52 ok, 1 check-failed, 1 timeout". */
    std::string summary() const;

    Json toJson() const;
};

/**
 * Write @p report.toJson() to @p path (pretty-printed, trailing
 * newline).  Returns false with a message in @p err on I/O failure.
 */
bool writeReportFile(const CampaignReport &report,
                     const std::string &path, std::string *err);

/**
 * Re-read a report artifact and verify it: parses as JSON, totals
 * match the cell list, and (when @p requireAllOk) no cell failed.
 * Used by `tsoper_campaign --verify-out` and the campaign_smoke test.
 */
bool verifyReportFile(const std::string &path, bool requireAllOk,
                      std::string *err);

} // namespace tsoper::campaign

#endif // TSOPER_CAMPAIGN_REPORT_HH
