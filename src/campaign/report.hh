/**
 * @file
 * Campaign report: the aggregated outcome of every cell, serialized
 * to a single JSON artifact (BENCH_campaign.json).
 *
 * Cells appear in spec-expansion order regardless of the order the
 * pool finished them, and everything derived from the simulation
 * (status, cycles, audit, stats) is deterministic given the spec —
 * only the "wall_ms"/"attempts" bookkeeping fields vary between runs.
 *
 * Cells whose transient failures (timeout/crashed) survived every
 * retry are *quarantined*: they keep their full detail but are
 * bucketed separately in totals() and summary() so a single sick cell
 * cannot poison a sweep's aggregates.  See docs/campaigns.md for the
 * schema and the journal format built from these records.
 */

#ifndef TSOPER_CAMPAIGN_REPORT_HH
#define TSOPER_CAMPAIGN_REPORT_HH

#include <string>
#include <vector>

#include "campaign/run_request.hh"
#include "sim/json.hh"

namespace tsoper::campaign
{

/** One attempt of one cell, kept for all attempts — flaky cells and
 *  backoff behaviour are only debuggable with the full history. */
struct AttemptRecord
{
    RunStatus status = RunStatus::BadRequest;
    double wallMs = 0.0;
    std::string detail;
};

/** One executed cell. */
struct CellReport
{
    RunRequest request;
    RunResult result;       ///< Outcome of the final attempt.
    unsigned attempts = 1;  ///< == attemptLog.size() when it is kept.
    double wallMs = 0.0;    ///< Wall-clock of the final attempt.

    /** Every attempt in order (status, wall-clock, detail). */
    std::vector<AttemptRecord> attemptLog;

    /** Transient failure survived all retries (see file comment). */
    bool quarantined = false;

    /** Reused from a resume journal rather than executed this run
     *  (runtime-only; deliberately not serialized so resumed reports
     *  stay byte-identical). */
    bool fromJournal = false;

    Json toJson() const;
};

/**
 * Rebuild a CellReport from its toJson() form — the journal's load
 * path.  Returns false with a message in @p err when @p j lacks a
 * valid id or status.
 */
bool cellReportFromJson(const Json &j, CellReport *out,
                        std::string *err);

struct CampaignReport
{
    std::string name;
    unsigned jobs = 1;
    double wallMs = 0.0; ///< End-to-end campaign wall-clock.
    std::vector<CellReport> cells; ///< Spec-expansion order.

    /** Attempt threads still detached when the campaign finished
     *  (in-process executor only; each one burns a core until the
     *  process exits — see RunnerOptions::isolation). */
    unsigned orphanedThreads = 0;

    /** Cells with this final status, quarantined cells excluded. */
    std::size_t count(RunStatus status) const;

    std::size_t quarantinedCount() const;

    /** Cells reused from the resume journal. */
    std::size_t resumedCount() const;

    /** Every cell finished RunStatus::Ok. */
    bool allOk() const;

    /** One-line outcome: "54 cells: 52 ok, 1 check-failed,
     *  1 quarantined; 1 orphaned attempt thread". */
    std::string summary() const;

    Json toJson() const;
};

/**
 * The report reduced to its deterministic content: toJson() minus the
 * fields that legitimately vary between runs of the same spec —
 * wall-clock ("wall_ms" everywhere), scheduling ("jobs",
 * "orphaned_threads") and retry bookkeeping ("attempts",
 * "attempt_log", "stderr_tail").  Two runs of one spec — local
 * thread-pool or distributed fabric, any worker count, any failover
 * history — must dump() byte-identical canonical forms; the net_smoke
 * test enforces exactly that.
 */
Json canonicalReportJson(const CampaignReport &report);

/**
 * Write @p report.toJson() to @p path (pretty-printed, trailing
 * newline).  Returns false with a message in @p err on I/O failure.
 */
bool writeReportFile(const CampaignReport &report,
                     const std::string &path, std::string *err);

/**
 * Re-read a report artifact and verify it: parses as JSON, totals
 * match the cell list, and (when @p requireAllOk) no cell failed.
 * Used by `tsoper_campaign --verify-out` and the campaign_smoke test.
 */
bool verifyReportFile(const std::string &path, bool requireAllOk,
                      std::string *err);

} // namespace tsoper::campaign

#endif // TSOPER_CAMPAIGN_REPORT_HH
