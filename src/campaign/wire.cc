#include "campaign/wire.hh"

namespace tsoper::campaign::wire
{

Json
hello(const std::string &worker, unsigned slots)
{
    Json j = Json::object();
    j.set("type", Json("hello"))
        .set("proto", Json(kProtoVersion))
        .set("worker", Json(worker))
        .set("slots", Json(slots));
    return j;
}

Json
helloAck(const std::string &campaign, unsigned heartbeatTimeoutMs)
{
    Json j = Json::object();
    j.set("type", Json("hello_ack"))
        .set("proto", Json(kProtoVersion))
        .set("campaign", Json(campaign))
        .set("heartbeat_timeout_ms", Json(heartbeatTimeoutMs));
    return j;
}

Json
lease(std::uint64_t leaseId, unsigned timeoutMs, unsigned retries,
      const RunRequest &cell)
{
    Json j = Json::object();
    j.set("type", Json("lease"))
        .set("lease", Json(leaseId))
        .set("timeout_ms", Json(timeoutMs))
        .set("retries", Json(retries))
        .set("cell", cell.toJson());
    return j;
}

Json
result(std::uint64_t leaseId, const CellReport &cell)
{
    Json j = Json::object();
    j.set("type", Json("result"))
        .set("lease", Json(leaseId))
        .set("cell", cell.toJson());
    return j;
}

Json
heartbeat(const std::vector<std::uint64_t> &activeLeases)
{
    Json active = Json::array();
    for (std::uint64_t id : activeLeases)
        active.push(Json(id));
    Json j = Json::object();
    j.set("type", Json("heartbeat")).set("active", std::move(active));
    return j;
}

Json
goodbye(const std::string &reason)
{
    Json j = Json::object();
    j.set("type", Json("goodbye")).set("reason", Json(reason));
    return j;
}

bool
parseMessage(const std::string &payload, Json *out, std::string *type)
{
    std::string err;
    if (!Json::parse(payload, out, &err) || !out->isObject())
        return false;
    const Json *t = out->find("type");
    if (!t || !t->isString())
        return false;
    *type = t->asString();
    return true;
}

std::uint64_t
uintField(const Json &j, const char *key, std::uint64_t fallback)
{
    const Json *v = j.find(key);
    return v && v->isNumber() ? v->asUint() : fallback;
}

std::string
stringField(const Json &j, const char *key)
{
    const Json *v = j.find(key);
    return v && v->isString() ? v->asString() : "";
}

} // namespace tsoper::campaign::wire
