/**
 * @file
 * Built-in campaigns: named, ready-to-run specs for the sweeps the
 * repo cares about — the paper's Fig. 11/12/13 grids, the crash-sweep
 * fault-injection matrices, and the tiny smoke grid CI runs.
 *
 * `tsoper_campaign --campaign=<name>` resolves names through this
 * table; docs/campaigns.md documents each campaign's intent.
 */

#ifndef TSOPER_CAMPAIGN_BUILTIN_HH
#define TSOPER_CAMPAIGN_BUILTIN_HH

#include <string>
#include <vector>

#include "campaign/spec.hh"

namespace tsoper::campaign
{

struct BuiltinCampaign
{
    std::string name;
    std::string description;
    CampaignSpec spec;
};

/** All built-in campaigns, in documentation order. */
const std::vector<BuiltinCampaign> &builtinCampaigns();

/** Lookup by name; nullptr if unknown. */
const BuiltinCampaign *findBuiltinCampaign(const std::string &name);

} // namespace tsoper::campaign

#endif // TSOPER_CAMPAIGN_BUILTIN_HH
