#include "campaign/run_request.hh"

#include <exception>

#include "core/recovery.hh"
#include "core/system.hh"
#include "sim/stats_json.hh"
#include "sim/trace_sink.hh"
#include "sim/watchdog.hh"
#include "workload/generators.hh"
#include "workload/trace_io.hh"

namespace tsoper::campaign
{

const char *
toString(RunStatus status)
{
    switch (status) {
      case RunStatus::Ok:          return "ok";
      case RunStatus::CheckFailed: return "check-failed";
      case RunStatus::Timeout:     return "timeout";
      case RunStatus::Crashed:     return "crashed";
      case RunStatus::BadRequest:  return "bad-request";
      case RunStatus::Hung:        return "hung";
    }
    return "?";
}

const std::vector<RunStatus> &
allRunStatuses()
{
    static const std::vector<RunStatus> all{
        RunStatus::Ok,      RunStatus::CheckFailed, RunStatus::Timeout,
        RunStatus::Crashed, RunStatus::Hung,        RunStatus::BadRequest};
    return all;
}

bool
runStatusFromName(const std::string &name, RunStatus *out)
{
    for (RunStatus s : allRunStatuses()) {
        if (name == toString(s)) {
            *out = s;
            return true;
        }
    }
    return false;
}

Json
RunRequest::toJson() const
{
    Json j = Json::object();
    j.set("id", Json(id))
        .set("engine", Json(engine))
        .set("bench", Json(bench))
        .set("scale", Json(scale))
        .set("seed", Json(seed))
        .set("cores", Json(cores));
    if (!traceFile.empty())
        j.set("trace", Json(traceFile));
    if (agMaxLines)
        j.set("ag_max_lines", Json(agMaxLines));
    if (agbSliceLines)
        j.set("agb_slice_lines", Json(agbSliceLines));
    // Only when set, so journals written before the sharded kernel
    // still round-trip equal.
    if (threads)
        j.set("threads", Json(threads));
    if (crashAt > 0.0)
        j.set("crash_at", Json(crashAt));
    j.set("check", Json(check));
    // Trace fields only appear when set, so journals written before the
    // tracing layer still round-trip equal.
    if (!traceCategories.empty())
        j.set("trace_categories", Json(traceCategories));
    if (!traceOut.empty())
        j.set("trace_out", Json(traceOut));
    if (auditPersists)
        j.set("audit_persists", Json(true));
    if (!auditFault.empty())
        j.set("audit_fault", Json(auditFault));
    if (flightRecorder)
        j.set("flight_recorder", Json(flightRecorder));
    j.set("max_cycles", Json(maxCycles));
    return j;
}

RunRequest
runRequestFromJson(const Json &j)
{
    RunRequest r;
    if (const Json *v = j.find("id"); v && v->isString())
        r.id = v->asString();
    if (const Json *v = j.find("engine"); v && v->isString())
        r.engine = v->asString();
    if (const Json *v = j.find("bench"); v && v->isString())
        r.bench = v->asString();
    if (const Json *v = j.find("trace"); v && v->isString())
        r.traceFile = v->asString();
    if (const Json *v = j.find("scale"); v && v->isNumber())
        r.scale = v->asDouble();
    if (const Json *v = j.find("seed"); v && v->isNumber())
        r.seed = v->asUint();
    if (const Json *v = j.find("cores"); v && v->isNumber())
        r.cores = static_cast<unsigned>(v->asUint());
    if (const Json *v = j.find("ag_max_lines"); v && v->isNumber())
        r.agMaxLines = static_cast<unsigned>(v->asUint());
    if (const Json *v = j.find("agb_slice_lines"); v && v->isNumber())
        r.agbSliceLines = static_cast<unsigned>(v->asUint());
    if (const Json *v = j.find("threads"); v && v->isNumber())
        r.threads = static_cast<unsigned>(v->asUint());
    if (const Json *v = j.find("crash_at"); v && v->isNumber())
        r.crashAt = v->asDouble();
    if (const Json *v = j.find("check"); v && v->isBool())
        r.check = v->asBool();
    if (const Json *v = j.find("trace_categories"); v && v->isString())
        r.traceCategories = v->asString();
    if (const Json *v = j.find("trace_out"); v && v->isString())
        r.traceOut = v->asString();
    if (const Json *v = j.find("audit_persists"); v && v->isBool())
        r.auditPersists = v->asBool();
    if (const Json *v = j.find("audit_fault"); v && v->isString())
        r.auditFault = v->asString();
    if (const Json *v = j.find("flight_recorder"); v && v->isNumber())
        r.flightRecorder = static_cast<unsigned>(v->asUint());
    if (const Json *v = j.find("max_cycles"); v && v->isNumber())
        r.maxCycles = v->asUint();
    return r;
}

Json
runResultToJson(const RunResult &res)
{
    Json j = Json::object();
    j.set("status", Json(toString(res.status)));
    if (!res.detail.empty())
        j.set("detail", Json(res.detail));
    j.set("cycles", Json(res.cycles))
        .set("drain_cycles", Json(res.drainCycles));
    if (res.crashCycle)
        j.set("crash_cycle", Json(res.crashCycle));
    j.set("ops", Json(res.ops)).set("stores", Json(res.stores));
    if (!res.recoverySummary.empty())
        j.set("recovery_summary", Json(res.recoverySummary));
    if (res.audited) {
        Json audit = Json::object();
        audit.set("durable_lines", Json(res.durableLines))
            .set("durable_words", Json(res.durableWords))
            .set("buffer_recovered_lines", Json(res.bufferRecoveredLines))
            .set("required_stores", Json(res.requiredStores));
        j.set("audit", std::move(audit));
    }
    if (res.persistAudited) {
        Json audit = Json::object();
        audit.set("ok", Json(res.persistAuditOk));
        if (!res.persistAuditDetail.empty())
            audit.set("detail", Json(res.persistAuditDetail));
        audit.set("commits", Json(res.persistCommits))
            .set("edges", Json(res.persistEdges))
            .set("groups", Json(res.persistGroups));
        j.set("persist_audit", std::move(audit));
    }
    if (res.exitCode != -1)
        j.set("exit_code", Json(res.exitCode));
    if (!res.signalName.empty())
        j.set("signal", Json(res.signalName));
    if (!res.stderrTail.empty())
        j.set("stderr_tail", Json(res.stderrTail));
    j.set("stats", res.stats);
    return j;
}

bool
runResultFromJson(const Json &j, RunResult *out, std::string *err)
{
    if (!j.isObject()) {
        if (err)
            *err = "result document is not an object";
        return false;
    }
    const Json *status = j.find("status");
    if (!status || !status->isString() ||
        !runStatusFromName(status->asString(), &out->status)) {
        if (err)
            *err = "result document has no valid status";
        return false;
    }
    if (const Json *v = j.find("detail"); v && v->isString())
        out->detail = v->asString();
    if (const Json *v = j.find("cycles"); v && v->isNumber())
        out->cycles = v->asUint();
    if (const Json *v = j.find("drain_cycles"); v && v->isNumber())
        out->drainCycles = v->asUint();
    if (const Json *v = j.find("crash_cycle"); v && v->isNumber())
        out->crashCycle = v->asUint();
    if (const Json *v = j.find("ops"); v && v->isNumber())
        out->ops = v->asUint();
    if (const Json *v = j.find("stores"); v && v->isNumber())
        out->stores = v->asUint();
    if (const Json *v = j.find("recovery_summary"); v && v->isString())
        out->recoverySummary = v->asString();
    if (const Json *audit = j.find("audit"); audit && audit->isObject()) {
        out->audited = true;
        if (const Json *v = audit->find("durable_lines");
            v && v->isNumber())
            out->durableLines = v->asUint();
        if (const Json *v = audit->find("durable_words");
            v && v->isNumber())
            out->durableWords = v->asUint();
        if (const Json *v = audit->find("buffer_recovered_lines");
            v && v->isNumber())
            out->bufferRecoveredLines = v->asUint();
        if (const Json *v = audit->find("required_stores");
            v && v->isNumber())
            out->requiredStores = v->asUint();
    }
    if (const Json *audit = j.find("persist_audit");
        audit && audit->isObject()) {
        out->persistAudited = true;
        if (const Json *v = audit->find("ok"); v && v->isBool())
            out->persistAuditOk = v->asBool();
        if (const Json *v = audit->find("detail"); v && v->isString())
            out->persistAuditDetail = v->asString();
        if (const Json *v = audit->find("commits"); v && v->isNumber())
            out->persistCommits = v->asUint();
        if (const Json *v = audit->find("edges"); v && v->isNumber())
            out->persistEdges = v->asUint();
        if (const Json *v = audit->find("groups"); v && v->isNumber())
            out->persistGroups = v->asUint();
    }
    if (const Json *v = j.find("exit_code"); v && v->isNumber())
        out->exitCode = static_cast<int>(v->asInt());
    if (const Json *v = j.find("signal"); v && v->isString())
        out->signalName = v->asString();
    if (const Json *v = j.find("stderr_tail"); v && v->isString())
        out->stderrTail = v->asString();
    if (const Json *v = j.find("stats"))
        out->stats = *v;
    return true;
}

bool
resolveConfig(const RunRequest &r, SystemConfig *cfg, std::string *err)
{
    EngineKind engine;
    ProtocolKind protocol;
    if (!engineFromName(r.engine, &engine, &protocol)) {
        if (err)
            *err = "unknown engine: " + r.engine;
        return false;
    }
    *cfg = makeConfig(engine);
    cfg->protocol = protocol; // only differs for baseline-mesi
    cfg->numCores = r.cores;
    if (r.cores > 8) {
        cfg->meshCols = 6;
        cfg->meshRows = (r.cores + cfg->llcBanks + 5) / 6;
    }
    if (r.agMaxLines)
        cfg->agMaxLines = r.agMaxLines;
    if (r.agbSliceLines)
        cfg->agbSliceLines = r.agbSliceLines;
    cfg->recordStores = r.check;
    cfg->seed = r.seed;
    cfg->threads = r.threads ? r.threads : 1;
    return true;
}

namespace
{

void
fillAudit(RunResult *res, const RecoveryReport &report)
{
    res->recoverySummary = report.summary();
    res->audited = report.audited;
    res->durableLines = report.durableLines;
    res->durableWords = report.durableWords;
    res->bufferRecoveredLines = report.bufferRecoveredLines;
    res->requiredStores = report.consistency.requiredStores;
    if (report.audited && !report.consistency.ok) {
        res->status = RunStatus::CheckFailed;
        res->detail = report.consistency.detail;
    }
}

} // namespace

RunResult
runOne(const RunRequest &r, const RunHooks &hooks)
{
    RunResult res;
    SystemConfig cfg;
    if (!resolveConfig(r, &cfg, &res.detail))
        return res; // BadRequest: unknown engine

    if (r.traceFile.empty() && !findProfile(r.bench)) {
        res.detail = "unknown benchmark: " + r.bench;
        return res;
    }

    Workload w;
    try {
        w = r.traceFile.empty()
                ? generateByName(r.bench, cfg.numCores, r.seed, r.scale)
                : loadWorkloadFile(r.traceFile);
    } catch (const std::exception &e) {
        res.detail = e.what(); // BadRequest: workload did not build
        return res;
    }
    std::string error;
    if (!validateWorkload(w, &error)) {
        res.detail = "invalid workload: " + error;
        return res;
    }
    res.ops = w.totalOps();
    res.stores = w.totalStores();

    trace::TraceOptions topt;
    topt.categories = r.traceCategories;
    topt.perfettoPath = r.traceOut;
    topt.auditPersists = r.auditPersists;
    topt.auditFault = r.auditFault;
    topt.flightRecorderDepth = r.flightRecorder;
    topt.faultSeed = r.seed;
    // Only TSOPER and STW persist each core's groups strictly in
    // creation order; BSP skips empty epochs and HW-RP interleaves
    // spontaneous persists, so they get the order-graph checks only.
    topt.strictCoreFifo = cfg.engine == EngineKind::Tsoper ||
                          cfg.engine == EngineKind::Stw;

    // Started just before the measured System is built (crash requests
    // run an untraced timing run first whose restarted group ids would
    // otherwise pollute the audit log).
    std::unique_ptr<trace::TraceSession> session;
    const auto startTrace = [&] {
        if (topt.any())
            session = std::make_unique<trace::TraceSession>(topt);
    };
    const auto finishTrace = [&] {
        if (!session)
            return;
        const trace::TraceSession::Outcome out = session->finish();
        if (out.audited) {
            res.persistAudited = true;
            res.persistAuditOk = out.audit.ok;
            res.persistAuditDetail = out.audit.detail;
            res.persistCommits = out.audit.commits;
            res.persistEdges = out.audit.edges;
            res.persistGroups = out.audit.groups;
            if (!out.audit.ok && res.status == RunStatus::Ok) {
                res.status = RunStatus::CheckFailed;
                res.detail = out.audit.detail;
            }
        }
        if (!out.perfettoError.empty() &&
            res.status == RunStatus::Ok) {
            res.status = RunStatus::Crashed;
            res.detail = out.perfettoError;
        }
    };

    try {
        const PersistModel model = cfg.engine == EngineKind::HwRp
                                       ? PersistModel::RelaxedSfr
                                       : PersistModel::StrictTso;

        if (r.crashAt > 0.0) {
            Cycle crashCycle = static_cast<Cycle>(r.crashAt);
            if (r.crashAt <= 1.0) {
                System timing(cfg, w);
                const Cycle full = timing.run(r.maxCycles);
                crashCycle = static_cast<Cycle>(
                    static_cast<double>(full) * r.crashAt);
                res.cycles = full;
                res.drainCycles =
                    timing.stats().get("sys.drain_cycles");
            }
            startTrace();
            System sys(cfg, w);
            sys.runUntilCrash(crashCycle);
            res.crashCycle = crashCycle;
            res.status = RunStatus::Ok;
            fillAudit(&res, recover(sys, model));
            // The checks are prefix-sound (groups the cold stop left
            // incomplete are skipped), so the audit applies to the
            // pre-crash persist stream as well.
            finishTrace();
            res.stats = statsToJson(sys.stats());
            if (hooks.onFinished)
                hooks.onFinished(sys);
            return res;
        }

        startTrace();
        System sys(cfg, w);
        res.cycles = sys.run(r.maxCycles);
        res.drainCycles = sys.stats().get("sys.drain_cycles");
        res.status = RunStatus::Ok;
        finishTrace();
        if (r.check)
            fillAudit(&res, recover(sys, model));
        res.stats = statsToJson(sys.stats());
        if (hooks.onFinished)
            hooks.onFinished(sys);
        return res;
    } catch (const HungError &e) {
        // The progress watchdog proved a livelock/deadlock; e.what()
        // carries the reason plus the machine-state dump.  Hung is a
        // deterministic verdict (same seed, same livelock), so the
        // runner does not retry it.
        res.status = RunStatus::Hung;
        res.detail = e.what();
        return res;
    } catch (const std::exception &e) {
        res.status = RunStatus::Crashed;
        res.detail = e.what();
        return res;
    }
}

} // namespace tsoper::campaign
