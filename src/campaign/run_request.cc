#include "campaign/run_request.hh"

#include <exception>

#include "core/recovery.hh"
#include "core/system.hh"
#include "sim/stats_json.hh"
#include "workload/generators.hh"
#include "workload/trace_io.hh"

namespace tsoper::campaign
{

const char *
toString(RunStatus status)
{
    switch (status) {
      case RunStatus::Ok:          return "ok";
      case RunStatus::CheckFailed: return "check-failed";
      case RunStatus::Timeout:     return "timeout";
      case RunStatus::Crashed:     return "crashed";
      case RunStatus::BadRequest:  return "bad-request";
    }
    return "?";
}

Json
RunRequest::toJson() const
{
    Json j = Json::object();
    j.set("id", Json(id))
        .set("engine", Json(engine))
        .set("bench", Json(bench))
        .set("scale", Json(scale))
        .set("seed", Json(seed))
        .set("cores", Json(cores));
    if (!traceFile.empty())
        j.set("trace", Json(traceFile));
    if (agMaxLines)
        j.set("ag_max_lines", Json(agMaxLines));
    if (agbSliceLines)
        j.set("agb_slice_lines", Json(agbSliceLines));
    if (crashAt > 0.0)
        j.set("crash_at", Json(crashAt));
    j.set("check", Json(check));
    return j;
}

bool
resolveConfig(const RunRequest &r, SystemConfig *cfg, std::string *err)
{
    EngineKind engine;
    ProtocolKind protocol;
    if (!engineFromName(r.engine, &engine, &protocol)) {
        if (err)
            *err = "unknown engine: " + r.engine;
        return false;
    }
    *cfg = makeConfig(engine);
    cfg->protocol = protocol; // only differs for baseline-mesi
    cfg->numCores = r.cores;
    if (r.cores > 8) {
        cfg->meshCols = 6;
        cfg->meshRows = (r.cores + cfg->llcBanks + 5) / 6;
    }
    if (r.agMaxLines)
        cfg->agMaxLines = r.agMaxLines;
    if (r.agbSliceLines)
        cfg->agbSliceLines = r.agbSliceLines;
    cfg->recordStores = r.check;
    cfg->seed = r.seed;
    return true;
}

namespace
{

void
fillAudit(RunResult *res, const RecoveryReport &report)
{
    res->recoverySummary = report.summary();
    res->audited = report.audited;
    res->durableLines = report.durableLines;
    res->durableWords = report.durableWords;
    res->bufferRecoveredLines = report.bufferRecoveredLines;
    res->requiredStores = report.consistency.requiredStores;
    if (report.audited && !report.consistency.ok) {
        res->status = RunStatus::CheckFailed;
        res->detail = report.consistency.detail;
    }
}

} // namespace

RunResult
runOne(const RunRequest &r, const RunHooks &hooks)
{
    RunResult res;
    SystemConfig cfg;
    if (!resolveConfig(r, &cfg, &res.detail))
        return res; // BadRequest: unknown engine

    if (r.traceFile.empty() && !findProfile(r.bench)) {
        res.detail = "unknown benchmark: " + r.bench;
        return res;
    }

    Workload w;
    try {
        w = r.traceFile.empty()
                ? generateByName(r.bench, cfg.numCores, r.seed, r.scale)
                : loadWorkloadFile(r.traceFile);
    } catch (const std::exception &e) {
        res.detail = e.what(); // BadRequest: workload did not build
        return res;
    }
    std::string error;
    if (!validateWorkload(w, &error)) {
        res.detail = "invalid workload: " + error;
        return res;
    }
    res.ops = w.totalOps();
    res.stores = w.totalStores();

    try {
        const PersistModel model = cfg.engine == EngineKind::HwRp
                                       ? PersistModel::RelaxedSfr
                                       : PersistModel::StrictTso;

        if (r.crashAt > 0.0) {
            Cycle crashCycle = static_cast<Cycle>(r.crashAt);
            if (r.crashAt <= 1.0) {
                System timing(cfg, w);
                const Cycle full = timing.run(r.maxCycles);
                crashCycle = static_cast<Cycle>(
                    static_cast<double>(full) * r.crashAt);
                res.cycles = full;
                res.drainCycles =
                    timing.stats().get("sys.drain_cycles");
            }
            System sys(cfg, w);
            sys.runUntilCrash(crashCycle);
            res.crashCycle = crashCycle;
            res.status = RunStatus::Ok;
            fillAudit(&res, recover(sys, model));
            res.stats = statsToJson(sys.stats());
            if (hooks.onFinished)
                hooks.onFinished(sys);
            return res;
        }

        System sys(cfg, w);
        res.cycles = sys.run(r.maxCycles);
        res.drainCycles = sys.stats().get("sys.drain_cycles");
        res.status = RunStatus::Ok;
        if (r.check)
            fillAudit(&res, recover(sys, model));
        res.stats = statsToJson(sys.stats());
        if (hooks.onFinished)
            hooks.onFinished(sys);
        return res;
    } catch (const std::exception &e) {
        res.status = RunStatus::Crashed;
        res.detail = e.what();
        return res;
    }
}

} // namespace tsoper::campaign
