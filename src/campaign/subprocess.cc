#include "campaign/subprocess.hh"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/debug.hh"

namespace tsoper::campaign
{

namespace
{

using Clock = std::chrono::steady_clock;

std::string
formatDouble(double v)
{
    // Shortest-ish round-trip formatting: the child must parse back
    // the identical double or the cell would silently change.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

const char *
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV: return "SIGSEGV";
      case SIGABRT: return "SIGABRT";
      case SIGKILL: return "SIGKILL";
      case SIGBUS:  return "SIGBUS";
      case SIGILL:  return "SIGILL";
      case SIGFPE:  return "SIGFPE";
      case SIGTERM: return "SIGTERM";
      case SIGINT:  return "SIGINT";
      default:      return nullptr;
    }
}

std::string
signalString(int sig)
{
    if (const char *name = signalName(sig))
        return name;
    return "signal " + std::to_string(sig);
}

/**
 * Keep only the printable tail of the child's stderr: control bytes
 * (except newline/tab) are replaced so a corrupted child cannot smear
 * escape sequences into the report, and everything before the last
 * @p cap bytes is dropped — the panic message and state dump land
 * last.
 */
std::string
redactTail(std::string raw, std::size_t cap)
{
    for (char &c : raw) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (u < 0x20 && c != '\n' && c != '\t')
            c = '.';
        else if (u == 0x7f)
            c = '.';
    }
    if (cap && raw.size() > cap)
        raw = "..." + raw.substr(raw.size() - cap);
    // Trim a trailing newline so the tail embeds cleanly in JSON.
    while (!raw.empty() && raw.back() == '\n')
        raw.pop_back();
    return raw;
}

std::string
uniqueResultPath()
{
    static std::atomic<unsigned> seq{0};
    const char *tmp = std::getenv("TMPDIR");
    std::string dir = tmp && *tmp ? tmp : "/tmp";
    return dir + "/tsoper_cell_" + std::to_string(::getpid()) + "_" +
           std::to_string(seq.fetch_add(1)) + ".json";
}

/** Map a tsoper_sim exit code (tools/tsoper_sim.cc's documented
 *  codes) to a RunStatus — the fallback classification when the
 *  child died before writing its result file. */
RunStatus
statusFromExitCode(int code, std::string *why)
{
    switch (code) {
      case 0: return RunStatus::Ok;
      case 1: return RunStatus::CheckFailed;
      case 2: *why = "usage error";            return RunStatus::BadRequest;
      case 3: *why = "unknown engine";         return RunStatus::BadRequest;
      case 4: *why = "unknown benchmark";      return RunStatus::BadRequest;
      case 5: *why = "invalid workload";       return RunStatus::BadRequest;
      case 6: *why = "simulation error";       return RunStatus::Crashed;
      case 7: *why = "progress watchdog";      return RunStatus::Hung;
      case 127: *why = "exec failed";          return RunStatus::Crashed;
      default:
        *why = "unexpected exit code " + std::to_string(code);
        return RunStatus::Crashed;
    }
}

} // namespace

std::vector<std::string>
requestToArgv(const RunRequest &r, const std::string &simBinary)
{
    std::vector<std::string> argv;
    argv.push_back(simBinary);
    argv.push_back("--engine=" + r.engine);
    if (!r.traceFile.empty())
        argv.push_back("--trace=" + r.traceFile);
    else
        argv.push_back("--bench=" + r.bench);
    argv.push_back("--scale=" + formatDouble(r.scale));
    argv.push_back("--seed=" + std::to_string(r.seed));
    argv.push_back("--cores=" + std::to_string(r.cores));
    if (r.agMaxLines)
        argv.push_back("--ag-max-lines=" + std::to_string(r.agMaxLines));
    if (r.agbSliceLines)
        argv.push_back("--agb-slice-lines=" +
                       std::to_string(r.agbSliceLines));
    // Always explicit: a cell must not inherit a parallel default from
    // the child's environment while the campaign runner already
    // saturates the machine with worker processes (docs/campaigns.md).
    argv.push_back("--threads=" + std::to_string(r.threads ? r.threads
                                                           : 1));
    if (r.crashAt > 0.0)
        argv.push_back("--crash-at=" + formatDouble(r.crashAt));
    if (r.check)
        argv.push_back("--check");
    if (!r.traceCategories.empty())
        argv.push_back("--trace-categories=" + r.traceCategories);
    if (!r.traceOut.empty())
        argv.push_back("--trace-out=" + r.traceOut);
    if (r.auditPersists)
        argv.push_back("--audit-persists");
    if (!r.auditFault.empty())
        argv.push_back("--audit-fault=" + r.auditFault);
    if (r.flightRecorder)
        argv.push_back("--flight-recorder=" +
                       std::to_string(r.flightRecorder));
    argv.push_back("--max-cycles=" + std::to_string(r.maxCycles));
    return argv;
}

std::string
defaultSimBinary()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "tsoper_sim";
    buf[n] = '\0';
    std::string path(buf);
    const std::size_t slash = path.rfind('/');
    if (slash == std::string::npos)
        return "tsoper_sim";
    return path.substr(0, slash + 1) + "tsoper_sim";
}

SubprocessOutcome
runSubprocess(const RunRequest &r, const SubprocessOptions &opt)
{
    SubprocessOutcome out;
    const Clock::time_point start = Clock::now();
    const auto elapsedMs = [&start] {
        return std::chrono::duration<double, std::milli>(Clock::now() -
                                                         start)
            .count();
    };
    const auto fail = [&](const std::string &why) {
        out.result.status = RunStatus::Crashed;
        out.result.detail = why;
        out.wallMs = elapsedMs();
        return out;
    };

    const std::string resultPath = uniqueResultPath();
    std::vector<std::string> argv = requestToArgv(
        r, opt.simBinary.empty() ? defaultSimBinary() : opt.simBinary);
    argv.push_back("--result-json=" + resultPath);
    if (opt.extraArgs) {
        std::vector<std::string> extra = opt.extraArgs(r);
        for (std::string &e : extra)
            argv.push_back(std::move(e));
    }

    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (std::string &a : argv)
        cargv.push_back(a.data());
    cargv.push_back(nullptr);

    // Resolved before fork: the child only setenv()s a ready string.
    const std::string debugFlags = debug::flagsCsv();

    int errPipe[2];
    if (::pipe(errPipe) != 0)
        return fail(std::string("pipe: ") + std::strerror(errno));

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(errPipe[0]);
        ::close(errPipe[1]);
        return fail(std::string("fork: ") + std::strerror(errno));
    }

    if (pid == 0) {
        // Child: cap memory, route stderr into the pipe, silence the
        // banner on stdout, become tsoper_sim.  Debug flags enabled in
        // this process follow the cell across the exec.
        if (!debugFlags.empty())
            ::setenv("TSOPER_DEBUG", debugFlags.c_str(), 1);
        if (opt.memLimitMb) {
            const rlim_t bytes =
                static_cast<rlim_t>(opt.memLimitMb) << 20;
            struct rlimit rl{bytes, bytes};
            ::setrlimit(RLIMIT_AS, &rl);
        }
        ::dup2(errPipe[1], STDERR_FILENO);
        ::close(errPipe[0]);
        ::close(errPipe[1]);
        const int devnull = ::open("/dev/null", O_WRONLY);
        if (devnull >= 0) {
            ::dup2(devnull, STDOUT_FILENO);
            ::close(devnull);
        }
        ::execv(cargv[0], cargv.data());
        std::fprintf(stderr, "exec %s: %s\n", cargv[0],
                     std::strerror(errno));
        ::_exit(127);
    }

    // Parent: drain stderr while polling for exit; SIGKILL + blocking
    // reap on timeout so no orphan survives this call.
    out.pid = pid;
    ::close(errPipe[1]);
    ::fcntl(errPipe[0], F_SETFL, O_NONBLOCK);

    std::string rawErr;
    const auto drainPipe = [&] {
        char buf[4096];
        for (;;) {
            const ssize_t got = ::read(errPipe[0], buf, sizeof(buf));
            if (got < 0 && errno == EINTR)
                continue; // a signal mid-read must not drop the tail
            if (got <= 0)
                break;
            rawErr.append(buf, static_cast<std::size_t>(got));
            // Bound memory: keep a generous window above the tail cap.
            const std::size_t keep = opt.stderrTailBytes * 4 + 4096;
            if (rawErr.size() > keep)
                rawErr.erase(0, rawErr.size() - keep);
        }
    };

    // Every waitpid below retries EINTR: a signal landing mid-wait
    // would otherwise leave wstatus garbage and the child unreaped,
    // and the campaign would misclassify the cell from stale bits.
    const auto reapNonBlocking = [&](int *status) {
        pid_t got;
        do {
            got = ::waitpid(pid, status, WNOHANG);
        } while (got < 0 && errno == EINTR);
        return got;
    };
    const auto reapBlocking = [&](int *status) {
        pid_t got;
        do {
            got = ::waitpid(pid, status, 0);
        } while (got < 0 && errno == EINTR);
        return got;
    };

    int wstatus = 0;
    bool exited = false;
    while (!exited) {
        struct pollfd pfd{errPipe[0], POLLIN, 0};
        ::poll(&pfd, 1, 5);
        drainPipe();
        const pid_t got = reapNonBlocking(&wstatus);
        if (got == pid) {
            exited = true;
        } else if (opt.timeout.count() > 0 &&
                   elapsedMs() >
                       static_cast<double>(opt.timeout.count())) {
            out.timedOut = true;
            ::kill(pid, SIGKILL);
            reapBlocking(&wstatus); // blocking reap: no orphan
            exited = true;
        }
    }
    drainPipe();
    ::close(errPipe[0]);
    out.wallMs = elapsedMs();

    RunResult &res = out.result;
    res.stderrTail = redactTail(std::move(rawErr), opt.stderrTailBytes);

    if (out.timedOut) {
        res.status = RunStatus::Timeout;
        res.detail = "exceeded " + std::to_string(opt.timeout.count()) +
                     " ms wall-clock budget; SIGKILLed pid " +
                     std::to_string(pid);
        res.signalName = "SIGKILL";
        ::unlink(resultPath.c_str());
        return out;
    }

    if (WIFSIGNALED(wstatus)) {
        const int sig = WTERMSIG(wstatus);
        res.status = RunStatus::Crashed;
        res.signalName = signalString(sig);
        res.detail = "child killed by " + res.signalName;
        if (!res.stderrTail.empty())
            res.detail += " (stderr tail captured)";
        ::unlink(resultPath.c_str());
        return out;
    }

    const int code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
    res.exitCode = code;

    // Prefer the child's own result document: it carries the detail,
    // audit numbers and full stats.  Fall back to the exit code when
    // the child died before writing it.
    std::ifstream is(resultPath);
    if (is) {
        std::ostringstream buf;
        buf << is.rdbuf();
        is.close();
        Json doc;
        RunResult parsed;
        std::string err;
        if (Json::parse(buf.str(), &doc, &err) &&
            runResultFromJson(doc, &parsed, &err)) {
            const std::string tail = std::move(res.stderrTail);
            const int exitCode = res.exitCode;
            res = std::move(parsed);
            res.stderrTail = tail;
            res.exitCode = exitCode;
            ::unlink(resultPath.c_str());
            return out;
        }
    }
    ::unlink(resultPath.c_str());

    std::string why;
    res.status = statusFromExitCode(code, &why);
    res.detail = "exit code " + std::to_string(code);
    if (!why.empty())
        res.detail += " (" + why + ")";
    if (res.status != RunStatus::Ok && !res.stderrTail.empty())
        res.detail += "; stderr: " + res.stderrTail;
    if (res.status == RunStatus::Ok) {
        // Exit 0 without a parseable result file still means the run
        // finished, but nothing can be aggregated — classify as
        // crashed so the sweep doesn't silently count an empty cell.
        res.status = RunStatus::Crashed;
        res.detail = "exit code 0 but no parseable result file";
    }
    return out;
}

} // namespace tsoper::campaign
