/**
 * @file
 * One simulation run as data: a RunRequest names everything a single
 * `tsoper_sim` invocation would configure (engine, workload, scale,
 * seed, knobs, optional crash injection), and runOne() executes it and
 * returns a RunResult with the outcome classification plus the full
 * statistics registry serialized to JSON.
 *
 * This is the library-level entry point factored out of
 * tools/tsoper_sim.cc so the CLI and the parallel campaign runner
 * drive the exact same code path.
 */

#ifndef TSOPER_CAMPAIGN_RUN_REQUEST_HH
#define TSOPER_CAMPAIGN_RUN_REQUEST_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/json.hh"
#include "sim/types.hh"

namespace tsoper
{

class System;

namespace campaign
{

/** Everything needed to reproduce one simulation run. */
struct RunRequest
{
    /** Stable cell identifier, e.g. "tsoper/radix/x0.1/s1/c0.5". */
    std::string id;

    std::string engine = "tsoper"; ///< CLI spelling (see engineNames()).
    std::string bench = "ocean_cp";
    std::string traceFile;         ///< Drive from a trace file instead.
    double scale = 1.0;
    std::uint64_t seed = 1;
    unsigned cores = 8;
    unsigned agMaxLines = 0;       ///< 0 = engine default.
    unsigned agbSliceLines = 0;    ///< 0 = engine default.
    /** Event-kernel worker threads; 0 = unset (defaults to 1 — never
     *  hardware_concurrency, so campaign cells nested under the
     *  parallel runner don't oversubscribe; docs/campaigns.md). */
    unsigned threads = 0;

    /** 0 = run to completion; (0, 1] = crash at that fraction of the
     *  full run (implies a prior timing run); > 1 = crash cycle. */
    double crashAt = 0.0;

    /** Record stores and audit the durable state after the run (the
     *  strict-TSO contract, or SFR for hwrp). */
    bool check = false;

    // --- Structured tracing (sim/trace.hh, docs/observability.md).
    // For fractional crashAt requests only the measured (crash) run is
    // traced, never the preliminary timing run.
    std::string traceCategories; ///< Trace-bus categories csv; "" = off.
    std::string traceOut;        ///< Perfetto trace_event JSON path.
    bool auditPersists = false;  ///< Persist-order audit after the run.
    std::string auditFault;      ///< "" or "reorder": corrupt the audit
                                 ///  log to prove the checker rejects it.
    unsigned flightRecorder = 0; ///< Flight-recorder depth (records).

    /** Simulated-cycle cap (deadlock backstop). */
    Cycle maxCycles = 4'000'000'000ull;

    /** Serialize to / from the campaign-report JSON cell header. */
    Json toJson() const;

    bool operator==(const RunRequest &o) const = default;
};

/**
 * Rebuild a RunRequest from the cell-header fields of @p j (the
 * inverse of toJson; unknown members are ignored, absent ones keep
 * their defaults).  Used by journal resume to prove a journaled cell
 * still matches the expanded spec before its result is reused.
 */
RunRequest runRequestFromJson(const Json &j);

enum class RunStatus
{
    Ok,          ///< Completed; audit (when requested) passed.
    CheckFailed, ///< Completed but the consistency audit failed.
    Timeout,     ///< Exceeded the campaign's wall-clock budget.
    Crashed,     ///< Simulator panic/fatal or unexpected exception.
    BadRequest,  ///< Unknown engine/bench or invalid workload.
    Hung,        ///< Progress watchdog proved a livelock/deadlock.
};

const char *toString(RunStatus status);

/** Parse a toString(RunStatus) spelling back; false if unknown. */
bool runStatusFromName(const std::string &name, RunStatus *out);

/** All statuses in reporting order (summary lines, totals). */
const std::vector<RunStatus> &allRunStatuses();

/** Outcome of one run; deterministic given the request. */
struct RunResult
{
    RunStatus status = RunStatus::BadRequest;
    std::string detail;   ///< Error / first violation, human-readable.

    Cycle cycles = 0;     ///< Finish cycle of the (timing) run.
    Cycle drainCycles = 0;
    Cycle crashCycle = 0; ///< Resolved crash cycle (crash runs only).
    std::uint64_t ops = 0;
    std::uint64_t stores = 0;

    // Recovery audit (crash runs and --check runs).
    /** RecoveryReport::summary() verbatim; empty when no recovery
     *  pass ran. */
    std::string recoverySummary;
    bool audited = false;
    std::uint64_t durableLines = 0;
    std::uint64_t durableWords = 0;
    std::uint64_t bufferRecoveredLines = 0;
    std::uint64_t requiredStores = 0;

    // Persist-order audit (--audit-persists; sim/trace_sink.hh).
    bool persistAudited = false;
    bool persistAuditOk = false;
    std::string persistAuditDetail; ///< First violation, if any.
    std::uint64_t persistCommits = 0;
    std::uint64_t persistEdges = 0;
    std::uint64_t persistGroups = 0;

    /** statsToJson() of the run's registry (null if the run never
     *  constructed a System). */
    Json stats;

    // Subprocess-execution facts (campaign/subprocess.hh); defaults
    // mean "ran in-process".
    int exitCode = -1;      ///< Child exit code; -1 = none/killed.
    std::string signalName; ///< "SIGSEGV" etc. when signal-killed.
    std::string stderrTail; ///< Redacted tail of the child's stderr.
};

/**
 * Serialize / parse the full RunResult (every field above, stats
 * included) — the subprocess executor's wire format: the child
 * (`tsoper_sim --result-json=F`) writes it, the parent reads it back,
 * so an isolated cell loses no fidelity versus an in-process one.
 */
Json runResultToJson(const RunResult &res);
bool runResultFromJson(const Json &j, RunResult *out, std::string *err);

/** Optional observation points into runOne. */
struct RunHooks
{
    /** Called with the live System after the run (and audit) finished,
     *  before it is torn down — the CLI uses this to dump stats. */
    std::function<void(System &)> onFinished;
};

/**
 * Resolve @p r into a validated SystemConfig.  Returns false (with a
 * message in @p err) for unknown engine names; benchmark resolution
 * happens in runOne since trace-driven requests have no profile.
 */
bool resolveConfig(const RunRequest &r, SystemConfig *cfg,
                   std::string *err);

/**
 * Execute @p r to completion and classify the outcome.  Never throws:
 * simulator panics and I/O failures come back as RunStatus::Crashed /
 * BadRequest with the message in RunResult::detail.
 */
RunResult runOne(const RunRequest &r, const RunHooks &hooks = {});

} // namespace campaign
} // namespace tsoper

#endif // TSOPER_CAMPAIGN_RUN_REQUEST_HH
