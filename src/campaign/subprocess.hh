/**
 * @file
 * Subprocess cell executor: hard isolation for crash campaigns.
 *
 * The in-process executor (runner.cc) is fast but fragile by design:
 * a cell that trips a simulator assert takes the whole sweep down,
 * and a hung cell can only be *detached*, leaking a thread that burns
 * a core until the campaign process exits.  This executor instead
 * fork/execs `tsoper_sim` per cell:
 *
 *  - the RunRequest round-trips through argv (requestToArgv) and the
 *    full RunResult — stats included — comes back through a JSON
 *    result file (`tsoper_sim --result-json=F`), so an isolated cell
 *    loses no fidelity versus an in-process one;
 *  - an optional RLIMIT_AS cap contains runaway memory growth;
 *  - a wall-clock timeout is enforced with SIGKILL plus a blocking
 *    waitpid, so a hung cell is reaped, never orphaned;
 *  - failures are captured structurally: exit code (mapped through
 *    tsoper_sim's documented codes), terminating signal name, and a
 *    redacted tail of the child's stderr.
 *
 * Select it with RunnerOptions::isolation = Isolation::Subprocess;
 * the in-process executor stays the default for tests and fast
 * sweeps.
 */

#ifndef TSOPER_CAMPAIGN_SUBPROCESS_HH
#define TSOPER_CAMPAIGN_SUBPROCESS_HH

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "campaign/run_request.hh"

namespace tsoper::campaign
{

struct SubprocessOptions
{
    /** Path to the tsoper_sim binary; empty = defaultSimBinary(). */
    std::string simBinary;

    /** Per-attempt wall-clock budget; <= 0 disables the timeout. */
    std::chrono::milliseconds timeout{120000};

    /** RLIMIT_AS cap for the child, MiB; 0 = unlimited.  Leave 0 in
     *  sanitizer builds: ASan reserves terabytes of address space. */
    std::size_t memLimitMb = 0;

    /** Bytes of child stderr retained (the *tail* — the panic message
     *  and backtrace land last). */
    std::size_t stderrTailBytes = 4096;

    /** Extra argv entries appended per spawn; the fault-injection
     *  hook tests use to hand `--selftest=segv` etc. to the child. */
    std::function<std::vector<std::string>(const RunRequest &)> extraArgs;
};

/** RunResult plus the process-level facts the executor observed. */
struct SubprocessOutcome
{
    RunResult result;
    int pid = -1;         ///< Child pid (reaped by the time we return).
    bool timedOut = false;
    double wallMs = 0.0;
};

/**
 * `tsoper_sim` argv for @p r (argv[0] = @p simBinary).  Pure and
 * complete: every field of @p r that affects the run is represented,
 * so child and parent would execute identical RunRequests.
 */
std::vector<std::string> requestToArgv(const RunRequest &r,
                                       const std::string &simBinary);

/**
 * The sibling `tsoper_sim` binary (same directory as the running
 * executable), or plain "tsoper_sim" (PATH lookup) if the executable
 * path cannot be resolved.
 */
std::string defaultSimBinary();

/**
 * Execute @p r in a child process.  Never throws; every failure mode
 * (spawn failure, signal death, timeout, rlimit kill, unparseable
 * result) comes back as a classified RunResult.  The child is always
 * reaped before returning — no orphan survives, timeout included.
 */
SubprocessOutcome runSubprocess(const RunRequest &r,
                                const SubprocessOptions &opt);

} // namespace tsoper::campaign

#endif // TSOPER_CAMPAIGN_SUBPROCESS_HH
