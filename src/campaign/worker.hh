/**
 * @file
 * Campaign worker: connects to a coordinator, executes leased cells on
 * a local thread pool, and streams results back.
 *
 * The worker is deliberately stateless across connections: every
 * (re)connect starts with a fresh `hello`, and the coordinator treats
 * it as a new worker.  That is what makes reconnection safe — any
 * lease the old connection held was re-queued when the coordinator
 * dropped it, and a result computed before the drop is still sent on
 * the new connection and merged idempotently by cell id (first result
 * wins on the coordinator).
 *
 * Liveness is the worker's job too: a heartbeat goes out every
 * heartbeatMs carrying the ids of every lease still in flight, which
 * lets the coordinator reconcile leases lost to dropped frames without
 * waiting for the full lease timeout.
 *
 * Connection loss triggers bounded reconnect with exponential backoff;
 * when the attempts are exhausted the worker gives up with
 * kExitConnectionLost so a supervising script can tell "campaign
 * finished" from "fabric unreachable".
 */

#ifndef TSOPER_CAMPAIGN_WORKER_HH
#define TSOPER_CAMPAIGN_WORKER_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "campaign/runner.hh"
#include "net/fault.hh"

namespace tsoper::campaign
{

/** runWorker exit codes (also the CLI's in worker mode). */
inline constexpr int kExitWorkerOk = 0;
inline constexpr int kExitConnectionLost = 5;
inline constexpr int kExitDiedOnPurpose = 6; ///< dieAfterResults hook.

struct WorkerOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    /** Name sent in hello; "" = "worker-<pid>". */
    std::string name;

    /** Concurrent cells (pool threads and advertised lease slots). */
    unsigned jobs = 1;

    unsigned heartbeatMs = 2'000;

    /** Reconnect policy: exponential backoff from base to max, giving
     *  up after this many *consecutive* failed connect attempts. */
    unsigned connectAttempts = 5;
    unsigned backoffBaseMs = 250;
    unsigned backoffMaxMs = 5'000;

    /** Execution policy template for leased cells.  timeout/retries
     *  are overridden per lease by what the coordinator sends;
     *  journal/resumeFrom/progress are ignored (the coordinator owns
     *  the journal); isolation/subprocess/cellFn pass through. */
    RunnerOptions runner;

    /** Worker-side deterministic wire faults (tests). */
    net::WireFault fault;

    /** Test hook: after sending this many results, abruptly close the
     *  connection (no goodbye) and exit kExitDiedOnPurpose — a
     *  deterministic stand-in for SIGKILL mid-campaign.  0 = off. */
    std::uint64_t dieAfterResults = 0;

    /** Stream for per-cell progress lines; nullptr = silent. */
    std::ostream *progress = nullptr;
};

struct WorkerStats
{
    std::uint64_t leasesAccepted = 0;
    std::uint64_t resultsSent = 0;
    unsigned reconnects = 0;
    std::uint64_t faultsApplied = 0;

    std::string summary() const;
};

/**
 * Run the worker loop until the coordinator says goodbye (campaign
 * complete), the connection is lost past the reconnect budget, or the
 * dieAfterResults hook fires.  Returns one of the kExit* codes.
 */
int runWorker(const WorkerOptions &opt, WorkerStats *stats = nullptr);

} // namespace tsoper::campaign

#endif // TSOPER_CAMPAIGN_WORKER_HH
