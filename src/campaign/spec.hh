/**
 * @file
 * Campaign specification: the grid a campaign sweeps.
 *
 * A spec is the cartesian product
 *
 *   engines x benches x scales x seeds x crash-fractions
 *
 * plus shared knobs (cores, AG/AGB sizes, check, timeout).  expand()
 * turns it into a flat, deterministically ordered list of RunRequest
 * manifests — same spec, same list, always — which is what makes
 * campaign reports diffable across runs and machines.
 *
 * Specs come from three places: built-in campaigns (builtin.hh), CLI
 * matrix flags (tools/tsoper_campaign.cc), or a small text format:
 *
 *   # comment
 *   name            = nightly
 *   engines         = tsoper, stw        # or "all"
 *   benches         = radix, dedup      # or "all"
 *   scales          = 0.1, 0.5
 *   seeds           = 1, 2, 3
 *   crash-fractions = 0.25, 0.5, 0.75   # omit for plain runs
 *   check           = true
 *   cores           = 8
 *   timeout-ms      = 60000
 */

#ifndef TSOPER_CAMPAIGN_SPEC_HH
#define TSOPER_CAMPAIGN_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/run_request.hh"

namespace tsoper::campaign
{

struct CampaignSpec
{
    std::string name = "campaign";
    std::vector<std::string> engines{"tsoper"};
    std::vector<std::string> benches{"ocean_cp"};
    std::vector<double> scales{1.0};
    std::vector<std::uint64_t> seeds{1};
    /** Crash fractions in (0, 1]; empty = run every cell to
     *  completion instead of injecting crashes. */
    std::vector<double> crashFractions;
    unsigned cores = 8;
    unsigned agMaxLines = 0;
    unsigned agbSliceLines = 0;
    /** Event-kernel threads per cell; 0 = sequential.  Multiply by
     *  --jobs with care: see docs/campaigns.md "Nested parallelism". */
    unsigned threads = 0;
    bool check = false;
    unsigned timeoutMs = 120000; ///< Per-cell wall-clock budget.
    unsigned retries = 1;        ///< Extra attempts after timeout/crash.

    /** Cells expand() will produce (product of the axis sizes). */
    std::size_t cellCount() const;
};

/**
 * Expand @p spec into run manifests, ordered engine-major then bench,
 * scale, seed, crash fraction.  Cell ids are stable and unique:
 * "<engine>/<bench>/x<scale>/s<seed>[/c<fraction>]".
 */
std::vector<RunRequest> expand(const CampaignSpec &spec);

/**
 * Check @p spec names only known engines/benchmarks and sane numeric
 * ranges.  Returns an empty string when valid, else the first
 * problem.
 */
std::string validateSpec(const CampaignSpec &spec);

/**
 * Parse the key = value text format above into @p out (starting from
 * a default-constructed spec).  Returns false with a message in
 * @p err (including the line number) on malformed input.  Does not
 * validate names — call validateSpec() after.
 */
bool parseSpecText(const std::string &text, CampaignSpec *out,
                   std::string *err);

/** parseSpecText over the contents of @p path. */
bool loadSpecFile(const std::string &path, CampaignSpec *out,
                  std::string *err);

} // namespace tsoper::campaign

#endif // TSOPER_CAMPAIGN_SPEC_HH
