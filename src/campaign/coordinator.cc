#include "campaign/coordinator.hh"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_map>

#include <poll.h>

#include "campaign/wire.hh"
#include "net/peer.hh"
#include "net/socket.hh"

namespace tsoper::campaign
{

using net::monotonicMs;

std::string
CoordinatorStats::summary() const
{
    std::ostringstream os;
    os << "distributed: " << workersSeen << " worker"
       << (workersSeen == 1 ? "" : "s") << " (peak " << peakWorkers
       << "), " << deadWorkers << " dead, " << leasesGranted
       << " leases (" << leasesReassigned << " reassigned, "
       << stragglerLeases << " straggler), " << duplicateResults
       << " duplicate results discarded";
    if (droppedPeers)
        os << ", " << droppedPeers << " peers dropped for protocol "
           << "violations";
    if (faultsApplied)
        os << "; net-fault applied " << faultsApplied << " times";
    if (usedLocalFallback)
        os << "; degraded to local runner";
    return os.str();
}

struct Coordinator::Impl
{
    struct Lease
    {
        std::uint64_t id = 0;
        std::size_t cell = 0;
        int peerFd = -1;
        std::int64_t grantedAt = 0;
    };

    struct PeerState
    {
        net::Peer peer;
        bool registered = false;
        bool closeAfterFlush = false;
        std::string name;
        unsigned slots = 1;
        std::int64_t lastSeen = 0;
        std::set<std::uint64_t> leases; ///< Live leases held here.
    };

    struct CellState
    {
        bool done = false;
        bool queued = false;     ///< Currently in the pending deque.
        unsigned outstanding = 0; ///< Live leases for this cell.
    };

    CoordinatorOptions opt;
    CoordinatorStats stats;
    net::Fd listenFd;
    std::uint16_t boundPort = 0;

    // Per-run state (run() is single-shot).
    const std::vector<RunRequest> *cells = nullptr;
    CampaignReport *report = nullptr;
    std::vector<CellState> cellState;
    std::unordered_map<std::string, std::size_t> idToIndex;
    std::deque<std::size_t> pending;
    std::map<int, PeerState> peers;
    std::map<std::uint64_t, Lease> leases;
    std::uint64_t nextLeaseId = 1;
    std::uint64_t connSeq = 0; ///< Accepted-connection counter.
    std::size_t doneCount = 0;
    std::size_t wireResults = 0;
    std::int64_t noWorkerSince = 0;
    unsigned leaseTimeoutMs = 0;

    explicit Impl(CoordinatorOptions o) : opt(std::move(o)) {}

    unsigned
    registeredCount() const
    {
        unsigned n = 0;
        for (const auto &[fd, ps] : peers)
            if (ps.registered && !ps.closeAfterFlush)
                ++n;
        return n;
    }

    void
    journalAux(Json record)
    {
        if (opt.runner.journal)
            opt.runner.journal->appendAux(record);
    }

    void
    progressLine(const CellReport &cell, const std::string &via)
    {
        if (!opt.runner.progress)
            return;
        char head[64];
        std::snprintf(head, sizeof(head), "[%3zu/%zu] %-12s", doneCount,
                      cells->size(),
                      cell.fromJournal ? "resumed"
                                       : toString(cell.result.status));
        *opt.runner.progress << head << " " << cell.request.id << "  ("
                             << via << ")\n"
                             << std::flush;
    }

    /** Merge @p cell as the final result of cell @p idx. */
    void
    markDone(std::size_t idx, CellReport cell, bool fromWire,
             const std::string &via)
    {
        CellState &cs = cellState[idx];
        cs.done = true;
        ++doneCount;
        if (fromWire && opt.runner.journal)
            opt.runner.journal->append(cell);
        report->cells[idx] = std::move(cell);
        progressLine(report->cells[idx], via);
        if (fromWire) {
            ++wireResults;
            if (opt.onResult)
                opt.onResult(wireResults);
        }
    }

    /** Retire lease @p id; optionally re-queue its cell. */
    void
    releaseLease(std::uint64_t id, bool requeue, bool front)
    {
        const auto it = leases.find(id);
        if (it == leases.end())
            return;
        const Lease lease = it->second;
        leases.erase(it);
        if (const auto pit = peers.find(lease.peerFd);
            pit != peers.end())
            pit->second.leases.erase(id);
        CellState &cs = cellState[lease.cell];
        if (cs.outstanding)
            --cs.outstanding;
        if (requeue && !cs.done && !cs.queued) {
            if (front)
                pending.push_front(lease.cell);
            else
                pending.push_back(lease.cell);
            cs.queued = true;
        }
    }

    /** Drop a peer, re-queueing every lease it held.  Dead-worker
     *  cells go to the *front* of the queue so failover is prompt. */
    void
    dropPeer(int fd, const std::string &why, bool dead, bool violation)
    {
        const auto it = peers.find(fd);
        if (it == peers.end())
            return;
        PeerState &ps = it->second;
        stats.faultsApplied += ps.peer.faultsApplied();
        const std::size_t held = ps.leases.size();
        while (!ps.leases.empty()) {
            releaseLease(*ps.leases.begin(), /*requeue=*/true,
                         /*front=*/true);
            ++stats.leasesReassigned;
        }
        if (ps.registered && dead)
            ++stats.deadWorkers;
        if (violation)
            ++stats.droppedPeers;
        if (ps.registered) {
            journalAux(Json::object()
                           .set("event", Json("worker_gone"))
                           .set("worker", Json(ps.name))
                           .set("reason", Json(why)));
            if (opt.runner.progress)
                *opt.runner.progress
                    << "worker " << ps.name << " gone (" << why << "); "
                    << held << " lease" << (held == 1 ? "" : "s")
                    << " re-queued\n"
                    << std::flush;
        }
        peers.erase(it);
        if (registeredCount() == 0)
            noWorkerSince = monotonicMs();
    }

    bool
    peerHoldsCell(const PeerState &ps, std::size_t idx) const
    {
        for (std::uint64_t id : ps.leases) {
            const auto it = leases.find(id);
            if (it != leases.end() && it->second.cell == idx)
                return true;
        }
        return false;
    }

    void
    grant(int fd, PeerState &ps, std::size_t idx, std::int64_t now)
    {
        const std::uint64_t id = nextLeaseId++;
        leases[id] = Lease{id, idx, fd, now};
        ps.leases.insert(id);
        ++cellState[idx].outstanding;
        ++stats.leasesGranted;
        const unsigned timeoutMs = static_cast<unsigned>(
            std::max<std::int64_t>(0, opt.runner.timeout.count()));
        ps.peer.sendFrame(wire::lease(id, timeoutMs, opt.runner.retries,
                                      (*cells)[idx])
                              .dump(),
                          now);
        journalAux(Json::object()
                       .set("event", Json("lease"))
                       .set("lease", Json(id))
                       .set("id", Json((*cells)[idx].id))
                       .set("worker", Json(ps.name)));
    }

    void
    grantLeases(std::int64_t now)
    {
        for (auto &[fd, ps] : peers) {
            if (!ps.registered || ps.closeAfterFlush)
                continue;
            while (ps.leases.size() < ps.slots && !pending.empty()) {
                bool granted = false;
                const std::size_t scanMax = pending.size();
                for (std::size_t scan = 0; scan < scanMax; ++scan) {
                    const std::size_t idx = pending.front();
                    pending.pop_front();
                    cellState[idx].queued = false;
                    if (cellState[idx].done)
                        continue; // stale entry, drop it
                    if (peerHoldsCell(ps, idx)) {
                        // Duplicating a cell onto the worker already
                        // running it gains nothing; leave it for
                        // another worker.
                        pending.push_back(idx);
                        cellState[idx].queued = true;
                        continue;
                    }
                    grant(fd, ps, idx, now);
                    granted = true;
                    break;
                }
                if (!granted)
                    break;
            }
        }

        // Straggler policy: with nothing pending and capacity idle,
        // duplicate the oldest single-leased cell onto another worker.
        // First result wins; the loser is discarded as a duplicate.
        if (!pending.empty() || opt.stragglerMs == 0)
            return;
        for (auto &[fd, ps] : peers) {
            if (!ps.registered || ps.closeAfterFlush ||
                ps.leases.size() >= ps.slots)
                continue;
            const Lease *oldest = nullptr;
            for (const auto &[id, lease] : leases) {
                if (lease.peerFd == fd)
                    continue;
                const CellState &cs = cellState[lease.cell];
                if (cs.done || cs.outstanding != 1)
                    continue;
                if (now - lease.grantedAt <
                    static_cast<std::int64_t>(opt.stragglerMs))
                    continue;
                if (!oldest || lease.grantedAt < oldest->grantedAt)
                    oldest = &lease;
            }
            if (oldest) {
                ++stats.stragglerLeases;
                grant(fd, ps, oldest->cell, now);
            }
        }
    }

    /** Returns false when the peer must be dropped. */
    bool
    handleMessage(int fd, PeerState &ps, const Json &msg,
                  const std::string &type, std::int64_t now,
                  std::string *why)
    {
        ps.lastSeen = now;
        if (!ps.registered && type != "hello") {
            *why = "spoke before hello";
            return false;
        }
        if (type == "hello") {
            const std::uint64_t proto =
                wire::uintField(msg, "proto", 0);
            if (proto != static_cast<std::uint64_t>(
                             wire::kProtoVersion)) {
                ps.peer.sendFrame(
                    wire::goodbye("protocol version " +
                                  std::to_string(proto) +
                                  " != " +
                                  std::to_string(wire::kProtoVersion))
                        .dump(),
                    now);
                ps.closeAfterFlush = true;
                ++stats.droppedPeers;
                return true; // drop after the goodbye flushes
            }
            if (ps.registered)
                return true; // duplicate hello (dup fault): ignore
            ps.registered = true;
            ps.name = wire::stringField(msg, "worker");
            if (ps.name.empty())
                ps.name = "worker-fd" + std::to_string(fd);
            ps.slots = static_cast<unsigned>(std::clamp<std::uint64_t>(
                wire::uintField(msg, "slots", 1), 1, 64));
            ++stats.workersSeen;
            stats.peakWorkers =
                std::max(stats.peakWorkers, registeredCount());
            ps.peer.sendFrame(
                wire::helloAck(report->name, opt.heartbeatTimeoutMs)
                    .dump(),
                now);
            journalAux(Json::object()
                           .set("event", Json("worker"))
                           .set("worker", Json(ps.name))
                           .set("slots", Json(ps.slots)));
            return true;
        }
        if (type == "heartbeat") {
            // Reconcile: a lease the worker no longer lists was lost
            // in flight (dropped lease or dropped result frame) —
            // re-queue it now instead of waiting for expiry.
            std::set<std::uint64_t> active;
            if (const Json *arr = msg.find("active");
                arr && arr->isArray())
                for (std::size_t i = 0; i < arr->size(); ++i)
                    if (arr->at(i).isNumber())
                        active.insert(arr->at(i).asUint());
            const std::vector<std::uint64_t> held(ps.leases.begin(),
                                                  ps.leases.end());
            for (std::uint64_t id : held) {
                if (active.count(id))
                    continue;
                const auto it = leases.find(id);
                if (it == leases.end() ||
                    now - it->second.grantedAt <
                        static_cast<std::int64_t>(opt.reconcileGraceMs))
                    continue;
                releaseLease(id, /*requeue=*/true, /*front=*/false);
                ++stats.leasesReassigned;
            }
            return true;
        }
        if (type == "result") {
            const Json *cellJson = msg.find("cell");
            CellReport cell;
            std::string err;
            if (!cellJson || !cellJson->isObject() ||
                !cellReportFromJson(*cellJson, &cell, &err)) {
                *why = "unparseable result: " + err;
                return false;
            }
            // Retire the lease first so slot accounting is exact even
            // when the result itself is a discarded duplicate.
            releaseLease(wire::uintField(msg, "lease", 0),
                         /*requeue=*/false, /*front=*/false);
            const auto idxIt = idToIndex.find(cell.request.id);
            if (idxIt == idToIndex.end() ||
                cellState[idxIt->second].done) {
                ++stats.duplicateResults;
                return true;
            }
            if (!(cell.request == (*cells)[idxIt->second])) {
                *why = "result for mutated request " + cell.request.id;
                return false;
            }
            markDone(idxIt->second, std::move(cell), /*fromWire=*/true,
                     "worker " + ps.name);
            return true;
        }
        if (type == "goodbye") {
            *why = "worker said goodbye";
            return false;
        }
        *why = "unknown message type '" + type + "'";
        return false;
    }

    void
    localFallback(const std::string &name)
    {
        stats.usedLocalFallback = true;
        std::vector<RunRequest> remaining;
        for (std::size_t i = 0; i < cells->size(); ++i)
            if (!cellState[i].done)
                remaining.push_back((*cells)[i]);
        if (opt.runner.progress)
            *opt.runner.progress
                << "no workers for " << opt.graceMs
                << " ms; running remaining " << remaining.size()
                << " cell" << (remaining.size() == 1 ? "" : "s")
                << " on the local runner\n"
                << std::flush;
        RunnerOptions local = opt.runner;
        local.resumeFrom = nullptr; // resume was consumed up front
        const CampaignReport sub =
            runCampaign(name, remaining, local);
        for (const CellReport &cell : sub.cells) {
            const auto it = idToIndex.find(cell.request.id);
            if (it == idToIndex.end() || cellState[it->second].done)
                continue;
            cellState[it->second].done = true;
            ++doneCount;
            report->cells[it->second] = cell;
        }
    }

    void
    finish(std::int64_t now)
    {
        for (auto &[fd, ps] : peers)
            ps.peer.sendFrame(wire::goodbye("campaign complete").dump(),
                              now);
        // Best-effort flush so workers exit cleanly rather than on a
        // reset; half a second, then the sockets close regardless.
        const std::int64_t deadline = monotonicMs() + 500;
        while (monotonicMs() < deadline) {
            bool backlog = false;
            std::vector<struct pollfd> fds;
            for (auto &[fd, ps] : peers)
                if (ps.peer.sendBacklog() > 0) {
                    backlog = true;
                    fds.push_back({fd, POLLOUT, 0});
                }
            if (!backlog)
                break;
            ::poll(fds.data(), fds.size(), 50);
            std::vector<int> drops;
            for (auto &[fd, ps] : peers)
                if (!ps.peer.pumpSend(monotonicMs()))
                    drops.push_back(fd);
            for (int fd : drops)
                dropPeer(fd, "flush failed", /*dead=*/false,
                         /*violation=*/false);
        }
        while (!peers.empty())
            dropPeer(peers.begin()->first, "campaign complete",
                     /*dead=*/false, /*violation=*/false);
    }
};

Coordinator::Coordinator(CoordinatorOptions opt)
    : impl_(std::make_unique<Impl>(std::move(opt)))
{}

Coordinator::~Coordinator() = default;

bool
Coordinator::listen(std::string *err)
{
    impl_->listenFd =
        net::listenTcp(impl_->opt.port, &impl_->boundPort, err);
    return impl_->listenFd.valid();
}

std::uint16_t
Coordinator::port() const
{
    return impl_->boundPort;
}

const CoordinatorStats &
Coordinator::stats() const
{
    return impl_->stats;
}

CampaignReport
Coordinator::run(const std::string &name,
                 const std::vector<RunRequest> &cells)
{
    Impl &im = *impl_;
    CampaignReport report;
    report.name = name;
    report.cells.resize(cells.size());

    im.cells = &cells;
    im.report = &report;
    im.cellState.assign(cells.size(), Impl::CellState{});
    im.idToIndex.clear();
    for (std::size_t i = 0; i < cells.size(); ++i)
        im.idToIndex[cells[i].id] = i;

    // Lease budget: the worker-side policy (timeout x attempts plus
    // backoff) with margin for transfer and scheduling.  Only after
    // this does a still-running lease get duplicated elsewhere.
    const std::int64_t cellBudget = im.opt.runner.timeout.count() > 0
                                        ? im.opt.runner.timeout.count()
                                        : 600'000;
    im.leaseTimeoutMs =
        im.opt.leaseTimeoutMs
            ? im.opt.leaseTimeoutMs
            : static_cast<unsigned>(std::min<std::int64_t>(
                  cellBudget * (im.opt.runner.retries + 1) + 30'000,
                  86'400'000));

    const std::int64_t startMs = monotonicMs();

    // Resume: journaled cells short-circuit to done, exactly as the
    // local runner reuses them.
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (im.opt.runner.resumeFrom) {
            const auto it =
                im.opt.runner.resumeFrom->cells.find(cells[i].id);
            if (it != im.opt.runner.resumeFrom->cells.end() &&
                it->second.request == cells[i]) {
                CellReport cell = it->second;
                cell.fromJournal = true;
                im.markDone(i, std::move(cell), /*fromWire=*/false,
                            "journal");
                continue;
            }
        }
        im.pending.push_back(i);
        im.cellState[i].queued = true;
    }

    im.noWorkerSince = monotonicMs();
    while (im.doneCount < cells.size()) {
        const std::int64_t now = monotonicMs();

        if (im.opt.localFallback && im.registeredCount() == 0 &&
            now - im.noWorkerSince >=
                static_cast<std::int64_t>(im.opt.graceMs)) {
            im.localFallback(name);
            break;
        }

        std::vector<struct pollfd> fds;
        fds.push_back({im.listenFd.get(), POLLIN, 0});
        std::vector<int> order;
        for (auto &[fd, ps] : im.peers) {
            short events = POLLIN;
            if (ps.peer.wantWrite(now))
                events |= POLLOUT;
            fds.push_back({fd, events, 0});
            order.push_back(fd);
        }
        int rc;
        do {
            rc = ::poll(fds.data(), fds.size(), 50);
        } while (rc < 0 && errno == EINTR);

        const std::int64_t tick = monotonicMs();

        // New connections.
        if (fds[0].revents & POLLIN) {
            for (;;) {
                net::Fd conn = net::acceptTcp(im.listenFd.get());
                if (!conn.valid())
                    break;
                const int fd = conn.get();
                // Derive a per-connection seed: still deterministic
                // for a given run, but a reconnect does not replay the
                // exact fault sequence that killed the last connection
                // (same seed + same frames would livelock the fabric).
                // The guaranteed first-frame fault applies to the
                // run's first connection only, for the same reason.
                net::WireFault fault = im.opt.fault;
                fault.guaranteeFirst =
                    fault.guaranteeFirst && im.connSeq == 0;
                fault.seed += im.connSeq++;
                Impl::PeerState ps;
                ps.peer = net::Peer(std::move(conn), fault);
                ps.lastSeen = tick;
                im.peers.emplace(fd, std::move(ps));
            }
        }

        // Inbound traffic.
        std::vector<std::pair<int, std::string>> deadDrops;
        std::vector<std::pair<int, std::string>> violationDrops;
        for (std::size_t i = 1; i < fds.size(); ++i) {
            const int fd = fds[i].fd;
            const auto it = im.peers.find(fd);
            if (it == im.peers.end())
                continue;
            Impl::PeerState &ps = it->second;
            if (!(fds[i].revents & (POLLIN | POLLERR | POLLHUP)))
                continue;
            // Drain buffered frames even when the read hit EOF: a
            // dying worker's last result lands in the same wakeup as
            // its close, and losing it costs a pointless re-run.
            const bool recvOk = ps.peer.pumpRecv();
            std::string payload;
            bool drop = false;
            while (!drop && ps.peer.nextFrame(&payload) ==
                                net::FrameDecoder::Status::Frame) {
                Json msg;
                std::string type;
                std::string why;
                if (!wire::parseMessage(payload, &msg, &type)) {
                    violationDrops.push_back({fd, "malformed message"});
                    drop = true;
                } else if (!im.handleMessage(fd, ps, msg, type, tick,
                                             &why)) {
                    const bool violation =
                        type != "goodbye";
                    (violation ? violationDrops : deadDrops)
                        .push_back({fd, why});
                    drop = true;
                }
            }
            if (!drop && ps.peer.failed()) {
                violationDrops.push_back({fd, ps.peer.error()});
                drop = true;
            }
            if (!drop && !recvOk)
                deadDrops.push_back({fd, "connection lost"});
        }
        for (const auto &[fd, why] : deadDrops)
            im.dropPeer(fd, why, /*dead=*/why == "connection lost",
                        /*violation=*/false);
        for (const auto &[fd, why] : violationDrops)
            im.dropPeer(fd, why, /*dead=*/false, /*violation=*/true);

        // Liveness: heartbeat silence kills registered workers; a
        // connection that never completes hello gets the same budget.
        std::vector<std::pair<int, std::string>> silent;
        for (auto &[fd, ps] : im.peers)
            if (tick - ps.lastSeen >
                static_cast<std::int64_t>(im.opt.heartbeatTimeoutMs))
                silent.push_back(
                    {fd, ps.registered ? "heartbeat timeout"
                                       : "no hello"});
        for (const auto &[fd, why] : silent)
            im.dropPeer(fd, why, /*dead=*/true, /*violation=*/false);

        // Lease expiry: a hung cell on a live worker re-queues.
        std::vector<std::uint64_t> expired;
        for (const auto &[id, lease] : im.leases)
            if (tick - lease.grantedAt >
                static_cast<std::int64_t>(im.leaseTimeoutMs))
                expired.push_back(id);
        for (std::uint64_t id : expired) {
            im.releaseLease(id, /*requeue=*/true, /*front=*/false);
            ++im.stats.leasesReassigned;
        }

        im.grantLeases(tick);

        std::vector<int> sendDrops;
        for (auto &[fd, ps] : im.peers) {
            if (!ps.peer.pumpSend(tick)) {
                sendDrops.push_back(fd);
                continue;
            }
            if (ps.closeAfterFlush && ps.peer.sendBacklog() == 0)
                sendDrops.push_back(fd);
        }
        for (int fd : sendDrops)
            im.dropPeer(fd, "send failed or rejected", /*dead=*/false,
                        /*violation=*/false);
    }

    im.finish(monotonicMs());
    im.listenFd.reset();

    report.jobs = std::max(1u, im.stats.peakWorkers);
    report.wallMs = static_cast<double>(monotonicMs() - startMs);
    report.orphanedThreads = liveOrphanCount();
    return report;
}

} // namespace tsoper::campaign
