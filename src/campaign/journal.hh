/**
 * @file
 * Write-ahead campaign journal: resume an interrupted sweep where it
 * left off.
 *
 * A campaign's report is written once, at the end — so a crash of the
 * campaign process (or a ctrl-C, or a node reclaim) an hour into a
 * fig11 sweep used to lose every finished cell.  The journal fixes
 * that: each completed cell is appended *durably* (write + fsync) to
 * `journal.jsonl` next to the report as one compact JSON line, and
 * `tsoper_campaign --resume <dir>` reloads it and re-runs only the
 * cells that are missing.
 *
 * Format (`tsoper.campaign.journal/v1`):
 *
 *   {"format":"tsoper.campaign.journal/v1","campaign":"fig11"}
 *   {"id":"tsoper/radix/x0.1/s1", ... full CellReport JSON ...}
 *   {"id":"tsoper/dedup/x0.1/s1", ...}
 *
 * The first line is the header; every other line is exactly
 * CellReport::toJson() in compact form, so a resumed report is
 * byte-identical to an uninterrupted one for the journaled cells.  A
 * torn final line (the process died mid-append) is detected and
 * ignored on load, with a warning surfaced to the caller.  Cells are
 * matched by id AND by their full request header: if the spec changed
 * under the journal, the stale entry is re-run rather than silently
 * reused.
 *
 * The distributed coordinator additionally journals *aux* records —
 * lease grants and worker arrivals/departures — as lines carrying an
 * "event" member.  They share the v1 format (the loader skips them),
 * so a journal written by a coordinator resumes under a plain local
 * run and vice versa.
 */

#ifndef TSOPER_CAMPAIGN_JOURNAL_HH
#define TSOPER_CAMPAIGN_JOURNAL_HH

#include <mutex>
#include <string>
#include <unordered_map>

#include "campaign/report.hh"

namespace tsoper::campaign
{

/** The journal format tag written in the header line. */
inline constexpr const char *kJournalFormat =
    "tsoper.campaign.journal/v1";

/** Parsed journal contents, keyed by cell id (last entry wins). */
struct JournalIndex
{
    std::string campaign;
    std::unordered_map<std::string, CellReport> cells;
};

/**
 * Append-side handle.  Thread-safe: the pool's workers append from
 * completion context.  Every append is flushed and fsync'd before
 * returning — the write-ahead guarantee the resume path relies on.
 */
class CampaignJournal
{
  public:
    CampaignJournal() = default;
    ~CampaignJournal();

    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;

    /**
     * Open @p path for appending and write the header.  @p truncate
     * starts a fresh journal (normal runs); false continues an
     * existing one (--resume) and skips the header if the file
     * already has content.  Returns false with a message in @p err on
     * I/O failure.
     */
    bool open(const std::string &path, const std::string &campaign,
              bool truncate, std::string *err);

    /** Durably append one completed cell (no-op if not open). */
    void append(const CellReport &cell);

    /**
     * Durably append a coordinator aux record (lease grant, worker
     * event).  @p record must carry an "event" member — that is what
     * the loader keys the skip on; records without one are refused
     * here rather than corrupting the resume index.
     */
    void appendAux(const Json &record);

    void close();

    bool isOpen() const { return fd_ >= 0; }

  private:
    void writeLine(const std::string &line);

    std::mutex mutex_;
    int fd_ = -1;
};

/**
 * Load @p path into @p out.  Tolerates a torn trailing line (the
 * appender died mid-write) — when one is found it is ignored and a
 * one-line description is placed in @p warn (if non-null).  Skips
 * coordinator aux records (lines with an "event" member).  Fails on a
 * missing file, a bad header, a format-tag mismatch, or corruption
 * anywhere but the final line.
 */
bool loadJournal(const std::string &path, JournalIndex *out,
                 std::string *err, std::string *warn = nullptr);

/** The journal's location for a report written to @p reportPath:
 *  `journal.jsonl` in the same directory. */
std::string journalPathFor(const std::string &reportPath);

} // namespace tsoper::campaign

#endif // TSOPER_CAMPAIGN_JOURNAL_HH
