/**
 * @file
 * Campaign coordinator: leases cells to TCP workers, survives their
 * death, and merges their results into a standard CampaignReport.
 *
 * The coordinator is the distributed counterpart of runCampaign(): it
 * expands nothing and executes nothing itself — it owns the *ledger*.
 * Every cell is in exactly one of three states: pending (queued for
 * lease), leased (granted to >= 1 live worker), or done (result
 * merged, journaled).  The invariant the fabric guarantees is that
 * every cell ends done exactly once, no matter which workers die,
 * hang, reconnect or answer twice:
 *
 *  - liveness: workers heartbeat; one that goes quiet past the
 *    timeout is declared dead and its leases re-queued (re-execution
 *    is idempotent by construction — the same property the resume
 *    journal relies on);
 *  - a socket error, EOF, framing violation or malformed message
 *    drops the peer the same way — a confused peer cannot be trusted
 *    with leases;
 *  - lease expiry: a lease older than its budget is re-queued even if
 *    the worker still heartbeats (hung cell on a live worker);
 *  - heartbeats carry the worker's active lease ids, so a lease the
 *    worker no longer knows about (lost lease or lost result frame)
 *    is re-queued after a short grace instead of waiting for expiry;
 *  - stragglers: when the pending queue is empty and capacity is
 *    idle, the oldest single-leased in-flight cell is leased a second
 *    time to a different worker — first result wins, the loser is
 *    discarded as a duplicate;
 *  - graceful degradation: if no worker is connected for the grace
 *    period, the remaining cells run on the local thread-pool runner
 *    so a campaign never deadlocks on an empty fabric.
 *
 * Every lease grant and merged result flows through the existing
 * write-ahead journal, so `--resume` works across coordinator
 * restarts exactly as it does for local runs.
 */

#ifndef TSOPER_CAMPAIGN_COORDINATOR_HH
#define TSOPER_CAMPAIGN_COORDINATOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "campaign/runner.hh"
#include "net/fault.hh"

namespace tsoper::campaign
{

struct CoordinatorOptions
{
    /** TCP port to listen on; 0 = kernel-assigned (see port()). */
    std::uint16_t port = 0;

    /** Cell policy (timeout, retries, journal, resumeFrom, progress)
     *  plus the local-fallback runner's knobs.  Workers receive the
     *  timeout/retries with each lease so both execution paths apply
     *  one policy. */
    RunnerOptions runner;

    /** A worker silent for this long is dead; its leases re-queue. */
    unsigned heartbeatTimeoutMs = 10'000;

    /** Per-lease wall-clock budget before the cell is re-leased
     *  elsewhere; 0 = derived from timeout x (retries + 1) + margin. */
    unsigned leaseTimeoutMs = 0;

    /** Re-lease age for the straggler policy (tail cells duplicated
     *  onto idle workers); 0 disables duplication. */
    unsigned stragglerMs = 10'000;

    /** With no connected worker for this long, remaining cells run on
     *  the local thread-pool runner. */
    unsigned graceMs = 10'000;

    /** Master switch for the local-runner degradation path. */
    bool localFallback = true;

    /** Grace before a heartbeat that omits a lease id re-queues it
     *  (covers the lease/heartbeat crossing race). */
    unsigned reconcileGraceMs = 2'000;

    /** Coordinator-side deterministic wire faults (tests). */
    net::WireFault fault;

    /** Called after each result merged off the wire with the running
     *  count — the chaos-kill hook in tools/tsoper_campaign. */
    std::function<void(std::size_t resultsMerged)> onResult;
};

struct CoordinatorStats
{
    unsigned workersSeen = 0;     ///< Successful hello registrations.
    unsigned peakWorkers = 0;
    unsigned deadWorkers = 0;     ///< Dropped for error/EOF/timeout.
    unsigned droppedPeers = 0;    ///< Framing/protocol violations.
    std::uint64_t leasesGranted = 0;
    std::uint64_t leasesReassigned = 0; ///< Re-queued from any cause.
    std::uint64_t stragglerLeases = 0;
    std::uint64_t duplicateResults = 0; ///< Discarded (first-wins).
    std::uint64_t faultsApplied = 0;    ///< Coordinator-side only.
    bool usedLocalFallback = false;

    /** One line for logs: workers/deaths/reassignments/duplicates. */
    std::string summary() const;
};

class Coordinator
{
  public:
    explicit Coordinator(CoordinatorOptions opt);
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /** Bind + listen; false with a message in @p err on failure.
     *  Must be called (successfully) before run(). */
    bool listen(std::string *err);

    /** The bound port (valid after listen()); with Options::port == 0
     *  this is the kernel-assigned ephemeral port. */
    std::uint16_t port() const;

    /**
     * Drive the campaign to completion and return the merged report.
     * Cell order in the report matches @p cells regardless of which
     * worker finished what.  Blocks until every cell is done (workers
     * get a goodbye) or degraded locally.
     */
    CampaignReport run(const std::string &name,
                       const std::vector<RunRequest> &cells);

    const CoordinatorStats &stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace tsoper::campaign

#endif // TSOPER_CAMPAIGN_COORDINATOR_HH
