#include "campaign/worker.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "campaign/thread_pool.hh"
#include "campaign/wire.hh"
#include "net/peer.hh"
#include "net/socket.hh"

namespace tsoper::campaign
{

using net::monotonicMs;

std::string
WorkerStats::summary() const
{
    std::ostringstream os;
    os << "worker: " << leasesAccepted << " leases, " << resultsSent
       << " results, " << reconnects << " reconnect"
       << (reconnects == 1 ? "" : "s");
    if (faultsApplied)
        os << "; net-fault applied " << faultsApplied << " times";
    return os.str();
}

namespace
{

struct Completion
{
    std::uint64_t lease = 0;
    CellReport cell;
};

} // namespace

int
runWorker(const WorkerOptions &opt, WorkerStats *statsOut)
{
    WorkerStats stats;
    const auto finish = [&](int code) {
        if (statsOut)
            *statsOut = stats;
        return code;
    };

    std::string name = opt.name;
    if (name.empty())
        name = "worker-" + std::to_string(::getpid());
    const unsigned jobs = std::max(1u, opt.jobs);

    // Declaration order matters: the pool's destructor joins in-flight
    // cells, which still touch the queue and the wake pipe.
    std::mutex doneMutex;
    std::vector<Completion> done;
    net::Fd wakeRead, wakeWrite;
    std::string err;
    if (!net::makeWakePipe(&wakeRead, &wakeWrite, &err))
        return finish(kExitConnectionLost);
    ThreadPool pool(jobs);

    std::set<std::uint64_t> active; // leases in flight (main thread)
    bool campaignDone = false;
    bool everConnected = false;
    unsigned failures = 0;

    while (!campaignDone) {
        net::Fd sock =
            net::connectTcp(opt.host, opt.port, 5'000, &err);
        if (!sock.valid()) {
            ++failures;
            if (failures >= std::max(1u, opt.connectAttempts)) {
                if (opt.progress)
                    *opt.progress << "worker " << name
                                  << ": giving up: " << err << "\n"
                                  << std::flush;
                return finish(kExitConnectionLost);
            }
            const unsigned delay = std::min<unsigned>(
                opt.backoffMaxMs,
                opt.backoffBaseMs << std::min(failures - 1, 16u));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
            continue;
        }
        failures = 0;
        if (everConnected)
            ++stats.reconnects;
        everConnected = true;

        net::Peer peer(std::move(sock), opt.fault);
        std::int64_t now = monotonicMs();
        peer.sendFrame(wire::hello(name, jobs).dump(), now);
        unsigned hbMs = std::max(100u, opt.heartbeatMs);
        std::int64_t nextHeartbeat = now + hbMs;
        bool up = true;

        while (up && !campaignDone) {
            now = monotonicMs();
            if (now >= nextHeartbeat) {
                peer.sendFrame(
                    wire::heartbeat({active.begin(), active.end()})
                        .dump(),
                    now);
                nextHeartbeat = now + hbMs;
            }

            struct pollfd fds[2] = {
                {peer.fd(),
                 static_cast<short>(POLLIN | (peer.wantWrite(now)
                                                  ? POLLOUT
                                                  : 0)),
                 0},
                {wakeRead.get(), POLLIN, 0},
            };
            const int timeout = static_cast<int>(std::clamp<
                std::int64_t>(nextHeartbeat - now, 1, 100));
            int rc;
            do {
                rc = ::poll(fds, 2, timeout);
            } while (rc < 0 && errno == EINTR);
            now = monotonicMs();

            if (fds[1].revents & POLLIN)
                net::drainWake(wakeRead.get());

            // Finished cells -> result frames.  Completions computed
            // while disconnected drain here too; the coordinator
            // merges them by cell id even though the lease died with
            // the old connection.
            std::vector<Completion> ready;
            {
                std::lock_guard<std::mutex> lock(doneMutex);
                ready.swap(done);
            }
            for (Completion &c : ready) {
                active.erase(c.lease);
                peer.sendFrame(wire::result(c.lease, c.cell).dump(),
                               now);
                ++stats.resultsSent;
                if (opt.progress)
                    *opt.progress
                        << "worker " << name << ": "
                        << toString(c.cell.result.status) << " "
                        << c.cell.request.id << "\n"
                        << std::flush;
                if (opt.dieAfterResults &&
                    stats.resultsSent >= opt.dieAfterResults) {
                    // Flush what we just sent, then vanish without a
                    // goodbye — the deterministic SIGKILL stand-in.
                    const std::int64_t deadline = now + 1'000;
                    while (peer.sendBacklog() > 0 &&
                           monotonicMs() < deadline) {
                        struct pollfd p{peer.fd(), POLLOUT, 0};
                        ::poll(&p, 1, 50);
                        if (!peer.pumpSend(monotonicMs()))
                            break;
                    }
                    stats.faultsApplied += peer.faultsApplied();
                    return finish(kExitDiedOnPurpose);
                }
            }

            if (fds[0].revents & (POLLIN | POLLERR | POLLHUP)) {
                // Drain buffered frames even when the read hit EOF:
                // the goodbye that ends the campaign routinely arrives
                // in the same wakeup as the coordinator's close.
                const bool recvOk = peer.pumpRecv();
                {
                    std::string payload;
                    while (up &&
                           peer.nextFrame(&payload) ==
                               net::FrameDecoder::Status::Frame) {
                        Json msg;
                        std::string type;
                        if (!wire::parseMessage(payload, &msg,
                                                &type)) {
                            up = false;
                            break;
                        }
                        if (type == "hello_ack") {
                            // Pace heartbeats at a third of the
                            // coordinator's liveness budget so one
                            // knob tunes both ends.
                            const std::uint64_t budget =
                                wire::uintField(
                                    msg, "heartbeat_timeout_ms", 0);
                            if (budget) {
                                hbMs = std::max<unsigned>(
                                    100, static_cast<unsigned>(
                                             std::min<std::uint64_t>(
                                                 budget / 3, hbMs)));
                                nextHeartbeat =
                                    std::min(nextHeartbeat,
                                             now + hbMs);
                            }
                            continue;
                        }
                        if (type == "goodbye") {
                            campaignDone = true;
                            break;
                        }
                        if (type != "lease") {
                            up = false; // confused coordinator
                            break;
                        }
                        const std::uint64_t leaseId =
                            wire::uintField(msg, "lease", 0);
                        const Json *cellJson = msg.find("cell");
                        if (!leaseId || !cellJson ||
                            !cellJson->isObject()) {
                            up = false;
                            break;
                        }
                        if (active.count(leaseId))
                            continue; // dup-faulted lease replay
                        RunRequest req =
                            runRequestFromJson(*cellJson);
                        RunnerOptions ro = opt.runner;
                        ro.timeout = std::chrono::milliseconds(
                            wire::uintField(
                                msg, "timeout_ms",
                                static_cast<std::uint64_t>(std::max<
                                    std::int64_t>(
                                    0, ro.timeout.count()))));
                        ro.retries = static_cast<unsigned>(
                            wire::uintField(msg, "retries",
                                            ro.retries));
                        ro.journal = nullptr;
                        ro.resumeFrom = nullptr;
                        ro.progress = nullptr;
                        active.insert(leaseId);
                        ++stats.leasesAccepted;
                        pool.submit([leaseId, req, ro, &doneMutex,
                                     &done,
                                     wfd = wakeWrite.get()]() {
                            Completion c;
                            c.lease = leaseId;
                            c.cell = runCell(req, ro);
                            {
                                std::lock_guard<std::mutex> lock(
                                    doneMutex);
                                done.push_back(std::move(c));
                            }
                            net::wake(wfd);
                        });
                    }
                    if (up && (peer.failed() || !recvOk))
                        up = false;
                }
            }

            if (up && !peer.pumpSend(now))
                up = false;
        }

        stats.faultsApplied += peer.faultsApplied();
        if (!campaignDone && opt.progress)
            *opt.progress << "worker " << name
                          << ": connection lost, reconnecting\n"
                          << std::flush;
    }

    // Straggler leases may still be computing (another worker won the
    // race); the pool joins them on destruction, bounded by the lease
    // timeout policy.
    return finish(kExitWorkerOk);
}

} // namespace tsoper::campaign
