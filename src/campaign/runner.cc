#include "campaign/runner.hh"

#include <atomic>
#include <cstdio>
#include <future>
#include <mutex>
#include <ostream>
#include <thread>

#include "campaign/thread_pool.hh"

namespace tsoper::campaign
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** One attempt with a wall-clock budget. */
RunResult
attemptWithTimeout(const RunRequest &request,
                   const std::function<RunResult(const RunRequest &)> &fn,
                   std::chrono::milliseconds timeout)
{
    if (timeout.count() <= 0)
        return fn(request);

    std::packaged_task<RunResult()> task(
        [&fn, request] { return fn(request); });
    std::future<RunResult> future = task.get_future();
    std::thread worker(std::move(task));
    if (future.wait_for(timeout) == std::future_status::ready) {
        worker.join();
        return future.get();
    }
    // The attempt overran its budget.  A simulation has no safe
    // preemption point, so the thread is abandoned; whatever it
    // eventually produces is dropped with the discarded future.
    worker.detach();
    RunResult result;
    result.status = RunStatus::Timeout;
    result.detail = "exceeded " + std::to_string(timeout.count()) +
                    " ms wall-clock budget";
    return result;
}

bool
retryable(RunStatus status)
{
    return status == RunStatus::Timeout || status == RunStatus::Crashed;
}

} // namespace

CellReport
runCell(const RunRequest &request, const RunnerOptions &opt)
{
    const std::function<RunResult(const RunRequest &)> fn =
        opt.cellFn ? opt.cellFn
                   : [](const RunRequest &r) { return runOne(r); };

    CellReport cell;
    cell.request = request;
    for (unsigned attempt = 0;; ++attempt) {
        const Clock::time_point start = Clock::now();
        cell.result = attemptWithTimeout(request, fn, opt.timeout);
        cell.wallMs = msSince(start);
        cell.attempts = attempt + 1;
        if (!retryable(cell.result.status) || attempt >= opt.retries)
            return cell;
    }
}

CampaignReport
runCampaign(const std::string &name,
            const std::vector<RunRequest> &cells,
            const RunnerOptions &opt)
{
    CampaignReport report;
    report.name = name;
    report.cells.resize(cells.size());
    unsigned jobs = opt.jobs ? opt.jobs
                             : std::thread::hardware_concurrency();
    if (jobs == 0)
        jobs = 1;
    report.jobs = jobs;

    const Clock::time_point start = Clock::now();
    std::atomic<std::size_t> done{0};
    std::mutex progressMutex;

    {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < cells.size(); ++i) {
            pool.submit([&, i] {
                CellReport cell = runCell(cells[i], opt);
                const std::size_t finished =
                    done.fetch_add(1, std::memory_order_relaxed) + 1;
                if (opt.progress) {
                    std::lock_guard<std::mutex> lock(progressMutex);
                    char head[64];
                    std::snprintf(head, sizeof(head), "[%3zu/%zu] %-12s",
                                  finished, cells.size(),
                                  toString(cell.result.status));
                    *opt.progress << head << " " << cell.request.id
                                  << "  (" << static_cast<long>(
                                         cell.wallMs)
                                  << " ms";
                    if (cell.attempts > 1)
                        *opt.progress << ", " << cell.attempts
                                      << " attempts";
                    *opt.progress << ")\n" << std::flush;
                }
                report.cells[i] = std::move(cell);
            });
        }
        pool.wait();
    }

    report.wallMs = msSince(start);
    return report;
}

} // namespace tsoper::campaign
