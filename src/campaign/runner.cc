#include "campaign/runner.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>

#include "campaign/thread_pool.hh"

namespace tsoper::campaign
{

namespace
{

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

std::atomic<unsigned> liveOrphans{0};

/** Who settled the attempt first: the worker finishing (Done) or the
 *  timeout path abandoning it (Orphaned).  The loser of the exchange
 *  race learns what the winner did and adjusts the orphan counter —
 *  an orphan that eventually finishes un-counts itself. */
enum class AttemptState : int
{
    Running = 0,
    Done = 1,
    Orphaned = 2,
};

/** One attempt with a wall-clock budget. */
RunResult
attemptWithTimeout(const RunRequest &request,
                   const std::function<RunResult(const RunRequest &)> &fn,
                   std::chrono::milliseconds timeout)
{
    if (timeout.count() <= 0)
        return fn(request);

    auto state = std::make_shared<std::atomic<int>>(
        static_cast<int>(AttemptState::Running));
    auto prom = std::make_shared<std::promise<RunResult>>();
    std::future<RunResult> future = prom->get_future();
    std::thread worker([&fn, request, state, prom] {
        try {
            prom->set_value(fn(request));
        } catch (...) {
            prom->set_exception(std::current_exception());
        }
        const int prev = state->exchange(
            static_cast<int>(AttemptState::Done));
        if (prev == static_cast<int>(AttemptState::Orphaned))
            liveOrphans.fetch_sub(1, std::memory_order_relaxed);
    });
    if (future.wait_for(timeout) == std::future_status::ready) {
        worker.join();
        return future.get();
    }
    // The attempt overran its budget.  A simulation has no safe
    // preemption point, so the thread is abandoned; whatever it
    // eventually produces is dropped with the discarded future.
    const int prev =
        state->exchange(static_cast<int>(AttemptState::Orphaned));
    if (prev == static_cast<int>(AttemptState::Done)) {
        // It finished in the instant after the wait gave up — not an
        // orphan after all, take the real result.
        worker.join();
        return future.get();
    }
    liveOrphans.fetch_add(1, std::memory_order_relaxed);
    worker.detach();
    RunResult result;
    result.status = RunStatus::Timeout;
    result.detail = "exceeded " + std::to_string(timeout.count()) +
                    " ms wall-clock budget";
    return result;
}

bool
retryable(RunStatus status)
{
    return status == RunStatus::Timeout || status == RunStatus::Crashed;
}

} // namespace

unsigned
liveOrphanCount()
{
    return liveOrphans.load(std::memory_order_relaxed);
}

CellReport
runCell(const RunRequest &request, const RunnerOptions &opt)
{
    const bool isolate =
        opt.isolation == Isolation::Subprocess && !opt.cellFn;
    const std::function<RunResult(const RunRequest &)> fn =
        opt.cellFn ? opt.cellFn
                   : [](const RunRequest &r) { return runOne(r); };

    CellReport cell;
    cell.request = request;
    for (unsigned attempt = 0;; ++attempt) {
        if (attempt > 0 && opt.backoffBaseMs) {
            const std::uint64_t raw =
                static_cast<std::uint64_t>(opt.backoffBaseMs)
                << (attempt - 1);
            const std::uint64_t delay = std::min<std::uint64_t>(
                raw, opt.backoffMaxMs ? opt.backoffMaxMs : raw);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
        }
        const Clock::time_point start = Clock::now();
        if (isolate) {
            SubprocessOptions sub = opt.subprocess;
            sub.timeout = opt.timeout;
            SubprocessOutcome outcome = runSubprocess(request, sub);
            cell.result = std::move(outcome.result);
            cell.wallMs = outcome.wallMs;
        } else {
            cell.result = attemptWithTimeout(request, fn, opt.timeout);
            cell.wallMs = msSince(start);
        }
        cell.attempts = attempt + 1;
        cell.attemptLog.push_back(
            {cell.result.status, cell.wallMs, cell.result.detail});
        if (!retryable(cell.result.status))
            return cell;
        if (attempt >= opt.retries) {
            // Transient failure survived every attempt: quarantine the
            // cell so one sick run cannot poison the sweep's totals.
            cell.quarantined = true;
            return cell;
        }
    }
}

CampaignReport
runCampaign(const std::string &name,
            const std::vector<RunRequest> &cells,
            const RunnerOptions &opt)
{
    CampaignReport report;
    report.name = name;
    report.cells.resize(cells.size());
    unsigned jobs = opt.jobs ? opt.jobs
                             : std::thread::hardware_concurrency();
    if (jobs == 0)
        jobs = 1;
    report.jobs = jobs;

    const Clock::time_point start = Clock::now();
    std::atomic<std::size_t> done{0};
    std::mutex progressMutex;

    const auto progressLine = [&](const CellReport &cell,
                                  std::size_t finished) {
        if (!opt.progress)
            return;
        std::lock_guard<std::mutex> lock(progressMutex);
        char head[64];
        std::snprintf(head, sizeof(head), "[%3zu/%zu] %-12s", finished,
                      cells.size(),
                      cell.fromJournal ? "resumed"
                                       : toString(cell.result.status));
        *opt.progress << head << " " << cell.request.id;
        if (cell.fromJournal) {
            *opt.progress << "  (journal)";
        } else {
            *opt.progress << "  ("
                          << static_cast<long>(cell.wallMs) << " ms";
            if (cell.attempts > 1)
                *opt.progress << ", " << cell.attempts << " attempts";
            if (cell.quarantined)
                *opt.progress << ", quarantined";
            *opt.progress << ")";
        }
        *opt.progress << "\n" << std::flush;
    };

    {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (opt.resumeFrom) {
                const auto it = opt.resumeFrom->cells.find(cells[i].id);
                // Reuse only if the journaled request is the manifest
                // request — a spec edited under the journal re-runs
                // its stale cells instead of silently reusing them.
                if (it != opt.resumeFrom->cells.end() &&
                    it->second.request == cells[i]) {
                    CellReport cell = it->second;
                    cell.fromJournal = true;
                    const std::size_t finished =
                        done.fetch_add(1, std::memory_order_relaxed) +
                        1;
                    progressLine(cell, finished);
                    report.cells[i] = std::move(cell);
                    continue;
                }
            }
            pool.submit([&, i] {
                CellReport cell = runCell(cells[i], opt);
                if (opt.journal)
                    opt.journal->append(cell);
                const std::size_t finished =
                    done.fetch_add(1, std::memory_order_relaxed) + 1;
                progressLine(cell, finished);
                report.cells[i] = std::move(cell);
            });
        }
        pool.wait();
    }

    report.wallMs = msSince(start);
    report.orphanedThreads = liveOrphanCount();
    return report;
}

} // namespace tsoper::campaign
