/**
 * @file
 * Campaign runner: executes a list of run manifests on the
 * work-stealing pool with per-cell wall-clock timeout, retry with
 * exponential backoff on transient failure, and live progress
 * reporting, then aggregates everything into a CampaignReport.
 *
 * Two isolation modes (RunnerOptions::isolation):
 *
 *  - InProcess (default): each attempt calls runOne() on its own
 *    thread.  Fast, but a cell that SIGSEGVs takes the campaign down
 *    with it, and a timed-out attempt's thread can only be detached —
 *    it burns a core until the process exits.  The count of such
 *    orphans is tracked (liveOrphanCount()) and surfaced in the
 *    report.
 *  - Subprocess: each attempt fork/execs `tsoper_sim` with a memory
 *    rlimit and a hard SIGKILL on timeout.  A crashing or runaway
 *    cell is contained: its signal, exit code and stderr tail land in
 *    the CellReport and nothing outlives the attempt.
 *
 * Retries apply to Timeout and Crashed outcomes only: CheckFailed,
 * BadRequest and Hung are deterministic verdicts and re-running them
 * cannot change the answer.  Between attempts the cell backs off
 * exponentially (backoffBaseMs · 2^attempt, capped at backoffMaxMs) so
 * a machine-level hiccup — OOM pressure, a full /tmp — gets time to
 * clear.  A cell whose final status is still transient after the last
 * attempt is *quarantined*: reported separately, excluded from the
 * per-status totals.
 *
 * When a journal is attached (RunnerOptions::journal), every finished
 * cell is durably appended before the campaign moves on; with
 * resumeFrom set, cells whose journaled request matches the manifest
 * are reused verbatim instead of re-run.  See campaign/journal.hh.
 */

#ifndef TSOPER_CAMPAIGN_RUNNER_HH
#define TSOPER_CAMPAIGN_RUNNER_HH

#include <chrono>
#include <functional>
#include <iosfwd>
#include <vector>

#include "campaign/journal.hh"
#include "campaign/report.hh"
#include "campaign/run_request.hh"
#include "campaign/subprocess.hh"

namespace tsoper::campaign
{

enum class Isolation
{
    InProcess,  ///< runOne() on a pool thread (default).
    Subprocess, ///< fork/exec tsoper_sim per attempt.
};

struct RunnerOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;

    /** Per-attempt wall-clock budget; <= 0 disables the timeout. */
    std::chrono::milliseconds timeout{120000};

    /** Extra attempts after a Timeout/Crashed outcome. */
    unsigned retries = 1;

    /** How each attempt executes (see file comment). */
    Isolation isolation = Isolation::InProcess;

    /** Subprocess-mode knobs (binary path, rlimit, stderr cap).  The
     *  timeout above overrides SubprocessOptions::timeout so both
     *  modes share one budget. */
    SubprocessOptions subprocess;

    /** First retry delay; doubles per attempt.  0 disables backoff. */
    unsigned backoffBaseMs = 250;

    /** Backoff ceiling. */
    unsigned backoffMaxMs = 10'000;

    /** Stream for live per-cell progress lines; nullptr = silent. */
    std::ostream *progress = nullptr;

    /** Write-ahead journal to append finished cells to; nullptr =
     *  no journaling. */
    CampaignJournal *journal = nullptr;

    /** Previously journaled cells to reuse instead of re-running;
     *  nullptr = run everything. */
    const JournalIndex *resumeFrom = nullptr;

    /** Cell executor; defaults to runOne().  Tests substitute fakes
     *  (hung cells, flaky cells) to exercise timeout/retry.  When set
     *  it is used even in Subprocess mode. */
    std::function<RunResult(const RunRequest &)> cellFn;
};

/**
 * Attempt threads detached by in-process timeouts that have not (yet)
 * finished on their own.  Process-global: campaigns accumulate.  The
 * CLI warns on stderr when this is non-zero at exit.
 */
unsigned liveOrphanCount();

/**
 * Run one cell under the timeout/retry/backoff policy (no pool
 * involved); the building block runCampaign schedules, exposed for
 * tests.
 */
CellReport runCell(const RunRequest &request, const RunnerOptions &opt);

/**
 * Execute @p cells in parallel and aggregate.  Cell order in the
 * report matches @p cells regardless of completion order.
 */
CampaignReport runCampaign(const std::string &name,
                           const std::vector<RunRequest> &cells,
                           const RunnerOptions &opt);

} // namespace tsoper::campaign

#endif // TSOPER_CAMPAIGN_RUNNER_HH
