/**
 * @file
 * Campaign runner: executes a list of run manifests on the
 * work-stealing pool with per-cell wall-clock timeout, one (or more)
 * retries on transient failure, and live progress reporting, then
 * aggregates everything into a CampaignReport.
 *
 * Timeout semantics: each attempt runs on its own thread; if it does
 * not finish within the budget the attempt is classified
 * RunStatus::Timeout and its thread is detached (a simulation cannot
 * be interrupted midway — the orphan finishes or dies with the
 * process; its result is discarded).  Retries apply to Timeout and
 * Crashed outcomes only: CheckFailed and BadRequest are deterministic
 * verdicts and re-running them cannot change the answer.
 */

#ifndef TSOPER_CAMPAIGN_RUNNER_HH
#define TSOPER_CAMPAIGN_RUNNER_HH

#include <chrono>
#include <functional>
#include <iosfwd>
#include <vector>

#include "campaign/report.hh"
#include "campaign/run_request.hh"

namespace tsoper::campaign
{

struct RunnerOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;

    /** Per-attempt wall-clock budget; <= 0 disables the timeout. */
    std::chrono::milliseconds timeout{120000};

    /** Extra attempts after a Timeout/Crashed outcome. */
    unsigned retries = 1;

    /** Stream for live per-cell progress lines; nullptr = silent. */
    std::ostream *progress = nullptr;

    /** Cell executor; defaults to runOne().  Tests substitute fakes
     *  (hung cells, flaky cells) to exercise timeout/retry. */
    std::function<RunResult(const RunRequest &)> cellFn;
};

/**
 * Run one cell under the timeout/retry policy (no pool involved);
 * the building block runCampaign schedules, exposed for tests.
 */
CellReport runCell(const RunRequest &request, const RunnerOptions &opt);

/**
 * Execute @p cells in parallel and aggregate.  Cell order in the
 * report matches @p cells regardless of completion order.
 */
CampaignReport runCampaign(const std::string &name,
                           const std::vector<RunRequest> &cells,
                           const RunnerOptions &opt);

} // namespace tsoper::campaign

#endif // TSOPER_CAMPAIGN_RUNNER_HH
