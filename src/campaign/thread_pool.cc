#include "campaign/thread_pool.hh"

#include <chrono>

namespace tsoper::campaign
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    const std::size_t target =
        nextWorker_.fetch_add(1, std::memory_order_relaxed) %
        workers_.size();
    pending_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->tasks.push_back(std::move(task));
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
    });
}

bool
ThreadPool::popOwn(unsigned self, Task *task)
{
    Worker &w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.tasks.empty())
        return false;
    *task = std::move(w.tasks.back());
    w.tasks.pop_back();
    return true;
}

bool
ThreadPool::stealOther(unsigned self, Task *task)
{
    const std::size_t n = workers_.size();
    for (std::size_t i = 1; i < n; ++i) {
        Worker &victim = *workers_[(self + i) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.tasks.empty())
            continue;
        *task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    while (true) {
        Task task;
        if (popOwn(self, &task) || stealOther(self, &task)) {
            task();
            if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                // Last pending task: wake wait()ers.  Take the lock so
                // the notify cannot race between their predicate check
                // and their sleep.
                std::lock_guard<std::mutex> lock(mutex_);
                idleCv_.notify_all();
            }
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        // Re-check the deques under the lock: a submit() may have
        // slipped in between our scan and this wait.
        workCv_.wait_for(lock, std::chrono::milliseconds(10));
    }
}

} // namespace tsoper::campaign
