#include "sim/shard_queue.hh"

#include <algorithm>
#include <exception>
#include <limits>

#include "sim/log.hh"

namespace tsoper
{

namespace
{

/** Which ShardedEventQueue (and shard) this thread is executing for;
 *  post() uses it to validate the source shard and to pick the
 *  in-burst (outbox) vs setup (direct schedule) delivery path. */
struct BurstCtx
{
    ShardedEventQueue *owner = nullptr;
    unsigned shard = 0;
};
thread_local BurstCtx burstCtx;

struct BurstScope
{
    BurstScope(ShardedEventQueue *owner, unsigned shard) : prev_(burstCtx)
    {
        burstCtx = {owner, shard};
    }
    ~BurstScope() { burstCtx = prev_; }
    BurstCtx prev_;
};

} // namespace

ShardedEventQueue::ShardedEventQueue(unsigned shards, unsigned threads,
                                     Cycle lookahead)
    : lookahead_(lookahead)
{
    tsoper_assert(shards >= 1, "sharded kernel needs at least one shard");
    tsoper_assert(shards == 1 || lookahead > 0,
                  "conservative sharding requires positive lookahead: "
                  "with zero lookahead a cross-shard message could land "
                  "in the cycle being executed");
    queues_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        queues_.push_back(std::make_unique<EventQueue>());
    outboxes_ = std::vector<Outbox>(shards);
    limits_ = std::vector<Cycle>(shards, 0);
    threads_ = std::clamp(threads, 1u, shards);
    for (unsigned w = 1; w < threads_; ++w)
        pool_.emplace_back([this, w] { workerLoop(w); });
}

ShardedEventQueue::~ShardedEventQueue()
{
    if (!pool_.empty()) {
        {
            std::lock_guard<std::mutex> lk(m_);
            stop_ = true;
        }
        cvStart_.notify_all();
        for (std::thread &t : pool_)
            t.join();
    }
}

void
ShardedEventQueue::post(unsigned src, unsigned dst, Cycle delay,
                        Callback fn)
{
    tsoper_assert(src < shards() && dst < shards(),
                  "post: shard out of range (src ", src, ", dst ", dst,
                  ", shards ", shards(), ")");
    if (src != dst) {
        tsoper_assert(delay >= lookahead_,
                      "cross-shard post from ", src, " to ", dst,
                      " with delay ", delay, " < lookahead ", lookahead_,
                      " — no physical interaction crosses tiles faster "
                      "than one NoC hop");
    }
    const bool inBurst = burstCtx.owner == this;
    if (inBurst) {
        tsoper_assert(burstCtx.shard == src,
                      "post claims source shard ", src,
                      " while executing shard ", burstCtx.shard);
        const Cycle when = queues_[src]->now() + delay;
        if (src == dst) {
            queues_[src]->schedule(when, std::move(fn));
        } else {
            outboxes_[src].msgs.push_back({dst, when, std::move(fn)});
            // Window contraction: the receiver may react to this
            // message at @p when and send a consequence arriving here
            // no earlier than when + lookahead.  The uneven window
            // limit was computed from queue state at the barrier —
            // before this message existed — so the sender must now
            // stop short of that first possible consequence.  Only
            // the worker executing @p src touches limits_[src]
            // mid-window, so the plain store is race-free.
            const Cycle bound = when > maxCycle_ - lookahead_
                                    ? maxCycle_
                                    : when + lookahead_ - 1;
            if (bound < limits_[src])
                limits_[src] = bound;
        }
        return;
    }
    // Setup path (no window in flight): deliver directly, relative to
    // the destination's clock.
    queues_[dst]->scheduleIn(delay, std::move(fn));
}

bool
ShardedEventQueue::horizon(Cycle *h) const
{
    bool any = false;
    Cycle best = 0;
    for (const auto &q : queues_) {
        Cycle when;
        if (!q->nextEventAt(&when))
            continue;
        if (!any || when < best)
            best = when;
        any = true;
    }
    if (any)
        *h = best;
    return any;
}

unsigned
ShardedEventQueue::computeWindowLimits(Cycle maxCycle)
{
    // min1/min2: the two earliest next-event cycles across shards.
    // A shard sitting at min1 is bounded by the runner-up (plus
    // lookahead-1); every other shard is bounded by min1.  Idle
    // shards impose no bound, so a lone active shard runs to
    // maxCycle without further barriers.
    Cycle min1 = maxCycle_, min2 = maxCycle_;
    for (const auto &q : queues_) {
        Cycle when;
        if (!q->nextEventAt(&when))
            continue;
        if (when < min1) {
            min2 = min1;
            min1 = when;
        } else if (when < min2) {
            min2 = when;
        }
    }
    unsigned active = 0;
    for (unsigned s = 0; s < shards(); ++s) {
        Cycle when;
        if (!queues_[s]->nextEventAt(&when)) {
            limits_[s] = 0;
            continue;
        }
        const Cycle bound = when == min1 ? min2 : min1;
        const Cycle limit =
            bound >= maxCycle_ - (lookahead_ ? lookahead_ - 1 : 0)
                ? maxCycle_
                : bound + (lookahead_ ? lookahead_ - 1 : 0);
        limits_[s] = std::min(maxCycle, limit);
        if (when <= limits_[s])
            ++active;
    }
    return active;
}

void
ShardedEventQueue::executeShards(unsigned w, unsigned stride)
{
    for (unsigned s = w; s < shards(); s += stride) {
        EventQueue &q = *queues_[s];
        if (q.empty())
            continue;
        ShardFenceScope fence(fenceMap_, s);
        BurstScope burst(this, s);
        // limits_[s] is read afresh before every event: post()
        // tightens it when this shard sends a cross-shard message,
        // closing the transient-message hazard (see post()).
        q.runBounded(limits_[s], windowEventCap_);
    }
}

void
ShardedEventQueue::drainOutboxes()
{
    // Shard-index order, post order within a shard: the insertion
    // sequence numbers on the destination queues — and hence all tie
    // breaks — depend only on simulation state, never on which worker
    // ran what when.
    for (Outbox &ob : outboxes_) {
        if (ob.msgs.empty())
            continue;
        for (PostRec &rec : ob.msgs) {
            queues_[rec.dst]->schedule(rec.when, std::move(rec.fn));
            ++crossPosts_;
        }
        ob.msgs.clear();
    }
}

void
ShardedEventQueue::workerLoop(unsigned w)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(m_);
            cvStart_.wait(lk,
                          [&] { return stop_ || generation_ != seen; });
            if (stop_)
                return;
            seen = generation_;
        }
        std::exception_ptr err;
        try {
            executeShards(w, threads_);
        } catch (...) {
            err = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lk(m_);
            if (err && !poolError_)
                poolError_ = err;
            if (--running_ == 0)
                cvDone_.notify_one();
        }
    }
}

void
ShardedEventQueue::executeWindow(unsigned active)
{
    // One active shard cannot race anybody: run everything on the
    // calling thread and skip the pool wake + barrier entirely.
    // This is the common shape when activity concentrates on one
    // tile, and — because `active` is a function of queue state
    // alone — the shortcut is taken identically at every worker
    // count, preserving determinism.
    if (threads_ == 1 || active <= 1) {
        executeShards(0, 1);
        drainOutboxes();
        return;
    }
    {
        std::lock_guard<std::mutex> lk(m_);
        running_ = threads_ - 1;
        ++generation_;
    }
    cvStart_.notify_all();
    std::exception_ptr err;
    try {
        executeShards(0, threads_);
    } catch (...) {
        err = std::current_exception();
    }
    {
        std::unique_lock<std::mutex> lk(m_);
        cvDone_.wait(lk, [this] { return running_ == 0; });
        if (!err && poolError_) {
            err = poolError_;
            poolError_ = nullptr;
        }
    }
    if (err)
        std::rethrow_exception(err);
    drainOutboxes();
}

Cycle
ShardedEventQueue::windowLoop(const std::function<bool()> &pred,
                              Cycle maxCycleArg, std::uint64_t maxEvents)
{
    const std::uint64_t budget =
        maxEvents > std::numeric_limits<std::uint64_t>::max() - executed()
            ? std::numeric_limits<std::uint64_t>::max()
            : executed() + maxEvents;
    for (;;) {
        if (pred && pred())
            break;
        if (executed() >= budget)
            break;
        Cycle h;
        if (!horizon(&h))
            break;
        if (h > maxCycleArg)
            break;
        const unsigned active = computeWindowLimits(maxCycleArg);
        if (active == 0)
            break;
        // Cap each shard's window at the remaining event budget so an
        // unbounded uneven window still honors runFor's contract; the
        // cap is barrier-time state, hence worker-count independent.
        windowEventCap_ = budget - executed();
        executeWindow(active);
        ++windows_;
    }
    return now();
}

Cycle
ShardedEventQueue::run(Cycle maxCycleArg)
{
    if (singleShard()) {
        ShardFenceScope fence(fenceMap_, 0);
        BurstScope burst(this, 0);
        return queues_[0]->run(maxCycleArg);
    }
    return windowLoop(nullptr, maxCycleArg,
                      std::numeric_limits<std::uint64_t>::max());
}

Cycle
ShardedEventQueue::runUntil(const std::function<bool()> &pred,
                            Cycle maxCycleArg)
{
    if (singleShard()) {
        ShardFenceScope fence(fenceMap_, 0);
        BurstScope burst(this, 0);
        return queues_[0]->runUntil(pred, maxCycleArg);
    }
    return windowLoop(pred, maxCycleArg,
                      std::numeric_limits<std::uint64_t>::max());
}

Cycle
ShardedEventQueue::runFor(const std::function<bool()> &pred,
                          Cycle maxCycleArg, std::uint64_t maxEvents)
{
    if (singleShard()) {
        ShardFenceScope fence(fenceMap_, 0);
        BurstScope burst(this, 0);
        return queues_[0]->runFor(pred, maxCycleArg, maxEvents);
    }
    return windowLoop(pred, maxCycleArg, maxEvents);
}

Cycle
ShardedEventQueue::now() const
{
    Cycle t = 0;
    for (const auto &q : queues_)
        t = std::max(t, q->now());
    return t;
}

bool
ShardedEventQueue::empty() const
{
    for (const auto &q : queues_) {
        if (!q->empty())
            return false;
    }
    return true;
}

std::size_t
ShardedEventQueue::pending() const
{
    std::size_t n = 0;
    for (const auto &q : queues_)
        n += q->pending();
    return n;
}

std::uint64_t
ShardedEventQueue::executed() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues_)
        n += q->executed();
    return n;
}

} // namespace tsoper
