/**
 * @file
 * Global discrete-event kernel.
 *
 * Every timed activity in the simulator — core retirement, NoC message
 * delivery, directory transaction execution, memory-controller service,
 * AGB drain — is an event on one queue, ordered by (cycle, insertion
 * sequence).  Ties are broken by insertion order, which makes the whole
 * simulation deterministic.
 */

#ifndef TSOPER_SIM_EVENT_QUEUE_HH
#define TSOPER_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace tsoper
{

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p fn to run at absolute cycle @p when (>= now()). */
    void schedule(Cycle when, Callback fn);

    /** Schedule @p fn to run @p delta cycles from now. */
    void
    scheduleIn(Cycle delta, Callback fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** Execute the next event, advancing time. @return false if empty. */
    bool runOne();

    /**
     * Run until the queue drains or @p maxCycle is passed.
     * @return the final simulated cycle.
     */
    Cycle run(Cycle maxCycle = maxCycle_);

    /**
     * Run until @p pred returns true (checked after each event), the
     * queue drains, or @p maxCycle passes.
     */
    Cycle runUntil(const std::function<bool()> &pred,
                   Cycle maxCycle = maxCycle_);

    Cycle now() const { return now_; }

    bool empty() const { return events_.empty(); }

    std::size_t pending() const { return events_.size(); }

    std::uint64_t executed() const { return executed_; }

  private:
    static constexpr Cycle maxCycle_ = maxCycle;

    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace tsoper

#endif // TSOPER_SIM_EVENT_QUEUE_HH
