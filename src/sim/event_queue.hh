/**
 * @file
 * Global discrete-event kernel.
 *
 * Every timed activity in the simulator — core retirement, NoC message
 * delivery, directory transaction execution, memory-controller service,
 * AGB drain — is an event on one queue, ordered by (cycle, insertion
 * sequence).  Ties are broken by insertion order, which makes the whole
 * simulation deterministic.
 *
 * The implementation is a two-level calendar queue tuned for the
 * simulator's event mix, where almost every schedule lands a few
 * cycles ahead (zero-delay continuations, privLatency, NoC hops):
 *
 *  - Near future — a bucket wheel of `wheelSize` cycles starting at
 *    the current cycle.  Each bucket is a FIFO of events for exactly
 *    one cycle, so appending preserves the (cycle, seq) total order
 *    with no comparisons and O(1) schedule/pop.  A bitmap tracks
 *    occupied buckets; finding the next event cycle is a word-wise
 *    scan instead of a heap sift.
 *
 *  - Far future — events at or beyond `now + wheelSize` (NVM
 *    completions, watchdog timeouts) wait in a binary min-heap keyed
 *    by (cycle, seq) and migrate into the wheel when time advances far
 *    enough.  Migration happens before any new event can be scheduled
 *    into the uncovered range, so per-bucket FIFO order still equals
 *    global sequence order (test: TieOrderAcrossWheelWrap).
 *
 * Callbacks are InlineCallback (sim/callback.hh): fixed in-place
 * storage, so schedule() never touches the allocator.
 */

#ifndef TSOPER_SIM_EVENT_QUEUE_HH
#define TSOPER_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/callback.hh"
#include "sim/types.hh"

namespace tsoper
{

class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** Cycles the near-future wheel covers; power of two. */
    static constexpr std::size_t wheelSize = 1024;

    EventQueue();

    /** Schedule @p fn to run at absolute cycle @p when (>= now()). */
    void schedule(Cycle when, Callback fn);

    /** Schedule @p fn to run @p delta cycles from now. */
    void
    scheduleIn(Cycle delta, Callback fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /** Execute the next event, advancing time. @return false if empty. */
    bool runOne();

    /**
     * Run until the queue drains or @p maxCycle is passed.
     * @return the final simulated cycle.
     */
    Cycle run(Cycle maxCycle = maxCycle_);

    /**
     * Run until @p pred returns true (checked after each event), the
     * queue drains, or @p maxCycle passes.
     */
    Cycle runUntil(const std::function<bool()> &pred,
                   Cycle maxCycle = maxCycle_);

    /**
     * Like runUntil, but additionally stops after executing at most
     * @p maxEvents events — the chunked stepping the progress
     * watchdog (sim/watchdog.hh) uses to inspect the machine between
     * bursts without a per-event predicate cost.
     */
    Cycle runFor(const std::function<bool()> &pred, Cycle maxCycle,
                 std::uint64_t maxEvents);

    /**
     * Like runFor (without the predicate), but re-reads @p bound
     * before every event: an executing event may *tighten* the bound
     * through the reference, and execution stops as soon as the next
     * event would exceed the current value.  The sharded kernel uses
     * this for uneven windows that contract when a shard posts a
     * cross-shard message (sim/shard_queue.cc).
     */
    Cycle runBounded(const Cycle &bound, std::uint64_t maxEvents);

    Cycle now() const { return now_; }

    /**
     * Cycle of the earliest pending event.  @return false when the
     * queue is empty.  The sharded kernel (sim/shard_queue.hh) uses
     * this to compute the global window horizon across shards.
     */
    bool
    nextEventAt(Cycle *when) const
    {
        return peekNext(when);
    }

    bool empty() const { return size_ == 0; }

    std::size_t pending() const { return size_; }

    std::uint64_t executed() const { return executed_; }

  private:
    static constexpr Cycle maxCycle_ = maxCycle;
    static constexpr std::size_t wheelMask_ = wheelSize - 1;
    static constexpr std::size_t bitmapWords_ = wheelSize / 64;

    /** One wheel slot: the FIFO of events for a single cycle.  head_
     *  indexes the next event so pops don't shift the vector; the
     *  vector's capacity is retained across cycles. */
    struct Bucket
    {
        std::vector<Callback> events;
        std::size_t head = 0;
    };

    struct FarEvent
    {
        Cycle when;
        std::uint64_t seq;
        Callback fn;
    };

    /** Min-heap order for the far-future heap (std::push_heap builds a
     *  max-heap, so "greater" here). */
    struct FarLater
    {
        bool
        operator()(const FarEvent &a, const FarEvent &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Cycle of the next event, or maxCycle_ + nothing: returns false
     *  when the queue is empty. */
    bool peekNext(Cycle *when) const;

    /** Execute the front event of the (non-empty) bucket for @p when,
     *  advancing now_ and migrating far-future events first. */
    void execNextAt(Cycle when);

    /** Pull far-future events now covered by the wheel window
     *  [wheelBase_, wheelBase_ + wheelSize) out of the heap. */
    void migrateFar();

    Bucket &bucketOf(Cycle when) { return wheel_[when & wheelMask_]; }

    void
    markOccupied(Cycle when)
    {
        const std::size_t i = when & wheelMask_;
        occupied_[i >> 6] |= 1ull << (i & 63);
    }

    void
    clearOccupied(Cycle when)
    {
        const std::size_t i = when & wheelMask_;
        occupied_[i >> 6] &= ~(1ull << (i & 63));
    }

    std::vector<Bucket> wheel_;
    std::array<std::uint64_t, bitmapWords_> occupied_{};
    std::vector<FarEvent> far_; ///< Heap ordered by FarLater.

    /** Earliest cycle the wheel can hold; advances with now_. */
    Cycle wheelBase_ = 0;
    std::size_t wheelCount_ = 0;
    std::size_t size_ = 0;

    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace tsoper

#endif // TSOPER_SIM_EVENT_QUEUE_HH
