/**
 * @file
 * Execution recording for crash-consistency checking.
 *
 * The log captures, at coherence-serialization order, everything the
 * TSO-cut checker needs:
 *   - per-core program order of stores (implicit in StoreId sequence);
 *   - per-word coherence order (the chain of stores to each word);
 *   - reads-from dependencies: if a store is program-ordered after a
 *     load that observed a remote store, the observed store must
 *     persist before it under strict persistency;
 *   - per-core SFR indices (for checking HW-RP's relaxed model).
 *
 * Recording is optional (SystemConfig::recordStores); benches run with
 * it off.
 */

#ifndef TSOPER_SIM_STORE_LOG_HH
#define TSOPER_SIM_STORE_LOG_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace tsoper
{

class StoreLog
{
  public:
    struct Record
    {
        StoreId id = invalidStore;
        Addr addr = 0;
        std::uint32_t wordChainIndex = 0; ///< Position in the word chain.
        std::uint32_t sfrIndex = 0;       ///< Core's SFR at commit time.
        /** Remote stores observed by loads program-ordered before this
         *  store (reads-from predecessors). */
        std::vector<StoreId> rfPreds;
    };

    explicit StoreLog(unsigned numCores);

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /**
     * A load by @p core observed @p value (invalidStore = untouched).
     * Called by the core at load completion; the observed stores become
     * reads-from predecessors of the core's next issued store.
     */
    void loadObserved(CoreId core, Addr addr, StoreId value);

    /**
     * Store @p id entered @p core's store buffer (the program-order
     * point): pending observed stores attach to it here.
     */
    void storeIssued(CoreId core, StoreId id);

    /** A store committed at the coherence-serialization instant. */
    void storeCommitted(CoreId core, Addr addr, StoreId id);

    /** @p core crossed an SFR boundary (sync operation). */
    void sfrBoundary(CoreId core);

    // --- Checker access ------------------------------------------------

    const Record *find(StoreId id) const;

    /** Total order of stores to the word containing @p addr. */
    const std::vector<StoreId> &wordChain(Addr addr) const;

    /** Per-core store count (program-order sequence length). */
    std::uint64_t storesOf(CoreId core) const;

    std::uint64_t totalStores() const { return total_; }

  private:
    static Addr wordAddr(Addr a) { return a >> wordShift; }

    bool enabled_ = true;
    std::uint64_t total_ = 0;
    std::unordered_map<StoreId, Record> records_;
    std::unordered_map<Addr, std::vector<StoreId>> chains_;
    std::vector<std::uint64_t> perCoreStores_;
    std::vector<std::uint32_t> perCoreSfr_;
    /** Stores observed by loads since each core's last issued store. */
    std::vector<std::vector<StoreId>> pendingRf_;
    /** rf predecessors staged at issue, consumed at commit. */
    std::unordered_map<StoreId, std::vector<StoreId>> staged_;
    static const std::vector<StoreId> emptyChain_;
};

} // namespace tsoper

#endif // TSOPER_SIM_STORE_LOG_HH
