#include "sim/shard_fence.hh"

namespace tsoper
{

namespace detail
{
thread_local ShardFenceTls shardFenceTls;
} // namespace detail

void
shardFenceViolation(unsigned node, unsigned owner, unsigned shard)
{
    tsoper_panic("shard fence: tile ", node, " (owned by shard ", owner,
                 ") touched while executing shard ", shard,
                 " — cross-tile state must travel as a timestamped "
                 "message (ShardedEventQueue::post / MessageBus::send)");
}

} // namespace tsoper
