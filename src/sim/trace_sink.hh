/**
 * @file
 * Stock consumers for the structured trace bus (sim/trace.hh):
 *
 *  - PerfettoSink: streams trace records as Chrome/Perfetto
 *    `trace_event` JSON (load the file at https://ui.perfetto.dev).
 *    Spans become "X" complete events on per-core tracks, counters
 *    become "C" counter tracks (AGB occupancy, store-buffer depth).
 *
 *  - AuditSink: collects the Category::Persist stream — every persist
 *    issue/commit, group-durable instant and pb-edge — and check()
 *    mechanically validates that the order the engines produced is a
 *    valid strict-TSO persist order: same-address FIFO, intra-group
 *    atomicity, per-core group FIFO (engines that promise it), and
 *    persist-before edge respect.  injectReorderFault() deliberately
 *    swaps two group-durable records so tests can prove the checker
 *    actually rejects invalid orders.
 *
 *  - TraceSession: RAII wiring used by campaign::runOne and the CLI —
 *    resolves the requested categories, registers the sinks, and on
 *    finish() flushes the Perfetto file and runs the audit.
 */

#ifndef TSOPER_SIM_TRACE_SINK_HH
#define TSOPER_SIM_TRACE_SINK_HH

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/trace.hh"

namespace tsoper::trace
{

/** Streaming Chrome `trace_event` JSON writer.  Events are written as
 *  they arrive so memory stays bounded on long runs. */
class PerfettoSink : public Sink
{
  public:
    explicit PerfettoSink(const std::string &path);
    ~PerfettoSink() override;

    void record(const Record &r) override;

    /** Write the closing bracket and flush.  @return false (with a
     *  message in @p err) if the stream went bad. */
    bool close(std::string *err);

    bool failed() const { return !os_.good(); }

  private:
    void writeEvent(const std::string &line);
    void ensureThread(int tid);

    std::string path_;
    std::ofstream os_;
    bool closed_ = false;
    std::uint64_t written_ = 0;
    std::unordered_set<int> threadsNamed_;
};

/** Outcome of AuditSink::check(). */
struct AuditResult
{
    bool ok = true;
    std::string detail; ///< First violation, human-readable.
    std::uint64_t commits = 0;
    std::uint64_t edges = 0;
    std::uint64_t groups = 0;
};

class AuditSink : public Sink
{
  public:
    void record(const Record &r) override;

    /** Engines whose per-core groups persist strictly in creation
     *  order (TSOPER, STW) additionally get the per-core FIFO check. */
    void setStrictCoreFifo(bool strict) { strictCoreFifo_ = strict; }

    /**
     * Deliberately corrupt the collected log: pick (by @p seed) a
     * pb-edge whose two groups became durable at different cycles and
     * swap their group-durable records, so check() must report a
     * pinpointed pb-edge violation.  Falls back to swapping two
     * same-address commits when no such edge exists.  @return false if
     * the log offers nothing to corrupt.
     */
    bool injectReorderFault(std::uint64_t seed);

    AuditResult check() const;

    std::size_t size() const { return log_.size(); }

  private:
    struct Entry
    {
        Event event;
        CoreId core;
        Cycle cycle;
        std::uint64_t id; ///< Line (issue/commit), tag (durable/edge).
        std::uint64_t a;  ///< Group tag (issue/commit), to-tag (edge).
    };

    std::vector<Entry> log_;
    bool strictCoreFifo_ = false;
};

/** Everything a run can ask of the trace layer; resolved by
 *  TraceSession.  Mirrors the campaign::RunRequest trace fields. */
struct TraceOptions
{
    std::string categories;  ///< csv for setCategories; "" = none.
    std::string perfettoPath;///< trace_event JSON output; "" = none.
    bool auditPersists = false;
    std::string auditFault;  ///< "" or "reorder" (test the checker).
    unsigned flightRecorderDepth = 0;
    std::uint64_t faultSeed = 1;
    bool strictCoreFifo = false;

    bool
    any() const
    {
        return !categories.empty() || !perfettoPath.empty() ||
               auditPersists || flightRecorderDepth > 0;
    }
};

/**
 * RAII trace wiring for one run.  The bus is process-global, so only
 * one session can be active at a time; a second concurrent session
 * warns and stays inactive (use subprocess isolation to trace campaign
 * cells).  The destructor always unhooks the sinks and restores the
 * previous category mask.
 */
class TraceSession
{
  public:
    struct Outcome
    {
        bool audited = false;
        AuditResult audit;
        std::string perfettoError; ///< "" unless the file write failed.
    };

    explicit TraceSession(const TraceOptions &opt);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    bool active() const { return active_; }

    /** Flush the Perfetto file and run the audit (idempotent). */
    Outcome finish();

  private:
    TraceOptions opt_;
    bool active_ = false;
    bool finished_ = false;
    std::string savedCategories_;
    Outcome outcome_;
    std::unique_ptr<PerfettoSink> perfetto_;
    std::unique_ptr<AuditSink> audit_;
};

} // namespace tsoper::trace

#endif // TSOPER_SIM_TRACE_SINK_HH
