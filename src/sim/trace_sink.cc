#include "sim/trace_sink.hh"

#include <atomic>
#include <deque>
#include <sstream>
#include <unordered_map>

#include "sim/log.hh"

namespace tsoper::trace
{

namespace
{

/** Events rendered as Chrome "X" (complete) duration events; everything
 *  else is an instant or a counter. */
bool
isSpan(Event e)
{
    switch (e) {
      case Event::AgRetired:
      case Event::EpochPersisted:
      case Event::StwStall:
      case Event::LlcAccess:
      case Event::NocMsg:
        return true;
      default:
        return false;
    }
}

bool
isCounter(Event e)
{
    return e == Event::AgbOccupancy || e == Event::SbDepth;
}

std::string
tagStr(std::uint64_t tag)
{
    std::ostringstream os;
    os << "0x" << std::hex << tag;
    return os.str();
}

} // namespace

//
// PerfettoSink
//

PerfettoSink::PerfettoSink(const std::string &path)
    : path_(path), os_(path)
{
    if (!os_.good())
        tsoper_fatal("cannot open trace output file '", path_, "'");
    os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    writeEvent("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
               "\"args\":{\"name\":\"tsoper_sim\"}}");
}

PerfettoSink::~PerfettoSink()
{
    std::string err;
    close(&err);
}

void
PerfettoSink::writeEvent(const std::string &line)
{
    if (written_++ > 0)
        os_ << ",\n";
    os_ << line;
}

void
PerfettoSink::ensureThread(int tid)
{
    if (!threadsNamed_.insert(tid).second)
        return;
    std::ostringstream os;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    if (tid == 0)
        os << "system";
    else
        os << "core " << (tid - 1);
    os << "\"}}";
    writeEvent(os.str());
}

void
PerfettoSink::record(const Record &r)
{
    if (closed_)
        return;
    // invalidCore (system-wide records: SLC, LLC, AGB occupancy) lands
    // on tid 0; core N on tid N+1.
    const int tid = r.core == invalidCore ? 0 : r.core + 1;
    ensureThread(tid);

    std::ostringstream os;
    if (isCounter(r.event)) {
        os << "{\"ph\":\"C\",\"pid\":0,\"tid\":" << tid << ",\"ts\":"
           << r.end << ",\"name\":\"" << eventName(r.event);
        if (r.event == Event::SbDepth && r.core != invalidCore)
            os << " core" << r.core;
        os << "\",\"args\":{\"value\":" << r.a << "}}";
    } else if (isSpan(r.event)) {
        os << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid << ",\"ts\":"
           << r.begin << ",\"dur\":" << (r.end - r.begin) << ",\"name\":\""
           << eventName(r.event) << "\",\"cat\":\""
           << categoryName(categoryOf(r.event)) << "\",\"args\":{\"id\":\""
           << tagStr(r.id) << "\",\"a\":" << r.a << ",\"b\":" << r.b
           << "}}";
    } else {
        os << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << tid << ",\"ts\":"
           << r.end << ",\"s\":\"t\",\"name\":\"" << eventName(r.event)
           << "\",\"cat\":\"" << categoryName(categoryOf(r.event))
           << "\",\"args\":{\"id\":\"" << tagStr(r.id) << "\",\"a\":"
           << r.a << ",\"b\":" << r.b << "}}";
    }
    writeEvent(os.str());
}

bool
PerfettoSink::close(std::string *err)
{
    if (closed_)
        return true;
    closed_ = true;
    os_ << "]}\n";
    os_.flush();
    if (!os_.good()) {
        if (err)
            *err = "write to trace output file '" + path_ + "' failed";
        return false;
    }
    return true;
}

//
// AuditSink
//

void
AuditSink::record(const Record &r)
{
    if (categoryOf(r.event) != Category::Persist)
        return;
    log_.push_back(Entry{r.event, r.core, r.end, r.id, r.a});
}

bool
AuditSink::injectReorderFault(std::uint64_t seed)
{
    // Index the group-durable records so we can corrupt them in place.
    std::unordered_map<std::uint64_t, std::size_t> durableAt;
    for (std::size_t i = 0; i < log_.size(); ++i)
        if (log_[i].event == Event::GroupDurable)
            durableAt.emplace(log_[i].id, i);

    // Preferred fault: take a pb-edge whose endpoints became durable at
    // strictly different cycles and swap those cycles — the persist
    // order now contradicts the edge, which check() must pinpoint.
    std::vector<std::pair<std::size_t, std::size_t>> candidates;
    for (const Entry &e : log_) {
        if (e.event != Event::PbEdge)
            continue;
        auto from = durableAt.find(e.id);
        auto to = durableAt.find(e.a);
        if (from == durableAt.end() || to == durableAt.end())
            continue;
        if (log_[from->second].cycle < log_[to->second].cycle)
            candidates.emplace_back(from->second, to->second);
    }
    if (!candidates.empty()) {
        const auto &[i, j] = candidates[seed % candidates.size()];
        std::swap(log_[i].cycle, log_[j].cycle);
        return true;
    }

    // Fallback: swap two commits of the same line that belong to
    // different groups, breaking same-address FIFO.
    std::unordered_map<std::uint64_t, std::size_t> lastCommit;
    for (std::size_t i = 0; i < log_.size(); ++i) {
        if (log_[i].event != Event::PersistCommit)
            continue;
        auto prev = lastCommit.find(log_[i].id);
        if (prev != lastCommit.end() && log_[prev->second].a != log_[i].a) {
            std::swap(log_[prev->second], log_[i]);
            return true;
        }
        lastCommit[log_[i].id] = i;
    }
    return false;
}

AuditResult
AuditSink::check() const
{
    AuditResult res;

    // Pass 1: index durable records and count the record kinds.
    std::unordered_map<std::uint64_t, std::size_t> durableIdx;
    for (std::size_t i = 0; i < log_.size(); ++i) {
        const Entry &e = log_[i];
        switch (e.event) {
          case Event::PersistCommit:
            ++res.commits;
            break;
          case Event::PbEdge:
            ++res.edges;
            break;
          case Event::GroupDurable:
            ++res.groups;
            if (!durableIdx.emplace(e.id, i).second) {
                res.ok = false;
                res.detail = "group " + tagStr(e.id) +
                             " reported durable twice";
                return res;
            }
            break;
          default:
            break;
        }
    }

    // C1 — same-address FIFO: commits to a line must consume that
    // line's issues in issue order (strict TSO persist order forbids
    // reordering two persists of the same address).
    std::unordered_map<std::uint64_t, std::deque<Entry>> inflight;
    // C3 — per-core group FIFO (engines that promise it): group-durable
    // records on one core must appear in group-creation order.
    std::unordered_map<CoreId, std::uint64_t> lastLocalId;

    for (const Entry &e : log_) {
        switch (e.event) {
          case Event::PersistIssue:
            inflight[e.id].push_back(e);
            break;
          case Event::PersistCommit: {
            auto it = inflight.find(e.id);
            if (it == inflight.end() || it->second.empty()) {
                res.ok = false;
                res.detail = "line " + tagStr(e.id) + " committed at [" +
                             std::to_string(e.cycle) +
                             "] without a pending issue";
                return res;
            }
            const Entry &issue = it->second.front();
            if (issue.a != e.a) {
                res.ok = false;
                res.detail =
                    "same-address FIFO violated on line " + tagStr(e.id) +
                    ": oldest pending issue belongs to group " +
                    tagStr(issue.a) + " but commit at [" +
                    std::to_string(e.cycle) + "] belongs to group " +
                    tagStr(e.a);
                return res;
            }
            it->second.pop_front();
            break;
          }
          case Event::GroupDurable:
            if (strictCoreFifo_ && e.core != invalidCore) {
                const std::uint64_t localId = e.id & 0xffffffffffffull;
                auto it = lastLocalId.find(e.core);
                if (it != lastLocalId.end() && localId <= it->second) {
                    res.ok = false;
                    res.detail =
                        "per-core group FIFO violated on core " +
                        std::to_string(e.core) + ": group " + tagStr(e.id) +
                        " durable after group " +
                        tagStr(groupTag(e.core, it->second));
                    return res;
                }
                lastLocalId[e.core] = localId;
            }
            break;
          default:
            break;
        }
    }

    // C2 — intra-group atomicity: once a group is durable no further
    // commit may belong to it (all its persists completed first).
    std::unordered_map<std::uint64_t, const Entry *> sealed;
    for (const Entry &e : log_) {
        if (e.event == Event::GroupDurable) {
            sealed.emplace(e.id, &e);
        } else if (e.event == Event::PersistCommit) {
            auto it = sealed.find(e.a);
            if (it != sealed.end()) {
                res.ok = false;
                res.detail =
                    "group atomicity violated: group " + tagStr(e.a) +
                    " durable at [" + std::to_string(it->second->cycle) +
                    "] but line " + tagStr(e.id) +
                    " committed later at [" + std::to_string(e.cycle) + "]";
                return res;
            }
        }
    }

    // C4 — pb-edge respect: the source group of every persist-before
    // edge must be durable no later than the destination group.  Groups
    // still pending at end of run cannot violate the edge.
    for (const Entry &e : log_) {
        if (e.event != Event::PbEdge)
            continue;
        auto from = durableIdx.find(e.id);
        auto to = durableIdx.find(e.a);
        if (from == durableIdx.end() || to == durableIdx.end())
            continue;
        const Cycle fromCycle = log_[from->second].cycle;
        const Cycle toCycle = log_[to->second].cycle;
        if (toCycle < fromCycle) {
            res.ok = false;
            res.detail =
                "pb-edge violated: group " + tagStr(e.id) +
                " must persist before group " + tagStr(e.a) +
                ", but they became durable at [" +
                std::to_string(fromCycle) + "] and [" +
                std::to_string(toCycle) + "]";
            return res;
        }
    }

    return res;
}

//
// TraceSession
//

namespace
{
/** The trace bus is process-global; only one session may drive it. */
std::atomic<bool> sessionActive_{false};
} // namespace

TraceSession::TraceSession(const TraceOptions &opt)
    : opt_(opt)
{
    if (!opt_.any())
        return;
    if (!opt_.auditFault.empty() && opt_.auditFault != "reorder")
        tsoper_fatal("unknown audit fault '", opt_.auditFault,
                     "' (valid: reorder)");
    if (sessionActive_.exchange(true)) {
        tsoper_warn("a trace session is already active in this process; "
                    "tracing request ignored (trace campaign cells with "
                    "--isolate=subprocess)");
        return;
    }
    active_ = true;
    savedCategories_ = categoriesCsv();

    std::string cats = opt_.categories;
    // --trace-out / --flight-recorder without --trace: record everything.
    if (cats.empty() && (!opt_.perfettoPath.empty() ||
                         opt_.flightRecorderDepth > 0))
        cats = "all";
    // The audit needs the persist stream regardless of what the user
    // picked for the other consumers.
    if (opt_.auditPersists && cats != "all" &&
        cats.find("persist") == std::string::npos)
        cats = cats.empty() ? "persist" : cats + ",persist";
    setCategories(cats);

    if (!opt_.perfettoPath.empty()) {
        perfetto_ = std::make_unique<PerfettoSink>(opt_.perfettoPath);
        addSink(perfetto_.get());
    }
    if (opt_.auditPersists) {
        audit_ = std::make_unique<AuditSink>();
        audit_->setStrictCoreFifo(opt_.strictCoreFifo);
        addSink(audit_.get());
    }
    if (opt_.flightRecorderDepth > 0)
        enableFlightRecorder(opt_.flightRecorderDepth);
}

TraceSession::~TraceSession()
{
    if (!active_)
        return;
    finish();
    disableFlightRecorder();
    setCategories(savedCategories_);
    sessionActive_.store(false);
}

TraceSession::Outcome
TraceSession::finish()
{
    if (!active_ || finished_)
        return outcome_;
    finished_ = true;

    if (perfetto_)
        removeSink(perfetto_.get());
    if (audit_)
        removeSink(audit_.get());

    if (audit_) {
        outcome_.audited = true;
        if (opt_.auditFault == "reorder" &&
            !audit_->injectReorderFault(opt_.faultSeed)) {
            outcome_.audit.ok = false;
            outcome_.audit.detail =
                "audit fault 'reorder' found no reorderable persist pair "
                "(trace too short?)";
        } else {
            outcome_.audit = audit_->check();
        }
    }
    if (perfetto_) {
        std::string err;
        if (!perfetto_->close(&err))
            outcome_.perfettoError = err;
    }
    return outcome_;
}

} // namespace tsoper::trace
