/**
 * @file
 * Statistics collection: named counters, histograms, and time-series
 * samplers, kept in a per-System registry and dumped as text tables.
 *
 * The benches that regenerate the paper's figures read their series
 * from this registry; tests assert on individual counters.
 */

#ifndef TSOPER_SIM_STATS_HH
#define TSOPER_SIM_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace tsoper
{

/** A monotonically growing event count. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A histogram over unsigned sample values with exact per-value
 * buckets (suitable for AG sizes, list lengths, SFR sizes).
 *
 * The sampled quantities are almost always tiny — AG sizes and
 * sharing-list lengths rarely exceed a few dozen — so values below
 * flatSize live in a flat vector indexed by value (one add is a
 * bounds check and an increment, no tree walk).  Rare large values
 * spill into an ordered map.
 */
class Histogram
{
  public:
    /** First value that spills out of the flat fast path. */
    static constexpr std::uint64_t flatSize = 256;

    void
    add(std::uint64_t value, std::uint64_t count = 1)
    {
        if (value < flatSize) {
            if (flat_.size() <= value)
                flat_.resize(static_cast<std::size_t>(flatSize), 0);
            flat_[static_cast<std::size_t>(value)] += count;
        } else {
            spill_[value] += count;
        }
        if (samples_ == 0 || value < min_)
            min_ = value;
        if (value > max_)
            max_ = value;
        samples_ += count;
        total_ += value * count;
    }

    std::uint64_t samples() const { return samples_; }
    std::uint64_t total() const { return total_; }
    std::uint64_t min() const { return samples_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /** Fraction of samples with value <= @p v (cumulative). */
    double cumulativeAt(std::uint64_t v) const;

    /** Smallest value v such that cumulativeAt(v) >= @p q. */
    std::uint64_t percentile(double q) const;

    /**
     * Exact non-zero bucket counts in ascending value order, for
     * dumping cumulative curves.  Materialized on call: this is a
     * dump-time interface, not a hot path.
     */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets() const;

    void reset();

  private:
    std::vector<std::uint64_t> flat_; ///< counts for values < flatSize
    std::map<std::uint64_t, std::uint64_t> spill_; ///< values >= flatSize
    std::uint64_t samples_ = 0;
    std::uint64_t total_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Records (cycle, value) samples; used for the Fig. 15 timelines of
 * SFR/AG sizes over execution.
 */
class TimeSeries
{
  public:
    void sample(Cycle when, double value)
    {
        points_.emplace_back(when, value);
    }

    const std::vector<std::pair<Cycle, double>> &points() const
    {
        return points_;
    }

    void reset() { points_.clear(); }

  private:
    std::vector<std::pair<Cycle, double>> points_;
};

/**
 * Accumulates a time-weighted average of a piecewise-constant value,
 * e.g. "average sharing-list length over the run".
 */
class WeightedAverage
{
  public:
    /** Record that the tracked value was @p value from the last update
     *  until @p now. */
    void
    update(Cycle now, double value)
    {
        if (now > last_) {
            weighted_ += value * static_cast<double>(now - last_);
            span_ += static_cast<double>(now - last_);
        }
        last_ = now;
    }

    double
    average() const
    {
        return span_ > 0 ? weighted_ / span_ : 0.0;
    }

  private:
    Cycle last_ = 0;
    double weighted_ = 0.0;
    double span_ = 0.0;
};

/** Name-indexed store of all statistics for one simulated system. */
class StatsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Histogram &histogram(const std::string &name);
    TimeSeries &timeSeries(const std::string &name);

    /** Value of a counter, 0 if it was never touched. */
    std::uint64_t get(const std::string &name) const;

    bool hasHistogram(const std::string &name) const;

    /** Dump all counters and histogram summaries as a text table. */
    void dump(std::ostream &os) const;

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }
    const std::map<std::string, TimeSeries> &series() const
    {
        return series_;
    }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, TimeSeries> series_;
};

} // namespace tsoper

#endif // TSOPER_SIM_STATS_HH
