#include "sim/stats_json.hh"

namespace tsoper
{

Json
statsToJson(const StatsRegistry &reg)
{
    Json counters = Json::object();
    for (const auto &[name, c] : reg.counters())
        counters.set(name, Json(c.value()));

    Json histograms = Json::object();
    for (const auto &[name, h] : reg.histograms()) {
        Json buckets = Json::array();
        for (const auto &[value, count] : h.buckets()) {
            Json pair = Json::array();
            pair.push(Json(value)).push(Json(count));
            buckets.push(std::move(pair));
        }
        Json entry = Json::object();
        entry.set("samples", Json(h.samples()))
            .set("total", Json(h.total()))
            .set("min", Json(h.min()))
            .set("max", Json(h.max()))
            .set("mean", Json(h.mean()))
            .set("buckets", std::move(buckets));
        histograms.set(name, std::move(entry));
    }

    Json series = Json::object();
    for (const auto &[name, ts] : reg.series()) {
        Json points = Json::array();
        for (const auto &[cycle, value] : ts.points()) {
            Json pair = Json::array();
            pair.push(Json(static_cast<std::uint64_t>(cycle)))
                .push(Json(value));
            points.push(std::move(pair));
        }
        series.set(name, std::move(points));
    }

    Json doc = Json::object();
    doc.set("counters", std::move(counters))
        .set("histograms", std::move(histograms))
        .set("series", std::move(series));
    return doc;
}

namespace
{

bool
schemaError(std::string *err, const std::string &msg)
{
    if (err)
        *err = "stats json: " + msg;
    return false;
}

} // namespace

bool
statsFromJson(const Json &doc, StatsRegistry *out, std::string *err)
{
    if (!doc.isObject())
        return schemaError(err, "document is not an object");

    if (const Json *counters = doc.find("counters")) {
        if (!counters->isObject())
            return schemaError(err, "\"counters\" is not an object");
        for (const auto &[name, v] : counters->members()) {
            if (!v.isNumber())
                return schemaError(err,
                                   "counter \"" + name + "\" not a number");
            out->counter(name).inc(v.asUint());
        }
    }

    if (const Json *histograms = doc.find("histograms")) {
        if (!histograms->isObject())
            return schemaError(err, "\"histograms\" is not an object");
        for (const auto &[name, entry] : histograms->members()) {
            const Json *buckets =
                entry.isObject() ? entry.find("buckets") : nullptr;
            if (!buckets || !buckets->isArray())
                return schemaError(
                    err, "histogram \"" + name + "\" has no bucket list");
            Histogram &h = out->histogram(name);
            for (std::size_t i = 0; i < buckets->size(); ++i) {
                const Json &pair = buckets->at(i);
                if (!pair.isArray() || pair.size() != 2 ||
                    !pair.at(0).isNumber() || !pair.at(1).isNumber())
                    return schemaError(
                        err, "histogram \"" + name + "\" bucket " +
                                 std::to_string(i) + " malformed");
                h.add(pair.at(0).asUint(), pair.at(1).asUint());
            }
            // Moments are derived from the buckets; cross-check the
            // recorded sample count to catch truncated documents.
            if (const Json *samples = entry.find("samples")) {
                if (samples->isNumber() &&
                    samples->asUint() != h.samples())
                    return schemaError(
                        err, "histogram \"" + name +
                                 "\" sample count mismatch");
            }
        }
    }

    if (const Json *series = doc.find("series")) {
        if (!series->isObject())
            return schemaError(err, "\"series\" is not an object");
        for (const auto &[name, points] : series->members()) {
            if (!points.isArray())
                return schemaError(
                    err, "series \"" + name + "\" is not an array");
            TimeSeries &ts = out->timeSeries(name);
            for (std::size_t i = 0; i < points.size(); ++i) {
                const Json &pair = points.at(i);
                if (!pair.isArray() || pair.size() != 2 ||
                    !pair.at(0).isNumber() || !pair.at(1).isNumber())
                    return schemaError(
                        err, "series \"" + name + "\" point " +
                                 std::to_string(i) + " malformed");
                ts.sample(static_cast<Cycle>(pair.at(0).asUint()),
                          pair.at(1).asDouble());
            }
        }
    }

    return true;
}

std::string
statsJsonText(const StatsRegistry &reg, int indent)
{
    return statsToJson(reg).dump(indent);
}

} // namespace tsoper
