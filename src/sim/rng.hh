/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * All stochastic behaviour in the simulator (workload generation,
 * crash-point selection) is derived from explicitly seeded Rng
 * instances so every experiment is exactly reproducible.
 */

#ifndef TSOPER_SIM_RNG_HH
#define TSOPER_SIM_RNG_HH

#include <cstdint>

namespace tsoper
{

/** xoshiro256** by Blackman & Vigna; public-domain reference algorithm. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for simulation purposes; bias is < 2^-32 for typical bounds.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric-ish burst length: number of consecutive successes with
     * continuation probability @p p, capped at @p cap.
     */
    unsigned
    burst(double p, unsigned cap)
    {
        unsigned n = 1;
        while (n < cap && chance(p))
            ++n;
        return n;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace tsoper

#endif // TSOPER_SIM_RNG_HH
