/**
 * @file
 * InlineCallback: a move-only, allocation-free replacement for
 * std::function<void()> on the event kernel's hot path.
 *
 * std::function heap-allocates any capture larger than its small
 * buffer (16 bytes on libstdc++) — and nearly every event in this
 * simulator captures at least (this, line, continuation), so the seed
 * kernel paid one malloc/free per scheduled event.  InlineCallback
 * stores the callable in fixed in-place storage sized for the largest
 * capture in src/ (Nvm::write's completion event: this + line + a full
 * cacheline of words + a std::function continuation + a cycle).  A
 * capture that does not fit is a compile error, not a silent
 * allocation: grow `capacity` deliberately or shrink the capture.
 */

#ifndef TSOPER_SIM_CALLBACK_HH
#define TSOPER_SIM_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tsoper
{

class InlineCallback
{
  public:
    /** In-place storage, in bytes.  Sized for the largest capture on
     *  the event path (nvm.cc: 120 bytes); see canHold<F>. */
    static constexpr std::size_t capacity = 120;

    /** Whether a callable of type @p F fits the in-place storage;
     *  the constructor static_asserts this, tests assert both ways. */
    template <typename F>
    static constexpr bool canHold =
        sizeof(std::decay_t<F>) <= capacity &&
        alignof(std::decay_t<F>) <= alignof(std::max_align_t);

    InlineCallback() = default;

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineCallback> &&
                  std::is_invocable_r_v<void, D &>>>
    InlineCallback(F &&fn) // NOLINT: implicit, mirrors std::function
    {
        static_assert(sizeof(D) <= capacity,
                      "lambda capture exceeds InlineCallback::capacity; "
                      "shrink the capture or grow the storage "
                      "deliberately (sim/callback.hh)");
        static_assert(alignof(D) <= alignof(std::max_align_t),
                      "over-aligned capture in InlineCallback");
        static_assert(std::is_nothrow_move_constructible_v<D>,
                      "InlineCallback requires nothrow-movable "
                      "callables (events relocate between buckets)");
        ::new (static_cast<void *>(storage_)) D(std::forward<F>(fn));
        ops_ = &OpsImpl<D>::ops;
    }

    InlineCallback(InlineCallback &&other) noexcept
    {
        moveFrom(std::move(other));
    }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(std::move(other));
        }
        return *this;
    }

    InlineCallback(const InlineCallback &) = delete;
    InlineCallback &operator=(const InlineCallback &) = delete;

    ~InlineCallback() { reset(); }

    void
    operator()()
    {
        ops_->invoke(storage_);
    }

    explicit operator bool() const { return ops_ != nullptr; }

  private:
    struct Ops
    {
        void (*invoke)(void *self);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *self) noexcept;
    };

    template <typename D>
    struct OpsImpl
    {
        static void
        invoke(void *self)
        {
            (*static_cast<D *>(self))();
        }
        static void
        relocate(void *src, void *dst) noexcept
        {
            ::new (dst) D(std::move(*static_cast<D *>(src)));
            static_cast<D *>(src)->~D();
        }
        static void
        destroy(void *self) noexcept
        {
            static_cast<D *>(self)->~D();
        }
        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    void
    moveFrom(InlineCallback &&other) noexcept
    {
        if (other.ops_) {
            other.ops_->relocate(other.storage_, storage_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte storage_[capacity];
    const Ops *ops_ = nullptr;
};

} // namespace tsoper

#endif // TSOPER_SIM_CALLBACK_HH
