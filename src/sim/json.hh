/**
 * @file
 * Minimal JSON document model: build, serialize, parse.
 *
 * Exists so the campaign subsystem and the stats exporter can emit
 * machine-readable artifacts (BENCH_*.json) without an external
 * dependency.  Three properties matter here and drove the design:
 *
 *  - Deterministic output: object members keep insertion order and
 *    doubles serialize with the shortest representation that parses
 *    back to the identical bit pattern, so the same data always dumps
 *    to the same bytes (campaign reports are diffed across runs).
 *  - Lossless integers: counters are uint64 and may exceed 2^53, so
 *    numbers remember whether they were created as unsigned, signed
 *    or floating point and serialize accordingly.
 *  - Round-tripping: parse(dump(x)) == x for every document built
 *    through this API.
 */

#ifndef TSOPER_SIM_JSON_HH
#define TSOPER_SIM_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tsoper
{

class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() = default; ///< null
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Number), rep_(NumRep::Dbl), dbl_(d) {}
    Json(std::int64_t i) : type_(Type::Number), rep_(NumRep::Int), int_(i) {}
    Json(std::uint64_t u) : type_(Type::Number), rep_(NumRep::Uint), uint_(u)
    {}
    Json(int i) : Json(static_cast<std::int64_t>(i)) {}
    Json(unsigned u) : Json(static_cast<std::uint64_t>(u)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const;
    double asDouble() const;
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    const std::string &asString() const;

    /** Array: append an element. */
    Json &push(Json v);
    /** Array/object: element count. */
    std::size_t size() const;
    /** Array: element by index (fatal when out of range). */
    const Json &at(std::size_t i) const;

    /** Object: set @p key (replacing an existing member in place,
     *  appending otherwise).  Returns *this for chaining. */
    Json &set(const std::string &key, Json v);
    /** Object: member by key, nullptr when absent. */
    const Json *find(const std::string &key) const;
    /** Object: member by key (fatal when absent). */
    const Json &operator[](const std::string &key) const;
    /** Object: members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const;

    bool operator==(const Json &other) const;
    bool operator!=(const Json &other) const { return !(*this == other); }

    /**
     * Serialize.  @p indent < 0 emits the compact single-line form;
     * @p indent >= 0 pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /**
     * Parse @p text into @p out.  On failure returns false and, when
     * @p err is non-null, stores a message with the byte offset.
     * Trailing non-whitespace after the document is an error.
     */
    static bool parse(const std::string &text, Json *out,
                      std::string *err = nullptr);

  private:
    enum class NumRep
    {
        Dbl,
        Int,
        Uint,
    };

    void dumpTo(std::string &out, int indent, int depth) const;
    void dumpNumber(std::string &out) const;

    Type type_ = Type::Null;
    NumRep rep_ = NumRep::Dbl;
    bool bool_ = false;
    double dbl_ = 0.0;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

} // namespace tsoper

#endif // TSOPER_SIM_JSON_HH
