#include "sim/store_log.hh"

#include <algorithm>

#include "sim/log.hh"

namespace tsoper
{

const std::vector<StoreId> StoreLog::emptyChain_;

StoreLog::StoreLog(unsigned numCores)
    : perCoreStores_(numCores, 0), perCoreSfr_(numCores, 0),
      pendingRf_(numCores)
{
}

void
StoreLog::loadObserved(CoreId core, Addr addr, StoreId value)
{
    (void)addr;
    if (!enabled_ || value == invalidStore)
        return;
    // Only remote stores create cross-thread persist dependencies;
    // own-store observation is already covered by program order.
    if (storeCore(value) == core)
        return;
    auto &pending = pendingRf_[static_cast<unsigned>(core)];
    if (std::find(pending.begin(), pending.end(), value) == pending.end())
        pending.push_back(value);
}

void
StoreLog::storeIssued(CoreId core, StoreId id)
{
    if (!enabled_)
        return;
    const auto c = static_cast<unsigned>(core);
    auto &pending = pendingRf_[c];
    if (!pending.empty()) {
        staged_[id] = std::move(pending);
        pending.clear();
    }
}

void
StoreLog::storeCommitted(CoreId core, Addr addr, StoreId id)
{
    if (!enabled_)
        return;
    const auto c = static_cast<unsigned>(core);
    tsoper_assert(storeSeq(id) == perCoreStores_[c],
                  "store ids must be committed in program order");
    ++perCoreStores_[c];
    ++total_;
    Record rec;
    rec.id = id;
    rec.addr = addr;
    rec.sfrIndex = perCoreSfr_[c];
    auto &chain = chains_[wordAddr(addr)];
    rec.wordChainIndex = static_cast<std::uint32_t>(chain.size());
    chain.push_back(id);
    if (auto it = staged_.find(id); it != staged_.end()) {
        rec.rfPreds = std::move(it->second);
        staged_.erase(it);
    }
    records_.emplace(id, std::move(rec));
}

void
StoreLog::sfrBoundary(CoreId core)
{
    if (!enabled_)
        return;
    ++perCoreSfr_[static_cast<unsigned>(core)];
}

const StoreLog::Record *
StoreLog::find(StoreId id) const
{
    auto it = records_.find(id);
    return it == records_.end() ? nullptr : &it->second;
}

const std::vector<StoreId> &
StoreLog::wordChain(Addr addr) const
{
    auto it = chains_.find(wordAddr(addr));
    return it == chains_.end() ? emptyChain_ : it->second;
}

std::uint64_t
StoreLog::storesOf(CoreId core) const
{
    return perCoreStores_[static_cast<unsigned>(core)];
}

} // namespace tsoper
