/**
 * @file
 * Fundamental types shared by every module of the TSOPER simulator.
 */

#ifndef TSOPER_SIM_TYPES_HH
#define TSOPER_SIM_TYPES_HH

#include <cstdint>
#include <limits>
#include <string>

namespace tsoper
{

/** Simulated time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** A byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/**
 * A cacheline address: a byte address with the block offset stripped
 * (addr >> lineShift).
 */
using LineAddr = std::uint64_t;

/** Identifies a core (and its private cache). */
using CoreId = int;

/** Identifies an atomic group within one core; see core/atomic_group.hh. */
using AgId = std::uint64_t;

/**
 * Identifies one dynamic store instruction uniquely across the whole
 * simulation: (core << 48) | per-core sequence number.
 */
using StoreId = std::uint64_t;

constexpr CoreId invalidCore = -1;

/** Sentinel for "word never written"; distinct from every real id
 *  (makeStoreId(0, 0) is 0, so 0 must remain a valid id). */
constexpr StoreId invalidStore = ~0ull;

/** Cacheline geometry: 64-byte lines, as in the paper's Table I. */
constexpr unsigned lineShift = 6;
constexpr unsigned lineBytes = 1u << lineShift;

/** Word granularity used for store value tracking (8 bytes). */
constexpr unsigned wordShift = 3;
constexpr unsigned wordBytes = 1u << wordShift;
constexpr unsigned wordsPerLine = lineBytes / wordBytes;

constexpr Cycle maxCycle = std::numeric_limits<Cycle>::max();

/** Strip the block offset from a byte address. */
constexpr LineAddr
lineOf(Addr a)
{
    return a >> lineShift;
}

/** First byte address covered by a cacheline address. */
constexpr Addr
addrOfLine(LineAddr l)
{
    return l << lineShift;
}

/** Index of the 8-byte word @p a refers to within its cacheline. */
constexpr unsigned
wordOf(Addr a)
{
    return static_cast<unsigned>((a >> wordShift) & (wordsPerLine - 1));
}

/** Compose a globally unique store identifier. */
constexpr StoreId
makeStoreId(CoreId core, std::uint64_t seq)
{
    return (static_cast<StoreId>(core) << 48) | (seq & 0xffffffffffffull);
}

/** Core that issued store @p id. */
constexpr CoreId
storeCore(StoreId id)
{
    return static_cast<CoreId>(id >> 48);
}

/** Per-core sequence number of store @p id. */
constexpr std::uint64_t
storeSeq(StoreId id)
{
    return id & 0xffffffffffffull;
}

} // namespace tsoper

#endif // TSOPER_SIM_TYPES_HH
