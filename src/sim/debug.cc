#include "sim/debug.hh"

#include <array>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "sim/log.hh"

namespace tsoper::debug
{

namespace
{

constexpr auto numFlags = static_cast<unsigned>(Flag::NumFlags);

std::array<bool, numFlags> flags_{};
bool initialized_ = false;
std::ostream *stream_ = nullptr;

constexpr const char *names_[numFlags] = {
    "slc", "mesi", "ag", "agb", "bsp", "hwrp", "cpu",
};

} // namespace

const char *
flagName(Flag flag)
{
    return names_[static_cast<unsigned>(flag)];
}

void
setFlags(const std::string &csv)
{
    // Parse into a scratch set first so a fatal unknown-flag error
    // leaves the active flags untouched.
    std::array<bool, numFlags> next{};
    std::size_t pos = 0;
    while (pos <= csv.size() && !csv.empty()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string tok =
            csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        if (tok == "all") {
            next.fill(true);
        } else if (!tok.empty()) {
            bool known = false;
            for (unsigned f = 0; f < numFlags; ++f) {
                if (tok == names_[f]) {
                    next[f] = true;
                    known = true;
                }
            }
            if (!known) {
                std::string valid = "all";
                for (unsigned f = 0; f < numFlags; ++f)
                    valid += std::string(",") + names_[f];
                tsoper_fatal("unknown debug flag '", tok,
                             "' (valid: ", valid, ")");
            }
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    initialized_ = true;
    flags_ = next;
}

std::string
flagsCsv()
{
    if (!initialized_)
        initFromEnv();
    std::string csv;
    for (unsigned f = 0; f < numFlags; ++f) {
        if (!flags_[f])
            continue;
        if (!csv.empty())
            csv += ',';
        csv += names_[f];
    }
    return csv;
}

std::vector<std::string>
flagNames()
{
    return {names_, names_ + numFlags};
}

void
initFromEnv()
{
    if (initialized_)
        return;
    initialized_ = true;
    if (const char *env = std::getenv("TSOPER_DEBUG"))
        setFlags(env);
}

bool
enabled(Flag flag)
{
    if (!initialized_)
        initFromEnv();
    return flags_[static_cast<unsigned>(flag)];
}

void
setStream(std::ostream *os)
{
    stream_ = os;
}

void
emit(Flag flag, Cycle when, const std::string &message)
{
    std::ostream &os = stream_ ? *stream_ : std::cerr;
    os << "[" << std::setw(10) << when << "] " << flagName(flag) << ": "
       << message << "\n";
}

} // namespace tsoper::debug
