/**
 * @file
 * System configuration, mirroring Table I of the TSOPER paper plus the
 * knobs that select the persistency engine and coherence protocol.
 */

#ifndef TSOPER_SIM_CONFIG_HH
#define TSOPER_SIM_CONFIG_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tsoper
{

/** Which coherence protocol the private caches speak. */
enum class ProtocolKind
{
    Mesi, ///< Conventional directory MESI (baseline comparison, BSP).
    Slc,  ///< Sharing-list coherence (SCI-inspired; §IV of the paper).
};

/** Which persistency mechanism runs on top of coherence. */
enum class EngineKind
{
    None,      ///< Baseline: no persistency support.
    Stw,       ///< Stop-the-world strict TSO persistency (§III).
    Bsp,       ///< Buffered Strict Persistency, Joshi et al. (through-LLC).
    BspSlc,    ///< BSP with SLC multiversioning (no L1 exclusion).
    BspSlcAgb, ///< BSP+SLC persisting via an unbounded AGB.
    HwRp,      ///< Hardware relaxed persistency at SFR granularity.
    Tsoper,    ///< The paper's full proposal: AGs + SLC + AGB.
};

const char *toString(ProtocolKind kind);
const char *toString(EngineKind kind);

/**
 * Resolve a CLI engine name ("baseline", "baseline-mesi", "hwrp",
 * "bsp", "bsp-slc", "bsp-slc-agb", "stw", "tsoper") to an EngineKind
 * plus the protocol it runs on.  Returns false for unknown names
 * (the shared non-fatal path for tsoper_sim and the campaign runner).
 */
bool engineFromName(const std::string &name, EngineKind *engine,
                    ProtocolKind *protocol);

/** All accepted engine names, in evaluation order. */
const std::vector<std::string> &engineNames();

struct SystemConfig
{
    // --- Cores -----------------------------------------------------
    unsigned numCores = 8;
    unsigned storeBufferEntries = 32;

    // --- Private cache (collapsed L1/L2 level; see DESIGN.md §1) ---
    unsigned privSets = 1024;   ///< 512 KiB, 8-way, 64 B lines.
    unsigned privWays = 8;
    Cycle privLatency = 4;      ///< Hit latency, cycles.
    /** Miss-status holding registers per core: distinct lines a core
     *  may have missing in flight; further misses to new lines stall
     *  and retry as registers free (mshr.full_stalls counts them). */
    unsigned mshrEntries = 8;

    // --- Shared LLC ------------------------------------------------
    unsigned llcBanks = 8;
    unsigned llcSets = 1024;    ///< Per bank: 1 MiB, 16-way (8 MiB total).
    unsigned llcWays = 16;
    Cycle llcLatency = 20;

    // --- Directory (banked with the LLC) ---------------------------
    unsigned dirEntriesPerBank = 32768;
    unsigned dirEvictBufferEntries = 64;

    // --- NoC (4x4 mesh: 8 cores + 8 LLC/dir/MC nodes) ---------------
    unsigned meshCols = 4;
    unsigned meshRows = 4;
    Cycle hopLatency = 3;
    unsigned linkBytesPerCycle = 16;
    unsigned ctrlMsgBytes = 8;  ///< Header-only message size.

    // --- NVM ---------------------------------------------------------
    unsigned nvmRanks = 8;      ///< One memory controller per rank.
    Cycle nvmWriteLatency = 360;
    Cycle nvmReadLatency = 240;
    /** Rank occupancy per access: DDR ranks pipeline — the service
     *  *latency* is hundreds of cycles but a rank accepts a new burst
     *  every few cycles.  Same-address FIFO order is preserved because
     *  issue order fixes completion order at constant latency. */
    Cycle nvmWriteOccupancy = 32;
    Cycle nvmReadOccupancy = 16;

    // --- AGB (per memory channel, §II-B/C) ---------------------------
    bool agbDistributed = true;
    unsigned agbSliceLines = 160; ///< 10 KiB per channel at 64 B lines.
    bool agbUnbounded = false;    ///< BSP+SLC+AGB idealization (§V-B).
    Cycle agbWriteLatency = 2;    ///< SRAM buffer write, cycles/line.

    // --- Atomic groups / epochs -------------------------------------
    unsigned agMaxLines = 80;     ///< Hard AG cap (§V "Systems").
    unsigned evictBufferEntries = 16; ///< §III-B footnote 3.
    unsigned bspEpochStores = 10000;  ///< BSP epoch length (§V-B).

    // --- HW-RP --------------------------------------------------------
    /** Per-core persist queue depth.  The paper gives HW-RP every
     *  advantage (§V "Systems"); a deep buffer keeps cores from
     *  stalling on persist backpressure. */
    unsigned hwrpQueueEntries = 512;
    /** Per-memory-controller write-pending-queue depth (WPQ [37]):
     *  entries are durable on arrival and drain to NVM behind. */
    unsigned wpqEntriesPerMc = 64;

    // --- Mode selection ------------------------------------------------
    ProtocolKind protocol = ProtocolKind::Slc;
    EngineKind engine = EngineKind::Tsoper;

    // --- Event kernel (sim/shard_queue.hh, docs/pdes.md) ----------------
    /** Worker threads for the sharded event kernel.  1 = the classic
     *  sequential kernel.  Fixed-seed results are byte-identical at
     *  any value (the pdes_determinism ctest enforces it). */
    unsigned threads = 1;

    // --- Instrumentation -------------------------------------------------
    bool recordStores = false;  ///< Keep the store log for crash checking.
    std::uint64_t seed = 1;
    /** Structured-trace categories to enable at construction
     *  ("ag,agb,slc" or "all"; see sim/trace.hh).  Empty leaves the
     *  process-global trace mask untouched, so a TraceSession set up
     *  by the caller (campaign runner, tsoper_sim) stays in charge. */
    std::string traceCategories;
    /** Flight-recorder depth (last-N trace records kept for crash
     *  dumps); 0 leaves the recorder as the caller configured it. */
    unsigned flightRecorderDepth = 0;

    // --- Progress watchdog (sim/watchdog.hh) ---------------------------
    /** Events between livelock checks; 0 disables the watchdog and
     *  leaves only the simulated-cycle budget as a backstop. */
    std::uint64_t watchdogCheckEvents = 2'000'000;
    /** Flat-progress chunks before the run is declared hung. */
    unsigned watchdogStallChecks = 8;

    /** Throw (fatal) if the configuration is internally inconsistent. */
    void validate() const;

    /** Total AGB capacity in cachelines across all slices. */
    unsigned
    agbTotalLines() const
    {
        return agbSliceLines * (agbDistributed ? nvmRanks : 1);
    }

    /** Print a Table-I-style description of the configuration. */
    void describe(std::ostream &os) const;
};

/**
 * Canonical configuration for one of the paper's evaluated systems,
 * picking the protocol each engine requires (BSP runs on MESI; the
 * baseline, BSP+SLC and onwards run on SLC).
 */
SystemConfig makeConfig(EngineKind engine);

} // namespace tsoper

#endif // TSOPER_SIM_CONFIG_HH
