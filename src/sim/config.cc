#include "sim/config.hh"

#include <ostream>

#include "sim/log.hh"

namespace tsoper
{

const char *
toString(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::Mesi: return "MESI";
      case ProtocolKind::Slc:  return "SLC";
    }
    return "?";
}

const char *
toString(EngineKind kind)
{
    switch (kind) {
      case EngineKind::None:      return "baseline";
      case EngineKind::Stw:       return "STW";
      case EngineKind::Bsp:       return "BSP";
      case EngineKind::BspSlc:    return "BSP+SLC";
      case EngineKind::BspSlcAgb: return "BSP+SLC+AGB";
      case EngineKind::HwRp:      return "HW-RP";
      case EngineKind::Tsoper:    return "TSOPER";
    }
    return "?";
}

bool
engineFromName(const std::string &name, EngineKind *engine,
               ProtocolKind *protocol)
{
    // Every engine runs on SLC except BSP and the MESI baseline,
    // mirroring makeConfig's pairing.
    *protocol = ProtocolKind::Slc;
    if (name == "baseline") {
        *engine = EngineKind::None;
    } else if (name == "baseline-mesi") {
        *engine = EngineKind::None;
        *protocol = ProtocolKind::Mesi;
    } else if (name == "hwrp") {
        *engine = EngineKind::HwRp;
    } else if (name == "bsp") {
        *engine = EngineKind::Bsp;
        *protocol = ProtocolKind::Mesi;
    } else if (name == "bsp-slc") {
        *engine = EngineKind::BspSlc;
    } else if (name == "bsp-slc-agb") {
        *engine = EngineKind::BspSlcAgb;
    } else if (name == "stw") {
        *engine = EngineKind::Stw;
    } else if (name == "tsoper") {
        *engine = EngineKind::Tsoper;
    } else {
        return false;
    }
    return true;
}

const std::vector<std::string> &
engineNames()
{
    static const std::vector<std::string> names = {
        "baseline", "baseline-mesi", "hwrp", "bsp",
        "bsp-slc",  "bsp-slc-agb",   "stw",  "tsoper"};
    return names;
}

static bool
isPow2(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

void
SystemConfig::validate() const
{
    if (numCores == 0 || numCores > 64)
        tsoper_fatal("numCores must be in [1, 64], got ", numCores);
    if (!isPow2(privSets) || !isPow2(llcSets))
        tsoper_fatal("cache set counts must be powers of two");
    if (!isPow2(llcBanks) || !isPow2(nvmRanks))
        tsoper_fatal("bank/rank counts must be powers of two");
    if (privWays == 0 || llcWays == 0)
        tsoper_fatal("cache associativity must be non-zero");
    if (storeBufferEntries == 0)
        tsoper_fatal("store buffer must have at least one entry");
    if (agMaxLines == 0)
        tsoper_fatal("agMaxLines must be non-zero");
    if (!agbUnbounded && agMaxLines > agbSliceLines * nvmRanks)
        tsoper_fatal("an atomic group (", agMaxLines,
                     " lines) cannot exceed total AGB capacity (",
                     agbSliceLines * nvmRanks, " lines)");
    if (meshCols * meshRows < numCores + llcBanks)
        tsoper_fatal("mesh too small: need ", numCores + llcBanks,
                     " nodes, have ", meshCols * meshRows);
    const bool needsSlc = engine == EngineKind::Tsoper ||
                          engine == EngineKind::Stw ||
                          engine == EngineKind::BspSlc ||
                          engine == EngineKind::BspSlcAgb ||
                          engine == EngineKind::HwRp;
    if (needsSlc && protocol != ProtocolKind::Slc)
        tsoper_fatal(toString(engine), " requires the SLC protocol");
    if (engine == EngineKind::Bsp && protocol != ProtocolKind::Mesi)
        tsoper_fatal("BSP persists through the LLC on MESI");
    if (threads == 0 || threads > 64)
        tsoper_fatal("threads must be in [1, 64], got ", threads);
    if (threads > 1 && hopLatency == 0)
        tsoper_fatal("threads > 1 requires a positive hop latency "
                     "(the sharded kernel's lookahead)");
    if (mshrEntries == 0)
        tsoper_fatal("a core needs at least one MSHR entry");
    if (llcLatency < 2 * hopLatency)
        tsoper_fatal("llcLatency (", llcLatency,
                     ") must be at least twice hopLatency (", hopLatency,
                     "): the LLC data-plane pipe spends one hop each "
                     "way inside the access latency");
}

void
SystemConfig::describe(std::ostream &os) const
{
    os << "System configuration (cf. paper Table I)\n"
       << "  Cores                 " << numCores
       << " in-order, TSO, " << storeBufferEntries << "-entry SB\n"
       << "  Private cache         " << (privSets * privWays * lineBytes /
                                         1024)
       << " KiB, " << privWays << "-way, " << privLatency << "-cycle\n"
       << "  Shared LLC            " << llcBanks << " banks x "
       << (llcSets * llcWays * lineBytes / 1024) << " KiB, " << llcWays
       << "-way, " << llcLatency << "-cycle\n"
       << "  Directory             " << llcBanks << " banks x "
       << dirEntriesPerBank << " entries, " << dirEvictBufferEntries
       << "-entry eviction buffer\n"
       << "  NoC                   " << meshCols << "x" << meshRows
       << " mesh, " << hopLatency << "-cycle hops, "
       << linkBytesPerCycle << " B/cycle links\n"
       << "  NVM                   " << nvmRanks << " ranks, "
       << nvmWriteLatency << "/" << nvmReadLatency
       << "-cycle write/read\n"
       << "  AGB                   "
       << (agbUnbounded
               ? std::string("unbounded (idealized)")
               : std::to_string(agbSliceLines * lineBytes / 1024) +
                     " KiB/channel (" + std::to_string(agbSliceLines) +
                     " lines)")
       << (agbDistributed ? ", distributed + arbiter" : ", centralized")
       << "\n"
       << "  Atomic group cap      " << agMaxLines << " cachelines\n"
       << "  Eviction buffer       " << evictBufferEntries << " entries\n"
       << "  Protocol / engine     " << toString(protocol) << " / "
       << toString(engine) << "\n"
       << "  Event kernel          " << threads
       << (threads == 1 ? " thread (sequential)"
                        : " threads (sharded, conservative)")
       << "\n";
}

SystemConfig
makeConfig(EngineKind engine)
{
    SystemConfig cfg;
    cfg.engine = engine;
    switch (engine) {
      case EngineKind::Bsp:
        cfg.protocol = ProtocolKind::Mesi;
        break;
      case EngineKind::BspSlcAgb:
        cfg.protocol = ProtocolKind::Slc;
        cfg.agbUnbounded = true;
        break;
      default:
        cfg.protocol = ProtocolKind::Slc;
        break;
    }
    return cfg;
}

} // namespace tsoper
