/**
 * @file
 * JSON import/export for the statistics registry.
 *
 * Serializes every counter, histogram and time series of a
 * StatsRegistry into a Json document (and back), so simulation results
 * can be stored as machine-readable artifacts and compared across
 * runs.  The schema (see docs/campaigns.md for the full reference):
 *
 *   {
 *     "counters":   {"<name>": <uint>, ...},
 *     "histograms": {"<name>": {"samples": u, "total": u, "min": u,
 *                               "max": u, "mean": f,
 *                               "buckets": [[value, count], ...]},
 *                    ...},
 *     "series":     {"<name>": [[cycle, value], ...], ...}
 *   }
 *
 * Maps are emitted in the registry's (sorted) name order and derived
 * histogram moments are recomputed on import, so export -> import ->
 * export is byte-identical.
 */

#ifndef TSOPER_SIM_STATS_JSON_HH
#define TSOPER_SIM_STATS_JSON_HH

#include <string>

#include "sim/json.hh"
#include "sim/stats.hh"

namespace tsoper
{

/** Serialize @p reg into the schema above. */
Json statsToJson(const StatsRegistry &reg);

/**
 * Rebuild a registry from a document produced by statsToJson.
 * Entries are *added* into @p out (callers normally pass a fresh
 * registry).  Returns false with a message in @p err when the
 * document does not match the schema.
 */
bool statsFromJson(const Json &doc, StatsRegistry *out,
                   std::string *err = nullptr);

/** Convenience: statsToJson(reg).dump(indent). */
std::string statsJsonText(const StatsRegistry &reg, int indent = 2);

} // namespace tsoper

#endif // TSOPER_SIM_STATS_JSON_HH
