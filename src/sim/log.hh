/**
 * @file
 * Error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant of the simulator was violated.
 * fatal()  — the user supplied an impossible configuration.
 * warn()   — something is suspicious but the simulation continues.
 */

#ifndef TSOPER_SIM_LOG_HH
#define TSOPER_SIM_LOG_HH

#include <cstdint>
#include <sstream>
#include <string>

namespace tsoper
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);

/**
 * RAII: while alive, tsoper_warn / tsoper_panic lines carry the
 * current simulated cycle in the same "[     cycle] " prefix the debug
 * tracer uses.  System installs one over its event queue, so any
 * warning or panic raised while a machine is live is timestamped.
 *
 * Nested scopes stack (the innermost wins); the source is thread-local
 * so concurrent campaign workers don't read each other's clocks.
 */
class ScopedLogCycleSource
{
  public:
    using Fn = std::uint64_t (*)(const void *ctx);

    ScopedLogCycleSource(Fn fn, const void *ctx);
    ~ScopedLogCycleSource();

    ScopedLogCycleSource(const ScopedLogCycleSource &) = delete;
    ScopedLogCycleSource &operator=(const ScopedLogCycleSource &) = delete;

  private:
    Fn prevFn_;
    const void *prevCtx_;
};

/** Build a message from stream-insertable parts. */
template <typename... Args>
std::string
logFormat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace tsoper

#define tsoper_panic(...) \
    ::tsoper::panicImpl(__FILE__, __LINE__, ::tsoper::logFormat(__VA_ARGS__))

#define tsoper_fatal(...) \
    ::tsoper::fatalImpl(__FILE__, __LINE__, ::tsoper::logFormat(__VA_ARGS__))

#define tsoper_warn(...) \
    ::tsoper::warnImpl(__FILE__, __LINE__, ::tsoper::logFormat(__VA_ARGS__))

/** Invariant check that survives NDEBUG builds. */
#define tsoper_assert(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::tsoper::panicImpl(__FILE__, __LINE__,                        \
                ::tsoper::logFormat("assertion failed: " #cond " ",       \
                                    ##__VA_ARGS__));                       \
        }                                                                  \
    } while (0)

#endif // TSOPER_SIM_LOG_HH
