/**
 * @file
 * Flag-gated debug tracing, in the spirit of gem5's DPRINTF.
 *
 * Enable at runtime with the TSOPER_DEBUG environment variable or
 * programmatically:
 *
 *   TSOPER_DEBUG=slc,ag ./build/tools/tsoper_sim --bench=radix ...
 *   tsoper::debug::setFlags("agb,cpu");
 *
 * Trace lines carry the cycle and the emitting component:
 *
 *   [     1234] slc: core 3 links as head of line 0x140000a
 *
 * The check is a single branch when tracing is off; trace calls build
 * their message lazily.
 */

#ifndef TSOPER_SIM_DEBUG_HH
#define TSOPER_SIM_DEBUG_HH

#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tsoper::debug
{

enum class Flag : unsigned
{
    Slc,  ///< Sharing-list protocol transactions and list surgery.
    Mesi, ///< MESI protocol transactions.
    Ag,   ///< Atomic-group lifecycle (TSOPER/STW engines).
    Agb,  ///< AGB allocation / buffering / drain.
    Bsp,  ///< BSP epoch lifecycle.
    HwRp, ///< HW-RP SFR flushes.
    Cpu,  ///< Core op retirement and sync.
    NumFlags,
};

/** Is @p flag currently traced? */
bool enabled(Flag flag);

/** Enable exactly the comma-separated flags in @p csv ("slc,ag");
 *  "all" enables everything, "" disables everything.  An unknown flag
 *  name is fatal; the message lists the valid set. */
void setFlags(const std::string &csv);

/** Currently enabled flags as a canonical csv ("" when off) — used to
 *  forward TSOPER_DEBUG into subprocess-isolated campaign cells. */
std::string flagsCsv();

/** All flag names, in enum order (CLI listings). */
std::vector<std::string> flagNames();

/** Initialize from the TSOPER_DEBUG environment variable (called once
 *  automatically before the first trace check). */
void initFromEnv();

/** Redirect trace output (default: std::cerr). */
void setStream(std::ostream *os);

/** Emit one trace line; prefer the TSOPER_TRACE macro. */
void emit(Flag flag, Cycle when, const std::string &message);

/** Short name of @p flag ("slc", "ag", ...). */
const char *flagName(Flag flag);

} // namespace tsoper::debug

/**
 * Trace macro: evaluates its message expression only when the flag is
 * enabled.  @p msg is a stream expression, e.g.
 *   TSOPER_TRACE(Slc, eq_.now(), "core " << c << " links line " << l);
 */
#define TSOPER_TRACE(flag, when, msg)                                   \
    do {                                                                \
        if (::tsoper::debug::enabled(::tsoper::debug::Flag::flag)) {    \
            std::ostringstream tsoper_trace_os_;                        \
            tsoper_trace_os_ << msg;                                    \
            ::tsoper::debug::emit(::tsoper::debug::Flag::flag, (when),  \
                                  tsoper_trace_os_.str());              \
        }                                                               \
    } while (0)

#endif // TSOPER_SIM_DEBUG_HH
