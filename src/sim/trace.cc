#include "sim/trace.hh"

#include <algorithm>
#include <iomanip>
#include <mutex>
#include <sstream>

#include "sim/log.hh"

namespace tsoper::trace
{

namespace detail
{
bool mask_[static_cast<unsigned>(Category::NumCategories)] = {};
} // namespace detail

namespace
{

constexpr auto numCategories =
    static_cast<unsigned>(Category::NumCategories);
constexpr auto numEvents = static_cast<unsigned>(Event::NumEvents);

constexpr const char *categoryNames_[numCategories] = {
    "ag", "agb", "slc", "sb", "llc", "noc", "persist",
};

struct EventInfo
{
    Category cat;
    const char *name;
};

constexpr EventInfo events_[numEvents] = {
    {Category::Ag, "ag_frozen"},
    {Category::Ag, "ag_retired"},
    {Category::Ag, "epoch_closed"},
    {Category::Ag, "epoch_persisted"},
    {Category::Ag, "sfr_flushed"},
    {Category::Ag, "stw_stall"},
    {Category::Agb, "agb_grant"},
    {Category::Agb, "agb_occupancy"},
    {Category::Agb, "agb_drained"},
    {Category::Slc, "slc_new_head"},
    {Category::Slc, "slc_invalidate"},
    {Category::Slc, "slc_dir_evict"},
    {Category::Slc, "slc_persist"},
    {Category::Sb, "sb_depth"},
    {Category::Llc, "llc_access"},
    {Category::Noc, "noc_msg"},
    {Category::Persist, "persist_issue"},
    {Category::Persist, "persist_commit"},
    {Category::Persist, "group_durable"},
    {Category::Persist, "pb_edge"},
};

/** Serializes sink dispatch and the flight ring.  The mask itself is
 *  written only between runs (setCategories), never under the lock. */
std::mutex mutex_;
std::vector<Sink *> sinks_;

std::vector<Record> flightRing_;
std::size_t flightNext_ = 0;
std::size_t flightCount_ = 0;
bool flightOn_ = false;

} // namespace

Category
categoryOf(Event e)
{
    return events_[static_cast<unsigned>(e)].cat;
}

const char *
eventName(Event e)
{
    return events_[static_cast<unsigned>(e)].name;
}

const char *
categoryName(Category c)
{
    return categoryNames_[static_cast<unsigned>(c)];
}

const std::vector<std::string> &
categoryNames()
{
    static const std::vector<std::string> all = [] {
        std::vector<std::string> v;
        for (unsigned c = 0; c < numCategories; ++c)
            v.push_back(categoryNames_[c]);
        return v;
    }();
    return all;
}

void
setCategories(const std::string &csv)
{
    bool next[numCategories] = {};
    std::size_t pos = 0;
    while (pos <= csv.size() && !csv.empty()) {
        const std::size_t comma = csv.find(',', pos);
        const std::string tok =
            csv.substr(pos, comma == std::string::npos ? std::string::npos
                                                       : comma - pos);
        if (tok == "all") {
            std::fill(next, next + numCategories, true);
        } else if (!tok.empty()) {
            bool known = false;
            for (unsigned c = 0; c < numCategories; ++c) {
                if (tok == categoryNames_[c]) {
                    next[c] = true;
                    known = true;
                }
            }
            if (!known) {
                std::string valid = "all";
                for (unsigned c = 0; c < numCategories; ++c)
                    valid += std::string(",") + categoryNames_[c];
                tsoper_fatal("unknown trace category '", tok,
                             "' (valid: ", valid, ")");
            }
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    std::copy(next, next + numCategories, detail::mask_);
}

std::string
categoriesCsv()
{
    std::string csv;
    for (unsigned c = 0; c < numCategories; ++c) {
        if (!detail::mask_[c])
            continue;
        if (!csv.empty())
            csv += ',';
        csv += categoryNames_[c];
    }
    return csv;
}

void
addSink(Sink *sink)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sinks_.push_back(sink);
}

void
removeSink(Sink *sink)
{
    std::lock_guard<std::mutex> lock(mutex_);
    sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink),
                 sinks_.end());
}

bool
anySink()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return !sinks_.empty() || flightOn_;
}

void
enableFlightRecorder(unsigned depth)
{
    std::lock_guard<std::mutex> lock(mutex_);
    flightRing_.assign(depth ? depth : 1, Record{});
    flightNext_ = 0;
    flightCount_ = 0;
    flightOn_ = depth > 0;
}

void
disableFlightRecorder()
{
    std::lock_guard<std::mutex> lock(mutex_);
    flightOn_ = false;
    flightRing_.clear();
    flightNext_ = 0;
    flightCount_ = 0;
}

bool
flightRecorderActive()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return flightOn_;
}

std::string
formatRecord(const Record &r)
{
    std::ostringstream os;
    os << "[" << std::setw(10) << r.end << "] "
       << categoryName(categoryOf(r.event)) << "." << eventName(r.event);
    if (r.core != invalidCore)
        os << " core=" << r.core;
    if (r.begin != r.end)
        os << " span=" << r.begin << ".." << r.end;
    os << " id=0x" << std::hex << r.id << std::dec << " a=" << r.a
       << " b=" << r.b;
    return os.str();
}

std::string
flightRecorderDump()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!flightOn_ || flightCount_ == 0)
        return {};
    std::ostringstream os;
    os << "flight recorder (last " << flightCount_ << " trace records):";
    const std::size_t depth = flightRing_.size();
    const std::size_t first =
        flightCount_ < depth ? 0 : flightNext_ % depth;
    for (std::size_t i = 0; i < flightCount_; ++i)
        os << "\n  " << formatRecord(flightRing_[(first + i) % depth]);
    return os.str();
}

namespace detail
{

void
emitRecord(const Record &r)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (flightOn_) {
        flightRing_[flightNext_] = r;
        flightNext_ = (flightNext_ + 1) % flightRing_.size();
        flightCount_ = std::min(flightCount_ + 1, flightRing_.size());
    }
    for (Sink *s : sinks_)
        s->record(r);
}

} // namespace detail

} // namespace tsoper::trace
