#include "sim/stats.hh"

#include <algorithm>
#include <ostream>

namespace tsoper
{

double
Histogram::mean() const
{
    return samples_ ? static_cast<double>(total_) /
                          static_cast<double>(samples_)
                    : 0.0;
}

double
Histogram::cumulativeAt(std::uint64_t v) const
{
    if (samples_ == 0)
        return 0.0;
    std::uint64_t below = 0;
    const std::uint64_t flatEnd =
        std::min<std::uint64_t>(v + 1, flat_.size());
    for (std::uint64_t value = 0; value < flatEnd; ++value)
        below += flat_[static_cast<std::size_t>(value)];
    for (const auto &[value, count] : spill_) {
        if (value > v)
            break;
        below += count;
    }
    return static_cast<double>(below) / static_cast<double>(samples_);
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (samples_ == 0)
        return 0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(samples_) + 0.5);
    std::uint64_t seen = 0;
    for (std::uint64_t value = 0; value < flat_.size(); ++value) {
        seen += flat_[static_cast<std::size_t>(value)];
        if (flat_[static_cast<std::size_t>(value)] && seen >= target)
            return value;
    }
    for (const auto &[value, count] : spill_) {
        seen += count;
        if (seen >= target)
            return value;
    }
    return max_;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
Histogram::buckets() const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    out.reserve(spill_.size() + 16);
    for (std::uint64_t value = 0; value < flat_.size(); ++value) {
        if (flat_[static_cast<std::size_t>(value)])
            out.emplace_back(value, flat_[static_cast<std::size_t>(value)]);
    }
    // Spill values are all >= flatSize, so appending keeps the list
    // sorted.
    out.insert(out.end(), spill_.begin(), spill_.end());
    return out;
}

void
Histogram::reset()
{
    flat_.clear();
    spill_.clear();
    samples_ = total_ = min_ = max_ = 0;
}

Counter &
StatsRegistry::counter(const std::string &name)
{
    return counters_[name];
}

Histogram &
StatsRegistry::histogram(const std::string &name)
{
    return histograms_[name];
}

TimeSeries &
StatsRegistry::timeSeries(const std::string &name)
{
    return series_[name];
}

std::uint64_t
StatsRegistry::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

bool
StatsRegistry::hasHistogram(const std::string &name) const
{
    return histograms_.count(name) != 0;
}

void
StatsRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, h] : histograms_) {
        os << name << ".samples " << h.samples() << "\n";
        os << name << ".mean " << h.mean() << "\n";
        os << name << ".max " << h.max() << "\n";
    }
}

} // namespace tsoper
