#include "sim/watchdog.hh"

#include <sstream>

#include "sim/event_queue.hh"
#include "sim/shard_queue.hh"

namespace tsoper
{

std::string
ProgressWatchdog::check(std::uint64_t progress, Cycle now)
{
    if (!primed_) {
        primed_ = true;
        lastProgress_ = progress;
        lastCycle_ = now;
        return {};
    }

    frozenChunks_ = now == lastCycle_ ? frozenChunks_ + 1 : 0;
    stalledChunks_ = progress == lastProgress_ ? stalledChunks_ + 1 : 0;
    lastProgress_ = progress;
    lastCycle_ = now;

    std::ostringstream os;
    if (cfg_.frozenChecks && frozenChunks_ >= cfg_.frozenChecks) {
        os << "simulated time frozen at cycle " << now << " across "
           << static_cast<unsigned long long>(frozenChunks_) *
                  cfg_.checkEveryEvents
           << " events (zero-delay event livelock)";
        return os.str();
    }
    if (cfg_.stallChecks && stalledChunks_ >= cfg_.stallChecks) {
        os << "no forward progress (signature stuck at " << progress
           << ") across "
           << static_cast<unsigned long long>(stalledChunks_) *
                  cfg_.checkEveryEvents
           << " events ending at cycle " << now;
        return os.str();
    }
    return {};
}

void
ProgressWatchdog::reset()
{
    primed_ = false;
    stalledChunks_ = 0;
    frozenChunks_ = 0;
}

namespace
{

[[noreturn]] void
throwHung(const char *phase, const std::string &reason,
          const std::function<std::string()> &dumpFn)
{
    std::string msg = std::string("hung during ") + phase + ": " + reason;
    if (dumpFn) {
        const std::string dump = dumpFn();
        if (!dump.empty())
            msg += "\n" + dump;
    }
    throw HungError(msg);
}

template <typename Queue>
void
runGuardedImpl(Queue &eq, const std::function<bool()> &pred,
               Cycle maxCycles, const WatchdogConfig &cfg,
               const std::function<std::uint64_t()> &progressFn,
               const std::function<std::string()> &dumpFn,
               const char *phase)
{
    const std::uint64_t chunk = cfg.checkEveryEvents;
    ProgressWatchdog dog(cfg);
    for (;;) {
        const std::uint64_t before = eq.executed();
        if (chunk)
            eq.runFor(pred, maxCycles, chunk);
        else
            eq.runUntil(pred, maxCycles);
        if (pred())
            return;
        if (eq.empty()) {
            std::ostringstream os;
            os << "event queue drained at cycle " << eq.now()
               << " with the " << phase
               << " phase incomplete (deadlock)";
            throwHung(phase, os.str(), dumpFn);
        }
        if (eq.executed() == before) {
            // Queue non-empty, nothing ran: the next event lies
            // beyond the cycle budget.
            std::ostringstream os;
            os << "exceeded the " << maxCycles
               << "-cycle simulated budget at cycle " << eq.now();
            throwHung(phase, os.str(), dumpFn);
        }
        if (chunk) {
            const std::string reason =
                dog.check(progressFn ? progressFn() : 0, eq.now());
            if (!reason.empty())
                throwHung(phase, reason, dumpFn);
        }
    }
}

} // namespace

void
runGuarded(EventQueue &eq, const std::function<bool()> &pred,
           Cycle maxCycles, const WatchdogConfig &cfg,
           const std::function<std::uint64_t()> &progressFn,
           const std::function<std::string()> &dumpFn, const char *phase)
{
    runGuardedImpl(eq, pred, maxCycles, cfg, progressFn, dumpFn, phase);
}

void
runGuarded(ShardedEventQueue &eq, const std::function<bool()> &pred,
           Cycle maxCycles, const WatchdogConfig &cfg,
           const std::function<std::uint64_t()> &progressFn,
           const std::function<std::string()> &dumpFn, const char *phase)
{
    runGuardedImpl(eq, pred, maxCycles, cfg, progressFn, dumpFn, phase);
}

} // namespace tsoper
