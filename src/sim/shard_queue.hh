/**
 * @file
 * Sharded event kernel: conservative parallel discrete-event
 * simulation over per-shard EventQueues.
 *
 * The simulated machine is partitioned into shards (one per mesh tile
 * or tile group; see docs/pdes.md).  Each shard owns a private
 * EventQueue and may touch only its own tiles' state; interactions
 * between shards travel as timestamped messages via post(), whose
 * delivery latency must be at least the kernel's *lookahead* — the
 * minimum NoC hop latency, since no physical cross-tile interaction
 * can land sooner than one hop.
 *
 * Synchronization is the simple conservative scheme (barrier-window
 * advance, picked over null-messages per ROADMAP item 2), with
 * *uneven* per-shard windows:
 *
 *   1. at each barrier, T_s = shard s's next pending event cycle
 *      (unbounded if s is idle);
 *   2. every shard executes events up to its own limit
 *          limit_s = min over o != s of T_o, plus L-1
 *      (L = lookahead) in parallel — safe because the earliest
 *      message any other shard o can still produce departs at or
 *      after T_o and so arrives at or after T_o + L > limit_s;
 *   3. barrier: cross-shard messages accumulated in per-shard
 *      outboxes are drained into their destination queues in shard
 *      order, then the loop repeats.
 *
 * Uneven limits generalize the classic uniform window [H, H+L)
 * (H = min T_s): the shard *at* the horizon gets a limit derived
 * from the second-earliest shard, and when every other shard is
 * idle its limit is unbounded — so activity concentrated on one
 * shard runs barrier-free at plain-EventQueue speed instead of
 * paying a window per L cycles.
 *
 * Determinism: within a window each shard executes its own (cycle,
 * seq)-ordered queue sequentially, and the barrier drain assigns
 * insertion sequence numbers in (source shard, post order) — both
 * independent of the worker-thread count and of wall-clock timing, so
 * fixed-seed runs are byte-identical at any --threads=N.  The
 * pdes_determinism ctest and ShardQueueTest.DeterministicAcrossThreads
 * enforce this.
 *
 * With one shard (or one thread) the kernel degenerates to the plain
 * sequential EventQueue — same event order, same now()/executed()
 * observables — so a single-shard machine behaves bit-for-bit like
 * the pre-sharding simulator.
 */

#ifndef TSOPER_SIM_SHARD_QUEUE_HH
#define TSOPER_SIM_SHARD_QUEUE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/shard_fence.hh"
#include "sim/types.hh"

namespace tsoper
{

class ShardedEventQueue
{
  public:
    using Callback = EventQueue::Callback;

    /**
     * @param shards    number of event-queue shards (>= 1).
     * @param threads   worker threads; clamped to [1, shards].  The
     *                  calling thread acts as worker 0; threads-1
     *                  pool threads are spawned.
     * @param lookahead minimum cross-shard message latency in cycles.
     *                  Must be > 0 when shards > 1 — zero lookahead
     *                  would admit same-cycle cross-shard messages,
     *                  which the window scheme cannot order.
     */
    ShardedEventQueue(unsigned shards, unsigned threads, Cycle lookahead);
    ~ShardedEventQueue();

    ShardedEventQueue(const ShardedEventQueue &) = delete;
    ShardedEventQueue &operator=(const ShardedEventQueue &) = delete;

    EventQueue &shard(unsigned s) { return *queues_[s]; }
    const EventQueue &shard(unsigned s) const { return *queues_[s]; }

    unsigned shards() const { return (unsigned)queues_.size(); }

    /** Effective worker count (after clamping to the shard count). */
    unsigned threads() const { return threads_; }

    Cycle lookahead() const { return lookahead_; }

    /**
     * Install the tile-ownership map enforced (via ShardFenceScope /
     * shardFenceCheck) while shard events execute; nullptr disarms.
     * The map must outlive the runs it guards.
     */
    void setFenceMap(const ShardFenceMap *map) { fenceMap_ = map; }

    /**
     * Cross-shard message: run @p fn on shard @p dst at cycle
     * shard(src).now() + delay.  From inside shard execution, @p src
     * must be the executing shard and, when src != dst, @p delay must
     * be >= lookahead(); the message is buffered in the source
     * shard's outbox and delivered at the next window barrier.
     * Outside a run (setup), the event is scheduled directly.
     */
    void post(unsigned src, unsigned dst, Cycle delay, Callback fn);

    /** Run until all shards drain or the horizon passes @p maxCycle. */
    Cycle run(Cycle maxCycle = maxCycle_);

    /**
     * Run until @p pred holds, the queues drain, or @p maxCycle
     * passes.  With multiple shards, @p pred is evaluated at window
     * barriers only (it may inspect cross-shard state, which is
     * inconsistent mid-window).
     */
    Cycle runUntil(const std::function<bool()> &pred,
                   Cycle maxCycle = maxCycle_);

    /**
     * Like runUntil, but additionally stops once at least
     * @p maxEvents events have executed.  With multiple shards the
     * budget is checked at window barriers and each shard's window
     * is individually capped at the remaining budget, so a burst may
     * overshoot by at most (shards-1) times the remaining budget —
     * in particular an unbounded uneven window still returns.
     */
    Cycle runFor(const std::function<bool()> &pred, Cycle maxCycle,
                 std::uint64_t maxEvents);

    /** Furthest simulated time any shard has reached (monotonic). */
    Cycle now() const;

    bool empty() const;
    std::size_t pending() const;
    std::uint64_t executed() const;

    /** Synchronization windows executed (multi-shard mode). */
    std::uint64_t windows() const { return windows_; }

    /** Cross-shard messages delivered through outboxes. */
    std::uint64_t crossPosts() const { return crossPosts_; }

  private:
    static constexpr Cycle maxCycle_ = maxCycle;

    struct PostRec
    {
        unsigned dst;
        Cycle when;
        Callback fn;
    };

    /** Per-source-shard message buffer, cacheline-padded: during a
     *  window each is appended to only by the worker executing that
     *  shard. */
    struct alignas(64) Outbox
    {
        std::vector<PostRec> msgs;
    };

    bool singleShard() const { return queues_.size() == 1; }

    /** Earliest pending event cycle across shards; false if none. */
    bool horizon(Cycle *h) const;

    /**
     * Fill limits_[s] with each shard's safe execution limit for the
     * next window (min over other shards' next-event cycles, plus
     * lookahead-1, capped at @p maxCycle) and return the number of
     * shards with work inside their limit.  Purely a function of
     * queue state, so identical at every worker count.
     */
    unsigned computeWindowLimits(Cycle maxCycle);

    /** Execute one window: all shards run events up to their
     *  per-shard limits_ in parallel, then outboxes drain in shard
     *  order.  @p active is computeWindowLimits' shard count. */
    void executeWindow(unsigned active);

    /** Shards w, w+stride, ... of the window bounded by limits_. */
    void executeShards(unsigned w, unsigned stride);

    void drainOutboxes();

    void workerLoop(unsigned w);

    /** The multi-shard window loop shared by run/runUntil/runFor. */
    Cycle windowLoop(const std::function<bool()> &pred, Cycle maxCycle,
                     std::uint64_t maxEvents);

    std::vector<std::unique_ptr<EventQueue>> queues_;
    std::vector<Outbox> outboxes_;
    /** Per-shard window limits, recomputed at every barrier. */
    std::vector<Cycle> limits_;
    /** Per-shard event cap for the current window: keeps runFor's
     *  event budget meaningful when an uneven window is unbounded. */
    std::uint64_t windowEventCap_ = 0;
    const Cycle lookahead_;
    unsigned threads_ = 1;
    const ShardFenceMap *fenceMap_ = nullptr;

    std::uint64_t windows_ = 0;
    std::uint64_t crossPosts_ = 0;

    // --- Worker pool (threads_ > 1 only) ---------------------------
    std::vector<std::thread> pool_;
    std::mutex m_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    std::uint64_t generation_ = 0; ///< Bumped to launch a window.
    unsigned running_ = 0;         ///< Pool workers still in-window.
    bool stop_ = false;
    /** First exception thrown by a pool worker's events; rethrown on
     *  the coordinator after the window barrier. */
    std::exception_ptr poolError_;
};

} // namespace tsoper

#endif // TSOPER_SIM_SHARD_QUEUE_HH
