#include "sim/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/log.hh"

namespace tsoper
{

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::asBool() const
{
    tsoper_assert(type_ == Type::Bool, "Json::asBool on non-bool");
    return bool_;
}

double
Json::asDouble() const
{
    tsoper_assert(type_ == Type::Number, "Json::asDouble on non-number");
    switch (rep_) {
      case NumRep::Dbl: return dbl_;
      case NumRep::Int: return static_cast<double>(int_);
      case NumRep::Uint: return static_cast<double>(uint_);
    }
    return 0.0;
}

std::int64_t
Json::asInt() const
{
    tsoper_assert(type_ == Type::Number, "Json::asInt on non-number");
    switch (rep_) {
      case NumRep::Dbl: return static_cast<std::int64_t>(dbl_);
      case NumRep::Int: return int_;
      case NumRep::Uint: return static_cast<std::int64_t>(uint_);
    }
    return 0;
}

std::uint64_t
Json::asUint() const
{
    tsoper_assert(type_ == Type::Number, "Json::asUint on non-number");
    switch (rep_) {
      case NumRep::Dbl: return static_cast<std::uint64_t>(dbl_);
      case NumRep::Int: return static_cast<std::uint64_t>(int_);
      case NumRep::Uint: return uint_;
    }
    return 0;
}

const std::string &
Json::asString() const
{
    tsoper_assert(type_ == Type::String, "Json::asString on non-string");
    return str_;
}

Json &
Json::push(Json v)
{
    tsoper_assert(type_ == Type::Array, "Json::push on non-array");
    arr_.push_back(std::move(v));
    return *this;
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

const Json &
Json::at(std::size_t i) const
{
    tsoper_assert(type_ == Type::Array, "Json::at on non-array");
    tsoper_assert(i < arr_.size(), "Json::at index ", i, " out of range");
    return arr_[i];
}

Json &
Json::set(const std::string &key, Json v)
{
    tsoper_assert(type_ == Type::Object, "Json::set on non-object");
    for (auto &[k, existing] : obj_) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj_)
        if (k == key)
            return &v;
    return nullptr;
}

const Json &
Json::operator[](const std::string &key) const
{
    const Json *v = find(key);
    tsoper_assert(v, "Json object has no member \"", key, "\"");
    return *v;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    tsoper_assert(type_ == Type::Object, "Json::members on non-object");
    return obj_;
}

bool
Json::operator==(const Json &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null: return true;
      case Type::Bool: return bool_ == other.bool_;
      case Type::Number:
        // Integer-valued numbers compare by value across reps; mixed
        // float/integer comparisons go through double.
        if (rep_ == other.rep_) {
            switch (rep_) {
              case NumRep::Dbl: return dbl_ == other.dbl_;
              case NumRep::Int: return int_ == other.int_;
              case NumRep::Uint: return uint_ == other.uint_;
            }
        }
        return asDouble() == other.asDouble();
      case Type::String: return str_ == other.str_;
      case Type::Array: return arr_ == other.arr_;
      case Type::Object: return obj_ == other.obj_;
    }
    return false;
}

namespace
{

void
escapeString(const std::string &s, std::string &out)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

} // namespace

void
Json::dumpNumber(std::string &out) const
{
    char buf[40];
    switch (rep_) {
      case NumRep::Int:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
        out += buf;
        return;
      case NumRep::Uint:
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(uint_));
        out += buf;
        return;
      case NumRep::Dbl:
        break;
    }
    if (!std::isfinite(dbl_)) {
        out += "null"; // JSON has no inf/nan
        return;
    }
    // Shortest decimal form that round-trips to the same double, so
    // identical values always serialize to identical bytes.
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, dbl_);
        if (std::strtod(buf, nullptr) == dbl_)
            break;
    }
    out += buf;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    auto newline = [&](int d) {
        if (pretty) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent) *
                           static_cast<std::size_t>(d),
                       ' ');
        }
    };

    switch (type_) {
      case Type::Null:
        out += "null";
        return;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        return;
      case Type::Number:
        dumpNumber(out);
        return;
      case Type::String:
        escapeString(str_, out);
        return;
      case Type::Array:
        if (arr_.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        return;
      case Type::Object:
        if (obj_.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            escapeString(obj_[i].first, out);
            out += pretty ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        return;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// --- Parser ----------------------------------------------------------

namespace
{

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word, Json value, Json *out)
    {
        const std::size_t n = std::strlen(word);
        if (text.compare(pos, n, word) != 0)
            return fail(std::string("invalid literal, expected ") + word);
        pos += n;
        *out = std::move(value);
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        std::string s;
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"') {
                *out = std::move(s);
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                s += c;
                continue;
            }
            if (pos >= text.size())
                return fail("unterminated escape");
            const char e = text[pos++];
            switch (e) {
              case '"': s += '"'; break;
              case '\\': s += '\\'; break;
              case '/': s += '/'; break;
              case 'b': s += '\b'; break;
              case 'f': s += '\f'; break;
              case 'n': s += '\n'; break;
              case 'r': s += '\r'; break;
              case 't': s += '\t'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("invalid hex digit in \\u escape");
                }
                // Encode the BMP code point as UTF-8 (surrogate pairs
                // are not produced by our own serializer).
                if (cp < 0x80) {
                    s += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    s += static_cast<char>(0xC0 | (cp >> 6));
                    s += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    s += static_cast<char>(0xE0 | (cp >> 12));
                    s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    s += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                return fail("invalid escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Json *out)
    {
        const std::size_t start = pos;
        bool isInteger = true;
        if (consume('-')) {
        }
        while (pos < text.size() && std::isdigit(
                   static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos < text.size() && text[pos] == '.') {
            isInteger = false;
            ++pos;
            while (pos < text.size() && std::isdigit(
                       static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            isInteger = false;
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            while (pos < text.size() && std::isdigit(
                       static_cast<unsigned char>(text[pos])))
                ++pos;
        }
        const std::string tok = text.substr(start, pos - start);
        if (tok.empty() || tok == "-")
            return fail("invalid number");
        errno = 0;
        if (isInteger) {
            char *end = nullptr;
            if (tok[0] == '-') {
                const long long v = std::strtoll(tok.c_str(), &end, 10);
                if (errno != ERANGE && end == tok.c_str() + tok.size()) {
                    *out = Json(static_cast<std::int64_t>(v));
                    return true;
                }
            } else {
                const unsigned long long v =
                    std::strtoull(tok.c_str(), &end, 10);
                if (errno != ERANGE && end == tok.c_str() + tok.size()) {
                    *out = Json(static_cast<std::uint64_t>(v));
                    return true;
                }
            }
            errno = 0; // overflowing integers fall through to double
        }
        char *end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            return fail("invalid number");
        *out = Json(d);
        return true;
    }

    bool
    parseValue(Json *out, int depth)
    {
        if (depth > 200)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == 'n')
            return literal("null", Json(), out);
        if (c == 't')
            return literal("true", Json(true), out);
        if (c == 'f')
            return literal("false", Json(false), out);
        if (c == '"') {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = Json(std::move(s));
            return true;
        }
        if (c == '[') {
            ++pos;
            Json arr = Json::array();
            skipWs();
            if (consume(']')) {
                *out = std::move(arr);
                return true;
            }
            while (true) {
                Json elem;
                if (!parseValue(&elem, depth + 1))
                    return false;
                arr.push(std::move(elem));
                skipWs();
                if (consume(']'))
                    break;
                if (!consume(','))
                    return fail("expected ',' or ']'");
            }
            *out = std::move(arr);
            return true;
        }
        if (c == '{') {
            ++pos;
            Json obj = Json::object();
            skipWs();
            if (consume('}')) {
                *out = std::move(obj);
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return fail("expected ':'");
                Json value;
                if (!parseValue(&value, depth + 1))
                    return false;
                obj.set(key, std::move(value));
                skipWs();
                if (consume('}'))
                    break;
                if (!consume(','))
                    return fail("expected ',' or '}'");
            }
            *out = std::move(obj);
            return true;
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber(out);
        return fail("unexpected character");
    }
};

} // namespace

bool
Json::parse(const std::string &text, Json *out, std::string *err)
{
    Parser p{text};
    Json result;
    if (!p.parseValue(&result, 0)) {
        if (err)
            *err = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err)
            *err = "trailing characters at offset " + std::to_string(p.pos);
        return false;
    }
    *out = std::move(result);
    return true;
}

} // namespace tsoper
