#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "sim/log.hh"

namespace tsoper
{

EventQueue::EventQueue() : wheel_(wheelSize) {}

void
EventQueue::schedule(Cycle when, Callback fn)
{
    tsoper_assert(when >= now_, "scheduling into the past: when=", when,
                  " now=", now_);
    const std::uint64_t seq = nextSeq_++;
    ++size_;
    // now_ == wheelBase_ between events, so when - wheelBase_ cannot
    // underflow and the window test needs no overflow-prone addition.
    if (when - wheelBase_ < wheelSize) {
        Bucket &b = bucketOf(when);
        b.events.push_back(std::move(fn));
        markOccupied(when);
        ++wheelCount_;
        // Within one bucket, append order is seq order: direct
        // schedules are monotonic, and heap migration (see
        // migrateFar) only ever fills buckets before any direct
        // schedule can target their cycle.
        (void)seq;
    } else {
        far_.push_back(FarEvent{when, seq, std::move(fn)});
        std::push_heap(far_.begin(), far_.end(), FarLater{});
    }
}

void
EventQueue::migrateFar()
{
    while (!far_.empty() && far_.front().when - wheelBase_ < wheelSize) {
        std::pop_heap(far_.begin(), far_.end(), FarLater{});
        FarEvent ev = std::move(far_.back());
        far_.pop_back();
        Bucket &b = bucketOf(ev.when);
        b.events.push_back(std::move(ev.fn));
        markOccupied(ev.when);
        ++wheelCount_;
    }
}

bool
EventQueue::peekNext(Cycle *when) const
{
    if (wheelCount_ > 0) {
        // All wheel events lie in [wheelBase_, wheelBase_ + wheelSize);
        // the first occupied bucket cyclically from wheelBase_'s slot
        // is therefore the globally earliest event (the far heap only
        // holds events at or beyond the window's end).
        const std::size_t start = wheelBase_ & wheelMask_;
        std::size_t word = start >> 6;
        std::uint64_t bits = occupied_[word] & (~0ull << (start & 63));
        for (std::size_t scanned = 0; scanned <= bitmapWords_;
             ++scanned) {
            if (bits) {
                const std::size_t idx =
                    (word << 6) +
                    static_cast<std::size_t>(std::countr_zero(bits));
                *when = wheelBase_ + ((idx - start) & wheelMask_);
                return true;
            }
            word = (word + 1) & (bitmapWords_ - 1);
            bits = occupied_[word];
        }
        tsoper_panic("wheel count ", wheelCount_,
                     " but no occupied bucket");
    }
    if (!far_.empty()) {
        *when = far_.front().when;
        return true;
    }
    return false;
}

void
EventQueue::execNextAt(Cycle when)
{
    if (when > wheelBase_) {
        // Advancing the window may newly cover far-future events
        // (including the one we are about to execute, when the wheel
        // was empty and @p when came from the heap).
        wheelBase_ = when;
        migrateFar();
    }
    now_ = when;
    Bucket &b = bucketOf(when);
    Callback fn = std::move(b.events[b.head]);
    ++b.head;
    --wheelCount_;
    --size_;
    if (b.head == b.events.size()) {
        // Keep the vector's capacity: this slot will host another
        // cycle wheelSize cycles from now.
        b.events.clear();
        b.head = 0;
        clearOccupied(when);
    }
    ++executed_;
    fn();
}

bool
EventQueue::runOne()
{
    Cycle when;
    if (!peekNext(&when))
        return false;
    execNextAt(when);
    return true;
}

Cycle
EventQueue::run(Cycle maxCycle)
{
    Cycle when;
    while (peekNext(&when) && when <= maxCycle)
        execNextAt(when);
    return now_;
}

Cycle
EventQueue::runUntil(const std::function<bool()> &pred, Cycle maxCycle)
{
    Cycle when;
    while (!pred() && peekNext(&when) && when <= maxCycle)
        execNextAt(when);
    return now_;
}

Cycle
EventQueue::runFor(const std::function<bool()> &pred, Cycle maxCycle,
                   std::uint64_t maxEvents)
{
    Cycle when;
    std::uint64_t ran = 0;
    while (ran < maxEvents && !pred() && peekNext(&when) &&
           when <= maxCycle) {
        execNextAt(when);
        ++ran;
    }
    return now_;
}

Cycle
EventQueue::runBounded(const Cycle &bound, std::uint64_t maxEvents)
{
    Cycle when;
    std::uint64_t ran = 0;
    while (ran < maxEvents && peekNext(&when) && when <= bound) {
        execNextAt(when);
        ++ran;
    }
    return now_;
}

} // namespace tsoper
