#include "sim/event_queue.hh"

#include <utility>

#include "sim/log.hh"

namespace tsoper
{

void
EventQueue::schedule(Cycle when, Callback fn)
{
    tsoper_assert(when >= now_, "scheduling into the past: when=", when,
                  " now=", now_);
    events_.push(Event{when, nextSeq_++, std::move(fn)});
}

bool
EventQueue::runOne()
{
    if (events_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately afterwards.
    Event ev = std::move(const_cast<Event &>(events_.top()));
    events_.pop();
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
}

Cycle
EventQueue::run(Cycle maxCycle)
{
    while (!events_.empty() && events_.top().when <= maxCycle)
        runOne();
    return now_;
}

Cycle
EventQueue::runUntil(const std::function<bool()> &pred, Cycle maxCycle)
{
    while (!pred() && !events_.empty() && events_.top().when <= maxCycle)
        runOne();
    return now_;
}

} // namespace tsoper
