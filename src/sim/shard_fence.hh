/**
 * @file
 * Shard fence: the assertion that keeps the parallel kernel honest.
 *
 * Under the sharded event kernel (sim/shard_queue.hh) every mesh tile
 * — core, LLC/directory bank, memory-controller node — is owned by
 * exactly one shard, and a shard's events may only touch state owned
 * by tiles of that shard.  Cross-tile interactions must instead travel
 * as timestamped messages (ShardedEventQueue::post, or the NoC
 * message path in noc/message_bus.hh) whose delivery latency is at
 * least the kernel's lookahead.
 *
 * The fence turns a violation of that discipline into an immediate
 * panic instead of a silent determinism divergence: components call
 * shardFenceCheck(node) on entry to their tile-owned state, and the
 * check panics when the calling thread is executing some *other*
 * shard's events.  Outside a fenced region (unit tests poking
 * components directly, the coordinator between windows) the check is
 * a single thread-local load-and-branch and always passes, so it is
 * compiled into every build — like tsoper_assert, it survives NDEBUG.
 */

#ifndef TSOPER_SIM_SHARD_FENCE_HH
#define TSOPER_SIM_SHARD_FENCE_HH

#include <vector>

#include "sim/log.hh"

namespace tsoper
{

/** Tile-to-shard ownership: ownerOf[node] is the shard whose event
 *  queue may touch that tile's state. */
class ShardFenceMap
{
  public:
    ShardFenceMap() = default;

    /** All @p nodes tiles owned by @p shard (the staging default: one
     *  ownership domain until the protocol state is decomposed). */
    ShardFenceMap(unsigned nodes, unsigned shard)
        : ownerOf_(nodes, shard)
    {
    }

    void
    setOwner(unsigned node, unsigned shard)
    {
        if (node >= ownerOf_.size())
            ownerOf_.resize(node + 1, 0);
        ownerOf_[node] = shard;
    }

    unsigned
    owner(unsigned node) const
    {
        tsoper_assert(node < ownerOf_.size(),
                      "shard fence: node ", node, " has no owner");
        return ownerOf_[node];
    }

    unsigned nodes() const { return (unsigned)ownerOf_.size(); }

  private:
    std::vector<unsigned> ownerOf_;
};

namespace detail
{
/** Thread-local fence context; null map == fence disarmed. */
struct ShardFenceTls
{
    const ShardFenceMap *map = nullptr;
    unsigned shard = 0;
};
extern thread_local ShardFenceTls shardFenceTls;
} // namespace detail

/**
 * RAII: while alive, the calling thread is executing events of
 * @p shard and shardFenceCheck enforces @p map's ownership.  The
 * sharded kernel installs one around each shard-execution burst;
 * scopes nest (the innermost wins — used by tests).
 */
class ShardFenceScope
{
  public:
    ShardFenceScope(const ShardFenceMap *map, unsigned shard)
        : prev_(detail::shardFenceTls)
    {
        detail::shardFenceTls = {map, shard};
    }

    ~ShardFenceScope() { detail::shardFenceTls = prev_; }

    ShardFenceScope(const ShardFenceScope &) = delete;
    ShardFenceScope &operator=(const ShardFenceScope &) = delete;

  private:
    detail::ShardFenceTls prev_;
};

/** Current shard while fenced; ~0u when the fence is disarmed. */
inline unsigned
shardFenceCurrent()
{
    return detail::shardFenceTls.map ? detail::shardFenceTls.shard : ~0u;
}

void shardFenceViolation(unsigned node, unsigned owner, unsigned shard);

/**
 * Assert that the executing shard owns tile @p node.  Components call
 * this on entry to tile-owned state (directory bank dispatch, AGB
 * arbiter/slice events, core-local structures).
 */
inline void
shardFenceCheck(unsigned node)
{
    const detail::ShardFenceTls &tls = detail::shardFenceTls;
    if (!tls.map)
        return;
    const unsigned owner = tls.map->owner(node);
    if (owner != tls.shard)
        shardFenceViolation(node, owner, tls.shard);
}

} // namespace tsoper

#endif // TSOPER_SIM_SHARD_FENCE_HH
