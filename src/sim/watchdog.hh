/**
 * @file
 * Progress watchdog: converts simulator livelocks into a clean,
 * diagnosable failure instead of an opaque wall-clock timeout.
 *
 * A discrete-event simulation can stop making forward progress in
 * three distinct ways, and the campaign runner wants to tell them
 * apart from a merely *slow* cell:
 *
 *  - frozen time    — events keep executing but simulated time never
 *    advances: a zero-delay event cycle (e.g. two protocol FSMs
 *    endlessly NACKing each other in the same cycle);
 *  - stalled work   — time advances and events execute, but the
 *    progress signature (retired ops, NVM traffic) is flat: a
 *    ping-pong livelock such as a cyclic sharing-list persist
 *    dependency;
 *  - budget blown   — the simulation ran past its simulated-cycle
 *    cap, the classic deadlock backstop.
 *
 * runGuarded() drives an EventQueue in event-count chunks and applies
 * all three checks between chunks, throwing HungError — which carries
 * a caller-supplied state dump — when one trips.  The campaign layer
 * maps HungError to RunStatus::Hung (tsoper_sim exit code 7), which
 * the runner treats as a deterministic verdict: livelocks reproduce
 * under the same seed, so re-running them cannot change the answer.
 */

#ifndef TSOPER_SIM_WATCHDOG_HH
#define TSOPER_SIM_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "sim/types.hh"

namespace tsoper
{

class EventQueue;
class ShardedEventQueue;

/** The simulation livelocked or exhausted its simulated-cycle budget;
 *  what() carries the reason plus the machine-state dump. */
struct HungError : std::runtime_error
{
    explicit HungError(const std::string &msg) : std::runtime_error(msg)
    {
    }
};

struct WatchdogConfig
{
    /** Events per chunk between checks; 0 disables the watchdog. */
    std::uint64_t checkEveryEvents = 2'000'000;

    /** Consecutive chunks with a flat progress signature before the
     *  run is declared hung.  Generous by default: a legal NVM-bound
     *  drain can run many events per retired op. */
    unsigned stallChecks = 8;

    /** Consecutive chunks with simulated time frozen before the run
     *  is declared hung (a zero-delay cycle is damning much faster
     *  than a flat signature). */
    unsigned frozenChecks = 2;
};

/**
 * Chunk-boundary progress tracker.  Feed it the progress signature
 * and the current cycle after every chunk; it reports the first
 * livelock it can prove.
 */
class ProgressWatchdog
{
  public:
    explicit ProgressWatchdog(const WatchdogConfig &cfg) : cfg_(cfg) {}

    /**
     * Record a chunk boundary.  @return an empty string while the run
     * looks alive, else a one-line reason ("no forward progress for
     * ...", "simulated time frozen at cycle ...").
     */
    std::string check(std::uint64_t progress, Cycle now);

    /** Forget all history (a new phase starts). */
    void reset();

  private:
    WatchdogConfig cfg_;
    bool primed_ = false;
    std::uint64_t lastProgress_ = 0;
    Cycle lastCycle_ = 0;
    unsigned stalledChunks_ = 0;
    unsigned frozenChunks_ = 0;
};

/**
 * Run @p eq until @p pred holds, watching for livelock.
 *
 * Executes events in chunks of cfg.checkEveryEvents and between
 * chunks evaluates the watchdog over @p progressFn (a monotonic
 * forward-progress signature — retired ops, persisted lines; pick
 * something that moves whenever the phase is genuinely advancing).
 * Throws HungError — appending @p dumpFn's state dump — when
 *
 *  - the watchdog proves a frozen-time or flat-signature livelock,
 *  - the next event lies beyond @p maxCycles (cycle budget blown), or
 *  - the queue drains with @p pred still false (deadlock: everything
 *    is waiting on something that will never happen).
 *
 * With cfg.checkEveryEvents == 0 only the budget/deadlock checks run
 * (single runUntil, seed behaviour).  Returns normally iff @p pred
 * became true.
 */
void runGuarded(EventQueue &eq, const std::function<bool()> &pred,
                Cycle maxCycles, const WatchdogConfig &cfg,
                const std::function<std::uint64_t()> &progressFn,
                const std::function<std::string()> &dumpFn,
                const char *phase);

/** Same contract over the sharded kernel (sim/shard_queue.hh); with
 *  multiple shards the pred/budget checks land on window barriers. */
void runGuarded(ShardedEventQueue &eq, const std::function<bool()> &pred,
                Cycle maxCycles, const WatchdogConfig &cfg,
                const std::function<std::uint64_t()> &progressFn,
                const std::function<std::string()> &dumpFn,
                const char *phase);

} // namespace tsoper

#endif // TSOPER_SIM_WATCHDOG_HH
