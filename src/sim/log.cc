#include "sim/log.hh"

#include <cstdio>
#include <stdexcept>

#include "sim/trace.hh"

namespace tsoper
{

namespace
{

thread_local ScopedLogCycleSource::Fn cycleFn_ = nullptr;
thread_local const void *cycleCtx_ = nullptr;

/** "[     cycle] " when a System is live on this thread, else "". */
std::string
cyclePrefix()
{
    if (!cycleFn_)
        return {};
    char buf[32];
    std::snprintf(buf, sizeof(buf), "[%10llu] ",
                  static_cast<unsigned long long>(cycleFn_(cycleCtx_)));
    return buf;
}

} // namespace

ScopedLogCycleSource::ScopedLogCycleSource(Fn fn, const void *ctx)
    : prevFn_(cycleFn_), prevCtx_(cycleCtx_)
{
    cycleFn_ = fn;
    cycleCtx_ = ctx;
}

ScopedLogCycleSource::~ScopedLogCycleSource()
{
    cycleFn_ = prevFn_;
    cycleCtx_ = prevCtx_;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = cyclePrefix() + "panic: " + msg + " (" + file +
                       ":" + std::to_string(line) + ")";
    if (trace::flightRecorderActive())
        full += "\n" + trace::flightRecorderDump();
    std::fprintf(stderr, "%s\n", full.c_str());
    throw std::logic_error(full);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = std::string("fatal: ") + msg + " (" + file + ":" +
                       std::to_string(line) + ")";
    std::fprintf(stderr, "%s\n", full.c_str());
    throw std::runtime_error(full);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "%swarn: %s (%s:%d)\n", cyclePrefix().c_str(),
                 msg.c_str(), file, line);
}

} // namespace tsoper
