#include "sim/log.hh"

#include <cstdio>
#include <stdexcept>

namespace tsoper
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = std::string("panic: ") + msg + " (" + file + ":" +
                       std::to_string(line) + ")";
    std::fprintf(stderr, "%s\n", full.c_str());
    throw std::logic_error(full);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = std::string("fatal: ") + msg + " (" + file + ":" +
                       std::to_string(line) + ")";
    std::fprintf(stderr, "%s\n", full.c_str());
    throw std::runtime_error(full);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace tsoper
