/**
 * @file
 * Structured trace bus: typed, low-overhead event records published by
 * the simulator's components and fanned out to registered sinks
 * (sim/trace_sink.hh — Perfetto export, persist-order audit, flight
 * recorder).
 *
 * Unlike sim/debug.hh (free-form text for humans), trace records are
 * machine-consumable: every record carries its event kind, category,
 * core, one or two cycles (instant or span), and up to three integer
 * arguments whose meaning is fixed per event kind.
 *
 * Cost model: each emit site is a single branch on the category mask
 * when tracing is off — no record is built, no virtual call is made.
 * Enable categories with setCategories("ag,agb,slc") or "all"; unknown
 * names are fatal (same contract as debug::setFlags).
 *
 * Concurrency: the mask is process-global and sinks are shared, so at
 * most one traced System should run per process at a time — the
 * campaign runner's subprocess isolation gives every traced cell its
 * own process.  Sink dispatch itself is serialized by an internal
 * mutex, so a stray concurrent emitter corrupts nothing.
 */

#ifndef TSOPER_SIM_TRACE_HH
#define TSOPER_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tsoper::trace
{

enum class Category : unsigned
{
    Ag,      ///< Group lifecycle: AG / BSP epoch / SFR batch spans.
    Agb,     ///< AGB allocation, grants, occupancy.
    Slc,     ///< Sharing-list surgery (link, invalidate, token pass).
    Sb,      ///< Store-buffer depth.
    Llc,     ///< LLC bank transactions.
    Noc,     ///< Mesh messages.
    Persist, ///< Persist-order audit stream (issues, commits, edges).
    NumCategories,
};

enum class Event : unsigned
{
    // Category::Ag — group lifecycle.
    AgFrozen,     ///< instant; id=group tag, a=members, b=FreezeReason.
    AgRetired,    ///< span open..retire; id=group tag, a=dirty, b=stores.
    EpochClosed,  ///< instant; id=epoch tag, a=lines, b=stores.
    EpochPersisted, ///< span open..persisted; id=epoch tag, a=lines.
    SfrFlushed,   ///< instant; id=batch tag, a=lines.
    StwStall,     ///< span stall..resume; id=0.

    // Category::Agb.
    AgbGrant,     ///< instant; id=audit tag, a=lines, b=occupancy.
    AgbOccupancy, ///< counter; a=total reserved lines.
    AgbDrained,   ///< instant; id=audit tag (fully durable in NVM).

    // Category::Slc.
    SlcNewHead,   ///< instant; id=line.
    SlcInvalidate,///< instant; id=line, a=dirty.
    SlcDirEvict,  ///< instant; id=line (directory eviction teardown).
    SlcPersist,   ///< instant; id=line (token passes headwards).

    // Category::Sb.
    SbDepth,      ///< counter per core; a=entries.

    // Category::Llc.
    LlcAccess,    ///< span request..done; id=line, a=bank.

    // Category::Noc.
    NocMsg,       ///< span depart..arrive; id=(src<<32|dst), a=bytes.

    // Category::Persist — the audit stream (trace_sink.hh).
    PersistIssue, ///< instant; id=line, a=group tag.
    PersistCommit,///< instant; id=line, a=group tag (durable point).
    GroupDurable, ///< instant; id=group tag, a=line count.
    PbEdge,       ///< instant; id=from tag, a=to tag (from persists first).

    NumEvents,
};

/** One trace record.  For instants begin == end. */
struct Record
{
    Event event = Event::NumEvents;
    CoreId core = invalidCore;
    Cycle begin = 0;
    Cycle end = 0;
    std::uint64_t id = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

/** Consumer interface; see sim/trace_sink.hh for the stock sinks. */
class Sink
{
  public:
    virtual ~Sink() = default;
    virtual void record(const Record &r) = 0;
};

/** Category of @p e (fixed mapping). */
Category categoryOf(Event e);

/** Short names ("ag_frozen", "persist_commit", ...). */
const char *eventName(Event e);

/** Short category names ("ag", "agb", "slc", "sb", "llc", "noc",
 *  "persist"). */
const char *categoryName(Category c);

/** All category names, in enum order (CLI listings). */
const std::vector<std::string> &categoryNames();

namespace detail
{
extern bool mask_[static_cast<unsigned>(Category::NumCategories)];
void emitRecord(const Record &r);
} // namespace detail

/** Is @p c enabled?  This is the one branch a disabled emit site pays. */
inline bool
on(Category c)
{
    return detail::mask_[static_cast<unsigned>(c)];
}

/**
 * Enable exactly the comma-separated categories in @p csv ("ag,slc");
 * "all" enables everything, "" disables everything.  Unknown names are
 * fatal and the message lists the valid set.
 */
void setCategories(const std::string &csv);

/** Currently enabled categories as a canonical csv ("" when off). */
std::string categoriesCsv();

/** Register / unregister a sink (not owned).  A sink sees every record
 *  of every enabled category. */
void addSink(Sink *sink);
void removeSink(Sink *sink);

/** Any sink registered?  (Flight recording counts.) */
bool anySink();

/**
 * Flight recorder: a fixed ring of the last @p depth records of the
 * enabled categories, kept inside the bus so panic paths can reach it
 * without owning a sink.  Dumped by tsoper_panic and System::dumpState.
 */
void enableFlightRecorder(unsigned depth);
void disableFlightRecorder();
bool flightRecorderActive();

/** Human-readable tail of the flight ring, oldest first; "" when the
 *  recorder is off or empty. */
std::string flightRecorderDump();

/** Format one record as a debug.hh-style text line (flight dumps,
 *  tests). */
std::string formatRecord(const Record &r);

/** Emit a duration span (begin..end). */
inline void
span(Event e, CoreId core, Cycle begin, Cycle end, std::uint64_t id,
     std::uint64_t a = 0, std::uint64_t b = 0)
{
    if (!on(categoryOf(e)))
        return;
    detail::emitRecord(Record{e, core, begin, end, id, a, b});
}

/** Emit an instantaneous event. */
inline void
instant(Event e, CoreId core, Cycle when, std::uint64_t id,
        std::uint64_t a = 0, std::uint64_t b = 0)
{
    if (!on(categoryOf(e)))
        return;
    detail::emitRecord(Record{e, core, when, when, id, a, b});
}

/** Emit a counter sample (occupancy, depth). */
inline void
counter(Event e, CoreId core, Cycle when, std::uint64_t value)
{
    if (!on(categoryOf(e)))
        return;
    detail::emitRecord(Record{e, core, when, when, 0, value, 0});
}

/**
 * Audit group tag: globally unique name for a persist group (atomic
 * group, BSP epoch, HW-RP SFR batch).  Engines with per-core local ids
 * compose (core, id); engines with global uids may use them raw.
 */
constexpr std::uint64_t
groupTag(CoreId core, std::uint64_t localId)
{
    return (static_cast<std::uint64_t>(core + 1) << 48) |
           (localId & 0xffffffffffffull);
}

} // namespace tsoper::trace

#endif // TSOPER_SIM_TRACE_HH
