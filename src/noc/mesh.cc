#include "noc/mesh.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/log.hh"
#include "sim/trace.hh"

namespace tsoper
{

Mesh::Mesh(const SystemConfig &cfg, StatsRegistry &stats)
    : cols_(cfg.meshCols), rows_(cfg.meshRows), hopLatency_(cfg.hopLatency),
      linkBytes_(cfg.linkBytesPerCycle),
      numCores_(static_cast<int>(cfg.numCores)), banks_(cfg.llcBanks),
      links_(cols_ * rows_ * 4),
      messages_(stats.counter("noc.messages")),
      bytes_(stats.counter("noc.bytes")),
      linkWaitCycles_(stats.counter("noc.link_wait_cycles"))
{
    tsoper_assert(cols_ >= 1 && rows_ >= 1);
}

unsigned
Mesh::hops(int src, int dst) const
{
    const int sc = src % static_cast<int>(cols_);
    const int sr = src / static_cast<int>(cols_);
    const int dc = dst % static_cast<int>(cols_);
    const int dr = dst / static_cast<int>(cols_);
    return static_cast<unsigned>(std::abs(sc - dc) + std::abs(sr - dr));
}

int
Mesh::nextHop(int at, int dst) const
{
    const int ac = at % static_cast<int>(cols_);
    const int ar = at / static_cast<int>(cols_);
    const int dc = dst % static_cast<int>(cols_);
    // XY routing: move along the row first, then along the column.
    if (ac < dc)
        return nodeAt(static_cast<unsigned>(ac + 1),
                      static_cast<unsigned>(ar));
    if (ac > dc)
        return nodeAt(static_cast<unsigned>(ac - 1),
                      static_cast<unsigned>(ar));
    const int dr = dst / static_cast<int>(cols_);
    if (ar < dr)
        return nodeAt(static_cast<unsigned>(ac),
                      static_cast<unsigned>(ar + 1));
    return nodeAt(static_cast<unsigned>(ac), static_cast<unsigned>(ar - 1));
}

unsigned
Mesh::linkIndex(int from, int to) const
{
    // Encode the direction of the (from -> to) hop.
    const int fc = from % static_cast<int>(cols_);
    const int tc = to % static_cast<int>(cols_);
    unsigned dir;
    if (to == from - static_cast<int>(cols_))
        dir = 0; // north
    else if (tc == fc + 1)
        dir = 1; // east
    else if (to == from + static_cast<int>(cols_))
        dir = 2; // south
    else
        dir = 3; // west
    return static_cast<unsigned>(from) * 4 + dir;
}

Cycle
Mesh::idealLatency(int src, int dst, unsigned bytes) const
{
    if (src == dst)
        return 1;
    const Cycle ser = (bytes + linkBytes_ - 1) / linkBytes_;
    return hops(src, dst) * hopLatency_ + ser;
}

Cycle
Mesh::route(int src, int dst, unsigned bytes, Cycle depart)
{
    messages_.inc();
    bytes_.inc(bytes);
    if (src == dst)
        return depart + 1;
    const Cycle ser = (bytes + linkBytes_ - 1) / linkBytes_;
    Cycle at = depart;
    int node = src;
    while (node != dst) {
        const int next = nextHop(node, dst);
        Link &link = links_[linkIndex(node, next)];
        const Cycle start = std::max(at, link.busyUntil);
        linkWaitCycles_.inc(start - at);
        // The link is occupied for the serialization time; the head of
        // the message reaches the next router after the hop latency.
        link.busyUntil = start + ser;
        at = start + hopLatency_;
        node = next;
    }
    // Account for the tail of the message (serialization) once.
    trace::span(trace::Event::NocMsg, invalidCore, depart, at + ser,
                (static_cast<std::uint64_t>(static_cast<unsigned>(src))
                 << 32) |
                    static_cast<unsigned>(dst),
                bytes);
    return at + ser;
}

} // namespace tsoper
