/**
 * @file
 * Lightweight 2D-mesh network-on-chip model.
 *
 * Replaces the paper's GARNET network (see DESIGN.md §1): messages are
 * routed XY over a grid of nodes; each directed link transfers
 * linkBytesPerCycle bytes per cycle and serializes competing messages.
 * The model returns, for a message injected at a given cycle, the cycle
 * at which it is delivered, accounting for hop latency, serialization
 * and link contention.
 *
 * Node map (defaults, 4x4 mesh, 8 cores + 8 LLC/dir/MC tiles):
 *   nodes 0..numCores-1          core tiles (row-major from the top)
 *   nodes numCores..numCores+7   LLC bank / directory bank / MC tiles
 */

#ifndef TSOPER_NOC_MESH_HH
#define TSOPER_NOC_MESH_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tsoper
{

class Mesh
{
  public:
    Mesh(const SystemConfig &cfg, StatsRegistry &stats);

    /** Node id of core @p core's tile. */
    int coreNode(CoreId core) const { return core; }

    /** Node id of LLC/directory bank @p bank's tile. */
    int bankNode(unsigned bank) const { return numCores_ + (int)bank; }

    /** Node id of memory controller @p mc (co-located with bank mc). */
    int mcNode(unsigned mc) const
    {
        return numCores_ + static_cast<int>(mc % banks_);
    }

    /**
     * Route a @p bytes -byte message from @p src to @p dst, injected at
     * cycle @p depart.  Updates per-link contention state (so calls must
     * be made in event order) and returns the delivery cycle.
     */
    Cycle route(int src, int dst, unsigned bytes, Cycle depart);

    /** Contention-free latency between two nodes for @p bytes bytes. */
    Cycle idealLatency(int src, int dst, unsigned bytes) const;

    /** Manhattan hop count between two nodes. */
    unsigned hops(int src, int dst) const;

    unsigned nodes() const { return cols_ * rows_; }

  private:
    struct Link
    {
        Cycle busyUntil = 0;
    };

    unsigned linkIndex(int from, int to) const;
    int nodeAt(unsigned col, unsigned row) const
    {
        return static_cast<int>(row * cols_ + col);
    }

    /** Next node along the XY route from @p at towards @p dst. */
    int nextHop(int at, int dst) const;

    unsigned cols_;
    unsigned rows_;
    Cycle hopLatency_;
    unsigned linkBytes_;
    int numCores_;
    unsigned banks_;
    std::vector<Link> links_; ///< 4 directed links per node (N,E,S,W).
    Counter &messages_;
    Counter &bytes_;
    Counter &linkWaitCycles_;
};

} // namespace tsoper

#endif // TSOPER_NOC_MESH_HH
