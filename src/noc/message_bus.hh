/**
 * @file
 * MessageBus: the explicit cross-tile message path.
 *
 * Stage 1 of the parallel-kernel refactor (ROADMAP item 2, docs/
 * pdes.md): every interaction between mesh tiles — core requests to
 * directory banks, grants and forwards back to cores, AGB ingress,
 * writeback traffic — flows through this choke point instead of
 * ad-hoc `mesh.route(...)` + `eq.schedule(...)` pairs scattered
 * through the components.  The bus offers exactly two shapes:
 *
 *  - send():    a timestamped message event — route through the mesh
 *               (accounting link contention) and run a continuation
 *               on the destination tile at the arrival cycle;
 *  - arrival(): a routed leg whose effect is folded into an enclosing
 *               transaction's continuation (the protocols' timing
 *               model commits state at directory dispatch and only
 *               needs the legs' delivery cycles).  The route still
 *               occupies links, so traffic accounting is unchanged.
 *
 * Because the mesh's hop latency bounds every leg from below,
 * minLatency() is the conservative kernel's lookahead: no message
 * can cross tiles in fewer cycles, so shards may safely execute a
 * window of that width in parallel (sim/shard_queue.hh).
 *
 * Today each component constructs its bus over the shared Mesh and
 * the (single-shard) event queue, so send() degenerates to the exact
 * route+schedule sequence the components used to inline — fixed-seed
 * stats stay byte-identical.  When tiles move to their own shards,
 * this is the one seam where schedule() becomes
 * ShardedEventQueue::post().
 */

#ifndef TSOPER_NOC_MESSAGE_BUS_HH
#define TSOPER_NOC_MESSAGE_BUS_HH

#include "noc/mesh.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace tsoper
{

class MessageBus
{
  public:
    MessageBus(const SystemConfig &cfg, EventQueue &eq, Mesh &mesh);

    /**
     * Timestamped message: route @p bytes from tile @p src to tile
     * @p dst departing at @p depart (>= now), and run @p fn at the
     * delivery cycle.  @return the delivery cycle.
     */
    Cycle send(int src, int dst, unsigned bytes, Cycle depart,
               EventQueue::Callback fn);

    /** send() departing immediately. */
    Cycle
    send(int src, int dst, unsigned bytes, EventQueue::Callback fn)
    {
        return send(src, dst, bytes, eq_.now(), std::move(fn));
    }

    /**
     * Routed leg without its own event: returns the delivery cycle of
     * @p bytes from @p src to @p dst departing at @p depart, updating
     * link contention.  For legs folded into a transaction
     * continuation; the caller owns scheduling the effect no earlier
     * than the returned cycle.
     */
    Cycle
    arrival(int src, int dst, unsigned bytes, Cycle depart)
    {
        return mesh_.route(src, dst, bytes, depart);
    }

    /** Minimum latency of any cross-tile message: one NoC hop.  The
     *  sharded kernel's lookahead. */
    Cycle minLatency() const { return minLatency_; }

    // --- Tile-name helpers (delegate to the mesh's node map) -------
    int coreNode(CoreId core) const { return mesh_.coreNode(core); }
    int bankNode(unsigned bank) const { return mesh_.bankNode(bank); }
    int mcNode(unsigned mc) const { return mesh_.mcNode(mc); }
    unsigned nodes() const { return mesh_.nodes(); }

    Cycle
    idealLatency(int src, int dst, unsigned bytes) const
    {
        return mesh_.idealLatency(src, dst, bytes);
    }

    Mesh &mesh() { return mesh_; }

  private:
    EventQueue &eq_;
    Mesh &mesh_;
    Cycle minLatency_;
};

} // namespace tsoper

#endif // TSOPER_NOC_MESSAGE_BUS_HH
