#include "noc/message_bus.hh"

#include "sim/log.hh"
#include "sim/shard_fence.hh"

namespace tsoper
{

MessageBus::MessageBus(const SystemConfig &cfg, EventQueue &eq,
                       Mesh &mesh)
    : eq_(eq), mesh_(mesh), minLatency_(cfg.hopLatency)
{
    tsoper_assert(minLatency_ > 0,
                  "hop latency must be positive: it is the sharded "
                  "kernel's lookahead");
}

Cycle
MessageBus::send(int src, int dst, unsigned bytes, Cycle depart,
                 EventQueue::Callback fn)
{
    // The sending tile must belong to the executing shard; the
    // receiving tile is checked by the component handling delivery.
    shardFenceCheck(static_cast<unsigned>(src));
    const Cycle at = mesh_.route(src, dst, bytes, depart);
    eq_.schedule(at, std::move(fn));
    return at;
}

} // namespace tsoper
