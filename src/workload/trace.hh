/**
 * @file
 * Workload trace representation.
 *
 * The paper drives its simulator with a Sniper front-end running
 * PARSEC 3.0 / Splash-3 regions of interest; we replace that with
 * pre-generated, deterministic per-core operation traces whose shapes
 * are parameterized per benchmark (DESIGN.md §1).  A trace op is one
 * of: a memory access, an amount of local compute, a synchronization
 * operation (lock acquire/release, barrier), or a marker store
 * controlling AG boundaries (§II-D).
 */

#ifndef TSOPER_WORKLOAD_TRACE_HH
#define TSOPER_WORKLOAD_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tsoper
{

enum class OpType : std::uint8_t
{
    Load,    ///< Read the word at addr.
    Store,   ///< Write the word at addr.
    Compute, ///< Spend arg cycles of local work.
    LockAcq, ///< Acquire lock #arg (RMW on the lock's line).
    LockRel, ///< Release lock #arg (store to the lock's line).
    Barrier, ///< Arrive at barrier #arg; proceed when all cores have.
    Marker,  ///< Software epoch marker: freeze the current AG (§II-D).
};

struct TraceOp
{
    OpType type;
    Addr addr = 0;
    std::uint32_t arg = 0;
};

using Trace = std::vector<TraceOp>;

/** One multi-threaded workload: a trace per core plus sync metadata. */
struct Workload
{
    std::string name;
    std::vector<Trace> perCore;
    unsigned numLocks = 0;
    unsigned numBarriers = 0;

    std::size_t
    totalOps() const
    {
        std::size_t n = 0;
        for (const auto &t : perCore)
            n += t.size();
        return n;
    }

    std::size_t
    totalStores() const
    {
        std::size_t n = 0;
        for (const auto &t : perCore)
            for (const auto &op : t)
                if (op.type == OpType::Store)
                    ++n;
        return n;
    }
};

/**
 * Structural sanity check: locks acquired/released in matched pairs
 * with no nesting of the same lock, barrier ids within range, every
 * core participating in every barrier the same number of times.
 * @return true if well-formed; otherwise false with @p error set.
 */
bool validateWorkload(const Workload &w, std::string *error);

/** Address-space layout shared by generators and the sync model. */
namespace layout
{
constexpr Addr privateBase = 0x1000'0000;
constexpr Addr privateSpan = 0x0400'0000; ///< Per-core private region.
constexpr Addr sharedBase = 0x5000'0000;
constexpr Addr lockBase = 0x9000'0000;
constexpr Addr barrierBase = 0xA000'0000;

inline Addr
privateAddr(CoreId core, std::uint64_t wordIndex)
{
    return privateBase + static_cast<Addr>(core) * privateSpan +
           wordIndex * wordBytes;
}

inline Addr
sharedAddr(std::uint64_t wordIndex)
{
    return sharedBase + wordIndex * wordBytes;
}

inline Addr
lockAddr(unsigned lock)
{
    return lockBase + static_cast<Addr>(lock) * lineBytes;
}

inline Addr
barrierAddr(unsigned barrier)
{
    return barrierBase + static_cast<Addr>(barrier) * lineBytes;
}
} // namespace layout

} // namespace tsoper

#endif // TSOPER_WORKLOAD_TRACE_HH
