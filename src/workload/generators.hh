/**
 * @file
 * Synthetic workload generators.
 *
 * Each of the paper's 21 PARSEC 3.0 / Splash-3 benchmarks is modelled
 * by a *profile* over a small set of access-pattern kernels.  The
 * kernels reproduce the memory-system-visible traits that drive
 * TSOPER's behaviour: write volume, inter-core sharing, sharing
 * granularity (including false-sharing-style interleaving for
 * lu_ncb), synchronization style and density, and spatial locality.
 */

#ifndef TSOPER_WORKLOAD_GENERATORS_HH
#define TSOPER_WORKLOAD_GENERATORS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/trace.hh"

namespace tsoper
{

enum class Kernel
{
    Stencil,        ///< Grid sweep with neighbour reads + phase barriers.
    Scatter,        ///< Sequential reads, randomized shared writes.
    Interleaved,    ///< Word-interleaved ownership (false sharing).
    TaskQueue,      ///< Lock-protected work queue + private compute.
    Pipeline,       ///< Stage-to-stage buffers guarded by locks.
    PrivateCompute, ///< Dominantly private working set.
    LockGrid,       ///< Fine-grained locks over shared cells.
};

/** Shape parameters for one benchmark. */
struct Profile
{
    std::string name;
    Kernel kernel = Kernel::PrivateCompute;
    unsigned opsPerCore = 8000;  ///< Approximate memory ops per core.
    double writeFrac = 0.3;      ///< Store fraction of memory ops.
    double sharedFrac = 0.2;     ///< Accesses hitting the shared region.
    unsigned privateWords = 1 << 14;
    unsigned sharedWords = 1 << 14;
    unsigned computeMin = 1;     ///< Compute cycles between bursts.
    unsigned computeMax = 8;
    unsigned opsPerPhase = 1000; ///< Memory ops between barriers.
    unsigned numLocks = 16;
    double lockProb = 0.0;       ///< Critical-section frequency.
    unsigned burstMax = 8;       ///< Sequential run length.
};

/** Generate the multi-core workload for @p profile. */
Workload generate(const Profile &profile, unsigned numCores,
                  std::uint64_t seed, double scale = 1.0);

/** The 21 evaluated benchmarks (paper §V "Benchmarks"). */
const std::vector<Profile> &allProfiles();

/** Profile lookup by benchmark name; fatal if unknown. */
const Profile &profileByName(const std::string &name);

/** Profile lookup by benchmark name; nullptr if unknown. */
const Profile *findProfile(const std::string &name);

/** Names of all benchmarks in evaluation order. */
std::vector<std::string> benchmarkNames();

/**
 * Convenience: generate a named benchmark.  @p scale multiplies
 * opsPerCore (benches use < 1.0 for quick sweeps, 1.0 for full runs).
 */
Workload generateByName(const std::string &name, unsigned numCores,
                        std::uint64_t seed, double scale = 1.0);

} // namespace tsoper

#endif // TSOPER_WORKLOAD_GENERATORS_HH
