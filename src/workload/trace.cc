#include "workload/trace.hh"

#include <map>
#include <set>
#include <sstream>

namespace tsoper
{

bool
validateWorkload(const Workload &w, std::string *error)
{
    auto fail = [error](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    std::map<unsigned, std::vector<std::size_t>> barrierArrivals;
    for (std::size_t c = 0; c < w.perCore.size(); ++c) {
        std::set<unsigned> held;
        std::map<unsigned, std::size_t> arrivals;
        for (const TraceOp &op : w.perCore[c]) {
            switch (op.type) {
              case OpType::LockAcq:
                if (held.count(op.arg)) {
                    std::ostringstream os;
                    os << "core " << c << " re-acquires held lock "
                       << op.arg;
                    return fail(os.str());
                }
                held.insert(op.arg);
                break;
              case OpType::LockRel:
                if (!held.count(op.arg)) {
                    std::ostringstream os;
                    os << "core " << c << " releases unheld lock "
                       << op.arg;
                    return fail(os.str());
                }
                held.erase(op.arg);
                break;
              case OpType::Barrier:
                if (!held.empty())
                    return fail("barrier reached with a lock held");
                ++arrivals[op.arg];
                break;
              default:
                break;
            }
        }
        if (!held.empty())
            return fail("trace ends with a lock held");
        for (const auto &[b, n] : arrivals)
            barrierArrivals[b].push_back(n);
    }
    for (const auto &[b, counts] : barrierArrivals) {
        for (std::size_t n : counts) {
            if (counts.size() != w.perCore.size() || n != counts.front()) {
                std::ostringstream os;
                os << "barrier " << b
                   << " has mismatched participation across cores";
                return fail(os.str());
            }
        }
    }
    return true;
}

} // namespace tsoper
