/**
 * @file
 * Per-benchmark profiles for the paper's 21 evaluated applications
 * (§V "Benchmarks": Splash-3 barnes, cholesky, fft, lu_ncb, ocean_cp,
 * radiosity, radix, raytrace, volrend, water; PARSEC 3.0 blackscholes,
 * bodytrack, canneal, dedup, ferret, fluidanimate, freqmine,
 * streamcluster, swaptions, vips, x264).
 *
 * Parameters are chosen to match each benchmark's memory-system traits
 * as characterized in the paper's discussion: radix and lu_ncb have
 * high persist volume and frequent exposures (worst STW cases);
 * blackscholes/swaptions have few simultaneous writers; dedup forms
 * short persist lists (~2), x264 medium (~4), bodytrack long (~6);
 * ocean_cp alternates barrier-synchronized stencil phases (Fig. 15).
 */

#include "workload/generators.hh"

namespace tsoper
{

const std::vector<Profile> &
allProfiles()
{
    static const std::vector<Profile> profiles = [] {
        std::vector<Profile> v;

        auto add = [&v](Profile p) { v.push_back(std::move(p)); };

        // ---- Splash-3 (small inputs in the paper) --------------------
        add({.name = "barnes", .kernel = Kernel::TaskQueue,
             .opsPerCore = 6000, .writeFrac = 0.30, .sharedFrac = 0.35,
             .privateWords = 1 << 13, .sharedWords = 1 << 13,
             .computeMin = 2, .computeMax = 10, .opsPerPhase = 1200,
             .numLocks = 16, .lockProb = 0.15, .burstMax = 6});
        add({.name = "cholesky", .kernel = Kernel::TaskQueue,
             .opsPerCore = 6000, .writeFrac = 0.35, .sharedFrac = 0.45,
             .privateWords = 1 << 12, .sharedWords = 1 << 13,
             .computeMin = 2, .computeMax = 12, .opsPerPhase = 1000,
             .numLocks = 24, .lockProb = 0.25, .burstMax = 8});
        add({.name = "fft", .kernel = Kernel::Scatter,
             .opsPerCore = 6000, .writeFrac = 0.30, .sharedFrac = 0.6,
             .privateWords = 1 << 12, .sharedWords = 1 << 13,
             .computeMin = 1, .computeMax = 6, .opsPerPhase = 1500,
             .numLocks = 0, .lockProb = 0.0, .burstMax = 8});
        add({.name = "lu_ncb", .kernel = Kernel::Interleaved,
             .opsPerCore = 8000, .writeFrac = 0.50, .sharedFrac = 1.0,
             .privateWords = 1 << 10, .sharedWords = 1 << 12,
             .computeMin = 1, .computeMax = 3, .opsPerPhase = 2000,
             .numLocks = 0, .lockProb = 0.0, .burstMax = 4});
        add({.name = "ocean_cp", .kernel = Kernel::Stencil,
             .opsPerCore = 7500, .writeFrac = 0.33, .sharedFrac = 1.0,
             .privateWords = 1 << 10, .sharedWords = 1 << 13,
             .computeMin = 1, .computeMax = 4, .opsPerPhase = 900,
             .numLocks = 8, .lockProb = 0.30, .burstMax = 8});
        add({.name = "radiosity", .kernel = Kernel::TaskQueue,
             .opsPerCore = 6000, .writeFrac = 0.28, .sharedFrac = 0.40,
             .privateWords = 1 << 12, .sharedWords = 1 << 13,
             .computeMin = 2, .computeMax = 10, .opsPerPhase = 1000,
             .numLocks = 32, .lockProb = 0.20, .burstMax = 6});
        add({.name = "radix", .kernel = Kernel::Scatter,
             .opsPerCore = 9000, .writeFrac = 0.55, .sharedFrac = 0.9,
             .privateWords = 1 << 11, .sharedWords = 1 << 14,
             .computeMin = 1, .computeMax = 2, .opsPerPhase = 2200,
             .numLocks = 0, .lockProb = 0.0, .burstMax = 4});
        add({.name = "raytrace", .kernel = Kernel::TaskQueue,
             .opsPerCore = 6000, .writeFrac = 0.18, .sharedFrac = 0.5,
             .privateWords = 1 << 12, .sharedWords = 1 << 14,
             .computeMin = 3, .computeMax = 14, .opsPerPhase = 1000,
             .numLocks = 16, .lockProb = 0.08, .burstMax = 10});
        add({.name = "volrend", .kernel = Kernel::TaskQueue,
             .opsPerCore = 5000, .writeFrac = 0.15, .sharedFrac = 0.45,
             .privateWords = 1 << 12, .sharedWords = 1 << 13,
             .computeMin = 2, .computeMax = 10, .opsPerPhase = 900,
             .numLocks = 16, .lockProb = 0.06, .burstMax = 10});
        add({.name = "water", .kernel = Kernel::Stencil,
             .opsPerCore = 6000, .writeFrac = 0.30, .sharedFrac = 1.0,
             .privateWords = 1 << 11, .sharedWords = 1 << 12,
             .computeMin = 2, .computeMax = 8, .opsPerPhase = 1100,
             .numLocks = 8, .lockProb = 0.05, .burstMax = 8});

        // ---- PARSEC 3.0 -----------------------------------------------
        add({.name = "blackscholes", .kernel = Kernel::PrivateCompute,
             .opsPerCore = 6000, .writeFrac = 0.22, .sharedFrac = 0.01,
             .privateWords = 1 << 13, .sharedWords = 1 << 10,
             .computeMin = 3, .computeMax = 12, .opsPerPhase = 2500,
             .numLocks = 0, .lockProb = 0.0, .burstMax = 12});
        add({.name = "bodytrack", .kernel = Kernel::LockGrid,
             .opsPerCore = 6500, .writeFrac = 0.35, .sharedFrac = 0.6,
             .privateWords = 1 << 11, .sharedWords = 1 << 10,
             .computeMin = 2, .computeMax = 8, .opsPerPhase = 900,
             .numLocks = 8, .lockProb = 0.30, .burstMax = 6});
        add({.name = "canneal", .kernel = Kernel::LockGrid,
             .opsPerCore = 6500, .writeFrac = 0.35, .sharedFrac = 0.8,
             .privateWords = 1 << 11, .sharedWords = 1 << 13,
             .computeMin = 1, .computeMax = 5, .opsPerPhase = 1000,
             .numLocks = 64, .lockProb = 0.4, .burstMax = 4});
        add({.name = "dedup", .kernel = Kernel::Pipeline,
             .opsPerCore = 6000, .writeFrac = 0.30, .sharedFrac = 0.5,
             .privateWords = 1 << 12, .sharedWords = 1 << 12,
             .computeMin = 2, .computeMax = 8, .opsPerPhase = 1000,
             .numLocks = 8, .lockProb = 0.2, .burstMax = 8});
        add({.name = "ferret", .kernel = Kernel::Pipeline,
             .opsPerCore = 6000, .writeFrac = 0.26, .sharedFrac = 0.5,
             .privateWords = 1 << 12, .sharedWords = 1 << 12,
             .computeMin = 3, .computeMax = 12, .opsPerPhase = 1000,
             .numLocks = 8, .lockProb = 0.2, .burstMax = 8});
        add({.name = "fluidanimate", .kernel = Kernel::LockGrid,
             .opsPerCore = 6500, .writeFrac = 0.40, .sharedFrac = 0.7,
             .privateWords = 1 << 11, .sharedWords = 1 << 12,
             .computeMin = 1, .computeMax = 6, .opsPerPhase = 900,
             .numLocks = 128, .lockProb = 0.5, .burstMax = 5});
        add({.name = "freqmine", .kernel = Kernel::PrivateCompute,
             .opsPerCore = 6000, .writeFrac = 0.30, .sharedFrac = 0.06,
             .privateWords = 1 << 13, .sharedWords = 1 << 11,
             .computeMin = 2, .computeMax = 9, .opsPerPhase = 2000,
             .numLocks = 0, .lockProb = 0.0, .burstMax = 10});
        add({.name = "streamcluster", .kernel = Kernel::PrivateCompute,
             .opsPerCore = 7000, .writeFrac = 0.12, .sharedFrac = 0.15,
             .privateWords = 1 << 13, .sharedWords = 1 << 12,
             .computeMin = 1, .computeMax = 4, .opsPerPhase = 1200,
             .numLocks = 0, .lockProb = 0.0, .burstMax = 16});
        add({.name = "swaptions", .kernel = Kernel::PrivateCompute,
             .opsPerCore = 6000, .writeFrac = 0.25, .sharedFrac = 0.005,
             .privateWords = 1 << 13, .sharedWords = 1 << 9,
             .computeMin = 3, .computeMax = 14, .opsPerPhase = 3000,
             .numLocks = 0, .lockProb = 0.0, .burstMax = 12});
        add({.name = "vips", .kernel = Kernel::PrivateCompute,
             .opsPerCore = 6000, .writeFrac = 0.30, .sharedFrac = 0.08,
             .privateWords = 1 << 13, .sharedWords = 1 << 11,
             .computeMin = 2, .computeMax = 8, .opsPerPhase = 1500,
             .numLocks = 0, .lockProb = 0.0, .burstMax = 12});
        add({.name = "x264", .kernel = Kernel::Pipeline,
             .opsPerCore = 7000, .writeFrac = 0.40, .sharedFrac = 0.6,
             .privateWords = 1 << 12, .sharedWords = 1 << 11,
             .computeMin = 1, .computeMax = 6, .opsPerPhase = 900,
             .numLocks = 8, .lockProb = 0.3, .burstMax = 8});
        return v;
    }();
    return profiles;
}

} // namespace tsoper
