#include "workload/generators.hh"

#include <algorithm>

#include "sim/log.hh"
#include "sim/rng.hh"

namespace tsoper
{

namespace
{

/** Per-core trace construction helper. */
class TraceBuilder
{
  public:
    TraceBuilder(Trace &trace, CoreId core, const Profile &p, Rng &rng)
        : trace_(trace), core_(core), p_(p), rng_(rng)
    {
    }

    void
    compute()
    {
        const auto cycles = static_cast<std::uint32_t>(
            rng_.range(p_.computeMin, std::max(p_.computeMin,
                                               p_.computeMax)));
        trace_.push_back({OpType::Compute, 0, cycles});
    }

    void
    load(Addr a)
    {
        trace_.push_back({OpType::Load, a, 0});
        ++memOps_;
    }

    void
    store(Addr a)
    {
        trace_.push_back({OpType::Store, a, 0});
        ++memOps_;
    }

    void
    lockAcq(unsigned l)
    {
        trace_.push_back({OpType::LockAcq, layout::lockAddr(l), l});
    }

    void
    lockRel(unsigned l)
    {
        trace_.push_back({OpType::LockRel, layout::lockAddr(l), l});
    }

    void
    barrier(unsigned b)
    {
        trace_.push_back({OpType::Barrier, layout::barrierAddr(b), b});
    }

    Addr
    privateWord()
    {
        // Mix sequential bursts with random jumps for spatial locality.
        if (burstLeft_ == 0) {
            privCursor_ = rng_.below(p_.privateWords);
            burstLeft_ = rng_.burst(0.7, p_.burstMax);
        }
        --burstLeft_;
        privCursor_ = (privCursor_ + 1) % p_.privateWords;
        return layout::privateAddr(core_, privCursor_);
    }

    Addr
    sharedWord(std::uint64_t index)
    {
        return layout::sharedAddr(index % p_.sharedWords);
    }

    Addr
    randomSharedWord()
    {
        return layout::sharedAddr(rng_.below(p_.sharedWords));
    }

    std::uint64_t memOps() const { return memOps_; }

  private:
    Trace &trace_;
    CoreId core_;
    const Profile &p_;
    Rng &rng_;
    std::uint64_t privCursor_ = 0;
    unsigned burstLeft_ = 0;
    std::uint64_t memOps_ = 0;
};

unsigned
scaledOps(const Profile &p, double scale)
{
    return std::max(200u, static_cast<unsigned>(p.opsPerCore * scale));
}

void
genStencil(Workload &w, const Profile &p, unsigned numCores,
           std::uint64_t seed, double scale)
{
    const unsigned ops = scaledOps(p, scale);
    // Reduction accumulators (one per lock) live past the grid blocks.
    const std::uint64_t gridWords =
        p.sharedWords > p.numLocks * 8 ? p.sharedWords - p.numLocks * 8
                                       : p.sharedWords;
    const std::uint64_t block =
        std::max<std::uint64_t>(16, gridWords / numCores);
    const unsigned phases =
        std::max(1u, ops / std::max(1u, p.opsPerPhase));
    for (CoreId c = 0; c < static_cast<CoreId>(numCores); ++c) {
        Rng rng(seed * 0x9e37 + static_cast<std::uint64_t>(c) + 1);
        TraceBuilder b(w.perCore[c], c, p, rng);
        const std::uint64_t base = block * static_cast<std::uint64_t>(c);
        std::uint64_t cursor = 0;
        for (unsigned ph = 0; ph < phases; ++ph) {
            for (unsigned i = 0; i < p.opsPerPhase / 3; ++i) {
                // Read the west neighbour; some reads reach into the
                // preceding core's block near *its* sweep position —
                // the halo exchange of a real grid decomposition, which
                // hits lines the neighbour wrote moments ago.
                std::uint64_t west = base + (cursor + block - 1) % block;
                if (rng.chance(0.08)) {
                    const std::uint64_t prevBase =
                        (base + block * (numCores - 1)) %
                        (block * numCores);
                    west = prevBase +
                           (cursor + block - rng.below(16)) % block;
                }
                b.load(b.sharedWord(west));
                b.load(b.sharedWord(base + cursor));
                b.store(b.sharedWord(base + cursor));
                b.compute();
                cursor = (cursor + 1) % block;
            }
            // End-of-phase global reductions: a burst of tiny
            // lock-protected critical sections, each one store to a
            // shared accumulator.  Under SFR persistency this yields
            // the paper's bimodal distribution for ocean_cp (§V-D /
            // Fig. 15): a mass of 1-store SFRs from the critical
            // sections next to a few huge SFRs from the free-running
            // phase bodies.
            for (unsigned l = 0; l < p.numLocks; ++l) {
                if (!rng.chance(p.lockProb * 3))
                    continue;
                const std::uint64_t acc = gridWords + l * 8;
                b.lockAcq(l);
                b.load(b.sharedWord(acc));
                b.store(b.sharedWord(acc));
                b.lockRel(l);
            }
            b.barrier(ph % 4);
        }
    }
    w.numBarriers = 4;
    w.numLocks = p.numLocks;
}

void
genScatter(Workload &w, const Profile &p, unsigned numCores,
           std::uint64_t seed, double scale)
{
    const unsigned ops = scaledOps(p, scale);
    const unsigned phases =
        std::max(1u, ops / std::max(1u, p.opsPerPhase));
    for (CoreId c = 0; c < static_cast<CoreId>(numCores); ++c) {
        Rng rng(seed * 0xabcd + static_cast<std::uint64_t>(c) + 1);
        TraceBuilder b(w.perCore[c], c, p, rng);
        for (unsigned ph = 0; ph < phases; ++ph) {
            for (unsigned i = 0; i < p.opsPerPhase / 2; ++i) {
                b.load(b.privateWord());
                if (rng.chance(p.writeFrac * 2.0))
                    b.store(b.randomSharedWord());
                else
                    b.load(b.randomSharedWord());
                if (rng.chance(0.3))
                    b.compute();
            }
            b.barrier(ph % 4);
        }
    }
    w.numBarriers = 4;
}

void
genInterleaved(Workload &w, const Profile &p, unsigned numCores,
               std::uint64_t seed, double scale)
{
    // lu_ncb-style: word-interleaved ownership, so adjacent cores write
    // adjacent words of the *same* cacheline (communication through
    // false sharing at line granularity).
    const unsigned ops = scaledOps(p, scale);
    const unsigned phases =
        std::max(1u, ops / std::max(1u, p.opsPerPhase));
    for (CoreId c = 0; c < static_cast<CoreId>(numCores); ++c) {
        Rng rng(seed * 0x1357 + static_cast<std::uint64_t>(c) + 1);
        TraceBuilder b(w.perCore[c], c, p, rng);
        std::uint64_t cursor = static_cast<std::uint64_t>(c);
        for (unsigned ph = 0; ph < phases; ++ph) {
            for (unsigned i = 0; i < p.opsPerPhase / 2; ++i) {
                b.load(b.sharedWord(cursor));
                b.store(b.sharedWord(cursor));
                if (rng.chance(0.2))
                    b.compute();
                cursor = (cursor + numCores) % p.sharedWords;
            }
            b.barrier(ph % 4);
        }
    }
    w.numBarriers = 4;
}

void
genTaskQueue(Workload &w, const Profile &p, unsigned numCores,
             std::uint64_t seed, double scale)
{
    const unsigned ops = scaledOps(p, scale);
    const unsigned queueLocks = std::max(1u, p.numLocks / 4);
    for (CoreId c = 0; c < static_cast<CoreId>(numCores); ++c) {
        Rng rng(seed * 0x7f31 + static_cast<std::uint64_t>(c) + 1);
        TraceBuilder b(w.perCore[c], c, p, rng);
        while (b.memOps() < ops) {
            // Pop a task from a shared queue under a lock.
            const unsigned ql =
                static_cast<unsigned>(rng.below(queueLocks));
            b.lockAcq(ql);
            const std::uint64_t task = rng.below(p.sharedWords / 8) * 8;
            b.load(b.sharedWord(task));
            b.store(b.sharedWord(task));
            b.lockRel(ql);
            // Process: shared reads + private work.
            const unsigned work = rng.burst(0.8, 24);
            for (unsigned i = 0; i < work; ++i) {
                if (rng.chance(p.sharedFrac))
                    b.load(b.sharedWord(task + 1 + rng.below(8)));
                else if (rng.chance(p.writeFrac))
                    b.store(b.privateWord());
                else
                    b.load(b.privateWord());
                if (rng.chance(0.4))
                    b.compute();
            }
            // Publish a result under a result lock sometimes.
            if (rng.chance(p.lockProb)) {
                const unsigned rl = queueLocks +
                    static_cast<unsigned>(
                        rng.below(std::max(1u, p.numLocks - queueLocks)));
                b.lockAcq(rl);
                b.store(b.randomSharedWord());
                b.lockRel(rl);
            }
        }
    }
    w.numLocks = p.numLocks;
}

void
genPipeline(Workload &w, const Profile &p, unsigned numCores,
            std::uint64_t seed, double scale)
{
    // Stage c consumes from ring buffer c-1 and produces into ring
    // buffer c; buffers are lock-guarded regions of the shared space.
    const unsigned ops = scaledOps(p, scale);
    const std::uint64_t ringWords =
        std::max<std::uint64_t>(64, p.sharedWords / numCores);
    for (CoreId c = 0; c < static_cast<CoreId>(numCores); ++c) {
        Rng rng(seed * 0x5bd1 + static_cast<std::uint64_t>(c) + 1);
        TraceBuilder b(w.perCore[c], c, p, rng);
        const unsigned inLock = static_cast<unsigned>(
            (c + numCores - 1) % numCores);
        const unsigned outLock = static_cast<unsigned>(c);
        const std::uint64_t inBase = ringWords * inLock;
        const std::uint64_t outBase = ringWords * outLock;
        std::uint64_t cursor = 0;
        while (b.memOps() < ops) {
            const unsigned itemWords =
                1 + static_cast<unsigned>(rng.below(6));
            if (c != 0) {
                b.lockAcq(inLock);
                for (unsigned i = 0; i < itemWords; ++i)
                    b.load(b.sharedWord(inBase + (cursor + i) % ringWords));
                b.lockRel(inLock);
            } else {
                for (unsigned i = 0; i < itemWords; ++i)
                    b.load(b.privateWord());
            }
            b.compute();
            b.lockAcq(outLock);
            for (unsigned i = 0; i < itemWords; ++i)
                b.store(b.sharedWord(outBase + (cursor + i) % ringWords));
            b.lockRel(outLock);
            cursor = (cursor + itemWords) % ringWords;
            if (rng.chance(p.writeFrac))
                b.store(b.privateWord());
        }
    }
    w.numLocks = numCores;
}

void
genPrivateCompute(Workload &w, const Profile &p, unsigned numCores,
                  std::uint64_t seed, double scale)
{
    const unsigned ops = scaledOps(p, scale);
    const unsigned phases = std::max(
        1u, ops / std::max(1u, p.opsPerPhase));
    for (CoreId c = 0; c < static_cast<CoreId>(numCores); ++c) {
        Rng rng(seed * 0x2545 + static_cast<std::uint64_t>(c) + 1);
        TraceBuilder b(w.perCore[c], c, p, rng);
        for (unsigned ph = 0; ph < phases; ++ph) {
            for (unsigned i = 0; i < p.opsPerPhase; ++i) {
                if (rng.chance(p.sharedFrac)) {
                    if (rng.chance(p.writeFrac))
                        b.store(b.randomSharedWord());
                    else
                        b.load(b.randomSharedWord());
                } else if (rng.chance(p.writeFrac)) {
                    b.store(b.privateWord());
                } else {
                    b.load(b.privateWord());
                }
                if (rng.chance(0.5))
                    b.compute();
            }
            b.barrier(ph % 2);
        }
    }
    w.numBarriers = 2;
}

void
genLockGrid(Workload &w, const Profile &p, unsigned numCores,
            std::uint64_t seed, double scale)
{
    const unsigned ops = scaledOps(p, scale);
    for (CoreId c = 0; c < static_cast<CoreId>(numCores); ++c) {
        Rng rng(seed * 0x94d0 + static_cast<std::uint64_t>(c) + 1);
        TraceBuilder b(w.perCore[c], c, p, rng);
        while (b.memOps() < ops) {
            const std::uint64_t cell = rng.below(p.sharedWords / 4) * 4;
            const unsigned lock = static_cast<unsigned>(
                cell / 4 % p.numLocks);
            b.lockAcq(lock);
            b.load(b.sharedWord(cell));
            b.load(b.sharedWord(cell + 1));
            b.store(b.sharedWord(cell));
            if (rng.chance(0.5))
                b.store(b.sharedWord(cell + 1));
            b.lockRel(lock);
            const unsigned priv = rng.burst(0.6, 12);
            for (unsigned i = 0; i < priv; ++i) {
                if (rng.chance(p.writeFrac))
                    b.store(b.privateWord());
                else
                    b.load(b.privateWord());
            }
            b.compute();
        }
    }
    w.numLocks = p.numLocks;
}

} // namespace

Workload
generate(const Profile &p, unsigned numCores, std::uint64_t seed,
         double scale)
{
    Workload w;
    w.name = p.name;
    w.perCore.resize(numCores);
    switch (p.kernel) {
      case Kernel::Stencil:
        genStencil(w, p, numCores, seed, scale);
        break;
      case Kernel::Scatter:
        genScatter(w, p, numCores, seed, scale);
        break;
      case Kernel::Interleaved:
        genInterleaved(w, p, numCores, seed, scale);
        break;
      case Kernel::TaskQueue:
        genTaskQueue(w, p, numCores, seed, scale);
        break;
      case Kernel::Pipeline:
        genPipeline(w, p, numCores, seed, scale);
        break;
      case Kernel::PrivateCompute:
        genPrivateCompute(w, p, numCores, seed, scale);
        break;
      case Kernel::LockGrid:
        genLockGrid(w, p, numCores, seed, scale);
        break;
    }
    return w;
}

Workload
generateByName(const std::string &name, unsigned numCores,
               std::uint64_t seed, double scale)
{
    return generate(profileByName(name), numCores, seed, scale);
}

std::vector<std::string>
benchmarkNames()
{
    std::vector<std::string> names;
    for (const Profile &p : allProfiles())
        names.push_back(p.name);
    return names;
}

const Profile *
findProfile(const std::string &name)
{
    for (const Profile &p : allProfiles())
        if (p.name == name)
            return &p;
    return nullptr;
}

const Profile &
profileByName(const std::string &name)
{
    if (const Profile *p = findProfile(name))
        return *p;
    tsoper_fatal("unknown benchmark profile: ", name);
}

} // namespace tsoper
