#include "workload/trace_io.hh"

#include <fstream>
#include <sstream>

#include "sim/log.hh"

namespace tsoper
{

void
saveWorkload(const Workload &w, std::ostream &os)
{
    os << "# tsoper trace v1\n";
    os << "workload " << (w.name.empty() ? "unnamed" : w.name)
       << " cores=" << w.perCore.size() << " locks=" << w.numLocks
       << " barriers=" << w.numBarriers << "\n";
    for (std::size_t c = 0; c < w.perCore.size(); ++c) {
        os << "core " << c << "\n";
        for (const TraceOp &op : w.perCore[c]) {
            switch (op.type) {
              case OpType::Load:
                os << "L " << std::hex << op.addr << std::dec << "\n";
                break;
              case OpType::Store:
                os << "S " << std::hex << op.addr << std::dec << "\n";
                break;
              case OpType::Compute:
                os << "C " << op.arg << "\n";
                break;
              case OpType::LockAcq:
                os << "A " << op.arg << "\n";
                break;
              case OpType::LockRel:
                os << "R " << op.arg << "\n";
                break;
              case OpType::Barrier:
                os << "B " << op.arg << "\n";
                break;
              case OpType::Marker:
                os << "M\n";
                break;
            }
        }
    }
}

void
saveWorkloadFile(const Workload &w, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        tsoper_fatal("cannot open trace file for writing: ", path);
    saveWorkload(w, os);
    if (!os)
        tsoper_fatal("I/O error writing trace file: ", path);
}

Workload
loadWorkload(std::istream &is)
{
    Workload w;
    bool haveHeader = false;
    Trace *current = nullptr;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string tok;
        ls >> tok;
        if (tok == "workload") {
            std::string name;
            ls >> name;
            w.name = name;
            std::string kv;
            unsigned cores = 0;
            while (ls >> kv) {
                const auto eq = kv.find('=');
                if (eq == std::string::npos)
                    tsoper_fatal("trace line ", lineNo,
                                 ": malformed key=value: ", kv);
                const std::string key = kv.substr(0, eq);
                const unsigned value =
                    static_cast<unsigned>(std::stoul(kv.substr(eq + 1)));
                if (key == "cores")
                    cores = value;
                else if (key == "locks")
                    w.numLocks = value;
                else if (key == "barriers")
                    w.numBarriers = value;
                else
                    tsoper_fatal("trace line ", lineNo,
                                 ": unknown key: ", key);
            }
            if (cores == 0 || cores > 64)
                tsoper_fatal("trace line ", lineNo,
                             ": bad core count ", cores);
            w.perCore.resize(cores);
            haveHeader = true;
        } else if (tok == "core") {
            if (!haveHeader)
                tsoper_fatal("trace line ", lineNo,
                             ": 'core' before 'workload' header");
            std::size_t idx = 0;
            ls >> idx;
            if (idx >= w.perCore.size())
                tsoper_fatal("trace line ", lineNo,
                             ": core index ", idx, " out of range");
            current = &w.perCore[idx];
        } else {
            if (!current)
                tsoper_fatal("trace line ", lineNo,
                             ": op before any 'core' directive");
            TraceOp op{};
            if (tok == "L" || tok == "S") {
                op.type = tok == "L" ? OpType::Load : OpType::Store;
                ls >> std::hex >> op.addr >> std::dec;
            } else if (tok == "C") {
                op.type = OpType::Compute;
                ls >> op.arg;
            } else if (tok == "A" || tok == "R") {
                op.type = tok == "A" ? OpType::LockAcq : OpType::LockRel;
                ls >> op.arg;
                op.addr = layout::lockAddr(op.arg);
            } else if (tok == "B") {
                op.type = OpType::Barrier;
                ls >> op.arg;
                op.addr = layout::barrierAddr(op.arg);
            } else if (tok == "M") {
                op.type = OpType::Marker;
            } else {
                tsoper_fatal("trace line ", lineNo,
                             ": unknown directive '", tok, "'");
            }
            if (ls.fail())
                tsoper_fatal("trace line ", lineNo,
                             ": malformed operand in '", line, "'");
            current->push_back(op);
        }
    }
    if (!haveHeader)
        tsoper_fatal("trace stream has no 'workload' header");
    return w;
}

Workload
loadWorkloadFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        tsoper_fatal("cannot open trace file: ", path);
    return loadWorkload(is);
}

} // namespace tsoper
