/**
 * @file
 * Workload trace serialization: a line-oriented text format so
 * externally produced traces (e.g. from a Pin/Sniper-style frontend)
 * can drive the simulator, and generated workloads can be archived.
 *
 * Format:
 *   # comments and blank lines ignored
 *   workload <name> cores=<n> locks=<n> barriers=<n>
 *   core <index>
 *   L <addr-hex>       load
 *   S <addr-hex>       store
 *   C <cycles>         compute
 *   A <lock-id>        lock acquire
 *   R <lock-id>        lock release
 *   B <barrier-id>     barrier
 *   M                  marker (§II-D AG boundary)
 */

#ifndef TSOPER_WORKLOAD_TRACE_IO_HH
#define TSOPER_WORKLOAD_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "workload/trace.hh"

namespace tsoper
{

/** Serialize @p w to @p os in the text format above. */
void saveWorkload(const Workload &w, std::ostream &os);

/** Save to a file; fatal on I/O failure. */
void saveWorkloadFile(const Workload &w, const std::string &path);

/**
 * Parse a workload; fatal on malformed input (unknown directive,
 * missing header, out-of-range core index).
 */
Workload loadWorkload(std::istream &is);

Workload loadWorkloadFile(const std::string &path);

} // namespace tsoper

#endif // TSOPER_WORKLOAD_TRACE_IO_HH
