/**
 * @file
 * Unit tests for the Atomic Group Buffer: two-phase allocation, FIFO
 * grants, capacity backpressure, super-group draining, same-address
 * FIFO to NVM, and crash semantics (committed-prefix durability).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/agb.hh"
#include "mem/llc.hh"
#include "mem/nvm.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace tsoper;

namespace
{

struct AgbFixture : public ::testing::Test
{
    AgbFixture() { rebuild(); }

    void
    rebuild()
    {
        mesh = std::make_unique<Mesh>(cfg, stats);
        nvm = std::make_unique<Nvm>(cfg, eq, stats);
        llc = std::make_unique<Llc>(cfg, *nvm, stats);
        agb = std::make_unique<Agb>(cfg, eq, *mesh, *nvm, *llc, stats);
    }

    LineWords
    wordsFor(StoreId id)
    {
        LineWords w = zeroLine();
        w[0] = id;
        return w;
    }

    SystemConfig cfg;
    EventQueue eq;
    StatsRegistry stats;
    std::unique_ptr<Mesh> mesh;
    std::unique_ptr<Nvm> nvm;
    std::unique_ptr<Llc> llc;
    std::unique_ptr<Agb> agb;
};

} // namespace

TEST_F(AgbFixture, GrantAndBufferAndDrain)
{
    bool granted = false;
    const auto h = agb->requestAllocation(0, {8, 9}, [&](Cycle) {
        granted = true;
    });
    eq.runUntil([&] { return granted; });
    bool buffered = false;
    agb->bufferLine(h, 8, wordsFor(makeStoreId(0, 0)),
                    [&](Cycle) { buffered = true; });
    agb->bufferLine(h, 9, wordsFor(makeStoreId(0, 1)), {});
    eq.run();
    EXPECT_TRUE(buffered);
    EXPECT_TRUE(agb->quiescent());
    EXPECT_EQ(nvm->durable(8)[0], makeStoreId(0, 0));
    EXPECT_EQ(nvm->durable(9)[0], makeStoreId(0, 1));
}

TEST_F(AgbFixture, EmptyAgCompletesImmediately)
{
    bool granted = false;
    agb->requestAllocation(0, {}, [&](Cycle) { granted = true; });
    eq.run();
    EXPECT_TRUE(granted);
    EXPECT_TRUE(agb->quiescent());
}

TEST_F(AgbFixture, GrantsAreFifoEvenWhenLaterFits)
{
    // Fill slice 0 nearly full, then queue a big AG (doesn't fit) and a
    // small one (would fit): the small one must wait behind the big one.
    cfg.agbSliceLines = 4;
    rebuild();
    std::vector<LineAddr> big = {0, 8, 16, 24};   // 4 lines, slice 0.
    std::vector<LineAddr> more = {32, 40, 48};    // 3 lines, slice 0.
    std::vector<LineAddr> tiny = {56};            // 1 line, slice 0.
    bool g1 = false, g2 = false, g3 = false;
    const auto h1 = agb->requestAllocation(0, big, [&](Cycle) {
        g1 = true;
    });
    agb->requestAllocation(1, more, [&](Cycle) { g2 = true; });
    agb->requestAllocation(2, tiny, [&](Cycle) { g3 = true; });
    eq.run();
    EXPECT_TRUE(g1);
    EXPECT_FALSE(g2); // Blocked on capacity.
    EXPECT_FALSE(g3); // FIFO: must not overtake.
    // Drain the first AG; space frees, both grants follow in order.
    for (LineAddr l : big)
        agb->bufferLine(h1, l, zeroLine(), {});
    eq.run();
    EXPECT_TRUE(g2);
    EXPECT_TRUE(g3);
}

TEST_F(AgbFixture, OversizedAgIsFatal)
{
    cfg.agbSliceLines = 2;
    rebuild();
    EXPECT_THROW(
        agb->requestAllocation(0, {0, 8, 16}, [](Cycle) {}),
        std::logic_error);
}

TEST_F(AgbFixture, UnboundedModeGrantsAnything)
{
    cfg.agbSliceLines = 1;
    cfg.agbUnbounded = true;
    rebuild();
    std::vector<LineAddr> lines;
    for (LineAddr l = 0; l < 64; ++l)
        lines.push_back(l * 8); // All slice 0.
    bool granted = false;
    agb->requestAllocation(0, lines, [&](Cycle) { granted = true; });
    eq.run();
    EXPECT_TRUE(granted);
}

TEST_F(AgbFixture, IncompleteAgIsNotDurableAtCrash)
{
    bool granted = false;
    const auto h = agb->requestAllocation(0, {8, 9}, [&](Cycle) {
        granted = true;
    });
    eq.runUntil([&] { return granted; });
    agb->bufferLine(h, 8, wordsFor(makeStoreId(0, 0)), {});
    eq.run(); // Line 8 buffered, line 9 never sent: AG incomplete.
    EXPECT_FALSE(agb->quiescent());
    EXPECT_TRUE(agb->crashOverlay().empty());
    EXPECT_EQ(nvm->durable(8)[0], invalidStore);
}

TEST_F(AgbFixture, CompletePrefixRule)
{
    // AG1 incomplete, AG2 complete behind it: neither is durable.
    bool g1 = false, g2 = false;
    const auto h1 = agb->requestAllocation(0, {8, 16}, [&](Cycle) {
        g1 = true;
    });
    const auto h2 = agb->requestAllocation(1, {24}, [&](Cycle) {
        g2 = true;
    });
    eq.runUntil([&] { return g1 && g2; });
    agb->bufferLine(h2, 24, wordsFor(makeStoreId(1, 0)), {});
    agb->bufferLine(h1, 8, wordsFor(makeStoreId(0, 0)), {});
    eq.run();
    // AG2 complete but behind incomplete AG1: super-group rule blocks it.
    EXPECT_TRUE(agb->crashOverlay().empty());
    EXPECT_EQ(nvm->durable(24)[0], invalidStore);
    // Completing AG1 releases both.
    agb->bufferLine(h1, 16, wordsFor(makeStoreId(0, 1)), {});
    eq.run();
    EXPECT_EQ(nvm->durable(24)[0], makeStoreId(1, 0));
    EXPECT_EQ(nvm->durable(8)[0], makeStoreId(0, 0));
}

TEST_F(AgbFixture, CrashOverlayCoversCommittedButUndrained)
{
    bool granted = false;
    const auto h = agb->requestAllocation(0, {8}, [&](Cycle) {
        granted = true;
    });
    eq.runUntil([&] { return granted; });
    Cycle bufferedAt = 0;
    agb->bufferLine(h, 8, wordsFor(makeStoreId(0, 0)),
                    [&](Cycle at) { bufferedAt = at; });
    eq.runUntil([&] { return bufferedAt != 0; });
    // Crash after buffering but before the NVM write completes.
    EXPECT_EQ(nvm->durable(8)[0], invalidStore);
    const auto overlay = agb->crashOverlay();
    ASSERT_EQ(overlay.size(), 1u);
    EXPECT_EQ(overlay[0].first, 8u);
    EXPECT_EQ(overlay[0].second[0], makeStoreId(0, 0));
}

TEST_F(AgbFixture, SameAddressVersionsDrainInAllocationOrder)
{
    bool g1 = false, g2 = false;
    const auto h1 = agb->requestAllocation(0, {8}, [&](Cycle) {
        g1 = true;
    });
    const auto h2 = agb->requestAllocation(1, {8}, [&](Cycle) {
        g2 = true;
    });
    eq.runUntil([&] { return g1 && g2; });
    // Buffer the *younger* version first; NVM must still end newest.
    agb->bufferLine(h2, 8, wordsFor(makeStoreId(1, 0)), {});
    agb->bufferLine(h1, 8, wordsFor(makeStoreId(0, 0)), {});
    eq.run();
    EXPECT_EQ(nvm->durable(8)[0], makeStoreId(1, 0));
}

TEST_F(AgbFixture, DoubleBufferPanics)
{
    bool granted = false;
    const auto h = agb->requestAllocation(0, {8}, [&](Cycle) {
        granted = true;
    });
    eq.runUntil([&] { return granted; });
    agb->bufferLine(h, 8, zeroLine(), {});
    EXPECT_THROW(agb->bufferLine(h, 8, zeroLine(), {}),
                 std::logic_error);
}

TEST_F(AgbFixture, CentralizedOrganizationWorks)
{
    cfg.agbDistributed = false;
    rebuild();
    EXPECT_EQ(agb->sliceCount(), 1u);
    bool granted = false;
    const auto h = agb->requestAllocation(0, {8, 9, 10}, [&](Cycle) {
        granted = true;
    });
    eq.runUntil([&] { return granted; });
    for (LineAddr l : {8, 9, 10})
        agb->bufferLine(h, static_cast<LineAddr>(l),
                        wordsFor(makeStoreId(0, l)), {});
    eq.run();
    EXPECT_TRUE(agb->quiescent());
    EXPECT_EQ(nvm->durable(10)[0], makeStoreId(0, 10));
}

TEST_F(AgbFixture, NotifyQuiescentFires)
{
    bool fired = false;
    agb->notifyQuiescent([&] { fired = true; });
    eq.run();
    EXPECT_TRUE(fired); // Already quiescent.
    bool granted = false;
    const auto h = agb->requestAllocation(0, {8}, [&](Cycle) {
        granted = true;
    });
    eq.runUntil([&] { return granted; });
    bool fired2 = false;
    agb->notifyQuiescent([&] { fired2 = true; });
    agb->bufferLine(h, 8, zeroLine(), {});
    eq.run();
    EXPECT_TRUE(fired2);
}
