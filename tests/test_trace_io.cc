/** @file Tests for workload trace serialization. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/system.hh"
#include "workload/generators.hh"
#include "workload/trace_io.hh"

using namespace tsoper;

namespace
{

bool
sameWorkload(const Workload &a, const Workload &b)
{
    if (a.perCore.size() != b.perCore.size() ||
        a.numLocks != b.numLocks || a.numBarriers != b.numBarriers)
        return false;
    for (std::size_t c = 0; c < a.perCore.size(); ++c) {
        if (a.perCore[c].size() != b.perCore[c].size())
            return false;
        for (std::size_t i = 0; i < a.perCore[c].size(); ++i) {
            const TraceOp &x = a.perCore[c][i];
            const TraceOp &y = b.perCore[c][i];
            if (x.type != y.type || x.arg != y.arg)
                return false;
            if ((x.type == OpType::Load || x.type == OpType::Store) &&
                x.addr != y.addr)
                return false;
        }
    }
    return true;
}

} // namespace

TEST(TraceIo, RoundTripsEveryBenchmark)
{
    for (const char *name :
         {"ocean_cp", "radix", "dedup", "fluidanimate", "swaptions"}) {
        const Workload original = generateByName(name, 8, 3, 0.05);
        std::stringstream ss;
        saveWorkload(original, ss);
        const Workload reloaded = loadWorkload(ss);
        EXPECT_TRUE(sameWorkload(original, reloaded)) << name;
        EXPECT_EQ(reloaded.name, original.name);
    }
}

TEST(TraceIo, HandWrittenTraceParses)
{
    std::stringstream ss;
    ss << "# a comment\n"
          "workload demo cores=2 locks=1 barriers=1\n"
          "core 0\n"
          "S 50000000\n"
          "C 10\n"
          "A 0\n"
          "L 50000000\n"
          "R 0\n"
          "M\n"
          "B 0\n"
          "core 1\n"
          "B 0\n";
    const Workload w = loadWorkload(ss);
    EXPECT_EQ(w.name, "demo");
    ASSERT_EQ(w.perCore.size(), 2u);
    ASSERT_EQ(w.perCore[0].size(), 7u);
    EXPECT_EQ(w.perCore[0][0].type, OpType::Store);
    EXPECT_EQ(w.perCore[0][0].addr, 0x50000000u);
    EXPECT_EQ(w.perCore[0][2].type, OpType::LockAcq);
    EXPECT_EQ(w.perCore[0][2].addr, layout::lockAddr(0));
    EXPECT_EQ(w.perCore[0][5].type, OpType::Marker);
    std::string error;
    EXPECT_TRUE(validateWorkload(w, &error)) << error;
}

TEST(TraceIo, LoadedTraceDrivesTheSimulator)
{
    const Workload original = generateByName("canneal", 8, 7, 0.04);
    std::stringstream ss;
    saveWorkload(original, ss);
    const Workload reloaded = loadWorkload(ss);
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    System a(cfg, original);
    System b(cfg, reloaded);
    EXPECT_EQ(a.run(), b.run());
}

TEST(TraceIo, RejectsMalformedInput)
{
    {
        std::stringstream ss("core 0\nS 100\n");
        EXPECT_THROW(loadWorkload(ss), std::runtime_error); // No header.
    }
    {
        std::stringstream ss("workload x cores=2\nS 100\n");
        EXPECT_THROW(loadWorkload(ss), std::runtime_error); // No core.
    }
    {
        std::stringstream ss("workload x cores=2\ncore 5\n");
        EXPECT_THROW(loadWorkload(ss), std::runtime_error); // Range.
    }
    {
        std::stringstream ss("workload x cores=2\ncore 0\nQ 1\n");
        EXPECT_THROW(loadWorkload(ss), std::runtime_error); // Directive.
    }
    {
        std::stringstream ss("workload x cores=0\n");
        EXPECT_THROW(loadWorkload(ss), std::runtime_error); // Cores.
    }
}

TEST(TraceIo, FileRoundTrip)
{
    const Workload original = generateByName("fft", 4, 1, 0.05);
    const std::string path = "/tmp/tsoper_trace_io_test.trace";
    saveWorkloadFile(original, path);
    const Workload reloaded = loadWorkloadFile(path);
    EXPECT_TRUE(sameWorkload(original, reloaded));
    EXPECT_THROW(loadWorkloadFile("/nonexistent/path.trace"),
                 std::runtime_error);
}
