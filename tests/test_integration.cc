/**
 * @file
 * Whole-system integration tests: functional value agreement across
 * all protocols/engines, determinism, centralized AGB organization,
 * capacity-stressed configurations, and end-state completeness.
 */

#include <gtest/gtest.h>

#include "core/crash_checker.hh"
#include "core/system.hh"
#include "workload/generators.hh"

using namespace tsoper;

namespace
{

/** Final durable words of the shared region, as a canonical map. */
std::map<Addr, StoreId>
sharedFinalState(System &sys)
{
    std::map<Addr, StoreId> state;
    for (const auto &[line, words] : sys.durableImage()) {
        const Addr base = addrOfLine(line);
        if (base < layout::sharedBase || base >= layout::lockBase)
            continue;
        for (unsigned w = 0; w < wordsPerLine; ++w) {
            if (words[w] != invalidStore)
                state[base + w * wordBytes] = words[w];
        }
    }
    return state;
}

} // namespace

TEST(Integration, AllSystemsAgreeOnFinalMemoryState)
{
    // The same deterministic workload must leave the identical final
    // shared-memory image under every protocol/engine combination —
    // coherence correctness end to end.  lu_ncb is used because its
    // word-interleaved ownership makes every word's final value
    // independent of cross-engine timing (one writer per word).
    const Workload w = generateByName("lu_ncb", 8, 9, 0.04);
    std::map<Addr, StoreId> reference;
    bool first = true;
    for (EngineKind e :
         {EngineKind::Tsoper, EngineKind::Stw, EngineKind::BspSlc,
          EngineKind::BspSlcAgb}) {
        SystemConfig cfg = makeConfig(e);
        System sys(cfg, w);
        sys.run();
        auto state = sharedFinalState(sys);
        if (first) {
            reference = std::move(state);
            first = false;
            EXPECT_FALSE(reference.empty());
        } else {
            EXPECT_EQ(state, reference) << toString(e);
        }
    }
}

TEST(Integration, RunsAreReproducibleEventForEvent)
{
    for (EngineKind e : {EngineKind::Tsoper, EngineKind::Bsp}) {
        SystemConfig cfg = makeConfig(e);
        const Workload w = generateByName("dedup", cfg.numCores, 5, 0.05);
        System a(cfg, w);
        System b(cfg, w);
        EXPECT_EQ(a.run(), b.run()) << toString(e);
        EXPECT_EQ(a.eventQueue().executed(), b.eventQueue().executed())
            << toString(e);
        EXPECT_EQ(a.stats().get("nvm.writes_done"),
                  b.stats().get("nvm.writes_done"))
            << toString(e);
    }
}

TEST(Integration, CentralizedAgbWorksEndToEnd)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.agbDistributed = false;
    cfg.recordStores = true;
    const Workload w = generateByName("radix", cfg.numCores, 2, 0.04);
    System sys(cfg, w);
    sys.run();
    const CheckResult res =
        checkDurableState(sys.durableImage(), sys.storeLog(),
                          PersistModel::StrictTso, cfg.numCores);
    EXPECT_TRUE(res.ok) << res.detail;
    EXPECT_EQ(res.requiredStores, sys.storeLog().totalStores());
}

TEST(Integration, CentralizedAgbCrashConsistency)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.agbDistributed = false;
    cfg.recordStores = true;
    const Workload w = generateByName("lu_ncb", cfg.numCores, 6, 0.04);
    Cycle full = 0;
    {
        System sys(cfg, w);
        full = sys.run();
    }
    for (unsigned i = 1; i <= 4; ++i) {
        System sys(cfg, w);
        const auto durable = sys.runUntilCrash(full * i / 5);
        const CheckResult res =
            checkDurableState(durable, sys.storeLog(),
                              PersistModel::StrictTso, cfg.numCores);
        EXPECT_TRUE(res.ok) << "crash " << i << ": " << res.detail;
    }
}

TEST(Integration, CacheStressedTsoperStaysCorrect)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.privSets = 16; // 8 KiB private caches: constant evictions.
    cfg.recordStores = true;
    const Workload w =
        generateByName("streamcluster", cfg.numCores, 8, 0.04);
    System sys(cfg, w);
    sys.run();
    EXPECT_GT(sys.stats().get("ag.freeze_evict"), 0u);
    const CheckResult res =
        checkDurableState(sys.durableImage(), sys.storeLog(),
                          PersistModel::StrictTso, cfg.numCores);
    EXPECT_TRUE(res.ok) << res.detail;
}

TEST(Integration, CacheStressedCrashSweep)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.privSets = 16;
    cfg.recordStores = true;
    const Workload w = generateByName("ocean_cp", cfg.numCores, 10, 0.04);
    Cycle full = 0;
    {
        System sys(cfg, w);
        full = sys.run();
    }
    for (unsigned i = 1; i <= 4; ++i) {
        System sys(cfg, w);
        const auto durable = sys.runUntilCrash(full * i / 5);
        const CheckResult res =
            checkDurableState(durable, sys.storeLog(),
                              PersistModel::StrictTso, cfg.numCores);
        EXPECT_TRUE(res.ok) << "crash " << i << ": " << res.detail;
    }
}

TEST(Integration, SixteenCoreConfiguration)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.numCores = 16;
    cfg.meshCols = 6;
    cfg.meshRows = 4;
    const Workload w = generateByName("barnes", cfg.numCores, 1, 0.05);
    System sys(cfg, w);
    EXPECT_GT(sys.run(), 0u);
    EXPECT_TRUE(sys.engine().quiescent());
}

TEST(Integration, SingleCoreDegenerateCase)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.numCores = 1;
    cfg.recordStores = true;
    Workload w;
    w.perCore.resize(1);
    for (unsigned i = 0; i < 500; ++i) {
        w.perCore[0].push_back(
            {OpType::Store, layout::privateAddr(0, i % 130 * 8), 0});
        w.perCore[0].push_back(
            {OpType::Load, layout::privateAddr(0, (i * 7) % 130 * 8),
             0});
    }
    System sys(cfg, w);
    sys.run();
    const CheckResult res =
        checkDurableState(sys.durableImage(), sys.storeLog(),
                          PersistModel::StrictTso, 1);
    EXPECT_TRUE(res.ok) << res.detail;
    EXPECT_EQ(res.requiredStores, sys.storeLog().totalStores());
}

TEST(Integration, ExecutionCyclesScaleWithWorkload)
{
    // canneal's kernel loops until the op budget is met, so its trace
    // length scales smoothly (phase-based kernels floor at one phase).
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    const Workload small =
        generateByName("canneal", cfg.numCores, 1, 0.05);
    const Workload large =
        generateByName("canneal", cfg.numCores, 1, 0.2);
    System a(cfg, small);
    System b(cfg, large);
    EXPECT_LT(a.run() * 2, b.run());
}

TEST(Integration, PersistTrafficNeverExceedsStoresForStrictEngines)
{
    // Strict engines persist each version at most once; with
    // coalescing, persisted lines <= committed stores.
    for (EngineKind e : {EngineKind::Tsoper, EngineKind::Stw}) {
        SystemConfig cfg = makeConfig(e);
        const Workload w =
            generateByName("radix", cfg.numCores, 3, 0.05);
        System sys(cfg, w);
        sys.run();
        EXPECT_LE(sys.stats().get("traffic.persist_wb"),
                  sys.stats().get("cpu.stores"))
            << toString(e);
    }
}
