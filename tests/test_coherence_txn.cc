/**
 * @file
 * The decomposed directory transactions (coherence/txn.hh and the
 * multi-message state machines in slc.cc / mesi.cc): TxnTable leg
 * folding, MSHR tracking and full-stall retry, request races on a
 * single line (two writers, invalidation vs. directory eviction), and
 * the shard fence catching a synchronous cross-tile LLC poke once the
 * data plane is attached.
 */

#include <gtest/gtest.h>

#include "coherence/mesi.hh"
#include "coherence/slc.hh"
#include "coherence/txn.hh"
#include "mem/llc.hh"
#include "mem/nvm.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/shard_fence.hh"
#include "sim/shard_queue.hh"
#include "sim/stats.hh"

using namespace tsoper;

namespace
{

constexpr Addr kAddr = 0x5000'0040;
const LineAddr kLine = lineOf(kAddr);

// --- TxnTable ---------------------------------------------------------

TEST(TxnTable, FiresCompletionWithMaxOfAllLegs)
{
    StatsRegistry stats;
    TxnTable txns(stats);
    Cycle readyAt = 0;
    unsigned fired = 0;
    const TxnTable::Id id = txns.begin(kLine, 0, 3, [&](Cycle at) {
        readyAt = at;
        ++fired;
    });
    txns.legDone(id, 5);
    txns.legDone(id, 42);
    EXPECT_EQ(fired, 0u); // Two of three legs: still open.
    EXPECT_EQ(txns.open(), 1u);
    txns.legDone(id, 17);
    EXPECT_EQ(fired, 1u);
    EXPECT_EQ(readyAt, 42u); // The fold is the max, not the last.
    EXPECT_EQ(txns.open(), 0u);
    EXPECT_EQ(stats.get("dir.txn_allocs"), 1u);
    EXPECT_EQ(stats.get("dir.txn_legs"), 3u);
}

TEST(TxnTable, CompletionMayOpenNewEntries)
{
    StatsRegistry stats;
    TxnTable txns(stats);
    bool innerFired = false;
    const TxnTable::Id id = txns.begin(kLine, 0, 1, [&](Cycle) {
        // Re-entrancy: the outer entry is already retired here.
        EXPECT_EQ(txns.open(), 0u);
        const TxnTable::Id inner = txns.begin(
            kLine + 1, 1, 1, [&](Cycle) { innerFired = true; });
        txns.legDone(inner, 9);
    });
    txns.legDone(id, 4);
    EXPECT_TRUE(innerFired);
    EXPECT_EQ(stats.get("dir.txn_allocs"), 2u);
}

// --- Mshr -------------------------------------------------------------

TEST(Mshr, SecondaryMissMergesAndFullStallRetries)
{
    EventQueue eq;
    StatsRegistry stats;
    Mshr mshr(eq, /*cores=*/2, /*entriesPerCore=*/2, stats);

    mshr.enter(0, 100);
    mshr.enter(0, 200);
    EXPECT_TRUE(mshr.has(0, 100)); // Secondary miss would pass through.
    EXPECT_TRUE(mshr.full(0));
    EXPECT_FALSE(mshr.full(1)); // Registers are per core.

    bool retried = false;
    mshr.defer(0, [&] { retried = true; });
    EXPECT_EQ(stats.get("mshr.full_stalls"), 1u);
    eq.run();
    EXPECT_FALSE(retried); // Parked until a register frees.

    mshr.leave(0, 100);
    eq.run();
    EXPECT_TRUE(retried);
    EXPECT_EQ(mshr.inFlight(0), 1u);
}

// --- Protocol-level races --------------------------------------------

template <typename Protocol> struct RaceFixture : public ::testing::Test
{
    RaceFixture()
        : mesh(cfg, stats), nvm(cfg, eq, stats), llc(cfg, nvm, stats),
          proto(cfg, eq, mesh, llc, nvm, stats)
    {
    }

    /** Issue a store without draining the queue (for overlap tests). */
    void
    issueStore(CoreId c, Addr a, StoreId id, bool *done,
               Cycle *at = nullptr)
    {
        proto.store(c, a, id, [done, at](Cycle when) {
            *done = true;
            if (at)
                *at = when;
        });
    }

    StoreId
    load(CoreId c, Addr a)
    {
        StoreId value = invalidStore;
        bool done = false;
        proto.load(c, a, [&](Cycle, StoreId v) {
            value = v;
            done = true;
        });
        eq.runUntil([&] { return done; });
        EXPECT_TRUE(done);
        return value;
    }

    SystemConfig cfg;
    EventQueue eq;
    StatsRegistry stats;
    Mesh mesh;
    Nvm nvm;
    Llc llc;
    Protocol proto;
};

using Protocols = ::testing::Types<MesiProtocol, SlcProtocol>;

template <typename Protocol>
using RaceBothProtocols = RaceFixture<Protocol>;
TYPED_TEST_SUITE(RaceBothProtocols, Protocols);

TYPED_TEST(RaceBothProtocols, TwoCoresStoringSameLineSerialize)
{
    // Both stores are in flight before any event runs: the line
    // serializer must order them, and the decomposed message legs of
    // the first transaction must not leak state into the second.
    bool done0 = false, done1 = false;
    Cycle at0 = 0, at1 = 0;
    this->issueStore(0, kAddr, makeStoreId(0, 0), &done0, &at0);
    this->issueStore(1, kAddr, makeStoreId(1, 0), &done1, &at1);
    this->eq.runUntil([&] { return done0 && done1; });
    ASSERT_TRUE(done0 && done1);
    EXPECT_GE(at1, at0); // FIFO per line: issue order is completion order.
    // The second writer owns the line; a third core sees its value.
    EXPECT_EQ(this->load(2, kAddr), makeStoreId(1, 0));
}

TYPED_TEST(RaceBothProtocols, WriterRacesReaderOnOneLine)
{
    bool wrote = false, read = false;
    StoreId seen = invalidStore;
    this->issueStore(0, kAddr, makeStoreId(0, 7), &wrote);
    this->proto.load(1, kAddr, [&](Cycle, StoreId v) {
        seen = v;
        read = true;
    });
    this->eq.runUntil([&] { return wrote && read; });
    ASSERT_TRUE(wrote && read);
    // The load was queued behind the store, so it must observe it.
    EXPECT_EQ(seen, makeStoreId(0, 7));
}

TYPED_TEST(RaceBothProtocols, MshrFullStallsAndDrains)
{
    SystemConfig tiny = this->cfg;
    tiny.mshrEntries = 1;
    TypeParam proto(tiny, this->eq, this->mesh, this->llc, this->nvm,
                    this->stats);
    // Three primary misses from one core with a single register: the
    // second and third park in the MSHR FIFO and retry as it frees.
    unsigned done = 0;
    for (unsigned i = 0; i < 3; ++i)
        proto.load(0, kAddr + i * lineBytes, [&](Cycle, StoreId) {
            ++done;
        });
    this->eq.runUntil([&] { return done == 3; });
    ASSERT_EQ(done, 3u);
    EXPECT_GE(this->stats.get("mshr.full_stalls"), 2u);
}

TYPED_TEST(RaceBothProtocols, InvalidationRacesDirectoryEviction)
{
    // A tiny directory (one 8-way set per bank) under a same-bank
    // address storm: entry evictions run while an ownership-transfer
    // transaction for line A holds its entry open (pinned).  The
    // deferred transaction must complete with the right data and the
    // pinned entry must never be the forced victim.
    SystemConfig dirCfg = this->cfg;
    dirCfg.dirEntriesPerBank = 8;
    TypeParam proto(dirCfg, this->eq, this->mesh, this->llc, this->nvm,
                    this->stats);
    auto drain = [&](CoreId c, Addr a, StoreId id) {
        bool done = false;
        proto.store(c, a, id, [&](Cycle) { done = true; });
        this->eq.runUntil([&] { return done; });
        ASSERT_TRUE(done);
    };
    drain(0, kAddr, makeStoreId(0, 0)); // Core 0 owns A dirty.
    // Ownership transfer A: 0 -> 1, left in flight (not drained).
    bool xferDone = false;
    proto.store(1, kAddr, makeStoreId(1, 0),
                [&](Cycle) { xferDone = true; });
    // Same-bank storm from another core forces victim selection in
    // A's directory set while A's transaction is open.
    for (unsigned i = 1; i <= 10; ++i)
        drain(2, kAddr + i * 8 * lineBytes, makeStoreId(2, i));
    this->eq.runUntil([&] { return xferDone; });
    ASSERT_TRUE(xferDone);
    EXPECT_GT(this->stats.get("dir.evictions"), 0u);
    auto dload = [&](CoreId c, Addr a) {
        StoreId v = invalidStore;
        bool done = false;
        proto.load(c, a, [&](Cycle, StoreId val) {
            v = val;
            done = true;
        });
        this->eq.runUntil([&] { return done; });
        EXPECT_TRUE(done);
        return v;
    };
    // The transferred line carries the second writer's word.
    EXPECT_EQ(dload(3, kAddr), makeStoreId(1, 0));
    // And the storm's lines survived their evictions readably.
    EXPECT_EQ(dload(3, kAddr + 8 * lineBytes), makeStoreId(2, 1));
}

// --- Shard fence ------------------------------------------------------

TEST(ShardFence, SynchronousLlcPokePanicsUnderDataPlane)
{
    // With the data plane attached, bank busy-pipes belong to the pipe
    // shards.  A decomposed transaction body (executing as shard 0)
    // calling the synchronous Llc::access is exactly the cross-tile
    // poke the fence exists to catch — it must panic, not silently
    // diverge.
    SystemConfig cfg;
    StatsRegistry stats;
    EventQueue nvmEq;
    Nvm nvm(cfg, nvmEq, stats);
    Llc llc(cfg, nvm, stats);
    ShardedEventQueue kernel(1 + cfg.llcBanks, 1,
                             std::max<Cycle>(1, cfg.hopLatency));
    const unsigned meshNodes = cfg.meshCols * cfg.meshRows;
    llc.attachDataPlane(&kernel, /*firstShard=*/1,
                        /*firstFenceNode=*/meshNodes);

    ShardFenceMap map(meshNodes, 0);
    for (unsigned b = 0; b < cfg.llcBanks; ++b)
        map.setOwner(meshNodes + b, 1 + b);

    {
        ShardFenceScope scope(&map, /*shard=*/0);
        try {
            llc.access(kLine, 0);
            FAIL() << "cross-tile LLC poke did not panic";
        } catch (const std::logic_error &e) {
            EXPECT_NE(std::string(e.what()).find("shard fence"),
                      std::string::npos);
        }
    }
    // Disarmed (unit-test context): the same call passes.
    EXPECT_GT(llc.access(kLine, 0), 0u);
}

} // namespace
