/**
 * @file
 * Directed random tester for the MESI protocol, mirroring the SLC
 * one: random loads/stores over a contended address set with a
 * functional oracle on every load and structural invariants (SWMR: at
 * most one M/E copy, no stale S copies after a write) checked at
 * quiesce points.
 */

#include <gtest/gtest.h>

#include <map>

#include "coherence/mesi.hh"
#include "mem/llc.hh"
#include "mem/nvm.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace tsoper;

namespace
{

class MesiRandomTest : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    MesiRandomTest()
        : mesh(cfg, stats), nvm(cfg, eq, stats), llc(cfg, nvm, stats),
          mesi(cfg, eq, mesh, llc, nvm, stats)
    {
    }

    static constexpr unsigned kCores = 8;
    static constexpr unsigned kLines = 6;

    Addr
    addrOf(unsigned lineIdx, unsigned word)
    {
        return 0x5000'0000 + lineIdx * lineBytes + word * wordBytes;
    }

    void
    checkSwmr()
    {
        for (unsigned l = 0; l < kLines; ++l) {
            const LineAddr line = lineOf(addrOf(l, 0));
            unsigned modified = 0;
            for (CoreId c = 0; c < static_cast<CoreId>(kCores); ++c)
                modified += mesi.isModified(c, line) ? 1 : 0;
            EXPECT_LE(modified, 1u) << "two M copies of line " << line;
        }
    }

    SystemConfig cfg;
    EventQueue eq;
    StatsRegistry stats;
    Mesh mesh;
    Nvm nvm;
    Llc llc;
    MesiProtocol mesi;
};

} // namespace

TEST_P(MesiRandomTest, RandomTrafficKeepsCoherence)
{
    Rng rng(GetParam());
    std::map<Addr, StoreId> oracle;
    std::uint64_t seq[kCores] = {};
    unsigned outstanding = 0;

    for (unsigned step = 0; step < 2000; ++step) {
        const auto core = static_cast<CoreId>(rng.below(kCores));
        const Addr addr =
            addrOf(static_cast<unsigned>(rng.below(kLines)),
                   static_cast<unsigned>(rng.below(4)));
        if (rng.chance(0.55)) {
            ++outstanding;
            mesi.load(core, addr, [&, addr](Cycle, StoreId v) {
                const auto it = oracle.find(addr);
                const StoreId expect =
                    it == oracle.end() ? invalidStore : it->second;
                EXPECT_EQ(v, expect)
                    << "stale load at " << std::hex << addr;
                --outstanding;
            });
        } else {
            // Serialize stores against everything so the oracle's order
            // is the directory's order (see the SLC tester).
            eq.runUntil([&] { return outstanding == 0; });
            const StoreId id = makeStoreId(core, seq[core]++);
            ++outstanding;
            mesi.store(core, addr, id, [&](Cycle) { --outstanding; });
            oracle[addr] = id;
            eq.runUntil([&] { return outstanding == 0; });
        }
        if (step % 100 == 99) {
            eq.runUntil([&] { return outstanding == 0; });
            ASSERT_EQ(outstanding, 0u);
            checkSwmr();
        }
    }
    eq.runUntil([&] { return outstanding == 0; });
    checkSwmr();

    // Final readback: every word's last value is visible everywhere.
    for (const auto &[addr, id] : oracle) {
        for (CoreId c : {0, 3, 7}) {
            bool done = false;
            StoreId v = invalidStore;
            mesi.load(c, addr, [&](Cycle, StoreId val) {
                v = val;
                done = true;
            });
            eq.runUntil([&] { return done; });
            EXPECT_EQ(v, id) << "core " << c << " at " << std::hex
                             << addr;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MesiRandomTest,
                         ::testing::Values(4, 9, 16, 25, 36, 49),
                         [](const auto &info) {
                             return "seed" + std::to_string(info.param);
                         });
