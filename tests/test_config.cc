/** @file Configuration validation and preset tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/config.hh"

using namespace tsoper;

TEST(Config, DefaultsAreValid)
{
    SystemConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, PresetsMatchEngineRequirements)
{
    for (EngineKind e :
         {EngineKind::None, EngineKind::Tsoper, EngineKind::Stw,
          EngineKind::Bsp, EngineKind::BspSlc, EngineKind::BspSlcAgb,
          EngineKind::HwRp}) {
        const SystemConfig cfg = makeConfig(e);
        EXPECT_NO_THROW(cfg.validate()) << toString(e);
        EXPECT_EQ(cfg.engine, e);
    }
    EXPECT_EQ(makeConfig(EngineKind::Bsp).protocol, ProtocolKind::Mesi);
    EXPECT_EQ(makeConfig(EngineKind::Tsoper).protocol, ProtocolKind::Slc);
    EXPECT_TRUE(makeConfig(EngineKind::BspSlcAgb).agbUnbounded);
    EXPECT_FALSE(makeConfig(EngineKind::Tsoper).agbUnbounded);
}

TEST(Config, RejectsMismatchedProtocol)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.protocol = ProtocolKind::Mesi;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    SystemConfig bsp = makeConfig(EngineKind::Bsp);
    bsp.protocol = ProtocolKind::Slc;
    EXPECT_THROW(bsp.validate(), std::runtime_error);

    SystemConfig hwrp = makeConfig(EngineKind::HwRp);
    hwrp.protocol = ProtocolKind::Mesi;
    EXPECT_THROW(hwrp.validate(), std::runtime_error);
}

TEST(Config, RejectsOversizedAtomicGroups)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.agMaxLines = cfg.agbSliceLines * cfg.nvmRanks + 1;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
    // Unbounded AGBs accept anything.
    cfg.agbUnbounded = true;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, RejectsNonPowerOfTwoGeometry)
{
    SystemConfig cfg;
    cfg.privSets = 1000;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    SystemConfig cfg2;
    cfg2.llcBanks = 6;
    EXPECT_THROW(cfg2.validate(), std::runtime_error);
}

TEST(Config, RejectsTooSmallMesh)
{
    SystemConfig cfg;
    cfg.meshCols = 2;
    cfg.meshRows = 2;
    EXPECT_THROW(cfg.validate(), std::runtime_error);
}

TEST(Config, RejectsZeroCoresOrBuffers)
{
    SystemConfig cfg;
    cfg.numCores = 0;
    EXPECT_THROW(cfg.validate(), std::runtime_error);

    SystemConfig cfg2;
    cfg2.storeBufferEntries = 0;
    EXPECT_THROW(cfg2.validate(), std::runtime_error);
}

TEST(Config, AgbTotalLines)
{
    SystemConfig cfg;
    cfg.agbDistributed = true;
    EXPECT_EQ(cfg.agbTotalLines(), cfg.agbSliceLines * cfg.nvmRanks);
    cfg.agbDistributed = false;
    EXPECT_EQ(cfg.agbTotalLines(), cfg.agbSliceLines);
}

TEST(Config, DescribeMentionsKeyParameters)
{
    std::ostringstream os;
    makeConfig(EngineKind::Tsoper).describe(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("TSOPER"), std::string::npos);
    EXPECT_NE(out.find("SLC"), std::string::npos);
    EXPECT_NE(out.find("360/240"), std::string::npos);
    EXPECT_NE(out.find("80 cachelines"), std::string::npos);
    EXPECT_NE(out.find("10 KiB"), std::string::npos);
}

TEST(Config, ToStringCoversAllKinds)
{
    EXPECT_STREQ(toString(ProtocolKind::Mesi), "MESI");
    EXPECT_STREQ(toString(ProtocolKind::Slc), "SLC");
    EXPECT_STREQ(toString(EngineKind::Tsoper), "TSOPER");
    EXPECT_STREQ(toString(EngineKind::BspSlcAgb), "BSP+SLC+AGB");
}
