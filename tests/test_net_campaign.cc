/** @file End-to-end tests for the distributed campaign fabric:
 *  coordinator + in-process workers over loopback TCP.  The contract
 *  under test is the ledger invariant — every cell ends done exactly
 *  once, and the merged report is canonically byte-identical to a
 *  local thread-pool run — no matter which workers die, talk garbage,
 *  or straggle. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "campaign/coordinator.hh"
#include "campaign/journal.hh"
#include "campaign/report.hh"
#include "campaign/runner.hh"
#include "campaign/wire.hh"
#include "campaign/worker.hh"
#include "net/frame.hh"
#include "net/socket.hh"

using namespace tsoper;
using namespace tsoper::campaign;

namespace
{

std::vector<RunRequest>
makeCells(std::size_t n)
{
    std::vector<RunRequest> cells;
    for (std::size_t i = 0; i < n; ++i) {
        RunRequest r;
        r.id = "net/cell" + std::to_string(i);
        r.seed = i + 1;
        cells.push_back(r);
    }
    return cells;
}

/** Deterministic fake executor: the result is a pure function of the
 *  request, so local and distributed runs must agree byte-for-byte. */
RunResult
fakeRun(const RunRequest &r)
{
    RunResult res;
    res.status = RunStatus::Ok;
    res.cycles = r.seed * 1000;
    res.ops = r.seed * 10;
    res.stores = r.seed * 3;
    res.stats = Json::object().set("seed", r.seed);
    return res;
}

RunnerOptions
fakeRunner(unsigned jobs = 2)
{
    RunnerOptions opt;
    opt.jobs = jobs;
    opt.timeout = std::chrono::milliseconds(10'000);
    opt.retries = 0;
    opt.backoffBaseMs = 0;
    opt.cellFn = fakeRun;
    return opt;
}

CampaignReport
localReport(const std::vector<RunRequest> &cells)
{
    return runCampaign("netcamp", cells, fakeRunner());
}

std::string
canonical(const CampaignReport &report)
{
    return canonicalReportJson(report).dump(2);
}

WorkerOptions
makeWorker(std::uint16_t port, const std::string &name,
           unsigned jobs = 1)
{
    WorkerOptions opt;
    opt.port = port;
    opt.name = name;
    opt.jobs = jobs;
    opt.heartbeatMs = 200;
    opt.connectAttempts = 10;
    opt.backoffBaseMs = 20;
    opt.backoffMaxMs = 200;
    opt.runner = fakeRunner(jobs);
    return opt;
}

CoordinatorOptions
makeCoordinator()
{
    CoordinatorOptions opt;
    opt.runner = fakeRunner();
    opt.heartbeatTimeoutMs = 1'000;
    opt.stragglerMs = 0;  // off unless a test wants it
    opt.graceMs = 8'000;  // fallback is a hang safety net, not a path
    return opt;
}

/** Drive a coordinator on its own thread; workers run as callers
 *  choose; run() result is collected for the caller. */
struct CoordinatorRun
{
    explicit CoordinatorRun(CoordinatorOptions opt)
        : coord(std::move(opt))
    {
        std::string err;
        listened = coord.listen(&err);
        EXPECT_TRUE(listened) << err;
    }

    void
    start(const std::vector<RunRequest> &cells)
    {
        thread = std::thread([this, cells] {
            report = coord.run("netcamp", cells);
        });
    }

    void
    join()
    {
        if (thread.joinable())
            thread.join();
    }

    ~CoordinatorRun() { join(); }

    Coordinator coord;
    CampaignReport report;
    std::thread thread;
    bool listened = false;
};

} // namespace

// --- Happy path -------------------------------------------------------

TEST(NetCampaign, DistributedMatchesLocalCanonically)
{
    const auto cells = makeCells(6);
    const CampaignReport local = localReport(cells);

    CoordinatorRun run(makeCoordinator());
    ASSERT_TRUE(run.listened);
    run.start(cells);

    std::thread w1([&] {
        EXPECT_EQ(runWorker(makeWorker(run.coord.port(), "w1", 2)),
                  kExitWorkerOk);
    });
    std::thread w2([&] {
        EXPECT_EQ(runWorker(makeWorker(run.coord.port(), "w2", 2)),
                  kExitWorkerOk);
    });
    w1.join();
    w2.join();
    run.join();

    ASSERT_EQ(run.report.cells.size(), cells.size());
    EXPECT_TRUE(run.report.allOk());
    EXPECT_FALSE(run.coord.stats().usedLocalFallback);
    EXPECT_EQ(run.coord.stats().workersSeen, 2u);
    EXPECT_EQ(canonical(run.report), canonical(local));
}

// --- Failover ---------------------------------------------------------

TEST(NetCampaign, DeadWorkerLeasesFailOverToSurvivor)
{
    const auto cells = makeCells(8);
    const CampaignReport local = localReport(cells);

    CoordinatorRun run(makeCoordinator());
    ASSERT_TRUE(run.listened);
    run.start(cells);

    // One worker hard-exits after its first result — the in-process
    // stand-in for SIGKILL mid-campaign (no goodbye, just EOF).
    std::thread dying([&] {
        WorkerOptions opt = makeWorker(run.coord.port(), "dying");
        opt.dieAfterResults = 1;
        EXPECT_EQ(runWorker(opt), kExitDiedOnPurpose);
    });
    std::thread survivor([&] {
        EXPECT_EQ(runWorker(makeWorker(run.coord.port(), "survivor")),
                  kExitWorkerOk);
    });
    dying.join();
    survivor.join();
    run.join();

    // Every cell done exactly once, report indistinguishable from an
    // uneventful local run.
    ASSERT_EQ(run.report.cells.size(), cells.size());
    EXPECT_TRUE(run.report.allOk());
    EXPECT_GE(run.coord.stats().deadWorkers, 1u);
    EXPECT_EQ(canonical(run.report), canonical(local));
}

TEST(NetCampaign, StragglerCellIsReleasedToIdleWorker)
{
    const auto cells = makeCells(4);

    CoordinatorOptions copt = makeCoordinator();
    copt.stragglerMs = 100;
    // The slow cell stalls one worker; once the queue drains the
    // coordinator must duplicate its lease onto the idle worker.
    copt.runner.cellFn = [](const RunRequest &r) {
        if (r.id == "net/cell0")
            std::this_thread::sleep_for(
                std::chrono::milliseconds(900));
        return fakeRun(r);
    };
    CoordinatorRun run(copt);
    ASSERT_TRUE(run.listened);
    run.start(cells);

    const auto workerFn = [&](const char *name) {
        WorkerOptions opt = makeWorker(run.coord.port(), name);
        opt.runner.cellFn = copt.runner.cellFn;
        runWorker(opt);
    };
    std::thread w1(workerFn, "w1");
    std::thread w2(workerFn, "w2");
    w1.join();
    w2.join();
    run.join();

    ASSERT_EQ(run.report.cells.size(), cells.size());
    EXPECT_TRUE(run.report.allOk());
    EXPECT_GE(run.coord.stats().stragglerLeases, 1u);
}

// --- Hostile peers ----------------------------------------------------

TEST(NetCampaign, GarbagePeerIsDroppedAndCampaignCompletes)
{
    const auto cells = makeCells(4);
    const CampaignReport local = localReport(cells);

    CoordinatorRun run(makeCoordinator());
    ASSERT_TRUE(run.listened);
    run.start(cells);

    // A peer that speaks raw garbage: an oversized length prefix must
    // flip the decoder into its sticky error and cost the peer the
    // connection — nothing else.
    std::string connErr;
    net::Fd garbage = net::connectTcp("127.0.0.1", run.coord.port(),
                                      2'000, &connErr);
    ASSERT_TRUE(garbage.valid()) << connErr;
    const char junk[] = "\xff\xff\xff\xff garbage bytes";
    ASSERT_GT(::write(garbage.get(), junk, sizeof(junk) - 1), 0);

    // Give the coordinator a tick to process the violation while the
    // real worker does the actual campaign.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    std::thread w1([&] {
        EXPECT_EQ(runWorker(makeWorker(run.coord.port(), "w1", 2)),
                  kExitWorkerOk);
    });
    w1.join();
    run.join();
    garbage.reset();

    ASSERT_EQ(run.report.cells.size(), cells.size());
    EXPECT_TRUE(run.report.allOk());
    EXPECT_GE(run.coord.stats().droppedPeers, 1u);
    EXPECT_EQ(canonical(run.report), canonical(local));
}

TEST(NetCampaign, ProtoMismatchAnsweredWithGoodbye)
{
    const auto cells = makeCells(2);

    CoordinatorRun run(makeCoordinator());
    ASSERT_TRUE(run.listened);
    run.start(cells);

    // Speak the framing correctly but claim a future protocol: the
    // coordinator must answer goodbye and hang up, not grant leases.
    std::string connErr;
    net::Fd fd = net::connectTcp("127.0.0.1", run.coord.port(), 2'000,
                                 &connErr);
    ASSERT_TRUE(fd.valid()) << connErr;
    Json hello = wire::hello("time-traveller", 1);
    hello.set("proto", 99);
    const std::string frame = net::encodeFrame(hello.dump());
    ASSERT_EQ(::write(fd.get(), frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));

    net::FrameDecoder dec;
    std::string goodbyeType;
    const std::int64_t deadline = net::monotonicMs() + 5'000;
    while (goodbyeType.empty() && net::monotonicMs() < deadline) {
        struct pollfd pfd{fd.get(), POLLIN, 0};
        if (::poll(&pfd, 1, 100) <= 0)
            continue;
        char buf[512];
        const ssize_t got = ::read(fd.get(), buf, sizeof(buf));
        if (got <= 0)
            break;
        dec.feed(buf, static_cast<std::size_t>(got));
        std::string payload;
        while (dec.next(&payload) == net::FrameDecoder::Status::Frame) {
            Json msg;
            std::string type;
            ASSERT_TRUE(wire::parseMessage(payload, &msg, &type));
            goodbyeType = type;
        }
    }
    EXPECT_EQ(goodbyeType, "goodbye");
    fd.reset();

    // The campaign itself still completes on a conforming worker.
    std::thread w1([&] {
        runWorker(makeWorker(run.coord.port(), "w1", 2));
    });
    w1.join();
    run.join();
    ASSERT_EQ(run.report.cells.size(), cells.size());
    EXPECT_TRUE(run.report.allOk());
}

// --- Degradation ------------------------------------------------------

TEST(NetCampaign, NoWorkersDegradesToLocalRunner)
{
    const auto cells = makeCells(3);
    const CampaignReport local = localReport(cells);

    CoordinatorOptions copt = makeCoordinator();
    copt.graceMs = 150;
    CoordinatorRun run(copt);
    ASSERT_TRUE(run.listened);
    run.start(cells);
    run.join();

    ASSERT_EQ(run.report.cells.size(), cells.size());
    EXPECT_TRUE(run.report.allOk());
    EXPECT_TRUE(run.coord.stats().usedLocalFallback);
    EXPECT_EQ(canonical(run.report), canonical(local));
}

// --- Resume across coordinator restarts -------------------------------

TEST(NetCampaign, ResumeSkipsJournaledCellsAcrossRestart)
{
    const auto cells = makeCells(6);
    const CampaignReport local = localReport(cells);
    const std::string path =
        ::testing::TempDir() + "tsoper_net_resume.jsonl";
    std::string err;

    // First "coordinator incarnation": journal half the campaign,
    // then die (simulated by just closing the journal).
    {
        CampaignJournal journal;
        ASSERT_TRUE(journal.open(path, "netcamp", /*truncate=*/true,
                                 &err))
            << err;
        RunnerOptions half = fakeRunner();
        half.journal = &journal;
        const std::vector<RunRequest> firstHalf(cells.begin(),
                                                cells.begin() + 3);
        runCampaign("netcamp", firstHalf, half);
    }

    JournalIndex index;
    std::string warn;
    ASSERT_TRUE(loadJournal(path, &index, &err, &warn)) << err;
    EXPECT_TRUE(warn.empty()) << warn;
    ASSERT_EQ(index.cells.size(), 3u);

    // Restarted coordinator: journaled cells are done before any
    // lease goes out; the worker only sees the other half.
    CoordinatorOptions copt = makeCoordinator();
    copt.runner.resumeFrom = &index;
    CoordinatorRun run(copt);
    ASSERT_TRUE(run.listened);
    run.start(cells);
    std::thread w1([&] {
        EXPECT_EQ(runWorker(makeWorker(run.coord.port(), "w1", 2)),
                  kExitWorkerOk);
    });
    w1.join();
    run.join();

    ASSERT_EQ(run.report.cells.size(), cells.size());
    EXPECT_TRUE(run.report.allOk());
    EXPECT_EQ(run.report.resumedCount(), 3u);
    EXPECT_LE(run.coord.stats().leasesGranted, 3u);
    EXPECT_EQ(canonical(run.report), canonical(local));
    std::remove(path.c_str());
}

// --- Journal robustness (satellite: torn-tail tolerance) --------------

namespace
{

CellReport
doneCell(const std::string &id)
{
    CellReport cell;
    cell.request.id = id;
    cell.result = fakeRun(cell.request);
    return cell;
}

} // namespace

TEST(NetCampaign, TornFinalJournalLineToleratedAtEveryByteOffset)
{
    const std::string path =
        ::testing::TempDir() + "tsoper_net_torn.jsonl";
    std::string err;

    {
        CampaignJournal journal;
        ASSERT_TRUE(journal.open(path, "torn", /*truncate=*/true,
                                 &err))
            << err;
        journal.append(doneCell("keep0"));
        journal.append(doneCell("keep1"));
        journal.append(doneCell("torn"));
    }

    std::string full;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        full = buf.str();
    }
    // Start of the final record: the byte after the second-to-last
    // newline (the file ends with one).
    ASSERT_FALSE(full.empty());
    ASSERT_EQ(full.back(), '\n');
    const std::size_t lastStart =
        full.rfind('\n', full.size() - 2) + 1;
    const std::size_t lastLen = full.size() - lastStart;
    ASSERT_GT(lastLen, 2u);

    // A writer can die after any byte of the final append.  Whatever
    // the cut, the journal must load and keep the intact prefix.  Two
    // cuts are special: +0 ends cleanly on the previous newline (no
    // warning, nothing torn) and +lastLen-1 severs only the trailing
    // newline, leaving a complete third record.
    for (std::size_t cut = 0; cut < lastLen; ++cut) {
        {
            std::ofstream out(path,
                              std::ios::binary | std::ios::trunc);
            out.write(full.data(), static_cast<std::streamsize>(
                                       lastStart + cut));
        }
        JournalIndex index;
        std::string warn;
        ASSERT_TRUE(loadJournal(path, &index, &err, &warn))
            << "cut at +" << cut << ": " << err;
        EXPECT_TRUE(index.cells.count("keep0"));
        EXPECT_TRUE(index.cells.count("keep1"));
        if (cut == 0) {
            EXPECT_EQ(index.cells.size(), 2u);
            EXPECT_TRUE(warn.empty()) << warn; // clean end-of-file
        } else if (cut == lastLen - 1) {
            EXPECT_EQ(index.cells.size(), 3u); // record is whole
            EXPECT_TRUE(warn.empty()) << warn;
        } else {
            EXPECT_EQ(index.cells.size(), 2u) << "cut at +" << cut;
            EXPECT_NE(warn.find("torn"), std::string::npos)
                << "cut at +" << cut << ": no warning";
        }
    }

    // The untruncated journal still loads all three, silently.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(full.data(),
                  static_cast<std::streamsize>(full.size()));
    }
    JournalIndex index;
    std::string warn;
    ASSERT_TRUE(loadJournal(path, &index, &err, &warn)) << err;
    EXPECT_TRUE(warn.empty()) << warn;
    EXPECT_EQ(index.cells.size(), 3u);
    std::remove(path.c_str());
}

TEST(NetCampaign, AuxRecordsSkippedOnLoadAndRequireEventTag)
{
    const std::string path =
        ::testing::TempDir() + "tsoper_net_aux.jsonl";
    std::string err;

    CampaignJournal journal;
    ASSERT_TRUE(journal.open(path, "aux", /*truncate=*/true, &err))
        << err;
    journal.appendAux(
        Json::object().set("event", "worker").set("name", "w1"));
    journal.append(doneCell("real"));
    journal.appendAux(
        Json::object().set("event", "lease").set("cell", "real"));
    // No "event" member: refused, so it cannot masquerade as a cell
    // record in the resume index.
    journal.appendAux(Json::object().set("id", "impostor"));
    journal.close();

    JournalIndex index;
    std::string warn;
    ASSERT_TRUE(loadJournal(path, &index, &err, &warn)) << err;
    EXPECT_TRUE(warn.empty()) << warn;
    EXPECT_EQ(index.cells.size(), 1u);
    EXPECT_TRUE(index.cells.count("real"));
    EXPECT_FALSE(index.cells.count("impostor"));
    std::remove(path.c_str());
}
