/** @file Tests for the progress watchdog: livelock detection at the
 *  event-kernel level, the guarded System run, and the Hung verdict
 *  surfacing through runOne. */

#include <gtest/gtest.h>

#include <string>

#include "campaign/run_request.hh"
#include "sim/event_queue.hh"
#include "sim/watchdog.hh"

using namespace tsoper;

namespace
{

WatchdogConfig
tinyConfig()
{
    WatchdogConfig cfg;
    cfg.checkEveryEvents = 50;
    cfg.stallChecks = 3;
    cfg.frozenChecks = 2;
    return cfg;
}

} // namespace

// --- ProgressWatchdog -------------------------------------------------

TEST(ProgressWatchdog, FrozenTimeTripsAfterConfiguredChunks)
{
    ProgressWatchdog dog(tinyConfig());
    EXPECT_EQ(dog.check(0, 5), "");  // priming sample
    EXPECT_EQ(dog.check(1, 5), "");  // frozen x1 (progress moves)
    const std::string reason = dog.check(2, 5); // frozen x2
    EXPECT_NE(reason.find("frozen"), std::string::npos) << reason;
    EXPECT_NE(reason.find("cycle 5"), std::string::npos) << reason;
}

TEST(ProgressWatchdog, StalledSignatureTripsAndAdvanceResets)
{
    ProgressWatchdog dog(tinyConfig());
    EXPECT_EQ(dog.check(7, 10), "");
    EXPECT_EQ(dog.check(7, 20), ""); // stalled x1
    EXPECT_EQ(dog.check(7, 30), ""); // stalled x2
    const std::string reason = dog.check(7, 40); // stalled x3
    EXPECT_NE(reason.find("no forward progress"), std::string::npos)
        << reason;

    dog.reset();
    EXPECT_EQ(dog.check(7, 50), "");
    EXPECT_EQ(dog.check(7, 60), "");
    EXPECT_EQ(dog.check(8, 70), ""); // progress moved: counter resets
    EXPECT_EQ(dog.check(8, 80), "");
    EXPECT_EQ(dog.check(8, 90), "");
    EXPECT_NE(dog.check(8, 100), "");
}

// --- EventQueue::runFor -----------------------------------------------

TEST(EventQueue, RunForStopsAtEventBudget)
{
    EventQueue eq;
    // Self-perpetuating activity: each event schedules the next.
    std::function<void()> tick = [&] { eq.scheduleIn(1, [&] { tick(); }); };
    eq.scheduleIn(1, [&] { tick(); });

    eq.runFor([] { return false; }, maxCycle, 10);
    EXPECT_EQ(eq.executed(), 10u);
    EXPECT_FALSE(eq.empty());

    // The predicate still takes precedence over the budget.
    eq.runFor([&] { return eq.executed() >= 15; }, maxCycle, 1000);
    EXPECT_EQ(eq.executed(), 15u);
}

// --- runGuarded -------------------------------------------------------

TEST(RunGuarded, ZeroDelayLivelockThrowsFrozenTime)
{
    EventQueue eq;
    // Two FSMs NACKing each other in the same cycle, forever.
    std::function<void()> spin = [&] { eq.scheduleIn(0, [&] { spin(); }); };
    eq.scheduleIn(1, [&] { spin(); });

    try {
        runGuarded(eq, [] { return false; }, maxCycle, tinyConfig(),
                   [] { return std::uint64_t{0}; },
                   [] { return std::string("dump-of-state"); }, "test");
        FAIL() << "expected HungError";
    } catch (const HungError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("hung during test"), std::string::npos);
        EXPECT_NE(what.find("frozen"), std::string::npos) << what;
        EXPECT_NE(what.find("dump-of-state"), std::string::npos);
    }
}

TEST(RunGuarded, FlatSignatureThrowsStall)
{
    EventQueue eq;
    std::function<void()> tick = [&] { eq.scheduleIn(1, [&] { tick(); }); };
    eq.scheduleIn(1, [&] { tick(); });

    // Time advances, events run, but the signature never moves.
    EXPECT_THROW(runGuarded(eq, [] { return false; }, maxCycle,
                            tinyConfig(),
                            [] { return std::uint64_t{42}; }, nullptr,
                            "test"),
                 HungError);
}

TEST(RunGuarded, DrainedQueueWithPredFalseIsDeadlock)
{
    EventQueue eq;
    eq.scheduleIn(1, [] {});
    try {
        runGuarded(eq, [] { return false; }, maxCycle, tinyConfig(),
                   nullptr, nullptr, "drain");
        FAIL() << "expected HungError";
    } catch (const HungError &e) {
        EXPECT_NE(std::string(e.what()).find("deadlock"),
                  std::string::npos)
            << e.what();
    }
}

TEST(RunGuarded, CycleBudgetBlownThrows)
{
    EventQueue eq;
    std::function<void()> tick = [&] {
        eq.scheduleIn(1000, [&] { tick(); });
    };
    eq.scheduleIn(1, [&] { tick(); });

    try {
        runGuarded(eq, [] { return false; }, /*maxCycles=*/5000,
                   tinyConfig(), nullptr, nullptr, "test");
        FAIL() << "expected HungError";
    } catch (const HungError &e) {
        EXPECT_NE(std::string(e.what()).find("budget"),
                  std::string::npos)
            << e.what();
    }
}

TEST(RunGuarded, ReturnsNormallyWhenPredBecomesTrue)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 500)
            eq.scheduleIn(1, [&] { tick(); });
    };
    eq.scheduleIn(1, [&] { tick(); });

    EXPECT_NO_THROW(runGuarded(eq, [&] { return count >= 200; },
                               maxCycle, tinyConfig(),
                               [&] { return std::uint64_t(count); },
                               nullptr, "test"));
    EXPECT_GE(count, 200);
}

// --- System + runOne integration --------------------------------------

TEST(WatchdogSystem, BudgetBlownRunSurfacesAsHungWithStateDump)
{
    using namespace tsoper::campaign;

    RunRequest r;
    r.id = "hung-budget";
    r.bench = "dedup";
    r.scale = 0.05;
    r.maxCycles = 50; // no workload finishes this fast

    const RunResult res = runOne(r);
    EXPECT_EQ(res.status, RunStatus::Hung) << res.detail;
    EXPECT_NE(res.detail.find("budget"), std::string::npos)
        << res.detail;
    // The state dump rides along in the detail for post-mortems.
    EXPECT_NE(res.detail.find("machine state:"), std::string::npos)
        << res.detail;
    EXPECT_NE(res.detail.find("core 0:"), std::string::npos);
}

TEST(WatchdogSystem, HealthyRunIsUnaffected)
{
    using namespace tsoper::campaign;

    RunRequest r;
    r.id = "healthy";
    r.bench = "dedup";
    r.scale = 0.05;

    // Aggressive watchdog settings are exercised via the config the
    // request resolves to: even a tiny check window must not misfire
    // on a legal run.
    const RunResult res = runOne(r);
    EXPECT_EQ(res.status, RunStatus::Ok) << res.detail;
    EXPECT_GT(res.cycles, 0u);
}
