/**
 * @file
 * Engine-behaviour tests: the mechanism-level counters and state
 * transitions that differentiate the paper's systems — AG freeze
 * reasons and store blocking (TSOPER), world stalls (STW), exclusion
 * windows and epoch breaks (BSP), SFR bookkeeping and WPQ durability
 * (HW-RP), and §II-D markers.
 */

#include <gtest/gtest.h>

#include "core/crash_checker.hh"
#include "core/system.hh"
#include "workload/generators.hh"
#include "workload/trace.hh"

using namespace tsoper;

namespace
{

/** Two cores ping-ponging writes on one line, with compute gaps. */
Workload
pingPong(unsigned cores, unsigned rounds, Addr addr = 0x5000'0000)
{
    Workload w;
    w.name = "pingpong";
    w.perCore.resize(cores);
    for (unsigned r = 0; r < rounds; ++r) {
        for (unsigned c = 0; c < 2 && c < cores; ++c) {
            w.perCore[c].push_back({OpType::Store, addr + 8 * c, 0});
            w.perCore[c].push_back({OpType::Load, addr, 0});
            w.perCore[c].push_back({OpType::Compute, 0, 20});
        }
    }
    return w;
}

/** One core writing n distinct lines, no sharing. */
Workload
soloWriter(unsigned cores, unsigned lines)
{
    Workload w;
    w.name = "solo";
    w.perCore.resize(cores);
    for (unsigned i = 0; i < lines; ++i) {
        w.perCore[0].push_back(
            {OpType::Store, layout::privateAddr(0, i * 8), 0});
    }
    return w;
}

} // namespace

TEST(TsoperEngineTest, RemoteWriteFreezesAndPersists)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    const Workload w = pingPong(cfg.numCores, 20);
    System sys(cfg, w);
    sys.run();
    EXPECT_GT(sys.stats().get("ag.freeze_remote"), 0u);
    EXPECT_GT(sys.stats().get("ag.persisted"), 0u);
    EXPECT_TRUE(sys.engine().quiescent());
}

TEST(TsoperEngineTest, SizeCapFreezesAt80Lines)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    const Workload w = soloWriter(cfg.numCores, 200);
    System sys(cfg, w);
    sys.run();
    // 200 distinct lines with an 80-line cap: at least two cap freezes.
    EXPECT_GE(sys.stats().get("ag.freeze_size_cap"), 2u);
    const Histogram &h = sys.stats().histogram("ag.size");
    EXPECT_EQ(h.max(), cfg.agMaxLines);
}

TEST(TsoperEngineTest, SmallCapMakesSmallGroups)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.agMaxLines = 8;
    const Workload w = soloWriter(cfg.numCores, 100);
    System sys(cfg, w);
    sys.run();
    EXPECT_LE(sys.stats().histogram("ag.size").max(), 8u);
    EXPECT_GE(sys.stats().get("ag.persisted"), 100u / 8);
}

TEST(TsoperEngineTest, MarkerFreezesOpenGroup)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    Workload w;
    w.perCore.resize(cfg.numCores);
    // Three stores, marker, three stores: two AGs of exactly 3 lines.
    for (unsigned half = 0; half < 2; ++half) {
        for (unsigned i = 0; i < 3; ++i) {
            w.perCore[0].push_back(
                {OpType::Store,
                 layout::privateAddr(0, (half * 3 + i) * 8), 0});
        }
        if (half == 0)
            w.perCore[0].push_back({OpType::Marker, 0, 0});
    }
    System sys(cfg, w);
    sys.run();
    EXPECT_EQ(sys.stats().get("ag.persisted"), 2u);
    EXPECT_EQ(sys.stats().histogram("ag.size").max(), 3u);
}

TEST(TsoperEngineTest, StoreToFrozenLineBlocks)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    Workload w;
    w.perCore.resize(cfg.numCores);
    const Addr a = 0x5000'0000;
    // Core 0 writes A repeatedly; core 1 reads A between writes,
    // freezing core 0's group — forcing frozen-line store blocks.
    for (unsigned r = 0; r < 30; ++r) {
        w.perCore[0].push_back({OpType::Store, a, 0});
        w.perCore[0].push_back({OpType::Compute, 0, 5});
        w.perCore[1].push_back({OpType::Load, a, 0});
        w.perCore[1].push_back({OpType::Compute, 0, 5});
    }
    System sys(cfg, w);
    sys.run();
    EXPECT_GT(sys.stats().get("ag.store_blocks"), 0u);
}

TEST(TsoperEngineTest, LlcPinnedWhileAgbHoldsLine)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    const Workload w = pingPong(cfg.numCores, 10);
    System sys(cfg, w);
    sys.run();
    // After the drain every pin must have been released.
    EXPECT_FALSE(sys.llc().isPinned(lineOf(0x5000'0000)));
}

TEST(StwEngineTest, StallsTheWorldOnExposure)
{
    SystemConfig cfg = makeConfig(EngineKind::Stw);
    const Workload w = pingPong(cfg.numCores, 20);
    System sys(cfg, w);
    sys.run();
    EXPECT_GT(sys.stats().get("stw.stalls"), 0u);
    EXPECT_GT(sys.stats().get("stw.stall_cycles"), 0u);
}

TEST(StwEngineTest, NoSharingNoRemoteFreezeStalls)
{
    SystemConfig cfg = makeConfig(EngineKind::Stw);
    const Workload w = soloWriter(cfg.numCores, 20); // Under the cap.
    System sys(cfg, w);
    sys.run();
    EXPECT_EQ(sys.stats().get("ag.freeze_remote"), 0u);
}

TEST(BspEngineTest, ConflictsBreakEpochs)
{
    SystemConfig cfg = makeConfig(EngineKind::Bsp);
    const Workload w = pingPong(cfg.numCores, 20);
    System sys(cfg, w);
    sys.run();
    EXPECT_GT(sys.stats().get("bsp.epoch_breaks"), 0u);
    EXPECT_GT(sys.stats().get("bsp.epochs_closed"), 0u);
}

TEST(BspEngineTest, ExclusionWindowsAccrueOnConflicts)
{
    SystemConfig cfg = makeConfig(EngineKind::Bsp);
    const Workload w = pingPong(cfg.numCores, 60);
    System sys(cfg, w);
    sys.run();
    // Ping-ponging one line re-persists it: LLC exclusion must show up.
    EXPECT_GT(sys.stats().get("bsp.llc_exclusion_cycles"), 0u);
}

TEST(BspEngineTest, StoreCapClosesEpochs)
{
    SystemConfig cfg = makeConfig(EngineKind::Bsp);
    cfg.bspEpochStores = 50;
    const Workload w = soloWriter(cfg.numCores, 200);
    System sys(cfg, w);
    sys.run();
    EXPECT_GE(sys.stats().get("bsp.epochs_closed"), 4u);
}

TEST(BspEngineTest, SlcVariantHasNoL1Exclusion)
{
    SystemConfig cfg = makeConfig(EngineKind::BspSlc);
    const Workload w = pingPong(cfg.numCores, 40);
    System sys(cfg, w);
    sys.run();
    EXPECT_EQ(sys.stats().get("bsp.l1_exclusion_cycles"), 0u);
}

TEST(BspEngineTest, AgbVariantSkipsLlcExclusion)
{
    SystemConfig cfg = makeConfig(EngineKind::BspSlcAgb);
    const Workload w = pingPong(cfg.numCores, 40);
    System sys(cfg, w);
    sys.run();
    EXPECT_EQ(sys.stats().get("bsp.llc_exclusion_cycles"), 0u);
    EXPECT_GT(sys.stats().get("agb.lines_buffered"), 0u);
}

TEST(HwRpEngineTest, SfrsTrackSyncOperations)
{
    SystemConfig cfg = makeConfig(EngineKind::HwRp);
    const Workload w =
        generateByName("fluidanimate", cfg.numCores, 1, 0.05);
    System sys(cfg, w);
    sys.run();
    // Every lock acquire/release/barrier is an SFR boundary.
    const auto syncs = sys.stats().get("cpu.lock_acquires") * 2 +
                       sys.stats().get("cpu.barriers");
    EXPECT_GE(sys.stats().get("hwrp.sfrs"), syncs);
}

TEST(HwRpEngineTest, EvictionsAreSpontaneousPersists)
{
    SystemConfig cfg = makeConfig(EngineKind::HwRp);
    cfg.privSets = 16; // Force evictions.
    const Workload w =
        generateByName("streamcluster", cfg.numCores, 1, 0.05);
    System sys(cfg, w);
    sys.run();
    EXPECT_GT(sys.stats().get("hwrp.spontaneous_persists"), 0u);
}

TEST(HwRpEngineTest, SupersededVersionsSkipPersist)
{
    SystemConfig cfg = makeConfig(EngineKind::HwRp);
    cfg.recordStores = true;
    // Heavy same-line write sharing with a final barrier.
    Workload w;
    w.perCore.resize(cfg.numCores);
    for (unsigned r = 0; r < 20; ++r) {
        for (unsigned c = 0; c < cfg.numCores; ++c)
            w.perCore[c].push_back({OpType::Store, 0x5000'0000, 0});
    }
    for (unsigned c = 0; c < cfg.numCores; ++c)
        w.perCore[c].push_back({OpType::Barrier, layout::barrierAddr(0),
                                0});
    w.numBarriers = 1;
    System sys(cfg, w);
    sys.run();
    // Far fewer persists than stores: superseded versions dropped.
    EXPECT_LT(sys.stats().get("traffic.persist_wb"),
              sys.stats().get("cpu.stores"));
}

TEST(EngineDrain, AllEnginesQuiesce)
{
    for (EngineKind e :
         {EngineKind::Tsoper, EngineKind::Stw, EngineKind::Bsp,
          EngineKind::BspSlc, EngineKind::BspSlcAgb, EngineKind::HwRp}) {
        SystemConfig cfg = makeConfig(e);
        const Workload w = pingPong(cfg.numCores, 15);
        System sys(cfg, w);
        sys.run();
        EXPECT_TRUE(sys.engine().quiescent()) << toString(e);
        // All persist engines eventually write everything to NVM.
        EXPECT_GT(sys.stats().get("nvm.writes_done"), 0u) << toString(e);
    }
}

TEST(EngineDrain, DurableStateIdenticalAcrossStrictEngines)
{
    // After a drained run, the durable image must be the same final
    // memory state for every strict engine.
    const Workload w = pingPong(8, 25);
    std::unordered_map<LineAddr, LineWords> reference;
    bool first = true;
    for (EngineKind e :
         {EngineKind::Tsoper, EngineKind::Stw, EngineKind::Bsp,
          EngineKind::BspSlc, EngineKind::BspSlcAgb}) {
        SystemConfig cfg = makeConfig(e);
        System sys(cfg, w);
        sys.run();
        auto img = sys.durableImage();
        // Compare only the workload's data line.
        const LineAddr line = lineOf(0x5000'0000);
        ASSERT_TRUE(img.count(line)) << toString(e);
        if (first) {
            reference = img;
            first = false;
        } else {
            EXPECT_EQ(img.at(line), reference.at(line)) << toString(e);
        }
    }
}
