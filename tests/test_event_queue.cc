/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace tsoper;

TEST(EventQueue, StartsEmptyAtCycleZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutesInCycleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameCycleTiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(4, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, ZeroDelayEventRunsAfterCurrentEvent)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(7, [&] {
        order.push_back(1);
        eq.scheduleIn(0, [&] { order.push_back(2); });
        order.push_back(3); // Still part of the first event.
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, RunStopsAtMaxCycle)
{
    EventQueue eq;
    bool late = false;
    eq.schedule(10, [] {});
    eq.schedule(100, [&] { late = true; });
    eq.run(50);
    EXPECT_FALSE(late);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_TRUE(late);
}

TEST(EventQueue, RunUntilPredicate)
{
    EventQueue eq;
    int count = 0;
    for (Cycle t = 1; t <= 100; ++t)
        eq.schedule(t, [&] { ++count; });
    eq.runUntil([&] { return count >= 10; });
    EXPECT_EQ(count, 10);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_THROW(eq.schedule(5, [] {}), std::logic_error);
    });
    eq.run();
}

TEST(EventQueue, ExecutedCountsEvents)
{
    EventQueue eq;
    for (int i = 0; i < 25; ++i)
        eq.schedule(static_cast<Cycle>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 25u);
}
