/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <functional>
#include <vector>

#include "sim/event_queue.hh"

using namespace tsoper;

TEST(EventQueue, StartsEmptyAtCycleZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, ExecutesInCycleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameCycleTiesBreakByInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(4, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, ZeroDelayEventRunsAfterCurrentEvent)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(7, [&] {
        order.push_back(1);
        eq.scheduleIn(0, [&] { order.push_back(2); });
        order.push_back(3); // Still part of the first event.
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, RunStopsAtMaxCycle)
{
    EventQueue eq;
    bool late = false;
    eq.schedule(10, [] {});
    eq.schedule(100, [&] { late = true; });
    eq.run(50);
    EXPECT_FALSE(late);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_TRUE(late);
}

TEST(EventQueue, RunUntilPredicate)
{
    EventQueue eq;
    int count = 0;
    for (Cycle t = 1; t <= 100; ++t)
        eq.schedule(t, [&] { ++count; });
    eq.runUntil([&] { return count >= 10; });
    EXPECT_EQ(count, 10);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_THROW(eq.schedule(5, [] {}), std::logic_error);
    });
    eq.run();
}

TEST(EventQueue, ExecutedCountsEvents)
{
    EventQueue eq;
    for (int i = 0; i < 25; ++i)
        eq.schedule(static_cast<Cycle>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 25u);
}

// --------------------------------------------------------------------
// Calendar-queue specifics: the bucket wheel, the far-future heap and
// the migration between them must preserve the (cycle, seq) order the
// whole simulation's determinism rests on.
// --------------------------------------------------------------------

TEST(EventQueue, TieOrderAcrossWheelWrapAndMigration)
{
    // One target cycle beyond the wheel horizon, fed from three
    // vantage points: scheduled while far (heap), scheduled while
    // still far after time advanced (heap, later seq), and scheduled
    // once the wheel has wrapped past the horizon and covers the
    // target (direct bucket append).  Execution must interleave them
    // purely by insertion sequence.
    EventQueue eq;
    const Cycle target = 3 * EventQueue::wheelSize + 7;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(target, [&order, i] { order.push_back(i); });
    eq.schedule(EventQueue::wheelSize / 2, [&] {
        for (int i = 5; i < 10; ++i)
            eq.schedule(target, [&order, i] { order.push_back(i); });
    });
    eq.schedule(target - 100, [&] {
        // Now the wheel window [target-100, target-100+wheelSize)
        // covers the target: these land in the bucket directly,
        // behind the migrated heap events.
        for (int i = 10; i < 15; ++i)
            eq.schedule(target, [&order, i] { order.push_back(i); });
    });
    eq.run();
    ASSERT_EQ(order.size(), 15u);
    for (int i = 0; i < 15; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i) << "pos " << i;
    EXPECT_EQ(eq.now(), target);
}

TEST(EventQueue, ZeroDelaySelfRescheduling)
{
    // A waiter that re-arms itself with scheduleIn(0) must run all its
    // turns at the same cycle, interleaved behind other same-cycle
    // arrivals in insertion order.
    EventQueue eq;
    std::vector<int> order;
    int turns = 0;
    struct Self
    {
        EventQueue *eq;
        std::vector<int> *order;
        int *turns;
        void
        operator()()
        {
            order->push_back(*turns);
            if (++*turns < 4)
                eq->scheduleIn(0, Self{*this});
        }
    };
    eq.schedule(9, Self{&eq, &order, &turns});
    eq.schedule(9, [&order] { order.push_back(100); });
    eq.run();
    // Turn 0 first, then the independent event (inserted second), then
    // the self-rescheduled turns appended after it.
    EXPECT_EQ(order, (std::vector<int>{0, 100, 1, 2, 3}));
    EXPECT_EQ(eq.now(), 9u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, FarFutureOverflowsIntoHeapAndReturns)
{
    // Events on both sides of the wheel horizon; the far side lives in
    // the heap until time approaches, and the whole set still executes
    // in cycle order with pending()/executed() consistent.
    EventQueue eq;
    std::vector<Cycle> fired;
    const std::vector<Cycle> whens = {
        EventQueue::wheelSize - 1,      // last in-wheel cycle
        EventQueue::wheelSize,          // first heap cycle
        EventQueue::wheelSize + 1,
        10 * EventQueue::wheelSize + 3, // deep future
        5,                              // near
        7 * EventQueue::wheelSize,
    };
    for (Cycle w : whens)
        eq.schedule(w, [&fired, &eq] { fired.push_back(eq.now()); });
    EXPECT_EQ(eq.pending(), whens.size());
    eq.run();
    std::vector<Cycle> sorted = whens;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(fired, sorted);
    EXPECT_EQ(eq.executed(), whens.size());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, RepeatedWheelWrapLongRun)
{
    // A chain whose period exceeds the wheel size forces a base
    // advance plus heap migration on every single event.
    EventQueue eq;
    const Cycle period = EventQueue::wheelSize + EventQueue::wheelSize / 2;
    int hops = 0;
    struct Hop
    {
        EventQueue *eq;
        int *hops;
        Cycle period;
        void
        operator()()
        {
            if (++*hops < 200)
                eq->scheduleIn(period, Hop{*this});
        }
    };
    eq.scheduleIn(period, Hop{&eq, &hops, period});
    eq.run();
    EXPECT_EQ(hops, 200);
    EXPECT_EQ(eq.now(), 200 * period);
}

TEST(EventQueue, DeterministicAcrossIdenticalRuns)
{
    // Same schedule twice -> identical execution order, cycle by
    // cycle.  This is the kernel-level form of the fixed-seed
    // --stats-json byte-identity the campaign relies on.
    auto trace = [] {
        EventQueue eq;
        std::vector<std::pair<Cycle, int>> log;
        std::uint64_t state = 42;
        for (int i = 0; i < 500; ++i) {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            eq.schedule(state % (4 * EventQueue::wheelSize),
                        [&log, &eq, i] { log.emplace_back(eq.now(), i); });
        }
        eq.run();
        return log;
    };
    EXPECT_EQ(trace(), trace());
}

// The inline-callback contract: captures up to the documented
// capacity are storable, anything larger is rejected at compile time
// (the constructor static_asserts; canHold is the testable mirror of
// that condition).
struct FitsExactly
{
    std::array<std::byte, InlineCallback::capacity> pad;
    void operator()() {}
};

struct OneByteTooBig
{
    std::array<std::byte, InlineCallback::capacity + 1> pad;
    void operator()() {}
};

static_assert(InlineCallback::canHold<FitsExactly>,
              "a capture of exactly `capacity` bytes must be storable");
static_assert(!InlineCallback::canHold<OneByteTooBig>,
              "an oversized capture must be a compile error, not a "
              "silent heap allocation");

TEST(EventQueue, LargestRealCaptureStillFits)
{
    // Shape of the biggest scheduling site in src/ (Nvm::write):
    // this + line + a cacheline of words + a std::function + a cycle.
    struct NvmShape
    {
        void *self;
        std::uint64_t line;
        std::array<std::uint64_t, 8> words;
        std::function<void(Cycle)> done;
        Cycle completion;
        void operator()() {}
    };
    static_assert(InlineCallback::canHold<NvmShape>);
    EventQueue eq;
    bool ran = false;
    NvmShape ev{};
    ev.self = &ran;
    ev.done = [&ran](Cycle) { ran = true; };
    eq.schedule(3, [ev = std::move(ev)]() mutable { ev.done(0); });
    eq.run();
    EXPECT_TRUE(ran);
}
