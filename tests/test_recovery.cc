/** @file Tests for the recovery manager and its report. */

#include <gtest/gtest.h>

#include "core/recovery.hh"
#include "core/system.hh"
#include "workload/generators.hh"

using namespace tsoper;

TEST(Recovery, AfterDrainEverythingRecoversAndAudits)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.recordStores = true;
    const Workload w = generateByName("bodytrack", cfg.numCores, 2, 0.05);
    System sys(cfg, w);
    sys.run();
    const RecoveryReport report = recover(sys, PersistModel::StrictTso);
    EXPECT_TRUE(report.audited);
    EXPECT_TRUE(report.consistency.ok) << report.consistency.detail;
    EXPECT_GT(report.durableWords, 0u);
    EXPECT_GT(report.durableLines, 0u);
    EXPECT_EQ(report.bufferRecoveredLines, 0u); // AGB fully drained.
    EXPECT_NE(report.summary().find("PASS"), std::string::npos);
}

TEST(Recovery, MidRunCrashUsesTheBufferOverlay)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.recordStores = true;
    const Workload w = generateByName("radix", cfg.numCores, 2, 0.05);
    Cycle full = 0;
    {
        System sys(cfg, w);
        full = sys.run();
    }
    bool sawBufferRecovery = false;
    for (unsigned i = 1; i <= 8; ++i) {
        System sys(cfg, w);
        sys.runUntilCrash(full * i / 9);
        const RecoveryReport report =
            recover(sys, PersistModel::StrictTso);
        EXPECT_TRUE(report.consistency.ok)
            << "crash " << i << ": " << report.consistency.detail;
        sawBufferRecovery |= report.bufferRecoveredLines > 0;
    }
    // With eight crash points in a persist-heavy run, at least one must
    // catch committed-but-undrained AGB contents.
    EXPECT_TRUE(sawBufferRecovery);
}

TEST(Recovery, UnauditedWithoutStoreLog)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.recordStores = false;
    const Workload w = generateByName("fft", cfg.numCores, 1, 0.05);
    System sys(cfg, w);
    sys.run();
    const RecoveryReport report = recover(sys, PersistModel::StrictTso);
    EXPECT_FALSE(report.audited);
    EXPECT_NE(report.summary().find("not audited"), std::string::npos);
}

TEST(Recovery, AuditImageCountsWords)
{
    std::unordered_map<LineAddr, LineWords> durable;
    LineWords w = zeroLine();
    w[0] = makeStoreId(0, 0);
    w[3] = makeStoreId(0, 1);
    durable[5] = w;
    durable[9] = zeroLine(); // No written words.
    const RecoveryReport report =
        auditImage(durable, nullptr, PersistModel::StrictTso, 8);
    EXPECT_EQ(report.durableLines, 2u);
    EXPECT_EQ(report.durableWords, 2u);
    EXPECT_FALSE(report.audited);
}

TEST(Recovery, FailingAuditIsReported)
{
    StoreLog log(1);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    log.storeCommitted(0, 0x140, makeStoreId(0, 1));
    std::unordered_map<LineAddr, LineWords> durable;
    LineWords w = zeroLine();
    w[wordOf(0x140)] = makeStoreId(0, 1); // Later store without earlier.
    durable[lineOf(0x140)] = w;
    const RecoveryReport report =
        auditImage(durable, &log, PersistModel::StrictTso, 1);
    EXPECT_TRUE(report.audited);
    EXPECT_FALSE(report.consistency.ok);
    EXPECT_NE(report.summary().find("FAIL"), std::string::npos);
}
