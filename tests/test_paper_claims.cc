/**
 * @file
 * Microbenchmark-style tests for the paper's mechanism-level claims,
 * measured directly on controlled two-core scenarios:
 *
 *  - OBS 1/3 (Fig. 1): a second writer's L1 exclusion time under BSP
 *    (wait for the line's L1->LLC write) vs TSOPER's link-up grant;
 *  - OBS 2/4: same-line write turnaround under BSP's through-LLC
 *    exclusion vs TSOPER's AGB decoupling;
 *  - §II-A: coalescing — N stores to one line cost one persist;
 *  - §II-D: markers bound AG contents (KV-record atomicity).
 */

#include <gtest/gtest.h>

#include "core/crash_checker.hh"
#include "core/system.hh"
#include "workload/trace.hh"

using namespace tsoper;

namespace
{

/** Core 0 writes line A; core 1 (after a delay) writes line A too.
 *  Returns the total cycles of the run. */
Cycle
writeTakeoverCycles(EngineKind engine, unsigned rounds)
{
    SystemConfig cfg = makeConfig(engine);
    Workload w;
    w.perCore.resize(cfg.numCores);
    const Addr a = 0x5000'0000;
    for (unsigned r = 0; r < rounds; ++r) {
        w.perCore[0].push_back({OpType::Store, a, 0});
        w.perCore[0].push_back({OpType::Compute, 0, 30});
        w.perCore[1].push_back({OpType::Compute, 0, 15});
        w.perCore[1].push_back({OpType::Store, a + 8, 0});
    }
    System sys(cfg, w);
    return sys.run();
}

} // namespace

TEST(PaperClaims, Fig1ExclusionWindows)
{
    // The same write-takeover ping-pong: BSP pays L1+LLC exclusion on
    // every handover; TSOPER grants at link-up and persists behind.
    const Cycle bsp = writeTakeoverCycles(EngineKind::Bsp, 40);
    const Cycle tsoper = writeTakeoverCycles(EngineKind::Tsoper, 40);
    const Cycle baseline = writeTakeoverCycles(EngineKind::None, 40);
    EXPECT_GT(bsp, tsoper);
    // TSOPER's handover cost is close to plain coherence.
    EXPECT_LT(static_cast<double>(tsoper),
              1.35 * static_cast<double>(baseline));
    // BSP's chain of 360-cycle LLC exclusions dominates its runtime.
    EXPECT_GT(static_cast<double>(bsp),
              1.5 * static_cast<double>(baseline));
}

TEST(PaperClaims, CoalescingOnePersistPerLine)
{
    // 64 stores into one line (8 words, 8 rounds), never exposed until
    // the final drain: exactly one atomic group, one persisted line.
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    Workload w;
    w.perCore.resize(cfg.numCores);
    for (unsigned r = 0; r < 8; ++r)
        for (unsigned wd = 0; wd < 8; ++wd)
            w.perCore[0].push_back(
                {OpType::Store, 0x5000'0000 + wd * 8, 0});
    System sys(cfg, w);
    sys.run();
    EXPECT_EQ(sys.stats().get("traffic.persist_wb"), 1u);
    EXPECT_EQ(sys.stats().get("ag.persisted"), 1u);
    EXPECT_EQ(sys.stats().histogram("ag.stores").max(), 64u);
}

TEST(PaperClaims, Fig2CoalescingAcrossLinesIsAtomic)
{
    // The paper's motivating example: st a; st b; st c with a,c in one
    // line, b in another.  Both lines land in one AG; any crash leaves
    // either none or a TSO-consistent prefix — never c without b.
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.recordStores = true;
    Workload w;
    w.perCore.resize(cfg.numCores);
    w.perCore[0].push_back({OpType::Store, 0x5000'0000, 0});  // a
    w.perCore[0].push_back({OpType::Store, 0x5000'0040, 0});  // b
    w.perCore[0].push_back({OpType::Store, 0x5000'0008, 0});  // c
    {
        System sys(cfg, w);
        sys.run();
        EXPECT_EQ(sys.stats().get("ag.persisted"), 1u);
    }
    for (Cycle at = 1; at < 1200; at += 67) {
        System sys(cfg, w);
        const auto durable = sys.runUntilCrash(at);
        const auto res = checkDurableState(durable, sys.storeLog(),
                                           PersistModel::StrictTso,
                                           cfg.numCores);
        ASSERT_TRUE(res.ok) << "crash@" << at << ": " << res.detail;
        // Explicit Fig. 2 check: c durable implies b durable.
        const auto line = durable.find(lineOf(0x5000'0000));
        const bool cDurable = line != durable.end() &&
                              line->second[1] != invalidStore;
        if (cDurable) {
            const auto lineB = durable.find(lineOf(0x5000'0040));
            ASSERT_TRUE(lineB != durable.end() &&
                        lineB->second[0] != invalidStore)
                << "crash@" << at << ": c persisted without b";
        }
    }
}

TEST(PaperClaims, MarkersBoundRecordAtomicity)
{
    // §II-D: marker stores control AG boundaries.  Update records of
    // (value, version) pairs with a marker after each: each record's
    // pair lives in one AG, so version-durable implies value-durable.
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.recordStores = true;
    Workload w;
    w.perCore.resize(cfg.numCores);
    constexpr unsigned kRecords = 24;
    for (unsigned r = 0; r < kRecords; ++r) {
        const Addr value = 0x5000'0000 + r * 128;
        w.perCore[0].push_back({OpType::Store, value, 0});
        w.perCore[0].push_back({OpType::Store, value + 8, 0}); // version
        w.perCore[0].push_back({OpType::Marker, 0, 0});
    }
    Cycle full = 0;
    {
        System sys(cfg, w);
        full = sys.run();
        // One AG per record.
        EXPECT_EQ(sys.stats().get("ag.persisted"), kRecords);
    }
    for (unsigned i = 1; i <= 6; ++i) {
        System sys(cfg, w);
        const auto durable = sys.runUntilCrash(full * i / 7);
        for (unsigned r = 0; r < kRecords; ++r) {
            const Addr value = 0x5000'0000 + r * 128;
            const auto it = durable.find(lineOf(value));
            if (it == durable.end())
                continue;
            const bool versionDurable =
                it->second[wordOf(value + 8)] != invalidStore;
            const bool valueDurable =
                it->second[wordOf(value)] != invalidStore;
            if (versionDurable) {
                EXPECT_TRUE(valueDurable)
                    << "record " << r << " torn at crash " << i;
            }
        }
    }
}

TEST(PaperClaims, PersistencyTrailsCoherence)
{
    // "Coherence runs ahead at full speed; persistency follows
    // belatedly": the cores finish long before the persist drain does.
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    Workload w;
    w.perCore.resize(cfg.numCores);
    for (unsigned i = 0; i < 120; ++i)
        w.perCore[0].push_back(
            {OpType::Store, 0x5000'0000 + i * 64, 0});
    System sys(cfg, w);
    sys.run();
    EXPECT_GT(sys.stats().get("sys.drain_cycles"), 0u);
}

TEST(PaperClaims, ReadDependencyOrdersGroups)
{
    // Fig. 7: core 1 reads core 0's dirty b, then writes c.  If c is
    // durable after a crash, b must be (the clean member encoded the
    // dependence).  Swept across crash points.
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.recordStores = true;
    const Addr b = 0x5000'0000, c = 0x5000'1000;
    Workload w;
    w.perCore.resize(cfg.numCores);
    w.perCore[0].push_back({OpType::Store, b, 0});
    w.perCore[1].push_back({OpType::Compute, 0, 100});
    w.perCore[1].push_back({OpType::Load, b, 0});
    w.perCore[1].push_back({OpType::Store, c, 0});
    Cycle full = 0;
    {
        System sys(cfg, w);
        full = sys.run();
    }
    for (Cycle at = 1; at < full; at += full / 24 + 1) {
        System sys(cfg, w);
        const auto durable = sys.runUntilCrash(at);
        const auto itc = durable.find(lineOf(c));
        const bool cDurable =
            itc != durable.end() && itc->second[0] != invalidStore;
        if (cDurable) {
            const auto itb = durable.find(lineOf(b));
            ASSERT_TRUE(itb != durable.end() &&
                        itb->second[0] != invalidStore)
                << "crash@" << at << ": c durable without b";
        }
    }
}
