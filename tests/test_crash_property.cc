/**
 * @file
 * Crash-injection property tests — the paper's core guarantee.
 *
 * For the strict engines (TSOPER, STW) the durable state reconstructed
 * after a crash at *any* cycle must be a legal strict-TSO cut of the
 * recorded execution: closed under program order, same-word coherence
 * order, reads-from dependencies, and atomic-group atomicity.
 *
 * For HW-RP, the durable state must satisfy the relaxed SFR contract
 * on data-race-free workloads (sharing only under locks/barriers).
 *
 * Each crash point is a fresh deterministic run of the same workload
 * stopped cold at a different cycle.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/crash_checker.hh"
#include "core/system.hh"
#include "sim/rng.hh"
#include "workload/generators.hh"

using namespace tsoper;

namespace
{

/** Run the workload once to learn its length, then crash-test at
 *  points spread over the run. */
void
crashSweep(EngineKind engine, const std::string &bench,
           PersistModel model, unsigned points, std::uint64_t seed,
           double scale = 0.04)
{
    SystemConfig cfg = makeConfig(engine);
    cfg.recordStores = true;
    const Workload w = generateByName(bench, cfg.numCores, seed, scale);
    Cycle fullRun = 0;
    {
        System sys(cfg, w);
        fullRun = sys.run();
    }
    ASSERT_GT(fullRun, 0u);
    Rng rng(seed * 77 + 13);
    for (unsigned i = 0; i < points; ++i) {
        // Bias towards mid-run where the machine is busiest.
        const Cycle crashAt = 1 + rng.below(fullRun + fullRun / 4);
        SCOPED_TRACE(bench + " crash@" + std::to_string(crashAt) +
                     " engine=" + toString(engine));
        System sys(cfg, w);
        const auto durable = sys.runUntilCrash(crashAt);
        const auto res = checkDurableState(durable, sys.storeLog(),
                                           model, cfg.numCores);
        EXPECT_TRUE(res.ok) << res.detail;
    }
}

} // namespace

class StrictCrashTest
    : public ::testing::TestWithParam<std::tuple<EngineKind, std::string>>
{
};

TEST_P(StrictCrashTest, DurableStateIsStrictTsoCut)
{
    const auto [engine, bench] = GetParam();
    crashSweep(engine, bench, PersistModel::StrictTso, 6,
               0xC0FFEE ^ static_cast<unsigned>(engine));
}

INSTANTIATE_TEST_SUITE_P(
    TsoperAndStw, StrictCrashTest,
    ::testing::Combine(
        ::testing::Values(EngineKind::Tsoper, EngineKind::Stw),
        ::testing::Values("ocean_cp", "radix", "lu_ncb", "canneal",
                          "dedup", "bodytrack")),
    [](const auto &info) {
        std::string name = toString(std::get<0>(info.param));
        return name + "_" + std::get<1>(info.param);
    });

TEST(StrictCrashSeeds, TsoperManySeedsOnWorstCase)
{
    // lu_ncb (word-interleaved false sharing) exercises the deepest
    // sharing lists; sweep extra seeds.
    for (std::uint64_t seed : {11u, 22u, 33u})
        crashSweep(EngineKind::Tsoper, "lu_ncb", PersistModel::StrictTso,
                   4, seed);
}

TEST(StrictCrashEarly, CrashInWarmupIsLegal)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.recordStores = true;
    const Workload w = generateByName("radix", cfg.numCores, 5, 0.04);
    for (Cycle at : {1u, 10u, 100u, 1000u}) {
        System sys(cfg, w);
        const auto durable = sys.runUntilCrash(at);
        const auto res = checkDurableState(
            durable, sys.storeLog(), PersistModel::StrictTso,
            cfg.numCores);
        EXPECT_TRUE(res.ok) << "crash@" << at << ": " << res.detail;
    }
}

TEST(StrictCrashTiny, SmallAgbStillCorrect)
{
    // 1.25 KiB AGB slices (the paper's §I claim) must stay correct.
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.recordStores = true;
    cfg.agbSliceLines = 20;
    cfg.agMaxLines = 16;
    const Workload w = generateByName("ocean_cp", cfg.numCores, 9, 0.04);
    Cycle fullRun = 0;
    {
        System sys(cfg, w);
        fullRun = sys.run();
    }
    Rng rng(99);
    for (unsigned i = 0; i < 5; ++i) {
        const Cycle crashAt = 1 + rng.below(fullRun);
        System sys(cfg, w);
        const auto durable = sys.runUntilCrash(crashAt);
        const auto res = checkDurableState(
            durable, sys.storeLog(), PersistModel::StrictTso,
            cfg.numCores);
        EXPECT_TRUE(res.ok) << "crash@" << crashAt << ": " << res.detail;
    }
}

class RelaxedCrashTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RelaxedCrashTest, HwRpSatisfiesSfrContractOnDrfWorkloads)
{
    crashSweep(EngineKind::HwRp, GetParam(), PersistModel::RelaxedSfr, 5,
               0xBEEF);
}

// DRF workloads only: shared data is touched exclusively under locks
// (LockGrid and Pipeline kernels).  TaskQueue/PrivateCompute profiles
// contain benign races whose reads-from edges relaxed persistency does
// not (and need not) honour.
INSTANTIATE_TEST_SUITE_P(DrfBenchmarks, RelaxedCrashTest,
                         ::testing::Values("fluidanimate", "dedup",
                                           "ferret", "bodytrack"),
                         [](const auto &info) { return info.param; });

TEST(CrashAfterDrain, EverythingDurable)
{
    // A "crash" after the final drain must expose every store, for all
    // strict engines.
    for (EngineKind engine : {EngineKind::Tsoper, EngineKind::Stw}) {
        SystemConfig cfg = makeConfig(engine);
        cfg.recordStores = true;
        const Workload w =
            generateByName("bodytrack", cfg.numCores, 4, 0.04);
        System sys(cfg, w);
        sys.run();
        const auto res = checkDurableState(
            sys.durableImage(), sys.storeLog(), PersistModel::StrictTso,
            cfg.numCores);
        EXPECT_TRUE(res.ok) << toString(engine) << ": " << res.detail;
        EXPECT_EQ(res.requiredStores, sys.storeLog().totalStores())
            << toString(engine);
    }
}
