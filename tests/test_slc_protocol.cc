/**
 * @file
 * Protocol-level tests for Sharing-List Coherence: list construction,
 * multiversioning, non-destructive invalidation, tail-to-head persist,
 * upgrades, and write-permission-at-link-up timing.
 *
 * A RecordingHooks shim plays the persistency engine so the tests can
 * observe and steer the protocol directly.
 */

#include <gtest/gtest.h>

#include <vector>

#include "coherence/slc.hh"
#include "mem/llc.hh"
#include "mem/nvm.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace tsoper;

namespace
{

/** Engine stand-in that keeps invalid dirty versions (TSOPER-style). */
class RecordingHooks : public ProtocolHooks
{
  public:
    bool dropsInvalidDirty() const override { return false; }

    bool
    lineInUnpersistedAg(CoreId core, LineAddr line) const override
    {
        (void)core; (void)line;
        return false;
    }

    Cycle
    onDirtyExpose(CoreId owner, LineAddr line, CoreId requester,
                  bool forWrite, Cycle now) override
    {
        exposes.push_back({owner, line, requester, forWrite});
        return now;
    }

    void
    onReadDependence(CoreId reader, LineAddr line, Cycle) override
    {
        readDeps.push_back({reader, line});
    }

    void
    onBecameTail(CoreId core, LineAddr line, Cycle) override
    {
        tails.push_back({core, line});
    }

    void
    onStoreCommitted(CoreId core, LineAddr line, Cycle) override
    {
        commits.push_back({core, line});
    }

    struct Expose
    {
        CoreId owner;
        LineAddr line;
        CoreId requester;
        bool forWrite;
    };
    std::vector<Expose> exposes;
    std::vector<std::pair<CoreId, LineAddr>> readDeps;
    std::vector<std::pair<CoreId, LineAddr>> tails;
    std::vector<std::pair<CoreId, LineAddr>> commits;
};

struct SlcFixture : public ::testing::Test
{
    SlcFixture()
        : mesh(cfg, stats), nvm(cfg, eq, stats), llc(cfg, nvm, stats),
          slc(cfg, eq, mesh, llc, nvm, stats)
    {
        slc.setHooks(&hooks);
    }

    /** Issue a store and run to completion. */
    void
    store(CoreId c, Addr a, StoreId id)
    {
        bool done = false;
        slc.store(c, a, id, [&](Cycle) { done = true; });
        eq.runUntil([&] { return done; });
        ASSERT_TRUE(done);
    }

    /** Issue a load, run to completion, return the observed value. */
    StoreId
    load(CoreId c, Addr a)
    {
        StoreId value = invalidStore;
        bool done = false;
        slc.load(c, a, [&](Cycle, StoreId v) {
            value = v;
            done = true;
        });
        eq.runUntil([&] { return done; });
        EXPECT_TRUE(done);
        return value;
    }

    SystemConfig cfg;
    EventQueue eq;
    StatsRegistry stats;
    Mesh mesh;
    Nvm nvm;
    Llc llc;
    RecordingHooks hooks;
    SlcProtocol slc;
};

constexpr Addr kAddr = 0x5000'0000;
const LineAddr kLine = lineOf(kAddr);

} // namespace

TEST_F(SlcFixture, FirstWriterBecomesSoleHead)
{
    store(0, kAddr, makeStoreId(0, 0));
    EXPECT_TRUE(slc.hasNode(0, kLine));
    EXPECT_TRUE(slc.nodeValid(0, kLine));
    EXPECT_TRUE(slc.nodeDirty(0, kLine));
    EXPECT_TRUE(slc.nodeIsTail(0, kLine));
    EXPECT_EQ(slc.listLength(kLine), 1u);
}

TEST_F(SlcFixture, SecondWriterPrependsAndInvalidatesNonDestructively)
{
    store(0, kAddr, makeStoreId(0, 0));
    store(1, kAddr, makeStoreId(1, 0));
    // Multiversioning: both versions coexist on the list (§IV-A).
    EXPECT_EQ(slc.listLength(kLine), 2u);
    EXPECT_EQ(slc.validListLength(kLine), 1u);
    EXPECT_TRUE(slc.nodeValid(1, kLine));
    EXPECT_FALSE(slc.nodeValid(0, kLine)); // Invalid, pending persist.
    EXPECT_TRUE(slc.nodeDirty(0, kLine));  // Still holds its version.
    EXPECT_TRUE(slc.nodeIsTail(0, kLine));
    EXPECT_FALSE(slc.nodeIsTail(1, kLine));
}

TEST_F(SlcFixture, InvalidationExposesDirtyOwner)
{
    store(0, kAddr, makeStoreId(0, 0));
    store(1, kAddr, makeStoreId(1, 0));
    ASSERT_EQ(hooks.exposes.size(), 1u);
    EXPECT_EQ(hooks.exposes[0].owner, 0);
    EXPECT_EQ(hooks.exposes[0].requester, 1);
    EXPECT_TRUE(hooks.exposes[0].forWrite);
}

TEST_F(SlcFixture, ReaderGetsDataAndRecordsDependence)
{
    store(0, kAddr, makeStoreId(0, 7));
    const StoreId v = load(1, kAddr);
    EXPECT_EQ(v, makeStoreId(0, 7));
    // Reader is the new head; owner stays valid (reads don't destroy).
    EXPECT_TRUE(slc.nodeValid(0, kLine));
    EXPECT_TRUE(slc.nodeValid(1, kLine));
    EXPECT_FALSE(slc.nodeDirty(1, kLine));
    EXPECT_EQ(slc.validListLength(kLine), 2u);
    ASSERT_EQ(hooks.readDeps.size(), 1u);
    EXPECT_EQ(hooks.readDeps[0].first, 1);
    // The read froze (exposed) the owner.
    ASSERT_EQ(hooks.exposes.size(), 1u);
    EXPECT_FALSE(hooks.exposes[0].forWrite);
}

TEST_F(SlcFixture, ReadOfCleanLineCreatesNoDependence)
{
    store(0, kAddr, makeStoreId(0, 0));
    // Persist the version so it becomes clean.
    slc.persistComplete(0, kLine, eq.now());
    load(1, kAddr);
    EXPECT_TRUE(hooks.readDeps.empty());
    EXPECT_EQ(hooks.exposes.size(), 0u);
}

TEST_F(SlcFixture, PersistCompleteOnValidHeadMakesItClean)
{
    store(0, kAddr, makeStoreId(0, 0));
    slc.persistComplete(0, kLine, eq.now());
    EXPECT_TRUE(slc.nodeValid(0, kLine));
    EXPECT_FALSE(slc.nodeDirty(0, kLine));
    EXPECT_TRUE(llc.contains(kLine)); // Parallel LLC writeback.
    EXPECT_EQ(llc.lookup(kLine)[wordOf(kAddr)], makeStoreId(0, 0));
}

TEST_F(SlcFixture, PersistCompleteOnInvalidVersionUnlinksAndPassesToken)
{
    store(0, kAddr, makeStoreId(0, 0));
    store(1, kAddr, makeStoreId(1, 0));
    hooks.tails.clear();
    // Tail-to-head: the invalid old version persists and unlinks.
    slc.persistComplete(0, kLine, eq.now());
    EXPECT_FALSE(slc.hasNode(0, kLine));
    EXPECT_EQ(slc.listLength(kLine), 1u);
    // Core 1's node received the persist token.
    ASSERT_FALSE(hooks.tails.empty());
    EXPECT_EQ(hooks.tails[0].first, 1);
}

TEST_F(SlcFixture, PersistOutOfOrderPanics)
{
    store(0, kAddr, makeStoreId(0, 0));
    store(1, kAddr, makeStoreId(1, 0));
    // Core 1's version is not the persist tail: core 0 must go first.
    EXPECT_THROW(slc.persistComplete(1, kLine, eq.now()),
                 std::logic_error);
}

TEST_F(SlcFixture, PersistTailSkipsCleanSharers)
{
    store(0, kAddr, makeStoreId(0, 0));
    load(1, kAddr); // Clean sharer above the dirty owner.
    // Core 1 can only persist-tail once core 0's version persists;
    // conversely core 0 is a persist tail despite not being the head.
    EXPECT_TRUE(slc.nodeIsPersistTail(0, kLine));
    EXPECT_FALSE(slc.nodeIsPersistTail(1, kLine));
    slc.persistComplete(0, kLine, eq.now());
    EXPECT_TRUE(slc.nodeIsPersistTail(1, kLine));
}

TEST_F(SlcFixture, ThreeWritersFormOrderedVersionChain)
{
    store(0, kAddr, makeStoreId(0, 0));
    store(1, kAddr, makeStoreId(1, 0));
    store(2, kAddr, makeStoreId(2, 0));
    EXPECT_EQ(slc.listLength(kLine), 3u);
    EXPECT_EQ(slc.validListLength(kLine), 1u);
    // Persist in list order only.
    EXPECT_TRUE(slc.nodeIsPersistTail(0, kLine));
    EXPECT_FALSE(slc.nodeIsPersistTail(1, kLine));
    slc.persistComplete(0, kLine, eq.now());
    EXPECT_TRUE(slc.nodeIsPersistTail(1, kLine));
    slc.persistComplete(1, kLine, eq.now());
    EXPECT_TRUE(slc.nodeIsPersistTail(2, kLine));
    slc.persistComplete(2, kLine, eq.now());
    // The final version stays valid clean at the head.
    EXPECT_EQ(slc.listLength(kLine), 1u);
    EXPECT_TRUE(slc.nodeValid(2, kLine));
    EXPECT_FALSE(slc.nodeDirty(2, kLine));
}

TEST_F(SlcFixture, UpgradeOfReaderRelinksAsHead)
{
    store(0, kAddr, makeStoreId(0, 0));
    slc.persistComplete(0, kLine, eq.now());
    load(1, kAddr); // 1 is head (clean), 0 below (clean).
    store(0, kAddr, makeStoreId(0, 1)); // 0 must re-link above 1.
    EXPECT_TRUE(slc.nodeDirty(0, kLine));
    EXPECT_TRUE(slc.nodeValid(0, kLine));
    EXPECT_FALSE(slc.hasNode(1, kLine)); // Clean copy invalidated+dropped.
    // Core 1 reloading sees the new version.
    EXPECT_EQ(load(1, kAddr), makeStoreId(0, 1));
}

TEST_F(SlcFixture, WritePermissionAtLinkUpBeatsFullDataLatency)
{
    // The second writer's permission should not wait for anything the
    // old owner still has to do — only for link-up plus data transfer.
    store(0, kAddr, makeStoreId(0, 0));
    const Cycle start = eq.now();
    Cycle grantAt = 0;
    bool done = false;
    slc.store(1, kAddr, makeStoreId(1, 0), [&](Cycle at) {
        grantAt = at;
        done = true;
    });
    eq.runUntil([&] { return done; });
    // Sanity: the grant happens within a small multiple of the NoC
    // round trip, far below an NVM write (360 cycles).
    EXPECT_LT(grantAt - start, cfg.nvmWriteLatency);
}

TEST_F(SlcFixture, StoreValueVisibleToSubsequentLoadsEverywhere)
{
    store(0, kAddr, makeStoreId(0, 0));
    store(1, kAddr + 8, makeStoreId(1, 0)); // Same line: takes over.
    EXPECT_EQ(load(2, kAddr), makeStoreId(0, 0));
    EXPECT_EQ(load(2, kAddr + 8), makeStoreId(1, 0));
    // Core 0's invalid version must persist before core 0 may re-access
    // the line (multiversioning block); afterwards it sees both words.
    slc.persistComplete(0, kLine, eq.now());
    EXPECT_EQ(load(0, kAddr + 8), makeStoreId(1, 0));
    EXPECT_EQ(load(0, kAddr), makeStoreId(0, 0));
}

TEST_F(SlcFixture, SilentWriteOnExclusiveCleanLine)
{
    load(0, kAddr); // Sole copy, E-like.
    hooks.commits.clear();
    const auto missesBefore = stats.get("slc.misses");
    store(0, kAddr, makeStoreId(0, 0));
    EXPECT_EQ(stats.get("slc.misses"), missesBefore);
    ASSERT_EQ(hooks.commits.size(), 1u);
}

TEST_F(SlcFixture, EvictionBufferHoldsDirtyVictims)
{
    SystemConfig tinyCfg = cfg;
    tinyCfg.privSets = 1;
    tinyCfg.privWays = 2;
    SlcProtocol tiny(tinyCfg, eq, mesh, llc, nvm, stats);
    tiny.setHooks(&hooks);
    auto storeTiny = [&](CoreId c, Addr a, StoreId id) {
        bool done = false;
        tiny.store(c, a, id, [&](Cycle) { done = true; });
        eq.runUntil([&] { return done; });
    };
    storeTiny(0, 0x1000, makeStoreId(0, 0));
    storeTiny(0, 0x2000, makeStoreId(0, 1));
    EXPECT_EQ(tiny.evictionBufferOccupancy(0), 0u);
    storeTiny(0, 0x3000, makeStoreId(0, 2)); // Evicts a dirty line.
    EXPECT_EQ(tiny.evictionBufferOccupancy(0), 1u);
    // The evicted node still serves data (it behaves as an AG member).
    bool done = false;
    StoreId v = invalidStore;
    tiny.load(1, 0x1000, [&](Cycle, StoreId val) {
        v = val;
        done = true;
    });
    eq.runUntil([&] { return done; });
    EXPECT_EQ(v, makeStoreId(0, 0));
}

TEST_F(SlcFixture, ListStatsTrackLengths)
{
    store(0, kAddr, makeStoreId(0, 0));
    store(1, kAddr, makeStoreId(1, 0));
    store(2, kAddr, makeStoreId(2, 0));
    const auto &hist = stats.histogram("slc.persist_list_len");
    EXPECT_GT(hist.samples(), 0u);
    EXPECT_GE(hist.max(), 3u);
}
