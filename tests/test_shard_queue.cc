/**
 * @file
 * Unit tests for the sharded event kernel (sim/shard_queue.hh): the
 * conservative window advance, cross-shard message delivery, the
 * determinism guarantee across worker-thread counts, and the shard
 * fence.  These run multi-threaded and carry the tsan_smoke label so
 * the ThreadSanitizer preset exercises the pool synchronization.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/shard_fence.hh"
#include "sim/shard_queue.hh"

using namespace tsoper;

namespace
{

/** splitmix64; keeps the workloads deterministic without a shared RNG. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Per-shard execution log.  Each shard's events run on exactly one
 *  worker per window, so appending to the owning shard's vector never
 *  races; the logs are only compared after run() returns. */
struct ShardLog
{
    std::vector<std::uint64_t> entries;
};

/** Self-rescheduling actor that hops between shards (the migration
 *  path carries delay >= lookahead) and records every firing as
 *  (cycle, actor, step) in the shard it fired on. */
struct HopActor
{
    ShardedEventQueue *eq;
    std::vector<ShardLog> *logs;
    std::uint64_t *remaining;   // Owning shard's quota.
    std::vector<std::uint64_t> *quotas;
    unsigned shard;
    unsigned id;
    std::uint64_t state;
    std::uint64_t step;

    void
    operator()()
    {
        if (*remaining == 0)
            return;
        --*remaining;
        const Cycle at = eq->shard(shard).now();
        (*logs)[shard].entries.push_back((at << 24) |
                                         (std::uint64_t(id) << 12) | step);
        state = mix(state);
        ++step;
        HopActor next{*this};
        const unsigned kind = state % 100;
        if (kind < 30) {
            eq->post(shard, shard, 0, std::move(next)); // wakeup
        } else if (kind < 60) {
            eq->post(shard, shard, 1 + (state >> 8) % 8,
                     std::move(next)); // local hop
        } else {
            // Migrate to a pseudo-random peer; rebind the quota so the
            // destination worker only ever touches its own counter.
            const unsigned dst = static_cast<unsigned>(
                (shard + 1 + (state >> 16) % (eq->shards() - 1)) %
                eq->shards());
            next.shard = dst;
            next.remaining = &(*quotas)[dst];
            eq->post(shard, dst, eq->lookahead() + (state >> 8) % 40,
                     std::move(next));
        }
    }
};

/** Run the hop workload on @p shards/@p threads; return per-shard logs. */
std::vector<ShardLog>
runHopWorkload(unsigned shards, unsigned threads, std::uint64_t perShard,
               std::uint64_t *executed = nullptr,
               std::uint64_t *crossPosts = nullptr)
{
    ShardedEventQueue eq(shards, threads, /*lookahead=*/3);
    std::vector<ShardLog> logs(shards);
    std::vector<std::uint64_t> quotas(shards, perShard);
    for (unsigned s = 0; s < shards; ++s) {
        for (unsigned a = 0; a < 3; ++a) {
            eq.post(s, s, (s * 3 + a) % 5,
                    HopActor{&eq, &logs, &quotas[s], &quotas, s,
                             s * 3 + a, mix(s * 31 + a + 7), 0});
        }
    }
    eq.run();
    if (executed)
        *executed = eq.executed();
    if (crossPosts)
        *crossPosts = eq.crossPosts();
    return logs;
}

} // namespace

// ---------------------------------------------------------------------
// Construction and argument validation
// ---------------------------------------------------------------------

TEST(ShardQueue, RejectsZeroLookaheadWithMultipleShards)
{
    EXPECT_THROW(ShardedEventQueue(4, 2, 0), std::logic_error);
}

TEST(ShardQueue, SingleShardAllowsZeroLookahead)
{
    ShardedEventQueue eq(1, 1, 0);
    int fired = 0;
    eq.post(0, 0, 5, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(ShardQueue, ClampsThreadsToShardCount)
{
    ShardedEventQueue eq(2, 16, 3);
    EXPECT_EQ(eq.threads(), 2u);
    ShardedEventQueue one(1, 8, 3);
    EXPECT_EQ(one.threads(), 1u);
}

TEST(ShardQueue, RejectsCrossShardPostBelowLookahead)
{
    ShardedEventQueue eq(2, 1, 3);
    // The setup path validates too: a 1-cycle cross-shard message
    // would outrun the NoC.
    EXPECT_THROW(eq.post(0, 1, 1, [] {}), std::logic_error);
    // And from inside a burst.
    eq.post(0, 0, 0, [&] { eq.post(0, 1, 2, [] {}); });
    EXPECT_THROW(eq.run(), std::logic_error);
}

TEST(ShardQueue, RejectsPostFromWrongSourceShard)
{
    ShardedEventQueue eq(2, 1, 3);
    eq.post(0, 0, 0, [&] { eq.post(1, 0, 0, [] {}); });
    EXPECT_THROW(eq.run(), std::logic_error);
}

// ---------------------------------------------------------------------
// Single-shard equivalence with the plain kernel
// ---------------------------------------------------------------------

TEST(ShardQueue, SingleShardMatchesPlainEventQueue)
{
    // The same deterministic chain on both kernels must execute the
    // same number of events and end at the same cycle.
    auto drive = [](auto &eq, auto post) {
        std::uint64_t remaining = 5000;
        struct Chain
        {
            std::function<void(Cycle, std::function<void()>)> sched;
            std::uint64_t *remaining;
            std::uint64_t state;
            void
            operator()()
            {
                if (*remaining == 0)
                    return;
                --*remaining;
                state = mix(state);
                sched(state & 31, Chain{*this});
            }
        };
        for (unsigned c = 0; c < 4; ++c)
            post(c, Chain{post, &remaining, mix(c + 1)});
        eq.run();
    };

    EventQueue plain;
    drive(plain, std::function<void(Cycle, std::function<void()>)>(
                     [&](Cycle d, std::function<void()> fn) {
                         plain.scheduleIn(d, std::move(fn));
                     }));

    ShardedEventQueue sharded(1, 1, 3);
    drive(sharded, std::function<void(Cycle, std::function<void()>)>(
                       [&](Cycle d, std::function<void()> fn) {
                           sharded.post(0, 0, d, std::move(fn));
                       }));

    EXPECT_EQ(sharded.executed(), plain.executed());
    EXPECT_EQ(sharded.now(), plain.now());
    EXPECT_EQ(sharded.windows(), 0u) << "single shard must bypass the "
                                        "window loop";
}

// ---------------------------------------------------------------------
// Window advance
// ---------------------------------------------------------------------

TEST(ShardQueue, CrossShardMessageArrivesAtPostedCycle)
{
    ShardedEventQueue eq(2, 1, 3);
    Cycle arrivedAt = 0;
    eq.post(0, 0, 10, [&] {
        // Now 10 on shard 0; the message lands at 10 + 5 on shard 1.
        eq.post(0, 1, 5, [&] { arrivedAt = eq.shard(1).now(); });
    });
    eq.run();
    EXPECT_EQ(arrivedAt, 15u);
    EXPECT_EQ(eq.crossPosts(), 1u);
    EXPECT_GE(eq.windows(), 1u);
}

TEST(ShardQueue, EmptyShardsDoNotStallTheWindow)
{
    // Only shard 0 of 4 has work: the horizon must come from the one
    // non-empty shard and the run must drain normally.
    ShardedEventQueue eq(4, 2, 3);
    unsigned fired = 0;
    for (Cycle d : {0u, 7u, 23u, 111u})
        eq.post(0, 0, d, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 4u);
    EXPECT_EQ(eq.now(), 111u);
    EXPECT_TRUE(eq.empty());
}

TEST(ShardQueue, StragglerShardAdvancesInOneWindow)
{
    // Shard 1's only event sits far in the future; the dense shard 0
    // must not force thousands of empty windows on it, and the
    // straggler must still fire exactly once at its own cycle.
    ShardedEventQueue eq(2, 2, 3);
    Cycle stragglerAt = 0;
    eq.post(1, 1, 100000, [&] { stragglerAt = eq.shard(1).now(); });
    std::uint64_t remaining = 200;
    struct Dense
    {
        ShardedEventQueue *eq;
        std::uint64_t *remaining;
        void
        operator()()
        {
            if ((*remaining)-- == 0)
                return;
            eq->post(0, 0, 2, Dense{*this});
        }
    };
    eq.post(0, 0, 0, Dense{&eq, &remaining});
    eq.run();
    EXPECT_EQ(stragglerAt, 100000u);
    EXPECT_EQ(eq.now(), 100000u);
}

TEST(ShardQueue, RunHonorsMaxCycle)
{
    ShardedEventQueue eq(2, 1, 3);
    unsigned fired = 0;
    eq.post(0, 0, 10, [&] { ++fired; });
    eq.post(1, 1, 500, [&] { ++fired; });
    eq.run(100);
    EXPECT_EQ(fired, 1u);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 2u);
}

TEST(ShardQueue, RunForStopsAtWindowBarrier)
{
    ShardedEventQueue eq(2, 1, 3);
    std::uint64_t remaining = 1000;
    struct Chain
    {
        ShardedEventQueue *eq;
        std::uint64_t *remaining;
        unsigned shard;
        void
        operator()()
        {
            if ((*remaining)-- == 0)
                return;
            eq->post(shard, shard, 1, Chain{*this});
        }
    };
    eq.post(0, 0, 0, Chain{&eq, &remaining, 0});
    eq.post(1, 1, 0, Chain{&eq, &remaining, 1});
    eq.runFor(nullptr, maxCycle, 50);
    // The budget is checked at barriers, so a window may overshoot —
    // but only by a bounded amount, and the run must stop early.
    EXPECT_GE(eq.executed(), 50u);
    EXPECT_LT(eq.executed(), 200u);
    EXPECT_FALSE(eq.empty());
}

// ---------------------------------------------------------------------
// Determinism across thread counts
// ---------------------------------------------------------------------

TEST(ShardQueue, DeterministicAcrossThreads)
{
    // The same seeded workload must produce identical per-shard
    // execution logs (cycle, actor, step — in order) no matter how
    // many workers execute the windows.  This is the unit-level
    // statement of the pdes_determinism oracle.
    std::uint64_t exec1 = 0, cross1 = 0;
    const auto base = runHopWorkload(4, 1, 2000, &exec1, &cross1);
    for (unsigned threads : {2u, 4u}) {
        std::uint64_t execN = 0, crossN = 0;
        const auto logs = runHopWorkload(4, threads, 2000, &execN, &crossN);
        EXPECT_EQ(execN, exec1) << "threads=" << threads;
        EXPECT_EQ(crossN, cross1) << "threads=" << threads;
        ASSERT_EQ(logs.size(), base.size());
        for (unsigned s = 0; s < logs.size(); ++s)
            EXPECT_EQ(logs[s].entries, base[s].entries)
                << "shard " << s << " diverged at threads=" << threads;
    }
    EXPECT_GT(cross1, 0u) << "workload must actually cross shards";
}

// ---------------------------------------------------------------------
// Worker-pool error propagation
// ---------------------------------------------------------------------

TEST(ShardQueue, PoolWorkerExceptionReachesCaller)
{
    // An event panicking on a pool thread must surface as the same
    // exception on the caller, not std::terminate.
    ShardedEventQueue eq(4, 4, 3);
    for (unsigned s = 0; s < 4; ++s)
        eq.post(s, s, 1, [s] {
            if (s == 3)
                throw std::runtime_error("boom");
        });
    EXPECT_THROW(eq.run(), std::runtime_error);
}

// ---------------------------------------------------------------------
// Shard fence
// ---------------------------------------------------------------------

TEST(ShardQueue, FenceAllowsOwnedTiles)
{
    ShardFenceMap map(4, 0);
    map.setOwner(2, 1);
    map.setOwner(3, 1);
    ShardedEventQueue eq(2, 1, 3);
    eq.setFenceMap(&map);
    bool ok = false;
    eq.post(1, 1, 0, [&] {
        shardFenceCheck(2); // Owned by the executing shard: fine.
        ok = true;
    });
    eq.run();
    EXPECT_TRUE(ok);
}

TEST(ShardQueue, FencePanicsOnForeignTile)
{
    ShardFenceMap map(4, 0);
    map.setOwner(3, 1);
    ShardedEventQueue eq(2, 1, 3);
    eq.setFenceMap(&map);
    eq.post(0, 0, 0, [] {
        shardFenceCheck(3); // Tile 3 belongs to shard 1 — must panic.
    });
    EXPECT_THROW(eq.run(), std::logic_error);
}

TEST(ShardQueue, FenceDisarmedOutsideBursts)
{
    // Unit tests poke components directly with no fence installed;
    // the check must be a no-op there.
    EXPECT_EQ(shardFenceCurrent(), ~0u);
    shardFenceCheck(0);
    shardFenceCheck(99);
}

TEST(ShardQueue, FenceScopesNest)
{
    ShardFenceMap map(2, 0);
    map.setOwner(1, 1);
    ShardFenceScope outer(&map, 0);
    EXPECT_EQ(shardFenceCurrent(), 0u);
    {
        ShardFenceScope inner(&map, 1);
        EXPECT_EQ(shardFenceCurrent(), 1u);
        shardFenceCheck(1);
    }
    EXPECT_EQ(shardFenceCurrent(), 0u);
    shardFenceCheck(0);
    EXPECT_THROW(shardFenceCheck(1), std::logic_error);
}
