/** @file Unit tests for the mesh NoC model. */

#include <gtest/gtest.h>

#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

using namespace tsoper;

namespace
{

SystemConfig
cfg4x4()
{
    SystemConfig cfg;
    return cfg; // Defaults: 4x4 mesh, 8 cores, 8 banks.
}

} // namespace

TEST(Mesh, HopCountIsManhattanDistance)
{
    StatsRegistry stats;
    SystemConfig cfg = cfg4x4();
    Mesh m(cfg, stats);
    EXPECT_EQ(m.hops(0, 0), 0u);
    EXPECT_EQ(m.hops(0, 3), 3u);  // Same row, cols 0->3.
    EXPECT_EQ(m.hops(0, 15), 6u); // Opposite corners of 4x4.
    EXPECT_EQ(m.hops(5, 6), 1u);
}

TEST(Mesh, IdealLatencyScalesWithHopsAndBytes)
{
    StatsRegistry stats;
    SystemConfig cfg = cfg4x4();
    Mesh m(cfg, stats);
    const Cycle small = m.idealLatency(0, 3, 8);
    const Cycle big = m.idealLatency(0, 3, 72);
    EXPECT_GT(big, small);
    EXPECT_EQ(small, 3 * cfg.hopLatency + 1);
}

TEST(Mesh, SelfSendCostsOneCycle)
{
    StatsRegistry stats;
    SystemConfig cfg = cfg4x4();
    Mesh m(cfg, stats);
    EXPECT_EQ(m.route(2, 2, 64, 100), 101u);
}

TEST(Mesh, UncontendedRouteMatchesIdealLatency)
{
    StatsRegistry stats;
    SystemConfig cfg = cfg4x4();
    Mesh m(cfg, stats);
    const Cycle arrival = m.route(0, 15, 8, 50);
    EXPECT_EQ(arrival, 50 + m.idealLatency(0, 15, 8));
}

TEST(Mesh, ContentionDelaysSecondMessage)
{
    StatsRegistry stats;
    SystemConfig cfg = cfg4x4();
    Mesh m(cfg, stats);
    // Two large messages over the same first link at the same cycle.
    const Cycle first = m.route(0, 3, 160, 0);
    const Cycle second = m.route(0, 3, 160, 0);
    EXPECT_GT(second, first);
    EXPECT_GT(stats.get("noc.link_wait_cycles"), 0u);
}

TEST(Mesh, DisjointPathsDoNotInterfere)
{
    StatsRegistry stats;
    SystemConfig cfg = cfg4x4();
    Mesh m(cfg, stats);
    const Cycle a = m.route(0, 1, 160, 0);
    const Cycle b = m.route(14, 15, 160, 0); // Far corner link.
    EXPECT_EQ(a - 0, b - 0);
    EXPECT_EQ(stats.get("noc.link_wait_cycles"), 0u);
}

TEST(Mesh, TrafficCountersAccumulate)
{
    StatsRegistry stats;
    SystemConfig cfg = cfg4x4();
    Mesh m(cfg, stats);
    m.route(0, 5, 72, 0);
    m.route(1, 6, 8, 0);
    EXPECT_EQ(stats.get("noc.messages"), 2u);
    EXPECT_EQ(stats.get("noc.bytes"), 80u);
}

TEST(Mesh, NodeMapping)
{
    StatsRegistry stats;
    SystemConfig cfg = cfg4x4();
    Mesh m(cfg, stats);
    EXPECT_EQ(m.coreNode(0), 0);
    EXPECT_EQ(m.coreNode(7), 7);
    EXPECT_EQ(m.bankNode(0), 8);
    EXPECT_EQ(m.bankNode(7), 15);
    EXPECT_EQ(m.mcNode(3), m.bankNode(3));
}
