/** @file Tests for the net/ framed-message layer: encode/decode round
 *  trips, the decoder's fail-closed behaviour on malformed input, a
 *  seeded fuzz pass, and the deterministic wire-fault injector. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/fault.hh"
#include "net/frame.hh"
#include "sim/rng.hh"

using namespace tsoper;
using namespace tsoper::net;

namespace
{

std::string
decodeAll(FrameDecoder &dec, std::vector<std::string> *out)
{
    std::string payload;
    while (dec.next(&payload) == FrameDecoder::Status::Frame)
        out->push_back(payload);
    return dec.failed() ? dec.error() : "";
}

} // namespace

// --- Round trips ------------------------------------------------------

TEST(NetFrame, RoundTripSingle)
{
    const std::string msg = "{\"type\":\"hello\"}";
    const std::string wire = encodeFrame(msg);
    EXPECT_EQ(wire.size(), msg.size() + 4);

    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    std::vector<std::string> frames;
    EXPECT_EQ(decodeAll(dec, &frames), "");
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0], msg);
    EXPECT_EQ(dec.pendingBytes(), 0u);
}

TEST(NetFrame, RoundTripManyCoalesced)
{
    // Several frames arriving in one TCP segment must all come out.
    std::string wire;
    std::vector<std::string> sent;
    for (int i = 0; i < 20; ++i) {
        sent.push_back("payload-" + std::to_string(i) +
                       std::string(static_cast<std::size_t>(i) * 17,
                                   'x'));
        wire += encodeFrame(sent.back());
    }
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    std::vector<std::string> got;
    EXPECT_EQ(decodeAll(dec, &got), "");
    EXPECT_EQ(got, sent);
}

TEST(NetFrame, RoundTripByteAtATime)
{
    // Worst-case fragmentation: one byte per feed().
    const std::string msg(300, 'z');
    const std::string wire = encodeFrame(msg);
    FrameDecoder dec;
    std::vector<std::string> got;
    for (char c : wire) {
        dec.feed(&c, 1);
        decodeAll(dec, &got);
        EXPECT_FALSE(dec.failed());
    }
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], msg);
}

TEST(NetFrame, IncompleteFrameNeedsMore)
{
    const std::string wire = encodeFrame("abcdef");
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size() - 1); // hold back the last byte
    std::string payload;
    EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::NeedMore);
    EXPECT_FALSE(dec.failed());
    dec.feed(wire.data() + wire.size() - 1, 1);
    EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::Frame);
    EXPECT_EQ(payload, "abcdef");
}

// --- Fail-closed on malformed input -----------------------------------

TEST(NetFrame, ZeroLengthFrameIsError)
{
    const char zeros[4] = {0, 0, 0, 0};
    FrameDecoder dec;
    dec.feed(zeros, 4);
    std::string payload;
    EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::Error);
    EXPECT_TRUE(dec.failed());
    EXPECT_NE(dec.error().find("zero-length"), std::string::npos);
}

TEST(NetFrame, OversizedFrameIsError)
{
    // Length prefix far beyond the cap: the decoder must refuse
    // without ever allocating the claimed amount.
    const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
    FrameDecoder dec(1 << 20);
    dec.feed(reinterpret_cast<const char *>(huge), 4);
    std::string payload;
    EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::Error);
    EXPECT_TRUE(dec.failed());
}

TEST(NetFrame, ErrorIsSticky)
{
    const char zeros[4] = {0, 0, 0, 0};
    FrameDecoder dec;
    dec.feed(zeros, 4);
    std::string payload;
    EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::Error);
    // A valid frame after the violation must not resurrect the
    // stream: framing is unrecoverable once desynced.
    const std::string wire = encodeFrame("ok");
    dec.feed(wire.data(), wire.size());
    EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::Error);
}

TEST(NetFrame, PayloadAtCapIsAccepted)
{
    FrameDecoder dec(64);
    const std::string msg(64, 'a');
    const std::string wire = encodeFrame(msg);
    dec.feed(wire.data(), wire.size());
    std::string payload;
    EXPECT_EQ(dec.next(&payload), FrameDecoder::Status::Frame);
    EXPECT_EQ(payload, msg);

    FrameDecoder dec2(64);
    const std::string over = encodeFrame(std::string(65, 'a'));
    dec2.feed(over.data(), over.size());
    EXPECT_EQ(dec2.next(&payload), FrameDecoder::Status::Error);
}

// --- Fuzz -------------------------------------------------------------

TEST(NetFrame, FuzzRandomGarbageNeverCrashes)
{
    // Arbitrary bytes must always resolve to frames, NeedMore, or a
    // sticky error — never a crash or unbounded allocation.
    Rng rng(0xfeedface);
    for (int round = 0; round < 200; ++round) {
        FrameDecoder dec(4096);
        std::string buf;
        const std::size_t len = 1 + rng.below(512);
        for (std::size_t i = 0; i < len; ++i)
            buf.push_back(static_cast<char>(rng.below(256)));
        std::size_t pos = 0;
        while (pos < buf.size()) {
            const std::size_t chunk =
                std::min<std::size_t>(1 + rng.below(64),
                                      buf.size() - pos);
            dec.feed(buf.data() + pos, chunk);
            pos += chunk;
            std::string payload;
            while (dec.next(&payload) == FrameDecoder::Status::Frame)
                EXPECT_LE(payload.size(), 4096u);
            if (dec.failed())
                break;
        }
    }
}

TEST(NetFrame, FuzzValidStreamRandomSplits)
{
    // A valid frame stream chopped at random boundaries must always
    // reassemble to exactly the sent frames.
    Rng rng(42);
    for (int round = 0; round < 50; ++round) {
        std::string wire;
        std::vector<std::string> sent;
        const std::size_t n = 1 + rng.below(10);
        for (std::size_t i = 0; i < n; ++i) {
            std::string msg;
            const std::size_t len = rng.below(200) + 1;
            for (std::size_t b = 0; b < len; ++b)
                msg.push_back(static_cast<char>(rng.below(256)));
            sent.push_back(msg);
            wire += encodeFrame(msg);
        }
        FrameDecoder dec;
        std::vector<std::string> got;
        std::size_t pos = 0;
        while (pos < wire.size()) {
            const std::size_t chunk =
                std::min<std::size_t>(1 + rng.below(40),
                                      wire.size() - pos);
            dec.feed(wire.data() + pos, chunk);
            pos += chunk;
            decodeAll(dec, &got);
            ASSERT_FALSE(dec.failed());
        }
        EXPECT_EQ(got, sent);
    }
}

// --- Wire-fault spec parsing ------------------------------------------

TEST(NetFault, ParseValidSpecs)
{
    WireFault f;
    std::string err;
    ASSERT_TRUE(parseWireFault("drop:7", &f, &err));
    EXPECT_EQ(f.kind, WireFault::Kind::Drop);
    EXPECT_EQ(f.seed, 7u);
    EXPECT_DOUBLE_EQ(f.rate, 0.25);

    ASSERT_TRUE(parseWireFault("truncate:123:0.5", &f, &err));
    EXPECT_EQ(f.kind, WireFault::Kind::Truncate);
    EXPECT_EQ(f.seed, 123u);
    EXPECT_DOUBLE_EQ(f.rate, 0.5);

    ASSERT_TRUE(parseWireFault("dup:0:1", &f, &err));
    EXPECT_EQ(f.kind, WireFault::Kind::Dup);
    ASSERT_TRUE(parseWireFault("delay:9", &f, &err));
    EXPECT_EQ(f.kind, WireFault::Kind::Delay);
}

TEST(NetFault, ParseRejectsMalformedSpecs)
{
    WireFault f;
    std::string err;
    EXPECT_FALSE(parseWireFault("drop", &f, &err));
    EXPECT_FALSE(parseWireFault("explode:1", &f, &err));
    EXPECT_FALSE(parseWireFault("drop:", &f, &err));
    EXPECT_FALSE(parseWireFault("drop:abc", &f, &err));
    EXPECT_FALSE(parseWireFault("drop:1:2.0", &f, &err));
    EXPECT_FALSE(parseWireFault("drop:1:-0.1", &f, &err));
    EXPECT_FALSE(parseWireFault("drop:1:x", &f, &err));
    EXPECT_NE(err.find("wire-fault"), std::string::npos);
}

// --- Fault injector ---------------------------------------------------

TEST(NetFault, FirstFrameAlwaysFaultedWhenGuaranteed)
{
    WireFault f;
    f.kind = WireFault::Kind::Drop;
    f.seed = 99;
    f.rate = 0.0; // dice never fire; only the guarantee can
    FaultInjector inj(f);
    EXPECT_EQ(inj.decide(), FaultInjector::Action::Drop);
    EXPECT_EQ(inj.applied(), 1u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(inj.decide(), FaultInjector::Action::Pass);
    EXPECT_EQ(inj.applied(), 1u);
}

TEST(NetFault, NoGuaranteeMeansPureBernoulli)
{
    WireFault f;
    f.kind = WireFault::Kind::Truncate;
    f.seed = 5;
    f.rate = 0.0;
    f.guaranteeFirst = false; // a reconnection's injector
    FaultInjector inj(f);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(inj.decide(), FaultInjector::Action::Pass);
    EXPECT_EQ(inj.applied(), 0u);
}

TEST(NetFault, SameSeedSameDecisions)
{
    WireFault f;
    f.kind = WireFault::Kind::Dup;
    f.seed = 1234;
    f.rate = 0.4;
    FaultInjector a(f), b(f);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.decide(), b.decide());
    EXPECT_EQ(a.applied(), b.applied());
    EXPECT_GT(a.applied(), 1u); // rate 0.4 over 200 frames must fire
}

TEST(NetFault, TruncatedSizeBounds)
{
    WireFault f;
    f.kind = WireFault::Kind::Truncate;
    f.seed = 3;
    FaultInjector inj(f);
    for (std::size_t size : {2u, 3u, 10u, 1000u}) {
        for (int i = 0; i < 100; ++i) {
            const std::size_t keep = inj.truncatedSize(size);
            EXPECT_GE(keep, 1u);
            EXPECT_LT(keep, size);
        }
    }
    EXPECT_EQ(inj.truncatedSize(1), 1u);
}

TEST(NetFault, DisabledInjectorPassesEverything)
{
    FaultInjector inj;
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(inj.decide(), FaultInjector::Action::Pass);
    EXPECT_FALSE(inj.enabled());
    EXPECT_EQ(inj.applied(), 0u);
}
