/** @file Unit tests for the workload generators and profiles. */

#include <gtest/gtest.h>

#include <set>

#include "workload/generators.hh"
#include "workload/trace.hh"

using namespace tsoper;

TEST(Profiles, AllTwentyOneBenchmarksPresent)
{
    const auto names = benchmarkNames();
    EXPECT_EQ(names.size(), 21u);
    std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), 21u);
    for (const char *expected :
         {"barnes", "cholesky", "fft", "lu_ncb", "ocean_cp", "radiosity",
          "radix", "raytrace", "volrend", "water", "blackscholes",
          "bodytrack", "canneal", "dedup", "ferret", "fluidanimate",
          "freqmine", "streamcluster", "swaptions", "vips", "x264"}) {
        EXPECT_TRUE(unique.count(expected)) << expected;
    }
}

TEST(Profiles, UnknownNameIsFatal)
{
    EXPECT_THROW(profileByName("quake3"), std::runtime_error);
}

class GeneratorTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GeneratorTest, ProducesWellFormedWorkload)
{
    const Workload w = generateByName(GetParam(), 8, 1, 0.2);
    EXPECT_EQ(w.perCore.size(), 8u);
    for (const Trace &t : w.perCore)
        EXPECT_GT(t.size(), 50u);
    std::string error;
    EXPECT_TRUE(validateWorkload(w, &error)) << error;
}

TEST_P(GeneratorTest, DeterministicForSameSeed)
{
    const Workload a = generateByName(GetParam(), 4, 7, 0.1);
    const Workload b = generateByName(GetParam(), 4, 7, 0.1);
    ASSERT_EQ(a.perCore.size(), b.perCore.size());
    for (std::size_t c = 0; c < a.perCore.size(); ++c) {
        ASSERT_EQ(a.perCore[c].size(), b.perCore[c].size());
        for (std::size_t i = 0; i < a.perCore[c].size(); ++i) {
            EXPECT_EQ(a.perCore[c][i].type, b.perCore[c][i].type);
            EXPECT_EQ(a.perCore[c][i].addr, b.perCore[c][i].addr);
        }
    }
}

TEST_P(GeneratorTest, DifferentSeedsDiffer)
{
    const Workload a = generateByName(GetParam(), 4, 1, 0.1);
    const Workload b = generateByName(GetParam(), 4, 2, 0.1);
    bool differs = false;
    for (std::size_t c = 0; c < a.perCore.size() && !differs; ++c) {
        if (a.perCore[c].size() != b.perCore[c].size()) {
            differs = true;
            break;
        }
        for (std::size_t i = 0; i < a.perCore[c].size(); ++i) {
            if (a.perCore[c][i].addr != b.perCore[c][i].addr) {
                differs = true;
                break;
            }
        }
    }
    EXPECT_TRUE(differs);
}

TEST_P(GeneratorTest, AddressesStayInDesignatedRegions)
{
    const Workload w = generateByName(GetParam(), 8, 3, 0.1);
    for (std::size_t c = 0; c < w.perCore.size(); ++c) {
        for (const TraceOp &op : w.perCore[c]) {
            if (op.type != OpType::Load && op.type != OpType::Store)
                continue;
            const bool inPrivate =
                op.addr >= layout::privateAddr(static_cast<CoreId>(c), 0) &&
                op.addr < layout::privateAddr(static_cast<CoreId>(c) + 1, 0);
            const bool inShared = op.addr >= layout::sharedBase &&
                                  op.addr < layout::lockBase;
            ASSERT_TRUE(inPrivate || inShared)
                << "core " << c << " touches foreign address " << std::hex
                << op.addr;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, GeneratorTest,
                         ::testing::ValuesIn(benchmarkNames()),
                         [](const auto &info) { return info.param; });

TEST(WorkloadValidation, CatchesUnbalancedLocks)
{
    Workload w;
    w.perCore.resize(1);
    w.perCore[0].push_back({OpType::LockAcq, layout::lockAddr(0), 0});
    std::string error;
    EXPECT_FALSE(validateWorkload(w, &error));
    EXPECT_NE(error.find("lock"), std::string::npos);
}

TEST(WorkloadValidation, CatchesBarrierMismatch)
{
    Workload w;
    w.perCore.resize(2);
    w.perCore[0].push_back({OpType::Barrier, layout::barrierAddr(0), 0});
    // Core 1 never arrives.
    std::string error;
    EXPECT_FALSE(validateWorkload(w, &error));
}

TEST(WorkloadStats, TotalsAreConsistent)
{
    const Workload w = generateByName("radix", 8, 1, 0.2);
    EXPECT_GT(w.totalStores(), 0u);
    EXPECT_GT(w.totalOps(), w.totalStores());
}

TEST(WorkloadScale, ScaleGrowsTraces)
{
    const Workload small = generateByName("fft", 4, 1, 0.1);
    const Workload large = generateByName("fft", 4, 1, 0.5);
    EXPECT_GT(large.totalOps(), small.totalOps());
}
