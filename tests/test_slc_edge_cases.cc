/**
 * @file
 * SLC corner cases beyond the basic protocol tests: stale-copy
 * re-linking, eviction-buffer revival, blocked re-accesses waking on
 * persist, three-core version chains with interleaved readers, and
 * zombie-entry teardown under a tiny directory.
 */

#include <gtest/gtest.h>

#include "coherence/slc.hh"
#include "mem/llc.hh"
#include "mem/nvm.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace tsoper;

namespace
{

/** Hooks that emulate the TSOPER engine's keep/member policies with
 *  test-controlled membership. */
class MemberHooks : public ProtocolHooks
{
  public:
    bool dropsInvalidDirty() const override { return false; }

    bool
    lineInUnpersistedAg(CoreId core, LineAddr line) const override
    {
        return members.count(key(core, line)) != 0;
    }

    bool
    lineInFrozenAg(CoreId core, LineAddr line) const override
    {
        return frozen.count(key(core, line)) != 0;
    }

    void
    onNodeRelinked(CoreId core, LineAddr line, Cycle) override
    {
        relinks.emplace_back(core, line);
    }

    static std::uint64_t
    key(CoreId c, LineAddr l)
    {
        return (static_cast<std::uint64_t>(c) << 52) ^ l;
    }

    std::set<std::uint64_t> members;
    std::set<std::uint64_t> frozen;
    std::vector<std::pair<CoreId, LineAddr>> relinks;
};

struct SlcEdgeFixture : public ::testing::Test
{
    SlcEdgeFixture()
        : mesh(cfg, stats), nvm(cfg, eq, stats), llc(cfg, nvm, stats),
          slc(cfg, eq, mesh, llc, nvm, stats)
    {
        slc.setHooks(&hooks);
    }

    void
    store(CoreId c, Addr a, StoreId id)
    {
        bool done = false;
        slc.store(c, a, id, [&](Cycle) { done = true; });
        eq.runUntil([&] { return done; });
        ASSERT_TRUE(done);
    }

    StoreId
    load(CoreId c, Addr a)
    {
        StoreId v = invalidStore;
        bool done = false;
        slc.load(c, a, [&](Cycle, StoreId val) {
            v = val;
            done = true;
        });
        eq.runUntil([&] { return done; });
        EXPECT_TRUE(done);
        return v;
    }

    SystemConfig cfg;
    EventQueue eq;
    StatsRegistry stats;
    Mesh mesh;
    Nvm nvm;
    Llc llc;
    MemberHooks hooks;
    SlcProtocol slc;
};

constexpr Addr kAddr = 0x5000'0000;
const LineAddr kLine = lineOf(kAddr);

} // namespace

TEST_F(SlcEdgeFixture, StaleCleanCopySplicesOnReload)
{
    // Core 1 reads, then core 0 writes twice (invalidating core 1's
    // clean copy non-destructively is not needed — it's droppable), and
    // core 1 reloads: the stale node is spliced and re-created.
    store(0, kAddr, makeStoreId(0, 0));
    slc.persistComplete(0, kLine, eq.now());
    load(1, kAddr);
    store(0, kAddr, makeStoreId(0, 1)); // Invalidates core 1's copy.
    EXPECT_EQ(load(1, kAddr), makeStoreId(0, 1));
    EXPECT_TRUE(slc.nodeValid(1, kLine));
}

TEST_F(SlcEdgeFixture, InvalidCleanMemberRelinksOnReload)
{
    // Core 1's clean copy is an AG member when invalidated: a reload
    // must keep the dependence by re-linking at the head (not stall).
    store(0, kAddr, makeStoreId(0, 0));
    load(1, kAddr); // Clean copy at core 1.
    hooks.members.insert(MemberHooks::key(1, kLine));
    store(2, kAddr, makeStoreId(2, 0)); // Invalidates 0 and 1.
    EXPECT_FALSE(slc.nodeValid(1, kLine)); // Kept linked (member).
    EXPECT_EQ(load(1, kAddr), makeStoreId(2, 0));
    ASSERT_EQ(hooks.relinks.size(), 1u);
    EXPECT_EQ(hooks.relinks[0].first, 1);
    EXPECT_TRUE(slc.nodeValid(1, kLine));
}

TEST_F(SlcEdgeFixture, FrozenMemberReaccessWaitsForRelease)
{
    store(0, kAddr, makeStoreId(0, 0));
    load(1, kAddr);
    hooks.members.insert(MemberHooks::key(1, kLine));
    hooks.frozen.insert(MemberHooks::key(1, kLine));
    store(2, kAddr, makeStoreId(2, 0)); // Invalidates core 1's member.
    // Core 1 reloads: must wait (frozen membership).
    bool done = false;
    StoreId v = invalidStore;
    slc.load(1, kAddr, [&](Cycle, StoreId val) {
        v = val;
        done = true;
    });
    eq.run();
    EXPECT_FALSE(done);
    // The AG retires: membership clears, clean member released.
    hooks.frozen.clear();
    hooks.members.clear();
    slc.releaseCleanMember(1, kLine, eq.now());
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(v, makeStoreId(2, 0));
}

TEST_F(SlcEdgeFixture, PendingDirtyReaccessWakesOnPersist)
{
    store(0, kAddr, makeStoreId(0, 0));
    store(1, kAddr, makeStoreId(1, 0)); // Core 0's version pending.
    bool done = false;
    slc.load(0, kAddr, [&](Cycle, StoreId) { done = true; });
    eq.run();
    EXPECT_FALSE(done); // Blocked on own pending version.
    slc.persistComplete(0, kLine, eq.now());
    eq.run();
    EXPECT_TRUE(done);
}

TEST_F(SlcEdgeFixture, EvictedDirtyHeadStillServesRemoteReaders)
{
    SystemConfig tinyCfg = cfg;
    tinyCfg.privSets = 1;
    tinyCfg.privWays = 1;
    SlcProtocol tiny(tinyCfg, eq, mesh, llc, nvm, stats);
    tiny.setHooks(&hooks);
    auto tinyStore = [&](CoreId c, Addr a, StoreId id) {
        bool done = false;
        tiny.store(c, a, id, [&](Cycle) { done = true; });
        eq.runUntil([&] { return done; });
    };
    tinyStore(0, 0x1000, makeStoreId(0, 0));
    hooks.members.insert(MemberHooks::key(0, lineOf(0x1000)));
    hooks.frozen.insert(MemberHooks::key(0, lineOf(0x1000)));
    tinyStore(0, 0x2000, makeStoreId(0, 1)); // Evicts line 0x1000.
    EXPECT_EQ(tiny.evictionBufferOccupancy(0), 1u);
    // A remote reader still gets the evicted version's data.
    bool done = false;
    StoreId v = invalidStore;
    tiny.load(3, 0x1000, [&](Cycle, StoreId val) {
        v = val;
        done = true;
    });
    eq.runUntil([&] { return done; });
    EXPECT_EQ(v, makeStoreId(0, 0));
    // Persisting the evicted version empties the buffer.
    hooks.frozen.clear();
    hooks.members.clear();
    tiny.persistComplete(0, lineOf(0x1000), eq.now());
    EXPECT_EQ(tiny.evictionBufferOccupancy(0), 0u);
}

TEST_F(SlcEdgeFixture, FourCoreVersionChainPersistsInOrder)
{
    // W0 -> R1 -> W2 -> R3: list holds two versions + two readers;
    // persists must go v0 then v2, with readers passing the token.
    // R1's copy is an AG member (as a real read of dirty data would
    // be), so W2's invalidation keeps it linked.
    store(0, kAddr, makeStoreId(0, 0));
    load(1, kAddr);
    hooks.members.insert(MemberHooks::key(1, kLine));
    store(2, kAddr, makeStoreId(2, 0));
    load(3, kAddr);
    EXPECT_EQ(slc.listLength(kLine), 4u);
    EXPECT_TRUE(slc.nodeIsPersistTail(0, kLine));
    EXPECT_FALSE(slc.nodeIsPersistTail(2, kLine));
    slc.persistComplete(0, kLine, eq.now());
    EXPECT_FALSE(slc.hasNode(0, kLine)); // Invalid version unlinked.
    // R1's invalid clean member still sits below W2 but carries no
    // persist obligation: W2 is already a persist tail.
    EXPECT_TRUE(slc.hasNode(1, kLine));
    EXPECT_TRUE(slc.nodeIsPersistTail(2, kLine));
    slc.persistComplete(2, kLine, eq.now());
    // Core 2 stays as a valid clean sharer; the LLC holds v2.
    EXPECT_TRUE(slc.nodeValid(2, kLine));
    EXPECT_FALSE(slc.nodeDirty(2, kLine));
    EXPECT_EQ(llc.lookup(kLine)[wordOf(kAddr)], makeStoreId(2, 0));
}

TEST_F(SlcEdgeFixture, WordsAccumulateAcrossVersions)
{
    // Different writers touch different words; every version carries
    // the full line image forward.
    store(0, kAddr, makeStoreId(0, 0));
    store(1, kAddr + 8, makeStoreId(1, 0));
    store(2, kAddr + 16, makeStoreId(2, 0));
    const LineWords &words = slc.nodeWords(2, kLine);
    EXPECT_EQ(words[0], makeStoreId(0, 0));
    EXPECT_EQ(words[1], makeStoreId(1, 0));
    EXPECT_EQ(words[2], makeStoreId(2, 0));
}

TEST_F(SlcEdgeFixture, TinyDirectoryZombieBlocksThenRecovers)
{
    SystemConfig dirCfg = cfg;
    dirCfg.dirEntriesPerBank = 8; // One set of 8 ways per bank.
    SlcProtocol dirSlc(dirCfg, eq, mesh, llc, nvm, stats);
    dirSlc.setHooks(&hooks);
    auto dstore = [&](CoreId c, Addr a, StoreId id) {
        bool done = false;
        dirSlc.store(c, a, id, [&](Cycle) { done = true; });
        eq.runUntil([&] { return done; });
        return done;
    };
    // Fill one directory set (same bank, distinct tags), then one more
    // to force an entry eviction.  With no memberships, clean/dirty
    // teardown resolves immediately under hooks that... keep dirty:
    // make them droppable for this test by using default hooks.
    ProtocolHooks plain;
    dirSlc.setHooks(&plain);
    for (unsigned i = 0; i < 10; ++i) {
        const Addr a = 0x5000'0000 + i * 8 * lineBytes; // Same bank 0.
        EXPECT_TRUE(dstore(0, a, makeStoreId(0, i)));
    }
    EXPECT_GT(stats.get("dir.evictions"), 0u);
    // Victim lines remain readable with current data (via the LLC).
    bool done = false;
    StoreId v = invalidStore;
    dirSlc.load(5, 0x5000'0000, [&](Cycle, StoreId val) {
        v = val;
        done = true;
    });
    eq.runUntil([&] { return done; });
    EXPECT_EQ(v, makeStoreId(0, 0));
}
