/** @file Unit tests for the NVM / memory-controller model. */

#include <gtest/gtest.h>

#include "mem/nvm.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace tsoper;

namespace
{

LineWords
wordsWith(unsigned w, StoreId id)
{
    LineWords words = zeroLine();
    words[w] = id;
    return words;
}

} // namespace

TEST(Nvm, RankMappingUsesLowLineBits)
{
    EventQueue eq;
    StatsRegistry stats;
    SystemConfig cfg;
    Nvm nvm(cfg, eq, stats);
    EXPECT_EQ(nvm.rankOf(0), 0u);
    EXPECT_EQ(nvm.rankOf(7), 7u);
    EXPECT_EQ(nvm.rankOf(8), 0u);
}

TEST(Nvm, WriteBecomesDurableAtCompletion)
{
    EventQueue eq;
    StatsRegistry stats;
    SystemConfig cfg;
    Nvm nvm(cfg, eq, stats);
    const StoreId id = makeStoreId(1, 5);
    const Cycle done = nvm.write(42, wordsWith(0, id), 100);
    EXPECT_EQ(done, 100 + cfg.nvmWriteLatency);
    eq.run(done - 1);
    EXPECT_EQ(nvm.durable(42)[0], invalidStore); // Not yet durable.
    eq.run(done);
    EXPECT_EQ(nvm.durable(42)[0], id);
}

TEST(Nvm, SameRankWritesPipelineAtOccupancy)
{
    EventQueue eq;
    StatsRegistry stats;
    SystemConfig cfg;
    Nvm nvm(cfg, eq, stats);
    const Cycle a = nvm.write(8, zeroLine(), 0);  // rank 0
    const Cycle b = nvm.write(16, zeroLine(), 0); // rank 0 again
    // Full service latency, but the rank accepts a new burst after the
    // occupancy window — completions stay ordered.
    EXPECT_EQ(a, cfg.nvmWriteLatency);
    EXPECT_EQ(b, cfg.nvmWriteOccupancy + cfg.nvmWriteLatency);
    EXPECT_GT(b, a);
}

TEST(Nvm, DifferentRanksProceedInParallel)
{
    EventQueue eq;
    StatsRegistry stats;
    SystemConfig cfg;
    Nvm nvm(cfg, eq, stats);
    const Cycle a = nvm.write(0, zeroLine(), 0);
    const Cycle b = nvm.write(1, zeroLine(), 0);
    EXPECT_EQ(a, b);
}

TEST(Nvm, SameAddressFifoOrder)
{
    EventQueue eq;
    StatsRegistry stats;
    SystemConfig cfg;
    Nvm nvm(cfg, eq, stats);
    const StoreId v1 = makeStoreId(0, 0);
    const StoreId v2 = makeStoreId(0, 1);
    nvm.write(5, wordsWith(3, v1), 0);
    nvm.write(5, wordsWith(3, v2), 0);
    eq.run();
    EXPECT_EQ(nvm.durable(5)[3], v2);
}

TEST(Nvm, MergePreservesOtherWords)
{
    EventQueue eq;
    StatsRegistry stats;
    SystemConfig cfg;
    Nvm nvm(cfg, eq, stats);
    nvm.write(5, wordsWith(0, makeStoreId(0, 0)), 0);
    nvm.write(5, wordsWith(1, makeStoreId(0, 1)), 0);
    eq.run();
    EXPECT_EQ(nvm.durable(5)[0], makeStoreId(0, 0));
    EXPECT_EQ(nvm.durable(5)[1], makeStoreId(0, 1));
}

TEST(Nvm, ReadTimingUsesReadLatency)
{
    EventQueue eq;
    StatsRegistry stats;
    SystemConfig cfg;
    Nvm nvm(cfg, eq, stats);
    EXPECT_EQ(nvm.read(3, 10), 10 + cfg.nvmReadLatency);
}

TEST(Nvm, WriteCallbackFires)
{
    EventQueue eq;
    StatsRegistry stats;
    SystemConfig cfg;
    Nvm nvm(cfg, eq, stats);
    Cycle fired = 0;
    const Cycle done =
        nvm.write(9, zeroLine(), 0, [&](Cycle at) { fired = at; });
    eq.run();
    EXPECT_EQ(fired, done);
    EXPECT_EQ(stats.get("nvm.writes_done"), 1u);
}

TEST(Nvm, CrashBeforeCompletionLosesWrite)
{
    EventQueue eq;
    StatsRegistry stats;
    SystemConfig cfg;
    Nvm nvm(cfg, eq, stats);
    const Cycle done = nvm.write(77, wordsWith(0, makeStoreId(0, 0)), 0);
    eq.run(done - 1); // Crash: stop the event loop early.
    EXPECT_EQ(nvm.durable(77)[0], invalidStore);
    EXPECT_EQ(stats.get("nvm.writes_issued"), 1u);
    EXPECT_EQ(stats.get("nvm.writes_done"), 0u);
}
