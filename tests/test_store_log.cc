/** @file Unit tests for the execution store log. */

#include <gtest/gtest.h>

#include "sim/store_log.hh"

using namespace tsoper;

TEST(StoreLog, RecordsCommitsInProgramOrder)
{
    StoreLog log(2);
    log.storeIssued(0, makeStoreId(0, 0));
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    log.storeIssued(0, makeStoreId(0, 1));
    log.storeCommitted(0, 0x108, makeStoreId(0, 1));
    EXPECT_EQ(log.storesOf(0), 2u);
    EXPECT_EQ(log.totalStores(), 2u);
    const auto *rec = log.find(makeStoreId(0, 1));
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->addr, 0x108u);
}

TEST(StoreLog, OutOfOrderCommitPanics)
{
    StoreLog log(1);
    EXPECT_THROW(log.storeCommitted(0, 0x0, makeStoreId(0, 5)),
                 std::logic_error);
}

TEST(StoreLog, WordChainTracksSameWordOrder)
{
    StoreLog log(2);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    log.storeCommitted(1, 0x100, makeStoreId(1, 0));
    log.storeCommitted(0, 0x108, makeStoreId(0, 1));
    const auto &chain = log.wordChain(0x100);
    ASSERT_EQ(chain.size(), 2u);
    EXPECT_EQ(chain[0], makeStoreId(0, 0));
    EXPECT_EQ(chain[1], makeStoreId(1, 0));
    EXPECT_EQ(log.find(makeStoreId(1, 0))->wordChainIndex, 1u);
}

TEST(StoreLog, RfAttachesToNextIssuedStore)
{
    StoreLog log(2);
    // Core 1 wrote; core 0 loads it, then stores.
    log.storeCommitted(1, 0x200, makeStoreId(1, 0));
    log.loadObserved(0, 0x200, makeStoreId(1, 0));
    log.storeIssued(0, makeStoreId(0, 0));
    log.storeCommitted(0, 0x300, makeStoreId(0, 0));
    const auto *rec = log.find(makeStoreId(0, 0));
    ASSERT_NE(rec, nullptr);
    ASSERT_EQ(rec->rfPreds.size(), 1u);
    EXPECT_EQ(rec->rfPreds[0], makeStoreId(1, 0));
}

TEST(StoreLog, OwnStoreObservationIsNotRf)
{
    StoreLog log(1);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    log.loadObserved(0, 0x100, makeStoreId(0, 0));
    log.storeIssued(0, makeStoreId(0, 1));
    log.storeCommitted(0, 0x108, makeStoreId(0, 1));
    EXPECT_TRUE(log.find(makeStoreId(0, 1))->rfPreds.empty());
}

TEST(StoreLog, RfDoesNotLeakToLaterStores)
{
    StoreLog log(2);
    log.storeCommitted(1, 0x200, makeStoreId(1, 0));
    log.loadObserved(0, 0x200, makeStoreId(1, 0));
    log.storeIssued(0, makeStoreId(0, 0));
    log.storeCommitted(0, 0x300, makeStoreId(0, 0));
    log.storeIssued(0, makeStoreId(0, 1));
    log.storeCommitted(0, 0x308, makeStoreId(0, 1));
    EXPECT_TRUE(log.find(makeStoreId(0, 1))->rfPreds.empty());
}

TEST(StoreLog, SfrBoundariesStampStores)
{
    StoreLog log(1);
    log.storeCommitted(0, 0x0, makeStoreId(0, 0));
    log.sfrBoundary(0);
    log.storeCommitted(0, 0x8, makeStoreId(0, 1));
    EXPECT_EQ(log.find(makeStoreId(0, 0))->sfrIndex, 0u);
    EXPECT_EQ(log.find(makeStoreId(0, 1))->sfrIndex, 1u);
}

TEST(StoreLog, DisabledLogRecordsNothing)
{
    StoreLog log(1);
    log.setEnabled(false);
    log.storeCommitted(0, 0x0, makeStoreId(0, 0));
    EXPECT_EQ(log.totalStores(), 0u);
    EXPECT_EQ(log.find(makeStoreId(0, 0)), nullptr);
}

TEST(StoreLog, UntouchedLoadIsIgnored)
{
    StoreLog log(1);
    log.loadObserved(0, 0x100, invalidStore);
    log.storeIssued(0, makeStoreId(0, 0));
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    EXPECT_TRUE(log.find(makeStoreId(0, 0))->rfPreds.empty());
}
