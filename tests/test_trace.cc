/**
 * @file
 * Tests for the structured trace bus (sim/trace.hh), its stock sinks
 * (sim/trace_sink.hh), and the end-to-end --trace-out/--audit-persists
 * plumbing through campaign::runOne.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "campaign/run_request.hh"
#include "sim/json.hh"
#include "sim/log.hh"
#include "sim/trace.hh"
#include "sim/trace_sink.hh"

using namespace tsoper;

namespace
{

/** Every test leaves the process-global bus exactly as it found it. */
struct TraceFixture : public ::testing::Test
{
    ~TraceFixture() override
    {
        trace::disableFlightRecorder();
        trace::setCategories("");
    }
};

std::string
tmpPath(const char *stem)
{
    return testing::TempDir() + stem;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

trace::Record
persistRec(trace::Event e, CoreId core, Cycle cycle, std::uint64_t id,
           std::uint64_t a = 0)
{
    return trace::Record{e, core, cycle, cycle, id, a, 0};
}

} // namespace

// --------------------------------------------------------------------
// Bus basics: category mask, csv round-trip, flight ring.
// --------------------------------------------------------------------

TEST_F(TraceFixture, CategoriesCsvRoundTrip)
{
    trace::setCategories("slc,ag");
    EXPECT_TRUE(trace::on(trace::Category::Ag));
    EXPECT_TRUE(trace::on(trace::Category::Slc));
    EXPECT_FALSE(trace::on(trace::Category::Persist));
    EXPECT_EQ(trace::categoriesCsv(), "ag,slc"); // canonical enum order
    trace::setCategories("");
    EXPECT_EQ(trace::categoriesCsv(), "");
}

TEST_F(TraceFixture, UnknownCategoryIsFatal)
{
    try {
        trace::setCategories("ag,bogus");
        FAIL() << "unknown category must be fatal";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("bogus"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("valid:"),
                  std::string::npos);
    }
}

TEST_F(TraceFixture, FlightRecorderKeepsLastN)
{
    trace::setCategories("persist");
    trace::enableFlightRecorder(4);
    for (Cycle c = 1; c <= 6; ++c)
        trace::instant(trace::Event::PersistCommit, 0, c * 10,
                       /*line=*/c);
    const std::string dump = trace::flightRecorderDump();
    EXPECT_NE(dump.find("last 4 trace records"), std::string::npos);
    // Records 1 and 2 were overwritten; 3..6 survive, oldest first.
    EXPECT_EQ(dump.find("id=0x1 "), std::string::npos);
    EXPECT_EQ(dump.find("id=0x2 "), std::string::npos);
    const std::size_t p3 = dump.find("id=0x3");
    const std::size_t p6 = dump.find("id=0x6");
    EXPECT_NE(p3, std::string::npos);
    EXPECT_NE(p6, std::string::npos);
    EXPECT_LT(p3, p6);
    trace::disableFlightRecorder();
    EXPECT_EQ(trace::flightRecorderDump(), "");
}

TEST_F(TraceFixture, PanicCarriesFlightRecorderTail)
{
    trace::setCategories("persist");
    trace::enableFlightRecorder(8);
    trace::instant(trace::Event::PersistCommit, 1, 77, /*line=*/0xabc);
    try {
        tsoper_panic("boom in test");
        FAIL() << "panic must throw";
    } catch (const std::logic_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("boom in test"), std::string::npos);
        EXPECT_NE(what.find("flight recorder"), std::string::npos);
        EXPECT_NE(what.find("id=0xabc"), std::string::npos);
    }
}

TEST_F(TraceFixture, DisabledCategoryCostsNothing)
{
    trace::setCategories("");
    trace::enableFlightRecorder(4);
    trace::instant(trace::Event::PersistCommit, 0, 5, 1);
    EXPECT_EQ(trace::flightRecorderDump(), "");
}

TEST_F(TraceFixture, GroupTagSeparatesCores)
{
    EXPECT_NE(trace::groupTag(0, 1), trace::groupTag(1, 1));
    EXPECT_EQ(trace::groupTag(2, 7) & 0xffffffffffffull, 7ull);
}

// --------------------------------------------------------------------
// AuditSink: each check must reject its violation and pass clean logs.
// --------------------------------------------------------------------

TEST(AuditSink, CleanLogPasses)
{
    trace::AuditSink audit;
    const std::uint64_t g1 = trace::groupTag(0, 1);
    const std::uint64_t g2 = trace::groupTag(0, 2);
    audit.record(persistRec(trace::Event::PersistIssue, 0, 10, 0xA0, g1));
    audit.record(persistRec(trace::Event::PersistCommit, 0, 20, 0xA0, g1));
    audit.record(persistRec(trace::Event::GroupDurable, 0, 20, g1, 1));
    audit.record(persistRec(trace::Event::PersistIssue, 0, 30, 0xA0, g2));
    audit.record(persistRec(trace::Event::PersistCommit, 0, 40, 0xA0, g2));
    audit.record(persistRec(trace::Event::GroupDurable, 0, 40, g2, 1));
    audit.record(persistRec(trace::Event::PbEdge, 0, 15, g1, g2));
    audit.setStrictCoreFifo(true);
    const trace::AuditResult res = audit.check();
    EXPECT_TRUE(res.ok) << res.detail;
    EXPECT_EQ(res.commits, 2u);
    EXPECT_EQ(res.groups, 2u);
    EXPECT_EQ(res.edges, 1u);
}

TEST(AuditSink, SameAddressFifoViolation)
{
    trace::AuditSink audit;
    const std::uint64_t g1 = trace::groupTag(0, 1);
    const std::uint64_t g2 = trace::groupTag(1, 1);
    audit.record(persistRec(trace::Event::PersistIssue, 0, 10, 0xA0, g1));
    audit.record(persistRec(trace::Event::PersistIssue, 1, 12, 0xA0, g2));
    // g2's commit arrives first: the oldest pending issue is g1's.
    audit.record(persistRec(trace::Event::PersistCommit, 1, 20, 0xA0, g2));
    const trace::AuditResult res = audit.check();
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.detail.find("same-address FIFO violated"),
              std::string::npos);
}

TEST(AuditSink, GroupAtomicityViolation)
{
    trace::AuditSink audit;
    const std::uint64_t g1 = trace::groupTag(0, 1);
    audit.record(persistRec(trace::Event::PersistIssue, 0, 10, 0xA0, g1));
    audit.record(persistRec(trace::Event::PersistIssue, 0, 10, 0xB0, g1));
    audit.record(persistRec(trace::Event::PersistCommit, 0, 20, 0xA0, g1));
    audit.record(persistRec(trace::Event::GroupDurable, 0, 20, g1, 2));
    // A member committing after its group is sealed breaks atomicity.
    audit.record(persistRec(trace::Event::PersistCommit, 0, 30, 0xB0, g1));
    const trace::AuditResult res = audit.check();
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.detail.find("group atomicity violated"),
              std::string::npos);
}

TEST(AuditSink, PbEdgeViolation)
{
    trace::AuditSink audit;
    const std::uint64_t g1 = trace::groupTag(0, 1);
    const std::uint64_t g2 = trace::groupTag(1, 1);
    audit.record(persistRec(trace::Event::PbEdge, 0, 5, g1, g2));
    audit.record(persistRec(trace::Event::GroupDurable, 1, 10, g2, 1));
    audit.record(persistRec(trace::Event::GroupDurable, 0, 20, g1, 1));
    const trace::AuditResult res = audit.check();
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.detail.find("pb-edge violated"), std::string::npos);
}

TEST(AuditSink, PbEdgeWithPendingGroupIsLegal)
{
    // A destination group the run never finished persisting cannot
    // violate the edge (crash runs truncate the log here).
    trace::AuditSink audit;
    const std::uint64_t g1 = trace::groupTag(0, 1);
    const std::uint64_t g2 = trace::groupTag(1, 1);
    audit.record(persistRec(trace::Event::PbEdge, 0, 5, g1, g2));
    audit.record(persistRec(trace::Event::GroupDurable, 0, 20, g1, 1));
    EXPECT_TRUE(audit.check().ok);
}

TEST(AuditSink, PerCoreFifoViolation)
{
    trace::AuditSink audit;
    audit.setStrictCoreFifo(true);
    audit.record(persistRec(trace::Event::GroupDurable, 0, 10,
                            trace::groupTag(0, 2), 1));
    audit.record(persistRec(trace::Event::GroupDurable, 0, 20,
                            trace::groupTag(0, 1), 1));
    const trace::AuditResult res = audit.check();
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.detail.find("per-core group FIFO violated"),
              std::string::npos);
}

TEST(AuditSink, InjectedReorderFaultIsCaught)
{
    trace::AuditSink audit;
    const std::uint64_t g1 = trace::groupTag(0, 1);
    const std::uint64_t g2 = trace::groupTag(1, 1);
    audit.record(persistRec(trace::Event::PbEdge, 0, 5, g1, g2));
    audit.record(persistRec(trace::Event::GroupDurable, 0, 10, g1, 1));
    audit.record(persistRec(trace::Event::GroupDurable, 1, 30, g2, 1));
    EXPECT_TRUE(audit.check().ok);
    ASSERT_TRUE(audit.injectReorderFault(/*seed=*/7));
    const trace::AuditResult res = audit.check();
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.detail.find("pb-edge violated"), std::string::npos);
}

// --------------------------------------------------------------------
// End-to-end: runOne with tracing — the same path as
//   tsoper_sim --trace-out=F --audit-persists.
// --------------------------------------------------------------------

namespace
{

campaign::RunRequest
smallRun(const std::string &engine)
{
    campaign::RunRequest r;
    r.engine = engine;
    r.bench = "dedup";
    r.scale = 0.05;
    r.seed = 1;
    r.cores = 4;
    return r;
}

} // namespace

TEST_F(TraceFixture, PerfettoExportParsesAndHasSpansAndCounters)
{
    const std::string path = tmpPath("trace_out.json");
    campaign::RunRequest r = smallRun("tsoper");
    r.traceCategories = "ag,agb,persist";
    r.traceOut = path;
    r.auditPersists = true;
    const campaign::RunResult res = campaign::runOne(r);
    ASSERT_EQ(res.status, campaign::RunStatus::Ok) << res.detail;
    ASSERT_TRUE(res.persistAudited);
    EXPECT_TRUE(res.persistAuditOk) << res.persistAuditDetail;
    EXPECT_GT(res.persistCommits, 0u);
    EXPECT_GT(res.persistGroups, 0u);

    Json doc;
    std::string err;
    ASSERT_TRUE(Json::parse(slurp(path), &doc, &err)) << err;
    const Json *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    bool sawAgSpan = false, sawOccupancy = false, sawCoreTrack = false;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const Json &e = events->at(i);
        const Json *ph = e.find("ph");
        const Json *name = e.find("name");
        if (!ph || !name)
            continue;
        if (ph->asString() == "X" && name->asString() == "ag_retired") {
            sawAgSpan = true;
            EXPECT_NE(e.find("dur"), nullptr);
        }
        if (ph->asString() == "C" &&
            name->asString() == "agb_occupancy")
            sawOccupancy = true;
        if (ph->asString() == "M" && name->asString() == "thread_name")
            sawCoreTrack = true;
    }
    EXPECT_TRUE(sawAgSpan);
    EXPECT_TRUE(sawOccupancy);
    EXPECT_TRUE(sawCoreTrack);
    std::remove(path.c_str());
}

TEST_F(TraceFixture, PersistAuditPassesOnEveryEngine)
{
    for (const char *engine :
         {"tsoper", "stw", "bsp", "bsp-slc", "bsp-slc-agb", "hwrp"}) {
        campaign::RunRequest r = smallRun(engine);
        r.auditPersists = true;
        const campaign::RunResult res = campaign::runOne(r);
        ASSERT_EQ(res.status, campaign::RunStatus::Ok)
            << engine << ": " << res.detail;
        ASSERT_TRUE(res.persistAudited) << engine;
        EXPECT_TRUE(res.persistAuditOk)
            << engine << ": " << res.persistAuditDetail;
        EXPECT_GT(res.persistCommits, 0u) << engine;
        EXPECT_GT(res.persistGroups, 0u) << engine;
    }
}

TEST_F(TraceFixture, BspEmptyEpochsCarryPersistOrderForward)
{
    // radix at scale 0.1 closes BSP epochs whose every line was
    // already flushed by eviction (pending == 0): such epochs have no
    // durable point, and their persist-before deps must transfer to
    // the core's next epoch instead of evaporating.  This shape once
    // slipped a cross-core reorder past the audit.
    campaign::RunRequest r = smallRun("bsp");
    r.bench = "radix";
    r.scale = 0.1;
    r.cores = 8;
    r.auditPersists = true;
    const campaign::RunResult res = campaign::runOne(r);
    ASSERT_EQ(res.status, campaign::RunStatus::Ok) << res.detail;
    ASSERT_TRUE(res.persistAudited);
    EXPECT_TRUE(res.persistAuditOk) << res.persistAuditDetail;
    EXPECT_GT(res.persistEdges, 0u);
}

TEST_F(TraceFixture, InjectedFaultFailsTheRun)
{
    // ocean_cp shares lines across cores, so the log carries pb-edges
    // for the preferred (pinpointed) corruption.
    campaign::RunRequest r = smallRun("tsoper");
    r.bench = "ocean_cp";
    r.auditPersists = true;
    r.auditFault = "reorder";
    const campaign::RunResult res = campaign::runOne(r);
    EXPECT_EQ(res.status, campaign::RunStatus::CheckFailed);
    ASSERT_TRUE(res.persistAudited);
    EXPECT_FALSE(res.persistAuditOk);
    EXPECT_NE(res.detail.find("violated"), std::string::npos)
        << res.detail;
}

TEST_F(TraceFixture, CrashRunKeepsTraceAndPrefixAudit)
{
    const std::string path = tmpPath("trace_crash.json");
    campaign::RunRequest r = smallRun("tsoper");
    r.crashAt = 0.5;
    r.check = true;
    r.traceOut = path;
    r.auditPersists = true;
    const campaign::RunResult res = campaign::runOne(r);
    ASSERT_EQ(res.status, campaign::RunStatus::Ok) << res.detail;
    EXPECT_TRUE(res.persistAudited);
    EXPECT_TRUE(res.persistAuditOk) << res.persistAuditDetail;
    Json doc;
    std::string err;
    ASSERT_TRUE(Json::parse(slurp(path), &doc, &err)) << err;
    std::remove(path.c_str());
}

TEST_F(TraceFixture, RunRequestTraceFieldsRoundTripJson)
{
    campaign::RunRequest r = smallRun("stw");
    r.traceCategories = "ag,persist";
    r.traceOut = "/tmp/x.json";
    r.auditPersists = true;
    r.auditFault = "reorder";
    r.flightRecorder = 64;
    const campaign::RunRequest back =
        campaign::runRequestFromJson(r.toJson());
    EXPECT_EQ(back, r);
    // A request without trace fields must serialize without the keys
    // (journal compatibility with pre-tracing reports).
    const campaign::RunRequest plain = smallRun("stw");
    EXPECT_EQ(plain.toJson().find("trace_categories"), nullptr);
    EXPECT_EQ(plain.toJson().find("audit_persists"), nullptr);
}
