/**
 * @file
 * Directed random tester for the SLC protocol (in the spirit of gem5's
 * Ruby Random Tester): a stream of random loads, stores, and persists
 * over a small, contended address set, with structural invariants
 * checked after every quiesce point and a functional oracle checked on
 * every load.
 *
 * Invariants checked:
 *  - list well-formedness: fwd/bwd are mutual, exactly one head per
 *    non-empty list, no cycles;
 *  - SWMR: at most one valid dirty version per line;
 *  - validity: all valid nodes precede all invalid ones (the valid
 *    prefix ends at the newest writer);
 *  - oracle: every load returns the globally last-committed value of
 *    its word;
 *  - liveness: draining all persists empties every pending version.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "coherence/slc.hh"
#include "mem/llc.hh"
#include "mem/nvm.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace tsoper;

namespace
{

/** TSOPER-flavoured hooks: versions persist, nothing is dropped. */
class TesterHooks : public ProtocolHooks
{
  public:
    bool dropsInvalidDirty() const override { return false; }
};

class SlcRandomTest : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    SlcRandomTest()
        : mesh(cfg, stats), nvm(cfg, eq, stats), llc(cfg, nvm, stats),
          slc(cfg, eq, mesh, llc, nvm, stats)
    {
        slc.setHooks(&hooks);
    }

    static constexpr unsigned kCores = 8;
    static constexpr unsigned kLines = 6; // Small set: heavy contention.

    Addr
    addrOf(unsigned lineIdx, unsigned word)
    {
        return 0x5000'0000 + lineIdx * lineBytes + word * wordBytes;
    }

    /** Walk a line's list head-to-tail; asserts structural sanity. */
    std::vector<CoreId>
    walkList(LineAddr line)
    {
        std::vector<CoreId> order;
        // Find the head: the unique node with bwd == invalid.
        CoreId head = invalidCore;
        for (CoreId c = 0; c < static_cast<CoreId>(kCores); ++c) {
            if (slc.hasNode(c, line) && slc.nodeBwd(c, line) == invalidCore) {
                EXPECT_EQ(head, invalidCore)
                    << "two heads on line " << line;
                head = c;
            }
        }
        CoreId cur = head;
        unsigned steps = 0;
        while (cur != invalidCore) {
            order.push_back(cur);
            EXPECT_LE(++steps, kCores) << "cycle in sharing list";
            if (steps > kCores)
                break;
            const CoreId next = slc.nodeFwd(cur, line);
            if (next != invalidCore) {
                EXPECT_EQ(slc.nodeBwd(next, line), cur)
                    << "fwd/bwd mismatch";
            }
            cur = next;
        }
        // Every existing node must be reachable from the head.
        unsigned existing = 0;
        for (CoreId c = 0; c < static_cast<CoreId>(kCores); ++c)
            existing += slc.hasNode(c, line) ? 1 : 0;
        EXPECT_EQ(existing, order.size()) << "orphan node on " << line;
        return order;
    }

    void
    checkInvariants()
    {
        for (unsigned l = 0; l < kLines; ++l) {
            const LineAddr line = lineOf(addrOf(l, 0));
            const auto order = walkList(line);
            unsigned validDirty = 0;
            bool seenInvalid = false;
            for (CoreId c : order) {
                const bool valid = slc.nodeValid(c, line);
                const bool dirty = slc.nodeDirty(c, line);
                if (valid && dirty)
                    ++validDirty;
                if (!valid)
                    seenInvalid = true;
                else
                    EXPECT_FALSE(seenInvalid)
                        << "valid node below an invalid one on " << line;
            }
            EXPECT_LE(validDirty, 1u) << "SWMR violated on " << line;
        }
    }

    /** Persist pending versions in legal (persist-tail) order. */
    void
    drainPersists()
    {
        bool progress = true;
        while (progress) {
            progress = false;
            for (unsigned l = 0; l < kLines; ++l) {
                const LineAddr line = lineOf(addrOf(l, 0));
                for (CoreId c = 0; c < static_cast<CoreId>(kCores); ++c) {
                    if (slc.hasNode(c, line) && slc.nodeDirty(c, line) &&
                        slc.nodeIsPersistTail(c, line)) {
                        slc.persistComplete(c, line, eq.now());
                        progress = true;
                    }
                }
            }
        }
    }

    /** Run until no request is outstanding, persisting pending
     *  versions as needed (a load on a pending local version waits for
     *  its persist, which only this tester can perform). */
    void
    quiesce(unsigned &outstanding)
    {
        for (int guard = 0; guard < 1000 && outstanding > 0; ++guard) {
            eq.runUntil([&] { return outstanding == 0; });
            if (outstanding > 0)
                drainPersists();
        }
        ASSERT_EQ(outstanding, 0u) << "requests wedged";
    }

    SystemConfig cfg;
    EventQueue eq;
    StatsRegistry stats;
    Mesh mesh;
    Nvm nvm;
    Llc llc;
    TesterHooks hooks;
    SlcProtocol slc;
};

} // namespace

TEST_P(SlcRandomTest, RandomTrafficKeepsInvariants)
{
    Rng rng(GetParam());
    std::map<Addr, StoreId> oracle; // Last committed value per word.
    std::uint64_t seq[kCores] = {};
    unsigned outstanding = 0;

    for (unsigned step = 0; step < 1500; ++step) {
        const auto core = static_cast<CoreId>(rng.below(kCores));
        const unsigned lineIdx = static_cast<unsigned>(rng.below(kLines));
        const Addr addr =
            addrOf(lineIdx, static_cast<unsigned>(rng.below(4)));
        const unsigned action = static_cast<unsigned>(rng.below(10));
        if (action < 4) {
            // Load, checked against the oracle at its commit point.
            ++outstanding;
            slc.load(core, addr, [&, addr](Cycle, StoreId v) {
                const auto it = oracle.find(addr);
                const StoreId expect =
                    it == oracle.end() ? invalidStore : it->second;
                EXPECT_EQ(v, expect) << "stale load at " << std::hex
                                     << addr;
                --outstanding;
            });
        } else if (action < 8) {
            // Stores quiesce first so the oracle's order matches the
            // serialization order (concurrent requests from different
            // cores may arrive at the directory out of submission
            // order), and so a pending local version cannot stall the
            // tester (nothing persists concurrently).
            quiesce(outstanding);
            const LineAddr line = lineOf(addr);
            if (slc.hasNode(core, line) && !slc.nodeValid(core, line))
                continue; // Would stall on the pending version.
            const StoreId id = makeStoreId(core, seq[core]++);
            ++outstanding;
            slc.store(core, addr, id, [&](Cycle) { --outstanding; });
            oracle[addr] = id;
            // Quiesce again: a load submitted next could otherwise
            // legally serialize before this store (it has not reached
            // the directory yet), which the oracle cannot model.
            quiesce(outstanding);
        } else {
            // Persist a random pending tail, token-passing included.
            const LineAddr line = lineOf(addrOf(lineIdx, 0));
            for (CoreId c = 0; c < static_cast<CoreId>(kCores); ++c) {
                if (slc.hasNode(c, line) && slc.nodeDirty(c, line) &&
                    slc.nodeIsPersistTail(c, line)) {
                    slc.persistComplete(c, line, eq.now());
                    break;
                }
            }
        }
        if (step % 50 == 49) {
            quiesce(outstanding);
            checkInvariants();
        }
    }
    quiesce(outstanding);
    checkInvariants();

    // Liveness: draining persists leaves no dirty version anywhere, and
    // the LLC ends with the newest value of every touched word.
    drainPersists();
    for (unsigned l = 0; l < kLines; ++l) {
        const LineAddr line = lineOf(addrOf(l, 0));
        for (CoreId c = 0; c < static_cast<CoreId>(kCores); ++c) {
            if (slc.hasNode(c, line)) {
                EXPECT_FALSE(slc.nodeDirty(c, line));
            }
        }
    }
    for (const auto &[addr, id] : oracle) {
        // The current version lives either in some valid node or in the
        // LLC; a fresh read from any core must return it.
        bool done = false;
        StoreId v = invalidStore;
        slc.load(0, addr, [&](Cycle, StoreId val) {
            v = val;
            done = true;
        });
        eq.runUntil([&] { return done; });
        EXPECT_EQ(v, id) << "final value mismatch at " << std::hex
                         << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlcRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                         [](const auto &info) {
                             return "seed" + std::to_string(info.param);
                         });
