/**
 * @file
 * Unit tests for the crash-consistency checker against hand-built
 * execution logs — including negative cases proving the checker
 * actually catches TSO-cut violations (torn atomic groups, missing
 * program-order prefixes, reads-from violations, word-order breaks).
 */

#include <gtest/gtest.h>

#include "core/crash_checker.hh"
#include "sim/store_log.hh"

using namespace tsoper;

namespace
{

using Durable = std::unordered_map<LineAddr, LineWords>;

void
putDurable(Durable &d, Addr addr, StoreId id)
{
    auto [it, fresh] = d.try_emplace(lineOf(addr), zeroLine());
    (void)fresh;
    it->second[wordOf(addr)] = id;
}

} // namespace

TEST(CrashChecker, EmptyDurableStateIsLegal)
{
    StoreLog log(2);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    const auto res =
        checkDurableState({}, log, PersistModel::StrictTso, 2);
    EXPECT_TRUE(res.ok) << res.detail;
    EXPECT_EQ(res.requiredStores, 0u);
}

TEST(CrashChecker, CompletePrefixIsLegal)
{
    StoreLog log(1);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    log.storeCommitted(0, 0x108, makeStoreId(0, 1));
    log.storeCommitted(0, 0x110, makeStoreId(0, 2)); // Not durable: fine.
    Durable d;
    putDurable(d, 0x100, makeStoreId(0, 0));
    putDurable(d, 0x108, makeStoreId(0, 1));
    const auto res =
        checkDurableState(d, log, PersistModel::StrictTso, 1);
    EXPECT_TRUE(res.ok) << res.detail;
    EXPECT_EQ(res.requiredStores, 2u);
}

TEST(CrashChecker, MissingProgramOrderPredecessorFails)
{
    StoreLog log(1);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    log.storeCommitted(0, 0x108, makeStoreId(0, 1));
    Durable d;
    putDurable(d, 0x108, makeStoreId(0, 1)); // Later store durable...
    // ...but the earlier one is not: TSO violation.
    const auto res =
        checkDurableState(d, log, PersistModel::StrictTso, 1);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.detail.find("core0#0"), std::string::npos);
}

TEST(CrashChecker, CoalescedSameWordIsLegal)
{
    // Two stores to one word; only the final value persists (coalesced).
    StoreLog log(1);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    log.storeCommitted(0, 0x100, makeStoreId(0, 1));
    Durable d;
    putDurable(d, 0x100, makeStoreId(0, 1));
    const auto res =
        checkDurableState(d, log, PersistModel::StrictTso, 1);
    EXPECT_TRUE(res.ok) << res.detail;
}

TEST(CrashChecker, StaleWordAfterNewerRequirementFails)
{
    // Fig. 2 of the paper: st a; st b; st c with a,c in one line and b
    // in another.  Persisting the a/c line (with c) but not b violates
    // TSO.
    StoreLog log(1);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0)); // a
    log.storeCommitted(0, 0x140, makeStoreId(0, 1)); // b (other line)
    log.storeCommitted(0, 0x108, makeStoreId(0, 2)); // c (line of a)
    Durable d;
    putDurable(d, 0x100, makeStoreId(0, 0));
    putDurable(d, 0x108, makeStoreId(0, 2)); // c durable, b missing.
    const auto res =
        checkDurableState(d, log, PersistModel::StrictTso, 1);
    EXPECT_FALSE(res.ok);
}

TEST(CrashChecker, AtomicGroupPersistOfFig2IsLegal)
{
    // Persisting both lines together (the atomic group) is fine.
    StoreLog log(1);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    log.storeCommitted(0, 0x140, makeStoreId(0, 1));
    log.storeCommitted(0, 0x108, makeStoreId(0, 2));
    Durable d;
    putDurable(d, 0x100, makeStoreId(0, 0));
    putDurable(d, 0x140, makeStoreId(0, 1));
    putDurable(d, 0x108, makeStoreId(0, 2));
    EXPECT_TRUE(
        checkDurableState(d, log, PersistModel::StrictTso, 1).ok);
}

TEST(CrashChecker, ReadsFromViolationFails)
{
    // Core 1 reads core 0's store, then stores; if core 1's store is
    // durable, core 0's must be.
    StoreLog log(2);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    log.loadObserved(1, 0x100, makeStoreId(0, 0));
    log.storeIssued(1, makeStoreId(1, 0));
    log.storeCommitted(1, 0x200, makeStoreId(1, 0));
    Durable d;
    putDurable(d, 0x200, makeStoreId(1, 0));
    const auto res =
        checkDurableState(d, log, PersistModel::StrictTso, 2);
    EXPECT_FALSE(res.ok);
    // Adding the observed store legalizes the cut.
    putDurable(d, 0x100, makeStoreId(0, 0));
    EXPECT_TRUE(
        checkDurableState(d, log, PersistModel::StrictTso, 2).ok);
}

TEST(CrashChecker, SameWordOrderViolationFails)
{
    // Cross-core same-word order: the durable value must not be older
    // than a required store.
    StoreLog log(2);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0)); // v1
    log.storeCommitted(1, 0x100, makeStoreId(1, 0)); // v2 (later)
    log.storeCommitted(1, 0x108, makeStoreId(1, 1));
    Durable d;
    // v2's core requires v2, but the word durably holds v1.
    putDurable(d, 0x100, makeStoreId(0, 0));
    putDurable(d, 0x108, makeStoreId(1, 1));
    const auto res =
        checkDurableState(d, log, PersistModel::StrictTso, 2);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.detail.find("newer than the durable value"),
              std::string::npos);
}

TEST(CrashChecker, UnknownDurableStoreFails)
{
    StoreLog log(1);
    Durable d;
    putDurable(d, 0x100, makeStoreId(0, 99));
    const auto res =
        checkDurableState(d, log, PersistModel::StrictTso, 1);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.detail.find("unknown store"), std::string::npos);
}

TEST(CrashChecker, DurableValueAtWrongWordFails)
{
    StoreLog log(1);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    Durable d;
    putDurable(d, 0x108, makeStoreId(0, 0)); // Wrong word.
    const auto res =
        checkDurableState(d, log, PersistModel::StrictTso, 1);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.detail.find("wrong"), std::string::npos);
}

TEST(CrashChecker, RelaxedAllowsIntraSfrReordering)
{
    StoreLog log(1);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    log.storeCommitted(0, 0x140, makeStoreId(0, 1));
    Durable d;
    putDurable(d, 0x140, makeStoreId(0, 1)); // Second without first:
    // illegal under strict TSO, legal within one SFR under relaxed.
    EXPECT_FALSE(
        checkDurableState(d, log, PersistModel::StrictTso, 1).ok);
    EXPECT_TRUE(
        checkDurableState(d, log, PersistModel::RelaxedSfr, 1).ok);
}

TEST(CrashChecker, RelaxedEnforcesOrderAcrossSfrs)
{
    StoreLog log(1);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    log.sfrBoundary(0);
    log.storeCommitted(0, 0x140, makeStoreId(0, 1));
    Durable d;
    putDurable(d, 0x140, makeStoreId(0, 1));
    const auto res =
        checkDurableState(d, log, PersistModel::RelaxedSfr, 1);
    EXPECT_FALSE(res.ok);
    putDurable(d, 0x100, makeStoreId(0, 0));
    EXPECT_TRUE(
        checkDurableState(d, log, PersistModel::RelaxedSfr, 1).ok);
}

TEST(CrashChecker, RelaxedKeepsSameWordOrder)
{
    StoreLog log(1);
    log.storeCommitted(0, 0x100, makeStoreId(0, 0));
    log.storeCommitted(0, 0x100, makeStoreId(0, 1));
    Durable d;
    putDurable(d, 0x100, makeStoreId(0, 0)); // Older value durable...
    // ...is fine as long as nothing requires the newer one.
    EXPECT_TRUE(
        checkDurableState(d, log, PersistModel::RelaxedSfr, 1).ok);
}
