/** @file Tests for the flag-gated debug tracing facility. */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "sim/debug.hh"

using namespace tsoper;

namespace
{

struct DebugFixture : public ::testing::Test
{
    DebugFixture() { debug::setStream(&out); }

    ~DebugFixture() override
    {
        debug::setFlags("");
        debug::setStream(nullptr);
    }

    std::ostringstream out;
};

} // namespace

TEST_F(DebugFixture, DisabledByDefault)
{
    debug::setFlags("");
    EXPECT_FALSE(debug::enabled(debug::Flag::Slc));
    TSOPER_TRACE(Slc, 10, "should not appear");
    EXPECT_TRUE(out.str().empty());
}

TEST_F(DebugFixture, SelectiveFlags)
{
    debug::setFlags("slc,agb");
    EXPECT_TRUE(debug::enabled(debug::Flag::Slc));
    EXPECT_TRUE(debug::enabled(debug::Flag::Agb));
    EXPECT_FALSE(debug::enabled(debug::Flag::Cpu));
    EXPECT_FALSE(debug::enabled(debug::Flag::Bsp));
}

TEST_F(DebugFixture, AllEnablesEverything)
{
    debug::setFlags("all");
    for (unsigned f = 0;
         f < static_cast<unsigned>(debug::Flag::NumFlags); ++f)
        EXPECT_TRUE(debug::enabled(static_cast<debug::Flag>(f)));
}

TEST_F(DebugFixture, TraceLineFormat)
{
    debug::setFlags("ag");
    TSOPER_TRACE(Ag, 1234, "core " << 3 << " froze AG#" << 7);
    const std::string line = out.str();
    EXPECT_NE(line.find("1234"), std::string::npos);
    EXPECT_NE(line.find("ag:"), std::string::npos);
    EXPECT_NE(line.find("core 3 froze AG#7"), std::string::npos);
}

TEST_F(DebugFixture, LazyMessageEvaluation)
{
    debug::setFlags("");
    int evaluations = 0;
    auto expensive = [&] {
        ++evaluations;
        return 42;
    };
    TSOPER_TRACE(Cpu, 0, "value " << expensive());
    EXPECT_EQ(evaluations, 0); // Message not built when disabled.
    debug::setFlags("cpu");
    TSOPER_TRACE(Cpu, 0, "value " << expensive());
    EXPECT_EQ(evaluations, 1);
}

TEST_F(DebugFixture, UnknownFlagIsFatal)
{
    debug::setFlags("mesi");
    try {
        debug::setFlags("slc,bogus");
        FAIL() << "unknown flag must be fatal";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("bogus"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("valid:"),
                  std::string::npos);
    }
    // The failed call must not have disturbed the active set.
    EXPECT_TRUE(debug::enabled(debug::Flag::Mesi));
    EXPECT_FALSE(debug::enabled(debug::Flag::Slc));
}

TEST_F(DebugFixture, FlagNamesRoundTrip)
{
    EXPECT_STREQ(debug::flagName(debug::Flag::Slc), "slc");
    EXPECT_STREQ(debug::flagName(debug::Flag::HwRp), "hwrp");
}

TEST_F(DebugFixture, FlagsCsvRoundTrip)
{
    debug::setFlags("agb,slc");
    EXPECT_EQ(debug::flagsCsv(), "slc,agb"); // canonical enum order
    debug::setFlags("");
    EXPECT_EQ(debug::flagsCsv(), "");
    const std::vector<std::string> names = debug::flagNames();
    ASSERT_EQ(names.size(),
              static_cast<std::size_t>(debug::Flag::NumFlags));
    for (unsigned f = 0; f < names.size(); ++f)
        EXPECT_EQ(names[f],
                  debug::flagName(static_cast<debug::Flag>(f)));
}
