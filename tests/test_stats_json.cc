/** @file Tests for the JSON document model and the stats exporter. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/json.hh"
#include "sim/stats_json.hh"

using namespace tsoper;

// --- Json value model -------------------------------------------------

TEST(Json, ScalarDumps)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(std::int64_t{-7}).dump(), "-7");
    EXPECT_EQ(Json(std::uint64_t{18446744073709551615ull}).dump(),
              "18446744073709551615");
    EXPECT_EQ(Json(0.5).dump(), "0.5");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(Json("a\"b\\c\n\t").dump(), "\"a\\\"b\\\\c\\n\\t\"");
    EXPECT_EQ(Json(std::string("\x01", 1)).dump(), "\"\\u0001\"");
}

TEST(Json, ObjectsKeepInsertionOrderAndReplaceInPlace)
{
    Json obj = Json::object();
    obj.set("z", Json(1)).set("a", Json(2)).set("z", Json(3));
    EXPECT_EQ(obj.dump(), "{\"z\":3,\"a\":2}");
    EXPECT_EQ(obj.size(), 2u);
    EXPECT_EQ((*obj.find("z")).asInt(), 3);
    EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, PrettyPrinting)
{
    Json obj = Json::object();
    obj.set("a", Json(1));
    Json arr = Json::array();
    arr.push(Json(2)).push(Json(3));
    obj.set("b", std::move(arr));
    EXPECT_EQ(obj.dump(2),
              "{\n  \"a\": 1,\n  \"b\": [\n    2,\n    3\n  ]\n}");
}

TEST(Json, ParseScalars)
{
    Json v;
    ASSERT_TRUE(Json::parse("null", &v));
    EXPECT_TRUE(v.isNull());
    ASSERT_TRUE(Json::parse(" true ", &v));
    EXPECT_TRUE(v.asBool());
    ASSERT_TRUE(Json::parse("-12", &v));
    EXPECT_EQ(v.asInt(), -12);
    ASSERT_TRUE(Json::parse("18446744073709551615", &v));
    EXPECT_EQ(v.asUint(), 18446744073709551615ull);
    ASSERT_TRUE(Json::parse("2.5e3", &v));
    EXPECT_DOUBLE_EQ(v.asDouble(), 2500.0);
    ASSERT_TRUE(Json::parse("\"a\\u0041b\"", &v));
    EXPECT_EQ(v.asString(), "aAb");
}

TEST(Json, ParseNested)
{
    Json v;
    ASSERT_TRUE(Json::parse(
        "{\"xs\": [1, 2, {\"y\": null}], \"ok\": false}", &v));
    ASSERT_TRUE(v.isObject());
    const Json &xs = v["xs"];
    ASSERT_EQ(xs.size(), 3u);
    EXPECT_EQ(xs.at(1).asInt(), 2);
    EXPECT_TRUE(xs.at(2)["y"].isNull());
    EXPECT_FALSE(v["ok"].asBool());
}

TEST(Json, ParseErrors)
{
    Json v;
    std::string err;
    EXPECT_FALSE(Json::parse("", &v, &err));
    EXPECT_FALSE(Json::parse("{", &v, &err));
    EXPECT_FALSE(Json::parse("[1,]", &v, &err));
    EXPECT_FALSE(Json::parse("tru", &v, &err));
    EXPECT_FALSE(Json::parse("1 2", &v, &err));
    EXPECT_FALSE(Json::parse("\"abc", &v, &err));
    EXPECT_NE(err.find("offset"), std::string::npos);
}

TEST(Json, RoundTripEquality)
{
    Json doc = Json::object();
    doc.set("name", Json("round trip"))
        .set("count", Json(std::uint64_t{1} << 60))
        .set("frac", Json(0.1));
    Json arr = Json::array();
    arr.push(Json(-1)).push(Json(true)).push(Json());
    doc.set("mix", std::move(arr));

    Json back;
    ASSERT_TRUE(Json::parse(doc.dump(), &back));
    EXPECT_EQ(back, doc);
    EXPECT_EQ(back.dump(), doc.dump());

    // Pretty and compact forms parse to the same document.
    Json pretty;
    ASSERT_TRUE(Json::parse(doc.dump(2), &pretty));
    EXPECT_EQ(pretty, doc);
}

TEST(Json, DoubleFormattingIsShortestRoundTrip)
{
    // 0.1 must not serialize as 0.1000000000000000055511...
    EXPECT_EQ(Json(0.1).dump(), "0.1");
    // A value needing all 17 digits survives.
    const double tricky = 0.12345678901234567;
    Json back;
    ASSERT_TRUE(Json::parse(Json(tricky).dump(), &back));
    EXPECT_EQ(back.asDouble(), tricky);
}

// --- Stats exporter ---------------------------------------------------

namespace
{

StatsRegistry
makeRegistry()
{
    StatsRegistry reg;
    reg.counter("sys.cycles").inc(123456789);
    reg.counter("slc.links").inc(17);
    reg.histogram("ag.size").add(1, 5);
    reg.histogram("ag.size").add(3, 2);
    reg.histogram("ag.size").add(80);
    reg.histogram("list.len").add(2, 9);
    reg.timeSeries("sfr.size").sample(100, 1.5);
    reg.timeSeries("sfr.size").sample(250, 4.0);
    return reg;
}

} // namespace

TEST(StatsJson, ExportSchema)
{
    const StatsRegistry reg = makeRegistry();
    const Json doc = statsToJson(reg);
    EXPECT_EQ(doc["counters"]["sys.cycles"].asUint(), 123456789u);
    const Json &ag = doc["histograms"]["ag.size"];
    EXPECT_EQ(ag["samples"].asUint(), 8u);
    EXPECT_EQ(ag["min"].asUint(), 1u);
    EXPECT_EQ(ag["max"].asUint(), 80u);
    ASSERT_EQ(ag["buckets"].size(), 3u);
    EXPECT_EQ(ag["buckets"].at(0).at(0).asUint(), 1u);
    EXPECT_EQ(ag["buckets"].at(0).at(1).asUint(), 5u);
    const Json &series = doc["series"]["sfr.size"];
    ASSERT_EQ(series.size(), 2u);
    EXPECT_EQ(series.at(1).at(0).asUint(), 250u);
    EXPECT_DOUBLE_EQ(series.at(1).at(1).asDouble(), 4.0);
}

TEST(StatsJson, RoundTripIsByteIdentical)
{
    const StatsRegistry reg = makeRegistry();
    const std::string text = statsJsonText(reg);

    Json doc;
    ASSERT_TRUE(Json::parse(text, &doc));
    StatsRegistry back;
    std::string err;
    ASSERT_TRUE(statsFromJson(doc, &back, &err)) << err;

    // Identical re-export and identical text dump.
    EXPECT_EQ(statsJsonText(back), text);
    std::ostringstream a, b;
    reg.dump(a);
    back.dump(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(StatsJson, ImportRejectsMalformedDocuments)
{
    StatsRegistry reg;
    std::string err;

    Json notObject = Json::array();
    EXPECT_FALSE(statsFromJson(notObject, &reg, &err));

    Json badCounter = Json::object();
    badCounter.set("counters",
                   Json::object().set("x", Json("not a number")));
    EXPECT_FALSE(statsFromJson(badCounter, &reg, &err));
    EXPECT_NE(err.find("x"), std::string::npos);

    // Sample-count mismatch (truncated bucket list) is caught.
    Json mismatch;
    ASSERT_TRUE(Json::parse(
        "{\"histograms\": {\"h\": {\"samples\": 5, "
        "\"buckets\": [[1, 2]]}}}",
        &mismatch));
    EXPECT_FALSE(statsFromJson(mismatch, &reg, &err));
    EXPECT_NE(err.find("mismatch"), std::string::npos);
}

TEST(StatsJson, EmptyRegistry)
{
    StatsRegistry reg;
    const Json doc = statsToJson(reg);
    EXPECT_EQ(doc.dump(),
              "{\"counters\":{},\"histograms\":{},\"series\":{}}");
    StatsRegistry back;
    EXPECT_TRUE(statsFromJson(doc, &back, nullptr));
}
