/** @file Unit tests for per-core atomic-group bookkeeping. */

#include <gtest/gtest.h>

#include "core/atomic_group.hh"
#include "sim/stats.hh"

using namespace tsoper;

namespace
{

struct AgFixture : public ::testing::Test
{
    StatsRegistry stats;
    AgManager mgr{0, /*maxLines=*/4, stats.histogram("size"),
                  stats.histogram("dirty")};
};

} // namespace

TEST_F(AgFixture, StoresAccumulateInOpenGroup)
{
    EXPECT_FALSE(mgr.addDirty(1, true));
    EXPECT_FALSE(mgr.addDirty(2, true));
    AtomicGroup *ag = mgr.oldest();
    ASSERT_NE(ag, nullptr);
    EXPECT_FALSE(ag->frozen);
    EXPECT_EQ(ag->size(), 2u);
    EXPECT_EQ(ag->dirtyCount(), 2u);
    EXPECT_EQ(ag->unbuffered, 2u);
}

TEST_F(AgFixture, DuplicateStoreDoesNotGrow)
{
    mgr.addDirty(1, true);
    mgr.addDirty(1, true);
    EXPECT_EQ(mgr.oldest()->size(), 1u);
    EXPECT_EQ(mgr.oldest()->unbuffered, 1u);
}

TEST_F(AgFixture, CleanMemberUpgradesToDirty)
{
    mgr.addClean(9, true);
    EXPECT_EQ(mgr.oldest()->dirtyCount(), 0u);
    mgr.addDirty(9, true);
    EXPECT_EQ(mgr.oldest()->size(), 1u);
    EXPECT_EQ(mgr.oldest()->dirtyCount(), 1u);
    EXPECT_EQ(mgr.oldest()->unbuffered, 1u);
}

TEST_F(AgFixture, SizeCapFreezes)
{
    mgr.addDirty(1, true);
    mgr.addDirty(2, true);
    mgr.addDirty(3, true);
    EXPECT_TRUE(mgr.addDirty(4, true)); // 4th line hits the cap.
    EXPECT_TRUE(mgr.oldest()->frozen);
    EXPECT_EQ(mgr.oldest()->freezeReason, FreezeReason::SizeCap);
    EXPECT_EQ(stats.histogram("size").samples(), 1u);
}

TEST_F(AgFixture, NewGroupOpensAfterFreeze)
{
    mgr.addDirty(1, true);
    mgr.freezeOpen(FreezeReason::RemoteWrite);
    mgr.addDirty(2, true);
    EXPECT_EQ(mgr.queue().size(), 2u);
    EXPECT_TRUE(mgr.queue().front()->frozen);
    EXPECT_FALSE(mgr.queue().back()->frozen);
    EXPECT_TRUE(mgr.inFrozenGroup(1));
    EXPECT_FALSE(mgr.inFrozenGroup(2));
}

TEST_F(AgFixture, WaitingTailBlocksReadiness)
{
    mgr.addDirty(1, /*isTail=*/false);
    mgr.freezeOpen(FreezeReason::RemoteRead);
    EXPECT_FALSE(mgr.oldest()->readyToPersist());
    mgr.becameTail(1);
    EXPECT_TRUE(mgr.oldest()->readyToPersist());
}

TEST_F(AgFixture, FreezeOpenOnEmptyManagerIsNull)
{
    EXPECT_EQ(mgr.freezeOpen(FreezeReason::Marker), nullptr);
}

TEST_F(AgFixture, RetireReturnsCleanMembers)
{
    mgr.addDirty(1, true);
    mgr.addClean(2, true);
    mgr.freezeOpen(FreezeReason::RemoteWrite);
    AtomicGroup *ag = mgr.oldest();
    ag->unbuffered = 0; // Simulate buffering done.
    ag->granted = true;
    const auto clean = mgr.retireOldest();
    ASSERT_EQ(clean.size(), 1u);
    EXPECT_EQ(clean[0], 2u);
    EXPECT_TRUE(mgr.empty());
    EXPECT_FALSE(mgr.isMember(1));
    EXPECT_FALSE(mgr.isMember(2));
}

TEST_F(AgFixture, ReleaseBufferedLineEndsMembershipEarly)
{
    mgr.addDirty(1, true);
    mgr.freezeOpen(FreezeReason::Eviction);
    AtomicGroup *ag = mgr.oldest();
    EXPECT_TRUE(mgr.inFrozenGroup(1));
    mgr.releaseBufferedLine(*ag, 1);
    EXPECT_FALSE(mgr.inFrozenGroup(1));
    // A new store to the line lands in a fresh open AG.
    mgr.addDirty(1, true);
    EXPECT_EQ(mgr.queue().size(), 2u);
    // Retiring the old AG must not clobber the new membership.
    ag->unbuffered = 0;
    ag->granted = true;
    mgr.retireOldest();
    EXPECT_TRUE(mgr.isMember(1));
}

TEST_F(AgFixture, GroupIdsAreMonotone)
{
    mgr.addDirty(1, true);
    mgr.freezeOpen(FreezeReason::Marker);
    mgr.addDirty(2, true);
    EXPECT_LT(mgr.queue().front()->id, mgr.queue().back()->id);
}

TEST_F(AgFixture, DirtyReconcilesWaitingState)
{
    mgr.addClean(5, true); // Not waiting.
    mgr.addDirty(5, /*isTail=*/false); // Re-linked above dirty data.
    EXPECT_EQ(mgr.oldest()->waitingTail.count(5), 1u);
    mgr.addDirty(5, /*isTail=*/true);
    EXPECT_EQ(mgr.oldest()->waitingTail.count(5), 0u);
}
