/**
 * @file
 * Core-model and synchronization tests: TSO store-buffer behaviour
 * (forwarding, line-merge stalls, capacity stalls), in-order
 * completion, lock mutual exclusion / fairness, barrier rendezvous,
 * and the reads-from edges synchronization creates in the log.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/generators.hh"
#include "workload/trace.hh"

using namespace tsoper;

namespace
{

Workload
emptyWorkload(unsigned cores)
{
    Workload w;
    w.perCore.resize(cores);
    return w;
}

SystemConfig
baseCfg()
{
    SystemConfig cfg = makeConfig(EngineKind::None);
    cfg.recordStores = true;
    return cfg;
}

} // namespace

TEST(CpuTest, EmptyTraceFinishesImmediately)
{
    SystemConfig cfg = baseCfg();
    const Workload w = emptyWorkload(cfg.numCores);
    System sys(cfg, w);
    EXPECT_EQ(sys.run(), 0u);
    EXPECT_TRUE(sys.allFinished());
}

TEST(CpuTest, ComputeOpsBurnCycles)
{
    SystemConfig cfg = baseCfg();
    Workload w = emptyWorkload(cfg.numCores);
    for (int i = 0; i < 10; ++i)
        w.perCore[0].push_back({OpType::Compute, 0, 100});
    System sys(cfg, w);
    EXPECT_GE(sys.run(), 1000u);
    EXPECT_EQ(sys.stats().get("cpu.compute_cycles"), 1000u);
}

TEST(CpuTest, StoresRetireThroughTheBuffer)
{
    SystemConfig cfg = baseCfg();
    Workload w = emptyWorkload(cfg.numCores);
    for (unsigned i = 0; i < 10; ++i)
        w.perCore[0].push_back(
            {OpType::Store, layout::privateAddr(0, i), 0});
    System sys(cfg, w);
    sys.run();
    EXPECT_EQ(sys.stats().get("cpu.stores"), 10u);
    EXPECT_EQ(sys.storeLog().storesOf(0), 10u);
}

TEST(CpuTest, StoreBufferCapacityStalls)
{
    SystemConfig cfg = baseCfg();
    cfg.storeBufferEntries = 2;
    Workload w = emptyWorkload(cfg.numCores);
    // A burst of stores to distinct lines must exceed a 2-entry SB.
    for (unsigned i = 0; i < 32; ++i)
        w.perCore[0].push_back(
            {OpType::Store, layout::privateAddr(0, i * 8), 0});
    System sys(cfg, w);
    sys.run();
    EXPECT_GT(sys.stats().get("cpu.sb_full_stalls"), 0u);
}

TEST(CpuTest, LoadAfterStoreSameLineWaitsForDrain)
{
    SystemConfig cfg = baseCfg();
    Workload w = emptyWorkload(cfg.numCores);
    const Addr a = layout::privateAddr(0, 0);
    w.perCore[0].push_back({OpType::Store, a, 0});
    w.perCore[0].push_back({OpType::Load, a + 8, 0}); // Same line, other
                                                      // word: must wait.
    System sys(cfg, w);
    sys.run();
    EXPECT_EQ(sys.stats().get("cpu.sb_line_stalls"), 1u);
}

TEST(CpuTest, ForwardingServesSameWordWithoutStall)
{
    SystemConfig cfg = baseCfg();
    Workload w = emptyWorkload(cfg.numCores);
    const Addr a = layout::privateAddr(0, 0);
    w.perCore[0].push_back({OpType::Store, a, 0});
    w.perCore[0].push_back({OpType::Load, a, 0}); // Same word: forward.
    System sys(cfg, w);
    sys.run();
    EXPECT_EQ(sys.stats().get("cpu.sb_line_stalls"), 0u);
}

TEST(SyncTest, LockProvidesMutualExclusionOrder)
{
    // All cores increment under one lock; the rf chain through the lock
    // line must order all acquire loads behind prior releases — if the
    // coordinator or the RMW were broken, the run would deadlock or the
    // log would miss release->acquire edges.
    SystemConfig cfg = baseCfg();
    Workload w = emptyWorkload(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        for (int r = 0; r < 5; ++r) {
            w.perCore[c].push_back(
                {OpType::LockAcq, layout::lockAddr(0), 0});
            w.perCore[c].push_back({OpType::Store, 0x5000'0000, 0});
            w.perCore[c].push_back(
                {OpType::LockRel, layout::lockAddr(0), 0});
        }
    }
    w.numLocks = 1;
    System sys(cfg, w);
    sys.run();
    EXPECT_EQ(sys.stats().get("cpu.lock_acquires"), 5u * cfg.numCores);
    // Later acquirers observed earlier lock-line stores: rf edges exist.
    std::size_t rfEdges = 0;
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        const auto n = sys.storeLog().storesOf(static_cast<CoreId>(c));
        for (std::uint64_t q = 0; q < n; ++q) {
            const auto *rec =
                sys.storeLog().find(makeStoreId(static_cast<CoreId>(c),
                                                q));
            rfEdges += rec->rfPreds.size();
        }
    }
    EXPECT_GT(rfEdges, 0u);
}

TEST(SyncTest, BarrierSynchronizesAllCores)
{
    SystemConfig cfg = baseCfg();
    Workload w = emptyWorkload(cfg.numCores);
    // Core 0 computes long before the barrier; everyone must wait.
    w.perCore[0].push_back({OpType::Compute, 0, 5000});
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        w.perCore[c].push_back(
            {OpType::Barrier, layout::barrierAddr(0), 0});
        w.perCore[c].push_back(
            {OpType::Store, layout::privateAddr(c, 0), 0});
    }
    w.numBarriers = 1;
    System sys(cfg, w);
    const Cycle cycles = sys.run();
    EXPECT_GE(cycles, 5000u); // Nobody passes before core 0 arrives.
    EXPECT_EQ(sys.stats().get("cpu.barriers"), cfg.numCores);
}

TEST(SyncTest, BarrierReusableAcrossGenerations)
{
    SystemConfig cfg = baseCfg();
    Workload w = emptyWorkload(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        for (int g = 0; g < 4; ++g)
            w.perCore[c].push_back(
                {OpType::Barrier, layout::barrierAddr(0), 0});
    }
    w.numBarriers = 1;
    System sys(cfg, w);
    sys.run();
    EXPECT_TRUE(sys.allFinished());
    EXPECT_EQ(sys.stats().get("cpu.barriers"), 4u * cfg.numCores);
}

TEST(SyncTest, ContendedLocksAreHandedOverInQueueOrder)
{
    // One long-holding core, others queue: everyone eventually runs.
    SystemConfig cfg = baseCfg();
    Workload w = emptyWorkload(cfg.numCores);
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        w.perCore[c].push_back({OpType::LockAcq, layout::lockAddr(3), 3});
        w.perCore[c].push_back({OpType::Compute, 0, 200});
        w.perCore[c].push_back({OpType::LockRel, layout::lockAddr(3), 3});
    }
    w.numLocks = 4;
    System sys(cfg, w);
    const Cycle cycles = sys.run();
    // Strictly serialized critical sections: at least 8 x 200 cycles.
    EXPECT_GE(cycles, 1600u);
}

TEST(SyncTest, TsoValueVisibilityThroughLock)
{
    // Writer stores data then releases; reader acquires then loads:
    // the reader must observe the writer's value (recorded as rf).
    SystemConfig cfg = baseCfg();
    Workload w = emptyWorkload(cfg.numCores);
    const Addr data = 0x5000'0100;
    w.perCore[0].push_back({OpType::LockAcq, layout::lockAddr(0), 0});
    w.perCore[0].push_back({OpType::Store, data, 0});
    w.perCore[0].push_back({OpType::LockRel, layout::lockAddr(0), 0});
    w.perCore[1].push_back({OpType::Compute, 0, 2000}); // Acquire later.
    w.perCore[1].push_back({OpType::LockAcq, layout::lockAddr(0), 0});
    w.perCore[1].push_back({OpType::Load, data, 0});
    w.perCore[1].push_back({OpType::Store, data + 8, 0});
    w.perCore[1].push_back({OpType::LockRel, layout::lockAddr(0), 0});
    w.numLocks = 1;
    System sys(cfg, w);
    sys.run();
    // Core 1's data store carries an rf edge to core 0's data store.
    bool found = false;
    const auto n = sys.storeLog().storesOf(1);
    for (std::uint64_t q = 0; q < n && !found; ++q) {
        const auto *rec = sys.storeLog().find(makeStoreId(1, q));
        for (StoreId rf : rec->rfPreds)
            found |= (storeCore(rf) == 0 &&
                      sys.storeLog().find(rf)->addr == data);
    }
    EXPECT_TRUE(found);
}

TEST(SyncTest, MixedEnginesHandleSyncWorkloads)
{
    for (EngineKind e : {EngineKind::Tsoper, EngineKind::HwRp,
                         EngineKind::Bsp}) {
        SystemConfig cfg = makeConfig(e);
        const Workload w =
            generateByName("fluidanimate", cfg.numCores, 2, 0.03);
        System sys(cfg, w);
        EXPECT_GT(sys.run(), 0u) << toString(e);
    }
}
