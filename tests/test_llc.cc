/** @file Unit tests for the banked LLC. */

#include <gtest/gtest.h>

#include "mem/llc.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace tsoper;

namespace
{

struct LlcFixture
{
    EventQueue eq;
    StatsRegistry stats;
    SystemConfig cfg;
    Nvm nvm{cfg, eq, stats};
    Llc llc{cfg, nvm, stats};
};

LineWords
wordsWith(unsigned w, StoreId id)
{
    LineWords words = zeroLine();
    words[w] = id;
    return words;
}

} // namespace

TEST(Llc, InstallAndLookup)
{
    LlcFixture f;
    f.llc.install(10, wordsWith(2, makeStoreId(0, 0)), true, 0);
    ASSERT_TRUE(f.llc.contains(10));
    EXPECT_EQ(f.llc.lookup(10)[2], makeStoreId(0, 0));
}

TEST(Llc, MergeOnReinstall)
{
    LlcFixture f;
    f.llc.install(10, wordsWith(0, makeStoreId(0, 0)), true, 0);
    f.llc.install(10, wordsWith(1, makeStoreId(0, 1)), true, 0);
    EXPECT_EQ(f.llc.lookup(10)[0], makeStoreId(0, 0));
    EXPECT_EQ(f.llc.lookup(10)[1], makeStoreId(0, 1));
}

TEST(Llc, BankMapping)
{
    LlcFixture f;
    EXPECT_EQ(f.llc.bankOf(0), 0u);
    EXPECT_EQ(f.llc.bankOf(7), 7u);
    EXPECT_EQ(f.llc.bankOf(9), 1u);
}

TEST(Llc, AccessLatency)
{
    LlcFixture f;
    EXPECT_EQ(f.llc.access(0, 100), 100 + f.cfg.llcLatency);
}

TEST(Llc, BankContentionSerializes)
{
    LlcFixture f;
    const Cycle a = f.llc.access(0, 0);  // bank 0
    const Cycle b = f.llc.access(8, 0);  // bank 0
    const Cycle c = f.llc.access(1, 0);  // bank 1: unaffected
    EXPECT_GT(b, a);
    EXPECT_EQ(c, a);
}

TEST(Llc, DirtyEvictionWritesNvm)
{
    LlcFixture f;
    SystemConfig small = f.cfg;
    small.llcSets = 1;
    small.llcWays = 1;
    Llc tiny(small, f.nvm, f.stats);
    const StoreId id = makeStoreId(0, 7);
    tiny.install(0, wordsWith(0, id), true, 0);
    tiny.install(8, zeroLine(), false, 0); // Same bank+set: evicts line 0.
    f.eq.run();
    EXPECT_FALSE(tiny.contains(0));
    EXPECT_EQ(f.nvm.durable(0)[0], id);
    EXPECT_GE(f.stats.get("llc.dirty_evictions"), 1u);
}

TEST(Llc, CleanEvictionSkipsNvm)
{
    LlcFixture f;
    SystemConfig small = f.cfg;
    small.llcSets = 1;
    small.llcWays = 1;
    Llc tiny(small, f.nvm, f.stats);
    tiny.install(0, zeroLine(), false, 0);
    tiny.install(8, zeroLine(), false, 0);
    f.eq.run();
    EXPECT_EQ(f.stats.get("nvm.writes_issued"), 0u);
}

TEST(Llc, PersistPendingTracksMax)
{
    LlcFixture f;
    f.llc.install(3, zeroLine(), false, 0);
    EXPECT_EQ(f.llc.persistPendingUntil(3), 0u);
    f.llc.setPersistPending(3, 500);
    f.llc.setPersistPending(3, 300); // Must not regress.
    EXPECT_EQ(f.llc.persistPendingUntil(3), 500u);
}
