/** @file Unit tests for the set-associative tag array. */

#include <gtest/gtest.h>

#include "mem/cache_array.hh"

using namespace tsoper;

TEST(CacheArray, InsertAndContains)
{
    CacheArray a(4, 2);
    EXPECT_FALSE(a.contains(5));
    const auto r = a.insert(5);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.evicted);
    EXPECT_TRUE(a.contains(5));
    EXPECT_EQ(a.size(), 1u);
}

TEST(CacheArray, ReinsertIsHit)
{
    CacheArray a(4, 2);
    a.insert(5);
    const auto r = a.insert(5);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(a.size(), 1u);
}

TEST(CacheArray, LruEviction)
{
    CacheArray a(1, 2); // One set, 2 ways: lines collide.
    a.insert(10);
    a.insert(20);
    a.touch(10); // 20 becomes LRU.
    const auto r = a.insert(30);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim, 20u);
    EXPECT_TRUE(a.contains(10));
    EXPECT_TRUE(a.contains(30));
}

TEST(CacheArray, PinnedLinesAreNotVictims)
{
    CacheArray a(1, 2);
    a.insert(1);
    a.insert(2);
    a.setPinned(1, true);
    a.touch(2); // 1 is LRU but pinned.
    const auto r = a.insert(3);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim, 2u);
}

TEST(CacheArray, NoSpaceWhenAllPinned)
{
    CacheArray a(1, 2);
    a.insert(1);
    a.insert(2);
    a.setPinned(1, true);
    a.setPinned(2, true);
    const auto r = a.insert(3);
    EXPECT_TRUE(r.noSpace);
    EXPECT_FALSE(a.contains(3));
}

TEST(CacheArray, EraseFreesWay)
{
    CacheArray a(1, 1);
    a.insert(7);
    EXPECT_TRUE(a.erase(7));
    EXPECT_FALSE(a.erase(7));
    const auto r = a.insert(8);
    EXPECT_FALSE(r.evicted);
}

TEST(CacheArray, SetIndexingSeparatesSets)
{
    CacheArray a(4, 1);
    // Lines 0..3 map to different sets: no evictions.
    for (LineAddr l = 0; l < 4; ++l)
        EXPECT_FALSE(a.insert(l).evicted);
    EXPECT_EQ(a.size(), 4u);
    // Line 4 collides with line 0 only.
    const auto r = a.insert(4);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim, 0u);
}

TEST(CacheArray, SetShiftSkipsBankBits)
{
    CacheArray a(4, 1, /*setShift=*/3);
    // With shift 3, lines 0 and 1 share set 0.
    a.insert(0);
    const auto r = a.insert(1);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim, 0u);
}

TEST(CacheArray, ForEachVisitsAllResidents)
{
    CacheArray a(8, 2);
    for (LineAddr l = 0; l < 10; ++l)
        a.insert(l);
    unsigned count = 0;
    a.forEach([&](LineAddr) { ++count; });
    EXPECT_EQ(count, a.size());
}

TEST(CacheArray, PowerOfTwoSetsEnforced)
{
    EXPECT_THROW(CacheArray(3, 2), std::logic_error);
}
