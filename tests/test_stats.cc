/** @file Unit tests for counters, histograms and the stats registry. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace tsoper;

TEST(Counter, AccumulatesAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BasicMoments)
{
    Histogram h;
    for (std::uint64_t v : {1, 2, 2, 3, 3, 3})
        h.add(v);
    EXPECT_EQ(h.samples(), 6u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 14.0 / 6.0);
}

TEST(Histogram, CumulativeDistribution)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(10), 0.10);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(100), 1.0);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(0), 0.0);
}

TEST(Histogram, Percentiles)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.add(v);
    EXPECT_EQ(h.percentile(0.5), 50u);
    EXPECT_EQ(h.percentile(0.9), 90u);
    EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h;
    h.add(4, 10);
    EXPECT_EQ(h.samples(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(5), 0.0);
}

TEST(WeightedAverage, TimeWeighting)
{
    WeightedAverage w;
    w.update(10, 2.0); // value 2.0 held for cycles [0, 10)
    w.update(20, 4.0); // value 4.0 held for cycles [10, 20)
    EXPECT_DOUBLE_EQ(w.average(), 3.0);
}

TEST(StatsRegistry, CountersByName)
{
    StatsRegistry reg;
    reg.counter("a").inc(5);
    reg.counter("a").inc(2);
    EXPECT_EQ(reg.get("a"), 7u);
    EXPECT_EQ(reg.get("missing"), 0u);
}

TEST(StatsRegistry, DumpContainsEntries)
{
    StatsRegistry reg;
    reg.counter("x.count").inc(3);
    reg.histogram("y.hist").add(7);
    std::ostringstream os;
    reg.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("x.count 3"), std::string::npos);
    EXPECT_NE(out.find("y.hist.samples 1"), std::string::npos);
}

TEST(StatsRegistry, IterationApiSeesEveryInstrument)
{
    StatsRegistry reg;
    reg.counter("c.one").inc(1);
    reg.counter("c.two").inc(2);
    reg.histogram("h.one").add(4, 3);
    reg.timeSeries("s.one").sample(10, 0.5);
    reg.timeSeries("s.two").sample(20, 1.5);

    ASSERT_EQ(reg.counters().size(), 2u);
    EXPECT_EQ(reg.counters().at("c.two").value(), 2u);

    ASSERT_EQ(reg.histograms().size(), 1u);
    EXPECT_EQ(reg.histograms().at("h.one").samples(), 3u);

    ASSERT_EQ(reg.series().size(), 2u);
    EXPECT_EQ(reg.series().at("s.one").points().size(), 1u);
    EXPECT_DOUBLE_EQ(reg.series().at("s.two").points()[0].second, 1.5);

    // std::map iteration is name-ordered, so exporters that walk these
    // views produce stable output.
    std::string last;
    for (const auto &[name, counter] : reg.counters()) {
        (void)counter;
        EXPECT_LT(last, name);
        last = name;
    }
}

TEST(Histogram, PercentileWithWeightedBuckets)
{
    Histogram h;
    h.add(1, 89);
    h.add(10, 10);
    h.add(1000, 1);
    EXPECT_EQ(h.percentile(0.5), 1u);
    EXPECT_EQ(h.percentile(0.9), 10u);
    EXPECT_EQ(h.percentile(0.99), 10u);
    EXPECT_EQ(h.percentile(1.0), 1000u);
    // p <= 0 clamps to the smallest recorded value.
    EXPECT_EQ(h.percentile(0.0), 1u);
}

TEST(TimeSeries, RecordsPoints)
{
    TimeSeries ts;
    ts.sample(5, 1.5);
    ts.sample(9, 2.5);
    ASSERT_EQ(ts.points().size(), 2u);
    EXPECT_EQ(ts.points()[0].first, 5u);
    EXPECT_DOUBLE_EQ(ts.points()[1].second, 2.5);
}

// --------------------------------------------------------------------
// Flat fast path vs map spillover (Histogram::flatSize boundary).
// --------------------------------------------------------------------

TEST(Histogram, SpilloverKeepsMomentsAcrossBoundary)
{
    Histogram h;
    h.add(Histogram::flatSize - 1, 3); // last flat value
    h.add(Histogram::flatSize, 2);     // first spilled value
    h.add(10'000);                     // deep spill
    h.add(0, 4);
    EXPECT_EQ(h.samples(), 10u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 10'000u);
    EXPECT_EQ(h.total(), 3 * (Histogram::flatSize - 1) +
                             2 * Histogram::flatSize + 10'000);
}

TEST(Histogram, BucketsMergeFlatAndSpillSorted)
{
    Histogram h;
    h.add(2'000);
    h.add(7);
    h.add(Histogram::flatSize + 1);
    h.add(7);
    h.add(300);
    const auto buckets = h.buckets();
    ASSERT_EQ(buckets.size(), 4u);
    EXPECT_EQ(buckets[0], (std::pair<std::uint64_t, std::uint64_t>{7, 2}));
    EXPECT_EQ(buckets[1].first, Histogram::flatSize + 1);
    EXPECT_EQ(buckets[2].first, 300u);
    EXPECT_EQ(buckets[3].first, 2'000u);
    for (std::size_t i = 1; i < buckets.size(); ++i)
        EXPECT_LT(buckets[i - 1].first, buckets[i].first);
}

TEST(Histogram, CumulativeAndPercentileAcrossSpill)
{
    Histogram h;
    for (std::uint64_t v = 0; v < 2 * Histogram::flatSize; ++v)
        h.add(v);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(Histogram::flatSize - 1), 0.5);
    EXPECT_DOUBLE_EQ(h.cumulativeAt(2 * Histogram::flatSize), 1.0);
    EXPECT_EQ(h.percentile(0.25), Histogram::flatSize / 2 - 1);
    EXPECT_EQ(h.percentile(1.0), 2 * Histogram::flatSize - 1);
}

TEST(Histogram, ResetClearsBothTiers)
{
    Histogram h;
    h.add(3);
    h.add(4 * Histogram::flatSize);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_TRUE(h.buckets().empty());
    h.add(5);
    EXPECT_EQ(h.buckets().size(), 1u);
}

TEST(Histogram, ExactBoundaryValueSpillsOnce)
{
    // flatSize-1 is the last flat slot; flatSize itself must land in
    // the spill map, and repeated adds must merge into one bucket
    // rather than duplicating it on the flat/map seam.
    Histogram h;
    h.add(Histogram::flatSize - 1, 2);
    h.add(Histogram::flatSize, 3);
    h.add(Histogram::flatSize, 1);
    const auto buckets = h.buckets();
    ASSERT_EQ(buckets.size(), 2u);
    EXPECT_EQ(buckets[0],
              (std::pair<std::uint64_t, std::uint64_t>{
                  Histogram::flatSize - 1, 2}));
    EXPECT_EQ(buckets[1],
              (std::pair<std::uint64_t, std::uint64_t>{
                  Histogram::flatSize, 4}));
    EXPECT_EQ(h.percentile(1.0), Histogram::flatSize);
}

// --------------------------------------------------------------------
// TimeSeries under event-driven sampling: completion callbacks can
// fire with non-monotonic cycles.
// --------------------------------------------------------------------

TEST(TimeSeries, PreservesOutOfOrderArrival)
{
    // The series records arrival order verbatim — it neither sorts nor
    // drops samples whose cycle runs backwards (consumers that need
    // cycle order sort on use, e.g. the Perfetto exporter's viewer).
    TimeSeries ts;
    ts.sample(100, 1.0);
    ts.sample(40, 2.0);
    ts.sample(100, 3.0); // duplicate cycle is legal
    ts.sample(7, 4.0);
    ASSERT_EQ(ts.points().size(), 4u);
    EXPECT_EQ(ts.points()[0].first, 100u);
    EXPECT_EQ(ts.points()[1].first, 40u);
    EXPECT_EQ(ts.points()[2].first, 100u);
    EXPECT_DOUBLE_EQ(ts.points()[2].second, 3.0);
    EXPECT_EQ(ts.points()[3].first, 7u);
}

TEST(TimeSeries, ResetDropsOutOfOrderHistory)
{
    TimeSeries ts;
    ts.sample(50, 1.0);
    ts.sample(10, 2.0);
    ts.reset();
    EXPECT_TRUE(ts.points().empty());
    ts.sample(3, 9.0);
    ASSERT_EQ(ts.points().size(), 1u);
    EXPECT_EQ(ts.points()[0].first, 3u);
    EXPECT_DOUBLE_EQ(ts.points()[0].second, 9.0);
}
