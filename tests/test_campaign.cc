/** @file Tests for the campaign subsystem: spec expansion, the
 *  work-stealing pool, timeout/retry classification, runOne, and
 *  report aggregation. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <cstdio>
#include <fstream>

#include "campaign/builtin.hh"
#include "campaign/journal.hh"
#include "campaign/report.hh"
#include "campaign/runner.hh"
#include "campaign/spec.hh"
#include "campaign/thread_pool.hh"

using namespace tsoper;
using namespace tsoper::campaign;

// --- Spec expansion ---------------------------------------------------

namespace
{

CampaignSpec
smallSpec()
{
    CampaignSpec spec;
    spec.name = "grid";
    spec.engines = {"tsoper", "stw"};
    spec.benches = {"radix", "dedup"};
    spec.scales = {0.1};
    spec.seeds = {1, 2};
    spec.crashFractions = {0.25, 0.75};
    spec.check = true;
    return spec;
}

} // namespace

TEST(CampaignSpec, ExpansionIsDeterministicAndComplete)
{
    const CampaignSpec spec = smallSpec();
    EXPECT_EQ(spec.cellCount(), 16u);

    const std::vector<RunRequest> a = expand(spec);
    const std::vector<RunRequest> b = expand(spec);
    ASSERT_EQ(a.size(), 16u);
    EXPECT_EQ(a, b); // same spec -> byte-identical manifests

    // Unique, stable ids; engine-major order.
    std::set<std::string> ids;
    for (const RunRequest &r : a)
        ids.insert(r.id);
    EXPECT_EQ(ids.size(), a.size());
    EXPECT_EQ(a.front().id, "tsoper/radix/x0.1/s1/c0.25");
    EXPECT_EQ(a.back().id, "stw/dedup/x0.1/s2/c0.75");
}

TEST(CampaignSpec, SeedsLandInManifests)
{
    CampaignSpec spec = smallSpec();
    spec.crashFractions.clear();
    const std::vector<RunRequest> cells = expand(spec);
    ASSERT_EQ(cells.size(), 8u);
    for (const RunRequest &r : cells) {
        EXPECT_TRUE(r.seed == 1 || r.seed == 2) << r.id;
        EXPECT_EQ(r.crashAt, 0.0);
        EXPECT_TRUE(r.check);
    }
}

TEST(CampaignSpec, Validation)
{
    EXPECT_EQ(validateSpec(smallSpec()), "");

    CampaignSpec bad = smallSpec();
    bad.engines = {"warp-drive"};
    EXPECT_NE(validateSpec(bad).find("warp-drive"), std::string::npos);

    bad = smallSpec();
    bad.benches = {"pacman"};
    EXPECT_NE(validateSpec(bad).find("pacman"), std::string::npos);

    bad = smallSpec();
    bad.crashFractions = {1.5};
    EXPECT_NE(validateSpec(bad), "");

    bad = smallSpec();
    bad.scales = {0.0};
    EXPECT_NE(validateSpec(bad), "");
}

TEST(CampaignSpec, ParsesTextFormat)
{
    const std::string text = R"(
# nightly grid
name            = nightly
engines         = tsoper, stw
benches         = radix, dedup
scales          = 0.1, 0.5
seeds           = 1, 2, 3
crash-fractions = 0.5
check           = true
cores           = 4
timeout-ms      = 9000
retries         = 2
)";
    CampaignSpec spec;
    std::string err;
    ASSERT_TRUE(parseSpecText(text, &spec, &err)) << err;
    EXPECT_EQ(spec.name, "nightly");
    EXPECT_EQ(spec.engines,
              (std::vector<std::string>{"tsoper", "stw"}));
    EXPECT_EQ(spec.benches, (std::vector<std::string>{"radix", "dedup"}));
    EXPECT_EQ(spec.scales, (std::vector<double>{0.1, 0.5}));
    EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(spec.crashFractions, (std::vector<double>{0.5}));
    EXPECT_TRUE(spec.check);
    EXPECT_EQ(spec.cores, 4u);
    EXPECT_EQ(spec.timeoutMs, 9000u);
    EXPECT_EQ(spec.retries, 2u);
    EXPECT_EQ(validateSpec(spec), "");
}

TEST(CampaignSpec, ParseErrorsCarryLineNumbers)
{
    CampaignSpec spec;
    std::string err;
    EXPECT_FALSE(parseSpecText("engines tsoper", &spec, &err));
    EXPECT_NE(err.find("line 1"), std::string::npos);
    EXPECT_FALSE(parseSpecText("\nwibble = 3", &spec, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos);
    EXPECT_FALSE(parseSpecText("seeds = one", &spec, &err));
    EXPECT_FALSE(parseSpecText("check = maybe", &spec, &err));
}

TEST(CampaignSpec, BuiltinCampaignsAreValid)
{
    ASSERT_FALSE(builtinCampaigns().empty());
    for (const BuiltinCampaign &c : builtinCampaigns()) {
        EXPECT_EQ(validateSpec(c.spec), "") << c.name;
        EXPECT_GE(c.spec.cellCount(), 4u) << c.name;
    }
    EXPECT_NE(findBuiltinCampaign("crash-matrix"), nullptr);
    EXPECT_NE(findBuiltinCampaign("mini"), nullptr);
    EXPECT_EQ(findBuiltinCampaign("nope"), nullptr);
}

// --- Thread pool ------------------------------------------------------

TEST(ThreadPool, ExecutesEveryTaskExactlyOnceUnderContention)
{
    constexpr int kTasks = 500;
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto &h : hits)
        h.store(0);

    ThreadPool pool(8);
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&hits, i] {
            // A tiny stagger so deques drain unevenly and stealing
            // actually happens.
            if (i % 7 == 0)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            hits[i].fetch_add(1);
        });
    pool.wait();

    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, TasksCanSubmitTasks)
{
    std::atomic<int> count{0};
    ThreadPool pool(4);
    for (int i = 0; i < 10; ++i)
        pool.submit([&] {
            count.fetch_add(1);
            pool.submit([&] { count.fetch_add(1); });
        });
    pool.wait();
    EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, WaitIsReusable)
{
    std::atomic<int> count{0};
    ThreadPool pool(2);
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

// --- Timeout / retry classification ----------------------------------

namespace
{

RunRequest
fakeRequest(const std::string &id)
{
    RunRequest r;
    r.id = id;
    return r;
}

} // namespace

TEST(Runner, HungCellClassifiesAsTimeoutAfterRetry)
{
    std::atomic<int> attempts{0};
    RunnerOptions opt;
    opt.timeout = std::chrono::milliseconds(25);
    opt.retries = 1;
    opt.backoffBaseMs = 0;
    opt.cellFn = [&](const RunRequest &) {
        attempts.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        RunResult res;
        res.status = RunStatus::Ok;
        return res;
    };

    const CellReport cell = runCell(fakeRequest("hung"), opt);
    EXPECT_EQ(cell.result.status, RunStatus::Timeout);
    EXPECT_EQ(cell.attempts, 2u);
    EXPECT_EQ(attempts.load(), 2);
    EXPECT_NE(cell.result.detail.find("budget"), std::string::npos);
    // Out of retries with a transient verdict -> quarantined, and the
    // full attempt history is preserved.
    EXPECT_TRUE(cell.quarantined);
    ASSERT_EQ(cell.attemptLog.size(), 2u);
    EXPECT_EQ(cell.attemptLog[0].status, RunStatus::Timeout);
    EXPECT_EQ(cell.attemptLog[1].status, RunStatus::Timeout);
    // Orphaned attempt threads outlive runCell; let them drain before
    // their atomics go out of scope.
    std::this_thread::sleep_for(std::chrono::milliseconds(900));
}

TEST(Runner, FlakyCellSucceedsOnRetry)
{
    std::atomic<int> attempts{0};
    RunnerOptions opt;
    opt.timeout = std::chrono::milliseconds(5000);
    opt.retries = 1;
    opt.backoffBaseMs = 0;
    opt.cellFn = [&](const RunRequest &) {
        RunResult res;
        if (attempts.fetch_add(1) == 0) {
            res.status = RunStatus::Crashed;
            res.detail = "transient";
        } else {
            res.status = RunStatus::Ok;
        }
        return res;
    };

    const CellReport cell = runCell(fakeRequest("flaky"), opt);
    EXPECT_EQ(cell.result.status, RunStatus::Ok);
    EXPECT_EQ(cell.attempts, 2u);
    EXPECT_FALSE(cell.quarantined);
    ASSERT_EQ(cell.attemptLog.size(), 2u);
    EXPECT_EQ(cell.attemptLog[0].status, RunStatus::Crashed);
    EXPECT_EQ(cell.attemptLog[0].detail, "transient");
    EXPECT_EQ(cell.attemptLog[1].status, RunStatus::Ok);
}

TEST(Runner, RetriesBackOffExponentially)
{
    std::atomic<int> attempts{0};
    RunnerOptions opt;
    opt.timeout = std::chrono::milliseconds(5000);
    opt.retries = 2;
    opt.backoffBaseMs = 40;
    opt.cellFn = [&](const RunRequest &) {
        attempts.fetch_add(1);
        RunResult res;
        res.status = RunStatus::Crashed;
        return res;
    };

    const auto start = std::chrono::steady_clock::now();
    const CellReport cell = runCell(fakeRequest("sick"), opt);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    EXPECT_EQ(attempts.load(), 3);
    EXPECT_TRUE(cell.quarantined);
    // Backoff before attempt 2 is 40 ms, before attempt 3 is 80 ms.
    EXPECT_GE(elapsed.count(), 120);
}

TEST(Runner, DeterministicVerdictsAreNotRetried)
{
    std::atomic<int> attempts{0};
    RunnerOptions opt;
    opt.timeout = std::chrono::milliseconds(5000);
    opt.retries = 3;
    opt.cellFn = [&](const RunRequest &) {
        attempts.fetch_add(1);
        RunResult res;
        res.status = RunStatus::CheckFailed;
        return res;
    };

    const CellReport cell = runCell(fakeRequest("torn"), opt);
    EXPECT_EQ(cell.result.status, RunStatus::CheckFailed);
    EXPECT_EQ(cell.attempts, 1u);
    EXPECT_EQ(attempts.load(), 1);
}

TEST(Runner, CampaignAggregatesInExpansionOrder)
{
    std::vector<RunRequest> cells;
    for (int i = 0; i < 24; ++i)
        cells.push_back(fakeRequest("cell" + std::to_string(i)));

    RunnerOptions opt;
    opt.jobs = 4;
    opt.timeout = std::chrono::milliseconds(5000);
    opt.backoffBaseMs = 0;
    opt.cellFn = [](const RunRequest &r) {
        // Finish out of order on purpose.
        if (r.id == "cell0")
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
        RunResult res;
        res.status = r.id == "cell7" ? RunStatus::Crashed
                                     : RunStatus::Ok;
        res.detail = r.id;
        return res;
    };

    const CampaignReport report = runCampaign("order", cells, opt);
    ASSERT_EQ(report.cells.size(), 24u);
    for (int i = 0; i < 24; ++i)
        EXPECT_EQ(report.cells[i].request.id,
                  "cell" + std::to_string(i));
    EXPECT_EQ(report.count(RunStatus::Ok), 23u);
    // cell7 crashes on every attempt, so it lands in quarantine and
    // stays out of the per-status totals.
    EXPECT_EQ(report.count(RunStatus::Crashed), 0u);
    EXPECT_EQ(report.quarantinedCount(), 1u);
    EXPECT_TRUE(report.cells[7].quarantined);
    EXPECT_FALSE(report.allOk());
    EXPECT_NE(report.summary().find("23 ok"), std::string::npos);
    EXPECT_NE(report.summary().find("1 quarantined"), std::string::npos);
}

TEST(Runner, OrphanedAttemptThreadsAreCounted)
{
    const unsigned before = liveOrphanCount();

    std::atomic<bool> release{false};
    RunnerOptions opt;
    opt.timeout = std::chrono::milliseconds(25);
    opt.retries = 0;
    opt.backoffBaseMs = 0;
    opt.cellFn = [&](const RunRequest &) {
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        RunResult res;
        res.status = RunStatus::Ok;
        return res;
    };

    const CampaignReport report =
        runCampaign("orphans", {fakeRequest("stuck")}, opt);
    EXPECT_EQ(report.cells[0].result.status, RunStatus::Timeout);
    EXPECT_GE(report.orphanedThreads, before + 1);
    EXPECT_NE(report.summary().find("orphaned attempt thread"),
              std::string::npos);

    // Once the orphan finishes it un-counts itself.
    release.store(true);
    for (int i = 0; i < 200 && liveOrphanCount() > before; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(liveOrphanCount(), before);
}

// --- runOne on the real simulator ------------------------------------

TEST(RunOne, UnknownEngineAndBenchAreBadRequests)
{
    RunRequest r;
    r.engine = "warp-drive";
    RunResult res = runOne(r);
    EXPECT_EQ(res.status, RunStatus::BadRequest);
    EXPECT_NE(res.detail.find("warp-drive"), std::string::npos);

    r = RunRequest{};
    r.bench = "pacman";
    res = runOne(r);
    EXPECT_EQ(res.status, RunStatus::BadRequest);
    EXPECT_NE(res.detail.find("pacman"), std::string::npos);
}

TEST(RunOne, TinyAuditedRunProducesStats)
{
    RunRequest r;
    r.id = "tsoper/dedup/x0.05/s1";
    r.bench = "dedup";
    r.scale = 0.05;
    r.check = true;
    const RunResult res = runOne(r);
    ASSERT_EQ(res.status, RunStatus::Ok) << res.detail;
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.ops, 0u);
    EXPECT_TRUE(res.audited);
    EXPECT_GT(res.durableWords, 0u);
    ASSERT_TRUE(res.stats.isObject());
    EXPECT_GT(res.stats["counters"].size(), 0u);

    // Determinism: the same request yields byte-identical stats.
    const RunResult again = runOne(r);
    EXPECT_EQ(again.stats.dump(), res.stats.dump());
    EXPECT_EQ(again.cycles, res.cycles);
}

TEST(RunOne, CrashCellAuditsDurableState)
{
    RunRequest r;
    r.engine = "stw";
    r.bench = "dedup";
    r.scale = 0.05;
    r.crashAt = 0.5;
    r.check = true;
    const RunResult res = runOne(r);
    ASSERT_EQ(res.status, RunStatus::Ok) << res.detail;
    EXPECT_GT(res.crashCycle, 0u);
    EXPECT_TRUE(res.audited);
    EXPECT_FALSE(res.recoverySummary.empty());
}

// --- Report JSON ------------------------------------------------------

TEST(Report, JsonRoundTripsThroughParser)
{
    std::vector<RunRequest> cells;
    cells.push_back(fakeRequest("a"));
    cells.push_back(fakeRequest("b"));

    RunnerOptions opt;
    opt.jobs = 2;
    opt.cellFn = [](const RunRequest &) {
        RunResult res;
        res.status = RunStatus::Ok;
        res.cycles = 1234;
        res.stats = Json::object();
        return res;
    };
    const CampaignReport report = runCampaign("rt", cells, opt);

    Json doc;
    ASSERT_TRUE(Json::parse(report.toJson().dump(2), &doc));
    EXPECT_EQ(doc["campaign"].asString(), "rt");
    EXPECT_EQ(doc["totals"]["cells"].asUint(), 2u);
    EXPECT_EQ(doc["totals"]["ok"].asUint(), 2u);
    EXPECT_EQ(doc["cells"].at(0)["id"].asString(), "a");
    EXPECT_EQ(doc["cells"].at(0)["cycles"].asUint(), 1234u);
}

TEST(Report, WriteAndVerifyFile)
{
    const std::string path =
        ::testing::TempDir() + "tsoper_report_test.json";

    CampaignReport report;
    report.name = "verify";
    CellReport ok;
    ok.request = fakeRequest("good");
    ok.result.status = RunStatus::Ok;
    report.cells.push_back(ok);

    std::string err;
    ASSERT_TRUE(writeReportFile(report, path, &err)) << err;
    EXPECT_TRUE(verifyReportFile(path, /*requireAllOk=*/true, &err))
        << err;

    CellReport bad;
    bad.request = fakeRequest("torn");
    bad.result.status = RunStatus::CheckFailed;
    report.cells.push_back(bad);
    ASSERT_TRUE(writeReportFile(report, path, &err)) << err;
    EXPECT_TRUE(verifyReportFile(path, /*requireAllOk=*/false, &err))
        << err;
    EXPECT_FALSE(verifyReportFile(path, /*requireAllOk=*/true, &err));
    EXPECT_NE(err.find("torn"), std::string::npos);
}

TEST(Report, CellJsonRoundTripsExactly)
{
    CellReport cell;
    cell.request = fakeRequest("tsoper/radix/x0.1/s1");
    cell.request.crashAt = 0.5;
    cell.request.check = true;
    cell.result.status = RunStatus::Crashed;
    cell.result.detail = "child killed by SIGSEGV";
    cell.result.cycles = 987;
    cell.result.signalName = "SIGSEGV";
    cell.result.stderrTail = "boom";
    cell.result.exitCode = 6;
    cell.attempts = 2;
    cell.wallMs = 12.5;
    cell.quarantined = true;
    cell.attemptLog = {{RunStatus::Crashed, 6.25, "first"},
                       {RunStatus::Crashed, 6.25, "second"}};

    CellReport back;
    std::string err;
    ASSERT_TRUE(cellReportFromJson(cell.toJson(), &back, &err)) << err;
    // The serialized forms must be byte-identical: journal resume
    // reuses these verbatim.
    EXPECT_EQ(back.toJson().dump(), cell.toJson().dump());
    EXPECT_EQ(back.request, cell.request);
    EXPECT_TRUE(back.quarantined);
    ASSERT_EQ(back.attemptLog.size(), 2u);
    EXPECT_EQ(back.attemptLog[1].detail, "second");
}

// --- Journal / resume -------------------------------------------------

namespace
{

CellReport
okCell(const std::string &id, Cycle cycles)
{
    CellReport cell;
    cell.request = fakeRequest(id);
    cell.result.status = RunStatus::Ok;
    cell.result.cycles = cycles;
    cell.result.stats = Json::object();
    return cell;
}

} // namespace

TEST(Journal, AppendAndLoadRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "tsoper_journal_rt.jsonl";
    std::string err;

    CampaignJournal journal;
    ASSERT_TRUE(journal.open(path, "rt", /*truncate=*/true, &err))
        << err;
    journal.append(okCell("a", 10));
    journal.append(okCell("b", 20));
    journal.close();

    JournalIndex idx;
    ASSERT_TRUE(loadJournal(path, &idx, &err)) << err;
    EXPECT_EQ(idx.campaign, "rt");
    ASSERT_EQ(idx.cells.size(), 2u);
    EXPECT_EQ(idx.cells.at("a").result.cycles, 10u);
    EXPECT_EQ(idx.cells.at("b").result.cycles, 20u);
    std::remove(path.c_str());
}

TEST(Journal, ToleratesTornFinalLineAndRejectsWrongFormat)
{
    const std::string path =
        ::testing::TempDir() + "tsoper_journal_torn.jsonl";
    std::string err;

    CampaignJournal journal;
    ASSERT_TRUE(journal.open(path, "torn", /*truncate=*/true, &err));
    journal.append(okCell("a", 10));
    journal.close();
    {
        // A crash mid-append leaves a half-written trailing line.
        std::ofstream os(path, std::ios::app);
        os << "{\"id\":\"b\",\"status\":\"o";
    }
    JournalIndex idx;
    ASSERT_TRUE(loadJournal(path, &idx, &err)) << err;
    EXPECT_EQ(idx.cells.size(), 1u);
    EXPECT_TRUE(idx.cells.count("a"));

    {
        std::ofstream os(path, std::ios::trunc);
        os << "{\"format\":\"something/else\"}\n";
    }
    EXPECT_FALSE(loadJournal(path, &idx, &err));
    EXPECT_NE(err.find("journal"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Journal, ResumeRunsOnlyUnjournaledCells)
{
    const std::string path =
        ::testing::TempDir() + "tsoper_journal_resume.jsonl";
    std::string err;

    std::vector<RunRequest> cells;
    for (int i = 0; i < 4; ++i)
        cells.push_back(fakeRequest("cell" + std::to_string(i)));

    std::atomic<int> executed{0};
    RunnerOptions opt;
    opt.jobs = 2;
    opt.backoffBaseMs = 0;
    opt.cellFn = [&](const RunRequest &r) {
        executed.fetch_add(1);
        RunResult res;
        res.status = RunStatus::Ok;
        res.cycles = 100 + (r.id.back() - '0');
        res.stats = Json::object();
        return res;
    };

    // First run covers only the first two cells, as if the campaign
    // was interrupted halfway.
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(path, "resume", /*truncate=*/true, &err));
    opt.journal = &journal;
    const CampaignReport first = runCampaign(
        "resume", {cells[0], cells[1]}, opt);
    journal.close();
    EXPECT_EQ(executed.load(), 2);

    JournalIndex idx;
    ASSERT_TRUE(loadJournal(path, &idx, &err)) << err;
    ASSERT_EQ(idx.cells.size(), 2u);

    // The resumed run executes only the two missing cells...
    opt.journal = nullptr;
    opt.resumeFrom = &idx;
    const CampaignReport second = runCampaign("resume", cells, opt);
    EXPECT_EQ(executed.load(), 4);
    EXPECT_EQ(second.resumedCount(), 2u);
    EXPECT_TRUE(second.allOk());

    // ...and the journaled cells come back byte-identical.
    for (int i = 0; i < 2; ++i) {
        EXPECT_TRUE(second.cells[i].fromJournal);
        EXPECT_EQ(second.cells[i].toJson().dump(),
                  first.cells[i].toJson().dump());
    }
    EXPECT_FALSE(second.cells[2].fromJournal);

    // A journaled cell whose request no longer matches the manifest
    // (same id, different knobs) is re-run, not reused.
    std::vector<RunRequest> edited = cells;
    edited[0].seed = 99;
    const CampaignReport third = runCampaign("resume", edited, opt);
    EXPECT_EQ(executed.load(), 4 + 3);
    EXPECT_FALSE(third.cells[0].fromJournal);
    EXPECT_TRUE(third.cells[1].fromJournal);
    std::remove(path.c_str());
}
