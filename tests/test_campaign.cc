/** @file Tests for the campaign subsystem: spec expansion, the
 *  work-stealing pool, timeout/retry classification, runOne, and
 *  report aggregation. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "campaign/builtin.hh"
#include "campaign/report.hh"
#include "campaign/runner.hh"
#include "campaign/spec.hh"
#include "campaign/thread_pool.hh"

using namespace tsoper;
using namespace tsoper::campaign;

// --- Spec expansion ---------------------------------------------------

namespace
{

CampaignSpec
smallSpec()
{
    CampaignSpec spec;
    spec.name = "grid";
    spec.engines = {"tsoper", "stw"};
    spec.benches = {"radix", "dedup"};
    spec.scales = {0.1};
    spec.seeds = {1, 2};
    spec.crashFractions = {0.25, 0.75};
    spec.check = true;
    return spec;
}

} // namespace

TEST(CampaignSpec, ExpansionIsDeterministicAndComplete)
{
    const CampaignSpec spec = smallSpec();
    EXPECT_EQ(spec.cellCount(), 16u);

    const std::vector<RunRequest> a = expand(spec);
    const std::vector<RunRequest> b = expand(spec);
    ASSERT_EQ(a.size(), 16u);
    EXPECT_EQ(a, b); // same spec -> byte-identical manifests

    // Unique, stable ids; engine-major order.
    std::set<std::string> ids;
    for (const RunRequest &r : a)
        ids.insert(r.id);
    EXPECT_EQ(ids.size(), a.size());
    EXPECT_EQ(a.front().id, "tsoper/radix/x0.1/s1/c0.25");
    EXPECT_EQ(a.back().id, "stw/dedup/x0.1/s2/c0.75");
}

TEST(CampaignSpec, SeedsLandInManifests)
{
    CampaignSpec spec = smallSpec();
    spec.crashFractions.clear();
    const std::vector<RunRequest> cells = expand(spec);
    ASSERT_EQ(cells.size(), 8u);
    for (const RunRequest &r : cells) {
        EXPECT_TRUE(r.seed == 1 || r.seed == 2) << r.id;
        EXPECT_EQ(r.crashAt, 0.0);
        EXPECT_TRUE(r.check);
    }
}

TEST(CampaignSpec, Validation)
{
    EXPECT_EQ(validateSpec(smallSpec()), "");

    CampaignSpec bad = smallSpec();
    bad.engines = {"warp-drive"};
    EXPECT_NE(validateSpec(bad).find("warp-drive"), std::string::npos);

    bad = smallSpec();
    bad.benches = {"pacman"};
    EXPECT_NE(validateSpec(bad).find("pacman"), std::string::npos);

    bad = smallSpec();
    bad.crashFractions = {1.5};
    EXPECT_NE(validateSpec(bad), "");

    bad = smallSpec();
    bad.scales = {0.0};
    EXPECT_NE(validateSpec(bad), "");
}

TEST(CampaignSpec, ParsesTextFormat)
{
    const std::string text = R"(
# nightly grid
name            = nightly
engines         = tsoper, stw
benches         = radix, dedup
scales          = 0.1, 0.5
seeds           = 1, 2, 3
crash-fractions = 0.5
check           = true
cores           = 4
timeout-ms      = 9000
retries         = 2
)";
    CampaignSpec spec;
    std::string err;
    ASSERT_TRUE(parseSpecText(text, &spec, &err)) << err;
    EXPECT_EQ(spec.name, "nightly");
    EXPECT_EQ(spec.engines,
              (std::vector<std::string>{"tsoper", "stw"}));
    EXPECT_EQ(spec.benches, (std::vector<std::string>{"radix", "dedup"}));
    EXPECT_EQ(spec.scales, (std::vector<double>{0.1, 0.5}));
    EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(spec.crashFractions, (std::vector<double>{0.5}));
    EXPECT_TRUE(spec.check);
    EXPECT_EQ(spec.cores, 4u);
    EXPECT_EQ(spec.timeoutMs, 9000u);
    EXPECT_EQ(spec.retries, 2u);
    EXPECT_EQ(validateSpec(spec), "");
}

TEST(CampaignSpec, ParseErrorsCarryLineNumbers)
{
    CampaignSpec spec;
    std::string err;
    EXPECT_FALSE(parseSpecText("engines tsoper", &spec, &err));
    EXPECT_NE(err.find("line 1"), std::string::npos);
    EXPECT_FALSE(parseSpecText("\nwibble = 3", &spec, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos);
    EXPECT_FALSE(parseSpecText("seeds = one", &spec, &err));
    EXPECT_FALSE(parseSpecText("check = maybe", &spec, &err));
}

TEST(CampaignSpec, BuiltinCampaignsAreValid)
{
    ASSERT_FALSE(builtinCampaigns().empty());
    for (const BuiltinCampaign &c : builtinCampaigns()) {
        EXPECT_EQ(validateSpec(c.spec), "") << c.name;
        EXPECT_GE(c.spec.cellCount(), 4u) << c.name;
    }
    EXPECT_NE(findBuiltinCampaign("crash-matrix"), nullptr);
    EXPECT_NE(findBuiltinCampaign("mini"), nullptr);
    EXPECT_EQ(findBuiltinCampaign("nope"), nullptr);
}

// --- Thread pool ------------------------------------------------------

TEST(ThreadPool, ExecutesEveryTaskExactlyOnceUnderContention)
{
    constexpr int kTasks = 500;
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto &h : hits)
        h.store(0);

    ThreadPool pool(8);
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&hits, i] {
            // A tiny stagger so deques drain unevenly and stealing
            // actually happens.
            if (i % 7 == 0)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            hits[i].fetch_add(1);
        });
    pool.wait();

    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, TasksCanSubmitTasks)
{
    std::atomic<int> count{0};
    ThreadPool pool(4);
    for (int i = 0; i < 10; ++i)
        pool.submit([&] {
            count.fetch_add(1);
            pool.submit([&] { count.fetch_add(1); });
        });
    pool.wait();
    EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, WaitIsReusable)
{
    std::atomic<int> count{0};
    ThreadPool pool(2);
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

// --- Timeout / retry classification ----------------------------------

namespace
{

RunRequest
fakeRequest(const std::string &id)
{
    RunRequest r;
    r.id = id;
    return r;
}

} // namespace

TEST(Runner, HungCellClassifiesAsTimeoutAfterRetry)
{
    std::atomic<int> attempts{0};
    RunnerOptions opt;
    opt.timeout = std::chrono::milliseconds(25);
    opt.retries = 1;
    opt.cellFn = [&](const RunRequest &) {
        attempts.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
        RunResult res;
        res.status = RunStatus::Ok;
        return res;
    };

    const CellReport cell = runCell(fakeRequest("hung"), opt);
    EXPECT_EQ(cell.result.status, RunStatus::Timeout);
    EXPECT_EQ(cell.attempts, 2u);
    EXPECT_EQ(attempts.load(), 2);
    EXPECT_NE(cell.result.detail.find("budget"), std::string::npos);
    // Orphaned attempt threads outlive runCell; let them drain before
    // their atomics go out of scope.
    std::this_thread::sleep_for(std::chrono::milliseconds(900));
}

TEST(Runner, FlakyCellSucceedsOnRetry)
{
    std::atomic<int> attempts{0};
    RunnerOptions opt;
    opt.timeout = std::chrono::milliseconds(5000);
    opt.retries = 1;
    opt.cellFn = [&](const RunRequest &) {
        RunResult res;
        if (attempts.fetch_add(1) == 0) {
            res.status = RunStatus::Crashed;
            res.detail = "transient";
        } else {
            res.status = RunStatus::Ok;
        }
        return res;
    };

    const CellReport cell = runCell(fakeRequest("flaky"), opt);
    EXPECT_EQ(cell.result.status, RunStatus::Ok);
    EXPECT_EQ(cell.attempts, 2u);
}

TEST(Runner, DeterministicVerdictsAreNotRetried)
{
    std::atomic<int> attempts{0};
    RunnerOptions opt;
    opt.timeout = std::chrono::milliseconds(5000);
    opt.retries = 3;
    opt.cellFn = [&](const RunRequest &) {
        attempts.fetch_add(1);
        RunResult res;
        res.status = RunStatus::CheckFailed;
        return res;
    };

    const CellReport cell = runCell(fakeRequest("torn"), opt);
    EXPECT_EQ(cell.result.status, RunStatus::CheckFailed);
    EXPECT_EQ(cell.attempts, 1u);
    EXPECT_EQ(attempts.load(), 1);
}

TEST(Runner, CampaignAggregatesInExpansionOrder)
{
    std::vector<RunRequest> cells;
    for (int i = 0; i < 24; ++i)
        cells.push_back(fakeRequest("cell" + std::to_string(i)));

    RunnerOptions opt;
    opt.jobs = 4;
    opt.timeout = std::chrono::milliseconds(5000);
    opt.cellFn = [](const RunRequest &r) {
        // Finish out of order on purpose.
        if (r.id == "cell0")
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
        RunResult res;
        res.status = r.id == "cell7" ? RunStatus::Crashed
                                     : RunStatus::Ok;
        res.detail = r.id;
        return res;
    };

    const CampaignReport report = runCampaign("order", cells, opt);
    ASSERT_EQ(report.cells.size(), 24u);
    for (int i = 0; i < 24; ++i)
        EXPECT_EQ(report.cells[i].request.id,
                  "cell" + std::to_string(i));
    EXPECT_EQ(report.count(RunStatus::Ok), 23u);
    EXPECT_EQ(report.count(RunStatus::Crashed), 1u);
    EXPECT_FALSE(report.allOk());
    EXPECT_NE(report.summary().find("23 ok"), std::string::npos);
    EXPECT_NE(report.summary().find("1 crashed"), std::string::npos);
}

// --- runOne on the real simulator ------------------------------------

TEST(RunOne, UnknownEngineAndBenchAreBadRequests)
{
    RunRequest r;
    r.engine = "warp-drive";
    RunResult res = runOne(r);
    EXPECT_EQ(res.status, RunStatus::BadRequest);
    EXPECT_NE(res.detail.find("warp-drive"), std::string::npos);

    r = RunRequest{};
    r.bench = "pacman";
    res = runOne(r);
    EXPECT_EQ(res.status, RunStatus::BadRequest);
    EXPECT_NE(res.detail.find("pacman"), std::string::npos);
}

TEST(RunOne, TinyAuditedRunProducesStats)
{
    RunRequest r;
    r.id = "tsoper/dedup/x0.05/s1";
    r.bench = "dedup";
    r.scale = 0.05;
    r.check = true;
    const RunResult res = runOne(r);
    ASSERT_EQ(res.status, RunStatus::Ok) << res.detail;
    EXPECT_GT(res.cycles, 0u);
    EXPECT_GT(res.ops, 0u);
    EXPECT_TRUE(res.audited);
    EXPECT_GT(res.durableWords, 0u);
    ASSERT_TRUE(res.stats.isObject());
    EXPECT_GT(res.stats["counters"].size(), 0u);

    // Determinism: the same request yields byte-identical stats.
    const RunResult again = runOne(r);
    EXPECT_EQ(again.stats.dump(), res.stats.dump());
    EXPECT_EQ(again.cycles, res.cycles);
}

TEST(RunOne, CrashCellAuditsDurableState)
{
    RunRequest r;
    r.engine = "stw";
    r.bench = "dedup";
    r.scale = 0.05;
    r.crashAt = 0.5;
    r.check = true;
    const RunResult res = runOne(r);
    ASSERT_EQ(res.status, RunStatus::Ok) << res.detail;
    EXPECT_GT(res.crashCycle, 0u);
    EXPECT_TRUE(res.audited);
    EXPECT_FALSE(res.recoverySummary.empty());
}

// --- Report JSON ------------------------------------------------------

TEST(Report, JsonRoundTripsThroughParser)
{
    std::vector<RunRequest> cells;
    cells.push_back(fakeRequest("a"));
    cells.push_back(fakeRequest("b"));

    RunnerOptions opt;
    opt.jobs = 2;
    opt.cellFn = [](const RunRequest &) {
        RunResult res;
        res.status = RunStatus::Ok;
        res.cycles = 1234;
        res.stats = Json::object();
        return res;
    };
    const CampaignReport report = runCampaign("rt", cells, opt);

    Json doc;
    ASSERT_TRUE(Json::parse(report.toJson().dump(2), &doc));
    EXPECT_EQ(doc["campaign"].asString(), "rt");
    EXPECT_EQ(doc["totals"]["cells"].asUint(), 2u);
    EXPECT_EQ(doc["totals"]["ok"].asUint(), 2u);
    EXPECT_EQ(doc["cells"].at(0)["id"].asString(), "a");
    EXPECT_EQ(doc["cells"].at(0)["cycles"].asUint(), 1234u);
}

TEST(Report, WriteAndVerifyFile)
{
    const std::string path =
        ::testing::TempDir() + "tsoper_report_test.json";

    CampaignReport report;
    report.name = "verify";
    CellReport ok;
    ok.request = fakeRequest("good");
    ok.result.status = RunStatus::Ok;
    report.cells.push_back(ok);

    std::string err;
    ASSERT_TRUE(writeReportFile(report, path, &err)) << err;
    EXPECT_TRUE(verifyReportFile(path, /*requireAllOk=*/true, &err))
        << err;

    CellReport bad;
    bad.request = fakeRequest("torn");
    bad.result.status = RunStatus::CheckFailed;
    report.cells.push_back(bad);
    ASSERT_TRUE(writeReportFile(report, path, &err)) << err;
    EXPECT_TRUE(verifyReportFile(path, /*requireAllOk=*/false, &err))
        << err;
    EXPECT_FALSE(verifyReportFile(path, /*requireAllOk=*/true, &err));
    EXPECT_NE(err.find("torn"), std::string::npos);
}
