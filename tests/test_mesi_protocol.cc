/** @file Protocol-level tests for the MESI baseline. */

#include <gtest/gtest.h>

#include "coherence/mesi.hh"
#include "mem/llc.hh"
#include "mem/nvm.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace tsoper;

namespace
{

struct MesiFixture : public ::testing::Test
{
    MesiFixture()
        : mesh(cfg, stats), nvm(cfg, eq, stats), llc(cfg, nvm, stats),
          mesi(cfg, eq, mesh, llc, nvm, stats)
    {
    }

    void
    store(CoreId c, Addr a, StoreId id)
    {
        bool done = false;
        mesi.store(c, a, id, [&](Cycle) { done = true; });
        eq.runUntil([&] { return done; });
        ASSERT_TRUE(done);
    }

    StoreId
    load(CoreId c, Addr a)
    {
        StoreId value = invalidStore;
        bool done = false;
        mesi.load(c, a, [&](Cycle, StoreId v) {
            value = v;
            done = true;
        });
        eq.runUntil([&] { return done; });
        EXPECT_TRUE(done);
        return value;
    }

    SystemConfig cfg;
    EventQueue eq;
    StatsRegistry stats;
    Mesh mesh;
    Nvm nvm;
    Llc llc;
    MesiProtocol mesi;
};

constexpr Addr kAddr = 0x5000'0040;
const LineAddr kLine = lineOf(kAddr);

} // namespace

TEST_F(MesiFixture, StoreMakesLineModified)
{
    store(0, kAddr, makeStoreId(0, 0));
    EXPECT_TRUE(mesi.isModified(0, kLine));
    EXPECT_EQ(mesi.lineWords(0, kLine)[wordOf(kAddr)], makeStoreId(0, 0));
}

TEST_F(MesiFixture, RemoteWriteInvalidatesOwner)
{
    store(0, kAddr, makeStoreId(0, 0));
    store(1, kAddr, makeStoreId(1, 0));
    EXPECT_FALSE(mesi.isModified(0, kLine));
    EXPECT_TRUE(mesi.isModified(1, kLine));
    // Value transferred M->M: the second writer's copy has both words.
    EXPECT_EQ(load(1, kAddr), makeStoreId(1, 0));
}

TEST_F(MesiFixture, ReadDowngradesOwnerAndWritesBack)
{
    store(0, kAddr, makeStoreId(0, 0));
    const auto wbBefore = stats.get("traffic.coherence_wb");
    EXPECT_EQ(load(1, kAddr), makeStoreId(0, 0));
    EXPECT_FALSE(mesi.isModified(0, kLine)); // M -> S.
    EXPECT_GT(stats.get("traffic.coherence_wb"), wbBefore);
    EXPECT_TRUE(llc.contains(kLine));
}

TEST_F(MesiFixture, ColdLoadGetsExclusive)
{
    load(0, kAddr);
    // A subsequent store must be silent (E -> M), no new transaction.
    const auto missesBefore = stats.get("mesi.misses");
    store(0, kAddr, makeStoreId(0, 0));
    EXPECT_EQ(stats.get("mesi.misses"), missesBefore);
    EXPECT_TRUE(mesi.isModified(0, kLine));
}

TEST_F(MesiFixture, UpgradeInvalidatesOtherSharers)
{
    store(0, kAddr, makeStoreId(0, 0));
    load(1, kAddr);
    load(2, kAddr);
    store(1, kAddr, makeStoreId(1, 0)); // S -> M upgrade.
    EXPECT_TRUE(mesi.isModified(1, kLine));
    // Other copies invalidated: core 2 misses and sees the new value.
    const auto missesBefore = stats.get("mesi.misses");
    EXPECT_EQ(load(2, kAddr), makeStoreId(1, 0));
    EXPECT_GT(stats.get("mesi.misses"), missesBefore);
}

TEST_F(MesiFixture, FlushLineWritesThroughAndDowngrades)
{
    store(0, kAddr, makeStoreId(0, 0));
    bool flushed = false;
    Cycle at = 0;
    mesi.flushLine(0, kLine, eq.now(), [&](Cycle when, bool did) {
        flushed = did;
        at = when;
    });
    eq.runUntil([&] { return at != 0; });
    EXPECT_TRUE(flushed);
    EXPECT_FALSE(mesi.isModified(0, kLine)); // M -> E.
    EXPECT_EQ(llc.lookup(kLine)[wordOf(kAddr)], makeStoreId(0, 0));
}

TEST_F(MesiFixture, FlushLineHonoursLlcExclusion)
{
    store(0, kAddr, makeStoreId(0, 0));
    llc.install(kLine, zeroLine(), false, 0);
    llc.setPersistPending(kLine, 5000); // Older version persisting.
    Cycle at = 0;
    mesi.flushLine(0, kLine, eq.now(), [&](Cycle when, bool) {
        at = when;
    });
    eq.runUntil([&] { return at != 0; });
    EXPECT_GE(at, 5000u);
}

TEST_F(MesiFixture, FlushOfNonModifiedLineIsNoop)
{
    load(0, kAddr);
    bool did = true;
    bool fired = false;
    mesi.flushLine(0, kLine, eq.now(), [&](Cycle, bool d) {
        did = d;
        fired = true;
    });
    eq.runUntil([&] { return fired; });
    EXPECT_FALSE(did);
}

TEST_F(MesiFixture, ValuesFlowThroughLlcWhenNoOwner)
{
    store(0, kAddr, makeStoreId(0, 0));
    load(1, kAddr); // Downgrade: LLC now has the value.
    store(2, 0x9999'0000, makeStoreId(2, 0)); // Unrelated.
    EXPECT_EQ(load(3, kAddr), makeStoreId(0, 0));
}

TEST_F(MesiFixture, BlockingDirectoryStat)
{
    // Two immediate writers to the same line: the directory serializes.
    bool done0 = false, done1 = false;
    Cycle at0 = 0, at1 = 0;
    mesi.store(0, kAddr, makeStoreId(0, 0), [&](Cycle at) {
        done0 = true;
        at0 = at;
    });
    mesi.store(1, kAddr, makeStoreId(1, 0), [&](Cycle at) {
        done1 = true;
        at1 = at;
    });
    eq.runUntil([&] { return done0 && done1; });
    EXPECT_NE(at0, at1);
}

TEST_F(MesiFixture, ComplexityReportsName)
{
    EXPECT_STREQ(mesi.complexity().name, "MESI");
}
