/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "sim/rng.hh"

using namespace tsoper;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeIsInclusive)
{
    Rng r(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        sawLo |= (v == 3);
        sawHi |= (v == 5);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, BurstBoundedByCap)
{
    Rng r(17);
    for (int i = 0; i < 1000; ++i) {
        const unsigned b = r.burst(0.9, 6);
        EXPECT_GE(b, 1u);
        EXPECT_LE(b, 6u);
    }
}
