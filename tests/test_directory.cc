/**
 * @file
 * Directory-layer tests: the per-line transaction serializer, finite
 * directory capacity with entry teardown, and the §III-B directory
 * eviction path (zombie entries draining through the eviction buffer).
 */

#include <gtest/gtest.h>

#include "coherence/directory.hh"
#include "core/crash_checker.hh"
#include "core/system.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "workload/generators.hh"

using namespace tsoper;

TEST(LineSerializer, SingleBodyRunsImmediately)
{
    EventQueue eq;
    LineSerializer ser(eq);
    bool ran = false;
    eq.schedule(5, [&] {
        ser.submit(1, [&](Cycle t) {
            ran = true;
            EXPECT_EQ(t, 5u);
            return t + 10;
        });
    });
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(LineSerializer, SameLineBodiesSerialize)
{
    EventQueue eq;
    LineSerializer ser(eq);
    std::vector<Cycle> starts;
    eq.schedule(0, [&] {
        for (int i = 0; i < 3; ++i) {
            ser.submit(7, [&](Cycle t) {
                starts.push_back(t);
                return t + 10;
            });
        }
    });
    eq.run();
    ASSERT_EQ(starts.size(), 3u);
    EXPECT_EQ(starts[0], 0u);
    EXPECT_EQ(starts[1], 10u);
    EXPECT_EQ(starts[2], 20u);
}

TEST(LineSerializer, DifferentLinesRunConcurrently)
{
    EventQueue eq;
    LineSerializer ser(eq);
    std::vector<Cycle> starts;
    eq.schedule(0, [&] {
        for (LineAddr l = 0; l < 3; ++l) {
            ser.submit(l, [&](Cycle t) {
                starts.push_back(t);
                return t + 100;
            });
        }
    });
    eq.run();
    ASSERT_EQ(starts.size(), 3u);
    for (Cycle s : starts)
        EXPECT_EQ(s, 0u);
}

TEST(LineSerializer, BusyReflectsInFlightTransaction)
{
    EventQueue eq;
    LineSerializer ser(eq);
    eq.schedule(0, [&] {
        ser.submit(3, [&](Cycle t) { return t + 50; });
        EXPECT_TRUE(ser.busy(3));
        EXPECT_FALSE(ser.busy(4));
    });
    eq.run();
    EXPECT_FALSE(ser.busy(3));
}

TEST(LineSerializer, BodyMaySubmitToSameLine)
{
    EventQueue eq;
    LineSerializer ser(eq);
    int order = 0;
    eq.schedule(0, [&] {
        ser.submit(9, [&](Cycle t) {
            EXPECT_EQ(order++, 0);
            ser.submit(9, [&order, t](Cycle t2) {
                EXPECT_EQ(order++, 1);
                EXPECT_GE(t2, t + 5);
                return t2;
            });
            return t + 5;
        });
    });
    eq.run();
    EXPECT_EQ(order, 2);
}

TEST(DirectoryCapacity, AllocatesWithoutEvictionUnderCapacity)
{
    StatsRegistry stats;
    DirectoryCapacity cap(64, 8, 16, stats);
    for (LineAddr l = 0; l < 100; ++l)
        EXPECT_FALSE(cap.allocate(l).has_value()) << l;
    EXPECT_EQ(stats.get("dir.evictions"), 0u);
}

TEST(DirectoryCapacity, EvictsWhenSetFull)
{
    StatsRegistry stats;
    // 8 entries/bank, 8 banks -> one set of 8 ways per bank.
    DirectoryCapacity cap(8, 8, 16, stats);
    // Same bank (low bits 0), distinct tags.
    for (LineAddr l = 0; l < 9 * 8; l += 8)
        cap.allocate(l);
    EXPECT_GT(stats.get("dir.evictions"), 0u);
}

TEST(DirectoryCapacity, ReleaseFreesTheWay)
{
    StatsRegistry stats;
    DirectoryCapacity cap(8, 8, 16, stats);
    for (LineAddr l = 0; l < 8 * 8; l += 8)
        cap.allocate(l);
    cap.release(0);
    EXPECT_FALSE(cap.allocate(512).has_value()); // Reuses the freed way.
}

TEST(DirectoryCapacity, EvictBufferBookkeeping)
{
    StatsRegistry stats;
    DirectoryCapacity cap(64, 8, 4, stats);
    cap.evictBufferEnter(1);
    cap.evictBufferEnter(2);
    EXPECT_TRUE(cap.inEvictBuffer(1));
    EXPECT_EQ(cap.evictBufferOccupancy(), 2u);
    cap.evictBufferLeave(1);
    EXPECT_FALSE(cap.inEvictBuffer(1));
    EXPECT_EQ(cap.evictBufferOccupancy(), 1u);
    EXPECT_GT(stats.histogram("dir.evict_buffer_occupancy").samples(),
              0u);
}

TEST(DirectoryEviction, TinyDirectoryStillRunsCorrectly)
{
    // A pathologically small directory forces §III-B entry teardowns
    // (zombie entries, forced freezes); the run must stay correct.
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.dirEntriesPerBank = 16;
    cfg.recordStores = true;
    const Workload w = generateByName("canneal", cfg.numCores, 3, 0.05);
    System sys(cfg, w);
    sys.run();
    EXPECT_GT(sys.stats().get("dir.evictions"), 0u);
    const CheckResult res =
        checkDurableState(sys.durableImage(), sys.storeLog(),
                          PersistModel::StrictTso, cfg.numCores);
    EXPECT_TRUE(res.ok) << res.detail;
    EXPECT_EQ(res.requiredStores, sys.storeLog().totalStores());
}

TEST(DirectoryEviction, TinyDirectoryCrashConsistency)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.dirEntriesPerBank = 16;
    cfg.recordStores = true;
    const Workload w = generateByName("canneal", cfg.numCores, 4, 0.05);
    Cycle full = 0;
    {
        System sys(cfg, w);
        full = sys.run();
    }
    for (unsigned i = 1; i <= 4; ++i) {
        System sys(cfg, w);
        const auto durable = sys.runUntilCrash(full * i / 5);
        const CheckResult res =
            checkDurableState(durable, sys.storeLog(),
                              PersistModel::StrictTso, cfg.numCores);
        EXPECT_TRUE(res.ok) << "crash " << i << ": " << res.detail;
    }
}

TEST(DirectoryEviction, MesiTeardownInvalidatesSharers)
{
    SystemConfig cfg = makeConfig(EngineKind::None);
    cfg.protocol = ProtocolKind::Mesi;
    cfg.dirEntriesPerBank = 16;
    const Workload w = generateByName("canneal", cfg.numCores, 5, 0.05);
    System sys(cfg, w);
    EXPECT_GT(sys.run(), 0u);
    EXPECT_GT(sys.stats().get("dir.evictions"), 0u);
}

TEST(LineSerializer, IdleLinesAreErased)
{
    // The serializer's map must be bounded by in-flight transactions,
    // not by how many distinct lines a long run ever touched.
    EventQueue eq;
    LineSerializer ser(eq);
    for (LineAddr line = 0; line < 500; ++line) {
        eq.schedule(line * 3, [&ser, line] {
            ser.submit(line, [](Cycle t) { return t + 2; });
        });
    }
    eq.run();
    EXPECT_EQ(ser.trackedLines(), 0u);

    // Queued work keeps exactly the busy lines alive, then drains.
    eq.schedule(eq.now() + 1, [&] {
        ser.submit(7, [](Cycle t) { return t + 50; });
        ser.submit(7, [](Cycle t) { return t + 50; });
        ser.submit(9, [](Cycle t) { return t + 10; });
    });
    eq.runUntil([&] { return ser.trackedLines() == 2; });
    EXPECT_TRUE(ser.busy(7));
    eq.run();
    EXPECT_EQ(ser.trackedLines(), 0u);
    EXPECT_FALSE(ser.busy(7));
}

TEST(DirectoryCapacity, EvictBufferOverflowPanics)
{
    StatsRegistry stats;
    DirectoryCapacity dir(64, 1, /*evictBufferEntries=*/2, stats);
    dir.evictBufferEnter(1);
    dir.evictBufferEnter(2);
    EXPECT_EQ(dir.evictBufferOccupancy(), 2u);
    // A third in-teardown entry exceeds the modelled buffer: the model
    // has no backpressure path, so this must be a hard invariant.
    EXPECT_THROW(dir.evictBufferEnter(3), std::logic_error);
    dir.evictBufferLeave(2);
    EXPECT_EQ(dir.evictBufferOccupancy(), 2u);
}
