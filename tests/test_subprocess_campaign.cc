/** @file End-to-end tests for the subprocess cell executor: a real
 *  tsoper_sim child per attempt, with deliberate misbehaviour
 *  (SIGSEGV, hang, runaway allocation) injected via --selftest to
 *  prove containment, classification, reaping, and quarantine.
 *
 *  TSOPER_SIM_BINARY is injected by tests/CMakeLists.txt as
 *  $<TARGET_FILE:tsoper_cli>, so the child is always the binary built
 *  alongside this test. */

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/journal.hh"
#include "campaign/runner.hh"
#include "campaign/subprocess.hh"

using namespace tsoper;
using namespace tsoper::campaign;

#if defined(__SANITIZE_ADDRESS__)
#define TSOPER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TSOPER_ASAN 1
#endif
#endif
#ifndef TSOPER_ASAN
#define TSOPER_ASAN 0
#endif

namespace
{

#if TSOPER_ASAN
// ASan intercepts SIGSEGV and exits 1 by default, which would
// reclassify the segv selftest child as CheckFailed instead of
// Crashed.  Children read ASAN_OPTIONS at startup, so turning the
// interception off here covers every child this test spawns; the
// parent's runtime read its own options long before this runs.
const bool disableChildSegvHandling = [] {
    const char *prev = std::getenv("ASAN_OPTIONS");
    std::string opts = prev ? std::string(prev) + ":" : std::string();
    opts += "handle_segv=0";
    ::setenv("ASAN_OPTIONS", opts.c_str(), 1);
    return true;
}();
#endif

RunRequest
tinyRequest(const std::string &id)
{
    RunRequest r;
    r.id = id;
    r.bench = "dedup";
    r.scale = 0.05;
    r.check = true;
    return r;
}

SubprocessOptions
simOptions()
{
    SubprocessOptions opt;
    opt.simBinary = TSOPER_SIM_BINARY;
    return opt;
}

/** The pid must be fully reaped: not running, not a zombie. */
void
expectReaped(int pid)
{
    ASSERT_GT(pid, 0);
    errno = 0;
    const int rc = ::kill(pid, 0);
    // Either the pid is gone entirely, or it was already recycled by
    // an unrelated process we have no right to signal.
    EXPECT_TRUE(rc == -1) << "child " << pid << " still signalable";
    if (rc == -1) {
        EXPECT_TRUE(errno == ESRCH || errno == EPERM) << errno;
    }
}

} // namespace

TEST(Subprocess, RequestToArgvCoversEveryKnob)
{
    RunRequest r = tinyRequest("argv");
    r.engine = "stw";
    r.seed = 7;
    r.cores = 4;
    r.agMaxLines = 12;
    r.agbSliceLines = 3;
    r.crashAt = 0.5;
    r.maxCycles = 999;

    const std::vector<std::string> argv = requestToArgv(r, "simbin");
    EXPECT_EQ(argv.front(), "simbin");
    const auto has = [&](const std::string &s) {
        for (const std::string &a : argv)
            if (a == s)
                return true;
        return false;
    };
    EXPECT_TRUE(has("--engine=stw"));
    EXPECT_TRUE(has("--bench=dedup"));
    EXPECT_TRUE(has("--seed=7"));
    EXPECT_TRUE(has("--cores=4"));
    EXPECT_TRUE(has("--ag-max-lines=12"));
    EXPECT_TRUE(has("--agb-slice-lines=3"));
    EXPECT_TRUE(has("--crash-at=0.5"));
    EXPECT_TRUE(has("--check"));
    EXPECT_TRUE(has("--max-cycles=999"));
}

TEST(Subprocess, OkCellHasFullFidelityVersusInProcess)
{
    const RunRequest r = tinyRequest("parity");

    const RunResult inProc = runOne(r);
    ASSERT_EQ(inProc.status, RunStatus::Ok) << inProc.detail;

    const SubprocessOutcome out = runSubprocess(r, simOptions());
    ASSERT_EQ(out.result.status, RunStatus::Ok) << out.result.detail;
    expectReaped(out.pid);

    // The child round-trips its RunResult through --result-json, so
    // nothing is lost versus running in-process.
    EXPECT_EQ(out.result.cycles, inProc.cycles);
    EXPECT_EQ(out.result.drainCycles, inProc.drainCycles);
    EXPECT_EQ(out.result.ops, inProc.ops);
    EXPECT_EQ(out.result.audited, inProc.audited);
    EXPECT_EQ(out.result.durableWords, inProc.durableWords);
    EXPECT_EQ(out.result.stats.dump(), inProc.stats.dump());
    EXPECT_EQ(out.result.exitCode, 0);
}

TEST(Subprocess, SegvChildIsContainedAndClassified)
{
    SubprocessOptions opt = simOptions();
    opt.extraArgs = [](const RunRequest &) {
        return std::vector<std::string>{"--selftest=segv"};
    };

    const SubprocessOutcome out =
        runSubprocess(tinyRequest("segv"), opt);
    expectReaped(out.pid);
    EXPECT_EQ(out.result.status, RunStatus::Crashed);
    EXPECT_EQ(out.result.signalName, "SIGSEGV");
    EXPECT_NE(out.result.detail.find("SIGSEGV"), std::string::npos)
        << out.result.detail;
}

TEST(Subprocess, HangingChildIsKilledAndReaped)
{
    SubprocessOptions opt = simOptions();
    opt.timeout = std::chrono::milliseconds(400);
    opt.extraArgs = [](const RunRequest &) {
        return std::vector<std::string>{"--selftest=hang"};
    };

    const SubprocessOutcome out =
        runSubprocess(tinyRequest("hang"), opt);
    EXPECT_TRUE(out.timedOut);
    EXPECT_EQ(out.result.status, RunStatus::Timeout);
    EXPECT_EQ(out.result.signalName, "SIGKILL");
    EXPECT_NE(out.result.detail.find("SIGKILL"), std::string::npos);
    // The kill is followed by a blocking reap before runSubprocess
    // returns: no orphan may survive the call.
    expectReaped(out.pid);
}

TEST(Subprocess, MemoryRlimitContainsRunawayChild)
{
    if (TSOPER_ASAN)
        GTEST_SKIP() << "RLIMIT_AS breaks ASan shadow reservations";

    SubprocessOptions opt = simOptions();
    opt.memLimitMb = 192;
    opt.extraArgs = [](const RunRequest &) {
        return std::vector<std::string>{"--selftest=gulp"};
    };

    const SubprocessOutcome out =
        runSubprocess(tinyRequest("gulp"), opt);
    expectReaped(out.pid);
    // bad_alloc -> std::terminate -> SIGABRT inside the child.
    EXPECT_EQ(out.result.status, RunStatus::Crashed)
        << out.result.detail;
    EXPECT_EQ(out.result.signalName, "SIGABRT");
}

TEST(Subprocess, BadEngineClassifiesAsBadRequest)
{
    RunRequest r = tinyRequest("bad-engine");
    r.engine = "warp-drive";
    const SubprocessOutcome out = runSubprocess(r, simOptions());
    expectReaped(out.pid);
    EXPECT_EQ(out.result.status, RunStatus::BadRequest)
        << out.result.detail;
}

// --- Campaign level ---------------------------------------------------

namespace
{

RunnerOptions
subprocessRunner()
{
    RunnerOptions opt;
    opt.isolation = Isolation::Subprocess;
    opt.subprocess = simOptions();
    opt.timeout = std::chrono::milliseconds(60'000);
    opt.retries = 1;
    opt.backoffBaseMs = 0;
    opt.jobs = 2;
    return opt;
}

} // namespace

TEST(SubprocessCampaign, SickCellsAreQuarantinedHealthyOnesSurvive)
{
    RunnerOptions opt = subprocessRunner();
    opt.timeout = std::chrono::milliseconds(1500);
    opt.subprocess.extraArgs = [](const RunRequest &r) {
        std::vector<std::string> extra;
        if (r.id == "segv")
            extra.push_back("--selftest=segv");
        else if (r.id == "hang")
            extra.push_back("--selftest=hang");
        return extra;
    };

    const std::vector<RunRequest> cells = {
        tinyRequest("good"), tinyRequest("segv"), tinyRequest("hang")};
    const CampaignReport report =
        runCampaign("sick", cells, opt);

    ASSERT_EQ(report.cells.size(), 3u);
    EXPECT_EQ(report.count(RunStatus::Ok), 1u);
    EXPECT_EQ(report.quarantinedCount(), 2u);
    EXPECT_FALSE(report.allOk());
    EXPECT_NE(report.summary().find("2 quarantined"),
              std::string::npos)
        << report.summary();

    const CellReport &segv = report.cells[1];
    EXPECT_TRUE(segv.quarantined);
    EXPECT_EQ(segv.result.status, RunStatus::Crashed);
    EXPECT_EQ(segv.attempts, 2u);
    ASSERT_EQ(segv.attemptLog.size(), 2u);
    EXPECT_EQ(segv.attemptLog[0].status, RunStatus::Crashed);

    const CellReport &hang = report.cells[2];
    EXPECT_TRUE(hang.quarantined);
    EXPECT_EQ(hang.result.status, RunStatus::Timeout);
    EXPECT_EQ(hang.result.signalName, "SIGKILL");

    // Subprocess isolation never detaches threads.
    EXPECT_EQ(report.orphanedThreads, liveOrphanCount());
}

TEST(SubprocessCampaign, JournalResumeSpawnsOnlyUnfinishedCells)
{
    const std::string path =
        ::testing::TempDir() + "tsoper_subproc_resume.jsonl";
    std::string err;

    std::atomic<int> spawns{0};
    RunnerOptions opt = subprocessRunner();
    opt.jobs = 1;
    opt.subprocess.extraArgs = [&](const RunRequest &) {
        spawns.fetch_add(1);
        return std::vector<std::string>{};
    };

    std::vector<RunRequest> cells;
    cells.push_back(tinyRequest("a"));
    cells.push_back(tinyRequest("b"));
    cells[1].seed = 2;

    // Interrupted sweep: only cell "a" made it into the journal.
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(path, "sp", /*truncate=*/true, &err));
    opt.journal = &journal;
    const CampaignReport first =
        runCampaign("sp", {cells[0]}, opt);
    journal.close();
    ASSERT_TRUE(first.allOk()) << first.summary();
    EXPECT_EQ(spawns.load(), 1);

    JournalIndex idx;
    ASSERT_TRUE(loadJournal(path, &idx, &err)) << err;

    // The resumed sweep execs only the missing cell, and the
    // journaled one comes back byte-identical.
    opt.journal = nullptr;
    opt.resumeFrom = &idx;
    const CampaignReport second = runCampaign("sp", cells, opt);
    EXPECT_EQ(spawns.load(), 2);
    EXPECT_EQ(second.resumedCount(), 1u);
    EXPECT_TRUE(second.cells[0].fromJournal);
    EXPECT_FALSE(second.cells[1].fromJournal);
    EXPECT_EQ(second.cells[0].toJson().dump(),
              first.cells[0].toJson().dump());
    EXPECT_TRUE(second.allOk()) << second.summary();
    std::remove(path.c_str());
}
