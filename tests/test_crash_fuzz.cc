/**
 * @file
 * Broad crash-injection fuzz: every one of the paper's 21 benchmark
 * profiles, run under TSOPER with crashes at three points spread over
 * the run, each reconstructed durable state checked to be a legal
 * strict-TSO cut.  Complements test_crash_property.cc (which goes deep
 * on a few benchmarks) with breadth across every access-pattern
 * kernel.
 */

#include <gtest/gtest.h>

#include "core/crash_checker.hh"
#include "core/system.hh"
#include "sim/rng.hh"
#include "workload/generators.hh"

using namespace tsoper;

class CrashFuzz : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CrashFuzz, TsoperStrictCutAtThreeCrashPoints)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.recordStores = true;
    const Workload w = generateByName(GetParam(), cfg.numCores,
                                      0xFACE, 0.03);
    Cycle full = 0;
    {
        System sys(cfg, w);
        full = sys.run();
    }
    Rng rng(0xFACE ^ std::hash<std::string>{}(GetParam()));
    for (unsigned i = 0; i < 3; ++i) {
        const Cycle crashAt = 1 + rng.below(full);
        SCOPED_TRACE("crash@" + std::to_string(crashAt));
        System sys(cfg, w);
        const auto durable = sys.runUntilCrash(crashAt);
        const auto res = checkDurableState(durable, sys.storeLog(),
                                           PersistModel::StrictTso,
                                           cfg.numCores);
        EXPECT_TRUE(res.ok) << res.detail;
    }
}

TEST_P(CrashFuzz, DrainedRunExposesEveryStore)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.recordStores = true;
    const Workload w = generateByName(GetParam(), cfg.numCores,
                                      0xFEED, 0.03);
    System sys(cfg, w);
    sys.run();
    const auto res = checkDurableState(sys.durableImage(),
                                       sys.storeLog(),
                                       PersistModel::StrictTso,
                                       cfg.numCores);
    EXPECT_TRUE(res.ok) << res.detail;
    EXPECT_EQ(res.requiredStores, sys.storeLog().totalStores());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, CrashFuzz,
                         ::testing::ValuesIn(benchmarkNames()),
                         [](const auto &info) { return info.param; });
