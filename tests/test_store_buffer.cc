/** @file Unit tests for the TSO store buffer. */

#include <gtest/gtest.h>

#include "mem/store_buffer.hh"

using namespace tsoper;

TEST(StoreBuffer, FifoOrder)
{
    StoreBuffer sb(4);
    sb.push(0x100, makeStoreId(0, 0));
    sb.push(0x200, makeStoreId(0, 1));
    EXPECT_EQ(sb.front().addr, 0x100u);
    sb.pop();
    EXPECT_EQ(sb.front().addr, 0x200u);
}

TEST(StoreBuffer, CapacityAndFull)
{
    StoreBuffer sb(2);
    EXPECT_FALSE(sb.full());
    sb.push(0x0, makeStoreId(0, 0));
    sb.push(0x8, makeStoreId(0, 1));
    EXPECT_TRUE(sb.full());
    EXPECT_THROW(sb.push(0x10, makeStoreId(0, 2)), std::logic_error);
}

TEST(StoreBuffer, ForwardsYoungestSameWord)
{
    StoreBuffer sb(4);
    sb.push(0x100, makeStoreId(0, 0));
    sb.push(0x100, makeStoreId(0, 1)); // Same word, younger.
    sb.push(0x108, makeStoreId(0, 2)); // Different word.
    auto f = sb.forward(0x100);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(*f, makeStoreId(0, 1));
}

TEST(StoreBuffer, NoForwardForUntouchedWord)
{
    StoreBuffer sb(4);
    sb.push(0x100, makeStoreId(0, 0));
    EXPECT_FALSE(sb.forward(0x108).has_value());
}

TEST(StoreBuffer, ForwardMatchesWordNotByte)
{
    StoreBuffer sb(4);
    sb.push(0x100, makeStoreId(0, 0));
    // 0x104 lies within the same 8-byte word as 0x100.
    auto f = sb.forward(0x104);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(*f, makeStoreId(0, 0));
}

TEST(StoreBuffer, ContainsLine)
{
    StoreBuffer sb(4);
    sb.push(0x100, makeStoreId(0, 0));
    EXPECT_TRUE(sb.containsLine(lineOf(0x100)));
    EXPECT_TRUE(sb.containsLine(lineOf(0x138))); // Same 64 B line.
    EXPECT_FALSE(sb.containsLine(lineOf(0x140)));
    sb.pop();
    EXPECT_FALSE(sb.containsLine(lineOf(0x100)));
}

TEST(StoreBuffer, EmptyAccessorsPanic)
{
    StoreBuffer sb(2);
    EXPECT_THROW(sb.front(), std::logic_error);
    EXPECT_THROW(sb.pop(), std::logic_error);
}
