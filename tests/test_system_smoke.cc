/** @file End-to-end smoke tests: every system runs every kernel shape. */

#include <gtest/gtest.h>

#include <tuple>

#include "core/crash_checker.hh"
#include "core/system.hh"
#include "workload/generators.hh"

using namespace tsoper;

namespace
{

Workload
smallWorkload(const std::string &bench, unsigned cores,
              std::uint64_t seed = 1)
{
    return generateByName(bench, cores, seed, 0.05);
}

} // namespace

class SmokeTest
    : public ::testing::TestWithParam<std::tuple<EngineKind, std::string>>
{
};

TEST_P(SmokeTest, RunsToCompletion)
{
    const auto [engine, bench] = GetParam();
    SystemConfig cfg = makeConfig(engine);
    cfg.recordStores = true;
    const Workload w = smallWorkload(bench, cfg.numCores);
    System sys(cfg, w);
    const Cycle cycles = sys.run();
    EXPECT_GT(cycles, 0u);
    EXPECT_TRUE(sys.allFinished());
    // Every issued store was committed.
    EXPECT_EQ(sys.stats().get("cpu.stores"),
              sys.storeLog().totalStores());
    EXPECT_TRUE(sys.engine().quiescent());
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndShapes, SmokeTest,
    ::testing::Combine(
        ::testing::Values(EngineKind::None, EngineKind::Tsoper,
                          EngineKind::Stw, EngineKind::Bsp,
                          EngineKind::BspSlc, EngineKind::BspSlcAgb,
                          EngineKind::HwRp),
        ::testing::Values("ocean_cp", "radix", "dedup", "canneal",
                          "swaptions", "lu_ncb")),
    [](const auto &info) {
        std::string name = toString(std::get<0>(info.param));
        for (char &c : name)
            if (c == '-' || c == '+')
                c = '_';
        return name + "_" + std::get<1>(info.param);
    });

TEST(SmokeMesiBaseline, RunsToCompletion)
{
    SystemConfig cfg = makeConfig(EngineKind::None);
    cfg.protocol = ProtocolKind::Mesi;
    const Workload w = smallWorkload("ocean_cp", cfg.numCores);
    System sys(cfg, w);
    EXPECT_GT(sys.run(), 0u);
}

TEST(SmokeDrain, TsoperDurableStateIsComplete)
{
    // After a full run + drain, the durable state must equal the final
    // value of every word ever stored (a crash "after the end").
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.recordStores = true;
    const Workload w = smallWorkload("ocean_cp", cfg.numCores);
    System sys(cfg, w);
    sys.run();
    const auto durable = sys.durableImage();
    const auto &log = sys.storeLog();
    const CheckResult res = checkDurableState(
        durable, log, PersistModel::StrictTso, cfg.numCores);
    EXPECT_TRUE(res.ok) << res.detail;
    // Completeness: all stores are required and durable after drain.
    EXPECT_EQ(res.requiredStores, log.totalStores());
}

TEST(SmokeDeterminism, SameSeedSameCycles)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    const Workload w = smallWorkload("canneal", cfg.numCores, 3);
    System a(cfg, w);
    System b(cfg, w);
    EXPECT_EQ(a.run(), b.run());
}

TEST(SmokeStw, SlowerThanTsoper)
{
    const Workload w = smallWorkload("radix", 8, 2);
    SystemConfig tso = makeConfig(EngineKind::Tsoper);
    SystemConfig stw = makeConfig(EngineKind::Stw);
    System a(tso, w);
    System b(stw, w);
    const Cycle tsoperCycles = a.run();
    const Cycle stwCycles = b.run();
    EXPECT_GT(stwCycles, tsoperCycles);
}
