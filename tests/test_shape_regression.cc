/**
 * @file
 * Reproduction-shape regression tests: the orderings the paper's
 * evaluation establishes must hold on representative benchmarks, so a
 * model change that silently breaks the headline result fails CI, not
 * just the bench output.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/crash_checker.hh"
#include "core/system.hh"
#include "sim/stats_json.hh"
#include "workload/generators.hh"

using namespace tsoper;

namespace
{

double
gmeanOverhead(EngineKind engine, double scale = 0.1)
{
    const std::vector<std::string> benches = {"ocean_cp", "radix",
                                              "dedup", "bodytrack",
                                              "blackscholes"};
    double logSum = 0.0;
    for (const auto &bench : benches) {
        SystemConfig base = makeConfig(EngineKind::None);
        const Workload w = generateByName(bench, base.numCores, 1, scale);
        System baseline(base, w);
        const double baseCycles = static_cast<double>(baseline.run());
        SystemConfig cfg = makeConfig(engine);
        System sys(cfg, w);
        logSum += std::log(static_cast<double>(sys.run()) / baseCycles);
    }
    return std::exp(logSum / static_cast<double>(benches.size()));
}

} // namespace

TEST(ShapeRegression, Fig11SystemOrdering)
{
    const double hwrp = gmeanOverhead(EngineKind::HwRp);
    const double tsoper = gmeanOverhead(EngineKind::Tsoper);
    const double bsp = gmeanOverhead(EngineKind::Bsp);
    const double stw = gmeanOverhead(EngineKind::Stw);
    // The paper's ordering: HW-RP <= TSOPER < BSP < STW.
    EXPECT_LE(hwrp, tsoper * 1.02); // Allow 2% noise.
    EXPECT_LT(tsoper, bsp);
    EXPECT_LT(bsp, stw);
    // TSOPER's headline: strict TSO at near-relaxed cost.
    EXPECT_LT(tsoper, 1.25);
    // And STW shows why the machinery matters.
    EXPECT_GT(stw, 1.5);
}

TEST(ShapeRegression, Fig12SteppingStones)
{
    const double bsp = gmeanOverhead(EngineKind::Bsp);
    const double bspSlc = gmeanOverhead(EngineKind::BspSlc);
    const double bspSlcAgb = gmeanOverhead(EngineKind::BspSlcAgb);
    const double tsoper = gmeanOverhead(EngineKind::Tsoper);
    // Each innovation helps: BSP > +SLC > (+AGB ~ TSOPER).
    EXPECT_GT(bsp, bspSlc);
    EXPECT_GT(bspSlc * 1.02, bspSlcAgb);
    EXPECT_NEAR(bspSlcAgb, tsoper, 0.1);
}

TEST(ShapeRegression, Fig13AgSizesSmall)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.agMaxLines = 512;
    cfg.agbSliceLines = 1024;
    Histogram merged;
    for (const char *bench : {"ocean_cp", "dedup", "canneal"}) {
        const Workload w = generateByName(bench, cfg.numCores, 1, 0.1);
        System sys(cfg, w);
        sys.run();
        for (const auto &[v, n] :
             sys.stats().histogram("ag.size").buckets())
            merged.add(v, n);
    }
    // Paper: ~90% under 10 lines, <1% above 80.
    EXPECT_GT(merged.cumulativeAt(10), 0.80);
    EXPECT_LT(1.0 - merged.cumulativeAt(79), 0.02);
}

TEST(ShapeRegression, Fig14HwRpPersistsMoreOnLockHeavyApps)
{
    for (const char *bench : {"dedup", "x264"}) {
        SystemConfig rp = makeConfig(EngineKind::HwRp);
        const Workload w = generateByName(bench, rp.numCores, 1, 0.1);
        System hwrp(rp, w);
        hwrp.run();
        SystemConfig ts = makeConfig(EngineKind::Tsoper);
        System tsoper(ts, w);
        tsoper.run();
        EXPECT_GT(hwrp.stats().get("traffic.persist_wb"),
                  tsoper.stats().get("traffic.persist_wb"))
            << bench;
    }
}

TEST(ShapeRegression, StatsJsonByteIdenticalForFixedSeed)
{
    // The event kernel's tie-break-by-insertion-sequence guarantee
    // must surface all the way up: a fixed-seed run serializes to the
    // exact same --stats-json bytes every time.  This is the
    // regression gate for kernel swaps — any reordering inside the
    // calendar queue shows up here as a diff, not as silent drift in
    // the crash-state audits.
    auto statsText = [](EngineKind engine) {
        SystemConfig cfg = makeConfig(engine);
        const Workload w =
            generateByName("ocean_cp", cfg.numCores, 7, 0.05);
        System sys(cfg, w);
        sys.run();
        return statsJsonText(sys.stats());
    };
    for (EngineKind engine :
         {EngineKind::Tsoper, EngineKind::Bsp, EngineKind::HwRp}) {
        const std::string first = statsText(engine);
        const std::string second = statsText(engine);
        EXPECT_EQ(first, second) << toString(engine);
        EXPECT_NE(first.find("\"histograms\""), std::string::npos);
    }
}

class CoreCountMatrix : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CoreCountMatrix, TsoperScalesAcrossCoreCounts)
{
    SystemConfig cfg = makeConfig(EngineKind::Tsoper);
    cfg.numCores = GetParam();
    if (cfg.numCores > 8) {
        cfg.meshCols = 6;
        cfg.meshRows = 4;
    }
    cfg.recordStores = true;
    const Workload w =
        generateByName("canneal", cfg.numCores, 3, 0.04);
    System sys(cfg, w);
    EXPECT_GT(sys.run(), 0u);
    const auto res = checkDurableState(sys.durableImage(),
                                       sys.storeLog(),
                                       PersistModel::StrictTso,
                                       cfg.numCores);
    EXPECT_TRUE(res.ok) << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Cores, CoreCountMatrix,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u),
                         [](const auto &info) {
                             return std::to_string(info.param) + "cores";
                         });
