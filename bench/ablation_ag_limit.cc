/**
 * @file
 * Ablation A2 (DESIGN.md §5): the atomic-group hard cap and BSP's
 * epoch size.  §V-B argues BSP's 10,000-store epochs cost 3-5% over
 * 80-line epochs; Fig. 13 justifies the 80-line AG cap.  Two sweeps:
 *
 *   1. TSOPER with agMaxLines in {8..160} (normalized to 80);
 *   2. BSP+SLC+AGB with epoch sizes 10,000 stores vs ~80-line-worth of
 *      stores, approaching TSOPER (the paper's closing argument).
 */

#include "bench_util.hh"

using namespace tsoper;
using namespace tsoper::bench;

int
main(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);
    const std::vector<unsigned> caps = {8, 20, 40, 80, 160};
    std::printf("Ablation A2a — TSOPER vs AG hard cap (normalized to "
                "80 lines, scale=%.2f)\n\n", opt.scale);
    std::vector<std::string> headers;
    for (unsigned cap : caps)
        headers.push_back(std::to_string(cap));
    printHeader("benchmark", headers);
    std::vector<std::vector<double>> perCap(caps.size());
    for (const std::string &bench : opt.benchmarks) {
        double base = 0.0;
        std::vector<double> cols;
        for (unsigned cap : caps) {
            const Run run = runSystem(EngineKind::Tsoper, bench, opt,
                                      [cap](SystemConfig &cfg) {
                cfg.agMaxLines = cap;
                cfg.agbSliceLines = std::max(cfg.agbSliceLines, 2 * cap);
            });
            if (cap == 80)
                base = static_cast<double>(run.cycles);
            cols.push_back(static_cast<double>(run.cycles));
        }
        for (std::size_t i = 0; i < cols.size(); ++i) {
            cols[i] /= base;
            perCap[i].push_back(cols[i]);
        }
        printRow(bench, cols);
    }
    std::vector<double> gmeans;
    for (auto &v : perCap)
        gmeans.push_back(geomean(v));
    printRow("gmean", gmeans);

    std::printf("\nAblation A2b — BSP+SLC+AGB epoch size vs TSOPER "
                "(normalized to TSOPER)\n\n");
    printHeader("benchmark", {"10000st", "640st", "TSOPER"});
    std::vector<double> big, small;
    for (const std::string &bench : opt.benchmarks) {
        const Run tsoper = runSystem(EngineKind::Tsoper, bench, opt);
        const Run bspBig = runSystem(EngineKind::BspSlcAgb, bench, opt);
        const Run bspSmall = runSystem(EngineKind::BspSlcAgb, bench, opt,
                                       [](SystemConfig &cfg) {
            // ~80 cachelines worth of stores.
            cfg.bspEpochStores = 640;
        });
        const double b = static_cast<double>(bspBig.cycles) /
                         static_cast<double>(tsoper.cycles);
        const double s = static_cast<double>(bspSmall.cycles) /
                         static_cast<double>(tsoper.cycles);
        big.push_back(b);
        small.push_back(s);
        printRow(bench, {b, s, 1.0});
    }
    printRow("gmean", {geomean(big), geomean(small), 1.0});
    std::printf("\npaper: with 80-line epochs, BSP+SLC+AGB approaches "
                "TSOPER (remaining gap 3-5%% with 10k epochs).\n");
    return 0;
}
