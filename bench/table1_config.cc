/**
 * @file
 * Prints the modelled system configuration for every evaluated system
 * (paper Table I), including the substitutions documented in
 * DESIGN.md.
 */

#include <iostream>

#include "sim/config.hh"

using namespace tsoper;

int
main()
{
    std::cout << "Table I — simulated system configurations\n\n";
    for (EngineKind engine :
         {EngineKind::None, EngineKind::HwRp, EngineKind::Bsp,
          EngineKind::BspSlc, EngineKind::BspSlcAgb, EngineKind::Stw,
          EngineKind::Tsoper}) {
        const SystemConfig cfg = makeConfig(engine);
        std::cout << "=== " << toString(engine) << " ===\n";
        cfg.describe(std::cout);
        std::cout << "\n";
    }
    std::cout << "Substitutions vs the paper's Table I (see DESIGN.md):\n"
              << "  - Sniper front-end + PARSEC/Splash  -> synthetic "
                 "per-benchmark profiles\n"
              << "  - private L1+L2                     -> one private "
                 "level sized like the L2\n"
              << "  - GARNET                            -> 4x4 mesh, XY "
                 "routing, link contention\n";
    return 0;
}
