/**
 * @file
 * Ablation A3 (DESIGN.md §5): eviction-buffer pressure.  The paper's
 * footnote 3 states a 16-entry eviction buffer never experiences
 * pressure.  We shrink the private cache to force evictions and report
 * the maximum eviction-buffer occupancy (lines evicted while their AG
 * is still persisting) per benchmark, plus the directory eviction
 * buffer occupancy under a shrunken directory.
 */

#include "bench_util.hh"

using namespace tsoper;
using namespace tsoper::bench;

int
main(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);
    std::printf("Ablation A3 — eviction-buffer occupancy under cache "
                "pressure (scale=%.2f)\n\n", opt.scale);
    printHeader("benchmark",
                {"evb-max", "evb-mean", "dirb-max", "cycles"});
    std::uint64_t worst = 0;
    for (const std::string &bench : opt.benchmarks) {
        const Run run = runSystem(EngineKind::Tsoper, bench, opt,
                                  [](SystemConfig &cfg) {
            cfg.privSets = 64; // 32 KiB private cache: heavy eviction.
            cfg.dirEntriesPerBank = 512;
        });
        const Histogram &evb =
            run.sys->stats().histogram("slc.evict_buffer_occupancy");
        const Histogram &dirb =
            run.sys->stats().histogram("dir.evict_buffer_occupancy");
        worst = std::max(worst, evb.max());
        printRow(bench, {static_cast<double>(evb.max()), evb.mean(),
                         static_cast<double>(dirb.max()),
                         static_cast<double>(run.cycles)});
    }
    std::printf("\nworst per-core eviction-buffer occupancy observed: "
                "%llu\npaper footnote 3: a 16-entry eviction buffer "
                "suffices.\n",
                static_cast<unsigned long long>(worst));
    return 0;
}
