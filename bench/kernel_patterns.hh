/**
 * @file
 * Synthetic event-kernel workloads shared by bench/micro_kernel.cc
 * (google-benchmark registration) and tools/tsoper_bench.cc (the
 * wall-clock driver that emits BENCH_kernel.json).
 *
 * Each pattern drives a fresh EventQueue through a deterministic
 * schedule shaped like one of the simulator's real event mixes and
 * returns the number of events executed, so callers can report
 * events/sec.  The capture sizes are chosen to match the hot call
 * sites: protocol events carry a (this, line, payload) tuple and the
 * NVM path additionally carries a full cacheline of words.
 */

#ifndef TSOPER_BENCH_KERNEL_PATTERNS_HH
#define TSOPER_BENCH_KERNEL_PATTERNS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/shard_queue.hh"

namespace tsoper::bench
{

/** Deterministic 64-bit mixer (splitmix64); no global RNG state. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * schedule-heavy: @p chains independent self-rescheduling activities
 * (cores retiring, NoC hops) with small pseudo-random latencies in
 * [1, 64], the dominant deltas in a full-system run.
 */
inline std::uint64_t
patternScheduleHeavy(std::uint64_t events, unsigned chains = 64)
{
    EventQueue eq;
    std::uint64_t remaining = events;
    struct Chain
    {
        EventQueue *eq;
        std::uint64_t *remaining;
        std::uint64_t state;
        void
        operator()()
        {
            if (*remaining == 0)
                return;
            --*remaining;
            state = mix64(state);
            eq->scheduleIn(1 + (state & 63), Chain{*this});
        }
    };
    for (unsigned c = 0; c < chains; ++c)
        eq.scheduleIn(1 + c % 7, Chain{&eq, &remaining, mix64(c + 1)});
    eq.run();
    return eq.executed();
}

/**
 * zero-delay-heavy: waiter wakeups and retry continuations
 * (slc.cc zombie/node waiters, engine retries) — long runs of
 * scheduleIn(0) interleaved with an occasional timed event.
 */
inline std::uint64_t
patternZeroDelayHeavy(std::uint64_t events)
{
    EventQueue eq;
    std::uint64_t remaining = events;
    struct Waiter
    {
        EventQueue *eq;
        std::uint64_t *remaining;
        std::uint64_t state;
        void
        operator()()
        {
            if (*remaining == 0)
                return;
            --*remaining;
            state = mix64(state);
            // 15/16 continuations are same-cycle wakeups.
            eq->scheduleIn((state & 15) == 0 ? 1 + (state >> 8) % 32 : 0,
                           Waiter{*this});
        }
    };
    for (unsigned c = 0; c < 8; ++c)
        eq.scheduleIn(0, Waiter{&eq, &remaining, mix64(c + 101)});
    eq.run();
    return eq.executed();
}

/**
 * mixed-latency: the full-system blend — zero-delay continuations,
 * small coherence latencies, medium NoC/LLC trips, and far-future NVM
 * completions carrying a 64-byte payload (as Nvm::write does).
 */
inline std::uint64_t
patternMixedLatency(std::uint64_t events, unsigned chains = 32)
{
    EventQueue eq;
    std::uint64_t remaining = events;
    struct Actor
    {
        EventQueue *eq;
        std::uint64_t *remaining;
        std::uint64_t state;
        std::array<std::uint64_t, 8> words; // NVM-writeback payload.
        void
        operator()()
        {
            if (*remaining == 0)
                return;
            --*remaining;
            state = mix64(state ^ words[state & 7]);
            words[state & 7] = state;
            const unsigned kind = state % 100;
            Cycle delta;
            if (kind < 25)
                delta = 0; // waiter wakeup
            else if (kind < 70)
                delta = 1 + (state >> 8) % 16; // L1/SLC hop
            else if (kind < 95)
                delta = 40 + (state >> 8) % 200; // NoC + LLC trip
            else
                delta = 2000 + (state >> 8) % 4000; // NVM completion
            eq->scheduleIn(delta, Actor{*this});
        }
    };
    for (unsigned c = 0; c < chains; ++c) {
        Actor a{&eq, &remaining, mix64(c + 1001), {}};
        eq.scheduleIn(c % 11, std::move(a));
    }
    eq.run();
    return eq.executed();
}

/**
 * mixed-latency over the sharded kernel: the same event blend as
 * patternMixedLatency, partitioned across @p shards tiles.  Each shard
 * owns a quota of events and a set of actors; the NoC-trip slice of
 * the mix (25% of firings) migrates the actor to a neighbouring shard
 * with a delay that covers the lookahead, exercising the cross-shard
 * outbox path.  Actors re-bind to the destination shard's quota when
 * they migrate, so every counter is only ever touched by the worker
 * executing its shard — the pattern is race-free by construction and
 * runs clean under ThreadSanitizer.
 */
inline std::uint64_t
patternMixedLatencySharded(std::uint64_t events, unsigned shards,
                           unsigned threads, Cycle lookahead = 3,
                           unsigned chainsPerShard = 8)
{
    ShardedEventQueue eq(shards, threads, lookahead);
    std::vector<std::uint64_t> quota(shards, events / shards);
    struct Actor
    {
        ShardedEventQueue *eq;
        std::vector<std::uint64_t> *quota;
        unsigned shard;
        unsigned shards;
        Cycle la;
        std::uint64_t state;
        std::array<std::uint64_t, 8> words; // NVM-writeback payload.
        void
        operator()()
        {
            std::uint64_t &rem = (*quota)[shard];
            if (rem == 0)
                return;
            --rem;
            state = mix64(state ^ words[state & 7]);
            words[state & 7] = state;
            const unsigned kind = state % 100;
            if (kind < 25) {
                eq->post(shard, shard, 0, Actor{*this}); // waiter wakeup
            } else if (kind < 70) {
                eq->post(shard, shard, 1 + (state >> 8) % 16,
                         Actor{*this}); // L1/SLC hop
            } else if (kind < 95) {
                // NoC + LLC trip to another tile: the actor hops to a
                // pseudo-random peer shard and continues there.
                Actor next{*this};
                next.shard = static_cast<unsigned>(
                    (shard + 1 + (state >> 16) % (shards > 1 ? shards - 1
                                                             : 1)) %
                    shards);
                const Cycle delta = la + 40 + (state >> 8) % 200;
                const unsigned dst = next.shard;
                eq->post(shard, dst, delta, std::move(next));
            } else {
                eq->post(shard, shard, 2000 + (state >> 8) % 4000,
                         Actor{*this}); // NVM completion
            }
        }
    };
    for (unsigned s = 0; s < shards; ++s) {
        for (unsigned c = 0; c < chainsPerShard; ++c) {
            Actor a{&eq,    &quota, s, shards, lookahead,
                    mix64(s * 257 + c + 1001), {}};
            eq.post(s, s, (s + c) % 11, std::move(a));
        }
    }
    eq.run();
    return eq.executed();
}

} // namespace tsoper::bench

#endif // TSOPER_BENCH_KERNEL_PATTERNS_HH
