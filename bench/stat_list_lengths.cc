/**
 * @file
 * Reproduces the §V-B sharing-list statistics: the average *persist*
 * list length (all versions, including invalid ones awaiting persist)
 * exceeds the average *coherence* list length (valid copies only) —
 * the visible footprint of SLC's L1 multiversion buffering.  The paper
 * quotes persist lists averaging ~4 vs coherence lists below ~2, with
 * per-benchmark spread (dedup ~2, x264 ~4, bodytrack ~6).
 */

#include "bench_util.hh"

using namespace tsoper;
using namespace tsoper::bench;

int
main(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);
    std::printf("Sharing-list lengths under TSOPER (scale=%.2f)\n\n",
                opt.scale);
    printHeader("benchmark", {"persist", "coh", "p-shared", "c-shared",
                              "p-max", "evbuf-max"});
    // "shared" columns average only over samples with >= 2 nodes — the
    // contended lines the paper's list-length discussion is about (a
    // global average is dominated by the mass of single-node private
    // lines).
    const auto contendedMean = [](const Histogram &h) {
        std::uint64_t n = 0, sum = 0;
        for (const auto &[value, count] : h.buckets()) {
            if (value >= 2) {
                n += count;
                sum += value * count;
            }
        }
        return n ? static_cast<double>(sum) / static_cast<double>(n)
                 : 0.0;
    };
    std::vector<double> persist, coherence;
    for (const std::string &bench : opt.benchmarks) {
        const Run run = runSystem(EngineKind::Tsoper, bench, opt);
        auto &stats = run.sys->stats();
        const Histogram &p = stats.histogram("slc.persist_list_len");
        const Histogram &c = stats.histogram("slc.coherence_list_len");
        const Histogram &e =
            stats.histogram("slc.evict_buffer_occupancy");
        persist.push_back(std::max(0.01, contendedMean(p)));
        coherence.push_back(std::max(0.01, contendedMean(c)));
        printRow(bench, {p.mean(), c.mean(), contendedMean(p),
                         contendedMean(c),
                         static_cast<double>(p.max()),
                         static_cast<double>(e.max())});
    }
    std::printf("%.*s\n", 74, "----------------------------------------"
                              "----------------------------------");
    printRow("mean", {0.0, 0.0, geomean(persist), geomean(coherence),
                      0.0, 0.0});
    std::printf("\npaper: persist lists ~4 avg; coherence lists below "
                "~2; 16-entry eviction buffers never pressured.\n");
    return 0;
}
