/**
 * @file
 * Reproduces Fig. 15: SFR size (HW-RP) vs AG size (TSOPER) on
 * ocean_cp, as (a) a timeline of region sizes in stores over the run
 * (rendered as per-interval averages) and (b) cumulative histograms.
 *
 * Expected shape (paper): HW-RP produces a mass (>90%) of tiny SFRs
 * plus a few huge ones (the free-running inter-barrier regions), with
 * the periodic barrier cadence visible in the timeline; TSOPER's AGs
 * are sized by data sharing and coalesce far more uniformly.
 */

#include "bench_util.hh"

using namespace tsoper;
using namespace tsoper::bench;

namespace
{

void
printTimeline(const char *name, const TimeSeries &series, Cycle span)
{
    constexpr unsigned buckets = 24;
    std::vector<double> sum(buckets, 0.0);
    std::vector<unsigned> count(buckets, 0);
    for (const auto &[when, value] : series.points()) {
        const auto b = static_cast<unsigned>(
            std::min<Cycle>(buckets - 1, when * buckets / (span + 1)));
        sum[b] += value;
        ++count[b];
    }
    std::printf("%s timeline (avg region size in stores per 1/24th of "
                "the run):\n  ", name);
    for (unsigned b = 0; b < buckets; ++b)
        std::printf("%6.1f", count[b] ? sum[b] / count[b] : 0.0);
    std::printf("\n");
}

void
printCumulative(const char *name, const Histogram &h)
{
    std::printf("%s cumulative (by stores): samples=%llu mean=%.1f\n",
                name, static_cast<unsigned long long>(h.samples()),
                h.mean());
    for (std::uint64_t s : {0, 1, 2, 4, 8, 16, 64, 256, 1024, 2560}) {
        std::printf("    <=%-5llu %6.1f%%\n",
                    static_cast<unsigned long long>(s),
                    100.0 * h.cumulativeAt(s));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseOptions(argc, argv);
    const std::string bench = "ocean_cp";
    std::printf("Fig. 15 — SFR size (HW-RP) vs AG size (TSOPER) on %s "
                "(scale=%.2f)\n\n", bench.c_str(), opt.scale);

    const Run hwrp = runSystem(EngineKind::HwRp, bench, opt);
    const Run tsoper = runSystem(EngineKind::Tsoper, bench, opt);

    printTimeline("HW-RP SFR", hwrp.sys->stats().timeSeries(
                                   "hwrp.sfr_stores_t"),
                  hwrp.cycles);
    printTimeline("TSOPER AG",
                  tsoper.sys->stats().timeSeries("ag.stores_t"),
                  tsoper.cycles);
    std::printf("\n");
    printCumulative("HW-RP SFR",
                    hwrp.sys->stats().histogram("hwrp.sfr_stores"));
    printCumulative("TSOPER AG",
                    tsoper.sys->stats().histogram("ag.stores"));

    std::printf("\nNVM persist volume (lines written to the persistent "
                "domain):\n  HW-RP  %llu\n  TSOPER %llu\n",
                static_cast<unsigned long long>(
                    hwrp.sys->stats().get("traffic.persist_wb")),
                static_cast<unsigned long long>(
                    tsoper.sys->stats().get("traffic.persist_wb")));
    std::printf("\npaper: HW-RP: >90%% of SFRs tiny, <3%% over 2.5K "
                "stores; TSOPER coalesces more and writes less to "
                "NVM.\n");
    return 0;
}
