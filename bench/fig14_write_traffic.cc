/**
 * @file
 * Reproduces Fig. 14: coherence write traffic (downgrades/writebacks
 * to the LLC) vs persistence write traffic (writes to AGBs and NVM),
 * normalized to the baseline's coherence traffic.
 *
 * Expected shape (paper): BSP/STW/TSOPER persist roughly as much as
 * they write back (coalescing keeps persist volume at writeback
 * level); HW-RP persists much more (it re-persists lines at every
 * small SFR).
 *
 * Configuration note: the paper's workloads exceed their 512 KiB
 * private caches, so the baseline has a steady stream of eviction
 * writebacks (its "100%").  Our synthetic working sets are
 * cache-resident at that size, so this figure runs all systems with a
 * 64 KiB private cache to reproduce the same capacity-stressed traffic
 * regime (see EXPERIMENTS.md).
 */

#include "bench_util.hh"

using namespace tsoper;
using namespace tsoper::bench;

int
main(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);
    const std::vector<EngineKind> systems = {
        EngineKind::HwRp, EngineKind::Bsp, EngineKind::Stw,
        EngineKind::Tsoper};

    std::printf("Fig. 14 — write traffic normalized to baseline "
                "coherence writebacks (scale=%.2f)\n"
                "          (each system: coherence | persistence)\n\n",
                opt.scale);
    printHeader("benchmark",
                {"RP-coh", "RP-per", "BSP-coh", "BSP-per", "STW-coh",
                 "STW-per", "TSO-coh", "TSO-per"});

    const auto stress = [](SystemConfig &cfg) {
        cfg.privSets = 16;  // 8 KiB private cache: capacity-stressed.
        if (cfg.engine == EngineKind::Bsp)
            cfg.protocol = ProtocolKind::Mesi;
    };
    std::vector<std::vector<double>> cols(2 * systems.size());
    for (const std::string &bench : opt.benchmarks) {
        const Run base = runSystem(EngineKind::None, bench, opt, stress);
        const double baseWb = std::max<double>(
            1.0, static_cast<double>(
                     base.sys->stats().get("traffic.coherence_wb")));
        std::vector<double> row;
        for (std::size_t s = 0; s < systems.size(); ++s) {
            const Run run = runSystem(systems[s], bench, opt, stress);
            const double coh =
                static_cast<double>(
                    run.sys->stats().get("traffic.coherence_wb")) /
                baseWb;
            const double per =
                static_cast<double>(
                    run.sys->stats().get("traffic.persist_wb")) /
                baseWb;
            row.push_back(coh);
            row.push_back(per);
            cols[2 * s].push_back(coh);
            cols[2 * s + 1].push_back(per);
        }
        printRow(bench, row);
    }
    std::vector<double> gmeans;
    for (auto &v : cols)
        gmeans.push_back(geomean(v));
    std::printf("%.*s\n", 94, "----------------------------------------"
                              "--------------------------------------"
                              "----------------");
    printRow("gmean", gmeans);
    std::printf("\npaper: persist ~= coherence traffic for BSP/STW/"
                "TSOPER; HW-RP persist traffic much higher.\n");
    return 0;
}
