/**
 * @file
 * Reproduces the §V protocol-complexity comparison: the paper reports
 * its SLICC SLC implementation against MOESI_CMP_directory (15 vs 25
 * base states, 24 vs 64 transient states, 133 vs 127 actions, 148 vs
 * 264 transitions).  Our transaction-atomic model has no transient
 * states by construction; we report the stable-state/action counts of
 * our implementations next to the paper's SLICC numbers.
 */

#include <cstdio>

#include "coherence/mesi.hh"
#include "coherence/slc.hh"
#include "mem/llc.hh"
#include "mem/nvm.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

using namespace tsoper;

int
main()
{
    SystemConfig cfg;
    EventQueue eq;
    StatsRegistry stats;
    Mesh mesh(cfg, stats);
    Nvm nvm(cfg, eq, stats);
    Llc llc(cfg, nvm, stats);
    SlcProtocol slc(cfg, eq, mesh, llc, nvm, stats);
    MesiProtocol mesi(cfg, eq, mesh, llc, nvm, stats);

    std::printf("Protocol complexity (this model vs the paper's SLICC "
                "implementations)\n\n");
    std::printf("%-28s %10s %10s\n", "", "SLC", "MESI/MOESI");
    const auto s = slc.complexity();
    const auto m = mesi.complexity();
    std::printf("%-28s %10d %10d\n", "model stable states",
                s.stableStates, m.stableStates);
    std::printf("%-28s %10d %10d\n", "model request types",
                s.requestTypes, m.requestTypes);
    std::printf("%-28s %10d %10d\n", "model protocol actions",
                s.protocolActions, m.protocolActions);
    std::printf("\npaper (SLICC SLC vs MOESI_CMP_directory):\n");
    std::printf("%-28s %10d %10d\n", "base states", 15, 25);
    std::printf("%-28s %10d %10d\n", "transient states", 24, 64);
    std::printf("%-28s %10d %10d\n", "SLICC actions", 133, 127);
    std::printf("%-28s %10d %10d\n", "SLICC transitions", 148, 264);
    std::printf("\ntakeaway (paper + model): sharing-list coherence is "
                "no more complex than a\nconventional directory "
                "protocol; it trades transient-state complexity for\n"
                "list-pointer maintenance.\n");
    return 0;
}
