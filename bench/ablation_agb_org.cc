/**
 * @file
 * Ablation A4: AGB organization — the paper's centralized buffer
 * (Fig. 4) vs the distributed per-memory-channel slices with a central
 * allocation arbiter (Fig. 5).  Execution time and AGB allocation
 * stalls, normalized to the distributed organization.
 */

#include "bench_util.hh"

using namespace tsoper;
using namespace tsoper::bench;

int
main(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);
    std::printf("Ablation A4 — centralized vs distributed AGB "
                "(normalized to distributed, scale=%.2f)\n\n",
                opt.scale);
    printHeader("benchmark", {"dist", "central", "c-occup"});
    std::vector<double> ratios;
    for (const std::string &bench : opt.benchmarks) {
        const Run dist = runSystem(EngineKind::Tsoper, bench, opt);
        const Run central = runSystem(EngineKind::Tsoper, bench, opt,
                                      [](SystemConfig &cfg) {
            cfg.agbDistributed = false;
        });
        const double ratio = static_cast<double>(central.cycles) /
                             static_cast<double>(dist.cycles);
        ratios.push_back(ratio);
        printRow(bench,
                 {1.0, ratio,
                  central.sys->stats().histogram("agb.occupancy")
                      .mean()});
    }
    std::printf("%.*s\n", 46, "----------------------------------------"
                              "------");
    printRow("gmean", {1.0, geomean(ratios), 0.0});
    std::printf("\nBoth organizations share the pooled capacity; the "
                "centralized buffer funnels\nevery line through one "
                "ingress port, the distributed one spreads ingress\n"
                "across the memory channels (paper §II-C).\n");
    return 0;
}
