/**
 * @file
 * Reproduces Fig. 11: application execution time of HW-RP, BSP, STW
 * and TSOPER, normalized to the SLC baseline, per benchmark plus the
 * geometric mean.
 *
 * Expected shape (paper): STW worst (avg +53%); BSP next (avg +22%);
 * TSOPER (avg +10%) close to HW-RP (avg +7%).
 */

#include "bench_util.hh"

using namespace tsoper;
using namespace tsoper::bench;

int
main(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);
    const std::vector<EngineKind> systems = {
        EngineKind::HwRp, EngineKind::Bsp, EngineKind::Stw,
        EngineKind::Tsoper};

    std::printf("Fig. 11 — execution time normalized to the SLC "
                "baseline (scale=%.2f)\n\n", opt.scale);
    printHeader("benchmark", {"HW-RP", "BSP", "STW", "TSOPER"});

    std::vector<std::vector<double>> perSystem(systems.size());
    for (const std::string &bench : opt.benchmarks) {
        const Run base = runSystem(EngineKind::None, bench, opt);
        std::vector<double> cols;
        for (std::size_t s = 0; s < systems.size(); ++s) {
            const Run run = runSystem(systems[s], bench, opt);
            const double norm = static_cast<double>(run.cycles) /
                                static_cast<double>(base.cycles);
            cols.push_back(norm);
            perSystem[s].push_back(norm);
        }
        printRow(bench, cols);
    }
    std::vector<double> gmeans;
    for (auto &v : perSystem)
        gmeans.push_back(geomean(v));
    std::printf("%.*s\n", 54, "----------------------------------------"
                              "--------------");
    printRow("gmean", gmeans);
    std::printf("\npaper gmeans:  HW-RP ~1.07   BSP ~1.22   STW ~1.53"
                "   TSOPER ~1.10\n");
    return 0;
}
