/**
 * @file
 * Ablation A1 (DESIGN.md §5): AGB capacity sweep.  The paper sizes the
 * AGB at 10 KiB per channel (160 lines) and claims it "can be easily
 * reduced to one eighth (1.25 KiB) without significantly impacting
 * performance" (§I).  The sweep measures TSOPER execution time as the
 * per-slice capacity shrinks; the AG hard cap shrinks with it when the
 * capacity falls below 80 lines.
 */

#include "bench_util.hh"

using namespace tsoper;
using namespace tsoper::bench;

int
main(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);
    const std::vector<unsigned> sliceLines = {320, 160, 80, 40, 20};
    std::printf("Ablation A1 — TSOPER vs AGB slice capacity "
                "(normalized to 160-line slices = 10 KiB/channel, "
                "scale=%.2f)\n\n", opt.scale);
    std::vector<std::string> headers;
    for (unsigned lines : sliceLines)
        headers.push_back(std::to_string(lines * lineBytes / 1024) +
                          "KiB");
    printHeader("benchmark", headers);
    std::vector<std::vector<double>> perSize(sliceLines.size());
    for (const std::string &bench : opt.benchmarks) {
        double base = 0.0;
        std::vector<double> cols;
        for (std::size_t i = 0; i < sliceLines.size(); ++i) {
            const unsigned lines = sliceLines[i];
            const Run run = runSystem(EngineKind::Tsoper, bench, opt,
                                      [lines](SystemConfig &cfg) {
                cfg.agbSliceLines = lines;
                cfg.agMaxLines = std::min(cfg.agMaxLines, lines);
            });
            if (lines == 160)
                base = static_cast<double>(run.cycles);
            cols.push_back(static_cast<double>(run.cycles));
        }
        for (std::size_t i = 0; i < cols.size(); ++i) {
            cols[i] /= base;
            perSize[i].push_back(cols[i]);
        }
        printRow(bench, cols);
    }
    std::vector<double> gmeans;
    for (auto &v : perSize)
        gmeans.push_back(geomean(v));
    std::printf("%.*s\n", 64, "----------------------------------------"
                              "------------------------");
    printRow("gmean", gmeans);
    std::printf("\npaper claim: 1.25 KiB per channel performs close to "
                "10 KiB.\n");
    return 0;
}
