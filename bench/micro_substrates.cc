/**
 * @file
 * google-benchmark micro-benchmarks for the simulator substrates: the
 * event kernel, tag arrays, the NoC router, the RNG and the histogram.
 * These bound the simulator's own throughput (host-side performance),
 * not the simulated machine.
 */

#include <benchmark/benchmark.h>

#include "mem/cache_array.hh"
#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace tsoper;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < state.range(0); ++i)
            eq.schedule(static_cast<Cycle>(i), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

static void
BM_EventQueueChained(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::int64_t remaining = state.range(0);
        std::function<void()> tick = [&] {
            if (--remaining > 0)
                eq.scheduleIn(1, tick);
        };
        eq.scheduleIn(1, tick);
        eq.run();
        benchmark::DoNotOptimize(remaining);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueChained)->Arg(16384);

static void
BM_CacheArrayInsertTouch(benchmark::State &state)
{
    CacheArray array(1024, 8);
    Rng rng(1);
    for (auto _ : state) {
        const LineAddr line = rng.below(1u << 14);
        benchmark::DoNotOptimize(array.insert(line));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayInsertTouch);

static void
BM_MeshRoute(benchmark::State &state)
{
    SystemConfig cfg;
    StatsRegistry stats;
    Mesh mesh(cfg, stats);
    Rng rng(2);
    Cycle now = 0;
    for (auto _ : state) {
        const int src = static_cast<int>(rng.below(16));
        const int dst = static_cast<int>(rng.below(16));
        benchmark::DoNotOptimize(mesh.route(src, dst, 72, now));
        ++now;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshRoute);

static void
BM_RngNext(benchmark::State &state)
{
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

static void
BM_HistogramAdd(benchmark::State &state)
{
    Histogram h;
    Rng rng(4);
    for (auto _ : state)
        h.add(rng.below(80));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd);

BENCHMARK_MAIN();
