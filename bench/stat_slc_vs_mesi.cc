/**
 * @file
 * Reproduces the §V baseline claim: the SLC protocol carries a small
 * (~3%) execution-time overhead compared to a conventional MESI
 * directory protocol, with no persistency in either.
 */

#include "bench_util.hh"

using namespace tsoper;
using namespace tsoper::bench;

int
main(int argc, char **argv)
{
    const Options opt = parseOptions(argc, argv);
    std::printf("SLC vs MESI baselines, no persistency (scale=%.2f)\n\n",
                opt.scale);
    printHeader("benchmark", {"MESI(cyc)", "SLC(cyc)", "SLC/MESI"});
    std::vector<double> ratios;
    for (const std::string &bench : opt.benchmarks) {
        const Run mesi = runSystem(EngineKind::None, bench, opt,
                                   [](SystemConfig &cfg) {
            cfg.protocol = ProtocolKind::Mesi;
        });
        const Run slc = runSystem(EngineKind::None, bench, opt);
        const double ratio = static_cast<double>(slc.cycles) /
                             static_cast<double>(mesi.cycles);
        ratios.push_back(ratio);
        printRow(bench, {static_cast<double>(mesi.cycles),
                         static_cast<double>(slc.cycles), ratio});
    }
    std::printf("%.*s\n", 48, "----------------------------------------"
                              "--------");
    printRow("gmean", {0.0, 0.0, geomean(ratios)});
    std::printf("\npaper: SLC ~3%% slower than MESI (confirming prior "
                "studies [14]).\n");
    return 0;
}
